// Serialization substrate: object-graph round trips (lists, cycles, shared
// references, every object kind), error handling on malformed streams, and
// the file-based variant the JGF Serial benchmark exercises.
#include <gtest/gtest.h>

#include <cstdio>

#include "vm/serialize.hpp"
#include "vm_test_util.hpp"

namespace hpcnet::test {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  VirtualMachine vm;
  std::int32_t node = -1;

  void SetUp() override {
    node = vm.module().define_class(
        "s.Node", {{"v", ValType::I32}, {"next", ValType::Ref}});
    vm.main_context();  // attach the host thread
  }

  ObjRef make_node(std::int32_t v, ObjRef next) {
    ObjRef o = vm.heap().alloc_instance(node);
    o->fields()[0] = Slot::from_i32(v);
    o->fields()[1] = Slot::from_ref(next);
    return o;
  }
};

TEST_F(SerializeTest, NullRoot) {
  const auto bytes = serialize_graph(vm, nullptr);
  EXPECT_EQ(deserialize_graph(vm, vm.main_context(), bytes.data(),
                              bytes.size()),
            nullptr);
}

TEST_F(SerializeTest, LinkedListRoundTrip) {
  ObjRef head = nullptr;
  for (int i = 0; i < 20; ++i) head = make_node(i, head);
  Pinned pin(vm, head);

  const auto bytes = serialize_graph(vm, head);
  ObjRef copy = deserialize_graph(vm, vm.main_context(), bytes.data(),
                                  bytes.size());
  Pinned pin2(vm, copy);
  int n = 0;
  for (ObjRef p = copy; p != nullptr; p = p->fields()[1].ref) {
    EXPECT_EQ(p->fields()[0].i32, 19 - n);
    ++n;
  }
  EXPECT_EQ(n, 20);
  EXPECT_NE(copy, head);  // a genuine deep copy
}

TEST_F(SerializeTest, CycleRoundTrip) {
  ObjRef a = make_node(1, nullptr);
  Pinned pin(vm, a);
  ObjRef b = make_node(2, a);
  a->fields()[1] = Slot::from_ref(b);  // a -> b -> a

  const auto bytes = serialize_graph(vm, a);
  ObjRef ca = deserialize_graph(vm, vm.main_context(), bytes.data(),
                                bytes.size());
  ObjRef cb = ca->fields()[1].ref;
  ASSERT_NE(cb, nullptr);
  EXPECT_EQ(cb->fields()[1].ref, ca);  // cycle preserved
  EXPECT_EQ(ca->fields()[0].i32, 1);
  EXPECT_EQ(cb->fields()[0].i32, 2);
}

TEST_F(SerializeTest, SharedReferencePreserved) {
  ObjRef shared = make_node(99, nullptr);
  Pinned pin(vm, shared);
  ObjRef x = make_node(1, shared);
  Pinned pinx(vm, x);
  ObjRef y = make_node(2, shared);
  // Carrier array holding both heads.
  ObjRef arr = vm.heap().alloc_array(ValType::Ref, 2);
  arr->ref_data()[0] = x;
  arr->ref_data()[1] = y;
  Pinned pina(vm, arr);

  const auto bytes = serialize_graph(vm, arr);
  ObjRef carr = deserialize_graph(vm, vm.main_context(), bytes.data(),
                                  bytes.size());
  ObjRef cx = carr->ref_data()[0];
  ObjRef cy = carr->ref_data()[1];
  EXPECT_EQ(cx->fields()[1].ref, cy->fields()[1].ref);  // still shared
  EXPECT_EQ(cx->fields()[1].ref->fields()[0].i32, 99);
}

TEST_F(SerializeTest, EveryObjectKindRoundTrips) {
  ObjRef carrier = vm.heap().alloc_array(ValType::Ref, 5);
  Pinned pin(vm, carrier);
  {
    ObjRef ints = vm.heap().alloc_array(ValType::I32, 3);
    ints->i32_data()[0] = -7;
    ints->i32_data()[2] = 123;
    carrier->ref_data()[0] = ints;
    ObjRef mat = vm.heap().alloc_matrix2(ValType::F64, 2, 3);
    mat->f64_data()[5] = 2.5;
    carrier->ref_data()[1] = mat;
    carrier->ref_data()[2] = vm.heap().alloc_box(ValType::F64,
                                                 Slot::from_f64(6.25));
    carrier->ref_data()[3] = vm.heap().alloc_string("hello");
    carrier->ref_data()[4] = make_node(5, nullptr);
  }
  const auto bytes = serialize_graph(vm, carrier);
  ObjRef c = deserialize_graph(vm, vm.main_context(), bytes.data(),
                               bytes.size());
  EXPECT_EQ(c->ref_data()[0]->i32_data()[0], -7);
  EXPECT_EQ(c->ref_data()[0]->i32_data()[2], 123);
  EXPECT_EQ(c->ref_data()[1]->length, 2);
  EXPECT_EQ(c->ref_data()[1]->cols, 3);
  EXPECT_DOUBLE_EQ(c->ref_data()[1]->f64_data()[5], 2.5);
  EXPECT_DOUBLE_EQ(c->ref_data()[2]->fields()[0].f64, 6.25);
  EXPECT_EQ(string_value(c->ref_data()[3]), "hello");
  EXPECT_EQ(c->ref_data()[4]->fields()[0].i32, 5);
}

TEST_F(SerializeTest, RejectsTruncatedStream) {
  ObjRef head = make_node(1, nullptr);
  Pinned pin(vm, head);
  auto bytes = serialize_graph(vm, head);
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, bytes.size() / 2}) {
    EXPECT_THROW(
        deserialize_graph(vm, vm.main_context(), bytes.data(), cut),
        SerializeError)
        << cut;
  }
}

TEST_F(SerializeTest, RejectsBadMagic) {
  std::vector<char> junk = {'X', 'Y', 'Z', 'W', 0, 0, 0, 0};
  EXPECT_THROW(
      deserialize_graph(vm, vm.main_context(), junk.data(), junk.size()),
      SerializeError);
}

TEST_F(SerializeTest, FileRoundTrip) {
  ObjRef head = nullptr;
  for (int i = 0; i < 5; ++i) head = make_node(i * 10, head);
  Pinned pin(vm, head);
  const std::string path = "/tmp/hpcnet_serial_test.bin";
  serialize_to_file(vm, head, path);
  ObjRef copy = deserialize_from_file(vm, vm.main_context(), path);
  int n = 0;
  for (ObjRef p = copy; p != nullptr; p = p->fields()[1].ref) ++n;
  EXPECT_EQ(n, 5);
  std::remove(path.c_str());
}

TEST_F(SerializeTest, SurvivesGcPressureDuringDeserialize) {
  // Build the list under the default threshold (native locals are not GC
  // roots — the head must be pinned before any allocation can collect), then
  // tighten the threshold so the deserializer itself runs under constant
  // collection pressure.
  ObjRef head = nullptr;
  for (int i = 0; i < 200; ++i) head = make_node(i, head);
  Pinned pin(vm, head);
  vm.heap().set_threshold(1 << 12);  // collect constantly from here on
  const auto bytes = serialize_graph(vm, head);
  ObjRef copy = deserialize_graph(vm, vm.main_context(), bytes.data(),
                                  bytes.size());
  Pinned pin2(vm, copy);
  int n = 0;
  for (ObjRef p = copy; p != nullptr; p = p->fields()[1].ref) ++n;
  EXPECT_EQ(n, 200);
}

}  // namespace
}  // namespace hpcnet::test

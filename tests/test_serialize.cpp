// Serialization substrate: object-graph round trips (lists, cycles, shared
// references, every object kind), error handling on malformed streams, and
// the file-based variant the JGF Serial benchmark exercises.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>

#include "vm/regir.hpp"
#include "vm/serialize.hpp"
#include "vm_test_util.hpp"

namespace hpcnet::test {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  VirtualMachine vm;
  std::int32_t node = -1;

  void SetUp() override {
    node = vm.module().define_class(
        "s.Node", {{"v", ValType::I32}, {"next", ValType::Ref}});
    vm.main_context();  // attach the host thread
  }

  ObjRef make_node(std::int32_t v, ObjRef next) {
    ObjRef o = vm.heap().alloc_instance(node);
    o->fields()[0] = Slot::from_i32(v);
    o->fields()[1] = Slot::from_ref(next);
    return o;
  }
};

TEST_F(SerializeTest, NullRoot) {
  const auto bytes = serialize_graph(vm, nullptr);
  EXPECT_EQ(deserialize_graph(vm, vm.main_context(), bytes.data(),
                              bytes.size()),
            nullptr);
}

TEST_F(SerializeTest, LinkedListRoundTrip) {
  ObjRef head = nullptr;
  for (int i = 0; i < 20; ++i) head = make_node(i, head);
  Pinned pin(vm, head);

  const auto bytes = serialize_graph(vm, head);
  ObjRef copy = deserialize_graph(vm, vm.main_context(), bytes.data(),
                                  bytes.size());
  Pinned pin2(vm, copy);
  int n = 0;
  for (ObjRef p = copy; p != nullptr; p = p->fields()[1].ref) {
    EXPECT_EQ(p->fields()[0].i32, 19 - n);
    ++n;
  }
  EXPECT_EQ(n, 20);
  EXPECT_NE(copy, head);  // a genuine deep copy
}

TEST_F(SerializeTest, CycleRoundTrip) {
  ObjRef a = make_node(1, nullptr);
  Pinned pin(vm, a);
  ObjRef b = make_node(2, a);
  a->fields()[1] = Slot::from_ref(b);  // a -> b -> a

  const auto bytes = serialize_graph(vm, a);
  ObjRef ca = deserialize_graph(vm, vm.main_context(), bytes.data(),
                                bytes.size());
  ObjRef cb = ca->fields()[1].ref;
  ASSERT_NE(cb, nullptr);
  EXPECT_EQ(cb->fields()[1].ref, ca);  // cycle preserved
  EXPECT_EQ(ca->fields()[0].i32, 1);
  EXPECT_EQ(cb->fields()[0].i32, 2);
}

TEST_F(SerializeTest, SharedReferencePreserved) {
  ObjRef shared = make_node(99, nullptr);
  Pinned pin(vm, shared);
  ObjRef x = make_node(1, shared);
  Pinned pinx(vm, x);
  ObjRef y = make_node(2, shared);
  // Carrier array holding both heads.
  ObjRef arr = vm.heap().alloc_array(ValType::Ref, 2);
  arr->ref_data()[0] = x;
  arr->ref_data()[1] = y;
  Pinned pina(vm, arr);

  const auto bytes = serialize_graph(vm, arr);
  ObjRef carr = deserialize_graph(vm, vm.main_context(), bytes.data(),
                                  bytes.size());
  ObjRef cx = carr->ref_data()[0];
  ObjRef cy = carr->ref_data()[1];
  EXPECT_EQ(cx->fields()[1].ref, cy->fields()[1].ref);  // still shared
  EXPECT_EQ(cx->fields()[1].ref->fields()[0].i32, 99);
}

TEST_F(SerializeTest, EveryObjectKindRoundTrips) {
  ObjRef carrier = vm.heap().alloc_array(ValType::Ref, 5);
  Pinned pin(vm, carrier);
  {
    ObjRef ints = vm.heap().alloc_array(ValType::I32, 3);
    ints->i32_data()[0] = -7;
    ints->i32_data()[2] = 123;
    carrier->ref_data()[0] = ints;
    ObjRef mat = vm.heap().alloc_matrix2(ValType::F64, 2, 3);
    mat->f64_data()[5] = 2.5;
    carrier->ref_data()[1] = mat;
    carrier->ref_data()[2] = vm.heap().alloc_box(ValType::F64,
                                                 Slot::from_f64(6.25));
    carrier->ref_data()[3] = vm.heap().alloc_string("hello");
    carrier->ref_data()[4] = make_node(5, nullptr);
  }
  const auto bytes = serialize_graph(vm, carrier);
  ObjRef c = deserialize_graph(vm, vm.main_context(), bytes.data(),
                               bytes.size());
  EXPECT_EQ(c->ref_data()[0]->i32_data()[0], -7);
  EXPECT_EQ(c->ref_data()[0]->i32_data()[2], 123);
  EXPECT_EQ(c->ref_data()[1]->length, 2);
  EXPECT_EQ(c->ref_data()[1]->cols, 3);
  EXPECT_DOUBLE_EQ(c->ref_data()[1]->f64_data()[5], 2.5);
  EXPECT_DOUBLE_EQ(c->ref_data()[2]->fields()[0].f64, 6.25);
  EXPECT_EQ(string_value(c->ref_data()[3]), "hello");
  EXPECT_EQ(c->ref_data()[4]->fields()[0].i32, 5);
}

TEST_F(SerializeTest, RejectsTruncatedStream) {
  ObjRef head = make_node(1, nullptr);
  Pinned pin(vm, head);
  auto bytes = serialize_graph(vm, head);
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, bytes.size() / 2}) {
    EXPECT_THROW(
        deserialize_graph(vm, vm.main_context(), bytes.data(), cut),
        SerializeError)
        << cut;
  }
}

TEST_F(SerializeTest, RejectsBadMagic) {
  std::vector<char> junk = {'X', 'Y', 'Z', 'W', 0, 0, 0, 0};
  EXPECT_THROW(
      deserialize_graph(vm, vm.main_context(), junk.data(), junk.size()),
      SerializeError);
}

TEST_F(SerializeTest, FileRoundTrip) {
  ObjRef head = nullptr;
  for (int i = 0; i < 5; ++i) head = make_node(i * 10, head);
  Pinned pin(vm, head);
  const std::string path = "/tmp/hpcnet_serial_test.bin";
  serialize_to_file(vm, head, path);
  ObjRef copy = deserialize_from_file(vm, vm.main_context(), path);
  int n = 0;
  for (ObjRef p = copy; p != nullptr; p = p->fields()[1].ref) ++n;
  EXPECT_EQ(n, 5);
  std::remove(path.c_str());
}

TEST_F(SerializeTest, SurvivesGcPressureDuringDeserialize) {
  // Build the list under the default threshold (native locals are not GC
  // roots — the head must be pinned before any allocation can collect), then
  // tighten the threshold so the deserializer itself runs under constant
  // collection pressure.
  ObjRef head = nullptr;
  for (int i = 0; i < 200; ++i) head = make_node(i, head);
  Pinned pin(vm, head);
  vm.heap().set_threshold(1 << 12);  // collect constantly from here on
  const auto bytes = serialize_graph(vm, head);
  ObjRef copy = deserialize_graph(vm, vm.main_context(), bytes.data(),
                                  bytes.size());
  Pinned pin2(vm, copy);
  int n = 0;
  for (ObjRef p = copy; p != nullptr; p = p->fields()[1].ref) ++n;
  EXPECT_EQ(n, 200);
}

// ---------------------------------------------------------------------------
// Code-archive ('HPCA') wire format: hostile-input hardening. Round-trip
// correctness (bit-identical results, warm tiers, shared archives) lives in
// test_snapshot.cpp; here every test feeds the deserializer damaged bytes
// and asserts SerializeError or clean degradation — never UB.

// Mirrors the stream's own FNV-1a 64 so tests can re-seal a deliberately
// corrupted payload and reach the validation layers behind the checksum.
std::uint64_t fnv1a64(const char* p, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(p[i]);
    h *= 1099511628211ull;
  }
  return h;
}

// Stream layout: [u32 magic][u32 version][u64 checksum of bytes 16..end].
void reseal(std::vector<char>& b) {
  const std::uint64_t h = fnv1a64(b.data() + 16, b.size() - 16);
  std::memcpy(b.data() + 8, &h, sizeof h);
}

class ArchiveTest : public ::testing::Test {
 protected:
  VirtualMachine vm;
  std::int32_t method = -1;
  std::vector<char> blob;  // valid archive of `method` warmed under clr11

  void SetUp() override {
    method = build_sum_squares(vm, "arch.sum");
    auto eng = make_engine(vm, profiles::by_name("clr11"));
    VMContext& ctx = vm.main_context();
    const std::vector<Slot> args = {Slot::from_i32(10)};
    const Slot r = eng->invoke(ctx, method, args);
    ASSERT_EQ(r.i32, 285);  // sum of i*i, i in [0,10)
    blob = serialize_archives({capture_archive(vm, "clr11")});
    ASSERT_GT(blob.size(), 16u);
  }

  /// (n: I32) -> I32: sum of i*i — a counted loop so the compiled body has
  /// branches, an il2rpc table and deopt points for the fuzzer to chew on.
  static std::int32_t build_sum_squares(VirtualMachine& v,
                                        const std::string& name) {
    ILBuilder b(v.module(), name, {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto acc = b.add_local(ValType::I32);
    auto cond = b.new_label();
    auto top = b.new_label();
    b.ldc_i4(0).stloc(i).ldc_i4(0).stloc(acc).br(cond);
    b.bind(top);
    b.ldloc(acc).ldloc(i).ldloc(i).mul().add().stloc(acc);
    b.ldloc(i).ldc_i4(1).add().stloc(i);
    b.bind(cond);
    b.ldloc(i).ldarg(0).blt(top);
    b.ldloc(acc).ret();
    return b.finish();
  }

  /// The blob's single archive, parsed back (it is valid by construction).
  std::shared_ptr<const CodeArchive> parse() {
    auto as = deserialize_archives(vm.module(), blob.data(), blob.size());
    EXPECT_EQ(as.size(), 1u);
    return as.at(0);
  }

  /// Re-wraps one record (possibly with a mutated compiled body) and
  /// serializes it, resealing nothing — serialize_archives seals itself.
  static std::vector<char> wrap(const CodeArchive::MethodRecord& rec) {
    auto a = std::make_shared<const CodeArchive>(
        "clr11", std::vector<CodeArchive::MethodRecord>{rec});
    return serialize_archives({a});
  }
};

TEST_F(ArchiveTest, RoundTripsWarmRecord) {
  const auto a = parse();
  EXPECT_EQ(a->profile(), "clr11");
  ASSERT_FALSE(a->records().empty());
  bool found = false;
  for (const auto& rec : a->records()) {
    if (rec.method_id != method) continue;
    found = true;
    EXPECT_EQ(rec.name, "arch.sum");
    EXPECT_NE(rec.code, nullptr);
    EXPECT_EQ(rec.il_hash, il_content_hash(vm.module(), method));
  }
  EXPECT_TRUE(found);
}

TEST_F(ArchiveTest, RejectsTruncation) {
  // Every proper prefix must throw: header cuts die on magic/version/
  // checksum reads, payload cuts on the checksum (it covers to the end).
  for (std::size_t cut : {std::size_t{0}, std::size_t{3}, std::size_t{9},
                          std::size_t{15}, std::size_t{17}, blob.size() / 2,
                          blob.size() - 1}) {
    EXPECT_THROW(deserialize_archives(vm.module(), blob.data(), cut),
                 SerializeError)
        << "cut=" << cut;
  }
}

TEST_F(ArchiveTest, RejectsBadMagic) {
  auto b = blob;
  b[0] = 'X';
  EXPECT_THROW(deserialize_archives(vm.module(), b.data(), b.size()),
               SerializeError);
}

TEST_F(ArchiveTest, RejectsBadVersion) {
  auto b = blob;
  b[4] = static_cast<char>(0x7f);
  EXPECT_THROW(deserialize_archives(vm.module(), b.data(), b.size()),
               SerializeError);
}

TEST_F(ArchiveTest, RejectsChecksumMismatch) {
  auto b = blob;
  b[b.size() / 2] ^= 0x01;  // payload damage, seal left stale
  EXPECT_THROW(deserialize_archives(vm.module(), b.data(), b.size()),
               SerializeError);
}

TEST_F(ArchiveTest, ByteFlipFuzzNeverFaults) {
  // Flip one payload byte at a time and RE-SEAL, so the damage reaches the
  // structural validators and the re-verifier behind the checksum. Each
  // variant must either throw SerializeError or parse into records that
  // attach cleanly (possibly as misses) into a fresh VM — never crash.
  std::size_t threw = 0, parsed = 0;
  for (std::size_t off = 16; off < blob.size();
       off += (off < 96 ? 1 : 7)) {
    auto b = blob;
    b[off] ^= 0xff;
    reseal(b);
    VirtualMachine fresh;
    build_sum_squares(fresh, "arch.sum");
    try {
      const auto as = deserialize_archives(fresh.module(), b.data(), b.size());
      for (const auto& a : as) attach_archive(fresh, a);
      ++parsed;
    } catch (const SerializeError&) {
      ++threw;
    }
  }
  // Both outcomes must actually occur: some flips are structural damage,
  // some land in hash/hotness fields and degrade to misses or benign skews.
  EXPECT_GT(threw, 0u);
  EXPECT_GT(parsed, 0u);
}

TEST_F(ArchiveTest, OutOfRangeMethodIdIsAMiss) {
  // An id beyond the local module parses fine (the wire format is module-
  // agnostic) but can never match at attach time.
  CodeArchive::MethodRecord rec;
  rec.method_id = 9999;
  rec.name = "arch.sum";
  rec.il_hash = 0xdeadbeefull;
  rec.tier = 1;
  rec.hotness = 5;
  const auto bytes = wrap(rec);
  const auto as = deserialize_archives(vm.module(), bytes.data(), bytes.size());
  ASSERT_EQ(as.size(), 1u);
  VirtualMachine fresh;
  build_sum_squares(fresh, "arch.sum");
  const ArchiveStats st = attach_archive(fresh, as[0]);
  EXPECT_EQ(st.restored, 0u);
  EXPECT_EQ(st.missed, 1u);
}

TEST_F(ArchiveTest, RejectsSideTableLengthMismatch) {
  const auto a = parse();
  const CodeArchive::MethodRecord* warm = nullptr;
  for (const auto& rec : a->records()) {
    if (rec.method_id == method && rec.code != nullptr) warm = &rec;
  }
  ASSERT_NE(warm, nullptr);
  // il2rpc must map every IL pc (plus the end sentinel); drop one entry.
  auto mutated = std::make_shared<regir::RCode>(*warm->code);
  mutated->il2rpc.pop_back();
  CodeArchive::MethodRecord rec = *warm;
  rec.code = mutated;
  const auto bytes = wrap(rec);
  EXPECT_THROW(deserialize_archives(vm.module(), bytes.data(), bytes.size()),
               SerializeError);
}

TEST_F(ArchiveTest, RejectsOutOfRangeRegister) {
  const auto a = parse();
  const CodeArchive::MethodRecord* warm = nullptr;
  for (const auto& rec : a->records()) {
    if (rec.method_id == method && rec.code != nullptr) warm = &rec;
  }
  ASSERT_NE(warm, nullptr);
  auto mutated = std::make_shared<regir::RCode>(*warm->code);
  ASSERT_FALSE(mutated->code.empty());
  mutated->code[0].d = mutated->num_regs + 10;
  CodeArchive::MethodRecord rec = *warm;
  rec.code = mutated;
  const auto bytes = wrap(rec);
  EXPECT_THROW(deserialize_archives(vm.module(), bytes.data(), bytes.size()),
               SerializeError);
}

TEST_F(ArchiveTest, StaleHashDegradesToMiss) {
  // Same method name and id, different body in the attaching VM: the
  // verified-IL hash no longer matches, so the record is skipped and the
  // method stays cold (it will compile normally on first call).
  VirtualMachine other;
  std::int32_t local;
  {
    ILBuilder b(other.module(), "arch.sum", {{ValType::I32}, ValType::I32});
    b.ldarg(0).ldc_i4(7).add().ret();  // different semantics entirely
    local = b.finish();
  }
  ASSERT_EQ(local, method);  // same id, same name, different body
  const auto as = deserialize_archives(other.module(), blob.data(),
                                       blob.size());
  ASSERT_EQ(as.size(), 1u);
  const ArchiveStats st = attach_archive(other, as[0]);
  EXPECT_EQ(st.restored, 0u);
  EXPECT_GE(st.missed, 1u);
  // And the local semantics win at execution time.
  auto eng = make_engine(other, profiles::by_name("clr11"));
  const std::vector<Slot> args = {Slot::from_i32(10)};
  EXPECT_EQ(eng->invoke(other.main_context(), local, args).i32, 17);
}

}  // namespace
}  // namespace hpcnet::test

// Core VM semantics: every opcode class exercised on all three engine tiers,
// requiring bit-identical results across tiers.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "vm_test_util.hpp"

namespace hpcnet::test {
namespace {

TEST(VmCore, ReturnsConstant) {
  VMFixture f;
  ILBuilder b(f.vm.module(), "const42", {{}, ValType::I32});
  b.ldc_i4(42).ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m).i32, 42);
}

TEST(VmCore, AddsArguments) {
  VMFixture f;
  ILBuilder b(f.vm.module(), "add2", {{ValType::I32, ValType::I32}, ValType::I32});
  b.ldarg(0).ldarg(1).add().ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m, {Slot::from_i32(40), Slot::from_i32(2)}).i32, 42);
  EXPECT_EQ(f.run_all(m, {Slot::from_i32(-7), Slot::from_i32(7)}).i32, 0);
}

TEST(VmCore, IntegerWraparound) {
  VMFixture f;
  ILBuilder b(f.vm.module(), "wrap", {{}, ValType::I32});
  b.ldc_i4(std::numeric_limits<std::int32_t>::max()).ldc_i4(1).add().ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m).i32, std::numeric_limits<std::int32_t>::min());
}

TEST(VmCore, LoopSum) {
  VMFixture f;
  // sum = 0; for (i = 1; i <= n; ++i) sum += i; return sum;
  ILBuilder b(f.vm.module(), "loopsum", {{ValType::I32}, ValType::I32});
  const auto sum = b.add_local(ValType::I32);
  const auto i = b.add_local(ValType::I32);
  auto cond = b.new_label();
  auto body = b.new_label();
  b.ldc_i4(0).stloc(sum);
  b.ldc_i4(1).stloc(i);
  b.br(cond);
  b.bind(body);
  b.ldloc(sum).ldloc(i).add().stloc(sum);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(cond);
  b.ldloc(i).ldarg(0).ble(body);
  b.ldloc(sum).ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m, {Slot::from_i32(100)}).i32, 5050);
  EXPECT_EQ(f.run_all(m, {Slot::from_i32(0)}).i32, 0);
  EXPECT_EQ(f.run_all(m, {Slot::from_i32(1)}).i32, 1);
}

TEST(VmCore, IntegerDivisionTruncatesTowardZero) {
  VMFixture f;
  ILBuilder b(f.vm.module(), "idiv", {{ValType::I32, ValType::I32}, ValType::I32});
  b.ldarg(0).ldarg(1).div().ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m, {Slot::from_i32(7), Slot::from_i32(2)}).i32, 3);
  EXPECT_EQ(f.run_all(m, {Slot::from_i32(-7), Slot::from_i32(2)}).i32, -3);
  EXPECT_EQ(f.run_all(m, {Slot::from_i32(7), Slot::from_i32(-2)}).i32, -3);
}

TEST(VmCore, DivideByZeroThrows) {
  VMFixture f;
  ILBuilder b(f.vm.module(), "divzero", {{}, ValType::I32});
  b.ldc_i4(1).ldc_i4(0).div().ret();
  const auto m = b.finish();
  verify(f.vm.module(), m);
  VMContext& ctx = f.vm.main_context();
  for (auto& e : f.engines) {
    ctx.engine = e.get();
    try {
      e->invoke(ctx, m, {});
      FAIL() << e->name() << ": expected DivideByZeroException";
    } catch (const ManagedException& ex) {
      EXPECT_EQ(ex.class_name(), "System.DivideByZeroException") << e->name();
    }
  }
}

TEST(VmCore, DivisionOverflowThrowsArithmetic) {
  VMFixture f;
  ILBuilder b(f.vm.module(), "divovf", {{}, ValType::I32});
  b.ldc_i4(std::numeric_limits<std::int32_t>::min()).ldc_i4(-1).div().ret();
  const auto m = b.finish();
  verify(f.vm.module(), m);
  VMContext& ctx = f.vm.main_context();
  for (auto& e : f.engines) {
    ctx.engine = e.get();
    EXPECT_THROW(e->invoke(ctx, m, {}), ManagedException) << e->name();
  }
}

TEST(VmCore, Int64Arithmetic) {
  VMFixture f;
  ILBuilder b(f.vm.module(), "l64", {{ValType::I64, ValType::I64}, ValType::I64});
  // (a * b) - (a / b) + (a % b)
  b.ldarg(0).ldarg(1).mul();
  b.ldarg(0).ldarg(1).div();
  b.sub();
  b.ldarg(0).ldarg(1).rem();
  b.add().ret();
  const auto m = b.finish();
  const std::int64_t a = 123456789012LL, bb = 9876543LL;
  const std::int64_t want = a * bb - a / bb + a % bb;
  EXPECT_EQ(f.run_all(m, {Slot::from_i64(a), Slot::from_i64(bb)}).i64, want);
}

TEST(VmCore, FloatAndDoubleArithmetic) {
  VMFixture f;
  {
    ILBuilder b(f.vm.module(), "f32ops", {{ValType::F32, ValType::F32}, ValType::F32});
    b.ldarg(0).ldarg(1).mul().ldarg(0).ldarg(1).div().add().ret();
    const auto m = b.finish();
    const float x = 3.5f, y = 1.25f;
    EXPECT_FLOAT_EQ(f.run_all(m, {Slot::from_f32(x), Slot::from_f32(y)}).f32,
                    x * y + x / y);
  }
  {
    ILBuilder b(f.vm.module(), "f64ops", {{ValType::F64, ValType::F64}, ValType::F64});
    b.ldarg(0).ldarg(1).sub().ldarg(1).rem().ret();
    const auto m = b.finish();
    const double x = 10.75, y = 3.0;
    EXPECT_DOUBLE_EQ(f.run_all(m, {Slot::from_f64(x), Slot::from_f64(y)}).f64,
                     std::fmod(x - y, y));
  }
}

TEST(VmCore, BitwiseAndShifts) {
  VMFixture f;
  ILBuilder b(f.vm.module(), "bits", {{ValType::I32}, ValType::I32});
  // ((x << 3) ^ (x >> 1)) & ~(x | 0xFF), plus an unsigned shift mix
  b.ldarg(0).ldc_i4(3).shl();
  b.ldarg(0).ldc_i4(1).shr();
  b.xor_();
  b.ldarg(0).ldc_i4(0xFF).or_().not_();
  b.and_();
  b.ldarg(0).ldc_i4(4).shr_un();
  b.xor_();
  b.ret();
  const auto m = b.finish();
  auto want = [](std::int32_t x) {
    const std::int32_t t = ((x << 3) ^ (x >> 1)) & ~(x | 0xFF);
    return t ^ static_cast<std::int32_t>(static_cast<std::uint32_t>(x) >> 4);
  };
  for (std::int32_t x : {0, 1, -1, 12345, -98765,
                         std::numeric_limits<std::int32_t>::min()}) {
    EXPECT_EQ(f.run_all(m, {Slot::from_i32(x)}).i32, want(x)) << x;
  }
}

TEST(VmCore, Comparisons) {
  VMFixture f;
  ILBuilder b(f.vm.module(), "cmp3", {{ValType::F64, ValType::F64}, ValType::I32});
  // clt + cgt + ceq encoded as (a<b) + 2*(a>b) + 4*(a==b)
  b.ldarg(0).ldarg(1).clt();
  b.ldarg(0).ldarg(1).cgt().ldc_i4(2).mul();
  b.add();
  b.ldarg(0).ldarg(1).ceq().ldc_i4(4).mul();
  b.add().ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m, {Slot::from_f64(1), Slot::from_f64(2)}).i32, 1);
  EXPECT_EQ(f.run_all(m, {Slot::from_f64(2), Slot::from_f64(1)}).i32, 2);
  EXPECT_EQ(f.run_all(m, {Slot::from_f64(2), Slot::from_f64(2)}).i32, 4);
  // NaN: all ordered comparisons false, equality false.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_EQ(f.run_all(m, {Slot::from_f64(nan), Slot::from_f64(1)}).i32, 0);
}

TEST(VmCore, Conversions) {
  VMFixture f;
  {
    ILBuilder b(f.vm.module(), "cv1", {{ValType::F64}, ValType::I32});
    b.ldarg(0).conv_i4().ret();
    const auto m = b.finish();
    EXPECT_EQ(f.run_all(m, {Slot::from_f64(3.99)}).i32, 3);
    EXPECT_EQ(f.run_all(m, {Slot::from_f64(-3.99)}).i32, -3);
    EXPECT_EQ(f.run_all(m, {Slot::from_f64(1e20)}).i32,
              std::numeric_limits<std::int32_t>::min());
  }
  {
    ILBuilder b(f.vm.module(), "cv2", {{ValType::I32}, ValType::I32});
    b.ldarg(0).conv_u1().ret();
    const auto m = b.finish();
    EXPECT_EQ(f.run_all(m, {Slot::from_i32(-1)}).i32, 255);
    EXPECT_EQ(f.run_all(m, {Slot::from_i32(256)}).i32, 0);
  }
  {
    ILBuilder b(f.vm.module(), "cv3", {{ValType::I32}, ValType::I32});
    b.ldarg(0).conv_i1().ret();
    const auto m = b.finish();
    EXPECT_EQ(f.run_all(m, {Slot::from_i32(255)}).i32, -1);
    EXPECT_EQ(f.run_all(m, {Slot::from_i32(127)}).i32, 127);
  }
  {
    ILBuilder b(f.vm.module(), "cv4", {{ValType::I64}, ValType::F64});
    b.ldarg(0).conv_r8().ret();
    const auto m = b.finish();
    EXPECT_DOUBLE_EQ(f.run_all(m, {Slot::from_i64(1LL << 40)}).f64,
                     static_cast<double>(1LL << 40));
  }
  {
    ILBuilder b(f.vm.module(), "cv5", {{ValType::F32}, ValType::F64});
    b.ldarg(0).conv_r8().ret();
    const auto m = b.finish();
    EXPECT_DOUBLE_EQ(f.run_all(m, {Slot::from_f32(0.5f)}).f64, 0.5);
  }
}

TEST(VmCore, Calls) {
  VMFixture f;
  ILBuilder sq(f.vm.module(), "square", {{ValType::I32}, ValType::I32});
  sq.ldarg(0).ldarg(0).mul().ret();
  const auto msq = sq.finish();

  ILBuilder b(f.vm.module(), "sumsq", {{ValType::I32, ValType::I32}, ValType::I32});
  b.ldarg(0).call(msq).ldarg(1).call(msq).add().ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m, {Slot::from_i32(3), Slot::from_i32(4)}).i32, 25);
}

TEST(VmCore, RecursionFibonacci) {
  VMFixture f;
  Module& mod = f.vm.module();
  ILBuilder b(mod, "fib", {{ValType::I32}, ValType::I32});
  auto rec = b.new_label();
  b.ldarg(0).ldc_i4(2).bge(rec);
  b.ldarg(0).ret();
  b.bind(rec);
  // fib(n-1) + fib(n-2): forward reference to self via the builder's id is
  // not available pre-finish, so use a driver that patches through a thunk.
  // Instead: self-call by known id = next method id.
  const auto self_id = static_cast<std::int32_t>(mod.method_count());
  b.ldarg(0).ldc_i4(1).sub().call(self_id);
  b.ldarg(0).ldc_i4(2).sub().call(self_id);
  b.add().ret();
  const auto m = b.finish();
  ASSERT_EQ(m, self_id);
  EXPECT_EQ(f.run_all(m, {Slot::from_i32(15)}).i32, 610);
}

TEST(VmCore, ArgsAndLocalsIndependent) {
  VMFixture f;
  ILBuilder b(f.vm.module(), "argloc", {{ValType::I32}, ValType::I32});
  const auto l0 = b.add_local(ValType::I32);
  b.ldarg(0).ldc_i4(10).add().stloc(l0);
  b.ldc_i4(99).starg(0);
  b.ldloc(l0).ldarg(0).add().ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m, {Slot::from_i32(5)}).i32, 114);
}

TEST(VmCore, DupAndPop) {
  VMFixture f;
  ILBuilder b(f.vm.module(), "duppop", {{ValType::I32}, ValType::I32});
  b.ldarg(0).dup().mul();   // x*x
  b.ldc_i4(777).pop();      // push then discard
  b.ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m, {Slot::from_i32(9)}).i32, 81);
}

TEST(VmCore, ManyLocalsBeyondEnregistrationLimit) {
  // Exercises the CLR 64-local spill path: a method with 80 locals summed in
  // a chain must still compute correctly on the optimizing tier.
  VMFixture f;
  ILBuilder b(f.vm.module(), "manylocals", {{}, ValType::I32});
  constexpr int kLocals = 80;
  std::vector<std::int32_t> locs;
  for (int i = 0; i < kLocals; ++i) locs.push_back(b.add_local(ValType::I32));
  for (int i = 0; i < kLocals; ++i) {
    b.ldc_i4(i + 1).stloc(locs[static_cast<std::size_t>(i)]);
  }
  b.ldc_i4(0);
  for (int i = 0; i < kLocals; ++i) {
    b.ldloc(locs[static_cast<std::size_t>(i)]).add();
  }
  b.ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m).i32, kLocals * (kLocals + 1) / 2);
}

}  // namespace
}  // namespace hpcnet::test

// Parallel red-black SOR (the paper's future-work shared-memory port):
// thread-count independence and agreement with the native red-black kernel.
#include <gtest/gtest.h>

#include "cil/sm.hpp"
#include "cil/suite.hpp"
#include "kernels/scimark.hpp"

namespace hpcnet::test {
namespace {

using namespace hpcnet;
using vm::Slot;

TEST(ParallelSor, MatchesNativeRedBlackForEveryThreadCount) {
  cil::BenchContext bc;
  const auto psor = cil::build_sm_psor(bc.vm());
  const int n = 24, iters = 6;
  const double want = kernels::sor::checksum_redblack(n, iters);
  for (auto& e : bc.engines()) {
    for (int threads : {1, 2, 3, 4}) {
      const Slot r = bc.invoke(
          *e, psor,
          {Slot::from_i32(n), Slot::from_i32(iters), Slot::from_i32(threads)});
      EXPECT_DOUBLE_EQ(r.f64, want) << e->name() << " threads=" << threads;
    }
  }
}

TEST(ParallelSor, RedBlackDiffersFromLexicographicSweep) {
  // Sanity: the red-black ordering is a genuinely different (parallelizable)
  // iteration, not an accidental alias of the serial sweep.
  EXPECT_NE(kernels::sor::checksum_redblack(24, 6),
            kernels::sor::checksum(24, 6));
}

TEST(ParallelSor, SpeedupOrNoWorseOnOptimizingTier) {
  // Not a strict speedup assertion (CI machines vary); just require that
  // the 2-thread run completes and produces the identical result under
  // contention with a larger grid.
  cil::BenchContext bc;
  const auto psor = cil::build_sm_psor(bc.vm());
  const int n = 96, iters = 4;
  const double want = kernels::sor::checksum_redblack(n, iters);
  vm::Engine& e = bc.engine("clr11");
  const Slot r = bc.invoke(
      e, psor, {Slot::from_i32(n), Slot::from_i32(iters), Slot::from_i32(2)});
  EXPECT_DOUBLE_EQ(r.f64, want);
}

}  // namespace
}  // namespace hpcnet::test

// TCP front-end tests (DESIGN.md §14): loopback round trips for every frame
// type, auth and version gating, connection-lifetime job cancellation, and
// the hostile-input sweeps the wire parser must shrug off — truncation at
// every byte offset, oversized/zero length prefixes, mid-SUBMIT disconnects
// and single-byte-flip fuzzing. Every malformed input must end in a clean
// ERROR frame or a closed connection, never UB; after each sweep a fresh
// client proves the server still completes jobs. The binary also runs under
// TSan in CI (loop thread vs workers vs client threads).
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "vm/execution.hpp"
#include "vm/heap.hpp"
#include "vm/ilbuilder.hpp"
#include "vm/intrinsics.hpp"
#include "vm/monitor.hpp"
#include "vm/net/client.hpp"
#include "vm/net/server.hpp"
#include "vm/serialize.hpp"
#include "vm/service/service.hpp"

namespace hpcnet::test {
namespace {

using namespace hpcnet::vm;
using net::FrameType;
using net::VmClient;
using net::VmServer;
using net::WireReader;
using net::WireResult;
using net::WireValue;
using net::WireWriter;
using service::ExecutionService;
using service::JobOutcome;

/// sum(0..n-1), one taken backward branch per iteration (fuel = n).
std::int32_t build_spin(Module& mod, const std::string& name) {
  ILBuilder b(mod, name, {{ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  const auto sum = b.add_local(ValType::I32);
  auto loop = b.new_label();
  auto done = b.new_label();
  b.ldc_i4(0).stloc(i);
  b.ldc_i4(0).stloc(sum);
  b.bind(loop);
  b.ldloc(i).ldarg(0).bge(done);
  b.ldloc(sum).ldloc(i).add().stloc(sum);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.br(loop);
  b.bind(done);
  b.ldloc(sum).ret();
  return b.finish();
}

/// gate(obj) { lock(obj) { Pulse(obj); Wait(obj); } ret 1 } — the same
/// pickup handshake test_service uses to park a worker deterministically.
std::int32_t build_gate(Module& mod, const std::string& name) {
  ILBuilder b(mod, name, {{ValType::Ref}, ValType::I32});
  b.ldarg(0).call_intr(I_MON_ENTER);
  b.ldarg(0).call_intr(I_MON_PULSE);
  b.ldarg(0).call_intr(I_MON_WAIT);
  b.ldarg(0).call_intr(I_MON_EXIT);
  b.ldc_i4(1).ret();
  return b.finish();
}

/// echo(obj) { return obj; } — ref round trip through the serialize path.
std::int32_t build_echo(Module& mod, const std::string& name) {
  ILBuilder b(mod, name, {{ValType::Ref}, ValType::Ref});
  b.ldarg(0).ret();
  return b.finish();
}

/// One VM + service + listening server, open to its registered tenants.
struct Loopback {
  VirtualMachine vm;
  std::int32_t spin;
  ExecutionService svc;
  VmServer server;

  explicit Loopback(int workers = 2,
                    std::vector<service::TenantConfig> tenants = {{.name =
                                                                       "a"}})
      : spin(build_spin(vm.module(), "net.spin")),
        svc(vm, profiles::clr11(), {.workers = workers}),
        server(vm, svc, open_options()) {
    for (auto& t : tenants) svc.add_tenant(t);
    server.start();
  }

  static net::ServerOptions open_options() {
    net::ServerOptions o;
    o.open_tenants = true;
    return o;
  }

  VmClient client(const std::string& tenant = "a") {
    VmClient c;
    c.connect("127.0.0.1", server.port());
    c.hello(tenant, "");
    return c;
  }

  /// A fresh connection still completes a job — the liveness probe the
  /// hostile-input sweeps end with.
  void expect_alive() {
    VmClient c = client();
    const WireResult r = c.call(spin, {WireValue::from_i32(10)});
    EXPECT_EQ(r.outcome, 0);  // Completed
    EXPECT_EQ(r.value.as_i32(), 45);
  }
};

/// A well-formed SUBMIT frame for spin(10), the corpus for the sweeps.
std::vector<char> submit_frame(std::int32_t method, std::uint64_t req) {
  WireWriter w;
  w.u64(req);
  w.i32(method);
  w.u8(1);
  w.u8(static_cast<std::uint8_t>(ValType::I32));
  w.u64(Slot::from_i32(10).raw);
  return net::encode_frame(FrameType::Submit, w.data());
}

TEST(Net, ScalarRoundTrip) {
  Loopback lb;
  VmClient c = lb.client();
  const WireResult r = c.call(lb.spin, {WireValue::from_i32(1000)});
  EXPECT_EQ(r.outcome, 0);
  EXPECT_EQ(r.value.type, ValType::I32);
  EXPECT_EQ(r.value.as_i32(), 999 * 1000 / 2);
  EXPECT_EQ(r.error, "");

  // Shape errors surface as Rejected RESULTs, not dead connections.
  const WireResult bad_argc = c.call(lb.spin, {});
  EXPECT_EQ(bad_argc.outcome, 4);  // Rejected
  EXPECT_EQ(bad_argc.error, "argument count mismatch");
  const WireResult bad_method = c.call(1 << 20, {WireValue::from_i32(1)});
  EXPECT_EQ(bad_method.outcome, 4);
  EXPECT_EQ(bad_method.error, "bad method id");

  // Pipelined submits: results match on request id, whatever the order.
  std::vector<std::uint64_t> ids;
  for (int i = 1; i <= 8; ++i) {
    ids.push_back(c.send_submit(lb.spin, {WireValue::from_i32(i * 10)}));
  }
  std::map<std::uint64_t, std::int32_t> got;
  for (int i = 0; i < 8; ++i) {
    const WireResult res = c.recv_result();
    EXPECT_EQ(res.outcome, 0);
    got[res.request_id] = res.value.as_i32();
  }
  for (int i = 1; i <= 8; ++i) {
    const int n = i * 10;
    EXPECT_EQ(got[ids[static_cast<std::size_t>(i - 1)]], n * (n - 1) / 2);
  }
}

TEST(Net, RefArgAndResultRoundTrip) {
  Loopback lb;
  Module& mod = lb.vm.module();
  const auto node_cls = mod.define_class(
      "net.Node", {{"next", ValType::Ref}, {"v", ValType::I32}});
  const auto echo = build_echo(mod, "net.echo");

  // Build a 2-node list on the server VM, ship it as a serialize_graph blob.
  VMContext& ctx = lb.vm.main_context();
  std::vector<char> blob;
  {
    ObjRef head = lb.vm.heap().alloc_instance(node_cls, &ctx.tlab);
    Pinned pin(lb.vm, head);
    ObjRef tail = lb.vm.heap().alloc_instance(node_cls, &ctx.tlab);
    head->fields()[0].ref = tail;
    head->fields()[1].i32 = 11;
    tail->fields()[1].i32 = 22;
    blob = serialize_graph(lb.vm, head);
  }

  VmClient c = lb.client();
  const WireResult r = c.call(echo, {WireValue::from_graph(blob)});
  ASSERT_EQ(r.outcome, 0);
  ASSERT_EQ(r.value.type, ValType::Ref);
  ASSERT_FALSE(r.value.blob.empty());
  ObjRef back = deserialize_graph(lb.vm, ctx, r.value.blob.data(),
                                  r.value.blob.size());
  ASSERT_NE(back, nullptr);
  Pinned pin(lb.vm, back);
  EXPECT_EQ(back->fields()[1].i32, 11);
  ASSERT_NE(back->fields()[0].ref, nullptr);
  EXPECT_EQ(back->fields()[0].ref->fields()[1].i32, 22);

  // Null refs ride as empty blobs, both directions.
  const WireResult rnull = c.call(echo, {WireValue::from_graph({})});
  ASSERT_EQ(rnull.outcome, 0);
  EXPECT_TRUE(rnull.value.blob.empty());

  // A corrupt graph blob is Rejected by the defensive deserializer.
  std::vector<char> junk(blob);
  junk[junk.size() / 2] = static_cast<char>(junk[junk.size() / 2] ^ 0x5A);
  junk[0] = static_cast<char>(junk[0] ^ 0xFF);
  const WireResult rbad = c.call(echo, {WireValue::from_graph(junk)});
  EXPECT_EQ(rbad.outcome, 4);
  EXPECT_NE(rbad.error.find("bad argument graph"), std::string::npos);
}

TEST(Net, AuthRequiresExactToken) {
  VirtualMachine vm;
  const auto spin = build_spin(vm.module(), "net.spin");
  ExecutionService svc(vm, profiles::clr11(), {.workers = 1});
  svc.add_tenant({.name = "a"});
  svc.add_tenant({.name = "b"});
  VmServer server(vm, svc);  // closed: credentials only
  server.add_credential("a", "secret");
  server.start();

  VmClient wrong;
  wrong.connect("127.0.0.1", server.port());
  EXPECT_THROW(wrong.hello("a", "not-secret"), net::ProtocolError);
  VmClient uncredentialed;
  uncredentialed.connect("127.0.0.1", server.port());
  EXPECT_THROW(uncredentialed.hello("b", ""), net::ProtocolError);
  VmClient unknown;
  unknown.connect("127.0.0.1", server.port());
  EXPECT_THROW(unknown.hello("nobody", "secret"), net::ProtocolError);

  VmClient ok;
  ok.connect("127.0.0.1", server.port());
  ok.hello("a", "secret");
  EXPECT_EQ(ok.call(spin, {WireValue::from_i32(10)}).outcome, 0);
}

TEST(Net, OpenTenantsStillRequireRegistration) {
  Loopback lb;
  VmClient c;
  c.connect("127.0.0.1", lb.server.port());
  EXPECT_THROW(c.hello("never-registered", ""), net::ProtocolError);
  lb.expect_alive();
}

TEST(Net, BadMagicAndVersionAreRefused) {
  Loopback lb;
  const auto attempt = [&](std::uint32_t magic, std::uint32_t version) {
    WireWriter w;
    w.u32(magic);
    w.u32(version);
    w.str("a");
    w.str("");
    const std::vector<char> frame =
        net::encode_frame(FrameType::Hello, w.data());
    VmClient c;
    c.connect("127.0.0.1", lb.server.port());
    c.send_raw(frame.data(), frame.size());
    FrameType type{};
    std::vector<char> payload;
    ASSERT_TRUE(c.recv_frame(type, payload));
    EXPECT_EQ(type, FrameType::Error);
    // The server closes after the ERROR frame.
    EXPECT_FALSE(c.recv_frame(type, payload));
  };
  attempt(0xDEADBEEF, net::kVersion);
  attempt(net::kMagic, net::kVersion + 1);
  lb.expect_alive();
}

TEST(Net, SubmitBeforeHelloIsRefused) {
  Loopback lb;
  VmClient c;
  c.connect("127.0.0.1", lb.server.port());
  const std::vector<char> frame = submit_frame(lb.spin, 1);
  c.send_raw(frame.data(), frame.size());
  FrameType type{};
  std::vector<char> payload;
  ASSERT_TRUE(c.recv_frame(type, payload));
  EXPECT_EQ(type, FrameType::Error);
  EXPECT_FALSE(c.recv_frame(type, payload));
  lb.expect_alive();
}

TEST(Net, FuelAndDeadlineKillsCrossTheWire) {
  Loopback lb(2, {{.name = "fueled", .fuel_per_job = 10'000},
                  {.name = "slow", .deadline_ms = 50}});
  VmClient fueled = lb.client("fueled");
  const WireResult rf = fueled.call(lb.spin, {WireValue::from_i32(1 << 30)});
  EXPECT_EQ(rf.outcome, 1);  // KilledFuel
  EXPECT_GE(rf.fuel_spent, 10'000u);
  EXPECT_NE(rf.error, "");

  VmClient slow = lb.client("slow");
  const WireResult rd = slow.call(lb.spin, {WireValue::from_i32(1 << 30)});
  EXPECT_EQ(rd.outcome, 5);  // KilledDeadline
  EXPECT_GE(rd.run_ns, 50'000'000);
  EXPECT_GT(rd.fuel_spent, 0u);
}

TEST(Net, StatsOverTcp) {
  Loopback lb(2, {{.name = "a", .fuel_per_job = 100}});
  VmClient c = lb.client();
  EXPECT_EQ(c.call(lb.spin, {WireValue::from_i32(10)}).outcome, 0);
  EXPECT_EQ(c.call(lb.spin, {WireValue::from_i32(10)}).outcome, 0);
  EXPECT_EQ(c.call(lb.spin, {WireValue::from_i32(1 << 20)}).outcome, 1);
  const net::WireStats st = c.stats();
  EXPECT_EQ(st.jobs_completed, 2u);
  EXPECT_EQ(st.jobs_killed_fuel, 1u);
  EXPECT_GT(st.fuel_spent, 0u);
  EXPECT_GT(st.run_ns, 0);
}

TEST(Net, SnapshotOverTcpIsALoadableArchive) {
  Loopback lb;
  VmClient c = lb.client();
  // Warm the cache so the archive has something in it.
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(c.call(lb.spin, {WireValue::from_i32(5000)}).outcome, 0);
  }
  const std::vector<char> stream = c.snapshot();
  ASSERT_GE(stream.size(), 4u);
  WireReader r(stream.data(), stream.size());
  EXPECT_EQ(r.u32(), 0x48504341u);  // 'HPCA'
  const auto archives =
      deserialize_archives(lb.vm.module(), stream.data(), stream.size());
  EXPECT_FALSE(archives.empty());
  // The server kept serving through and after the quiesce.
  EXPECT_EQ(c.call(lb.spin, {WireValue::from_i32(10)}).outcome, 0);
}

TEST(Net, ConcurrentTenantsShareOneServer) {
  Loopback lb(2, {{.name = "a"}, {.name = "b"}});
  constexpr int kJobs = 20;
  const auto drive = [&](const std::string& tenant) {
    VmClient c = lb.client(tenant);
    for (int i = 0; i < kJobs; ++i) {
      const WireResult r = c.call(lb.spin, {WireValue::from_i32(100)});
      ASSERT_EQ(r.outcome, 0) << tenant;
      ASSERT_EQ(r.value.as_i32(), 4950) << tenant;
    }
    EXPECT_EQ(c.stats().jobs_completed, static_cast<std::uint64_t>(kJobs))
        << tenant;
  };
  std::thread tb([&] { drive("b"); });
  drive("a");
  tb.join();
}

// The tentpole's cancellation seam: a connection that drops takes its
// still-queued jobs with it. The single worker is parked inside a directly-
// submitted gate job (pickup confirmed by the monitor handshake), so the
// three TCP submits cannot start; a STATS round trip proves the loop
// dispatched them (frames on one connection are processed in order); then
// the client vanishes and the loop must fail all three as Rejected.
TEST(Net, DroppedConnectionRejectsPendingJobs) {
  VirtualMachine vm;
  Module& mod = vm.module();
  const auto gate = build_gate(mod, "net.gate");
  const auto spin = build_spin(mod, "net.spin");
  ExecutionService svc(vm, profiles::clr11(), {.workers = 1});
  svc.add_tenant({.name = "gatekeeper"});
  svc.add_tenant({.name = "a"});
  VmServer server(vm, svc, Loopback::open_options());
  server.start();

  VMContext& ctx = vm.main_context();
  ObjRef lock = vm.heap().alloc_instance(vm.thread_class(), &ctx.tlab);
  Pinned lock_pin(vm, lock);
  vm.monitors().enter(ctx, lock);
  auto blocker = svc.submit("gatekeeper", gate, {Slot::from_ref(lock)});
  ASSERT_TRUE(vm.monitors().wait(ctx, lock));  // worker provably busy

  {
    VmClient c;
    c.connect("127.0.0.1", server.port());
    c.hello("a", "");
    for (int i = 0; i < 3; ++i) {
      c.send_submit(spin, {WireValue::from_i32(10)});
    }
    (void)c.stats();  // barrier: all three SUBMITs are dispatched and queued
  }  // ~VmClient drops the socket with the jobs still queued

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (svc.tenant_stats("a").jobs_rejected < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(svc.tenant_stats("a").jobs_rejected, 3u);
  EXPECT_EQ(svc.tenant_stats("a").jobs_completed, 0u);

  vm.monitors().pulse(ctx, lock);
  vm.monitors().exit(ctx, lock);
  EXPECT_EQ(blocker.wait(&ctx).outcome, JobOutcome::Completed);
  server.stop();
  svc.drain(&ctx);
}

// --- Hostile input ---------------------------------------------------------

TEST(Net, TruncationAtEveryByteOffsetIsClean) {
  Loopback lb;
  const std::vector<char> frame = submit_frame(lb.spin, 7);
  for (std::size_t cut = 0; cut < frame.size(); ++cut) {
    VmClient c = lb.client();
    if (cut != 0) c.send_raw(frame.data(), cut);
    c.close();  // mid-frame EOF: the server must just reap the connection
  }
  lb.expect_alive();
}

TEST(Net, OversizedAndZeroLengthPrefixesAreRefused) {
  Loopback lb;
  for (const std::uint32_t len : {0u, net::kMaxFramePayload + 1, 0x7FFFFFFFu,
                                  0xFFFFFFFFu}) {
    WireWriter w;
    w.u32(len);
    w.u8(static_cast<std::uint8_t>(FrameType::Stats));
    VmClient c = lb.client();
    c.send_raw(w.data().data(), w.data().size());
    FrameType type{};
    std::vector<char> payload;
    ASSERT_TRUE(c.recv_frame(type, payload)) << len;
    EXPECT_EQ(type, FrameType::Error) << len;
    WireReader r(payload.data(), payload.size());
    EXPECT_EQ(r.str(), "bad frame length") << len;
    EXPECT_FALSE(c.recv_frame(type, payload)) << len;  // then close
  }
  lb.expect_alive();
}

TEST(Net, MidSubmitDisconnectLeavesServerHealthy) {
  Loopback lb;
  const std::vector<char> frame = submit_frame(lb.spin, 9);
  VmClient c = lb.client();
  c.send_raw(frame.data(), frame.size() / 2);
  c.close();
  lb.expect_alive();
}

// Flip each byte of a valid SUBMIT frame in turn. Depending on the byte this
// yields a bad length, a bad type, a bad tag, truncated payloads, or a
// perfectly valid submit for different arguments — all must leave the server
// able to keep serving. Replies are deliberately not read (a flipped length
// can legally leave the server waiting for more bytes, so reads could hang);
// the liveness probe at the end is the assertion.
TEST(Net, ByteFlipFuzzNeverKillsTheServer) {
  Loopback lb;
  const std::vector<char> frame = submit_frame(lb.spin, 11);
  const std::vector<char> stats = net::encode_frame(FrameType::Stats, {});
  for (std::size_t i = 0; i < frame.size(); ++i) {
    std::vector<char> mutant = frame;
    mutant[i] = static_cast<char>(mutant[i] ^ 0xFF);
    VmClient c = lb.client();
    c.send_raw(mutant.data(), mutant.size());
    c.send_raw(stats.data(), stats.size());
    c.close();
  }
  lb.expect_alive();
  // Whatever the mutants did, accounting is still coherent: nothing is
  // queued forever and STATS still answers.
  VmClient c = lb.client();
  const net::WireStats st = c.stats();
  EXPECT_GE(st.jobs_completed, 1u);  // at least the liveness probes
}

}  // namespace
}  // namespace hpcnet::test

// Multi-tenant execution service tests: deterministic fuel kills in every
// tier (including OSR continuations), memory-budget kills, co-tenant
// non-interference, concurrent submission, and the accounting-bypass
// regressions (DESIGN.md §11). The whole binary also runs under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "vm/execution.hpp"
#include "vm/heap.hpp"
#include "vm/ilbuilder.hpp"
#include "vm/intrinsics.hpp"
#include "vm/monitor.hpp"
#include "vm/service/service.hpp"
#include "vm/verifier.hpp"

namespace hpcnet::test {
namespace {

using namespace hpcnet::vm;
using service::ExecutionService;
using service::JobOutcome;
using service::JobResult;
using service::TenantConfig;

/// sum(0..n-1) with exactly one taken backward branch per iteration, so a
/// run of spin(n) costs n fuel (plus the pulse-window rounding at the kill).
std::int32_t build_spin(Module& mod, const std::string& name) {
  ILBuilder b(mod, name, {{ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  const auto sum = b.add_local(ValType::I32);
  auto loop = b.new_label();
  auto done = b.new_label();
  b.ldc_i4(0).stloc(i);
  b.ldc_i4(0).stloc(sum);
  b.bind(loop);
  b.ldloc(i).ldarg(0).bge(done);
  b.ldloc(sum).ldloc(i).add().stloc(sum);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.br(loop);
  b.bind(done);
  b.ldloc(sum).ret();
  return b.finish();
}

/// A floating-point recurrence whose bit pattern detects any perturbation.
std::int32_t build_compute(Module& mod, const std::string& name) {
  ILBuilder b(mod, name, {{ValType::I32}, ValType::F64});
  const auto i = b.add_local(ValType::I32);
  const auto acc = b.add_local(ValType::F64);
  auto loop = b.new_label();
  auto done = b.new_label();
  b.ldc_r8(1.0).stloc(acc);
  b.ldc_i4(0).stloc(i);
  b.bind(loop);
  b.ldloc(i).ldarg(0).bge(done);
  b.ldloc(acc).ldc_r8(1.0000001).mul().ldc_r8(0.5).add().stloc(acc);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.br(loop);
  b.bind(done);
  b.ldloc(acc).ret();
  return b.finish();
}

/// Allocates `count` f64 arrays of `elems` elements and drops each. With
/// elems >= 2048 every array takes the large-object path, which charges the
/// tenant budget exact byte counts — the kill point is deterministic.
std::int32_t build_alloc_loop(Module& mod, const std::string& name) {
  ILBuilder b(mod, name, {{ValType::I32, ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  auto loop = b.new_label();
  auto done = b.new_label();
  b.ldc_i4(0).stloc(i);
  b.bind(loop);
  b.ldloc(i).ldarg(0).bge(done);
  b.ldarg(1).newarr(ValType::F64).pop();
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.br(loop);
  b.bind(done);
  b.ldloc(i).ret();
  return b.finish();
}

/// spawner() { Thread.Join(Thread.Start(child, null)); return 1; } — the
/// shape a tenant would use to fork work onto an unmetered thread.
std::int32_t build_spawner(Module& mod, const std::string& name) {
  ILBuilder c(mod, name + ".child", {{ValType::Ref}, ValType::None});
  c.ret();
  const auto child = c.finish();
  ILBuilder b(mod, name, {{}, ValType::I32});
  b.ldc_i4(child).ldnull().call_intr(I_THREAD_START).call_intr(I_THREAD_JOIN);
  b.ldc_i4(1).ret();
  return b.finish();
}

TEST(Service, CompletesJobsAndReportsStats) {
  VirtualMachine vm;
  const auto spin = build_spin(vm.module(), "svc.spin");
  ExecutionService svc(vm, profiles::clr11(), {.workers = 2});
  svc.add_tenant({.name = "a"});
  auto h1 = svc.submit("a", spin, {Slot::from_i32(1000)});
  auto h2 = svc.submit("a", spin, {Slot::from_i32(10)});
  const JobResult r1 = h1.wait();
  const JobResult r2 = h2.wait();
  EXPECT_EQ(r1.outcome, JobOutcome::Completed);
  EXPECT_EQ(r1.value.i32, 999 * 1000 / 2);
  EXPECT_EQ(r2.outcome, JobOutcome::Completed);
  EXPECT_EQ(r2.value.i32, 45);
  EXPECT_EQ(r1.fuel_spent, 0u);  // unmetered tenant: the meter stays off
  svc.drain();
  const auto st = svc.tenant_stats("a");
  EXPECT_EQ(st.jobs_completed, 2u);
  EXPECT_EQ(st.jobs_killed_fuel + st.jobs_killed_memory, 0u);
}

TEST(Service, MalformedSubmissionsAreRejected) {
  VirtualMachine vm;
  const auto spin = build_spin(vm.module(), "svc.spin");
  // Unverifiable IL: pops an empty stack. Rejected by the worker's verifier.
  ILBuilder bad(vm.module(), "svc.bad", {{}, ValType::I32});
  bad.add().ret();
  const auto bad_id = bad.finish();

  ExecutionService svc(vm, profiles::clr11(), {.workers = 1});
  svc.add_tenant({.name = "a"});
  EXPECT_EQ(svc.submit("a", 9999, {}).wait().outcome, JobOutcome::Rejected);
  EXPECT_EQ(svc.submit("a", spin, {}).wait().outcome,
            JobOutcome::Rejected);  // argument count mismatch
  EXPECT_EQ(svc.submit("a", bad_id, {}).wait().outcome, JobOutcome::Rejected);
  EXPECT_THROW(svc.submit("nobody", spin, {Slot::from_i32(1)}),
               std::invalid_argument);
  EXPECT_EQ(svc.tenant_stats("a").jobs_rejected, 3u);
}

// The tentpole invariant: a fuel-exhausted job terminates deterministically —
// the same fuel count every run, in every tier, including the tiered
// pipeline's OSR continuation (spin OSR-enters compiled code at the loop
// header after 1024 back edges and keeps charging there).
TEST(Service, FuelKillIsDeterministicInEveryTier) {
  constexpr std::uint64_t kFuel = 10'000;
  std::vector<std::uint64_t> spent_by_profile;
  for (const char* prof : {"rotor10", "mono023", "clr11", "clr11.tiered"}) {
    VirtualMachine vm;
    const auto spin = build_spin(vm.module(), "svc.spin");
    ExecutionService svc(vm, profiles::by_name(prof), {.workers = 1});
    svc.add_tenant({.name = "a", .fuel_per_job = kFuel});
    const JobResult r1 =
        svc.submit("a", spin, {Slot::from_i32(1 << 20)}).wait();
    ASSERT_EQ(r1.outcome, JobOutcome::KilledFuel) << prof;
    EXPECT_GE(r1.fuel_spent, kFuel) << prof;
    // Overdraw is bounded by one pulse window.
    EXPECT_LT(r1.fuel_spent, kFuel + kFuelPulseBackedges) << prof;
    const JobResult r2 =
        svc.submit("a", spin, {Slot::from_i32(1 << 20)}).wait();
    ASSERT_EQ(r2.outcome, JobOutcome::KilledFuel) << prof;
    EXPECT_EQ(r1.fuel_spent, r2.fuel_spent) << prof;
    spent_by_profile.push_back(r1.fuel_spent);
  }
  // Fuel is a tier-independent unit (taken backward branches), so the kill
  // point agrees across the interpreter, baseline, optimizing, and
  // interp->OSR execution shapes.
  for (std::size_t i = 1; i < spent_by_profile.size(); ++i) {
    EXPECT_EQ(spent_by_profile[0], spent_by_profile[i]);
  }
}

TEST(Service, FuelExhaustedIsCatchableInIl) {
  VirtualMachine vm;
  Module& mod = vm.module();
  // try { spin-loop } catch (FuelExhausted) { return -1; }
  ILBuilder b(mod, "svc.catch_fuel", {{ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  const auto res = b.add_local(ValType::I32);
  auto t0 = b.new_label();
  auto t1 = b.new_label();
  auto h = b.new_label();
  auto out = b.new_label();
  auto loop = b.new_label();
  auto done = b.new_label();
  b.ldc_i4(0).stloc(res);
  b.ldc_i4(0).stloc(i);
  b.bind(t0);
  b.bind(loop);
  b.ldloc(i).ldarg(0).bge(done);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.br(loop);
  b.bind(done);
  b.ldc_i4(1).stloc(res);
  b.leave(out);
  b.bind(t1);
  b.add_catch(t0, t1, h, mod.fuel_exhausted_class());
  b.bind(h);
  b.pop().ldc_i4(-1).stloc(res).leave(out);
  b.bind(out);
  b.ldloc(res).ret();
  const auto catcher = b.finish();

  ExecutionService svc(vm, profiles::clr11(), {.workers = 1});
  svc.add_tenant({.name = "a", .fuel_per_job = 5'000});
  const JobResult r = svc.submit("a", catcher, {Slot::from_i32(1 << 20)}).wait();
  // The fault is a catchable managed exception: the job caught it and
  // completed normally, with the meter recording the overdraw.
  EXPECT_EQ(r.outcome, JobOutcome::Completed);
  EXPECT_EQ(r.value.i32, -1);
  EXPECT_GE(r.fuel_spent, 5'000u);
}

TEST(Service, MemoryBudgetKillsArrayCreateDeterministically) {
  VirtualMachine vm;
  const auto alloc = build_alloc_loop(vm.module(), "svc.alloc");
  ExecutionService svc(vm, profiles::clr11(), {.workers = 1});
  // 4096-element f64 arrays are 32 KiB payloads — large-object allocations,
  // charged exact sizes, so the kill lands on the same array every run.
  svc.add_tenant({.name = "a", .memory_budget_bytes = 256u << 10});
  const JobResult r1 =
      svc.submit("a", alloc, {Slot::from_i32(64), Slot::from_i32(4096)}).wait();
  ASSERT_EQ(r1.outcome, JobOutcome::KilledMemory);
  EXPECT_LE(r1.bytes_charged, 256u << 10);
  EXPECT_GE(r1.bytes_charged, 7u * 4096u * 8u);  // at least 7 arrays landed
  const JobResult r2 =
      svc.submit("a", alloc, {Slot::from_i32(64), Slot::from_i32(4096)}).wait();
  ASSERT_EQ(r2.outcome, JobOutcome::KilledMemory);
  EXPECT_EQ(r1.bytes_charged, r2.bytes_charged);
  // The budget was fully released at job teardown: a small run now fits.
  const JobResult r3 =
      svc.submit("a", alloc, {Slot::from_i32(4), Slot::from_i32(4096)}).wait();
  EXPECT_EQ(r3.outcome, JobOutcome::Completed);
}

// Satellite regression: metered jobs must not mint objects through the
// heap-shared TLAB unaccounted. Every byte a budgeted job allocates shows up
// in bytes_charged (region-granular on the TLAB path, exact on the large
// path), and a dry budget refuses both paths.
TEST(Service, BudgetedAllocationCannotBypassAccounting) {
  VirtualMachine vm;
  Heap& heap = vm.heap();
  // Direct heap probe: a TLAB bound to a dry budget refuses the small path
  // (region charge) and the large path (exact charge)...
  Tlab t;
  heap.register_tlab(t);
  AllocBudget dry(16u << 10);  // below one 64 KiB TLAB region
  t.bind_budget(&dry);
  EXPECT_EQ(heap.alloc_array(ValType::F64, 8192, &t), nullptr);  // large
  EXPECT_EQ(heap.alloc_array(ValType::I32, 4, &t), nullptr);     // region
  EXPECT_EQ(t.budget_charged(), 0u);
  // ...while the shared (tlab-less) path stays unmetered by design: that is
  // exactly why run_job must never leave a metered context on it.
  EXPECT_NE(heap.alloc_array(ValType::I32, 4, nullptr), nullptr);
  t.bind_budget(nullptr);
  heap.retire_tlab(t);
  heap.unregister_tlab(t);

  // Service-level: a budgeted job's charged bytes cover everything it
  // allocated. 10 arrays x 32 KiB payload must all be visible in the charge.
  const auto alloc = build_alloc_loop(vm.module(), "svc.alloc");
  ExecutionService svc(vm, profiles::clr11(), {.workers = 1});
  svc.add_tenant({.name = "a", .memory_budget_bytes = 8u << 20});
  const JobResult r =
      svc.submit("a", alloc, {Slot::from_i32(10), Slot::from_i32(4096)}).wait();
  ASSERT_EQ(r.outcome, JobOutcome::Completed);
  EXPECT_GE(r.bytes_charged, 10u * 4096u * 8u);
}

// Regression (REVIEW): a metered job must not escape its boundaries through
// Thread.Start — the child thread would run on a fresh context with no fuel
// meter and no allocation budget, and could outlive the job whose budget
// paid for it. Both metering axes refuse the spawn with a catchable fault;
// unmetered tenants keep the full threading substrate.
TEST(Service, MeteredJobCannotSpawnThreads) {
  VirtualMachine vm;
  const auto spawner = build_spawner(vm.module(), "svc.spawn");
  ExecutionService svc(vm, profiles::clr11(), {.workers = 1});
  svc.add_tenant({.name = "fuel", .fuel_per_job = 1'000'000});
  svc.add_tenant({.name = "mem", .memory_budget_bytes = 8u << 20});
  svc.add_tenant({.name = "free"});
  const JobResult rf = svc.submit("fuel", spawner, {}).wait();
  EXPECT_EQ(rf.outcome, JobOutcome::Faulted);
  EXPECT_NE(rf.error.find("Thread.Start refused"), std::string::npos);
  const JobResult rm = svc.submit("mem", spawner, {}).wait();
  EXPECT_EQ(rm.outcome, JobOutcome::Faulted);
  EXPECT_NE(rm.error.find("Thread.Start refused"), std::string::npos);
  const JobResult ru = svc.submit("free", spawner, {}).wait();
  EXPECT_EQ(ru.outcome, JobOutcome::Completed);
  EXPECT_EQ(ru.value.i32, 1);
}

// Regression (REVIEW): a budgeted refill must charge a fixed segment granule
// rather than whatever free run first-fits — run sizes depend on co-tenant
// GC/fragmentation history, which would make the budget-kill point
// nondeterministic and let one huge run drain a tenant's budget for a single
// TLAB window.
TEST(Service, BudgetedRefillChargesFixedGranuleDespiteFragmentation) {
  VirtualMachine vm;
  Heap& heap = vm.heap();
  VMContext& ctx = vm.main_context();
  // Manufacture fragmentation: fill segments with small dead objects, keep
  // one pinned survivor so its segment stays live, and collect — the
  // survivor's segment now holds a large free run feeding first-fit refills.
  ObjRef keep = heap.alloc_instance(vm.thread_class(), &ctx.tlab);
  Pinned pin(vm, keep);
  for (int i = 0; i < 4096; ++i) {
    heap.alloc_instance(vm.thread_class(), &ctx.tlab);
  }
  vm.collect();

  Tlab t;
  heap.register_tlab(t);
  AllocBudget budget(Heap::kSegmentBytes + Heap::kSegmentBytes / 2);
  t.bind_budget(&budget);
  // The refill charges exactly one granule, not the run the GC left behind.
  EXPECT_NE(heap.alloc_array(ValType::I32, 4, &t), nullptr);
  EXPECT_EQ(t.budget_charged(), Heap::kSegmentBytes);
  // The remaining half granule cannot pay for another refill: a second
  // budgeted window is refused even though free runs remain available to
  // unmetered callers.
  Tlab t2;
  heap.register_tlab(t2);
  t2.bind_budget(&budget);
  EXPECT_EQ(heap.alloc_array(ValType::I32, 4, &t2), nullptr);
  EXPECT_EQ(t2.budget_charged(), 0u);
  t2.bind_budget(nullptr);
  heap.unregister_tlab(t2);
  t.bind_budget(nullptr);
  heap.unregister_tlab(t);
}

// Regression (REVIEW): limits above INT64_MAX mean "effectively unmetered",
// not a meter armed already negative (fuel) or a pool that refuses
// everything after a wrapped cast (memory).
TEST(Service, OverWideLimitsClampRatherThanKill) {
  VirtualMachine vm;
  const auto spin = build_spin(vm.module(), "svc.spin");
  ExecutionService svc(vm, profiles::clr11(), {.workers = 1});
  svc.add_tenant({.name = "a",
                  .fuel_per_job = std::numeric_limits<std::uint64_t>::max()});
  const JobResult r = svc.submit("a", spin, {Slot::from_i32(200'000)}).wait();
  EXPECT_EQ(r.outcome, JobOutcome::Completed);  // meter armed, never fires
  EXPECT_GE(r.fuel_spent, 200'000u);

  AllocBudget wide(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(wide.remaining(), std::numeric_limits<std::int64_t>::max());
  // A charge wider than the signed pool can never succeed (the unclamped
  // cast would wrap negative and "succeed" by growing the pool).
  EXPECT_FALSE(wide.try_charge(std::numeric_limits<std::uint64_t>::max()));
  EXPECT_TRUE(wide.try_charge(64));
}

TEST(Service, CoTenantKillDoesNotPerturbVictimResults) {
  VirtualMachine vm;
  const auto spin = build_spin(vm.module(), "svc.spin");
  const auto alloc = build_alloc_loop(vm.module(), "svc.alloc");
  const auto compute = build_compute(vm.module(), "svc.compute");

  // Reference result, computed directly on an engine of the same profile.
  auto engine = make_engine(vm, profiles::clr11());
  VMContext& ctx = vm.main_context();
  ctx.engine = engine.get();
  verify(vm.module(), compute);
  const std::vector<Slot> cargs{Slot::from_i32(200'000)};
  const Slot expected = engine->invoke(ctx, compute, cargs);

  ExecutionService svc(vm, profiles::clr11(), {.workers = 2});
  svc.add_tenant({.name = "noisy",
                  .fuel_per_job = 20'000,
                  .memory_budget_bytes = 256u << 10});
  svc.add_tenant({.name = "victim"});
  std::vector<service::JobHandle> victims;
  std::uint64_t kills = 0;
  for (int round = 0; round < 8; ++round) {
    auto hk = svc.submit("noisy", spin, {Slot::from_i32(1 << 20)});
    auto hm =
        svc.submit("noisy", alloc, {Slot::from_i32(64), Slot::from_i32(4096)});
    victims.push_back(svc.submit("victim", compute, cargs));
    EXPECT_EQ(hk.wait(&ctx).outcome, JobOutcome::KilledFuel);
    EXPECT_EQ(hm.wait(&ctx).outcome, JobOutcome::KilledMemory);
    ++kills;
  }
  for (auto& h : victims) {
    const JobResult r = h.wait(&ctx);
    ASSERT_EQ(r.outcome, JobOutcome::Completed);
    // Bit-identical to the uncontended direct run: co-tenant kills must not
    // perturb a victim's floating-point results.
    EXPECT_EQ(r.value.raw, expected.raw);
  }
  EXPECT_GE(kills, 1u);
  svc.drain(&ctx);
  EXPECT_EQ(svc.tenant_stats("victim").jobs_completed, victims.size());
  EXPECT_EQ(svc.tenant_stats("noisy").jobs_killed_fuel, 8u);
  EXPECT_EQ(svc.tenant_stats("noisy").jobs_killed_memory, 8u);
}

/// gate(obj) { lock(obj) { Monitor.Pulse(obj); Monitor.Wait(obj); } ret 1 }
/// Handshake for deterministic "worker busy" tests, no sleeps or racy flags:
/// the test thread holds the monitor, submits this job, then calls
/// monitors().wait — which parks until the worker has picked the job up,
/// entered the monitor and pulsed. When the test's wait returns, the worker
/// is provably in-flight and parked (GC-safe) in Monitor.Wait; pulse + exit
/// releases it.
std::int32_t build_gate(Module& mod, const std::string& name) {
  ILBuilder b(mod, name, {{ValType::Ref}, ValType::I32});
  b.ldarg(0).call_intr(I_MON_ENTER);
  b.ldarg(0).call_intr(I_MON_PULSE);
  b.ldarg(0).call_intr(I_MON_WAIT);
  b.ldarg(0).call_intr(I_MON_EXIT);
  b.ldc_i4(1).ret();
  return b.finish();
}

// Regression (PR 10): ref-typed args of a QUEUED job were not GC roots — a
// Slot in the service's deque is invisible to the collector's stack walk, so
// a major collection between submit and pickup swept an otherwise-
// unreachable argument graph and the job later dereferenced freed memory.
// submit now pins the graph until worker pickup. Census is exact:
// heap.stats().live_objects drains the lazy sweep list.
TEST(Service, QueuedRefArgsSurviveMajorCollection) {
  VirtualMachine vm;
  Module& mod = vm.module();
  const auto node_cls = mod.define_class(
      "svc.Node", {{"a", ValType::Ref}, {"b", ValType::Ref}, {"v", ValType::I32}});
  // touch(n) = n.v + n.a.v + n.b.v — faults loudly if the graph died.
  ILBuilder tb(mod, "svc.touch", {{ValType::Ref}, ValType::I32});
  tb.ldarg(0).ldfld(node_cls, 2);
  tb.ldarg(0).ldfld(node_cls, 0).ldfld(node_cls, 2).add();
  tb.ldarg(0).ldfld(node_cls, 1).ldfld(node_cls, 2).add();
  tb.ret();
  const auto touch = tb.finish();
  const auto gate = build_gate(mod, "svc.gate");

  ExecutionService svc(vm, profiles::clr11(), {.workers = 1});
  svc.add_tenant({.name = "a"});

  VMContext& ctx = vm.main_context();
  Heap& heap = vm.heap();
  ObjRef lock = heap.alloc_instance(vm.thread_class(), &ctx.tlab);
  Pinned lock_pin(vm, lock);
  vm.monitors().enter(ctx, lock);
  auto blocker = svc.submit("a", gate, {Slot::from_ref(lock)});
  // Returns once the worker has picked the blocker up, pulsed, and parked
  // GC-safe in Monitor.Wait — the worker is now provably busy.
  ASSERT_TRUE(vm.monitors().wait(ctx, lock));

  const std::size_t base = heap.stats().live_objects;
  service::JobHandle queued = [&] {
    // Scope the native pins: after this block the 3-node graph is reachable
    // ONLY through the queued job's submit-time pins.
    ObjRef root = heap.alloc_instance(node_cls, &ctx.tlab);
    Pinned root_pin(vm, root);
    ObjRef na = heap.alloc_instance(node_cls, &ctx.tlab);
    root->fields()[0].ref = na;
    ObjRef nb = heap.alloc_instance(node_cls, &ctx.tlab);
    root->fields()[1].ref = nb;
    root->fields()[2].i32 = 5;
    na->fields()[2].i32 = 7;
    nb->fields()[2].i32 = 9;
    return svc.submit("a", touch, {Slot::from_ref(root)});
  }();
  EXPECT_EQ(heap.stats().live_objects, base + 3);

  // The worker is parked inside the gate job; `queued` sits in the deque.
  vm.collect();
  EXPECT_EQ(heap.stats().live_objects, base + 3);  // pins held the graph

  vm.monitors().pulse(ctx, lock);
  vm.monitors().exit(ctx, lock);
  EXPECT_EQ(blocker.wait(&ctx).outcome, JobOutcome::Completed);
  const JobResult r = queued.wait(&ctx);
  ASSERT_EQ(r.outcome, JobOutcome::Completed);
  EXPECT_EQ(r.value.i32, 21);
  svc.drain(&ctx);
  // Pickup unpinned the args; with the job done the graph is garbage again.
  vm.collect();
  EXPECT_EQ(heap.stats().live_objects, base);
}

// Regression (PR 10): capture_snapshot drained and then captured without
// closing admission, so a submit racing the drain predicate could start a
// compile while capture walked the cache (a TSan-visible race on cache
// internals). Admission is now held closed across the whole quiesce window.
// This test is the TSan witness: 8 submitters hammer submit while the main
// thread captures repeatedly.
TEST(Service, SubmitRacesCaptureSnapshotSafely) {
  VirtualMachine vm;
  const auto spin = build_spin(vm.module(), "svc.spin");
  ExecutionService svc(vm, profiles::clr11(), {.workers = 2});
  svc.add_tenant({.name = "a"});
  constexpr int kThreads = 8;
  constexpr int kJobsPerThread = 20;
  std::atomic<int> ok{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        const JobResult r =
            svc.submit("a", spin, {Slot::from_i32(2000)}).wait();
        if (r.outcome == JobOutcome::Completed) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (int c = 0; c < 5; ++c) {
    EXPECT_NE(svc.capture_snapshot(), nullptr);
  }
  for (std::thread& t : submitters) t.join();
  svc.drain();
  EXPECT_EQ(ok.load(), kThreads * kJobsPerThread);
}

// Regression (PR 10): ~ExecutionService used to leave still-queued jobs
// undelivered — a handle whose service died blocked in wait() forever. The
// destructor now fails them as Rejected ("service stopped") BEFORE joining,
// so waits unblock even while an in-flight job is still finishing.
TEST(Service, DestroyedServiceRejectsQueuedJobs) {
  VirtualMachine vm;
  Module& mod = vm.module();
  const auto gate = build_gate(mod, "svc.gate");
  const auto spin = build_spin(mod, "svc.spin");

  VMContext& ctx = vm.main_context();
  ObjRef lock = vm.heap().alloc_instance(vm.thread_class(), &ctx.tlab);
  Pinned lock_pin(vm, lock);
  vm.monitors().enter(ctx, lock);

  auto svc = std::make_unique<ExecutionService>(vm, profiles::clr11(),
                                                ExecutionService::Options{.workers = 1});
  svc->add_tenant({.name = "a"});
  auto blocker = svc->submit("a", gate, {Slot::from_ref(lock)});
  // Handshake: do not queue the spins (or destroy the service) until the
  // worker has provably picked the blocker up and parked in Monitor.Wait.
  ASSERT_TRUE(vm.monitors().wait(ctx, lock));
  std::vector<service::JobHandle> queued;
  for (int i = 0; i < 4; ++i) {
    queued.push_back(svc->submit("a", spin, {Slot::from_i32(10)}));
  }
  // Destroy the service while its only worker is parked inside the gate job
  // (the 4 spins cannot have started). The destructor must fail them before
  // joining — these waits would otherwise deadlock against the held monitor.
  std::thread destroyer([&] { svc.reset(); });
  for (auto& h : queued) {
    const JobResult r = h.wait(&ctx);
    EXPECT_EQ(r.outcome, JobOutcome::Rejected);
    EXPECT_EQ(r.error, "service stopped");
  }
  vm.monitors().pulse(ctx, lock);
  vm.monitors().exit(ctx, lock);
  destroyer.join();
  // The in-flight gate job was allowed to finish normally.
  EXPECT_EQ(blocker.wait(&ctx).outcome, JobOutcome::Completed);
}

TEST(Service, CancelRemovesQueuedJobOnly) {
  VirtualMachine vm;
  Module& mod = vm.module();
  const auto gate = build_gate(mod, "svc.gate");
  const auto spin = build_spin(mod, "svc.spin");

  VMContext& ctx = vm.main_context();
  ObjRef lock = vm.heap().alloc_instance(vm.thread_class(), &ctx.tlab);
  Pinned lock_pin(vm, lock);
  vm.monitors().enter(ctx, lock);

  ExecutionService svc(vm, profiles::clr11(), {.workers = 1});
  svc.add_tenant({.name = "a"});
  auto blocker = svc.submit("a", gate, {Slot::from_ref(lock)});
  // Wait for pickup: without the handshake, cancel(victim) could race the
  // worker's pop and legitimately remove the still-queued blocker instead.
  ASSERT_TRUE(vm.monitors().wait(ctx, lock));
  auto victim = svc.submit("a", spin, {Slot::from_i32(10)});
  EXPECT_TRUE(svc.cancel(victim));
  EXPECT_FALSE(svc.cancel(victim));  // already finished (as Rejected)
  const JobResult r = victim.wait(&ctx);
  EXPECT_EQ(r.outcome, JobOutcome::Rejected);
  EXPECT_EQ(r.error, "cancelled");
  // A running job is never interrupted by cancel.
  EXPECT_FALSE(svc.cancel(blocker));
  vm.monitors().pulse(ctx, lock);
  vm.monitors().exit(ctx, lock);
  EXPECT_EQ(blocker.wait(&ctx).outcome, JobOutcome::Completed);
  svc.drain(&ctx);
  EXPECT_EQ(svc.tenant_stats("a").jobs_rejected, 1u);
  EXPECT_EQ(svc.tenant_stats("a").jobs_completed, 1u);
}

// PR 10: wall-clock deadlines ride the same pulse cadence as fuel, in every
// tier. The kill is not deterministic in fuel units (it is time), but the
// outcome, the exception class and the stats axis are.
TEST(Service, DeadlineKillsInEveryTier) {
  for (const char* prof : {"rotor10", "mono023", "clr11", "clr11.tiered"}) {
    VirtualMachine vm;
    const auto spin = build_spin(vm.module(), "svc.spin");
    ExecutionService svc(vm, profiles::by_name(prof), {.workers = 1});
    svc.add_tenant({.name = "a", .deadline_ms = 50});
    const JobResult r =
        svc.submit("a", spin, {Slot::from_i32(1 << 30)}).wait();
    ASSERT_EQ(r.outcome, JobOutcome::KilledDeadline) << prof;
    EXPECT_GE(r.run_ns, 50'000'000) << prof;
    // Deadline-only tenants still arm the meter (with the fuel axis clamped
    // to infinity), so the job's work is accounted even though fuel never
    // kills it.
    EXPECT_GT(r.fuel_spent, 0u) << prof;
    EXPECT_EQ(svc.tenant_stats("a").jobs_killed_deadline, 1u) << prof;
  }
}

TEST(Service, DeadlineExceededIsCatchableInIl) {
  VirtualMachine vm;
  Module& mod = vm.module();
  // try { spin-loop } catch (DeadlineExceeded) { return -1; }
  ILBuilder b(mod, "svc.catch_deadline", {{ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  const auto res = b.add_local(ValType::I32);
  auto t0 = b.new_label();
  auto t1 = b.new_label();
  auto h = b.new_label();
  auto out = b.new_label();
  auto loop = b.new_label();
  auto done = b.new_label();
  b.ldc_i4(0).stloc(res);
  b.ldc_i4(0).stloc(i);
  b.bind(t0);
  b.bind(loop);
  b.ldloc(i).ldarg(0).bge(done);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.br(loop);
  b.bind(done);
  b.ldc_i4(1).stloc(res);
  b.leave(out);
  b.bind(t1);
  b.add_catch(t0, t1, h, mod.deadline_exceeded_class());
  b.bind(h);
  b.pop().ldc_i4(-1).stloc(res).leave(out);
  b.bind(out);
  b.ldloc(res).ret();
  const auto catcher = b.finish();

  ExecutionService svc(vm, profiles::clr11(), {.workers = 1});
  svc.add_tenant({.name = "a", .deadline_ms = 50});
  const JobResult r = svc.submit("a", catcher, {Slot::from_i32(1 << 30)}).wait();
  EXPECT_EQ(r.outcome, JobOutcome::Completed);
  EXPECT_EQ(r.value.i32, -1);
}

// PR 10: deficit round-robin over per-tenant sub-queues replaced the global
// FIFO. With the single worker parked behind the gate, the dispatch order of
// a pre-filled backlog is a pure function of the queues and weights.
TEST(Service, WeightedSchedulingInterleavesByWeight) {
  VirtualMachine vm;
  Module& mod = vm.module();
  const auto gate = build_gate(mod, "svc.gate");
  const auto spin = build_spin(mod, "svc.spin");

  VMContext& ctx = vm.main_context();
  ObjRef lock = vm.heap().alloc_instance(vm.thread_class(), &ctx.tlab);
  Pinned lock_pin(vm, lock);
  vm.monitors().enter(ctx, lock);

  ExecutionService svc(vm, profiles::clr11(), {.workers = 1});
  svc.add_tenant({.name = "gate"});
  svc.add_tenant({.name = "heavy", .weight = 3});
  svc.add_tenant({.name = "light", .weight = 1});
  auto blocker = svc.submit("gate", gate, {Slot::from_ref(lock)});
  // The backlog below must be fully queued before the worker frees up; the
  // handshake proves the worker is parked inside the gate job first.
  ASSERT_TRUE(vm.monitors().wait(ctx, lock));

  std::mutex order_mu;
  std::string order;
  const auto record = [&](char tag) {
    return [&order_mu, &order, tag](const JobResult&) {
      std::lock_guard<std::mutex> g(order_mu);
      order.push_back(tag);
    };
  };
  std::vector<service::JobHandle> handles;
  for (int i = 0; i < 6; ++i) {
    handles.push_back(
        svc.submit("heavy", spin, {Slot::from_i32(10)}, record('H')));
  }
  for (int i = 0; i < 2; ++i) {
    handles.push_back(
        svc.submit("light", spin, {Slot::from_i32(10)}, record('L')));
  }
  vm.monitors().pulse(ctx, lock);
  vm.monitors().exit(ctx, lock);
  EXPECT_EQ(blocker.wait(&ctx).outcome, JobOutcome::Completed);
  for (auto& h : handles) {
    EXPECT_EQ(h.wait(&ctx).outcome, JobOutcome::Completed);
  }
  svc.drain(&ctx);
  std::lock_guard<std::mutex> g(order_mu);
  // heavy serves 3 per turn, light 1: HHH L HHH L.
  EXPECT_EQ(order, "HHHLHHHL");
}

TEST(Service, ConcurrentSubmissionFromEightThreads) {
  VirtualMachine vm;
  const auto spin = build_spin(vm.module(), "svc.spin");
  ExecutionService svc(vm, profiles::clr11(), {.workers = 8});
  for (int t = 0; t < 4; ++t) {
    svc.add_tenant({.name = "t" + std::to_string(t),
                    .fuel_per_job = t % 2 == 0 ? 0u : 1'000'000u});
  }
  constexpr int kThreads = 8;
  constexpr int kJobsPerThread = 25;
  std::atomic<int> ok{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        const int n = 100 + (t * kJobsPerThread + j) % 900;
        const JobResult r =
            svc.submit("t" + std::to_string(t % 4), spin, {Slot::from_i32(n)})
                .wait();
        if (r.outcome == JobOutcome::Completed &&
            r.value.i32 == (n - 1) * n / 2) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  svc.drain();
  EXPECT_EQ(ok.load(), kThreads * kJobsPerThread);
  std::uint64_t total = 0;
  for (int t = 0; t < 4; ++t) {
    total += svc.tenant_stats("t" + std::to_string(t)).jobs_completed;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads * kJobsPerThread));
}

}  // namespace
}  // namespace hpcnet::test

// Multi-tenant execution service tests: deterministic fuel kills in every
// tier (including OSR continuations), memory-budget kills, co-tenant
// non-interference, concurrent submission, and the accounting-bypass
// regressions (DESIGN.md §11). The whole binary also runs under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "vm/execution.hpp"
#include "vm/heap.hpp"
#include "vm/ilbuilder.hpp"
#include "vm/intrinsics.hpp"
#include "vm/service/service.hpp"
#include "vm/verifier.hpp"

namespace hpcnet::test {
namespace {

using namespace hpcnet::vm;
using service::ExecutionService;
using service::JobOutcome;
using service::JobResult;
using service::TenantConfig;

/// sum(0..n-1) with exactly one taken backward branch per iteration, so a
/// run of spin(n) costs n fuel (plus the pulse-window rounding at the kill).
std::int32_t build_spin(Module& mod, const std::string& name) {
  ILBuilder b(mod, name, {{ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  const auto sum = b.add_local(ValType::I32);
  auto loop = b.new_label();
  auto done = b.new_label();
  b.ldc_i4(0).stloc(i);
  b.ldc_i4(0).stloc(sum);
  b.bind(loop);
  b.ldloc(i).ldarg(0).bge(done);
  b.ldloc(sum).ldloc(i).add().stloc(sum);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.br(loop);
  b.bind(done);
  b.ldloc(sum).ret();
  return b.finish();
}

/// A floating-point recurrence whose bit pattern detects any perturbation.
std::int32_t build_compute(Module& mod, const std::string& name) {
  ILBuilder b(mod, name, {{ValType::I32}, ValType::F64});
  const auto i = b.add_local(ValType::I32);
  const auto acc = b.add_local(ValType::F64);
  auto loop = b.new_label();
  auto done = b.new_label();
  b.ldc_r8(1.0).stloc(acc);
  b.ldc_i4(0).stloc(i);
  b.bind(loop);
  b.ldloc(i).ldarg(0).bge(done);
  b.ldloc(acc).ldc_r8(1.0000001).mul().ldc_r8(0.5).add().stloc(acc);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.br(loop);
  b.bind(done);
  b.ldloc(acc).ret();
  return b.finish();
}

/// Allocates `count` f64 arrays of `elems` elements and drops each. With
/// elems >= 2048 every array takes the large-object path, which charges the
/// tenant budget exact byte counts — the kill point is deterministic.
std::int32_t build_alloc_loop(Module& mod, const std::string& name) {
  ILBuilder b(mod, name, {{ValType::I32, ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  auto loop = b.new_label();
  auto done = b.new_label();
  b.ldc_i4(0).stloc(i);
  b.bind(loop);
  b.ldloc(i).ldarg(0).bge(done);
  b.ldarg(1).newarr(ValType::F64).pop();
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.br(loop);
  b.bind(done);
  b.ldloc(i).ret();
  return b.finish();
}

/// spawner() { Thread.Join(Thread.Start(child, null)); return 1; } — the
/// shape a tenant would use to fork work onto an unmetered thread.
std::int32_t build_spawner(Module& mod, const std::string& name) {
  ILBuilder c(mod, name + ".child", {{ValType::Ref}, ValType::None});
  c.ret();
  const auto child = c.finish();
  ILBuilder b(mod, name, {{}, ValType::I32});
  b.ldc_i4(child).ldnull().call_intr(I_THREAD_START).call_intr(I_THREAD_JOIN);
  b.ldc_i4(1).ret();
  return b.finish();
}

TEST(Service, CompletesJobsAndReportsStats) {
  VirtualMachine vm;
  const auto spin = build_spin(vm.module(), "svc.spin");
  ExecutionService svc(vm, profiles::clr11(), {.workers = 2});
  svc.add_tenant({.name = "a"});
  auto h1 = svc.submit("a", spin, {Slot::from_i32(1000)});
  auto h2 = svc.submit("a", spin, {Slot::from_i32(10)});
  const JobResult r1 = h1.wait();
  const JobResult r2 = h2.wait();
  EXPECT_EQ(r1.outcome, JobOutcome::Completed);
  EXPECT_EQ(r1.value.i32, 999 * 1000 / 2);
  EXPECT_EQ(r2.outcome, JobOutcome::Completed);
  EXPECT_EQ(r2.value.i32, 45);
  EXPECT_EQ(r1.fuel_spent, 0u);  // unmetered tenant: the meter stays off
  svc.drain();
  const auto st = svc.tenant_stats("a");
  EXPECT_EQ(st.jobs_completed, 2u);
  EXPECT_EQ(st.jobs_killed_fuel + st.jobs_killed_memory, 0u);
}

TEST(Service, MalformedSubmissionsAreRejected) {
  VirtualMachine vm;
  const auto spin = build_spin(vm.module(), "svc.spin");
  // Unverifiable IL: pops an empty stack. Rejected by the worker's verifier.
  ILBuilder bad(vm.module(), "svc.bad", {{}, ValType::I32});
  bad.add().ret();
  const auto bad_id = bad.finish();

  ExecutionService svc(vm, profiles::clr11(), {.workers = 1});
  svc.add_tenant({.name = "a"});
  EXPECT_EQ(svc.submit("a", 9999, {}).wait().outcome, JobOutcome::Rejected);
  EXPECT_EQ(svc.submit("a", spin, {}).wait().outcome,
            JobOutcome::Rejected);  // argument count mismatch
  EXPECT_EQ(svc.submit("a", bad_id, {}).wait().outcome, JobOutcome::Rejected);
  EXPECT_THROW(svc.submit("nobody", spin, {Slot::from_i32(1)}),
               std::invalid_argument);
  EXPECT_EQ(svc.tenant_stats("a").jobs_rejected, 3u);
}

// The tentpole invariant: a fuel-exhausted job terminates deterministically —
// the same fuel count every run, in every tier, including the tiered
// pipeline's OSR continuation (spin OSR-enters compiled code at the loop
// header after 1024 back edges and keeps charging there).
TEST(Service, FuelKillIsDeterministicInEveryTier) {
  constexpr std::uint64_t kFuel = 10'000;
  std::vector<std::uint64_t> spent_by_profile;
  for (const char* prof : {"rotor10", "mono023", "clr11", "clr11.tiered"}) {
    VirtualMachine vm;
    const auto spin = build_spin(vm.module(), "svc.spin");
    ExecutionService svc(vm, profiles::by_name(prof), {.workers = 1});
    svc.add_tenant({.name = "a", .fuel_per_job = kFuel});
    const JobResult r1 =
        svc.submit("a", spin, {Slot::from_i32(1 << 20)}).wait();
    ASSERT_EQ(r1.outcome, JobOutcome::KilledFuel) << prof;
    EXPECT_GE(r1.fuel_spent, kFuel) << prof;
    // Overdraw is bounded by one pulse window.
    EXPECT_LT(r1.fuel_spent, kFuel + kFuelPulseBackedges) << prof;
    const JobResult r2 =
        svc.submit("a", spin, {Slot::from_i32(1 << 20)}).wait();
    ASSERT_EQ(r2.outcome, JobOutcome::KilledFuel) << prof;
    EXPECT_EQ(r1.fuel_spent, r2.fuel_spent) << prof;
    spent_by_profile.push_back(r1.fuel_spent);
  }
  // Fuel is a tier-independent unit (taken backward branches), so the kill
  // point agrees across the interpreter, baseline, optimizing, and
  // interp->OSR execution shapes.
  for (std::size_t i = 1; i < spent_by_profile.size(); ++i) {
    EXPECT_EQ(spent_by_profile[0], spent_by_profile[i]);
  }
}

TEST(Service, FuelExhaustedIsCatchableInIl) {
  VirtualMachine vm;
  Module& mod = vm.module();
  // try { spin-loop } catch (FuelExhausted) { return -1; }
  ILBuilder b(mod, "svc.catch_fuel", {{ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  const auto res = b.add_local(ValType::I32);
  auto t0 = b.new_label();
  auto t1 = b.new_label();
  auto h = b.new_label();
  auto out = b.new_label();
  auto loop = b.new_label();
  auto done = b.new_label();
  b.ldc_i4(0).stloc(res);
  b.ldc_i4(0).stloc(i);
  b.bind(t0);
  b.bind(loop);
  b.ldloc(i).ldarg(0).bge(done);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.br(loop);
  b.bind(done);
  b.ldc_i4(1).stloc(res);
  b.leave(out);
  b.bind(t1);
  b.add_catch(t0, t1, h, mod.fuel_exhausted_class());
  b.bind(h);
  b.pop().ldc_i4(-1).stloc(res).leave(out);
  b.bind(out);
  b.ldloc(res).ret();
  const auto catcher = b.finish();

  ExecutionService svc(vm, profiles::clr11(), {.workers = 1});
  svc.add_tenant({.name = "a", .fuel_per_job = 5'000});
  const JobResult r = svc.submit("a", catcher, {Slot::from_i32(1 << 20)}).wait();
  // The fault is a catchable managed exception: the job caught it and
  // completed normally, with the meter recording the overdraw.
  EXPECT_EQ(r.outcome, JobOutcome::Completed);
  EXPECT_EQ(r.value.i32, -1);
  EXPECT_GE(r.fuel_spent, 5'000u);
}

TEST(Service, MemoryBudgetKillsArrayCreateDeterministically) {
  VirtualMachine vm;
  const auto alloc = build_alloc_loop(vm.module(), "svc.alloc");
  ExecutionService svc(vm, profiles::clr11(), {.workers = 1});
  // 4096-element f64 arrays are 32 KiB payloads — large-object allocations,
  // charged exact sizes, so the kill lands on the same array every run.
  svc.add_tenant({.name = "a", .memory_budget_bytes = 256u << 10});
  const JobResult r1 =
      svc.submit("a", alloc, {Slot::from_i32(64), Slot::from_i32(4096)}).wait();
  ASSERT_EQ(r1.outcome, JobOutcome::KilledMemory);
  EXPECT_LE(r1.bytes_charged, 256u << 10);
  EXPECT_GE(r1.bytes_charged, 7u * 4096u * 8u);  // at least 7 arrays landed
  const JobResult r2 =
      svc.submit("a", alloc, {Slot::from_i32(64), Slot::from_i32(4096)}).wait();
  ASSERT_EQ(r2.outcome, JobOutcome::KilledMemory);
  EXPECT_EQ(r1.bytes_charged, r2.bytes_charged);
  // The budget was fully released at job teardown: a small run now fits.
  const JobResult r3 =
      svc.submit("a", alloc, {Slot::from_i32(4), Slot::from_i32(4096)}).wait();
  EXPECT_EQ(r3.outcome, JobOutcome::Completed);
}

// Satellite regression: metered jobs must not mint objects through the
// heap-shared TLAB unaccounted. Every byte a budgeted job allocates shows up
// in bytes_charged (region-granular on the TLAB path, exact on the large
// path), and a dry budget refuses both paths.
TEST(Service, BudgetedAllocationCannotBypassAccounting) {
  VirtualMachine vm;
  Heap& heap = vm.heap();
  // Direct heap probe: a TLAB bound to a dry budget refuses the small path
  // (region charge) and the large path (exact charge)...
  Tlab t;
  heap.register_tlab(t);
  AllocBudget dry(16u << 10);  // below one 64 KiB TLAB region
  t.bind_budget(&dry);
  EXPECT_EQ(heap.alloc_array(ValType::F64, 8192, &t), nullptr);  // large
  EXPECT_EQ(heap.alloc_array(ValType::I32, 4, &t), nullptr);     // region
  EXPECT_EQ(t.budget_charged(), 0u);
  // ...while the shared (tlab-less) path stays unmetered by design: that is
  // exactly why run_job must never leave a metered context on it.
  EXPECT_NE(heap.alloc_array(ValType::I32, 4, nullptr), nullptr);
  t.bind_budget(nullptr);
  heap.retire_tlab(t);
  heap.unregister_tlab(t);

  // Service-level: a budgeted job's charged bytes cover everything it
  // allocated. 10 arrays x 32 KiB payload must all be visible in the charge.
  const auto alloc = build_alloc_loop(vm.module(), "svc.alloc");
  ExecutionService svc(vm, profiles::clr11(), {.workers = 1});
  svc.add_tenant({.name = "a", .memory_budget_bytes = 8u << 20});
  const JobResult r =
      svc.submit("a", alloc, {Slot::from_i32(10), Slot::from_i32(4096)}).wait();
  ASSERT_EQ(r.outcome, JobOutcome::Completed);
  EXPECT_GE(r.bytes_charged, 10u * 4096u * 8u);
}

// Regression (REVIEW): a metered job must not escape its boundaries through
// Thread.Start — the child thread would run on a fresh context with no fuel
// meter and no allocation budget, and could outlive the job whose budget
// paid for it. Both metering axes refuse the spawn with a catchable fault;
// unmetered tenants keep the full threading substrate.
TEST(Service, MeteredJobCannotSpawnThreads) {
  VirtualMachine vm;
  const auto spawner = build_spawner(vm.module(), "svc.spawn");
  ExecutionService svc(vm, profiles::clr11(), {.workers = 1});
  svc.add_tenant({.name = "fuel", .fuel_per_job = 1'000'000});
  svc.add_tenant({.name = "mem", .memory_budget_bytes = 8u << 20});
  svc.add_tenant({.name = "free"});
  const JobResult rf = svc.submit("fuel", spawner, {}).wait();
  EXPECT_EQ(rf.outcome, JobOutcome::Faulted);
  EXPECT_NE(rf.error.find("Thread.Start refused"), std::string::npos);
  const JobResult rm = svc.submit("mem", spawner, {}).wait();
  EXPECT_EQ(rm.outcome, JobOutcome::Faulted);
  EXPECT_NE(rm.error.find("Thread.Start refused"), std::string::npos);
  const JobResult ru = svc.submit("free", spawner, {}).wait();
  EXPECT_EQ(ru.outcome, JobOutcome::Completed);
  EXPECT_EQ(ru.value.i32, 1);
}

// Regression (REVIEW): a budgeted refill must charge a fixed segment granule
// rather than whatever free run first-fits — run sizes depend on co-tenant
// GC/fragmentation history, which would make the budget-kill point
// nondeterministic and let one huge run drain a tenant's budget for a single
// TLAB window.
TEST(Service, BudgetedRefillChargesFixedGranuleDespiteFragmentation) {
  VirtualMachine vm;
  Heap& heap = vm.heap();
  VMContext& ctx = vm.main_context();
  // Manufacture fragmentation: fill segments with small dead objects, keep
  // one pinned survivor so its segment stays live, and collect — the
  // survivor's segment now holds a large free run feeding first-fit refills.
  ObjRef keep = heap.alloc_instance(vm.thread_class(), &ctx.tlab);
  Pinned pin(vm, keep);
  for (int i = 0; i < 4096; ++i) {
    heap.alloc_instance(vm.thread_class(), &ctx.tlab);
  }
  vm.collect();

  Tlab t;
  heap.register_tlab(t);
  AllocBudget budget(Heap::kSegmentBytes + Heap::kSegmentBytes / 2);
  t.bind_budget(&budget);
  // The refill charges exactly one granule, not the run the GC left behind.
  EXPECT_NE(heap.alloc_array(ValType::I32, 4, &t), nullptr);
  EXPECT_EQ(t.budget_charged(), Heap::kSegmentBytes);
  // The remaining half granule cannot pay for another refill: a second
  // budgeted window is refused even though free runs remain available to
  // unmetered callers.
  Tlab t2;
  heap.register_tlab(t2);
  t2.bind_budget(&budget);
  EXPECT_EQ(heap.alloc_array(ValType::I32, 4, &t2), nullptr);
  EXPECT_EQ(t2.budget_charged(), 0u);
  t2.bind_budget(nullptr);
  heap.unregister_tlab(t2);
  t.bind_budget(nullptr);
  heap.unregister_tlab(t);
}

// Regression (REVIEW): limits above INT64_MAX mean "effectively unmetered",
// not a meter armed already negative (fuel) or a pool that refuses
// everything after a wrapped cast (memory).
TEST(Service, OverWideLimitsClampRatherThanKill) {
  VirtualMachine vm;
  const auto spin = build_spin(vm.module(), "svc.spin");
  ExecutionService svc(vm, profiles::clr11(), {.workers = 1});
  svc.add_tenant({.name = "a",
                  .fuel_per_job = std::numeric_limits<std::uint64_t>::max()});
  const JobResult r = svc.submit("a", spin, {Slot::from_i32(200'000)}).wait();
  EXPECT_EQ(r.outcome, JobOutcome::Completed);  // meter armed, never fires
  EXPECT_GE(r.fuel_spent, 200'000u);

  AllocBudget wide(std::numeric_limits<std::uint64_t>::max());
  EXPECT_EQ(wide.remaining(), std::numeric_limits<std::int64_t>::max());
  // A charge wider than the signed pool can never succeed (the unclamped
  // cast would wrap negative and "succeed" by growing the pool).
  EXPECT_FALSE(wide.try_charge(std::numeric_limits<std::uint64_t>::max()));
  EXPECT_TRUE(wide.try_charge(64));
}

TEST(Service, CoTenantKillDoesNotPerturbVictimResults) {
  VirtualMachine vm;
  const auto spin = build_spin(vm.module(), "svc.spin");
  const auto alloc = build_alloc_loop(vm.module(), "svc.alloc");
  const auto compute = build_compute(vm.module(), "svc.compute");

  // Reference result, computed directly on an engine of the same profile.
  auto engine = make_engine(vm, profiles::clr11());
  VMContext& ctx = vm.main_context();
  ctx.engine = engine.get();
  verify(vm.module(), compute);
  const std::vector<Slot> cargs{Slot::from_i32(200'000)};
  const Slot expected = engine->invoke(ctx, compute, cargs);

  ExecutionService svc(vm, profiles::clr11(), {.workers = 2});
  svc.add_tenant({.name = "noisy",
                  .fuel_per_job = 20'000,
                  .memory_budget_bytes = 256u << 10});
  svc.add_tenant({.name = "victim"});
  std::vector<service::JobHandle> victims;
  std::uint64_t kills = 0;
  for (int round = 0; round < 8; ++round) {
    auto hk = svc.submit("noisy", spin, {Slot::from_i32(1 << 20)});
    auto hm =
        svc.submit("noisy", alloc, {Slot::from_i32(64), Slot::from_i32(4096)});
    victims.push_back(svc.submit("victim", compute, cargs));
    EXPECT_EQ(hk.wait(&ctx).outcome, JobOutcome::KilledFuel);
    EXPECT_EQ(hm.wait(&ctx).outcome, JobOutcome::KilledMemory);
    ++kills;
  }
  for (auto& h : victims) {
    const JobResult r = h.wait(&ctx);
    ASSERT_EQ(r.outcome, JobOutcome::Completed);
    // Bit-identical to the uncontended direct run: co-tenant kills must not
    // perturb a victim's floating-point results.
    EXPECT_EQ(r.value.raw, expected.raw);
  }
  EXPECT_GE(kills, 1u);
  svc.drain(&ctx);
  EXPECT_EQ(svc.tenant_stats("victim").jobs_completed, victims.size());
  EXPECT_EQ(svc.tenant_stats("noisy").jobs_killed_fuel, 8u);
  EXPECT_EQ(svc.tenant_stats("noisy").jobs_killed_memory, 8u);
}

TEST(Service, ConcurrentSubmissionFromEightThreads) {
  VirtualMachine vm;
  const auto spin = build_spin(vm.module(), "svc.spin");
  ExecutionService svc(vm, profiles::clr11(), {.workers = 8});
  for (int t = 0; t < 4; ++t) {
    svc.add_tenant({.name = "t" + std::to_string(t),
                    .fuel_per_job = t % 2 == 0 ? 0u : 1'000'000u});
  }
  constexpr int kThreads = 8;
  constexpr int kJobsPerThread = 25;
  std::atomic<int> ok{0};
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        const int n = 100 + (t * kJobsPerThread + j) % 900;
        const JobResult r =
            svc.submit("t" + std::to_string(t % 4), spin, {Slot::from_i32(n)})
                .wait();
        if (r.outcome == JobOutcome::Completed &&
            r.value.i32 == (n - 1) * n / 2) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  svc.drain();
  EXPECT_EQ(ok.load(), kThreads * kJobsPerThread);
  std::uint64_t total = 0;
  for (int t = 0; t < 4; ++t) {
    total += svc.tenant_stats("t" + std::to_string(t)).jobs_completed;
  }
  EXPECT_EQ(total, static_cast<std::uint64_t>(kThreads * kJobsPerThread));
}

}  // namespace
}  // namespace hpcnet::test

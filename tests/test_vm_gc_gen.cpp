// Generational collector: old->young write barriers (STFLD / STELEM / box)
// in all three engine tiers, promotion semantics (minor survivors turn old,
// old garbage waits for a major), AllocBudget interaction with promotion,
// and a concurrent-mutator stress against the parallel mark/sweep pool.
#include <gtest/gtest.h>

#include <mutex>
#include <thread>
#include <vector>

#include "vm/intrinsics.hpp"
#include "vm_test_util.hpp"

namespace hpcnet::test {
namespace {

/// Allocates an instance of `class_id`, pins it and runs a major collection
/// so it is promoted: the returned object is an *old* root whose young edges
/// only a write barrier can keep alive across a minor collection.
ObjRef make_old_instance(VMFixture& f, std::int32_t class_id) {
  ObjRef obj = f.vm.heap().alloc_instance(class_id);
  f.vm.pin(obj);
  f.vm.collect();  // major: every survivor promotes in place
  EXPECT_TRUE(obj->is_old());
  return obj;
}

// An old object's ref field is overwritten with a freshly allocated (young)
// array; the only thing keeping that array alive across the next minor
// collection is the card the tier's write barrier dirtied. Run per tier so a
// missing barrier in any one engine fails by name.
TEST(VmGcGen, StfldWriteBarrierKeepsYoungAliveAllTiers) {
  VMFixture f;
  Module& mod = f.vm.module();
  const std::int32_t holder =
      mod.define_class("gen.Holder", {{"ref", ValType::Ref}});

  // store(h): a = new i32[32]; a[7] = 123; h.ref = a; return 0
  ILBuilder b(mod, "gen_stfld", {{ValType::Ref}, ValType::I32});
  const auto a = b.add_local(ValType::Ref);
  b.ldc_i4(32).newarr(ValType::I32).stloc(a);
  b.ldloc(a).ldc_i4(7).ldc_i4(123).stelem(ValType::I32);
  b.ldarg(0).ldloc(a).stfld(holder, "ref");
  b.ldc_i4(0).ret();
  const auto m = b.finish();
  verify(mod, m);

  ObjRef h = make_old_instance(f, holder);
  for (std::size_t tier = 0; tier < f.engines.size(); ++tier) {
    const auto before = f.vm.heap().stats();
    EXPECT_EQ(f.run_on(tier, m, {Slot::from_ref(h)}).i32, 0)
        << f.engines[tier]->name();
    f.vm.collect(GcKind::Minor);
    EXPECT_EQ(f.vm.heap().stats().minor_collections,
              before.minor_collections + 1);
    ObjRef stored = h->fields()[0].ref;
    ASSERT_NE(stored, nullptr) << f.engines[tier]->name();
    EXPECT_EQ(stored->kind, ObjKind::Array) << f.engines[tier]->name();
    EXPECT_EQ(stored->i32_data()[7], 123) << f.engines[tier]->name();
    // The survivor was promoted by the minor collection.
    EXPECT_TRUE(stored->is_old()) << f.engines[tier]->name();
  }
  f.vm.unpin(h);
}

// Same shape through an old Ref *array* and STELEM.
TEST(VmGcGen, StelemWriteBarrierKeepsYoungAliveAllTiers) {
  VMFixture f;
  Module& mod = f.vm.module();

  // store(arr): a = new i32[16]; a[2] = 77; arr[3] = a; return 0
  ILBuilder b(mod, "gen_stelem", {{ValType::Ref}, ValType::I32});
  const auto a = b.add_local(ValType::Ref);
  b.ldc_i4(16).newarr(ValType::I32).stloc(a);
  b.ldloc(a).ldc_i4(2).ldc_i4(77).stelem(ValType::I32);
  b.ldarg(0).ldc_i4(3).ldloc(a).stelem(ValType::Ref);
  b.ldc_i4(0).ret();
  const auto m = b.finish();
  verify(mod, m);

  ObjRef arr = f.vm.heap().alloc_array(ValType::Ref, 8);
  f.vm.pin(arr);
  f.vm.collect();
  ASSERT_TRUE(arr->is_old());
  for (std::size_t tier = 0; tier < f.engines.size(); ++tier) {
    EXPECT_EQ(f.run_on(tier, m, {Slot::from_ref(arr)}).i32, 0)
        << f.engines[tier]->name();
    f.vm.collect(GcKind::Minor);
    ObjRef stored = arr->ref_data()[3];
    ASSERT_NE(stored, nullptr) << f.engines[tier]->name();
    EXPECT_EQ(stored->kind, ObjKind::Array) << f.engines[tier]->name();
    EXPECT_EQ(stored->i32_data()[2], 77) << f.engines[tier]->name();
  }
  f.vm.unpin(arr);
}

// Boxing allocates the young object on the store path itself: h.ref = box 55.
TEST(VmGcGen, BoxedStoreWriteBarrierAllTiers) {
  VMFixture f;
  Module& mod = f.vm.module();
  const std::int32_t holder =
      mod.define_class("gen.BoxHolder", {{"ref", ValType::Ref}});

  ILBuilder b(mod, "gen_box", {{ValType::Ref}, ValType::I32});
  b.ldarg(0).ldc_i4(55).box(ValType::I32).stfld(holder, "ref");
  b.ldc_i4(0).ret();
  const auto m = b.finish();
  verify(mod, m);

  ObjRef h = make_old_instance(f, holder);
  for (std::size_t tier = 0; tier < f.engines.size(); ++tier) {
    EXPECT_EQ(f.run_on(tier, m, {Slot::from_ref(h)}).i32, 0)
        << f.engines[tier]->name();
    f.vm.collect(GcKind::Minor);
    ObjRef boxed = h->fields()[0].ref;
    ASSERT_NE(boxed, nullptr) << f.engines[tier]->name();
    EXPECT_EQ(boxed->kind, ObjKind::Boxed) << f.engines[tier]->name();
    EXPECT_EQ(boxed->fields()[0].i32, 55) << f.engines[tier]->name();
  }
  f.vm.unpin(h);
}

// Promotion threshold = one collection: a minor survivor turns old; once its
// root is dropped it is *old garbage*, which a minor must leave alone (the
// old generation is live by assumption) and only a major reclaims.
TEST(VmGcGen, OldGarbageSurvivesMinorDiesAtMajor) {
  VirtualMachine vm;
  Heap& heap = vm.heap();
  ObjRef a = heap.alloc_array(ValType::F64, 100);
  a->f64_data()[99] = 6.25;
  vm.pin(a);

  EXPECT_FALSE(a->is_old());
  vm.collect(GcKind::Minor);
  EXPECT_TRUE(a->is_old());  // survivor promoted in place
  const auto promoted = heap.stats();
  EXPECT_GT(promoted.promoted_bytes, 0u);
  EXPECT_GT(promoted.old_bytes, 0u);
  EXPECT_EQ(promoted.minor_collections, 1u);

  vm.unpin(a);  // now old garbage
  const auto live_before = heap.stats().live_objects;
  vm.collect(GcKind::Minor);
  // A minor does not sweep the old generation: the object is still counted
  // live and its payload is untouched by any reuse.
  EXPECT_EQ(heap.stats().live_objects, live_before);
  EXPECT_EQ(a->f64_data()[99], 6.25);

  vm.collect();  // major reclaims it
  const auto after = heap.stats();
  EXPECT_EQ(after.live_objects, 0u);
  EXPECT_EQ(after.major_collections, 1u);
  EXPECT_EQ(after.old_bytes, 0u);
}

// Promotion must not charge the tenant's AllocBudget: the budget caps
// in-flight allocation, and a survivor's bytes were already paid for at TLAB
// refill time. A collection (minor or major) leaves the pool untouched.
TEST(VmGcGen, PromotionChargesNothingToAllocBudget) {
  VirtualMachine vm;
  Heap& heap = vm.heap();
  Tlab& tlab = vm.main_context().tlab;
  AllocBudget budget(1u << 20);  // 1 MiB

  heap.retire_tlab(tlab);
  tlab.bind_budget(&budget);
  ObjRef a = heap.alloc_array(ValType::I32, 64, &tlab);
  ASSERT_NE(a, nullptr);
  vm.pin(a);
  // Exactly one segment granule charged for the refill.
  EXPECT_EQ(tlab.budget_charged(), Heap::kSegmentBytes);
  const std::int64_t remaining = budget.remaining();
  EXPECT_EQ(remaining,
            static_cast<std::int64_t>((1u << 20) - Heap::kSegmentBytes));

  vm.collect(GcKind::Minor);  // promotes the survivor
  EXPECT_TRUE(a->is_old());
  EXPECT_EQ(budget.remaining(), remaining);
  EXPECT_EQ(tlab.budget_charged(), Heap::kSegmentBytes);

  vm.collect();  // a major must not charge either
  EXPECT_EQ(budget.remaining(), remaining);

  vm.unpin(a);
  heap.retire_tlab(tlab);
  tlab.bind_budget(nullptr);
}

// Stress for the TSan job: mutator threads bump-allocate and publish young
// objects into their own pinned (old) holders through the write barrier
// while allocation pressure drives collections through the 4-worker parallel
// mark/sweep pool. After the joins the census must partition exactly.
TEST(VmGcGen, ConcurrentMutatorsAgainstParallelCollector) {
  VirtualMachine vm;
  Heap& heap = vm.heap();
  heap.set_gc_threads(4);
  heap.set_threshold(1 << 16);  // collect early and often
  constexpr int kThreads = 4;
  constexpr int kAllocs = 3000;

  // One old ref-holder per thread, created up front and promoted by a major.
  std::vector<ObjRef> holders;
  for (int t = 0; t < kThreads; ++t) {
    ObjRef h = heap.alloc_array(ValType::Ref, 4);
    vm.pin(h);
    holders.push_back(h);
  }
  vm.collect();
  const auto before = heap.stats();

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&vm, &holders, t] {
      auto ctx = vm.attach_thread(nullptr);
      ObjRef holder = holders[static_cast<std::size_t>(t)];
      for (int i = 0; i < kAllocs; ++i) {
        ObjRef a =
            vm.heap().alloc_array(ValType::I32, 8 + (i % 33), &ctx->tlab);
        a->i32_data()[0] = t * kAllocs + i;
        // Publish into the old holder exactly as the engines do: store, then
        // barrier. Only the dirtied card keeps `a` alive across minors.
        holder->ref_data()[i % 4] = a;
        gc_write_barrier(holder);
        vm.safepoint_poll(*ctx);
      }
      vm.detach_thread(*ctx);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(vm.gc_count(), 0u);

  // The last four arrays each thread published are reachable via its holder.
  for (int t = 0; t < kThreads; ++t) {
    for (int s = 0; s < 4; ++s) {
      ObjRef a = holders[static_cast<std::size_t>(t)]->ref_data()[s];
      ASSERT_NE(a, nullptr);
      EXPECT_EQ(a->kind, ObjKind::Array);
      EXPECT_GE(a->i32_data()[0], t * kAllocs);
      EXPECT_LT(a->i32_data()[0], (t + 1) * kAllocs);
    }
  }

  const auto after = heap.stats();
  EXPECT_EQ(after.total_allocations - before.total_allocations,
            static_cast<std::size_t>(kThreads) * kAllocs);
  EXPECT_GT(after.minor_collections + after.major_collections, 0u);

  for (ObjRef h : holders) vm.unpin(h);
  vm.collect();
  EXPECT_EQ(heap.stats().live_objects, 0u);
  EXPECT_EQ(heap.stats().total_allocations, heap.stats().swept_objects);
}

// The census partition (allocations = swept + live) must hold across an
// interleaving of minor and major collections, lazy-sweep mode included.
TEST(VmGcGen, CensusExactAcrossMixedCollectionsAndLazySweep) {
  VirtualMachine vm;
  Heap& heap = vm.heap();
  heap.set_gc_threads(2);
  heap.set_lazy_sweep(true);
  std::vector<ObjRef> keep;
  for (int round = 0; round < 6; ++round) {
    for (int i = 0; i < 500; ++i) {
      ObjRef a = heap.alloc_array(ValType::I64, 16);
      if (i % 250 == 0) {
        vm.pin(a);
        keep.push_back(a);
      }
    }
    vm.collect(round % 3 == 2 ? GcKind::Major : GcKind::Minor);
  }
  const auto s = heap.stats();  // stats() drains any lazily-unswept segments
  EXPECT_EQ(s.total_allocations - s.swept_objects, s.live_objects);
  EXPECT_EQ(s.live_objects, keep.size());
  for (ObjRef a : keep) vm.unpin(a);
  vm.collect();
  EXPECT_EQ(heap.stats().live_objects, 0u);
}

// GC.PretouchArray: a large primitive array is promoted to the old
// generation immediately, so minor collections never re-mark it, and it
// survives a minor collection with no root pointing at it (the sweep only
// walks the young tail of the large-object list).
TEST(VmGcGen, PretouchPromotesLargeArrayImmediately) {
  VMFixture f;
  Heap& heap = f.vm.heap();

  const std::size_t old_before = heap.stats().old_bytes;
  ObjRef big = heap.alloc_array(ValType::F64, 10000);  // 80 KiB: large list
  ASSERT_FALSE(big->is_old());
  heap.pretouch(big);
  EXPECT_TRUE(big->is_old());
  EXPECT_GE(heap.stats().old_bytes, old_before + 10000 * sizeof(double));
  heap.pretouch(big);  // idempotent
  EXPECT_TRUE(big->is_old());

  // Unrooted but pretouched: a minor collection must not free it.
  big->f64_data()[4321] = 2.5;
  f.vm.collect(GcKind::Minor);
  EXPECT_EQ(big->f64_data()[4321], 2.5);

  // No-op cases: null, segment-resident (small), and ref-element arrays.
  heap.pretouch(nullptr);
  ObjRef small = heap.alloc_array(ValType::I32, 8);
  heap.pretouch(small);
  EXPECT_FALSE(small->is_old());
  ObjRef refs = heap.alloc_array(ValType::Ref, 10000);
  heap.pretouch(refs);
  EXPECT_FALSE(refs->is_old());

  // A major collection still reclaims it once truly dead.
  const auto live = heap.stats().live_objects;
  f.vm.collect();
  EXPECT_LT(heap.stats().live_objects, live);
}

// The intrinsic is callable from IL in every tier and does not change
// results: fill-and-sum over a pretouched array matches across engines.
TEST(VmGcGen, PretouchIntrinsicBitIdenticalAllTiers) {
  VMFixture f;
  Module& mod = f.vm.module();

  // sum(n): a = new f64[n]; GC.PretouchArray(a);
  //         for i: a[i] = i * 0.5; s += a[i]; return (i32)s
  ILBuilder b(mod, "gen_pretouch", {{ValType::I32}, ValType::I32});
  const auto a = b.add_local(ValType::Ref);
  const auto i = b.add_local(ValType::I32);
  const auto s = b.add_local(ValType::F64);
  b.ldarg(0).newarr(ValType::F64).stloc(a);
  b.ldloc(a).call_intr(I_GC_PRETOUCH);
  const auto head = b.new_label();
  const auto done = b.new_label();
  b.bind(head);
  b.ldloc(i).ldarg(0).bge(done);
  b.ldloc(a).ldloc(i).ldloc(i).conv_r8().ldc_r8(0.5).mul().stelem(
      ValType::F64);
  b.ldloc(s).ldloc(a).ldloc(i).ldelem(ValType::F64).add().stloc(s);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.br(head);
  b.bind(done);
  b.ldloc(s).conv_i4().ret();
  const auto m = b.finish();
  verify(mod, m);

  f.run_all(m, {Slot::from_i32(10000)});  // large list: pretouch promotes
  f.run_all(m, {Slot::from_i32(50)});     // small: pretouch is a no-op
}

}  // namespace
}  // namespace hpcnet::test

// Managed threading substrate: monitor semantics (recursive enter, unowned
// exit, wait/pulse), thread start/join lifecycle, and safepoint interaction
// (GC while threads are parked in monitors).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "vm/intrinsics.hpp"
#include "vm/monitor.hpp"
#include "vm_test_util.hpp"

namespace hpcnet::test {
namespace {

TEST(VmThreads, MonitorRecursiveEnter) {
  VirtualMachine vm;
  VMContext& ctx = vm.main_context();
  ObjRef obj = vm.heap().alloc_instance(vm.thread_class());
  Pinned pin(vm, obj);
  vm.monitors().enter(ctx, obj);
  vm.monitors().enter(ctx, obj);  // recursive
  EXPECT_TRUE(vm.monitors().exit(ctx, obj));
  EXPECT_TRUE(vm.monitors().exit(ctx, obj));
  EXPECT_FALSE(vm.monitors().exit(ctx, obj));  // over-release rejected
}

TEST(VmThreads, MonitorWaitWithoutOwnershipFails) {
  VirtualMachine vm;
  VMContext& ctx = vm.main_context();
  ObjRef obj = vm.heap().alloc_instance(vm.thread_class());
  Pinned pin(vm, obj);
  EXPECT_FALSE(vm.monitors().wait(ctx, obj));
  EXPECT_FALSE(vm.monitors().pulse(ctx, obj));
}

TEST(VmThreads, MonitorExcludesAcrossNativeThreads) {
  VirtualMachine vm;
  ObjRef obj = vm.heap().alloc_instance(vm.thread_class());
  Pinned pin(vm, obj);
  VMContext& main = vm.main_context();
  vm.monitors().enter(main, obj);

  std::atomic<int> stage{0};
  std::thread t([&] {
    auto ctx = vm.attach_thread(nullptr);
    stage.store(1);
    vm.monitors().enter(*ctx, obj);  // must block until main exits
    stage.store(2);
    vm.monitors().exit(*ctx, obj);
    vm.detach_thread(*ctx);
  });
  while (stage.load() == 0) std::this_thread::yield();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(stage.load(), 1);  // still blocked
  vm.monitors().exit(main, obj);
  t.join();
  EXPECT_EQ(stage.load(), 2);
}

TEST(VmThreads, WaitPulseHandshake) {
  VirtualMachine vm;
  ObjRef obj = vm.heap().alloc_instance(vm.thread_class());
  Pinned pin(vm, obj);
  std::atomic<bool> woke{false};

  std::thread waiter([&] {
    auto ctx = vm.attach_thread(nullptr);
    vm.monitors().enter(*ctx, obj);
    EXPECT_TRUE(vm.monitors().wait(*ctx, obj));
    woke.store(true);
    vm.monitors().exit(*ctx, obj);
    vm.detach_thread(*ctx);
  });

  VMContext& main = vm.main_context();
  // Keep pulsing until the waiter wakes (it may not be waiting yet).
  while (!woke.load()) {
    vm.monitors().enter(main, obj);
    vm.monitors().pulse_all(main, obj);
    vm.monitors().exit(main, obj);
    std::this_thread::yield();
  }
  waiter.join();
  EXPECT_TRUE(woke.load());
}

TEST(VmThreads, StartAndJoinViaIntrinsics) {
  VMFixture f;
  Module& mod = f.vm.module();
  const std::int32_t cls = mod.define_class("t.Cell", {{"v", ValType::I32}});
  ILBuilder w(mod, "t_worker", {{ValType::Ref}, ValType::I32});
  w.ldarg(0).ldc_i4(77).stfld(cls, "v");
  w.ldc_i4(0).ret();
  const auto worker = w.finish();

  ILBuilder b(mod, "t_main", {{}, ValType::I32});
  const auto cell = b.add_local(ValType::Ref);
  const auto h = b.add_local(ValType::Ref);
  b.newobj(cls).stloc(cell);
  b.ldc_i4(worker).ldloc(cell).call_intr(vm::I_THREAD_START).stloc(h);
  b.ldloc(h).call_intr(vm::I_THREAD_JOIN);
  b.ldloc(cell).ldfld(cls, "v").ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m).i32, 77);
}

TEST(VmThreads, JoinIsIdempotent) {
  VMFixture f;
  Module& mod = f.vm.module();
  const std::int32_t cls = mod.find_class("t.Cell") >= 0
                               ? mod.find_class("t.Cell")
                               : mod.define_class("t.Cell2", {{"v", ValType::I32}});
  ILBuilder w(mod, "t_worker2", {{ValType::Ref}, ValType::I32});
  w.ldc_i4(0).ret();
  const auto worker = w.finish();
  ILBuilder b(mod, "t_join2", {{}, ValType::I32});
  const auto h = b.add_local(ValType::Ref);
  b.newobj(cls).pop();
  b.ldc_i4(worker).ldnull().call_intr(vm::I_THREAD_START).stloc(h);
  b.ldloc(h).call_intr(vm::I_THREAD_JOIN);
  b.ldloc(h).call_intr(vm::I_THREAD_JOIN);  // second join: no-op
  b.ldc_i4(1).ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m).i32, 1);
}

TEST(VmThreads, CurrentIdDistinctAcrossThreads) {
  VirtualMachine vm;
  VMContext& main = vm.main_context();
  auto side = vm.attach_thread(nullptr);
  EXPECT_NE(main.thread_id, side->thread_id);
  vm.detach_thread(*side);
}

TEST(VmThreads, SleepAndYieldIntrinsics) {
  VMFixture f;
  ILBuilder b(f.vm.module(), "t_sleep", {{}, ValType::I32});
  b.call_intr(vm::I_THREAD_YIELD);
  b.ldc_i4(1).call_intr(vm::I_THREAD_SLEEP);
  b.call_intr(vm::I_THREAD_ID).ret();
  const auto m = b.finish();
  verify(f.vm.module(), m);
  VMContext& ctx = f.vm.main_context();
  for (auto& e : f.engines) {
    ctx.engine = e.get();
    EXPECT_GT(e->invoke(ctx, m, {}).i32, 0) << e->name();
  }
}

TEST(VmThreads, GcWhileThreadBlockedInMonitor) {
  // A thread parked in Monitor.Wait must not stall a collection.
  VirtualMachine vm;
  vm.heap().set_threshold(1 << 14);
  ObjRef obj = vm.heap().alloc_instance(vm.thread_class());
  Pinned pin(vm, obj);
  std::atomic<bool> waiting{false}, done{false};

  std::thread waiter([&] {
    auto ctx = vm.attach_thread(nullptr);
    vm.monitors().enter(*ctx, obj);
    waiting.store(true);
    vm.monitors().wait(*ctx, obj);
    vm.monitors().exit(*ctx, obj);
    done.store(true);
    vm.detach_thread(*ctx);
  });
  while (!waiting.load()) std::this_thread::yield();

  VMContext& main = vm.main_context();
  const auto before = vm.gc_count();
  // Allocate enough garbage from the main thread to force collections while
  // the waiter is parked.
  for (int i = 0; i < 2000; ++i) {
    vm.heap().alloc_array(ValType::F64, 64);
  }
  (void)main;
  EXPECT_GT(vm.gc_count(), before);

  // Wake the waiter and shut down.
  while (!done.load()) {
    vm.monitors().enter(main, obj);
    vm.monitors().pulse_all(main, obj);
    vm.monitors().exit(main, obj);
    std::this_thread::yield();
  }
  waiter.join();
}

TEST(VmThreads, InflationCountIsBounded) {
  VirtualMachine vm;
  VMContext& ctx = vm.main_context();
  ObjRef a = vm.heap().alloc_instance(vm.thread_class());
  ObjRef b = vm.heap().alloc_instance(vm.thread_class());
  Pinned pa(vm, a), pb(vm, b);
  const auto before = vm.monitors().inflated();
  for (int i = 0; i < 100; ++i) {
    vm.monitors().enter(ctx, a);
    vm.monitors().exit(ctx, a);
    vm.monitors().enter(ctx, b);
    vm.monitors().exit(ctx, b);
  }
  EXPECT_EQ(vm.monitors().inflated(), before + 2);  // one entry per object
}

}  // namespace
}  // namespace hpcnet::test

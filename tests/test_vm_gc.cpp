// Garbage collector: allocation-triggered collections, liveness through
// locals / fields / statics / arrays, pinning, collection during deep call
// stacks, and GC while multiple managed threads are running.
#include <gtest/gtest.h>

#include "vm/intrinsics.hpp"
#include "vm_test_util.hpp"

namespace hpcnet::test {
namespace {

TEST(VmGc, AllocationPressureTriggersCollection) {
  VMFixture f;
  f.vm.heap().set_threshold(1 << 16);  // 64 KiB: collect early and often
  Module& mod = f.vm.module();
  // Allocate `n` garbage arrays; keep only the last.
  ILBuilder b(mod, "churn", {{ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  const auto keep = b.add_local(ValType::Ref);
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldc_i4(0).stloc(i).br(cond);
  b.bind(top);
  b.ldc_i4(256).newarr(ValType::F64).stloc(keep);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(cond);
  b.ldloc(i).ldarg(0).blt(top);
  b.ldloc(keep).ldlen().ret();
  const auto m = b.finish();

  const auto before = f.vm.gc_count();
  EXPECT_EQ(f.run_all(m, {Slot::from_i32(5000)}).i32, 256);
  EXPECT_GT(f.vm.gc_count(), before);
  // The garbage must actually have been reclaimed.
  const auto stats = f.vm.heap().stats();
  EXPECT_GT(stats.swept_objects, 1000u);
}

TEST(VmGc, LiveObjectsSurviveThroughLocals) {
  VMFixture f;
  f.vm.heap().set_threshold(1 << 14);
  Module& mod = f.vm.module();
  // Build an array, fill it, churn garbage, then read the array back.
  ILBuilder b(mod, "survive", {{ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  const auto arr = b.add_local(ValType::Ref);
  b.ldc_i4(64).newarr(ValType::I32).stloc(arr);
  {
    auto cond = b.new_label();
    auto top = b.new_label();
    b.ldc_i4(0).stloc(i).br(cond);
    b.bind(top);
    b.ldloc(arr).ldloc(i).ldloc(i).ldc_i4(3).mul().stelem(ValType::I32);
    b.ldloc(i).ldc_i4(1).add().stloc(i);
    b.bind(cond);
    b.ldloc(i).ldc_i4(64).blt(top);
  }
  {
    auto cond = b.new_label();
    auto top = b.new_label();
    b.ldc_i4(0).stloc(i).br(cond);
    b.bind(top);
    b.ldc_i4(128).newarr(ValType::F64).pop();  // pure garbage
    b.ldloc(i).ldc_i4(1).add().stloc(i);
    b.bind(cond);
    b.ldloc(i).ldarg(0).blt(top);
  }
  b.ldloc(arr).ldc_i4(21).ldelem(ValType::I32).ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m, {Slot::from_i32(3000)}).i32, 63);
}

TEST(VmGc, ReachabilityThroughObjectGraphAndStatics) {
  VMFixture f;
  f.vm.heap().set_threshold(1 << 14);
  Module& mod = f.vm.module();
  const std::int32_t node = mod.define_class(
      "gc.Node", {{"v", ValType::I32}, {"next", ValType::Ref}}, -1,
      {{"root", ValType::Ref}});
  // Build a 50-node list anchored in a static, churn, then walk it.
  ILBuilder b(mod, "gc_static_graph", {{ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  const auto cur = b.add_local(ValType::Ref);
  const auto sum = b.add_local(ValType::I32);
  {
    auto cond = b.new_label();
    auto top = b.new_label();
    b.ldnull().stsfld(node, "root");
    b.ldc_i4(0).stloc(i).br(cond);
    b.bind(top);
    b.newobj(node).stloc(cur);
    b.ldloc(cur).ldloc(i).stfld(node, "v");
    b.ldloc(cur).ldsfld(node, "root").stfld(node, "next");
    b.ldloc(cur).stsfld(node, "root");
    b.ldloc(i).ldc_i4(1).add().stloc(i);
    b.bind(cond);
    b.ldloc(i).ldc_i4(50).blt(top);
  }
  {
    auto cond = b.new_label();
    auto top = b.new_label();
    b.ldc_i4(0).stloc(i).br(cond);
    b.bind(top);
    b.ldc_i4(64).newarr(ValType::Ref).pop();
    b.ldloc(i).ldc_i4(1).add().stloc(i);
    b.bind(cond);
    b.ldloc(i).ldarg(0).blt(top);
  }
  {
    auto walk = b.new_label();
    auto done = b.new_label();
    b.ldc_i4(0).stloc(sum);
    b.ldsfld(node, "root").stloc(cur);
    b.bind(walk);
    b.ldloc(cur).brfalse(done);
    b.ldloc(sum).ldloc(cur).ldfld(node, "v").add().stloc(sum);
    b.ldloc(cur).ldfld(node, "next").stloc(cur);
    b.br(walk);
    b.bind(done);
  }
  b.ldloc(sum).ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m, {Slot::from_i32(4000)}).i32, 49 * 50 / 2);
}

TEST(VmGc, SurvivesCollectionInDeepRecursion) {
  VMFixture f;
  f.vm.heap().set_threshold(1 << 14);
  Module& mod = f.vm.module();
  // rec(n): if n == 0 return 0; a = new i32[8]; a[0] = n;
  //          r = rec(n-1); garbage; return a[0] + r;
  const auto self_id = static_cast<std::int32_t>(mod.method_count());
  ILBuilder b(mod, "gc_rec", {{ValType::I32}, ValType::I32});
  const auto arr = b.add_local(ValType::Ref);
  const auto r = b.add_local(ValType::I32);
  auto nonzero = b.new_label();
  b.ldarg(0).ldc_i4(0).bgt(nonzero);
  b.ldc_i4(0).ret();
  b.bind(nonzero);
  b.ldc_i4(8).newarr(ValType::I32).stloc(arr);
  b.ldloc(arr).ldc_i4(0).ldarg(0).stelem(ValType::I32);
  b.ldarg(0).ldc_i4(1).sub().call(self_id).stloc(r);
  b.ldc_i4(512).newarr(ValType::F64).pop();  // garbage at every level
  b.ldloc(arr).ldc_i4(0).ldelem(ValType::I32).ldloc(r).add().ret();
  const auto m = b.finish();
  ASSERT_EQ(m, self_id);
  EXPECT_EQ(f.run_all(m, {Slot::from_i32(300)}).i32, 300 * 301 / 2);
  EXPECT_GT(f.vm.gc_count(), 0u);
}

TEST(VmGc, PinKeepsNativeHeldObjectAlive) {
  VMFixture f;
  f.vm.heap().set_threshold(1 << 14);
  ObjRef s = f.vm.heap().alloc_string("pinned payload");
  f.vm.pin(s);
  // Churn from managed code until several GCs have happened.
  Module& mod = f.vm.module();
  ILBuilder b(mod, "pin_churn", {{}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldc_i4(0).stloc(i).br(cond);
  b.bind(top);
  b.ldc_i4(64).newarr(ValType::I64).pop();
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(cond);
  b.ldloc(i).ldc_i4(4000).blt(top);
  b.ldc_i4(0).ret();
  const auto m = b.finish();
  f.run_all(m);
  EXPECT_GT(f.vm.gc_count(), 0u);
  EXPECT_EQ(string_value(s), "pinned payload");
  f.vm.unpin(s);
}

TEST(VmGc, ExplicitCollectViaIntrinsic) {
  VMFixture f;
  Module& mod = f.vm.module();
  ILBuilder b(mod, "gc_explicit", {{}, ValType::I32});
  b.ldc_i4(16).newarr(ValType::I32).pop();
  b.call_intr(vm::I_GC_COLLECT);
  b.ldc_i4(1).ret();
  const auto m = b.finish();
  const auto before = f.vm.gc_count();
  EXPECT_EQ(f.run_all(m).i32, 1);
  EXPECT_GE(f.vm.gc_count(), before + 3);  // one per engine
}

TEST(VmGc, CollectionDuringMultithreadedAllocation) {
  VMFixture f;
  f.vm.heap().set_threshold(1 << 15);
  Module& mod = f.vm.module();
  const std::int32_t box_cls = mod.define_class(
      "gc.MtBox", {{"hits", ValType::I32}});
  // Worker: allocate in a loop, bump arg.hits under the monitor at the end.
  ILBuilder w(mod, "gc_mt_worker", {{ValType::Ref}, ValType::I32});
  {
    const auto i = w.add_local(ValType::I32);
    auto cond = w.new_label();
    auto top = w.new_label();
    w.ldc_i4(0).stloc(i).br(cond);
    w.bind(top);
    w.ldc_i4(128).newarr(ValType::F64).pop();
    w.ldloc(i).ldc_i4(1).add().stloc(i);
    w.bind(cond);
    w.ldloc(i).ldc_i4(2000).blt(top);
    w.ldarg(0).call_intr(vm::I_MON_ENTER);
    w.ldarg(0).ldarg(0).ldfld(box_cls, "hits").ldc_i4(1).add()
        .stfld(box_cls, "hits");
    w.ldarg(0).call_intr(vm::I_MON_EXIT);
    w.ldc_i4(0).ret();
  }
  const auto worker = w.finish();

  ILBuilder b(mod, "gc_mt_main", {{ValType::I32}, ValType::I32});
  {
    const auto t = b.add_local(ValType::I32);
    const auto box = b.add_local(ValType::Ref);
    const auto handles = b.add_local(ValType::Ref);
    b.newobj(box_cls).stloc(box);
    b.ldarg(0).newarr(ValType::Ref).stloc(handles);
    auto c1 = b.new_label();
    auto t1 = b.new_label();
    b.ldc_i4(0).stloc(t).br(c1);
    b.bind(t1);
    b.ldloc(handles).ldloc(t);
    b.ldc_i4(worker).ldloc(box).call_intr(vm::I_THREAD_START);
    b.stelem(ValType::Ref);
    b.ldloc(t).ldc_i4(1).add().stloc(t);
    b.bind(c1);
    b.ldloc(t).ldarg(0).blt(t1);
    auto c2 = b.new_label();
    auto t2 = b.new_label();
    b.ldc_i4(0).stloc(t).br(c2);
    b.bind(t2);
    b.ldloc(handles).ldloc(t).ldelem(ValType::Ref).call_intr(vm::I_THREAD_JOIN);
    b.ldloc(t).ldc_i4(1).add().stloc(t);
    b.bind(c2);
    b.ldloc(t).ldarg(0).blt(t2);
    b.ldloc(box).ldfld(box_cls, "hits").ret();
  }
  const auto m = b.finish();
  verify(mod, m);
  VMContext& ctx = f.vm.main_context();
  for (auto& e : f.engines) {
    ctx.engine = e.get();
    Slot arg = Slot::from_i32(4);
    EXPECT_EQ(e->invoke(ctx, m, std::span<const Slot>(&arg, 1)).i32, 4)
        << e->name();
  }
  EXPECT_GT(f.vm.gc_count(), 0u);
}

// N native threads bump-allocate through their own TLABs across many GC
// cycles; after the threads are joined the heap's census must be *exact*:
// every allocation is accounted, and allocations partition into swept +
// live. This is the structural check that per-thread accounting folds
// correctly at refill, rendezvous and detach.
TEST(VmGc, MultithreadedTlabAllocationCensusStaysExact) {
  VirtualMachine vm;
  Heap& heap = vm.heap();
  heap.set_threshold(1 << 16);  // 64 KiB: many collections under the run
  constexpr int kThreads = 8;
  constexpr int kAllocs = 4000;
  constexpr int kPinEvery = 1000;  // 4 survivors per thread
  const auto before = heap.stats();

  std::vector<std::thread> threads;
  std::mutex pinned_mu;
  std::vector<ObjRef> pinned;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&vm, t, &pinned_mu, &pinned] {
      auto ctx = vm.attach_thread(nullptr);
      for (int i = 0; i < kAllocs; ++i) {
        const std::int32_t len = 8 + (i % 57);
        ObjRef a = vm.heap().alloc_array(ValType::I32, len, &ctx->tlab);
        a->i32_data()[0] = t * kAllocs + i;
        if (i % kPinEvery == 0) {
          vm.pin(a);
          std::lock_guard<std::mutex> lock(pinned_mu);
          pinned.push_back(a);
        }
        // Mid-loop safepoint so this thread also parks for others' GCs.
        vm.safepoint_poll(*ctx);
      }
      vm.detach_thread(*ctx);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_GT(vm.gc_count(), 0u);

  vm.collect();  // final collection: only the pinned survivors stay
  const auto after = heap.stats();
  EXPECT_EQ(after.total_allocations - before.total_allocations,
            static_cast<std::size_t>(kThreads) * kAllocs);
  // Allocations partition exactly into swept and live.
  EXPECT_EQ(after.total_allocations - after.swept_objects,
            after.live_objects);
  EXPECT_EQ(after.live_objects,
            static_cast<std::size_t>(kThreads) * (kAllocs / kPinEvery));
  // Survivors' payloads were not clobbered by segment reuse.
  for (ObjRef a : pinned) {
    EXPECT_EQ(a->kind, ObjKind::Array);
    EXPECT_GE(a->length, 8);
    vm.unpin(a);
  }
  vm.collect();
  EXPECT_EQ(heap.stats().live_objects, 0u);
  EXPECT_EQ(heap.stats().total_allocations, heap.stats().swept_objects);
}

// Oversized blocks (> 1/4 segment) bypass TLABs for the large-object list
// and are swept individually; fully-dead segments return to the pool and
// get reused by later refills.
TEST(VmGc, LargeObjectPathAndSegmentPoolReuse) {
  VirtualMachine vm;
  Heap& heap = vm.heap();
  // 4096 doubles = 32 KiB payload: larger than the 16 KiB large threshold.
  ObjRef big = heap.alloc_array(ValType::F64, 4096);
  big->f64_data()[4095] = 2003.0315;
  vm.pin(big);
  EXPECT_EQ(heap.stats().large_objects, 1u);

  // Churn a few segments' worth of small garbage, then collect: the dead
  // segments must be pooled, the pinned large object must survive intact.
  for (int i = 0; i < 2000; ++i) heap.alloc_array(ValType::F64, 32);
  const auto grown = heap.stats();
  EXPECT_GT(grown.segments, 0u);
  vm.collect();
  const auto swept = heap.stats();
  EXPECT_GT(swept.pooled_segments, 0u);
  EXPECT_LT(swept.segments, grown.segments);
  EXPECT_EQ(big->f64_data()[4095], 2003.0315);

  // Refill after the collection reuses pooled segments rather than growing.
  for (int i = 0; i < 2000; ++i) heap.alloc_array(ValType::F64, 32);
  EXPECT_LE(heap.stats().segments + heap.stats().pooled_segments,
            grown.segments + swept.pooled_segments + 1);

  vm.unpin(big);
  vm.collect();
  EXPECT_EQ(heap.stats().large_objects, 0u);
}

TEST(VmGc, HeapStatsTrackLiveBytes) {
  VMFixture f;
  const auto before = f.vm.heap().stats();
  ObjRef a = f.vm.heap().alloc_array(ValType::F64, 1000);
  f.vm.pin(a);
  f.vm.collect();
  const auto after = f.vm.heap().stats();
  EXPECT_GE(after.live_bytes, before.live_bytes + 8000);
  f.vm.unpin(a);
  f.vm.collect();
  EXPECT_LT(f.vm.heap().stats().live_bytes, after.live_bytes);
}

}  // namespace
}  // namespace hpcnet::test

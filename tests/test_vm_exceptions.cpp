// Structured exception handling across all three engine tiers: catch
// matching (including subclass hierarchies), finally on both the normal
// (leave) and exceptional paths, nesting, rethrow, cross-frame propagation.
#include <gtest/gtest.h>

#include "vm_test_util.hpp"

namespace hpcnet::test {
namespace {

TEST(VmExceptions, CatchByExactClass) {
  VMFixture f;
  Module& mod = f.vm.module();
  // try { throw new IndexOutOfRange; } catch (IndexOutOfRange) { return 7; }
  ILBuilder b(mod, "catch_exact", {{}, ValType::I32});
  auto t0 = b.new_label();
  auto t1 = b.new_label();
  auto h = b.new_label();
  auto out = b.new_label();
  b.bind(t0);
  b.newobj(mod.index_range_class()).throw_();
  b.bind(t1);
  b.add_catch(t0, t1, h, mod.index_range_class());
  b.bind(h);
  b.pop().leave(out);
  b.bind(out);
  b.ldc_i4(7).ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m).i32, 7);
}

TEST(VmExceptions, CatchBySuperclassMatchesDerived) {
  VMFixture f;
  Module& mod = f.vm.module();
  // DivideByZero derives from Arithmetic derives from Exception.
  ILBuilder b(mod, "catch_super", {{}, ValType::I32});
  auto t0 = b.new_label();
  auto t1 = b.new_label();
  auto h = b.new_label();
  auto out = b.new_label();
  b.bind(t0);
  b.ldc_i4(1).ldc_i4(0).div().pop();
  b.leave(out);
  b.bind(t1);
  b.add_catch(t0, t1, h, mod.arithmetic_class());
  b.bind(h);
  b.pop().leave(out);
  b.bind(out);
  b.ldc_i4(11).ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m).i32, 11);
}

TEST(VmExceptions, NonMatchingCatchPropagates) {
  VMFixture f;
  Module& mod = f.vm.module();
  // try { throw NullReference } catch (DivideByZero) -> must escape.
  ILBuilder b(mod, "catch_miss", {{}, ValType::I32});
  auto t0 = b.new_label();
  auto t1 = b.new_label();
  auto h = b.new_label();
  auto out = b.new_label();
  b.bind(t0);
  b.newobj(mod.null_reference_class()).throw_();
  b.bind(t1);
  b.add_catch(t0, t1, h, mod.divide_by_zero_class());
  b.bind(h);
  b.pop().leave(out);
  b.bind(out);
  b.ldc_i4(1).ret();
  const auto m = b.finish();
  verify(mod, m);
  VMContext& ctx = f.vm.main_context();
  for (auto& e : f.engines) {
    ctx.engine = e.get();
    try {
      e->invoke(ctx, m, {});
      FAIL() << e->name();
    } catch (const ManagedException& ex) {
      EXPECT_EQ(ex.class_name(), "System.NullReferenceException") << e->name();
    }
  }
}

TEST(VmExceptions, FinallyRunsOnNormalLeave) {
  VMFixture f;
  Module& mod = f.vm.module();
  // x = 1; try { x = 2; leave } finally { x = x * 10 } return x; -> 20
  ILBuilder b(mod, "finally_leave", {{}, ValType::I32});
  const auto x = b.add_local(ValType::I32);
  auto t0 = b.new_label();
  auto t1 = b.new_label();
  auto fin = b.new_label();
  auto out = b.new_label();
  b.ldc_i4(1).stloc(x);
  b.bind(t0);
  b.ldc_i4(2).stloc(x);
  b.leave(out);
  b.bind(t1);
  b.add_finally(t0, t1, fin);
  b.bind(fin);
  b.ldloc(x).ldc_i4(10).mul().stloc(x);
  b.endfinally();
  b.bind(out);
  b.ldloc(x).ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m).i32, 20);
}

TEST(VmExceptions, FinallyRunsOnExceptionPath) {
  VMFixture f;
  Module& mod = f.vm.module();
  // try { try { throw } finally { sideffect } } catch { return side }
  std::int32_t holder = mod.define_class("test.FinallyHolder", {}, -1,
                                         {{"count", ValType::I32}});
  ILBuilder b(mod, "finally_throw", {{}, ValType::I32});
  auto t0 = b.new_label();
  auto t1 = b.new_label();
  auto fin = b.new_label();
  auto h = b.new_label();
  auto out = b.new_label();
  auto outer_end = b.new_label();
  b.ldc_i4(0).stsfld(holder, "count");
  b.bind(t0);
  b.newobj(mod.exception_class()).throw_();
  b.bind(t1);
  b.add_finally(t0, t1, fin);
  b.bind(fin);
  b.ldsfld(holder, "count").ldc_i4(100).add().stsfld(holder, "count");
  b.endfinally();
  b.bind(outer_end);
  // Outer catch covering the whole inner region (incl. the finally body).
  b.add_catch(t0, outer_end, h, mod.exception_class());
  b.bind(h);
  b.pop().leave(out);
  b.bind(out);
  b.ldsfld(holder, "count").ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m).i32, 100);
}

TEST(VmExceptions, NestedFinallyOrder) {
  VMFixture f;
  Module& mod = f.vm.module();
  // Leave from the inner try runs inner then outer finally:
  // count = count*10 + 1 (inner), then *10 + 2 (outer) -> 12.
  std::int32_t holder = mod.define_class("test.NestHolder", {}, -1,
                                         {{"v", ValType::I32}});
  ILBuilder b(mod, "nested_finally", {{}, ValType::I32});
  auto o0 = b.new_label();
  auto i0 = b.new_label();
  auto i1 = b.new_label();
  auto ifin = b.new_label();
  auto o1 = b.new_label();
  auto ofin = b.new_label();
  auto out = b.new_label();
  b.ldc_i4(0).stsfld(holder, "v");
  b.bind(o0);
  b.bind(i0);
  b.leave(out);
  b.bind(i1);
  // Inner handlers first (innermost-first ordering).
  b.add_finally(i0, i1, ifin);
  b.bind(ifin);
  b.ldsfld(holder, "v").ldc_i4(10).mul().ldc_i4(1).add().stsfld(holder, "v");
  b.endfinally();
  b.bind(o1);
  b.add_finally(o0, o1, ofin);
  b.bind(ofin);
  b.ldsfld(holder, "v").ldc_i4(10).mul().ldc_i4(2).add().stsfld(holder, "v");
  b.endfinally();
  b.bind(out);
  b.ldsfld(holder, "v").ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m).i32, 12);
}

TEST(VmExceptions, RethrowFromCatchReachesOuter) {
  VMFixture f;
  Module& mod = f.vm.module();
  // outer try { inner try { throw DivByZero } catch (Arithmetic) { throw
  // NullRef } } catch (Exception) { return 5 }
  ILBuilder b(mod, "rethrow", {{}, ValType::I32});
  auto i0 = b.new_label();
  auto i1 = b.new_label();
  auto ih = b.new_label();
  auto ih_end = b.new_label();
  auto oh = b.new_label();
  auto out = b.new_label();
  b.bind(i0);
  b.newobj(mod.divide_by_zero_class()).throw_();
  b.bind(i1);
  b.add_catch(i0, i1, ih, mod.arithmetic_class());
  b.bind(ih);
  b.pop();
  b.newobj(mod.null_reference_class()).throw_();
  b.bind(ih_end);
  // Outer region covers the inner try AND the inner handler body.
  b.add_catch(i0, ih_end, oh, mod.exception_class());
  b.bind(oh);
  b.pop().leave(out);
  b.bind(out);
  b.ldc_i4(5).ret();
  const auto m = b.finish();
  EXPECT_EQ(f.run_all(m).i32, 5);
}

TEST(VmExceptions, PropagatesThroughCallFrames) {
  VMFixture f;
  Module& mod = f.vm.module();
  ILBuilder inner(mod, "prop_inner", {{}, ValType::I32});
  inner.ldc_i4(1).ldc_i4(0).div().ret();
  const auto im = inner.finish();

  ILBuilder mid(mod, "prop_mid", {{}, ValType::I32});
  mid.call(im).ldc_i4(1).add().ret();
  const auto mm = mid.finish();

  ILBuilder outer(mod, "prop_outer", {{}, ValType::I32});
  auto t0 = outer.new_label();
  auto t1 = outer.new_label();
  auto h = outer.new_label();
  auto out = outer.new_label();
  outer.bind(t0);
  outer.call(mm).pop();
  outer.leave(out);
  outer.bind(t1);
  outer.add_catch(t0, t1, h, mod.divide_by_zero_class());
  outer.bind(h);
  outer.pop().leave(out);
  outer.bind(out);
  outer.ldc_i4(99).ret();
  const auto om = outer.finish();
  EXPECT_EQ(f.run_all(om).i32, 99);
}

TEST(VmExceptions, ExceptionMessageSurvivesToNative) {
  VMFixture f;
  Module& mod = f.vm.module();
  ILBuilder b(mod, "msg", {{}, ValType::I32});
  const auto exc = b.add_local(ValType::Ref);
  b.newobj(mod.exception_class()).stloc(exc);
  b.ldloc(exc).ldstr("hello from managed code").stfld(mod.exception_class(), 0);
  b.ldloc(exc).throw_();
  const auto m = b.finish();
  verify(mod, m);
  VMContext& ctx = f.vm.main_context();
  for (auto& e : f.engines) {
    ctx.engine = e.get();
    try {
      e->invoke(ctx, m, {});
      FAIL();
    } catch (const ManagedException& ex) {
      EXPECT_EQ(ex.message(), "hello from managed code") << e->name();
    }
  }
}

TEST(VmExceptions, NullChecksThrowNullReference) {
  VMFixture f;
  Module& mod = f.vm.module();
  const std::int32_t cls = mod.define_class("test.NullTarget",
                                            {{"f", ValType::I32}});
  struct Case {
    const char* name;
    std::function<void(ILBuilder&)> body;
  };
  const std::vector<Case> cases = {
      {"null_ldfld", [&](ILBuilder& b) { b.ldnull().ldfld(cls, 0); }},
      {"null_ldlen", [&](ILBuilder& b) { b.ldnull().ldlen(); }},
      {"null_ldelem",
       [&](ILBuilder& b) { b.ldnull().ldc_i4(0).ldelem(ValType::I32); }},
      {"null_unbox", [&](ILBuilder& b) { b.ldnull().unbox(ValType::I32); }},
      {"null_throw", [&](ILBuilder& b) {
         b.ldnull().throw_();
         b.ldc_i4(0);  // unreachable; keeps ret below for other cases only
       }},
  };
  for (const auto& c : cases) {
    ILBuilder b(mod, c.name, {{}, ValType::I32});
    c.body(b);
    if (std::string(c.name) != "null_throw") b.conv_i4();
    b.ret();
    const auto m = b.finish();
    verify(mod, m);
    VMContext& ctx = f.vm.main_context();
    for (auto& e : f.engines) {
      ctx.engine = e.get();
      try {
        e->invoke(ctx, m, {});
        FAIL() << c.name << " on " << e->name();
      } catch (const ManagedException& ex) {
        EXPECT_EQ(ex.class_name(), "System.NullReferenceException")
            << c.name << " on " << e->name();
      }
    }
  }
}

TEST(VmExceptions, IndexOutOfRange) {
  VMFixture f;
  Module& mod = f.vm.module();
  ILBuilder b(mod, "oob", {{ValType::I32}, ValType::I32});
  const auto arr = b.add_local(ValType::Ref);
  b.ldc_i4(4).newarr(ValType::I32).stloc(arr);
  b.ldloc(arr).ldarg(0).ldelem(ValType::I32).ret();
  const auto m = b.finish();
  verify(mod, m);
  VMContext& ctx = f.vm.main_context();
  for (auto& e : f.engines) {
    ctx.engine = e.get();
    Slot ok = Slot::from_i32(3);
    EXPECT_EQ(e->invoke(ctx, m, std::span<const Slot>(&ok, 1)).i32, 0);
    for (std::int32_t bad : {-1, 4, 1 << 30}) {
      Slot arg = Slot::from_i32(bad);
      try {
        e->invoke(ctx, m, std::span<const Slot>(&arg, 1));
        FAIL() << e->name() << " idx=" << bad;
      } catch (const ManagedException& ex) {
        EXPECT_EQ(ex.class_name(), "System.IndexOutOfRangeException")
            << e->name();
      }
    }
  }
}

TEST(VmExceptions, UnboxWrongTypeThrowsInvalidCast) {
  VMFixture f;
  Module& mod = f.vm.module();
  ILBuilder b(mod, "badunbox", {{}, ValType::I64});
  b.ldc_i4(5).box(ValType::I32).unbox(ValType::I64).ret();
  const auto m = b.finish();
  verify(mod, m);
  VMContext& ctx = f.vm.main_context();
  for (auto& e : f.engines) {
    ctx.engine = e.get();
    try {
      e->invoke(ctx, m, {});
      FAIL() << e->name();
    } catch (const ManagedException& ex) {
      EXPECT_EQ(ex.class_name(), "System.InvalidCastException") << e->name();
    }
  }
}

}  // namespace
}  // namespace hpcnet::test

// Support library: the bit-exact java.util.Random port (golden values
// generated from the Java LCG specification), the SciMark RNG, statistics
// and the result-table reporter.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "support/java_random.hpp"
#include "support/reporter.hpp"
#include "support/stats.hpp"
#include "support/timer.hpp"

namespace hpcnet::test {
namespace {

using namespace hpcnet::support;

// ---------------------------------------------------------------------------
// JavaRandom golden values (computed from the java.util.Random spec LCG).

struct GoldenCase {
  std::int64_t seed;
  std::int32_t ints[3];
  double first_double;
  std::int64_t first_long;
};

class JavaRandomGolden : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(JavaRandomGolden, MatchesSpecification) {
  const GoldenCase& g = GetParam();
  {
    JavaRandom r(g.seed);
    for (std::int32_t want : g.ints) EXPECT_EQ(r.next_int(), want);
  }
  {
    JavaRandom r(g.seed);
    EXPECT_DOUBLE_EQ(r.next_double(), g.first_double);
  }
  {
    JavaRandom r(g.seed);
    EXPECT_EQ(r.next_long(), g.first_long);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, JavaRandomGolden,
    ::testing::Values(
        GoldenCase{0, {-1155484576, -723955400, 1033096058},
                   0.730967787376657, -4962768465676381896LL},
        GoldenCase{42, {-1170105035, 234785527, -1360544799},
                   0.7275636800328681, -5025562857975149833LL},
        GoldenCase{1966, {-1614874763, 240126280, -1389226175},
                   0.6240076580034011, -6935834293980624568LL},
        GoldenCase{123456789, {-1442945365, -1016548095, 1962592967},
                   0.664038103272266, -6197403153606331135LL}));

TEST(JavaRandom, BoundedIntsInRange) {
  JavaRandom r(7);
  for (std::int32_t bound : {1, 2, 7, 16, 100, 1 << 20}) {
    for (int i = 0; i < 200; ++i) {
      const std::int32_t v = r.next_int(bound);
      ASSERT_GE(v, 0);
      ASSERT_LT(v, bound);
    }
  }
}

TEST(JavaRandom, PowerOfTwoBoundUsesFastPath) {
  // Spec behaviour for power-of-2 bounds: (bound * next(31)) >> 31.
  JavaRandom a(99), b(99);
  const std::int32_t v = a.next_int(8);
  const std::int32_t bits = b.next(31);
  EXPECT_EQ(v, static_cast<std::int32_t>((8LL * bits) >> 31));
}

TEST(JavaRandom, FloatsAndBoolsDeterministic) {
  JavaRandom a(5), b(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_float(), b.next_float());
    EXPECT_EQ(a.next_boolean(), b.next_boolean());
  }
}

TEST(JavaRandom, GaussianMomentsReasonable) {
  JavaRandom r(12345);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = r.next_gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(JavaRandom, ReseedResetsState) {
  JavaRandom r(1);
  (void)r.next_int();
  r.set_seed(1);
  JavaRandom fresh(1);
  EXPECT_EQ(r.next_int(), fresh.next_int());
}

// ---------------------------------------------------------------------------
// SciMarkRandom.

TEST(SciMarkRandom, RangeAndDeterminism) {
  SciMarkRandom a(101010), b(101010);
  double mean = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = a.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    ASSERT_EQ(v, b.next_double());
    mean += v;
  }
  EXPECT_NEAR(mean / 10000, 0.5, 0.02);
}

TEST(SciMarkRandom, DistinctSeedsDiverge) {
  // Note: even/odd seed pairs like (1, 2) collide by design (the generator
  // forces jseed odd); pick genuinely distinct odd seeds.
  SciMarkRandom a(101010), b(31415);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_double() == b.next_double()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(SciMarkRandom, FillMatchesSequentialCalls) {
  SciMarkRandom a(7), b(7);
  double buf[32];
  a.next_doubles(buf, 32);
  for (double v : buf) EXPECT_EQ(v, b.next_double());
}

// ---------------------------------------------------------------------------
// Statistics.

TEST(Stats, SummaryBasics) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.count, 5u);
  EXPECT_DOUBLE_EQ(s.min, 1);
  EXPECT_DOUBLE_EQ(s.max, 5);
  EXPECT_DOUBLE_EQ(s.mean, 3);
  EXPECT_DOUBLE_EQ(s.median, 3);
  EXPECT_NEAR(s.stddev, std::sqrt(2.5), 1e-12);
}

TEST(Stats, EmptyAndSingle) {
  EXPECT_EQ(summarize({}).count, 0u);
  const Summary s = summarize({7});
  EXPECT_DOUBLE_EQ(s.median, 7);
  EXPECT_DOUBLE_EQ(s.stddev, 0);
}

TEST(Stats, MedianEvenCount) {
  EXPECT_DOUBLE_EQ(summarize({1, 2, 3, 4}).median, 2.5);
}

TEST(Stats, OutlierScreenFindsSpike) {
  std::vector<double> samples(100, 10.0);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    samples[i] += (i % 7) * 0.01;  // small natural jitter
  }
  samples.push_back(1000.0);
  const auto outliers = find_outliers(samples);
  ASSERT_EQ(outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(outliers[0], 1000.0);
}

TEST(Stats, NoOutliersInUniformJitter) {
  std::vector<double> s = {10.0, 10.1, 9.9, 10.05, 9.95, 10.02};
  EXPECT_TRUE(find_outliers(s).empty());
}

TEST(Stats, GeometricMean) {
  EXPECT_DOUBLE_EQ(geometric_mean({1, 100}), 10);
  EXPECT_DOUBLE_EQ(geometric_mean({5}), 5);
  EXPECT_DOUBLE_EQ(geometric_mean({}), 0);
}

// ---------------------------------------------------------------------------
// Histogram (power-of-two buckets; exact count/total/min/max).

TEST(Histogram, ExactStatistics) {
  Histogram h;
  for (std::uint64_t v : {1ull, 2ull, 3ull, 1000ull}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.total(), 1006u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_DOUBLE_EQ(h.mean(), 1006.0 / 4.0);
}

TEST(Histogram, BucketBoundaries) {
  Histogram h;
  h.record(0);
  h.record(1);
  h.record(2);
  h.record(3);
  h.record(4);
  EXPECT_EQ(h.bucket(0), 1u);  // value 0
  EXPECT_EQ(h.bucket(1), 1u);  // [1, 1]
  EXPECT_EQ(h.bucket(2), 2u);  // [2, 3]
  EXPECT_EQ(h.bucket(3), 1u);  // [4, 7]
  EXPECT_EQ(h.bucket_floor(2), 2u);
  EXPECT_EQ(h.bucket_ceil(2), 3u);
}

TEST(Histogram, PercentilesBracketedByBuckets) {
  Histogram h;
  for (int i = 0; i < 99; ++i) h.record(10);
  h.record(1000);
  // p50 falls in 10's bucket [8, 15]; p100 is capped at the exact max.
  EXPECT_GE(h.percentile(50), 8u);
  EXPECT_LE(h.percentile(50), 15u);
  EXPECT_EQ(h.percentile(100), 1000u);
}

TEST(Histogram, MergeAndReset) {
  Histogram a, b;
  a.record(5);
  b.record(7);
  b.record(100);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.total(), 112u);
  EXPECT_EQ(a.min(), 5u);
  EXPECT_EQ(a.max(), 100u);
  a.merge(Histogram{});  // merging an empty histogram changes nothing
  EXPECT_EQ(a.count(), 3u);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.total(), 0u);
}

// ---------------------------------------------------------------------------
// ResultTable.

TEST(ResultTable, SetGetAndMissing) {
  ResultTable t("x");
  t.set("r1", "c1", 1.5);
  t.set("r1", "c2", 3.0);
  t.set("r2", "c1", 2.0);
  EXPECT_DOUBLE_EQ(t.get("r1", "c2"), 3.0);
  EXPECT_TRUE(t.has("r2", "c1"));
  EXPECT_FALSE(t.has("r2", "c2"));
  EXPECT_TRUE(std::isnan(t.get("nope", "c1")));
}

TEST(ResultTable, NormalizedTo) {
  ResultTable t("x");
  t.set("r", "native", 100);
  t.set("r", "vm", 25);
  const ResultTable n = t.normalized_to("native", "rel");
  EXPECT_DOUBLE_EQ(n.get("r", "vm"), 0.25);
  EXPECT_DOUBLE_EQ(n.get("r", "native"), 1.0);
}

TEST(ResultTable, CsvShape) {
  ResultTable t("title");
  t.set("row", "col", 2.0);
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "# title\nbenchmark,col\nrow,2\n");
}

TEST(ResultTable, SciFormat) {
  EXPECT_EQ(sci(2.5e8), "2.50E+08");
  EXPECT_EQ(sci(1), "1.00E+00");
}

TEST(ResultTable, JsonShape) {
  ResultTable t("t");
  t.set("row", "a", 2.0);
  t.set("row", "b", 0.5);
  std::ostringstream os;
  t.print_json(os);
  EXPECT_EQ(os.str(),
            "{\"title\":\"t\",\"columns\":[\"a\",\"b\"],\"rows\":[\"row\"],"
            "\"cells\":[[2,0.5]]}\n");
}

TEST(ResultTable, JsonEscapesAndNulls) {
  ResultTable t("quote\" tab\t");
  t.set("r\\1", "c", std::nan(""));
  std::ostringstream os;
  t.print_json(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("\"quote\\\" tab\\t\""), std::string::npos);
  EXPECT_NE(s.find("\"r\\\\1\""), std::string::npos);
  EXPECT_NE(s.find("[[null]]"), std::string::npos);
}

TEST(ResultTable, JsonEscapeHelper) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  EXPECT_EQ(json_escape(std::string("a\x01") + "b"), "a\\u0001b");
}

// ---------------------------------------------------------------------------
// Timer.

TEST(Timer, StopwatchAccumulates) {
  Stopwatch w;
  w.start();
  w.stop();
  const double first = w.seconds();
  w.start();
  w.stop();
  EXPECT_GE(w.seconds(), first);
  w.reset();
  EXPECT_DOUBLE_EQ(w.seconds(), 0);
}

TEST(Timer, MonotonicClock) {
  const auto a = now_ns();
  const auto b = now_ns();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace hpcnet::test

// Snapshot warm start (DESIGN.md §13): capture a warmed CodeCache into an
// immutable CodeArchive, round-trip it through the 'HPCA' wire format, and
// boot fresh VMs from it — first invocation bit-identical to the donor with
// zero recompilation, across every paper profile, from many threads sharing
// one archive, through the ExecutionService, and via snapshot files.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cil/sm.hpp"
#include "vm/engines.hpp"
#include "vm/serialize.hpp"
#include "vm/service/service.hpp"
#include "vm/telemetry/telemetry.hpp"
#include "vm_test_util.hpp"

namespace hpcnet::test {
namespace {

namespace telemetry = hpcnet::vm::telemetry;
namespace service = hpcnet::vm::service;

constexpr std::int32_t kSorN = 16;
constexpr std::int32_t kSorSweeps = 2;

std::vector<Slot> sor_args() {
  return {Slot::from_i32(kSorN), Slot::from_i32(kSorSweeps)};
}

/// Warms SOR in a throwaway VM under `profile` (`invocations` calls) and
/// returns {serialized archive stream, final result bits}.
std::pair<std::vector<char>, std::uint64_t> donor_blob(
    const std::string& profile, int invocations) {
  VirtualMachine donor;
  const std::int32_t m = cil::build_sm_sor(donor);
  auto eng = make_engine(donor, profiles::by_name(profile));
  VMContext& ctx = donor.main_context();
  Slot last = Slot::from_i32(0);
  for (int i = 0; i < invocations; ++i) last = eng->invoke(ctx, m, sor_args());
  return {serialize_archives({capture_archive(donor, profile)}), last.raw};
}

/// Parses a blob against a fresh VM that already holds the SOR program;
/// returns {vm-ready archive, that VM's SOR method id} via out-params.
std::shared_ptr<const CodeArchive> parse_against(
    VirtualMachine& v, const std::vector<char>& blob) {
  const auto as = deserialize_archives(v.module(), blob.data(), blob.size());
  EXPECT_EQ(as.size(), 1u);
  return as.at(0);
}

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::set_enabled(true);
    telemetry::reset();
  }
  void TearDown() override {
    telemetry::set_enabled(false);
    telemetry::reset();
  }

  /// methods_compiled for `engine`, or 0 when nothing was recorded (the
  /// EngineJitTimes row only exists once a compile happens) or telemetry is
  /// compiled out (then the check degrades to vacuous, by design).
  static std::uint64_t compiles(const std::string& engine) {
    if (!telemetry::enabled()) return 0;
    const telemetry::Snapshot s = telemetry::snapshot();
    const telemetry::EngineJitTimes* j = s.engine_jit(engine);
    return j != nullptr ? j->methods_compiled : 0;
  }
};

// Every paper profile plus the vector tier: capture from a warmed donor,
// round-trip the bytes, attach to a fresh VM, and require the very first
// invocation to reproduce the donor's result bit for bit. For profiles that
// reach the optimizing tier the restored VM must also compile nothing.
TEST_F(SnapshotTest, RoundTripBitIdenticalAcrossProfiles) {
  const std::vector<std::string> names = {"ibm131", "clr11",  "bea81",
                                          "jsharp11", "sun14", "mono023",
                                          "rotor10", "clr11.vec"};
  for (const std::string& prof : names) {
    SCOPED_TRACE(prof);
    const auto [blob, want_raw] = donor_blob(prof, 3);

    VirtualMachine v;
    const std::int32_t m = cil::build_sm_sor(v);
    const auto archive = parse_against(v, blob);
    EXPECT_EQ(archive->profile(), prof);
    const ArchiveStats st = attach_archive(v, archive);
    const bool optimizing =
        profiles::by_name(prof).tier == Tier::Optimizing;
    if (optimizing) {
      // SOR plus every transitive callee the donor compiled.
      EXPECT_GE(st.restored, 1u);
      EXPECT_EQ(st.missed, 0u);
    }

    telemetry::reset();  // isolate the restored VM's own compiles
    auto eng = make_engine(v, profiles::by_name(prof));
    const Slot first = eng->invoke(v.main_context(), m, sor_args());
    EXPECT_EQ(first.raw, want_raw) << "first invocation differs from donor";
    if (optimizing) {
      EXPECT_EQ(compiles(prof), 0u);
    }
  }
}

// A warm-booted method starts at its snapshotted tier: the donor drives SOR
// through the tiered pipeline to Tier::Optimizing; after attach, a fresh
// TieredEngine dispatches it as Optimizing before a single local call.
TEST_F(SnapshotTest, WarmBootRestoresSnapshottedTier) {
  const std::string prof = "clr11.tiered";
  const auto [blob, want_raw] = donor_blob(prof, 96);

  VirtualMachine v;
  const std::int32_t m = cil::build_sm_sor(v);
  const ArchiveStats st = attach_archive(v, parse_against(v, blob));
  EXPECT_GE(st.restored, 1u);

  telemetry::reset();
  TieredEngine eng(v, profiles::by_name(prof));
  EXPECT_EQ(eng.method_tier(m), Tier::Optimizing)
      << "tier not restored from the snapshot";
  const Slot first = eng.invoke(v.main_context(), m, sor_args());
  EXPECT_EQ(first.raw, want_raw);
  EXPECT_EQ(compiles(prof), 0u);

  // Re-attaching is a no-op: every matching entry is already warm, so the
  // second pass neither restores nor mis-counts anything.
  const ArchiveStats again = attach_archive(v, parse_against(v, blob));
  EXPECT_EQ(again.restored, 0u);
  EXPECT_EQ(again.missed, 0u);
}

// One immutable archive, eight VMs cold-booting against it concurrently —
// the multi-instance story of DESIGN.md §13 (and the TSan target for the
// attach path): shared refcounted RCode bodies, per-VM mutable tier state,
// zero compiles anywhere.
TEST_F(SnapshotTest, EightThreadsShareOneArchiveWithoutRecompiling) {
  const std::string prof = "clr11";
  const auto [blob, want_raw] = donor_blob(prof, 2);

  // Deserialize ONCE against a scratch VM; the resulting archive is the
  // single shared object every thread attaches.
  VirtualMachine scratch;
  cil::build_sm_sor(scratch);
  const auto archive = parse_against(scratch, blob);
  ASSERT_FALSE(archive->records().empty());

  telemetry::reset();
  constexpr int kThreads = 8;
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      VirtualMachine v;
      const std::int32_t m = cil::build_sm_sor(v);
      const ArchiveStats st = attach_archive(v, archive);
      if (st.restored == 0 || st.missed != 0) return;
      auto eng = make_engine(v, profiles::by_name(prof));
      const Slot first = eng->invoke(v.main_context(), m, sor_args());
      if (first.raw == want_raw) ok.fetch_add(1, std::memory_order_relaxed);
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(ok.load(), kThreads);
  EXPECT_EQ(compiles(prof), 0u);  // merged across all eight threads
}

// ExecutionService end to end: a service booted with Options::warm_start
// runs its first job on archived code, and capture_snapshot round-trips the
// warmed cache back out (the quiesced explicit-save operation).
TEST_F(SnapshotTest, ServiceWarmStartAndCaptureSnapshot) {
  const std::string prof = "clr11";
  const auto [blob, want_raw] = donor_blob(prof, 2);

  VirtualMachine v;
  const std::int32_t m = cil::build_sm_sor(v);
  const auto archive = parse_against(v, blob);

  telemetry::reset();
  service::ExecutionService svc(v, profiles::by_name(prof),
                                {.workers = 2, .warm_start = archive});
  svc.add_tenant({.name = "t0"});
  service::JobHandle h = svc.submit("t0", m, sor_args());
  const service::JobResult r = h.wait();
  ASSERT_EQ(r.outcome, service::JobOutcome::Completed);
  EXPECT_EQ(r.value.raw, want_raw);
  EXPECT_EQ(compiles(prof), 0u);

  const auto recaptured = svc.capture_snapshot();
  ASSERT_NE(recaptured, nullptr);
  EXPECT_EQ(recaptured->profile(), prof);
  bool has_code = false;
  for (const auto& rec : recaptured->records()) {
    if (rec.code != nullptr) has_code = true;
  }
  EXPECT_TRUE(has_code);

  // A warm_start whose profile differs from the service's is ignored: the
  // mono023 service boots cold and still computes the right answer.
  service::ExecutionService other(v, profiles::by_name("mono023"),
                                  {.workers = 1, .warm_start = archive});
  other.add_tenant({.name = "t0"});
  const service::JobResult r2 = other.submit("t0", m, sor_args()).wait();
  ASSERT_EQ(r2.outcome, service::JobOutcome::Completed);
  EXPECT_EQ(r2.value.raw, want_raw);
}

// save_snapshot / load_snapshot: the file-based path the CLI flags use.
TEST_F(SnapshotTest, FileRoundTrip) {
  const std::string path = "/tmp/hpcnet_snapshot_test.hpca";
  std::uint64_t want_raw = 0;
  {
    VirtualMachine donor;
    const std::int32_t m = cil::build_sm_sor(donor);
    auto eng = make_engine(donor, profiles::by_name("clr11"));
    VMContext& ctx = donor.main_context();
    for (int i = 0; i < 2; ++i) {
      want_raw = eng->invoke(ctx, m, sor_args()).raw;
    }
    save_snapshot(donor, path);
  }
  VirtualMachine v;
  const std::int32_t m = cil::build_sm_sor(v);
  const ArchiveStats st = load_snapshot(v, path);
  EXPECT_GE(st.restored, 1u);
  auto eng = make_engine(v, profiles::by_name("clr11"));
  EXPECT_EQ(eng->invoke(v.main_context(), m, sor_args()).raw, want_raw);
  std::remove(path.c_str());

  EXPECT_THROW(load_snapshot(v, "/nonexistent/dir/no_such_snapshot.hpca"),
               SerializeError);
}

// The telemetry surface of an attach: restored/missed counters and exactly
// one archive-load timing sample.
TEST_F(SnapshotTest, AttachRecordsTelemetry) {
  if (!telemetry::enabled()) GTEST_SKIP() << "built with HPCNET_TELEMETRY=OFF";
  const auto [blob, want_raw] = donor_blob("clr11", 2);
  (void)want_raw;

  VirtualMachine v;
  cil::build_sm_sor(v);
  const auto archive = parse_against(v, blob);
  telemetry::reset();
  const ArchiveStats st = attach_archive(v, archive);
  const telemetry::Snapshot s = telemetry::snapshot();
  EXPECT_EQ(s.counter(telemetry::Counter::SnapshotMethodsRestored),
            st.restored);
  EXPECT_EQ(s.counter(telemetry::Counter::SnapshotMisses), st.missed);
  EXPECT_EQ(s.archive_load_ns.count(), 1u);
}

}  // namespace
}  // namespace hpcnet::test

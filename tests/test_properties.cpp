// Property-based sweeps (parameterized gtest): algebraic invariants checked
// on all three engine tiers against natively computed expectations, over
// randomized operand streams — the cross-runtime numeric agreement the
// paper's validation methodology relies on.
#include <gtest/gtest.h>

#include <cmath>

#include "support/java_random.hpp"
#include "vm/arith.hpp"
#include "vm_test_util.hpp"

namespace hpcnet::test {
namespace {

/// One fixture per engine tier index (0 = clr11, 1 = mono023, 2 = rotor10).
class EngineProperty : public ::testing::TestWithParam<std::size_t> {
 protected:
  VMFixture f;

  Slot run(std::int32_t method, std::vector<Slot> args) {
    return f.run_on(GetParam(), method, std::move(args));
  }
};

TEST_P(EngineProperty, DivRemReconstruction) {
  // forall a, b != 0 (no overflow case): a == (a/b)*b + a%b.
  Module& mod = f.vm.module();
  ILBuilder b(mod, "p_divrem", {{ValType::I32, ValType::I32}, ValType::I32});
  b.ldarg(0).ldarg(1).div().ldarg(1).mul();
  b.ldarg(0).ldarg(1).rem().add().ret();
  const auto m = b.finish();
  support::JavaRandom rng(11);
  for (int i = 0; i < 300; ++i) {
    const std::int32_t a = rng.next_int();
    std::int32_t d = rng.next_int(1 << 16) + 1;
    if (rng.next_boolean()) d = -d;
    if (a == std::numeric_limits<std::int32_t>::min() && d == -1) continue;
    EXPECT_EQ(run(m, {Slot::from_i32(a), Slot::from_i32(d)}).i32, a)
        << a << "/" << d;
  }
}

TEST_P(EngineProperty, ShiftComposition) {
  // (x << k) >> k (arithmetic) matches native semantics incl. masking.
  Module& mod = f.vm.module();
  ILBuilder b(mod, "p_shift", {{ValType::I32, ValType::I32}, ValType::I32});
  b.ldarg(0).ldarg(1).shl().ldarg(1).shr().ret();
  const auto m = b.finish();
  support::JavaRandom rng(12);
  for (int i = 0; i < 300; ++i) {
    const std::int32_t x = rng.next_int();
    const std::int32_t k = rng.next_int(40);  // deliberately beyond 31
    const std::int32_t want =
        vm::arith::shr_i32(vm::arith::shl_i32(x, k), k);
    EXPECT_EQ(run(m, {Slot::from_i32(x), Slot::from_i32(k)}).i32, want);
  }
}

TEST_P(EngineProperty, WrappingAddSubInverse) {
  Module& mod = f.vm.module();
  ILBuilder b(mod, "p_addsub", {{ValType::I32, ValType::I32}, ValType::I32});
  b.ldarg(0).ldarg(1).add().ldarg(1).sub().ret();
  const auto m = b.finish();
  support::JavaRandom rng(13);
  for (int i = 0; i < 300; ++i) {
    const std::int32_t a = rng.next_int();
    const std::int32_t d = rng.next_int();
    EXPECT_EQ(run(m, {Slot::from_i32(a), Slot::from_i32(d)}).i32, a);
  }
}

TEST_P(EngineProperty, DoubleArithmeticIsIeee) {
  Module& mod = f.vm.module();
  ILBuilder b(mod, "p_f64", {{ValType::F64, ValType::F64}, ValType::F64});
  b.ldarg(0).ldarg(1).mul().ldarg(0).ldarg(1).div().add().ret();
  const auto m = b.finish();
  support::JavaRandom rng(14);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.next_double() * 2000 - 1000;
    const double y = rng.next_double() + 0.5;
    const double want = x * y + x / y;
    const Slot r = run(m, {Slot::from_f64(x), Slot::from_f64(y)});
    EXPECT_EQ(Slot::from_f64(want).raw, r.raw) << x << " " << y;
  }
}

TEST_P(EngineProperty, ConversionTruncationMatchesNative) {
  Module& mod = f.vm.module();
  ILBuilder b(mod, "p_conv", {{ValType::F64}, ValType::I32});
  b.ldarg(0).conv_i4().ret();
  const auto m = b.finish();
  support::JavaRandom rng(15);
  for (int i = 0; i < 300; ++i) {
    const double x = (rng.next_double() - 0.5) * 1e12;  // overflows i32 often
    EXPECT_EQ(run(m, {Slot::from_f64(x)}).i32, vm::arith::f_to_i32(x)) << x;
  }
}

TEST_P(EngineProperty, NarrowingConversionsWrap) {
  Module& mod = f.vm.module();
  ILBuilder b8(mod, "p_conv_i1", {{ValType::I32}, ValType::I32});
  b8.ldarg(0).conv_i1().ret();
  const auto m8 = b8.finish();
  ILBuilder b16(mod, "p_conv_u2", {{ValType::I32}, ValType::I32});
  b16.ldarg(0).conv_u2().ret();
  const auto m16 = b16.finish();
  support::JavaRandom rng(16);
  for (int i = 0; i < 300; ++i) {
    const std::int32_t x = rng.next_int();
    EXPECT_EQ(run(m8, {Slot::from_i32(x)}).i32,
              static_cast<std::int8_t>(x));
    EXPECT_EQ(run(m16, {Slot::from_i32(x)}).i32,
              static_cast<std::uint16_t>(x));
  }
}

TEST_P(EngineProperty, BoxUnboxIsIdentity) {
  Module& mod = f.vm.module();
  ILBuilder b(mod, "p_box", {{ValType::I64}, ValType::I64});
  b.ldarg(0).box(ValType::I64).unbox(ValType::I64).ret();
  const auto m = b.finish();
  support::JavaRandom rng(17);
  for (int i = 0; i < 200; ++i) {
    const std::int64_t x = rng.next_long();
    EXPECT_EQ(run(m, {Slot::from_i64(x)}).i64, x);
  }
}

TEST_P(EngineProperty, ArrayStoreLoadRoundTrip) {
  Module& mod = f.vm.module();
  // write v at index k of a fresh array, read it back.
  ILBuilder b(mod, "p_array",
              {{ValType::I32, ValType::I32, ValType::F64}, ValType::F64});
  const auto arr = b.add_local(ValType::Ref);
  b.ldarg(0).newarr(ValType::F64).stloc(arr);
  b.ldloc(arr).ldarg(1).ldarg(2).stelem(ValType::F64);
  b.ldloc(arr).ldarg(1).ldelem(ValType::F64).ret();
  const auto m = b.finish();
  support::JavaRandom rng(18);
  for (int i = 0; i < 200; ++i) {
    const std::int32_t n = rng.next_int(100) + 1;
    const std::int32_t k = rng.next_int(n);
    const double v = rng.next_double() * 100;
    const Slot r = run(m, {Slot::from_i32(n), Slot::from_i32(k),
                           Slot::from_f64(v)});
    EXPECT_EQ(r.raw, Slot::from_f64(v).raw);
  }
}

TEST_P(EngineProperty, Matrix2StoreLoadRoundTrip) {
  Module& mod = f.vm.module();
  ILBuilder b(mod, "p_mat2",
              {{ValType::I32, ValType::I32, ValType::I32, ValType::I32,
                ValType::I64},
               ValType::I64});
  const auto mat = b.add_local(ValType::Ref);
  b.ldarg(0).ldarg(1).newmat(ValType::I64).stloc(mat);
  b.ldloc(mat).ldarg(2).ldarg(3).ldarg(4).stelem2(ValType::I64);
  b.ldloc(mat).ldarg(2).ldarg(3).ldelem2(ValType::I64).ret();
  const auto m = b.finish();
  support::JavaRandom rng(19);
  for (int i = 0; i < 200; ++i) {
    const std::int32_t rows = rng.next_int(20) + 1;
    const std::int32_t cols = rng.next_int(20) + 1;
    const std::int32_t rr = rng.next_int(rows);
    const std::int32_t cc = rng.next_int(cols);
    const std::int64_t v = rng.next_long();
    const Slot r = run(m, {Slot::from_i32(rows), Slot::from_i32(cols),
                           Slot::from_i32(rr), Slot::from_i32(cc),
                           Slot::from_i64(v)});
    EXPECT_EQ(r.i64, v);
  }
}

TEST_P(EngineProperty, ComparisonTrichotomy) {
  Module& mod = f.vm.module();
  // exactly one of <, ==, > holds for non-NaN doubles.
  ILBuilder b(mod, "p_tri", {{ValType::F64, ValType::F64}, ValType::I32});
  b.ldarg(0).ldarg(1).clt();
  b.ldarg(0).ldarg(1).ceq().add();
  b.ldarg(0).ldarg(1).cgt().add().ret();
  const auto m = b.finish();
  support::JavaRandom rng(20);
  for (int i = 0; i < 300; ++i) {
    const double x = rng.next_double() * 10 - 5;
    const double y = rng.next_boolean() ? x : rng.next_double() * 10 - 5;
    EXPECT_EQ(run(m, {Slot::from_f64(x), Slot::from_f64(y)}).i32, 1);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTiers, EngineProperty,
                         ::testing::Values(0u, 1u, 2u),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return tier_profiles()[i.param].name;
                         });

}  // namespace
}  // namespace hpcnet::test

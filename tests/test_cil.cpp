// End-to-end validation of the CIL benchmark programs: every program runs
// on every engine profile and must produce the same result, and where a
// native twin exists the result must match it bit-for-bit (checksums) or to
// 1e-9 relative (floating point) — the paper's cross-runtime validation.
#include <gtest/gtest.h>

#include <cmath>

#include "cil/jg.hpp"
#include "cil/micro.hpp"
#include "cil/mt.hpp"
#include "cil/sm.hpp"
#include "cil/suite.hpp"
#include "kernels/jgf.hpp"
#include "kernels/scimark.hpp"
#include "vm/intrinsics.hpp"

namespace hpcnet::test {
namespace {

using namespace hpcnet;
using namespace hpcnet::cil;
using vm::Slot;

class CilSuite : public ::testing::Test {
 protected:
  BenchContext bc;

  /// Runs `method(args)` on every engine, requiring identical raw results.
  Slot run_all(std::int32_t method, std::vector<Slot> args) {
    Slot first;
    bool have = false;
    for (auto& e : bc.engines()) {
      const Slot r = bc.invoke(*e, method, args);
      if (!have) {
        first = r;
        have = true;
      } else {
        EXPECT_EQ(first.raw, r.raw)
            << e->name() << " disagrees on "
            << bc.vm().module().method(method).name;
      }
    }
    return first;
  }
};

// ---------------------------------------------------------------------------
// SciMark kernels (Graphs 9-11 inputs).

TEST_F(CilSuite, ScimarkValidatesOnEveryEngine) {
  const auto sizes = ScimarkSizes::test_model();
  for (auto& e : bc.engines()) {
    // run_scimark_cil throws on checksum mismatch with the native kernels.
    const ScimarkResult r = run_scimark_cil(bc.vm(), *e, sizes, true);
    ASSERT_EQ(r.kernels.size(), 5u) << e->name();
    for (const auto& k : r.kernels) {
      EXPECT_TRUE(k.validated) << e->name() << "/" << k.name;
      EXPECT_GT(k.mflops, 0) << e->name() << "/" << k.name;
    }
  }
}

TEST_F(CilSuite, MonteCarloMatchesNativePi) {
  const auto mc = build_sm_montecarlo(bc.vm());
  const Slot r = run_all(mc, {Slot::from_i32(50000)});
  EXPECT_DOUBLE_EQ(r.f64, kernels::montecarlo::integrate(50000));
}

TEST_F(CilSuite, FftMatchesNativeChecksumAtSeveralSizes) {
  const auto fft = build_sm_fft(bc.vm());
  for (int n : {16, 128, 512}) {
    const Slot r = run_all(fft, {Slot::from_i32(n), Slot::from_i32(1)});
    EXPECT_NEAR(r.f64, kernels::fft::roundtrip_checksum(n, 1), 1e-12)
        << "n=" << n;
  }
}

TEST_F(CilSuite, SorMatchesNative) {
  const auto sor = build_sm_sor(bc.vm());
  const Slot r = run_all(sor, {Slot::from_i32(24), Slot::from_i32(5)});
  EXPECT_DOUBLE_EQ(r.f64, kernels::sor::checksum(24, 5));
}

TEST_F(CilSuite, SparseMatchesNative) {
  const auto sp = build_sm_sparse(bc.vm());
  const Slot r = run_all(
      sp, {Slot::from_i32(40), Slot::from_i32(200), Slot::from_i32(3)});
  EXPECT_NEAR(r.f64, kernels::sparse::checksum(40, 200, 3), 1e-10);
}

TEST_F(CilSuite, LuMatchesNative) {
  const auto lu = build_sm_lu(bc.vm());
  const Slot r = run_all(lu, {Slot::from_i32(20)});
  EXPECT_DOUBLE_EQ(r.f64, kernels::lu::checksum(20));
}

// ---------------------------------------------------------------------------
// JGF section 2/3 kernels.

TEST_F(CilSuite, FibMatchesNative) {
  const auto fib = build_jg_fib(bc.vm());
  EXPECT_EQ(run_all(fib, {Slot::from_i32(18)}).i64,
            kernels::fib::compute(18));
}

TEST_F(CilSuite, SieveMatchesNative) {
  const auto sieve = build_jg_sieve(bc.vm());
  EXPECT_EQ(run_all(sieve, {Slot::from_i32(10000)}).i32,
            kernels::sieve::count_primes(10000));
  EXPECT_EQ(run_all(sieve, {Slot::from_i32(1)}).i32, 0);
  EXPECT_EQ(run_all(sieve, {Slot::from_i32(2)}).i32, 1);
}

TEST_F(CilSuite, HanoiMatchesNative) {
  const auto hanoi = build_jg_hanoi(bc.vm());
  EXPECT_EQ(run_all(hanoi, {Slot::from_i32(12)}).i64,
            kernels::hanoi::solve(12));
}

TEST_F(CilSuite, HeapSortMatchesNativeChecksum) {
  const auto hs = build_jg_heapsort(bc.vm());
  EXPECT_EQ(run_all(hs, {Slot::from_i32(2000)}).i64,
            kernels::heapsort::run(2000));
}

TEST_F(CilSuite, CryptMatchesNativeChecksum) {
  const auto cr = build_jg_crypt(bc.vm());
  for (int n : {64, 1024, 4096}) {
    const std::int64_t got = run_all(cr, {Slot::from_i32(n)}).i64;
    EXPECT_NE(got, -1) << "round trip failed, n=" << n;
    EXPECT_EQ(got, kernels::crypt::run(n)) << n;
  }
}

// ---------------------------------------------------------------------------
// Micro benchmarks: engines must agree on results (the computation part).

TEST_F(CilSuite, ArithProgramsAgreeAcrossEngines) {
  for (auto build : {build_arith_add_i32, build_arith_mul_i32,
                     build_arith_div_i32, build_arith_add_i64,
                     build_arith_mul_i64, build_arith_div_i64,
                     build_arith_add_f32, build_arith_mul_f32,
                     build_arith_div_f32, build_arith_add_f64,
                     build_arith_mul_f64, build_arith_div_f64}) {
    const auto m = build(bc.vm());
    run_all(m, {Slot::from_i32(1000)});
  }
}

TEST_F(CilSuite, LoopProgramsCountCorrectly) {
  EXPECT_EQ(run_all(build_loop_for(bc.vm()), {Slot::from_i32(12345)}).i32,
            12345);
  EXPECT_EQ(
      run_all(build_loop_reverse_for(bc.vm()), {Slot::from_i32(777)}).i32, 0);
  EXPECT_EQ(run_all(build_loop_while(bc.vm()), {Slot::from_i32(999)}).i32,
            999);
}

TEST_F(CilSuite, ExceptionProgramsCatchEveryIteration) {
  EXPECT_EQ(
      run_all(build_exception_throw(bc.vm()), {Slot::from_i32(500)}).i32, 500);
  EXPECT_EQ(run_all(build_exception_new(bc.vm()), {Slot::from_i32(300)}).i32,
            300);
  EXPECT_EQ(
      run_all(build_exception_method(bc.vm()), {Slot::from_i32(200)}).i32,
      200);
}

TEST_F(CilSuite, MathProgramsAgreeAcrossEngines) {
  // Every Math routine the paper plots in Graphs 6-8.
  for (std::int32_t id = vm::I_ABS_I4; id <= vm::I_ROUND_R8; ++id) {
    const auto m = build_math_call(bc.vm(), id);
    run_all(m, {Slot::from_i32(512)});
  }
}

TEST_F(CilSuite, AssignProgramsAgree) {
  for (auto build : {build_assign_local, build_assign_instance,
                     build_assign_static, build_assign_array}) {
    run_all(build(bc.vm()), {Slot::from_i32(640)});
  }
}

TEST_F(CilSuite, CastProgramsAgree) {
  for (auto build : {build_cast_i32_i64, build_cast_i32_f32,
                     build_cast_i32_f64, build_cast_f32_f64,
                     build_cast_i64_f64}) {
    run_all(build(bc.vm()), {Slot::from_i32(512)});
  }
}

TEST_F(CilSuite, CreateProgramsAgree) {
  run_all(build_create_object(bc.vm()), {Slot::from_i32(4000)});
  for (int len : {1, 8, 128}) {
    run_all(build_create_array(bc.vm(), len), {Slot::from_i32(1000)});
  }
}

TEST_F(CilSuite, MethodProgramsAgree) {
  for (auto build : {build_method_static, build_method_static_args,
                     build_method_instance, build_method_synchronized,
                     build_method_intrinsic}) {
    run_all(build(bc.vm()), {Slot::from_i32(2000)});
  }
}

TEST_F(CilSuite, SerialRoundTripPreservesLength) {
  const auto m = build_serial_roundtrip(bc.vm());
  EXPECT_EQ(run_all(m, {Slot::from_i32(50)}).i32, 50);
  EXPECT_EQ(run_all(m, {Slot::from_i32(1)}).i32, 1);
  EXPECT_EQ(run_all(m, {Slot::from_i32(0)}).i32, 0);
}

TEST_F(CilSuite, MatrixProgramsAgree) {
  const std::vector<Slot> args = {Slot::from_i32(3), Slot::from_i32(12)};
  EXPECT_EQ(run_all(build_matrix_multidim_f64(bc.vm()), args).i32, 2);
  EXPECT_EQ(run_all(build_matrix_jagged_f64(bc.vm()), args).i32, 2);
  EXPECT_EQ(run_all(build_matrix_multidim_ref(bc.vm()), args).i32, 1);
  EXPECT_EQ(run_all(build_matrix_jagged_ref(bc.vm()), args).i32, 1);
}

TEST_F(CilSuite, BoxingProgramsAgree) {
  run_all(build_boxing_i32(bc.vm()), {Slot::from_i32(3000)});
  run_all(build_boxing_f64(bc.vm()), {Slot::from_i32(3000)});
}

TEST_F(CilSuite, LockProgramAgrees) {
  EXPECT_EQ(
      run_all(build_lock_uncontended(bc.vm()), {Slot::from_i32(5000)}).i32,
      5000);
}

// ---------------------------------------------------------------------------
// Multithreaded programs (Table 2). Run per-engine (threads are real).

TEST_F(CilSuite, ForkJoinRunsAllThreads) {
  const auto m = build_mt_forkjoin(bc.vm());
  for (auto& e : bc.engines()) {
    EXPECT_EQ(bc.invoke(*e, m, {Slot::from_i32(4)}).i32, 4) << e->name();
  }
}

TEST_F(CilSuite, SyncCounterIsExact) {
  const auto m = build_mt_sync(bc.vm());
  for (auto& e : bc.engines()) {
    EXPECT_EQ(
        bc.invoke(*e, m, {Slot::from_i32(4), Slot::from_i32(250)}).i32,
        1000)
        << e->name();
  }
}

TEST_F(CilSuite, SimpleBarrierCompletesAllRounds) {
  const auto m = build_mt_barrier_simple(bc.vm());
  for (auto& e : bc.engines()) {
    EXPECT_EQ(bc.invoke(*e, m, {Slot::from_i32(4), Slot::from_i32(50)}).i32,
              50)
        << e->name();
  }
}

TEST_F(CilSuite, TournamentBarrierCompletesAllRounds) {
  const auto m = build_mt_barrier_tournament(bc.vm());
  for (auto& e : bc.engines()) {
    EXPECT_EQ(bc.invoke(*e, m, {Slot::from_i32(4), Slot::from_i32(50)}).i32,
              50)
        << e->name();
    // Non-power-of-two thread counts exercise the bye paths.
    EXPECT_EQ(bc.invoke(*e, m, {Slot::from_i32(3), Slot::from_i32(20)}).i32,
              20)
        << e->name();
  }
}

// ---------------------------------------------------------------------------
// BCE experiment kernels.

TEST_F(CilSuite, BceVariantsComputeIdenticalResults) {
  const auto ld = build_bce_daxpy_ldlen(bc.vm());
  const auto var = build_bce_daxpy_var(bc.vm());
  const std::vector<Slot> args = {Slot::from_i32(64), Slot::from_i32(5)};
  const Slot a = run_all(ld, args);
  const Slot b = run_all(var, args);
  EXPECT_EQ(a.raw, b.raw);
}

}  // namespace
}  // namespace hpcnet::test

// Tiered execution pipeline: hotness-driven promotion through the
// interp -> baseline -> optimizing tiers, the shared per-profile CodeCache,
// and the per-method compile latch. The Concurrent* and Osr* tests are the
// TSan targets for the tier-up path: many threads hitting the first (cold)
// call of the same and of different methods at once, and racing the OSR
// compile of the same loop header.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "vm/engines.hpp"
#include "vm/intrinsics.hpp"
#include "vm/telemetry/telemetry.hpp"
#include "vm_test_util.hpp"

namespace hpcnet::test {
namespace {

/// Straight-line body, long enough (> tiny_method_il) to start in the
/// interpreter: f(x) = ((x*7 + 3) * 5 - x) ^ 2.
std::int32_t build_straightline(Module& mod, const std::string& name) {
  ILBuilder b(mod, name, {{ValType::I32}, ValType::I32});
  b.ldarg(0).ldc_i4(7).mul().ldc_i4(3).add();
  b.ldc_i4(5).mul().ldarg(0).sub();
  b.ldc_i4(2).xor_().ret();
  return b.finish();
}

/// Loop with `n` back edges: sum of i*i for i in [0, n).
std::int32_t build_loop(Module& mod, const std::string& name) {
  ILBuilder b(mod, name, {{ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  const auto acc = b.add_local(ValType::I32);
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldc_i4(0).stloc(i).br(cond);
  b.bind(top);
  b.ldloc(acc).ldloc(i).ldloc(i).mul().add().stloc(acc);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(cond);
  b.ldloc(i).ldarg(0).blt(top);
  b.ldloc(acc).ret();
  return b.finish();
}

/// What build_loop(n) computes, with i32 wrap-around semantics (uint32
/// arithmetic is bit-identical to the VM's two's-complement overflow).
std::int32_t sum_squares(std::int32_t n) {
  std::uint32_t acc = 0;
  for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(n); ++i) {
    acc += i * i;
  }
  return static_cast<std::int32_t>(acc);
}

TEST(Tiered, PromotesThroughAllTiersAtThresholds) {
  VirtualMachine vm;
  const auto m = build_straightline(vm.module(), "tier_straight");
  ASSERT_GT(vm.module().method(m).il_size(), std::size_t{8});

  const EngineProfile p = profiles::tiered(profiles::clr11());
  EXPECT_EQ(p.name, "clr11.tiered");
  TieredEngine eng(vm, p);
  VMContext& ctx = vm.main_context();
  Slot arg = Slot::from_i32(11);
  const std::int32_t want = ((11 * 7 + 3) * 5 - 11) ^ 2;

  for (int call = 1; call <= 70; ++call) {
    const Slot r = eng.invoke(ctx, m, std::span<const Slot>(&arg, 1));
    EXPECT_EQ(r.i32, want) << "call " << call;
    const Tier t = eng.method_tier(m);
    if (call < 8) {
      EXPECT_EQ(t, Tier::Interp) << "call " << call;
    } else if (call < 64) {
      EXPECT_EQ(t, Tier::Baseline) << "call " << call;
    } else {
      EXPECT_EQ(t, Tier::Optimizing) << "call " << call;
    }
  }
}

TEST(Tiered, LoopHeavyMethodPromotesAfterOneInvocation) {
  VirtualMachine vm;
  const auto m = build_loop(vm.module(), "tier_loop");
  TieredEngine eng(vm, profiles::tiered(profiles::clr11()));
  VMContext& ctx = vm.main_context();
  Slot arg = Slot::from_i32(100);  // 100 back edges >> opt_threshold

  const Slot first = eng.invoke(ctx, m, std::span<const Slot>(&arg, 1));
  // Frame-exit back-edge flush: 1 invocation + capped credit crosses the
  // optimizing threshold, so the SECOND call already runs compiled code.
  EXPECT_EQ(eng.method_tier(m), Tier::Optimizing);
  const Slot second = eng.invoke(ctx, m, std::span<const Slot>(&arg, 1));
  EXPECT_EQ(first.raw, second.raw);
  EXPECT_EQ(first.i32, 328350);  // sum i^2, i<100
}

TEST(Tiered, TinyMethodSkipsStraightToBaseline) {
  VirtualMachine vm;
  ILBuilder b(vm.module(), "tier_tiny", {{ValType::I32}, ValType::I32});
  b.ldarg(0).ldc_i4(1).add().ret();  // 4 instructions <= tiny_method_il
  const auto m = b.finish();

  TieredEngine eng(vm, profiles::tiered(profiles::clr11()));
  VMContext& ctx = vm.main_context();
  Slot arg = Slot::from_i32(41);
  EXPECT_EQ(eng.invoke(ctx, m, std::span<const Slot>(&arg, 1)).i32, 42);
  EXPECT_EQ(eng.method_tier(m), Tier::Baseline);
}

TEST(Tiered, InterpOnlyPolicyNeverPromotes) {
  VirtualMachine vm;
  const auto m = build_loop(vm.module(), "tier_rotor");
  const EngineProfile p = profiles::tiered(profiles::rotor10());
  EXPECT_EQ(p.tiering.max_tier, Tier::Interp);
  TieredEngine eng(vm, p);
  VMContext& ctx = vm.main_context();
  Slot arg = Slot::from_i32(50);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(eng.invoke(ctx, m, std::span<const Slot>(&arg, 1)).i32, 40425);
  }
  EXPECT_EQ(eng.method_tier(m), Tier::Interp);
}

TEST(Tiered, BaselinePolicyCapsBelowOptimizing) {
  VirtualMachine vm;
  const auto m = build_loop(vm.module(), "tier_mono");
  const EngineProfile p = profiles::tiered(profiles::mono023());
  EXPECT_EQ(p.tiering.max_tier, Tier::Baseline);
  TieredEngine eng(vm, p);
  VMContext& ctx = vm.main_context();
  Slot arg = Slot::from_i32(50);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(eng.invoke(ctx, m, std::span<const Slot>(&arg, 1)).i32, 40425);
  }
  EXPECT_EQ(eng.method_tier(m), Tier::Baseline);
}

TEST(Tiered, SingleModeRunsProfileTierImmediately) {
  VirtualMachine vm;
  const auto m = build_straightline(vm.module(), "tier_single");
  TieredEngine eng(vm, profiles::clr11());  // TierMode::Single
  VMContext& ctx = vm.main_context();
  Slot arg = Slot::from_i32(11);
  eng.invoke(ctx, m, std::span<const Slot>(&arg, 1));
  EXPECT_EQ(eng.method_tier(m), Tier::Optimizing);  // compiled on first call
}

TEST(Tiered, ExceptionsPropagateAcrossPromotionBoundaries) {
  VirtualMachine vm;
  Module& mod = vm.module();
  // throws_on_zero(x): x == 0 ? throw : 1000 / x.
  ILBuilder b(mod, "tier_thrower", {{ValType::I32}, ValType::I32});
  auto ok = b.new_label();
  b.ldarg(0).ldc_i4(0).bne(ok);
  b.newobj(mod.exception_class()).throw_();
  b.bind(ok);
  b.ldc_i4(1000).ldarg(0).div().ret();
  const auto m = b.finish();

  TieredEngine single(vm, profiles::clr11());
  TieredEngine tiered(vm, profiles::tiered(profiles::clr11()));
  VMContext& ctx = vm.main_context();
  Slot good = Slot::from_i32(8);
  Slot bad = Slot::from_i32(0);

  const Slot want = single.invoke(ctx, m, std::span<const Slot>(&good, 1));
  // Interleave throwing and normal calls through every tier transition; the
  // hotness counter keeps advancing on throwing frames too, so promotion
  // happens mid-sequence while exceptional control flow is in play.
  for (int call = 1; call <= 80; ++call) {
    if (call % 3 == 0) {
      EXPECT_THROW(tiered.invoke(ctx, m, std::span<const Slot>(&bad, 1)),
                   ManagedException)
          << "call " << call;
    } else {
      const Slot r = tiered.invoke(ctx, m, std::span<const Slot>(&good, 1));
      EXPECT_EQ(r.raw, want.raw) << "call " << call;
    }
  }
  EXPECT_EQ(tiered.method_tier(m), Tier::Optimizing);
}

TEST(Tiered, ConcurrentFirstCallsSameMethod) {
  VirtualMachine vm;
  const auto m = build_loop(vm.module(), "tier_race_same");
  TieredEngine eng(vm, profiles::tiered(profiles::clr11()));

  // Every thread races through the cold -> hot window of ONE method: the
  // promotions and the optimizing compile must happen exactly once each and
  // publish safely to readers that never take the latch.
  constexpr int kThreads = 8;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto ctx = vm.attach_thread(&eng);
      Slot arg = Slot::from_i32(60);
      for (int i = 0; i < 100; ++i) {
        const Slot r = eng.invoke(*ctx, m, std::span<const Slot>(&arg, 1));
        if (r.i32 != 70210) wrong.fetch_add(1);
      }
      vm.detach_thread(*ctx);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(eng.method_tier(m), Tier::Optimizing);
}

TEST(Tiered, ConcurrentFirstCallsDifferentMethods) {
  VirtualMachine vm;
  // One method per thread, all cold: distinct methods must verify and
  // compile concurrently (per-method latches, no cache-wide serialization).
  constexpr int kThreads = 8;
  std::vector<std::int32_t> methods;
  methods.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    methods.push_back(
        build_loop(vm.module(), "tier_race_" + std::to_string(t)));
  }
  TieredEngine eng(vm, profiles::tiered(profiles::clr11()));

  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto ctx = vm.attach_thread(&eng);
      Slot arg = Slot::from_i32(60);
      for (int i = 0; i < 100; ++i) {
        const Slot r =
            eng.invoke(*ctx, methods[static_cast<std::size_t>(t)],
                       std::span<const Slot>(&arg, 1));
        if (r.i32 != 70210) wrong.fetch_add(1);
      }
      vm.detach_thread(*ctx);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
  for (std::int32_t m : methods) {
    EXPECT_EQ(eng.method_tier(m), Tier::Optimizing);
  }
}

TEST(Tiered, ConcurrentEnginesShareOnlyTheVerifyCache) {
  // Two engines (different profiles -> different code caches) exercising the
  // same cold methods: verification state is VM-shared, compiled code is
  // not, and neither may race on the MethodDef.
  VirtualMachine vm;
  const auto m = build_loop(vm.module(), "tier_two_engines");
  TieredEngine a(vm, profiles::tiered(profiles::clr11()));
  TieredEngine b(vm, profiles::tiered(profiles::ibm131()));

  std::atomic<int> wrong{0};
  auto hammer = [&](TieredEngine& eng) {
    auto ctx = vm.attach_thread(&eng);
    Slot arg = Slot::from_i32(60);
    for (int i = 0; i < 100; ++i) {
      const Slot r = eng.invoke(*ctx, m, std::span<const Slot>(&arg, 1));
      if (r.i32 != 70210) wrong.fetch_add(1);
    }
    vm.detach_thread(*ctx);
  };
  std::thread t1([&] { hammer(a); });
  std::thread t2([&] { hammer(b); });
  t1.join();
  t2.join();
  EXPECT_EQ(wrong.load(), 0);
}

TEST(Tiered, ManagedThreadOnPartiallyPromotedMethod) {
  VirtualMachine vm;
  Module& mod = vm.module();
  const std::int32_t cls = mod.define_class("tier.Cell", {{"v", ValType::I32}});

  // Worker runs a loop (promotes fast) and stores the result in the cell.
  ILBuilder w(mod, "tier_t_worker", {{ValType::Ref}, ValType::I32});
  const auto i = w.add_local(ValType::I32);
  const auto acc = w.add_local(ValType::I32);
  auto cond = w.new_label();
  auto top = w.new_label();
  w.ldc_i4(0).stloc(i).br(cond);
  w.bind(top);
  w.ldloc(acc).ldloc(i).add().stloc(acc);
  w.ldloc(i).ldc_i4(1).add().stloc(i);
  w.bind(cond);
  w.ldloc(i).ldc_i4(100).blt(top);
  w.ldarg(0).ldloc(acc).stfld(cls, "v");
  w.ldc_i4(0).ret();
  const auto worker = w.finish();

  ILBuilder b(mod, "tier_t_main", {{}, ValType::I32});
  const auto cell = b.add_local(ValType::Ref);
  const auto h = b.add_local(ValType::Ref);
  b.newobj(cls).stloc(cell);
  b.ldc_i4(worker).ldloc(cell).call_intr(vm::I_THREAD_START).stloc(h);
  b.ldloc(h).call_intr(vm::I_THREAD_JOIN);
  b.ldloc(cell).ldfld(cls, "v").ret();
  const auto m = b.finish();

  TieredEngine eng(vm, profiles::tiered(profiles::clr11()));
  VMContext& ctx = vm.main_context();
  // Each round spawns a managed thread onto the engine while the worker (and
  // the spawner) sit at a different point of the promotion ladder.
  for (int round = 0; round < 20; ++round) {
    EXPECT_EQ(eng.invoke(ctx, m, {}).i32, 4950) << "round " << round;
  }
  EXPECT_EQ(eng.method_tier(worker), Tier::Optimizing);
}

TEST(Tiered, TelemetryCountsTierUpsAndZeroDeopts) {
  namespace telemetry = hpcnet::vm::telemetry;
  telemetry::set_enabled(true);
  if (!telemetry::enabled()) {
    GTEST_SKIP() << "built with HPCNET_TELEMETRY=OFF";
  }
  VirtualMachine vm;
  const auto m = build_loop(vm.module(), "tier_telemetry");
  TieredEngine eng(vm, profiles::tiered(profiles::clr11()));
  VMContext& ctx = vm.main_context();

  telemetry::set_enabled(true);
  telemetry::reset();
  Slot arg = Slot::from_i32(100);
  for (int i = 0; i < 4; ++i) {
    eng.invoke(ctx, m, std::span<const Slot>(&arg, 1));
  }
  const telemetry::Snapshot snap = telemetry::snapshot();
  telemetry::set_enabled(false);

  // interp (cold call) -> optimizing via back-edge credit: one promotion and
  // no deopt. 100 back edges per frame stays below the OSR trigger and
  // nothing requests a deoptimization here, so Deopts must read zero — the
  // counter is live (see the Osr* tests), not structurally dead.
  EXPECT_GE(snap.counter(telemetry::Counter::TierUps), 1u);
  EXPECT_EQ(snap.counter(telemetry::Counter::Deopts), 0u);

  const telemetry::MethodProfile* prof = snap.method(m);
  ASSERT_NE(prof, nullptr);
  EXPECT_EQ(prof->invocations, 4u);
  EXPECT_EQ(prof->tier_invocations[0], 1u);  // the cold interp call
  EXPECT_EQ(prof->tier_invocations[2], 3u);  // the rest ran compiled
  bool saw_tier_event = false;
  for (const auto& ev : snap.events) {
    if (std::string(ev.cat) == "tier") saw_tier_event = true;
  }
  EXPECT_TRUE(saw_tier_event);
}

// ---------------------------------------------------------------------------
// On-stack replacement and deoptimization.

TEST(Tiered, OsrPromotesWithinSingleInvocation) {
  namespace telemetry = hpcnet::vm::telemetry;
  telemetry::set_enabled(true);
  if (!telemetry::enabled()) {
    GTEST_SKIP() << "built with HPCNET_TELEMETRY=OFF";
  }
  VirtualMachine vm;
  const auto m = build_loop(vm.module(), "osr_single_shot");
  TieredEngine eng(vm, profiles::tiered(profiles::clr11()));
  VMContext& ctx = vm.main_context();

  telemetry::reset();
  // One cold call whose frame alone crosses osr_backedge_trigger many times
  // over: promotion may not wait for the invocation boundary.
  Slot arg = Slot::from_i32(200'000);
  const Slot r = eng.invoke(ctx, m, std::span<const Slot>(&arg, 1));
  const telemetry::Snapshot snap = telemetry::snapshot();
  telemetry::set_enabled(false);

  EXPECT_EQ(r.i32, sum_squares(200'000));
  EXPECT_GE(snap.counter(telemetry::Counter::OsrEntries), 1u);
  EXPECT_EQ(eng.method_tier(m), Tier::Optimizing);
  const telemetry::MethodProfile* prof = snap.method(m);
  ASSERT_NE(prof, nullptr);
  // The OSR continuation runs on the optimizing backend within the same
  // logical call, so the compiled tier shows an invocation too.
  EXPECT_GE(prof->tier_invocations[2], 1u);
}

TEST(Tiered, OsrWithLiveOperandStack) {
  namespace telemetry = hpcnet::vm::telemetry;
  VirtualMachine vm;
  // sum i for i in [0, n) with the accumulator LIVE ON THE OPERAND STACK
  // across the back edge — OSR must carry the stack, not just the locals.
  ILBuilder b(vm.module(), "osr_stack_loop", {{ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  auto top = b.new_label();
  b.ldc_i4(0);  // the accumulator; never touches a local
  b.bind(top);
  b.ldloc(i).add();
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.ldloc(i).ldarg(0).blt(top);
  b.ret();
  const auto m = b.finish();

  TieredEngine eng(vm, profiles::tiered(profiles::clr11()));
  VMContext& ctx = vm.main_context();
  telemetry::set_enabled(true);
  const bool have_telemetry = telemetry::enabled();
  telemetry::reset();
  Slot arg = Slot::from_i32(20'000);
  const Slot r = eng.invoke(ctx, m, std::span<const Slot>(&arg, 1));
  const telemetry::Snapshot snap = telemetry::snapshot();
  telemetry::set_enabled(false);

  EXPECT_EQ(r.i32, 20'000 * 19'999 / 2);
  if (have_telemetry) {
    EXPECT_GE(snap.counter(telemetry::Counter::OsrEntries), 1u);
  }
  EXPECT_EQ(eng.method_tier(m), Tier::Optimizing);
}

TEST(Tiered, OsrInsideTryFinally) {
  VirtualMachine vm;
  // The hot loop lives inside a protected region whose finally adjusts the
  // result on the way out: the OSR continuation must keep the handler table
  // (shifted to the new pcs) so the compiled code still runs the finally.
  ILBuilder b(vm.module(), "osr_finally_loop",
              {{ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  const auto acc = b.add_local(ValType::I32);
  auto try_begin = b.new_label();
  auto try_end = b.new_label();
  auto handler = b.new_label();
  auto done = b.new_label();
  auto top = b.new_label();
  b.bind(try_begin);
  b.bind(top);
  b.ldloc(acc).ldloc(i).add().stloc(acc);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.ldloc(i).ldarg(0).blt(top);
  b.leave(done);
  b.bind(try_end);
  b.bind(handler);
  b.ldloc(acc).ldc_i4(1'000'000).add().stloc(acc);
  b.endfinally();
  b.bind(done);
  b.ldloc(acc).ret();
  b.add_finally(try_begin, try_end, handler);
  const auto m = b.finish();

  TieredEngine eng(vm, profiles::tiered(profiles::clr11()));
  VMContext& ctx = vm.main_context();
  Slot arg = Slot::from_i32(20'000);
  const Slot r = eng.invoke(ctx, m, std::span<const Slot>(&arg, 1));
  EXPECT_EQ(r.i32, 20'000 * 19'999 / 2 + 1'000'000);
  EXPECT_EQ(eng.method_tier(m), Tier::Optimizing);
}

TEST(Tiered, HotLoopExitingViaThrowStillPromotes) {
  VirtualMachine vm;
  Module& mod = vm.module();
  // The frame NEVER returns normally: it loops `arg` times and then throws.
  // Its back-edge credit must survive the unwind, or the method stays cold
  // forever no matter how hot the loop is.
  ILBuilder b(mod, "osr_throw_exit", {{ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  const auto acc = b.add_local(ValType::I32);
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldc_i4(0).stloc(i).br(cond);
  b.bind(top);
  b.ldloc(acc).ldloc(i).add().stloc(acc);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(cond);
  b.ldloc(i).ldarg(0).blt(top);
  b.newobj(mod.exception_class()).throw_();
  const auto m = b.finish();

  TieredEngine eng(vm, profiles::tiered(profiles::clr11()));
  VMContext& ctx = vm.main_context();
  Slot arg = Slot::from_i32(100);  // 100 back edges >> opt_threshold credit
  for (int call = 0; call < 3; ++call) {
    EXPECT_THROW(eng.invoke(ctx, m, std::span<const Slot>(&arg, 1)),
                 ManagedException)
        << "call " << call;
  }
  EXPECT_EQ(eng.method_tier(m), Tier::Optimizing);
}

TEST(Tiered, SaturatingHotnessAtWrapBoundary) {
  VirtualMachine vm;
  const auto m = build_straightline(vm.module(), "osr_hot_wrap");
  TieredEngine eng(vm, profiles::tiered(profiles::mono023()));
  VMContext& ctx = vm.main_context();

  // Pre-cook the counter to the top of the u32 range: the next bump must
  // saturate, not wrap to zero (which would reset the method to ice cold).
  constexpr std::uint32_t kMax = std::numeric_limits<std::uint32_t>::max();
  eng.code_entry(m).hotness.store(kMax);
  Slot arg = Slot::from_i32(11);
  const std::int32_t want = ((11 * 7 + 3) * 5 - 11) ^ 2;
  EXPECT_EQ(eng.invoke(ctx, m, std::span<const Slot>(&arg, 1)).i32, want);
  EXPECT_EQ(eng.code_entry(m).hotness.load(), kMax);
  EXPECT_EQ(eng.method_tier(m), Tier::Baseline);  // mono caps at baseline
}

TEST(Tiered, SingleModeConcurrentFirstCall) {
  namespace telemetry = hpcnet::vm::telemetry;
  telemetry::set_enabled(true);
  if (!telemetry::enabled()) {
    GTEST_SKIP() << "built with HPCNET_TELEMETRY=OFF";
  }
  VirtualMachine vm;
  const auto m = build_loop(vm.module(), "single_mode_race");
  TieredEngine eng(vm, profiles::clr11());  // TierMode::Single
  telemetry::reset();

  // Single mode compiles on first call; when eight threads deliver that
  // first call at once, the per-method latch must admit exactly one compile
  // and everyone else must wait for the published code — never run a
  // half-built body and never compile twice.
  constexpr int kThreads = 8;
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto ctx = vm.attach_thread(&eng);
      Slot arg = Slot::from_i32(60);
      for (int i = 0; i < 10; ++i) {
        const Slot r = eng.invoke(*ctx, m, std::span<const Slot>(&arg, 1));
        if (r.i32 != 70210) wrong.fetch_add(1);
      }
      vm.detach_thread(*ctx);
    });
  }
  for (auto& t : threads) t.join();
  const telemetry::Snapshot snap = telemetry::snapshot();
  telemetry::set_enabled(false);

  EXPECT_EQ(wrong.load(), 0);
  const telemetry::EngineJitTimes* jit = snap.engine_jit("clr11");
  ASSERT_NE(jit, nullptr);
  EXPECT_EQ(jit->methods_compiled, 1u);
}

TEST(Tiered, ConcurrentOsrSameLoop) {
  VirtualMachine vm;
  const auto m = build_loop(vm.module(), "osr_race");
  TieredEngine eng(vm, profiles::tiered(profiles::clr11()));

  // Two cold frames cross the OSR trigger at the same loop header at nearly
  // the same moment: the continuation build + compile must be latched like
  // any other compile, and both frames must resume with the right state.
  constexpr int kThreads = 2;
  const std::int32_t want = sum_squares(20'000);
  std::atomic<int> wrong{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto ctx = vm.attach_thread(&eng);
      Slot arg = Slot::from_i32(20'000);
      for (int i = 0; i < 3; ++i) {
        const Slot r = eng.invoke(*ctx, m, std::span<const Slot>(&arg, 1));
        if (r.i32 != want) wrong.fetch_add(1);
      }
      vm.detach_thread(*ctx);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(eng.method_tier(m), Tier::Optimizing);
}

TEST(Tiered, DeoptThenReOsrRoundTrip) {
  namespace telemetry = hpcnet::vm::telemetry;
  telemetry::set_enabled(true);
  // Progress is observed through code-cache atomics, so the round trip runs
  // even in HPCNET_TELEMETRY=OFF builds; only the counter cross-check at the
  // end needs the sinks.
  const bool have_telemetry = telemetry::enabled();
  VirtualMachine vm;
  Module& mod = vm.module();
  const std::int32_t cls = mod.define_class("osr.Flag", {{"stop", ValType::I32}});

  // Worker: spin until flag.stop != 0, counting iterations. The loop is
  // unbounded, so the TEST decides how long each execution tier stays
  // resident — no timing-dependent trip counts. The flag is read and
  // written under the cell's monitor to keep the test TSan-clean.
  ILBuilder w(mod, "osr_deopt_worker", {{ValType::Ref}, ValType::I32});
  const auto n = w.add_local(ValType::I32);
  auto top = w.new_label();
  w.bind(top);
  w.ldloc(n).ldc_i4(1).add().stloc(n);
  w.ldarg(0).call_intr(I_MON_ENTER);
  w.ldarg(0).ldfld(cls, "stop");
  w.ldarg(0).call_intr(I_MON_EXIT);
  w.brfalse(top);
  w.ldloc(n).ret();
  const auto worker = w.finish();

  ILBuilder s(mod, "osr_deopt_stop", {{ValType::Ref}, ValType::I32});
  s.ldarg(0).call_intr(I_MON_ENTER);
  s.ldarg(0).ldc_i4(1).stfld(cls, "stop");
  s.ldarg(0).call_intr(I_MON_EXIT);
  s.ldc_i4(0).ret();
  const auto stop = s.finish();

  ILBuilder c(mod, "osr_deopt_cell", {{}, ValType::Ref});
  c.newobj(cls).ret();
  const auto make_cell = c.finish();

  TieredEngine eng(vm, profiles::tiered(profiles::clr11()));
  VMContext& ctx = vm.main_context();
  telemetry::reset();
  const Slot cell = eng.invoke(ctx, make_cell, {});

  Slot result = Slot::from_i32(0);
  std::thread t([&] {
    auto wctx = vm.attach_thread(&eng);
    Slot a = cell;
    result = eng.invoke(*wctx, worker, std::span<const Slot>(&a, 1));
    vm.detach_thread(*wctx);
  });

  // Mid-run progress is observed through the code-cache entry's atomic
  // osr_entries/deopts counters; the thread-local telemetry sinks only merge
  // safely once the worker quiesces, so the snapshot waits for the join.
  CodeCache::Entry& entry = eng.code_entry(worker);
  auto wait_for = [](std::atomic<std::uint32_t>& ctr, std::uint32_t min) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
      if (ctr.load(std::memory_order_relaxed) >= min) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return false;
  };

  // 1. The spinning frame crosses the trigger and OSR-enters compiled code.
  const bool osr1 = wait_for(entry.osr_entries, 1);
  bool deopted = false;
  bool osr2 = false;
  if (osr1) {
    // 2. Invalidate: the running compiled frame must bail to the
    //    interpreter at its next back-edge safepoint. A request that lands
    //    in the sliver between the osr_entries bump and the frame snapping
    //    its generation at entry is invisible to that frame, so keep
    //    re-requesting until a bail is observed.
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    while (std::chrono::steady_clock::now() < deadline) {
      eng.request_deopt(worker);
      if (entry.deopts.load(std::memory_order_relaxed) >= 1) {
        deopted = true;
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  // 3. The interpreter continuation is the same hot loop, so it re-arms and
  //    OSR-enters freshly compiled code again — the full round trip.
  if (deopted) osr2 = wait_for(entry.osr_entries, 2);

  Slot a = cell;
  eng.invoke(ctx, stop, std::span<const Slot>(&a, 1));
  t.join();
  const telemetry::Snapshot snap = telemetry::snapshot();
  telemetry::set_enabled(false);

  EXPECT_TRUE(osr1) << "hot loop never OSR-promoted";
  EXPECT_TRUE(deopted) << "compiled frame never bailed after request_deopt";
  EXPECT_TRUE(osr2) << "deopted loop never re-entered compiled code";
  if (have_telemetry) {
    EXPECT_GE(snap.counter(telemetry::Counter::OsrEntries), 2u);
    EXPECT_GE(snap.counter(telemetry::Counter::Deopts), 1u);
  }
  EXPECT_GE(result.i32, 1);
  // The deopt zeroed the hotness, but the frame-exit back-edge flush from
  // the interpreter continuation re-promotes the method.
  EXPECT_EQ(eng.method_tier(worker), Tier::Optimizing);
}

TEST(Tiered, TieredProfileNamesResolveViaByName) {
  const EngineProfile p = profiles::by_name("mono023.tiered");
  EXPECT_EQ(p.name, "mono023.tiered");
  EXPECT_EQ(p.tiering.mode, TierMode::Tiered);
  EXPECT_EQ(p.tiering.max_tier, Tier::Baseline);
  EXPECT_THROW(profiles::by_name("nosuch.tiered"), std::invalid_argument);
}

}  // namespace
}  // namespace hpcnet::test

// Telemetry subsystem: exact single-threaded counter/histogram semantics,
// merging across managed threads, GC pause accounting against the heap's own
// collection count, monitor contention, and chrome-trace well-formedness.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <sstream>
#include <string>
#include <thread>

#include "vm/intrinsics.hpp"
#include "vm/monitor.hpp"
#include "vm/telemetry/summary.hpp"
#include "vm/telemetry/telemetry.hpp"
#include "vm/telemetry/trace_writer.hpp"
#include "vm_test_util.hpp"

namespace hpcnet::test {
namespace {

namespace telemetry = hpcnet::vm::telemetry;

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    telemetry::set_enabled(true);
    if (!telemetry::enabled()) {
      GTEST_SKIP() << "built with HPCNET_TELEMETRY=OFF";
    }
    telemetry::reset();
  }
  void TearDown() override {
    telemetry::set_enabled(false);
    telemetry::reset();
  }
};

/// ldc, ldc, add, ret — exactly 4 IL instructions per invocation.
std::int32_t build_add4(Module& mod, const std::string& name) {
  ILBuilder b(mod, name, {{}, ValType::I32});
  b.ldc_i4(2).ldc_i4(3).add().ret();
  return b.finish();
}

TEST_F(TelemetryTest, InterpreterCountsExact) {
  VMFixture f;
  const std::int32_t m = build_add4(f.vm.module(), "tel_interp");
  constexpr int kRuns = 7;
  for (int i = 0; i < kRuns; ++i) {
    EXPECT_EQ(f.run_on(2, m).i32, 5);  // rotor10 interpreter
  }
  const telemetry::Snapshot s = telemetry::snapshot();
  const telemetry::MethodProfile* p = s.method(m);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->invocations, kRuns);
  EXPECT_EQ(p->bytecodes, kRuns * 4u);
}

TEST_F(TelemetryTest, BaselineCountsExact) {
  VMFixture f;
  const std::int32_t m = build_add4(f.vm.module(), "tel_baseline");
  constexpr int kRuns = 5;
  for (int i = 0; i < kRuns; ++i) {
    EXPECT_EQ(f.run_on(1, m).i32, 5);  // mono023 baseline
  }
  const telemetry::Snapshot s = telemetry::snapshot();
  const telemetry::MethodProfile* p = s.method(m);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->invocations, kRuns);
  EXPECT_EQ(p->bytecodes, kRuns * 4u);
}

TEST_F(TelemetryTest, OptimizingCountsInvocationsAndJitTime) {
  VMFixture f;
  const std::int32_t m = build_add4(f.vm.module(), "tel_opt");
  constexpr int kRuns = 3;
  for (int i = 0; i < kRuns; ++i) {
    EXPECT_EQ(f.run_on(0, m).i32, 5);  // clr11 optimizing
  }
  const telemetry::Snapshot s = telemetry::snapshot();
  const telemetry::MethodProfile* p = s.method(m);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->invocations, kRuns);
  EXPECT_GT(p->jit_ns, 0);  // compiled once, on first call

  const telemetry::EngineJitTimes* j = s.engine_jit("clr11");
  ASSERT_NE(j, nullptr);
  EXPECT_EQ(j->methods_compiled, 1u);
  EXPECT_GT(j->compile_ns, 0);
  // Pass times were attributed to the same engine and a "jit" trace event
  // was emitted for the compile.
  EXPECT_GE(j->compile_ns, j->pass_total_ns());
  bool saw_jit_event = false;
  for (const auto& ev : s.events) {
    if (std::string(ev.cat) == "jit") saw_jit_event = true;
  }
  EXPECT_TRUE(saw_jit_event);
}

TEST_F(TelemetryTest, MergesAcrossManagedThreads) {
  VMFixture f;
  Module& mod = f.vm.module();
  // worker: (Ref) -> I32, 2 instructions.
  ILBuilder w(mod, "tel_mt_worker", {{ValType::Ref}, ValType::I32});
  w.ldc_i4(0).ret();
  const std::int32_t worker = w.finish();

  constexpr int kThreads = 3;
  ILBuilder b(mod, "tel_mt_main", {{}, ValType::I32});
  std::vector<std::int32_t> handles;
  for (int i = 0; i < kThreads; ++i) handles.push_back(b.add_local(ValType::Ref));
  for (int i = 0; i < kThreads; ++i) {
    b.ldc_i4(worker).ldnull().call_intr(vm::I_THREAD_START).stloc(handles[i]);
  }
  for (int i = 0; i < kThreads; ++i) {
    b.ldloc(handles[i]).call_intr(vm::I_THREAD_JOIN);
  }
  b.ldc_i4(1).ret();
  const std::int32_t m = b.finish();

  EXPECT_EQ(f.run_on(2, m).i32, 1);  // interpreter tier
  const telemetry::Snapshot s = telemetry::snapshot();
  const telemetry::MethodProfile* p = s.method(worker);
  ASSERT_NE(p, nullptr);
  // One invocation per spawned thread, merged from each thread's sink after
  // the joins made the counts stable.
  EXPECT_EQ(p->invocations, kThreads);
  EXPECT_EQ(p->bytecodes, kThreads * 2u);
}

TEST_F(TelemetryTest, GcPauseCountMatchesHeapCollections) {
  VirtualMachine vm;
  vm.heap().set_threshold(1 << 14);
  const std::size_t before = vm.gc_count();
  for (int i = 0; i < 2000; ++i) {
    vm.heap().alloc_array(ValType::F64, 64);
  }
  ASSERT_GT(vm.gc_count(), before);

  const telemetry::Snapshot s = telemetry::snapshot();
  EXPECT_EQ(s.gc.collections, vm.gc_count());
  EXPECT_EQ(s.gc_pause_ns.count(), s.gc.collections);
  // The arrays are unreferenced garbage, so collections must have freed some.
  EXPECT_GT(s.gc.bytes_freed, 0u);
  EXPECT_GT(s.gc.objects_swept, 0u);
  // Allocation counters came through the heap hook.
  EXPECT_GE(s.counter(telemetry::Counter::Allocations), 2000u);
  EXPECT_GT(s.counter(telemetry::Counter::BytesAllocated), 2000u * 64 * 8);
  // Every pause landed in the trace too.
  std::uint64_t gc_events = 0;
  for (const auto& ev : s.events) {
    if (std::string(ev.cat) == "gc") ++gc_events;
  }
  EXPECT_EQ(gc_events, s.gc.collections);
}

TEST_F(TelemetryTest, MonitorAcquiresCounted) {
  VirtualMachine vm;
  VMContext& ctx = vm.main_context();
  ObjRef obj = vm.heap().alloc_instance(vm.thread_class());
  Pinned pin(vm, obj);
  for (int i = 0; i < 5; ++i) {
    vm.monitors().enter(ctx, obj);
    vm.monitors().exit(ctx, obj);
  }
  const telemetry::Snapshot s = telemetry::snapshot();
  EXPECT_EQ(s.counter(telemetry::Counter::MonitorAcquires), 5u);
  EXPECT_EQ(s.counter(telemetry::Counter::MonitorContended), 0u);
  EXPECT_EQ(s.monitor_wait_ns.count(), 0u);
}

TEST_F(TelemetryTest, ContendedAcquireObservableWhileParked) {
  VirtualMachine vm;
  ObjRef obj = vm.heap().alloc_instance(vm.thread_class());
  Pinned pin(vm, obj);
  VMContext& main = vm.main_context();
  vm.monitors().enter(main, obj);

  std::thread t([&] {
    auto ctx = vm.attach_thread(nullptr);
    vm.monitors().enter(*ctx, obj);  // blocks until main releases
    vm.monitors().exit(*ctx, obj);
    vm.detach_thread(*ctx);
  });

  // Contention is counted *before* the park, so it is visible while the
  // waiter is still blocked.
  while (telemetry::snapshot().counter(telemetry::Counter::MonitorContended) ==
         0) {
    std::this_thread::yield();
  }
  vm.monitors().exit(main, obj);
  t.join();

  const telemetry::Snapshot s = telemetry::snapshot();
  EXPECT_GE(s.counter(telemetry::Counter::MonitorAcquires), 2u);
  EXPECT_EQ(s.counter(telemetry::Counter::MonitorContended), 1u);
  EXPECT_EQ(s.monitor_wait_ns.count(), 1u);
}

TEST_F(TelemetryTest, MonitorWaitCounted) {
  VirtualMachine vm;
  ObjRef obj = vm.heap().alloc_instance(vm.thread_class());
  Pinned pin(vm, obj);
  std::atomic<bool> woke{false};
  std::thread waiter([&] {
    auto ctx = vm.attach_thread(nullptr);
    vm.monitors().enter(*ctx, obj);
    vm.monitors().wait(*ctx, obj);
    woke.store(true);
    vm.monitors().exit(*ctx, obj);
    vm.detach_thread(*ctx);
  });
  VMContext& main = vm.main_context();
  while (!woke.load()) {
    vm.monitors().enter(main, obj);
    vm.monitors().pulse_all(main, obj);
    vm.monitors().exit(main, obj);
    std::this_thread::yield();
  }
  waiter.join();
  EXPECT_GE(telemetry::snapshot().counter(telemetry::Counter::MonitorWaits),
            1u);
}

// ---------------------------------------------------------------------------
// Chrome-trace JSON: a minimal recursive-descent parser good enough to prove
// the writer emits well-formed JSON with the expected top-level shape.

class MiniJson {
 public:
  explicit MiniJson(const std::string& s) : p_(s.data()), end_(s.data() + s.size()) {}

  bool parse_document() {
    ws();
    if (!value()) return false;
    ws();
    return p_ == end_;
  }

 private:
  void ws() {
    while (p_ < end_ && std::isspace(static_cast<unsigned char>(*p_))) ++p_;
  }
  bool lit(const char* s) {
    const char* q = p_;
    while (*s != '\0') {
      if (q == end_ || *q != *s) return false;
      ++q, ++s;
    }
    p_ = q;
    return true;
  }
  bool value() {
    ws();
    if (p_ == end_) return false;
    switch (*p_) {
      case '{': return object();
      case '[': return array();
      case '"': return string_();
      case 't': return lit("true");
      case 'f': return lit("false");
      case 'n': return lit("null");
      default: return number();
    }
  }
  bool string_() {
    if (p_ == end_ || *p_ != '"') return false;
    ++p_;
    while (p_ < end_ && *p_ != '"') {
      if (*p_ == '\\') {
        ++p_;
        if (p_ == end_) return false;
        if (*p_ == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++p_;
            if (p_ == end_ ||
                !std::isxdigit(static_cast<unsigned char>(*p_))) {
              return false;
            }
          }
        }
      }
      ++p_;
    }
    if (p_ == end_) return false;
    ++p_;  // closing quote
    return true;
  }
  bool number() {
    const char* start = p_;
    if (p_ < end_ && *p_ == '-') ++p_;
    while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    if (p_ < end_ && *p_ == '.') {
      ++p_;
      while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    if (p_ < end_ && (*p_ == 'e' || *p_ == 'E')) {
      ++p_;
      if (p_ < end_ && (*p_ == '+' || *p_ == '-')) ++p_;
      while (p_ < end_ && std::isdigit(static_cast<unsigned char>(*p_))) ++p_;
    }
    return p_ > start && (start[0] != '-' || p_ > start + 1);
  }
  bool object() {
    ++p_;  // '{'
    ws();
    if (p_ < end_ && *p_ == '}') { ++p_; return true; }
    for (;;) {
      ws();
      if (!string_()) return false;
      ws();
      if (p_ == end_ || *p_ != ':') return false;
      ++p_;
      if (!value()) return false;
      ws();
      if (p_ < end_ && *p_ == ',') { ++p_; continue; }
      if (p_ < end_ && *p_ == '}') { ++p_; return true; }
      return false;
    }
  }
  bool array() {
    ++p_;  // '['
    ws();
    if (p_ < end_ && *p_ == ']') { ++p_; return true; }
    for (;;) {
      if (!value()) return false;
      ws();
      if (p_ < end_ && *p_ == ',') { ++p_; continue; }
      if (p_ < end_ && *p_ == ']') { ++p_; return true; }
      return false;
    }
  }

  const char* p_;
  const char* end_;
};

TEST_F(TelemetryTest, ChromeTraceIsWellFormedJson) {
  VMFixture f;
  const std::int32_t m = build_add4(f.vm.module(), "tel_trace");
  EXPECT_EQ(f.run_on(0, m).i32, 5);  // emits a "jit" event
  // Names that stress the JSON escaper.
  telemetry::record_span("kernel", "quote\" slash\\ tab\t", 100, 200);
  telemetry::record_span("kernel", "plain", 150, 400, "\"answer\":42");

  const telemetry::Snapshot s = telemetry::snapshot();
  ASSERT_GE(s.events.size(), 3u);
  std::ostringstream os;
  telemetry::write_chrome_trace(os, s);
  const std::string doc = os.str();

  EXPECT_TRUE(MiniJson(doc).parse_document()) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"M\""), std::string::npos);  // thread names
  EXPECT_NE(doc.find("\"answer\":42"), std::string::npos);
}

TEST_F(TelemetryTest, SummaryJsonTablesAreWellFormed) {
  VMFixture f;
  const std::int32_t m = build_add4(f.vm.module(), "tel_summary");
  for (int i = 0; i < 3; ++i) f.run_on(2, m);
  f.run_on(0, m);
  const telemetry::Snapshot s = telemetry::snapshot();
  for (const auto& table :
       telemetry::summary_tables(s, &f.vm.module(), {})) {
    std::ostringstream os;
    table.print_json(os);
    EXPECT_TRUE(MiniJson(os.str()).parse_document()) << os.str();
  }
}

// Deliberately not TEST_F: this must also run (and hold) when telemetry is
// compiled out entirely with HPCNET_TELEMETRY=OFF.
TEST(TelemetryDisabled, CollectsNothing) {
  telemetry::set_enabled(false);
  telemetry::reset();
  VMFixture f;
  const std::int32_t m = build_add4(f.vm.module(), "tel_off");
  EXPECT_EQ(f.run_on(2, m).i32, 5);
  const telemetry::Snapshot s = telemetry::snapshot();
  EXPECT_EQ(s.method(m), nullptr);
  for (std::size_t c = 0; c < telemetry::kNumCounters; ++c) {
    EXPECT_EQ(s.counters[c], 0u);
  }
  EXPECT_TRUE(s.events.empty());
}

TEST_F(TelemetryTest, ResetClearsEverything) {
  VMFixture f;
  const std::int32_t m = build_add4(f.vm.module(), "tel_reset");
  f.run_on(2, m);
  f.run_on(0, m);
  ASSERT_NE(telemetry::snapshot().method(m), nullptr);
  telemetry::reset();
  const telemetry::Snapshot s = telemetry::snapshot();
  EXPECT_EQ(s.method(m), nullptr);
  EXPECT_TRUE(s.jit.empty());
  EXPECT_TRUE(s.events.empty());
  EXPECT_EQ(s.gc_pause_ns.count(), 0u);
}

}  // namespace
}  // namespace hpcnet::test

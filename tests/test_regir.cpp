// Register-IR compiler: the optimization passes and profile quirks behind
// the paper's §5 findings, checked structurally (what code is emitted) and
// behaviourally (every flag combination computes the interpreter's answer).
#include <gtest/gtest.h>

#include <algorithm>

#include "vm/regcompile.hpp"
#include "vm_test_util.hpp"

namespace hpcnet::test {
namespace {

using regir::RCode;
using regir::RInstr;
using regir::ROp;

std::size_t count_op(const RCode& rc, ROp op) {
  return static_cast<std::size_t>(
      std::count_if(rc.code.begin(), rc.code.end(),
                    [&](const RInstr& in) { return in.op == op; }));
}

/// The Table 5 division loop.
std::int32_t build_div_loop(Module& mod) {
  ILBuilder b(mod, "t_divloop", {{ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  const auto x = b.add_local(ValType::I32);
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldc_i4(2147483647).stloc(x);
  b.ldc_i4(0).stloc(i).br(cond);
  b.bind(top);
  b.ldloc(x).ldc_i4(3).div().stloc(x);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(cond);
  b.ldloc(i).ldarg(0).blt(top);
  b.ldloc(x).ret();
  return b.finish();
}

TEST(RegIr, CopyPropagationShrinksCode) {
  VirtualMachine vm;
  const auto m = build_div_loop(vm.module());
  verify(vm.module(), m);
  EngineFlags with = profiles::clr11().flags;
  EngineFlags without = with;
  without.copy_propagation = false;
  const RCode a = regir::compile(vm.module(), vm.module().method(m), with);
  const RCode b = regir::compile(vm.module(), vm.module().method(m), without);
  EXPECT_LT(a.code.size(), b.code.size());
}

TEST(RegIr, Ibm131FusesImmediateDivide) {
  VirtualMachine vm;
  const auto m = build_div_loop(vm.module());
  verify(vm.module(), m);
  const RCode rc = regir::compile(vm.module(), vm.module().method(m),
                                  profiles::ibm131().flags);
  EXPECT_EQ(count_op(rc, ROp::DIVI_I4), 1u);
  EXPECT_EQ(count_op(rc, ROp::DIV_I4), 0u);
}

TEST(RegIr, Clr11SpillsDivisorConstant) {
  // The paper's Table 6 quirk: the CLR stores the divisor in a temporary.
  VirtualMachine vm;
  const auto m = build_div_loop(vm.module());
  verify(vm.module(), m);
  const RCode rc = regir::compile(vm.module(), vm.module().method(m),
                                  profiles::clr11().flags);
  EXPECT_EQ(count_op(rc, ROp::DIV_I4), 1u);   // real divide
  EXPECT_EQ(count_op(rc, ROp::DIVI_I4), 0u);  // no immediate form
  // The redundant pinned constant round-trip is present.
  std::size_t pinned = 0;
  for (const RInstr& in : rc.code) {
    if (in.pinned()) ++pinned;
  }
  EXPECT_GE(pinned, 2u);
}

TEST(RegIr, FusedCompareBranchIsProfileGated) {
  VirtualMachine vm;
  const auto m = build_div_loop(vm.module());
  verify(vm.module(), m);
  const RCode fused = regir::compile(vm.module(), vm.module().method(m),
                                     profiles::clr11().flags);
  const RCode split = regir::compile(vm.module(), vm.module().method(m),
                                     profiles::sun14().flags);
  EXPECT_GE(count_op(fused, ROp::JLT_I4), 1u);
  EXPECT_EQ(count_op(split, ROp::JLT_I4), 0u);
  EXPECT_GE(count_op(split, ROp::CLT_I4), 1u);
  EXPECT_LE(fused.code.size(), split.code.size());
}

TEST(RegIr, EnregistrationLimitSpillsToMemoryOps) {
  VirtualMachine vm;
  ILBuilder b(vm.module(), "t_spill", {{}, ValType::I32});
  std::vector<std::int32_t> locs;
  for (int i = 0; i < 70; ++i) locs.push_back(b.add_local(ValType::I32));
  for (int i = 0; i < 70; ++i) b.ldc_i4(i).stloc(locs[static_cast<std::size_t>(i)]);
  b.ldloc(locs[69]).ldloc(locs[68]).add().ret();
  const auto m = b.finish();
  verify(vm.module(), m);
  const RCode limited = regir::compile(vm.module(), vm.module().method(m),
                                       profiles::clr11().flags);  // limit 64
  const RCode unlimited = regir::compile(vm.module(), vm.module().method(m),
                                         profiles::ibm131().flags);
  EXPECT_GT(count_op(limited, ROp::MEMLD) + count_op(limited, ROp::MEMST), 0u);
  EXPECT_EQ(count_op(unlimited, ROp::MEMLD) + count_op(unlimited, ROp::MEMST),
            0u);
}

TEST(RegIr, BceRemovesRangeChecksOnlyWhenEnabled) {
  VirtualMachine vm;
  // for (i = 0; i < a.Length; i++) a[i] = i;
  ILBuilder b(vm.module(), "t_bce", {{ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  const auto arr = b.add_local(ValType::Ref);
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldarg(0).newarr(ValType::I32).stloc(arr);
  b.ldc_i4(0).stloc(i).br(cond);
  b.bind(top);
  b.ldloc(arr).ldloc(i).ldloc(i).stelem(ValType::I32);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(cond);
  b.ldloc(i).ldloc(arr).ldlen().blt(top);
  b.ldloc(arr).ldc_i4(0).ldelem(ValType::I32).ret();
  const auto m = b.finish();
  verify(vm.module(), m);

  const RCode on = regir::compile(vm.module(), vm.module().method(m),
                                  profiles::clr11().flags);
  EngineFlags off_flags = profiles::clr11().flags;
  off_flags.bounds_check_elim = false;
  const RCode off = regir::compile(vm.module(), vm.module().method(m),
                                   off_flags);
  // With BCE the in-loop store's range check is gone and the guard fused.
  EXPECT_LT(count_op(on, ROp::CHK_BOUNDS), count_op(off, ROp::CHK_BOUNDS));
  EXPECT_EQ(count_op(on, ROp::JLT_LEN), 1u);
  EXPECT_EQ(count_op(off, ROp::JLT_LEN), 0u);
}

TEST(RegIr, BceDoesNotFireOnVariableBound) {
  VirtualMachine vm;
  // Same loop but bounded by a separate local: checks must remain.
  ILBuilder b(vm.module(), "t_nobce", {{ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  const auto n = b.add_local(ValType::I32);
  const auto arr = b.add_local(ValType::Ref);
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldarg(0).stloc(n);
  b.ldloc(n).newarr(ValType::I32).stloc(arr);
  b.ldc_i4(0).stloc(i).br(cond);
  b.bind(top);
  b.ldloc(arr).ldloc(i).ldloc(i).stelem(ValType::I32);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(cond);
  b.ldloc(i).ldloc(n).blt(top);
  b.ldloc(arr).ldc_i4(0).ldelem(ValType::I32).ret();
  const auto m = b.finish();
  verify(vm.module(), m);
  const RCode rc = regir::compile(vm.module(), vm.module().method(m),
                                  profiles::clr11().flags);
  EXPECT_EQ(count_op(rc, ROp::CHK_BOUNDS), 2u);  // in-loop store + final load
  EXPECT_EQ(count_op(rc, ROp::JLT_LEN), 0u);
}

TEST(RegIr, RefRegistersAreExactlyTheRefTyped) {
  VirtualMachine vm;
  ILBuilder b(vm.module(), "t_refs", {{ValType::Ref}, ValType::I32});
  const auto l = b.add_local(ValType::Ref);
  b.ldarg(0).stloc(l);
  b.ldloc(l).ldlen().ret();
  const auto m = b.finish();
  verify(vm.module(), m);
  const RCode rc = regir::compile(vm.module(), vm.module().method(m),
                                  profiles::clr11().flags);
  for (std::int32_t r : rc.ref_regs) {
    EXPECT_EQ(rc.reg_types[static_cast<std::size_t>(r)], ValType::Ref);
  }
  std::size_t ref_typed = 0;
  for (ValType t : rc.reg_types) {
    if (t == ValType::Ref) ++ref_typed;
  }
  EXPECT_EQ(rc.ref_regs.size(), ref_typed);
}

TEST(RegIr, DisassemblyIsNonEmptyAndNamed) {
  VirtualMachine vm;
  const auto m = build_div_loop(vm.module());
  verify(vm.module(), m);
  const RCode rc = regir::compile(vm.module(), vm.module().method(m),
                                  profiles::clr11().flags);
  const std::string text = regir::to_string(rc);
  EXPECT_NE(text.find("t_divloop"), std::string::npos);
  EXPECT_NE(text.find("div.i4"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Inlining / CSE / LICM: the structural effects the §5 disassembly study
// would show for the pass mixes of DESIGN.md §5.

/// Caller looping `x = sq(x)` over a one-expression callee.
std::int32_t build_call_loop(Module& mod, std::int32_t* callee_out) {
  ILBuilder sq(mod, "t_sq", {{ValType::I32}, ValType::I32});
  sq.ldarg(0).ldarg(0).mul().ldc_i4(1).add().ret();
  const auto sq_m = sq.finish();
  if (callee_out != nullptr) *callee_out = sq_m;
  ILBuilder b(mod, "t_callloop", {{ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  const auto x = b.add_local(ValType::I32);
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldc_i4(3).stloc(x);
  b.ldc_i4(0).stloc(i).br(cond);
  b.bind(top);
  b.ldloc(x).call(sq_m).stloc(x);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(cond);
  b.ldloc(i).ldarg(0).blt(top);
  b.ldloc(x).ret();
  return b.finish();
}

TEST(RegIr, InliningRemovesCallSites) {
  VirtualMachine vm;
  const auto m = build_call_loop(vm.module(), nullptr);
  verify(vm.module(), m);
  const RCode on = regir::compile(vm.module(), vm.module().method(m),
                                  profiles::clr11().flags);  // inline_calls
  const RCode off = regir::compile(vm.module(), vm.module().method(m),
                                   profiles::sun14().flags);  // no inlining
  EXPECT_EQ(count_op(on, ROp::CALL_R), 0u);
  EXPECT_EQ(count_op(off, ROp::CALL_R), 1u);
  // The callee body is spliced in: the multiply now appears in the caller.
  EXPECT_GE(count_op(on, ROp::MUL_I4), 1u);
  // Every RCode owns its body; only the inlined one was actually expanded.
  ASSERT_NE(on.body, nullptr);
  ASSERT_NE(off.body, nullptr);
  EXPECT_GT(on.body->il_size(), vm.module().method(m).il_size());
  EXPECT_EQ(off.body->il_size(), vm.module().method(m).il_size());
}

TEST(RegIr, InliningRespectsSizeBudget) {
  VirtualMachine vm;
  // A callee bigger than inline_max_il must stay a call.
  ILBuilder big(vm.module(), "t_big", {{ValType::I32}, ValType::I32});
  big.ldarg(0);
  for (int i = 0; i < 40; ++i) big.ldc_i4(i).add();
  big.ret();
  const auto big_m = big.finish();
  ILBuilder b(vm.module(), "t_bigcall", {{ValType::I32}, ValType::I32});
  b.ldarg(0).call(big_m).ret();
  const auto m = b.finish();
  verify(vm.module(), m);
  EngineFlags f = profiles::clr11().flags;
  f.inline_max_il = 24;
  const RCode rc = regir::compile(vm.module(), vm.module().method(m), f);
  EXPECT_EQ(count_op(rc, ROp::CALL_R), 1u);
  ASSERT_NE(rc.body, nullptr);
  EXPECT_EQ(rc.body->il_size(), vm.module().method(m).il_size());
}

TEST(RegIr, RecursiveInlineIsBoundedByDepth) {
  VirtualMachine vm;
  Module& mod = vm.module();
  const auto fib_id = static_cast<std::int32_t>(mod.method_count());
  ILBuilder b(mod, "t_fib", {{ValType::I32}, ValType::I32});
  auto rec = b.new_label();
  b.ldarg(0).ldc_i4(2).bge(rec);
  b.ldarg(0).ret();
  b.bind(rec);
  b.ldarg(0).ldc_i4(1).sub().call(fib_id);
  b.ldarg(0).ldc_i4(2).sub().call(fib_id);
  b.add().ret();
  const auto m = b.finish();
  ASSERT_EQ(m, fib_id);
  verify(mod, m);
  const EngineFlags f = profiles::clr11().flags;  // inline_depth = 2
  const RCode rc = regir::compile(mod, mod.method(m), f);
  // One level unrolled per round: calls remain (the recursion cannot
  // disappear), but the body grew past the original and stays bounded.
  EXPECT_GE(count_op(rc, ROp::CALL_R), 2u);
  EXPECT_LE(rc.code.size(),
            static_cast<std::size_t>(f.inline_total_il) * 4u);
}

TEST(RegIr, CseEliminatesDuplicateSubexpressions) {
  VirtualMachine vm;
  // x = (x*x + 3) ^ ((x*x + 3) >> 1): two mul/addi pairs fold to one.
  ILBuilder b(vm.module(), "t_cse", {{ValType::I32}, ValType::I32});
  const auto x = b.add_local(ValType::I32);
  b.ldarg(0).stloc(x);
  b.ldloc(x).ldloc(x).mul().ldc_i4(3).add();
  b.ldloc(x).ldloc(x).mul().ldc_i4(3).add().ldc_i4(1).shr();
  b.xor_().ret();
  const auto m = b.finish();
  verify(vm.module(), m);
  EngineFlags on = profiles::clr11().flags;
  EngineFlags off = on;
  off.cse = false;
  const RCode a = regir::compile(vm.module(), vm.module().method(m), on);
  const RCode c = regir::compile(vm.module(), vm.module().method(m), off);
  EXPECT_EQ(count_op(a, ROp::MUL_I4), 1u);
  EXPECT_EQ(count_op(c, ROp::MUL_I4), 2u);
  EXPECT_LT(count_op(a, ROp::ADDI_I4), count_op(c, ROp::ADDI_I4));
}

TEST(RegIr, CseDedupsRepeatedElementLoads) {
  VirtualMachine vm;
  // a[0] + a[0]: one checked load feeds both uses under CSE.
  ILBuilder b(vm.module(), "t_cseelem", {{ValType::I32}, ValType::I32});
  const auto arr = b.add_local(ValType::Ref);
  b.ldarg(0).newarr(ValType::I32).stloc(arr);
  b.ldloc(arr).ldc_i4(0).ldelem(ValType::I32);
  b.ldloc(arr).ldc_i4(0).ldelem(ValType::I32);
  b.add().ret();
  const auto m = b.finish();
  verify(vm.module(), m);
  EngineFlags on = profiles::clr11().flags;
  on.bounds_check_elim = false;  // isolate CSE's CHK_BOUNDS dedup
  EngineFlags off = on;
  off.cse = false;
  const RCode a = regir::compile(vm.module(), vm.module().method(m), on);
  const RCode c = regir::compile(vm.module(), vm.module().method(m), off);
  EXPECT_LT(count_op(a, ROp::CHK_BOUNDS), count_op(c, ROp::CHK_BOUNDS));
  EXPECT_LT(count_op(a, ROp::LDELEM_I4) + count_op(a, ROp::LDELEMU_I4),
            count_op(c, ROp::LDELEM_I4) + count_op(c, ROp::LDELEMU_I4));
}

TEST(RegIr, LicmHoistsInvariantMultiplyAboveLoop) {
  VirtualMachine vm;
  // acc += a*a with loop-invariant argument a.
  ILBuilder b(vm.module(), "t_licm", {{ValType::I32, ValType::I32},
                                      ValType::I32});
  const auto i = b.add_local(ValType::I32);
  const auto acc = b.add_local(ValType::I32);
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldc_i4(0).stloc(acc);
  b.ldc_i4(0).stloc(i).br(cond);
  b.bind(top);
  b.ldloc(acc).ldarg(1).ldarg(1).mul().add().stloc(acc);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(cond);
  b.ldloc(i).ldarg(0).blt(top);
  b.ldloc(acc).ret();
  const auto m = b.finish();
  verify(vm.module(), m);
  EngineFlags on = profiles::clr11().flags;
  EngineFlags off = on;
  off.licm = false;
  const RCode a = regir::compile(vm.module(), vm.module().method(m), on);
  const RCode c = regir::compile(vm.module(), vm.module().method(m), off);
  ASSERT_EQ(count_op(a, ROp::MUL_I4), 1u);
  ASSERT_EQ(count_op(c, ROp::MUL_I4), 1u);
  // Find the backward branch (the loop's back-edge) in each listing; with
  // LICM the multiply sits before the loop body it used to sit inside.
  auto analyse = [](const RCode& rc) {
    std::size_t mul_pos = 0, loop_begin = rc.code.size();
    for (std::size_t k = 0; k < rc.code.size(); ++k) {
      const RInstr& in = rc.code[k];
      if (in.op == ROp::MUL_I4) mul_pos = k;
      const bool branch = in.op == ROp::JMPB ||
                          (in.op >= ROp::JZ_I4 && in.op <= ROp::JGEI_I4);
      if (branch && in.d >= 0 && static_cast<std::size_t>(in.d) <= k) {
        loop_begin = std::min(loop_begin, static_cast<std::size_t>(in.d));
      }
    }
    return std::make_pair(mul_pos, loop_begin);
  };
  const auto [mul_on, loop_on] = analyse(a);
  const auto [mul_off, loop_off] = analyse(c);
  EXPECT_LT(mul_on, loop_on);      // hoisted into the preheader
  EXPECT_GE(mul_off, loop_off);    // still inside the loop without LICM
}

// ---------------------------------------------------------------------------
// Behavioural equivalence: every optimizing flag combination must compute
// exactly what the interpreter computes, over a program mixing arithmetic,
// arrays, calls and branches.

struct FlagCase {
  const char* name;
  EngineFlags flags;
};

std::vector<FlagCase> flag_matrix() {
  std::vector<FlagCase> cases;
  const EngineFlags base = profiles::clr11().flags;
  auto add = [&](const char* name, auto mutate) {
    EngineFlags f = base;
    mutate(f);
    cases.push_back({name, f});
  };
  add("all_on", [](EngineFlags&) {});
  add("no_copyprop", [](EngineFlags& f) { f.copy_propagation = false; });
  add("no_fusion", [](EngineFlags& f) { f.fuse_cmp_branch = false; });
  add("no_imm", [](EngineFlags& f) { f.imm_operands = false; });
  add("no_bce", [](EngineFlags& f) { f.bounds_check_elim = false; });
  add("divfuse", [](EngineFlags& f) {
    f.div_imm_fusion = true;
    f.redundant_const_store = false;
  });
  add("limit1", [](EngineFlags& f) { f.enregister_limit = 1; });
  add("limit0_slow_all", [](EngineFlags& f) {
    f.enregister_limit = 0;
    f.copy_propagation = false;
    f.fuse_cmp_branch = false;
    f.imm_operands = false;
    f.bounds_check_elim = false;
    f.fast_multidim = false;
    f.fast_math = false;
    f.inline_calls = false;
    f.cse = false;
    f.licm = false;
  });
  add("no_inline", [](EngineFlags& f) { f.inline_calls = false; });
  add("no_cse", [](EngineFlags& f) { f.cse = false; });
  add("no_licm", [](EngineFlags& f) { f.licm = false; });
  add("inline_deep", [](EngineFlags& f) {
    f.inline_calls = true;
    f.inline_depth = 4;
    f.inline_max_il = 64;
    f.inline_total_il = 512;
  });
  add("cse_licm_no_copyprop", [](EngineFlags& f) {
    f.copy_propagation = false;
    f.cse = true;
    f.licm = true;
  });
  add("vec", [](EngineFlags& f) { f.vectorize = true; });
  add("vec_no_cse", [](EngineFlags& f) {
    f.vectorize = true;
    f.cse = false;
    f.licm = false;
  });
  return cases;
}

class RegIrFlags : public ::testing::TestWithParam<std::size_t> {};

TEST_P(RegIrFlags, EveryFlagComboMatchesInterpreter) {
  const FlagCase fc = flag_matrix()[GetParam()];
  VMFixture f;
  Module& mod = f.vm.module();
  // mix(n): arrays, division by constants, shifts, compares, a call.
  ILBuilder helper(mod, "flags_helper", {{ValType::I32}, ValType::I32});
  helper.ldarg(0).ldc_i4(7).mul().ldc_i4(3).div().ret();
  const auto hm = helper.finish();

  ILBuilder b(mod, "flags_mix", {{ValType::I32}, ValType::I32});
  const auto i = b.add_local(ValType::I32);
  const auto acc = b.add_local(ValType::I32);
  const auto arr = b.add_local(ValType::Ref);
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldarg(0).newarr(ValType::I32).stloc(arr);
  b.ldc_i4(0).stloc(i).br(cond);
  b.bind(top);
  b.ldloc(arr).ldloc(i).ldloc(i).ldc_i4(5).mul().call(hm).stelem(ValType::I32);
  b.ldloc(acc).ldloc(arr).ldloc(i).ldelem(ValType::I32).add()
      .ldc_i4(3).shl().ldc_i4(2).shr().stloc(acc);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(cond);
  b.ldloc(i).ldloc(arr).ldlen().blt(top);
  b.ldloc(acc).ret();
  const auto m = b.finish();
  verify(mod, m);

  // Reference result from the interpreter tier.
  const Slot want = f.run_on(2, m, {Slot::from_i32(50)});

  EngineProfile p;
  p.name = std::string("flags.") + fc.name;
  p.tier = Tier::Optimizing;
  p.flags = fc.flags;
  auto engine = make_engine(f.vm, p);
  VMContext& ctx = f.vm.main_context();
  Slot arg = Slot::from_i32(50);
  const Slot got = engine->invoke(ctx, m, std::span<const Slot>(&arg, 1));
  EXPECT_EQ(got.raw, want.raw) << fc.name;

  // Tiered row: same flags under hotness promotion. Every invocation must be
  // bit-identical to the single-tier answer no matter which tier the method
  // (or its callee) happens to run on — including the ones that straddle the
  // interp->baseline and baseline->opt transitions.
  EngineProfile tp = profiles::tiered(p);
  auto tiered_engine = make_engine(f.vm, tp);
  for (int round = 0; round < 80; ++round) {
    const Slot r = tiered_engine->invoke(ctx, m, std::span<const Slot>(&arg, 1));
    EXPECT_EQ(r.raw, want.raw) << fc.name << " tiered round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(AllCombos, RegIrFlags,
                         ::testing::Range<std::size_t>(0, 15));

}  // namespace
}  // namespace hpcnet::test

// JGF-style instrumentor, heap primitives and the CIL/register-IR
// disassemblers.
#include <gtest/gtest.h>

#include <thread>

#include "jgf/instrumentor.hpp"
#include "vm/disasm.hpp"
#include "vm_test_util.hpp"

namespace hpcnet::test {
namespace {

using hpcnet::jgf::Instrumentor;

TEST(Instrumentor, TimerAccumulatesAndReportsThroughput) {
  Instrumentor in;
  in.add_timer("k", "MFlops");
  in.start("k");
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  in.stop("k");
  in.add_ops("k", 1e6);
  EXPECT_GT(in.read_seconds("k"), 0.0);
  EXPECT_GT(in.throughput("k"), 0.0);
  EXPECT_EQ(in.unit("k"), "MFlops");
  in.reset("k");
  EXPECT_DOUBLE_EQ(in.read_seconds("k"), 0.0);
  EXPECT_DOUBLE_EQ(in.ops("k"), 0.0);
}

TEST(Instrumentor, UnknownTimerThrows) {
  Instrumentor in;
  EXPECT_THROW(in.start("nope"), std::invalid_argument);
}

TEST(Instrumentor, ReportContainsNameAndUnit) {
  Instrumentor in;
  in.add_timer("fft");
  in.start("fft");
  in.stop("fft");
  in.add_ops("fft", 10);
  const std::string r = in.report("fft");
  EXPECT_NE(r.find("fft"), std::string::npos);
  EXPECT_NE(r.find("ops/sec"), std::string::npos);
}

TEST(Instrumentor, RepeatScreensOutliers) {
  int call = 0;
  const auto r = hpcnet::jgf::repeat(
      [&] {
        ++call;
        return call == 3 ? 1000.0 : 10.0 + call * 0.01;
      },
      7);
  EXPECT_EQ(r.outliers, 1u);
  EXPECT_LT(r.score, 20.0);  // the median, not the spike
}

TEST(Instrumentor, CalibrateGrowsUntilBudget) {
  // seconds_for models work linear in size: hits 0.05s at size >= 5000.
  const auto size = hpcnet::jgf::calibrate(
      [](std::int64_t s) { return static_cast<double>(s) * 1e-5; }, 0.05, 64);
  EXPECT_GE(size, 5000);
}

TEST(Heap, ElemSizes) {
  EXPECT_EQ(elem_size(ValType::I32), 4u);
  EXPECT_EQ(elem_size(ValType::I64), 8u);
  EXPECT_EQ(elem_size(ValType::F32), 4u);
  EXPECT_EQ(elem_size(ValType::F64), 8u);
  EXPECT_EQ(elem_size(ValType::Ref), sizeof(void*));
}

TEST(Heap, NegativeSizesRejected) {
  VirtualMachine vm;
  EXPECT_THROW(vm.heap().alloc_array(ValType::I32, -1), std::invalid_argument);
  EXPECT_THROW(vm.heap().alloc_matrix2(ValType::F64, -1, 4),
               std::invalid_argument);
}

TEST(Heap, FreshAllocationsAreZeroed) {
  VirtualMachine vm;
  ObjRef a = vm.heap().alloc_array(ValType::F64, 16);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a->f64_data()[i], 0.0);
  ObjRef m = vm.heap().alloc_matrix2(ValType::I32, 3, 5);
  for (int i = 0; i < 15; ++i) EXPECT_EQ(m->i32_data()[i], 0);
}

TEST(Heap, StringRoundTrip) {
  VirtualMachine vm;
  ObjRef s = vm.heap().alloc_string("managed string");
  EXPECT_EQ(string_value(s), "managed string");
  EXPECT_EQ(s->length, 14);
  EXPECT_EQ(string_value(nullptr), "");
}

TEST(Module, SubclassChains) {
  VirtualMachine vm;
  Module& m = vm.module();
  EXPECT_TRUE(m.is_subclass(m.divide_by_zero_class(), m.arithmetic_class()));
  EXPECT_TRUE(m.is_subclass(m.divide_by_zero_class(), m.exception_class()));
  EXPECT_FALSE(m.is_subclass(m.exception_class(), m.divide_by_zero_class()));
  EXPECT_TRUE(m.is_subclass(m.exception_class(), m.exception_class()));
}

TEST(Module, DerivedClassInheritsFieldLayout) {
  VirtualMachine vm;
  Module& m = vm.module();
  const auto base = m.define_class("d.Base", {{"a", ValType::I32}});
  const auto derived =
      m.define_class("d.Derived", {{"b", ValType::F64}}, base);
  EXPECT_EQ(m.klass(derived).field_index("a"), 0);
  EXPECT_EQ(m.klass(derived).field_index("b"), 1);
}

TEST(Module, StringInterning) {
  VirtualMachine vm;
  const auto a = vm.module().intern_string("hello");
  const auto b = vm.module().intern_string("hello");
  const auto c = vm.module().intern_string("world");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(vm.module().string_at(a), "hello");
}

TEST(Disasm, CilListingShowsStructure) {
  VirtualMachine vm;
  ILBuilder b(vm.module(), "dis_demo", {{ValType::I32}, ValType::I32});
  auto t0 = b.new_label();
  auto t1 = b.new_label();
  auto h = b.new_label();
  auto out = b.new_label();
  b.bind(t0);
  b.ldarg(0).ldc_i4(2).div().pop();
  b.leave(out);
  b.bind(t1);
  b.add_catch(t0, t1, h, vm.module().divide_by_zero_class());
  b.bind(h);
  b.pop().leave(out);
  b.bind(out);
  b.ldc_i4(0).ret();
  const auto m = b.finish();
  verify(vm.module(), m);
  const std::string text = disassemble_cil(vm.module(), m);
  EXPECT_NE(text.find("dis_demo"), std::string::npos);
  EXPECT_NE(text.find("div"), std::string::npos);
  EXPECT_NE(text.find(".catch"), std::string::npos);
  EXPECT_NE(text.find("DivideByZero"), std::string::npos);
}

TEST(Disasm, CodeQualityCountsShrinkWithOptimization) {
  VirtualMachine vm;
  ILBuilder b(vm.module(), "cq_demo", {{ValType::I32}, ValType::I32});
  const auto x = b.add_local(ValType::I32);
  b.ldarg(0).ldc_i4(3).mul().stloc(x);
  b.ldloc(x).ldc_i4(1).add().ret();
  const auto m = b.finish();
  verify(vm.module(), m);
  const auto q = code_quality(vm, m, profiles::clr11());
  EXPECT_EQ(q.cil_instructions, vm.module().method(m).code.size());
  EXPECT_LT(q.optimized_instructions, q.cil_instructions);
}

}  // namespace
}  // namespace hpcnet::test

// Verifier: rejection of every class of invalid IL the CLI requires a
// conforming implementation to detect, plus the metadata it synthesizes
// (max_stack, typed opcodes, per-pc stack maps, reachability).
#include <gtest/gtest.h>

#include "vm_test_util.hpp"

namespace hpcnet::test {
namespace {

/// Builds a method from `emit` and expects VerifyError.
void expect_reject(const std::string& name,
                   const std::function<void(Module&, ILBuilder&)>& emit) {
  VirtualMachine vm;
  ILBuilder b(vm.module(), name, {{ValType::I32}, ValType::I32});
  emit(vm.module(), b);
  const auto m = b.finish();
  EXPECT_THROW(verify(vm.module(), m), VerifyError) << name;
}

TEST(Verifier, RejectsStackUnderflow) {
  expect_reject("underflow", [](Module&, ILBuilder& b) { b.add().ret(); });
}

TEST(Verifier, RejectsOperandTypeMismatch) {
  expect_reject("mismatch", [](Module&, ILBuilder& b) {
    b.ldc_i4(1).ldc_r8(2.0).add().conv_i4().ret();
  });
}

TEST(Verifier, RejectsWrongReturnType) {
  expect_reject("wrongret",
                [](Module&, ILBuilder& b) { b.ldc_r8(1.0).ret(); });
}

TEST(Verifier, RejectsNonEmptyStackAtRet) {
  expect_reject("dirtystack", [](Module&, ILBuilder& b) {
    b.ldc_i4(1).ldc_i4(2).ret();
  });
}

TEST(Verifier, RejectsFallOffEnd) {
  expect_reject("falloff", [](Module&, ILBuilder& b) { b.ldc_i4(1).pop(); });
}

TEST(Verifier, RejectsBadLocalIndex) {
  expect_reject("badlocal",
                [](Module&, ILBuilder& b) { b.ldloc(3).ret(); });
}

TEST(Verifier, RejectsBadArgIndex) {
  expect_reject("badarg", [](Module&, ILBuilder& b) { b.ldarg(5).ret(); });
}

TEST(Verifier, RejectsStlocTypeMismatch) {
  expect_reject("stlocmismatch", [](Module&, ILBuilder& b) {
    const auto l = b.add_local(ValType::F64);
    b.ldc_i4(1).stloc(l);
    b.ldc_i4(0).ret();
  });
}

TEST(Verifier, RejectsInconsistentMergeDepth) {
  expect_reject("mergedepth", [](Module&, ILBuilder& b) {
    auto join = b.new_label();
    auto other = b.new_label();
    b.ldarg(0).brtrue(other);
    b.ldc_i4(1).br(join);     // one value on one path...
    b.bind(other);
    b.ldc_i4(1).ldc_i4(2).br(join);  // ...two on the other
    b.bind(join);
    b.ret();
  });
}

TEST(Verifier, RejectsInconsistentMergeTypes) {
  expect_reject("mergetypes", [](Module&, ILBuilder& b) {
    auto join = b.new_label();
    auto other = b.new_label();
    b.ldarg(0).brtrue(other);
    b.ldc_i4(1).br(join);
    b.bind(other);
    b.ldc_r8(1.0).br(join);
    b.bind(join);
    b.conv_i4().ret();
  });
}

TEST(Verifier, RejectsBitwiseOnFloats) {
  expect_reject("floatand", [](Module&, ILBuilder& b) {
    b.ldc_r8(1.0).ldc_r8(2.0).and_().conv_i4().ret();
  });
}

TEST(Verifier, RejectsShiftWithNonIntAmount) {
  expect_reject("badshift", [](Module&, ILBuilder& b) {
    b.ldc_i4(1).ldc_i8(2).shl().ret();
  });
}

TEST(Verifier, RejectsCallArgumentMismatch) {
  expect_reject("badcallargs", [](Module& mod, ILBuilder& b) {
    ILBuilder callee(mod, "callee_f64", {{ValType::F64}, ValType::I32});
    callee.ldc_i4(0).ret();
    const auto cm = callee.finish();
    b.ldc_i4(1).call(cm).ret();
  });
}

TEST(Verifier, RejectsThrowOfNonRef) {
  expect_reject("thrownum", [](Module&, ILBuilder& b) {
    b.ldc_i4(1).throw_();
  });
}

TEST(Verifier, RejectsBoxOfRef) {
  expect_reject("boxref", [](Module&, ILBuilder& b) {
    b.ldnull().box(ValType::Ref);
    b.pop().ldc_i4(0).ret();
  });
}

TEST(Verifier, RejectsBadCatchClass) {
  expect_reject("badcatch", [](Module&, ILBuilder& b) {
    auto t0 = b.new_label();
    auto t1 = b.new_label();
    auto h = b.new_label();
    b.bind(t0);
    b.ldc_i4(0).ret();
    b.bind(t1);
    b.add_catch(t0, t1, h, 9999);
    b.bind(h);
    b.pop();
    b.ldc_i4(0).ret();
  });
}

TEST(Verifier, AcceptsUnreachableTrailingCode) {
  VirtualMachine vm;
  ILBuilder b(vm.module(), "trailing", {{}, ValType::I32});
  b.ldc_i4(1).ret();
  b.ldc_i4(9).pop();  // dead padding after the terminal ret
  const auto m = b.finish();
  EXPECT_NO_THROW(verify(vm.module(), m));
}

TEST(Verifier, ComputesMaxStack) {
  VirtualMachine vm;
  ILBuilder b(vm.module(), "maxstack", {{}, ValType::I32});
  b.ldc_i4(1).ldc_i4(2).ldc_i4(3).ldc_i4(4).add().add().add().ret();
  const auto m = b.finish();
  verify(vm.module(), m);
  EXPECT_EQ(vm.module().method(m).max_stack, 4);
}

TEST(Verifier, AnnotatesPolymorphicOps) {
  VirtualMachine vm;
  ILBuilder b(vm.module(), "annot", {{ValType::F64, ValType::F64}, ValType::F64});
  b.ldarg(0).ldarg(1).add().ret();
  const auto m = b.finish();
  verify(vm.module(), m);
  EXPECT_EQ(vm.module().method(m).code[2].type, ValType::F64);
}

TEST(Verifier, BuildsStackMaps) {
  VirtualMachine vm;
  ILBuilder b(vm.module(), "maps", {{}, ValType::I32});
  b.ldc_i4(1).ldc_i8(2).conv_i4().add().ret();
  const auto m = b.finish();
  verify(vm.module(), m);
  const MethodDef& def = vm.module().method(m);
  EXPECT_TRUE(def.stack_in[0].empty());
  ASSERT_EQ(def.stack_in[1].size(), 1u);
  EXPECT_EQ(def.stack_in[1][0], ValType::I32);
  ASSERT_EQ(def.stack_in[2].size(), 2u);
  EXPECT_EQ(def.stack_in[2][1], ValType::I64);
}

TEST(Verifier, MarksReachability) {
  VirtualMachine vm;
  ILBuilder b(vm.module(), "reach", {{}, ValType::I32});
  auto past = b.new_label();
  b.br(past);
  b.ldc_i4(42).ret();  // dead
  b.bind(past);
  b.ldc_i4(1).ret();
  const auto m = b.finish();
  verify(vm.module(), m);
  const MethodDef& def = vm.module().method(m);
  EXPECT_TRUE(def.reachable[0]);
  EXPECT_FALSE(def.reachable[1]);
  EXPECT_TRUE(def.reachable[3]);
}

TEST(Verifier, RejectsCallBeyondMaxArgumentCount) {
  // Regression: the interpreters marshal call arguments through a fixed
  // Slot argbuf[kMaxCallArgs]; a 17-parameter callee must be rejected at
  // verify time, never reaching the buffer.
  VirtualMachine vm;
  std::vector<ValType> params(static_cast<std::size_t>(kMaxCallArgs) + 1,
                              ValType::I32);
  ILBuilder callee(vm.module(), "arity17", {params, ValType::I32});
  callee.ldarg(0).ret();
  const auto c = callee.finish();
  ILBuilder b(vm.module(), "arity17_caller", {{ValType::I32}, ValType::I32});
  for (std::size_t i = 0; i < params.size(); ++i) b.ldc_i4(1);
  b.call(c).ret();
  const auto m = b.finish();
  EXPECT_THROW(verify(vm.module(), m), VerifyError);
}

TEST(Verifier, AcceptsCallAtMaxArgumentCount) {
  VirtualMachine vm;
  std::vector<ValType> params(static_cast<std::size_t>(kMaxCallArgs),
                              ValType::I32);
  ILBuilder callee(vm.module(), "arity16", {params, ValType::I32});
  callee.ldarg(0).ldarg(15).add().ret();
  const auto c = callee.finish();
  ILBuilder b(vm.module(), "arity16_caller", {{ValType::I32}, ValType::I32});
  for (std::size_t i = 0; i < params.size(); ++i) b.ldc_i4(2);
  b.call(c).ret();
  const auto m = b.finish();
  EXPECT_NO_THROW(verify(vm.module(), m));
}

TEST(Verifier, IsIdempotent) {
  VirtualMachine vm;
  ILBuilder b(vm.module(), "idem", {{}, ValType::I32});
  b.ldc_i4(1).ret();
  const auto m = b.finish();
  verify(vm.module(), m);
  verify(vm.module(), m);  // no-op, no throw
  EXPECT_TRUE(vm.module().method(m).verified);
}

}  // namespace
}  // namespace hpcnet::test

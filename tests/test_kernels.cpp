// Native kernel validation: SciMark self-tests plus invariants and known
// values for the JGF section 2/3 kernels.
#include <gtest/gtest.h>

#include <cmath>

#include "kernels/jgf.hpp"
#include "kernels/scimark.hpp"

namespace hpcnet::test {
namespace {

using namespace hpcnet::kernels;

TEST(Scimark, FftRoundTripIsExact) {
  EXPECT_LT(fft::test(1024), 1e-12);
  EXPECT_LT(fft::test(4096), 1e-12);  // the paper's 4K-point FFT
}

TEST(Scimark, FftRejectsNonPowerOfTwo) {
  EXPECT_THROW(fft::test(1000), std::invalid_argument);
}

TEST(Scimark, FftFlopCountMatchesFormula) {
  EXPECT_DOUBLE_EQ(fft::num_flops(1024), (5.0 * 1024 - 2) * 10 + 2 * 1025);
}

TEST(Scimark, SorConvergesTowardsSmoothField) {
  // SOR is an averaging operator: after many sweeps the interior must lie
  // within the initial data range and the checksum must be stable.
  const double c1 = sor::checksum(50, 100);
  const double c2 = sor::checksum(50, 100);
  EXPECT_EQ(c1, c2);
  EXPECT_GT(c1, 0.0);
  EXPECT_LT(c1, 1.0);
}

TEST(Scimark, SorFlops) {
  EXPECT_DOUBLE_EQ(sor::num_flops(100, 100, 10), 99.0 * 99.0 * 10 * 6);
}

TEST(Scimark, MonteCarloApproximatesPi) {
  const double pi_est = montecarlo::integrate(1000000);
  EXPECT_NEAR(pi_est, M_PI, 0.01);
}

TEST(Scimark, MonteCarloIsDeterministic) {
  EXPECT_EQ(montecarlo::integrate(10000), montecarlo::integrate(10000));
}

TEST(Scimark, SparseMatVecMatchesDense) {
  // Multiply with the synthetic structure and check against an explicit
  // dense evaluation of the same matrix.
  support::SciMarkRandom rng(101010);
  const int n = 64, nz = 512;
  std::vector<double> x(static_cast<std::size_t>(n));
  rng.next_doubles(x.data(), n);
  std::vector<double> y(static_cast<std::size_t>(n), 0.0);
  const sparse::Matrix a = sparse::make_matrix(n, nz, rng);
  sparse::matmult(y, a, x, 1);
  for (int r = 0; r < n; ++r) {
    double want = 0;
    for (std::int32_t i = a.row[static_cast<std::size_t>(r)];
         i < a.row[static_cast<std::size_t>(r) + 1]; ++i) {
      want += x[static_cast<std::size_t>(a.col[static_cast<std::size_t>(i)])] *
              a.val[static_cast<std::size_t>(i)];
    }
    EXPECT_DOUBLE_EQ(y[static_cast<std::size_t>(r)], want);
  }
}

TEST(Scimark, LuResidualSmall) {
  EXPECT_LT(lu::residual(64), 1e-10);
  EXPECT_LT(lu::residual(100), 1e-10);
}

TEST(Scimark, LuFlops) { EXPECT_DOUBLE_EQ(lu::num_flops(100), 2e6 / 3.0); }

TEST(JgfKernels, Fibonacci) {
  EXPECT_EQ(fib::compute(0), 0);
  EXPECT_EQ(fib::compute(1), 1);
  EXPECT_EQ(fib::compute(10), 55);
  EXPECT_EQ(fib::compute(20), 6765);
  EXPECT_DOUBLE_EQ(fib::num_calls(1), 1.0);
  EXPECT_DOUBLE_EQ(fib::num_calls(2), 3.0);   // fib(2): 3 calls
  EXPECT_DOUBLE_EQ(fib::num_calls(3), 5.0);
}

TEST(JgfKernels, Sieve) {
  EXPECT_EQ(sieve::count_primes(1), 0);
  EXPECT_EQ(sieve::count_primes(2), 1);
  EXPECT_EQ(sieve::count_primes(10), 4);
  EXPECT_EQ(sieve::count_primes(100), 25);
  EXPECT_EQ(sieve::count_primes(10000), 1229);
  EXPECT_EQ(sieve::count_primes(1000000), 78498);
}

TEST(JgfKernels, Hanoi) {
  EXPECT_EQ(hanoi::solve(1), 1);
  EXPECT_EQ(hanoi::solve(3), 7);
  EXPECT_EQ(hanoi::solve(10), 1023);
  EXPECT_EQ(hanoi::solve(20), (1 << 20) - 1);
}

TEST(JgfKernels, HeapSortSortsAndIsDeterministic) {
  std::vector<std::int32_t> v = {5, 3, 8, 1, 9, 2, 7, 7, 0, -4};
  heapsort::sort(v);
  for (std::size_t i = 1; i < v.size(); ++i) EXPECT_LE(v[i - 1], v[i]);
  EXPECT_EQ(heapsort::run(10000), heapsort::run(10000));
}

TEST(JgfKernels, CryptRoundTrips) {
  // run() throws if decrypt(encrypt(x)) != x.
  EXPECT_NO_THROW(crypt::run(4096));
  EXPECT_EQ(crypt::run(1024), crypt::run(1024));
}

TEST(JgfKernels, CryptDifferentKeysDiffer) {
  const auto k1 = crypt::make_keys(1);
  const auto k2 = crypt::make_keys(2);
  EXPECT_NE(k1.encrypt, k2.encrypt);
}

TEST(JgfKernels, MolDynConservesParticlesAndIsDeterministic) {
  const auto r1 = moldyn::simulate(3, 5);
  const auto r2 = moldyn::simulate(3, 5);
  EXPECT_EQ(r1.particles, 4 * 27);
  EXPECT_EQ(r1.ek, r2.ek);
  EXPECT_EQ(r1.epot, r2.epot);
  EXPECT_GT(r1.interactions, 0);
}

TEST(JgfKernels, EulerStaysFiniteAndDeterministic) {
  const double d1 = euler::solve(16, 20);
  const double d2 = euler::solve(16, 20);
  EXPECT_EQ(d1, d2);
  EXPECT_TRUE(std::isfinite(d1));
  EXPECT_NEAR(d1, 1.0, 0.3);  // near free-stream density
}

TEST(JgfKernels, SearchCountsNodesDeterministically) {
  int score = 0;
  const auto n1 = search::solve(8, &score);
  const auto n2 = search::solve(8, nullptr);
  EXPECT_EQ(n1, n2);
  EXPECT_GT(n1, 100);
}

TEST(JgfKernels, RayTracerChecksumStable) {
  const auto c1 = raytracer::render(32);
  EXPECT_EQ(c1, raytracer::render(32));
  EXPECT_GT(c1, 0);
}

}  // namespace
}  // namespace hpcnet::test

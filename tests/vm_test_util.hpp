// Shared helpers for VM tests: run the same IL on every engine tier and
// check the results agree — the paper's core invariant (one compiler output,
// many runtimes, identical results).
#pragma once

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <vector>

#include "vm/execution.hpp"
#include "vm/ilbuilder.hpp"
#include "vm/verifier.hpp"

namespace hpcnet::test {

using namespace hpcnet::vm;

/// The three tiers under their flagship profiles.
inline std::vector<EngineProfile> tier_profiles() {
  return {profiles::clr11(), profiles::mono023(), profiles::rotor10()};
}

/// A VM plus one engine of each tier, with a context for the calling thread.
struct VMFixture {
  VirtualMachine vm;
  std::vector<std::unique_ptr<Engine>> engines;

  VMFixture() {
    for (const auto& p : tier_profiles()) {
      engines.push_back(make_engine(vm, p));
    }
  }

  /// Invokes `method` with `args` on every engine and requires identical raw
  /// results; returns the common result.
  Slot run_all(std::int32_t method, std::vector<Slot> args = {}) {
    verify(vm.module(), method);
    VMContext& ctx = vm.main_context();
    bool first = true;
    Slot out;
    for (auto& e : engines) {
      ctx.engine = e.get();
      Slot r = e->invoke(ctx, method, args);
      if (first) {
        out = r;
        first = false;
      } else {
        EXPECT_EQ(out.raw, r.raw)
            << "engine " << e->name() << " disagrees on "
            << vm.module().method(method).name;
      }
    }
    return out;
  }

  /// Invokes on one engine by tier index (0=opt, 1=baseline, 2=interp).
  Slot run_on(std::size_t engine_idx, std::int32_t method,
              std::vector<Slot> args = {}) {
    verify(vm.module(), method);
    VMContext& ctx = vm.main_context();
    ctx.engine = engines[engine_idx].get();
    return engines[engine_idx]->invoke(ctx, method, args);
  }
};

}  // namespace hpcnet::test

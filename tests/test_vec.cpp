// Vector lowering (DESIGN.md §12): golden shape-recognition tests over the
// register IR, near-miss negatives (loops that look vectorizable but are
// not), bit-identity of every VECLOOP kernel against the scalar tiers
// (including NaN/Inf propagation and i32 wrap-around), guard-failure
// fallback onto the retained scalar loop, warm-up under the tiered
// pipeline, and deterministic fuel kills through the execution service.
//
// CI also builds and runs this binary with -DHPCNET_SIMD=OFF, so the SIMD
// strip-mined map kernels and the portable scalar fallback are both held to
// the same golden results.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "vm/regcompile.hpp"
#include "vm/service/service.hpp"
#include "vm/veckernels.hpp"
#include "vm_test_util.hpp"

namespace hpcnet::test {
namespace {

using regir::RCode;
using regir::RInstr;
using regir::ROp;
using service::ExecutionService;
using service::JobOutcome;
using service::JobResult;

std::size_t count_op(const RCode& rc, ROp op) {
  return static_cast<std::size_t>(
      std::count_if(rc.code.begin(), rc.code.end(),
                    [&](const RInstr& in) { return in.op == op; }));
}

EngineFlags vec_flags() { return profiles::vec(profiles::clr11()).flags; }

RCode compile_with(VirtualMachine& vm, std::int32_t m,
                   const EngineFlags& flags) {
  verify(vm.module(), m);
  return regir::compile(vm.module(), vm.module().method(m), flags);
}

/// Rotated ldlen-bounded loop (the BCE/JLT_LEN form): a[i] = a[i] * 1.5,
/// or 1.5 * a[i] when `swap` (the commutative match).
std::int32_t build_map_scale_f64(Module& mod, bool swap) {
  ILBuilder b(mod, swap ? "v.scale_sw" : "v.scale",
              {{ValType::I32}, ValType::F64});
  const auto a = b.add_local(ValType::Ref);
  const auto i = b.add_local(ValType::I32);
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldarg(0).newarr(ValType::F64).stloc(a);
  b.ldc_i4(0).stloc(i).br(cond);
  b.bind(top);
  b.ldloc(a).ldloc(i);
  if (swap) {
    b.ldc_r8(1.5).ldloc(a).ldloc(i).ldelem(ValType::F64).mul();
  } else {
    b.ldloc(a).ldloc(i).ldelem(ValType::F64).ldc_r8(1.5).mul();
  }
  b.stelem(ValType::F64);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(cond);
  b.ldloc(i).ldloc(a).ldlen().blt(top);
  b.ldc_r8(0.0).ret();
  return b.finish();
}

/// y[i] = y[i] + s * x[i] with the scale passed as an argument (register
/// scalar operand, not an immediate).
std::int32_t build_daxpy_f64(Module& mod) {
  ILBuilder b(mod, "v.daxpy", {{ValType::I32, ValType::F64}, ValType::F64});
  const auto y = b.add_local(ValType::Ref);
  const auto x = b.add_local(ValType::Ref);
  const auto i = b.add_local(ValType::I32);
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldarg(0).newarr(ValType::F64).stloc(y);
  b.ldarg(0).newarr(ValType::F64).stloc(x);
  b.ldc_i4(0).stloc(i).br(cond);
  b.bind(top);
  b.ldloc(y).ldloc(i);
  b.ldloc(y).ldloc(i).ldelem(ValType::F64);
  b.ldarg(1).ldloc(x).ldloc(i).ldelem(ValType::F64).mul();
  b.add().stelem(ValType::F64);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(cond);
  b.ldloc(i).ldloc(y).ldlen().blt(top);
  b.ldc_r8(0.0).ret();
  return b.finish();
}

/// Top-tested (while-shaped, Form B) reduction with a variable bound:
/// acc += a[i] for i in [0, n).
std::int32_t build_sum_f64(Module& mod) {
  ILBuilder b(mod, "v.sum", {{ValType::I32}, ValType::F64});
  const auto a = b.add_local(ValType::Ref);
  const auto i = b.add_local(ValType::I32);
  const auto acc = b.add_local(ValType::F64);
  auto head = b.new_label();
  auto done = b.new_label();
  b.ldarg(0).newarr(ValType::F64).stloc(a);
  b.ldc_r8(0.0).stloc(acc);
  b.ldc_i4(0).stloc(i);
  b.bind(head);
  b.ldloc(i).ldarg(0).bge(done);
  b.ldloc(acc).ldloc(a).ldloc(i).ldelem(ValType::F64).add().stloc(acc);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.br(head);
  b.bind(done);
  b.ldloc(acc).ret();
  return b.finish();
}

std::int32_t build_dot_f64(Module& mod) {
  ILBuilder b(mod, "v.dot", {{ValType::I32}, ValType::F64});
  const auto a = b.add_local(ValType::Ref);
  const auto c = b.add_local(ValType::Ref);
  const auto i = b.add_local(ValType::I32);
  const auto acc = b.add_local(ValType::F64);
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldarg(0).newarr(ValType::F64).stloc(a);
  b.ldarg(0).newarr(ValType::F64).stloc(c);
  b.ldc_r8(0.0).stloc(acc);
  b.ldc_i4(0).stloc(i).br(cond);
  b.bind(top);
  b.ldloc(acc);
  b.ldloc(a).ldloc(i).ldelem(ValType::F64);
  b.ldloc(c).ldloc(i).ldelem(ValType::F64).mul();
  b.add().stloc(acc);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(cond);
  b.ldloc(i).ldloc(a).ldlen().blt(top);
  b.ldloc(acc).ret();
  return b.finish();
}

/// The sparse-matmul inner loop: acc += x[col[k]] * val[k].
std::int32_t build_gather_dot(Module& mod) {
  ILBuilder b(mod, "v.gather", {{ValType::I32}, ValType::F64});
  const auto x = b.add_local(ValType::Ref);
  const auto col = b.add_local(ValType::Ref);
  const auto val = b.add_local(ValType::Ref);
  const auto k = b.add_local(ValType::I32);
  const auto acc = b.add_local(ValType::F64);
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldarg(0).newarr(ValType::F64).stloc(x);
  b.ldarg(0).newarr(ValType::I32).stloc(col);
  b.ldarg(0).newarr(ValType::F64).stloc(val);
  b.ldc_r8(0.0).stloc(acc);
  b.ldc_i4(0).stloc(k).br(cond);
  b.bind(top);
  b.ldloc(acc);
  b.ldloc(x).ldloc(col).ldloc(k).ldelem(ValType::I32).ldelem(ValType::F64);
  b.ldloc(val).ldloc(k).ldelem(ValType::F64).mul();
  b.add().stloc(acc);
  b.ldloc(k).ldc_i4(1).add().stloc(k);
  b.bind(cond);
  b.ldloc(k).ldloc(val).ldlen().blt(top);
  b.ldloc(acc).ret();
  return b.finish();
}

/// One SOR sweep over g with fixed neighbour rows (the sm_kernels j-loop
/// shape, Form B) followed by a sum reduction of the result.
std::int32_t build_sor_sweep(Module& mod) {
  ILBuilder b(mod, "v.sor", {{ValType::I32}, ValType::F64});
  const auto g = b.add_local(ValType::Ref);
  const auto up = b.add_local(ValType::Ref);
  const auto dn = b.add_local(ValType::Ref);
  const auto j = b.add_local(ValType::I32);
  const auto nm1 = b.add_local(ValType::I32);
  const auto acc = b.add_local(ValType::F64);
  auto fcond = b.new_label();
  auto ftop = b.new_label();
  auto jtop = b.new_label();
  auto jend = b.new_label();
  auto shead = b.new_label();
  auto sdone = b.new_label();
  b.ldarg(0).newarr(ValType::F64).stloc(g);
  b.ldarg(0).newarr(ValType::F64).stloc(up);
  b.ldarg(0).newarr(ValType::F64).stloc(dn);
  // Fill: g[j]=j*0.125, up[j]=j*0.25, dn[j]=j*0.5 (conv keeps this scalar).
  b.ldc_i4(0).stloc(j).br(fcond);
  b.bind(ftop);
  b.ldloc(g).ldloc(j).ldloc(j).conv_r8().ldc_r8(0.125).mul()
      .stelem(ValType::F64);
  b.ldloc(up).ldloc(j).ldloc(j).conv_r8().ldc_r8(0.25).mul()
      .stelem(ValType::F64);
  b.ldloc(dn).ldloc(j).ldloc(j).conv_r8().ldc_r8(0.5).mul()
      .stelem(ValType::F64);
  b.ldloc(j).ldc_i4(1).add().stloc(j);
  b.bind(fcond);
  b.ldloc(j).ldloc(g).ldlen().blt(ftop);
  // The 5-point update: g[j] = 0.3125*(((up[j]+dn[j])+g[j-1])+g[j+1])
  //                            + 0.75*g[j], j in [1, n-1).
  b.ldarg(0).ldc_i4(1).sub().stloc(nm1);
  b.ldc_i4(1).stloc(j);
  b.bind(jtop);
  b.ldloc(j).ldloc(nm1).bge(jend);
  b.ldloc(g).ldloc(j);
  b.ldc_r8(0.3125);
  b.ldloc(up).ldloc(j).ldelem(ValType::F64);
  b.ldloc(dn).ldloc(j).ldelem(ValType::F64).add();
  b.ldloc(g).ldloc(j).ldc_i4(1).sub().ldelem(ValType::F64).add();
  b.ldloc(g).ldloc(j).ldc_i4(1).add().ldelem(ValType::F64).add();
  b.mul();
  b.ldc_r8(0.75).ldloc(g).ldloc(j).ldelem(ValType::F64).mul();
  b.add().stelem(ValType::F64);
  b.ldloc(j).ldc_i4(1).add().stloc(j);
  b.br(jtop);
  b.bind(jend);
  // Checksum.
  b.ldc_r8(0.0).stloc(acc);
  b.ldc_i4(0).stloc(j);
  b.bind(shead);
  b.ldloc(j).ldarg(0).bge(sdone);
  b.ldloc(acc).ldloc(g).ldloc(j).ldelem(ValType::F64).add().stloc(acc);
  b.ldloc(j).ldc_i4(1).add().stloc(j);
  b.br(shead);
  b.bind(sdone);
  b.ldloc(acc).ret();
  return b.finish();
}

/// i32 pipeline: a[i] = a[i]*s (wrapping), then acc += a[i] (wrapping).
std::int32_t build_i4_pipeline(Module& mod) {
  ILBuilder b(mod, "v.i4pipe", {{ValType::I32}, ValType::I32});
  const auto a = b.add_local(ValType::Ref);
  const auto i = b.add_local(ValType::I32);
  const auto acc = b.add_local(ValType::I32);
  auto l0c = b.new_label();
  auto l0 = b.new_label();
  auto l1c = b.new_label();
  auto l1 = b.new_label();
  auto l2c = b.new_label();
  auto l2 = b.new_label();
  b.ldarg(0).newarr(ValType::I32).stloc(a);
  // Fill with a mixing constant so the scale overflows and wraps.
  b.ldc_i4(0).stloc(i).br(l0c);
  b.bind(l0);
  b.ldloc(a).ldloc(i).ldloc(i).ldc_i4(-1640531527).mul().stelem(ValType::I32);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(l0c);
  b.ldloc(i).ldloc(a).ldlen().blt(l0);
  // a[i] = a[i] * 100003 — wraps; must match arith.hpp semantics exactly.
  b.ldc_i4(0).stloc(i).br(l1c);
  b.bind(l1);
  b.ldloc(a).ldloc(i).ldloc(a).ldloc(i).ldelem(ValType::I32)
      .ldc_i4(100003).mul().stelem(ValType::I32);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(l1c);
  b.ldloc(i).ldloc(a).ldlen().blt(l1);
  // acc += a[i].
  b.ldc_i4(0).stloc(acc);
  b.ldc_i4(0).stloc(i).br(l2c);
  b.bind(l2);
  b.ldloc(acc).ldloc(a).ldloc(i).ldelem(ValType::I32).add().stloc(acc);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(l2c);
  b.ldloc(i).ldloc(a).ldlen().blt(l2);
  b.ldloc(acc).ret();
  return b.finish();
}

// ---- golden lowering per shape ------------------------------------------

void expect_single_kernel(const RCode& rc, std::int32_t kernel) {
  ASSERT_EQ(count_op(rc, ROp::VECLOOP), 1u);
  ASSERT_EQ(rc.vec_loops.size(), 1u);
  EXPECT_EQ(rc.vec_loops[0].kernel, kernel);
  // The disassembly names the kernel (satellite contract for jit_explorer).
  EXPECT_NE(regir::to_string(rc).find(veckernels::kernel_name(kernel)),
            std::string::npos);
}

TEST(VecLower, MapScaleBothOperandOrders) {
  VirtualMachine vm;
  const auto m1 = build_map_scale_f64(vm.module(), false);
  const auto m2 = build_map_scale_f64(vm.module(), true);
  const RCode r1 = compile_with(vm, m1, vec_flags());
  const RCode r2 = compile_with(vm, m2, vec_flags());
  expect_single_kernel(r1, veckernels::kMapScaleF64);
  expect_single_kernel(r2, veckernels::kMapScaleF64);
  // The immediate scale is carried in the side table, not a register.
  EXPECT_EQ(r1.vec_loops[0].s0_reg, -1);
  // The bound is either the array length or a hoisted length register.
  EXPECT_TRUE(r1.vec_loops[0].limit_arr >= 0 || r1.vec_loops[0].limit >= 0);
  // The scalar loop is retained as the guard-failure/deopt body.
  EXPECT_GE(count_op(r1, ROp::JLT_LEN) + count_op(r1, ROp::JLT_I4), 1u);
}

TEST(VecLower, DaxpyWithRegisterScale) {
  VirtualMachine vm;
  const auto m = build_daxpy_f64(vm.module());
  const RCode rc = compile_with(vm, m, vec_flags());
  expect_single_kernel(rc, veckernels::kDaxpyF64);
  EXPECT_GE(rc.vec_loops[0].s0_reg, 0);  // scale comes from an argument
}

TEST(VecLower, TopTestedSumWithVariableBound) {
  VirtualMachine vm;
  const auto m = build_sum_f64(vm.module());
  const RCode rc = compile_with(vm, m, vec_flags());
  expect_single_kernel(rc, veckernels::kSumF64);
  EXPECT_GE(rc.vec_loops[0].limit, 0);  // bound is a register, not a length
  EXPECT_GE(rc.vec_loops[0].acc, 0);
}

TEST(VecLower, DotProduct) {
  VirtualMachine vm;
  const auto m = build_dot_f64(vm.module());
  const RCode rc = compile_with(vm, m, vec_flags());
  expect_single_kernel(rc, veckernels::kDotF64);
}

TEST(VecLower, GatherDot) {
  VirtualMachine vm;
  const auto m = build_gather_dot(vm.module());
  const RCode rc = compile_with(vm, m, vec_flags());
  expect_single_kernel(rc, veckernels::kGatherDotF64);
}

TEST(VecLower, SorFivePointAndChecksum) {
  VirtualMachine vm;
  const auto m = build_sor_sweep(vm.module());
  const RCode rc = compile_with(vm, m, vec_flags());
  // The fill loop stays scalar (conv in the body); the 5-point sweep and
  // the checksum reduction both lower.
  ASSERT_EQ(rc.vec_loops.size(), 2u);
  std::vector<std::int32_t> kernels = {rc.vec_loops[0].kernel,
                                       rc.vec_loops[1].kernel};
  std::sort(kernels.begin(), kernels.end());
  EXPECT_EQ(kernels[0], veckernels::kSumF64);
  EXPECT_EQ(kernels[1], veckernels::kSor5F64);
}

TEST(VecLower, I4MapAndSum) {
  VirtualMachine vm;
  const auto m = build_i4_pipeline(vm.module());
  const RCode rc = compile_with(vm, m, vec_flags());
  // Fill (i * c, not an element-wise map) stays scalar; scale + sum lower.
  ASSERT_EQ(rc.vec_loops.size(), 2u);
  std::vector<std::int32_t> kernels = {rc.vec_loops[0].kernel,
                                       rc.vec_loops[1].kernel};
  std::sort(kernels.begin(), kernels.end());
  EXPECT_EQ(kernels[0], veckernels::kMapScaleI4);
  EXPECT_EQ(kernels[1], veckernels::kSumI4);
}

TEST(VecLower, OffByDefaultInEveryPaperProfile) {
  VirtualMachine vm;
  const auto m = build_daxpy_f64(vm.module());
  verify(vm.module(), m);
  for (const auto& p : profiles::all()) {
    if (p.tier != Tier::Optimizing) continue;
    const RCode rc =
        regir::compile(vm.module(), vm.module().method(m), p.flags);
    EXPECT_EQ(count_op(rc, ROp::VECLOOP), 0u) << p.name;
  }
}

// ---- near-miss negatives -------------------------------------------------

TEST(VecLower, CallInBodyDoesNotLower) {
  VirtualMachine vm;
  ILBuilder h(vm.module(), "v.neg_helper", {{ValType::I32}, ValType::I32});
  h.ldarg(0).ldc_i4(3).mul().ret();
  const auto hm = h.finish();
  ILBuilder b(vm.module(), "v.neg_call", {{ValType::I32}, ValType::I32});
  const auto a = b.add_local(ValType::Ref);
  const auto i = b.add_local(ValType::I32);
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldarg(0).newarr(ValType::I32).stloc(a);
  b.ldc_i4(0).stloc(i).br(cond);
  b.bind(top);
  b.ldloc(a).ldloc(i).ldloc(a).ldloc(i).ldelem(ValType::I32).call(hm)
      .stelem(ValType::I32);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(cond);
  b.ldloc(i).ldloc(a).ldlen().blt(top);
  b.ldc_i4(0).ret();
  const auto m = b.finish();
  // Inlining is off in this compile so the call survives into the loop body.
  EngineFlags f = vec_flags();
  f.inline_calls = false;
  const RCode rc = compile_with(vm, m, f);
  EXPECT_EQ(count_op(rc, ROp::VECLOOP), 0u);
}

TEST(VecLower, RefElementStoreDoesNotLower) {
  VirtualMachine vm;
  ILBuilder b(vm.module(), "v.neg_ref", {{ValType::I32}, ValType::I32});
  const auto a = b.add_local(ValType::Ref);
  const auto i = b.add_local(ValType::I32);
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldarg(0).newarr(ValType::Ref).stloc(a);
  b.ldc_i4(0).stloc(i).br(cond);
  b.bind(top);
  b.ldloc(a).ldloc(i).ldnull().stelem(ValType::Ref);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(cond);
  b.ldloc(i).ldloc(a).ldlen().blt(top);
  b.ldc_i4(0).ret();
  const auto m = b.finish();
  const RCode rc = compile_with(vm, m, vec_flags());
  EXPECT_EQ(count_op(rc, ROp::VECLOOP), 0u);
}

TEST(VecLower, NonUnitStrideDoesNotLower) {
  VirtualMachine vm;
  ILBuilder b(vm.module(), "v.neg_stride", {{ValType::I32}, ValType::F64});
  const auto a = b.add_local(ValType::Ref);
  const auto i = b.add_local(ValType::I32);
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldarg(0).newarr(ValType::F64).stloc(a);
  b.ldc_i4(0).stloc(i).br(cond);
  b.bind(top);
  b.ldloc(a).ldloc(i).ldloc(a).ldloc(i).ldelem(ValType::F64)
      .ldc_r8(1.5).mul().stelem(ValType::F64);
  b.ldloc(i).ldc_i4(2).add().stloc(i);  // i += 2
  b.bind(cond);
  b.ldloc(i).ldloc(a).ldlen().blt(top);
  b.ldc_r8(0.0).ret();
  const auto m = b.finish();
  const RCode rc = compile_with(vm, m, vec_flags());
  EXPECT_EQ(count_op(rc, ROp::VECLOOP), 0u);
}

TEST(VecLower, ShiftedStoreDoesNotLower) {
  VirtualMachine vm;
  // a[i+1] = a[i] * 1.5 — a loop-carried shift, not an element-wise map.
  ILBuilder b(vm.module(), "v.neg_shift", {{ValType::I32}, ValType::F64});
  const auto a = b.add_local(ValType::Ref);
  const auto i = b.add_local(ValType::I32);
  const auto bound = b.add_local(ValType::I32);
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldarg(0).newarr(ValType::F64).stloc(a);
  b.ldarg(0).ldc_i4(1).sub().stloc(bound);
  b.ldc_i4(0).stloc(i).br(cond);
  b.bind(top);
  b.ldloc(a).ldloc(i).ldc_i4(1).add();
  b.ldloc(a).ldloc(i).ldelem(ValType::F64).ldc_r8(1.5).mul();
  b.stelem(ValType::F64);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(cond);
  b.ldloc(i).ldloc(bound).blt(top);
  b.ldc_r8(0.0).ret();
  const auto m = b.finish();
  const RCode rc = compile_with(vm, m, vec_flags());
  EXPECT_EQ(count_op(rc, ROp::VECLOOP), 0u);
}

// ---- bit-identity across tiers ------------------------------------------

/// Fill + daxpy + map-add + map-scale + dot over arrays seeded with NaN and
/// ±Inf; returns the dot accumulator. Every engine must agree on raw bits.
std::int32_t build_f64_pipeline(Module& mod) {
  ILBuilder b(mod, "v.f64pipe", {{ValType::I32}, ValType::F64});
  const auto a = b.add_local(ValType::Ref);
  const auto c = b.add_local(ValType::Ref);
  const auto i = b.add_local(ValType::I32);
  const auto acc = b.add_local(ValType::F64);
  auto l0c = b.new_label();
  auto l0 = b.new_label();
  auto l1c = b.new_label();
  auto l1 = b.new_label();
  auto l2c = b.new_label();
  auto l2 = b.new_label();
  auto l3c = b.new_label();
  auto l3 = b.new_label();
  auto l4c = b.new_label();
  auto l4 = b.new_label();
  b.ldarg(0).newarr(ValType::F64).stloc(a);
  b.ldarg(0).newarr(ValType::F64).stloc(c);
  b.ldc_i4(0).stloc(i).br(l0c);
  b.bind(l0);
  b.ldloc(a).ldloc(i).ldloc(i).conv_r8().ldc_r8(0.5).mul().ldc_r8(-3.0)
      .add().stelem(ValType::F64);
  b.ldloc(c).ldloc(i).ldloc(i).conv_r8().ldc_r8(0.25).mul().ldc_r8(1.0)
      .add().stelem(ValType::F64);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(l0c);
  b.ldloc(i).ldloc(a).ldlen().blt(l0);
  // Plant specials (callers pass n >= 8).
  b.ldloc(a).ldc_i4(3)
      .ldc_r8(std::numeric_limits<double>::quiet_NaN()).stelem(ValType::F64);
  b.ldloc(a).ldc_i4(5)
      .ldc_r8(std::numeric_limits<double>::infinity()).stelem(ValType::F64);
  b.ldloc(c).ldc_i4(6)
      .ldc_r8(-std::numeric_limits<double>::infinity()).stelem(ValType::F64);
  // daxpy: a[i] += 2.5 * c[i].
  b.ldc_i4(0).stloc(i).br(l1c);
  b.bind(l1);
  b.ldloc(a).ldloc(i).ldloc(a).ldloc(i).ldelem(ValType::F64);
  b.ldc_r8(2.5).ldloc(c).ldloc(i).ldelem(ValType::F64).mul();
  b.add().stelem(ValType::F64);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(l1c);
  b.ldloc(i).ldloc(a).ldlen().blt(l1);
  // map-add: c[i] = c[i] + a[i].
  b.ldc_i4(0).stloc(i).br(l2c);
  b.bind(l2);
  b.ldloc(c).ldloc(i).ldloc(c).ldloc(i).ldelem(ValType::F64);
  b.ldloc(a).ldloc(i).ldelem(ValType::F64).add().stelem(ValType::F64);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(l2c);
  b.ldloc(i).ldloc(c).ldlen().blt(l2);
  // map-scale: a[i] = a[i] * 1.0625.
  b.ldc_i4(0).stloc(i).br(l3c);
  b.bind(l3);
  b.ldloc(a).ldloc(i).ldloc(a).ldloc(i).ldelem(ValType::F64)
      .ldc_r8(1.0625).mul().stelem(ValType::F64);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(l3c);
  b.ldloc(i).ldloc(a).ldlen().blt(l3);
  // dot: acc += a[i] * c[i].
  b.ldc_r8(0.0).stloc(acc);
  b.ldc_i4(0).stloc(i).br(l4c);
  b.bind(l4);
  b.ldloc(acc).ldloc(a).ldloc(i).ldelem(ValType::F64);
  b.ldloc(c).ldloc(i).ldelem(ValType::F64).mul().add().stloc(acc);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(l4c);
  b.ldloc(i).ldloc(a).ldlen().blt(l4);
  b.ldloc(acc).ret();
  return b.finish();
}

/// Runs `m` on the .vec optimizing engine and checks raw bits against the
/// three scalar tiers.
void expect_vec_matches_all(VMFixture& f, std::int32_t m,
                            std::vector<Slot> args) {
  const Slot want = f.run_all(m, args);
  auto vec_engine = make_engine(f.vm, profiles::vec(profiles::clr11()));
  VMContext& ctx = f.vm.main_context();
  ctx.engine = vec_engine.get();
  const Slot got = vec_engine->invoke(ctx, m, args);
  EXPECT_EQ(got.raw, want.raw);
}

TEST(VecExec, F64PipelineBitIdenticalWithNanAndInf) {
  VMFixture f;
  const auto m = build_f64_pipeline(f.vm.module());
  expect_vec_matches_all(f, m, {Slot::from_i32(64)});
  // Odd length: exercises the SIMD tail loop.
  expect_vec_matches_all(f, m, {Slot::from_i32(67)});
}

TEST(VecExec, I4PipelineWrapsIdentically) {
  VMFixture f;
  const auto m = build_i4_pipeline(f.vm.module());
  expect_vec_matches_all(f, m, {Slot::from_i32(257)});
}

TEST(VecExec, SorSweepBitIdentical) {
  VMFixture f;
  const auto m = build_sor_sweep(f.vm.module());
  expect_vec_matches_all(f, m, {Slot::from_i32(103)});
}

TEST(VecExec, ZeroAndOneTripLoops) {
  VMFixture f;
  const auto sum = build_sum_f64(f.vm.module());
  expect_vec_matches_all(f, sum, {Slot::from_i32(0)});
  expect_vec_matches_all(f, sum, {Slot::from_i32(1)});
}

/// try { for i in [0,m): a[i] += 2*c[i] over len-n arrays } catch
/// (IndexOutOfRange) { flag = -1 }; returns flag*1000 + i. When m > n the
/// VECLOOP span guard fails and the retained scalar loop must throw at
/// exactly i == n.
std::int32_t build_guard_fail(Module& mod) {
  ILBuilder b(mod, "v.guard", {{ValType::I32, ValType::I32}, ValType::I32});
  const auto a = b.add_local(ValType::Ref);
  const auto c = b.add_local(ValType::Ref);
  const auto i = b.add_local(ValType::I32);
  const auto flag = b.add_local(ValType::I32);
  auto t0 = b.new_label();
  auto t1 = b.new_label();
  auto h = b.new_label();
  auto out = b.new_label();
  auto head = b.new_label();
  auto done = b.new_label();
  b.ldarg(0).newarr(ValType::F64).stloc(a);
  b.ldarg(0).newarr(ValType::F64).stloc(c);
  b.ldc_i4(0).stloc(flag);
  b.ldc_i4(0).stloc(i);
  b.bind(t0);
  b.bind(head);
  b.ldloc(i).ldarg(1).bge(done);
  b.ldloc(a).ldloc(i).ldloc(a).ldloc(i).ldelem(ValType::F64);
  b.ldc_r8(2.0).ldloc(c).ldloc(i).ldelem(ValType::F64).mul();
  b.add().stelem(ValType::F64);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.br(head);
  b.bind(done);
  b.leave(out);
  b.bind(t1);
  b.add_catch(t0, t1, h, mod.index_range_class());
  b.bind(h);
  b.pop().ldc_i4(-1).stloc(flag).leave(out);
  b.bind(out);
  b.ldloc(flag).ldc_i4(1000).mul().ldloc(i).add().ret();
  return b.finish();
}

TEST(VecExec, GuardFailureFallsBackToScalarLoop) {
  VMFixture f;
  const auto m = build_guard_fail(f.vm.module());
  // In-bounds: the kernel runs, i ends at the limit.
  expect_vec_matches_all(f, m, {Slot::from_i32(8), Slot::from_i32(8)});
  // Bound past the array: guard fails, scalar loop throws at i == 8.
  expect_vec_matches_all(f, m, {Slot::from_i32(8), Slot::from_i32(10)});
}

/// Gather with a poisonable index: col[2] = arg1. An out-of-range gather
/// must abandon the kernel with no partial accumulator and re-throw from
/// the scalar loop at the exact element.
std::int32_t build_gather_poison(Module& mod) {
  ILBuilder b(mod, "v.gpoison", {{ValType::I32, ValType::I32}, ValType::F64});
  const auto x = b.add_local(ValType::Ref);
  const auto col = b.add_local(ValType::Ref);
  const auto val = b.add_local(ValType::Ref);
  const auto k = b.add_local(ValType::I32);
  const auto acc = b.add_local(ValType::F64);
  auto t0 = b.new_label();
  auto t1 = b.new_label();
  auto h = b.new_label();
  auto out = b.new_label();
  auto fcond = b.new_label();
  auto ftop = b.new_label();
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldarg(0).newarr(ValType::F64).stloc(x);
  b.ldc_i4(4).newarr(ValType::I32).stloc(col);
  b.ldc_i4(4).newarr(ValType::F64).stloc(val);
  b.ldc_i4(0).stloc(k).br(fcond);
  b.bind(ftop);
  b.ldloc(x).ldloc(k).ldloc(k).conv_r8().ldc_r8(0.75).mul()
      .stelem(ValType::F64);
  b.ldloc(k).ldc_i4(1).add().stloc(k);
  b.bind(fcond);
  b.ldloc(k).ldloc(x).ldlen().blt(ftop);
  b.ldloc(col).ldc_i4(0).ldc_i4(0).stelem(ValType::I32);
  b.ldloc(col).ldc_i4(1).ldarg(0).ldc_i4(1).sub().stelem(ValType::I32);
  b.ldloc(col).ldc_i4(2).ldarg(1).stelem(ValType::I32);
  b.ldloc(col).ldc_i4(3).ldc_i4(1).stelem(ValType::I32);
  b.ldloc(val).ldc_i4(0).ldc_r8(1.5).stelem(ValType::F64);
  b.ldloc(val).ldc_i4(1).ldc_r8(2.5).stelem(ValType::F64);
  b.ldloc(val).ldc_i4(2).ldc_r8(-0.5).stelem(ValType::F64);
  b.ldloc(val).ldc_i4(3).ldc_r8(4.0).stelem(ValType::F64);
  b.ldc_r8(0.0).stloc(acc);
  b.ldc_i4(0).stloc(k);
  b.bind(t0);
  b.bind(cond);
  b.ldloc(k).ldloc(val).ldlen().bge(out);
  b.bind(top);
  b.ldloc(acc);
  b.ldloc(x).ldloc(col).ldloc(k).ldelem(ValType::I32).ldelem(ValType::F64);
  b.ldloc(val).ldloc(k).ldelem(ValType::F64).mul();
  b.add().stloc(acc);
  b.ldloc(k).ldc_i4(1).add().stloc(k);
  b.br(cond);
  b.bind(t1);
  b.add_catch(t0, t1, h, mod.index_range_class());
  b.bind(h);
  b.pop().ldc_r8(-1.0).stloc(acc).leave(out);
  b.bind(out);
  b.ldloc(acc).ret();
  return b.finish();
}

TEST(VecExec, GatherOutOfRangeAbandonsAndRethrows) {
  VMFixture f;
  const auto m = build_gather_poison(f.vm.module());
  // Valid gather indices.
  expect_vec_matches_all(f, m, {Slot::from_i32(16), Slot::from_i32(2)});
  // col[2] out of range: the kernel abandons, the scalar loop throws.
  expect_vec_matches_all(f, m, {Slot::from_i32(16), Slot::from_i32(99)});
  expect_vec_matches_all(f, m, {Slot::from_i32(16), Slot::from_i32(-1)});
}

// ---- tiered warm-up ------------------------------------------------------

TEST(VecExec, TieredWarmupStaysBitIdentical) {
  VMFixture f;
  const auto m = build_f64_pipeline(f.vm.module());
  const Slot want = f.run_on(2, m, {Slot::from_i32(48)});
  auto engine =
      make_engine(f.vm, profiles::tiered(profiles::vec(profiles::clr11())));
  VMContext& ctx = f.vm.main_context();
  ctx.engine = engine.get();
  std::vector<Slot> args = {Slot::from_i32(48)};
  // Every invocation across the interp -> baseline -> opt(+vec) promotions
  // (including the OSR transitions mid-warm-up) must agree bit-for-bit.
  for (int round = 0; round < 80; ++round) {
    const Slot r = engine->invoke(ctx, m, args);
    EXPECT_EQ(r.raw, want.raw) << "round " << round;
  }
}

// ---- metered execution ---------------------------------------------------

/// reps outer iterations of a daxpy over 100-element arrays: the job burns
/// ~101 fuel per outer iteration whether or not the inner loop vectorizes.
std::int32_t build_metered_daxpy(Module& mod) {
  ILBuilder b(mod, "v.metered", {{ValType::I32}, ValType::F64});
  const auto y = b.add_local(ValType::Ref);
  const auto x = b.add_local(ValType::Ref);
  const auto i = b.add_local(ValType::I32);
  const auto r = b.add_local(ValType::I32);
  auto ocond = b.new_label();
  auto otop = b.new_label();
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldc_i4(100).newarr(ValType::F64).stloc(y);
  b.ldc_i4(100).newarr(ValType::F64).stloc(x);
  b.ldc_i4(0).stloc(r).br(ocond);
  b.bind(otop);
  b.ldc_i4(0).stloc(i).br(cond);
  b.bind(top);
  b.ldloc(y).ldloc(i).ldloc(y).ldloc(i).ldelem(ValType::F64);
  b.ldc_r8(0.5).ldloc(x).ldloc(i).ldelem(ValType::F64).mul();
  b.add().stelem(ValType::F64);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(cond);
  b.ldloc(i).ldloc(y).ldlen().blt(top);
  b.ldloc(r).ldc_i4(1).add().stloc(r);
  b.bind(ocond);
  b.ldloc(r).ldarg(0).blt(otop);
  b.ldloc(y).ldc_i4(0).ldelem(ValType::F64).ret();
  return b.finish();
}

TEST(VecExec, FuelKillIsDeterministicAndMatchesScalar) {
  constexpr std::uint64_t kFuel = 20'000;
  std::vector<std::uint64_t> spent;
  for (const char* prof : {"clr11", "clr11.vec"}) {
    VirtualMachine vm;
    const auto m = build_metered_daxpy(vm.module());
    verify(vm.module(), m);
    ExecutionService svc(vm, profiles::by_name(prof), {.workers = 1});
    svc.add_tenant({.name = "a", .fuel_per_job = kFuel});
    const JobResult r1 =
        svc.submit("a", m, {Slot::from_i32(1 << 20)}).wait();
    ASSERT_EQ(r1.outcome, JobOutcome::KilledFuel) << prof;
    EXPECT_GE(r1.fuel_spent, kFuel) << prof;
    EXPECT_LT(r1.fuel_spent, kFuel + kFuelPulseBackedges) << prof;
    const JobResult r2 =
        svc.submit("a", m, {Slot::from_i32(1 << 20)}).wait();
    ASSERT_EQ(r2.outcome, JobOutcome::KilledFuel) << prof;
    EXPECT_EQ(r1.fuel_spent, r2.fuel_spent) << prof;
    spent.push_back(r1.fuel_spent);
  }
  // Vectorized fuel accounting charges whole pulses at the same boundaries
  // the scalar loop would, so the kill point is profile-independent.
  EXPECT_EQ(spent[0], spent[1]);
}

}  // namespace
}  // namespace hpcnet::test

#include "paper_bench.hpp"

#include <iostream>
#include <memory>

namespace hpcnet::bench {

using vm::Slot;

cil::BenchContext& ctx() {
  static cil::BenchContext instance;
  return instance;
}

namespace {

support::ResultTable* capture = nullptr;

support::ResultTable& table() {
  static support::ResultTable t("results");
  return t;
}

/// Splits "row/engine" at the last '/'.
void record(const std::string& bench_name, double items_per_sec) {
  const auto cut = bench_name.rfind('/');
  if (cut == std::string::npos) return;
  table().set(bench_name.substr(0, cut), bench_name.substr(cut + 1),
              items_per_sec);
}

class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) {
        record(run.benchmark_name(), it->second.value);
      }
    }
    benchmark::ConsoleReporter::ReportRuns(reports);
  }
};

}  // namespace

support::ResultTable& capture_table() { return table(); }

void register_sized(const std::string& row, std::int32_t method,
                    double ops_per_iter, std::int32_t size) {
  for (auto& e : ctx().engines()) {
    vm::Engine* engine = e.get();
    benchmark::RegisterBenchmark(
        (row + "/" + engine->name()).c_str(),
        [method, ops_per_iter, size, engine](benchmark::State& st) {
          auto& c = ctx();
          for (auto _ : st) {
            benchmark::DoNotOptimize(
                c.invoke(*engine, method, {Slot::from_i32(size)}).raw);
          }
          st.counters["items_per_second"] = benchmark::Counter(
              static_cast<double>(st.iterations()) * size * ops_per_iter,
              benchmark::Counter::kIsRate);
        })
        ->MinTime(0.05)
        ->Unit(benchmark::kMillisecond);
  }
}

void register_sized2(const std::string& row, std::int32_t method,
                     double ops_per_iter, std::int32_t size,
                     std::int32_t arg2) {
  for (auto& e : ctx().engines()) {
    vm::Engine* engine = e.get();
    benchmark::RegisterBenchmark(
        (row + "/" + engine->name()).c_str(),
        [method, ops_per_iter, size, arg2, engine](benchmark::State& st) {
          auto& c = ctx();
          for (auto _ : st) {
            benchmark::DoNotOptimize(
                c.invoke(*engine, method,
                         {Slot::from_i32(size), Slot::from_i32(arg2)})
                    .raw);
          }
          st.counters["items_per_second"] = benchmark::Counter(
              static_cast<double>(st.iterations()) * size * ops_per_iter,
              benchmark::Counter::kIsRate);
        })
        ->MinTime(0.05)
        ->Unit(benchmark::kMillisecond);
  }
}

void register_custom(const std::string& row,
                     std::function<void(vm::Engine&)> invoke_once,
                     double items_per_invoke) {
  for (auto& e : ctx().engines()) {
    vm::Engine* engine = e.get();
    benchmark::RegisterBenchmark(
        (row + "/" + engine->name()).c_str(),
        [invoke_once, items_per_invoke, engine](benchmark::State& st) {
          for (auto _ : st) invoke_once(*engine);
          st.counters["items_per_second"] = benchmark::Counter(
              static_cast<double>(st.iterations()) * items_per_invoke,
              benchmark::Counter::kIsRate);
        })
        ->MinTime(0.05)
        ->Unit(benchmark::kMillisecond);
  }
}

void register_native(const std::string& row,
                     std::function<void(std::int32_t)> fn,
                     double ops_per_iter, std::int32_t size) {
  benchmark::RegisterBenchmark(
      (row + "/native").c_str(),
      [fn = std::move(fn), ops_per_iter, size](benchmark::State& st) {
        for (auto _ : st) fn(size);
        st.counters["items_per_second"] = benchmark::Counter(
            static_cast<double>(st.iterations()) * size * ops_per_iter,
            benchmark::Counter::kIsRate);
      })
      ->MinTime(0.05)
      ->Unit(benchmark::kMillisecond);
}

int run_main(int argc, char** argv, const std::string& title,
             const std::string& unit) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::cout << "\n";
  support::ResultTable out = table();
  // Re-title for the paper-style print.
  support::ResultTable titled(title + " (" + unit + ")");
  for (const auto& r : out.rows()) {
    for (const auto& c : out.columns()) {
      if (out.has(r, c)) titled.set(r, c, out.get(r, c));
    }
  }
  titled.print(std::cout);
  (void)capture;
  return 0;
}

}  // namespace hpcnet::bench

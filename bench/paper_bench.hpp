// Shared glue for the bench binaries: registers one google-benchmark entry
// per (benchmark row, engine profile), captures the measured throughput, and
// after the run prints the results in the paper's layout — one row per
// operation, one column per virtual machine (plus native where applicable),
// in the scientific notation of the paper's graph axes.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <string>

#include "cil/suite.hpp"
#include "support/reporter.hpp"

namespace hpcnet::bench {

/// Process-wide context: one VM with all programs, one engine per profile.
cil::BenchContext& ctx();

/// Registers `row` for every engine profile. The benchmark invokes
/// `method(size)` per iteration and reports size * ops_per_iter items/sec
/// (== the paper's ops/sec axis).
void register_sized(const std::string& row, std::int32_t method,
                    double ops_per_iter, std::int32_t size);

/// As register_sized but with two i32 arguments (size is the first).
void register_sized2(const std::string& row, std::int32_t method,
                     double ops_per_iter, std::int32_t size,
                     std::int32_t arg2);

/// Registers `row` for every engine with a caller-supplied invocation (for
/// methods whose signature or work accounting doesn't fit register_sized).
/// `invoke_once` runs one timed unit on the engine; `items_per_invoke` is
/// the operation count of that unit.
void register_custom(const std::string& row,
                     std::function<void(vm::Engine&)> invoke_once,
                     double items_per_invoke);

/// Registers a native (C++) baseline column for `row`; `fn(size)` must
/// perform size iterations of the measured operation.
void register_native(const std::string& row,
                     std::function<void(std::int32_t)> fn,
                     double ops_per_iter, std::int32_t size);

/// Runs google-benchmark, then prints the captured paper-style table titled
/// `title`. Returns the process exit code.
int run_main(int argc, char** argv, const std::string& title,
             const std::string& unit = "ops/sec");

/// Access to the capture table for benches that add rows manually (e.g.
/// SciMark MFlops measured outside google-benchmark).
support::ResultTable& capture_table();

}  // namespace hpcnet::bench

// Table 2 (barrier, fork-join, synchronization) and the Thread/Lock rows of
// Table 3. Barrier rows report barrier crossings/sec, ForkJoin reports
// threads created+joined/sec, Sync reports contended lock acquisitions/sec.
#include <thread>

#include "cil/micro.hpp"
#include "cil/mt.hpp"
#include "cil/sm.hpp"
#include "paper_bench.hpp"

namespace {

using namespace hpcnet;
using namespace hpcnet::bench;
using vm::Slot;

}  // namespace

int main(int argc, char** argv) {
  auto& v = ctx().vm();
  const auto forkjoin = cil::build_mt_forkjoin(v);
  const auto sync = cil::build_mt_sync(v);
  const auto simple = cil::build_mt_barrier_simple(v);
  const auto tournament = cil::build_mt_barrier_tournament(v);

  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const std::vector<int> counts = hw >= 4 ? std::vector<int>{2, 4}
                                          : std::vector<int>{2};

  for (int n : counts) {
    const std::string suffix = ":" + std::to_string(n) + "t";
    register_custom(
        "ForkJoin" + suffix,
        [forkjoin, n](vm::Engine& e) {
          ctx().invoke(e, forkjoin, {Slot::from_i32(n)});
        },
        n);
    constexpr std::int32_t kSyncIters = 2000;
    register_custom(
        "Sync" + suffix,
        [sync, n](vm::Engine& e) {
          ctx().invoke(e, sync, {Slot::from_i32(n), Slot::from_i32(kSyncIters)});
        },
        static_cast<double>(n) * kSyncIters);
    constexpr std::int32_t kBarrierIters = 500;
    register_custom(
        "Barrier-Simple" + suffix,
        [simple, n](vm::Engine& e) {
          ctx().invoke(e, simple,
                       {Slot::from_i32(n), Slot::from_i32(kBarrierIters)});
        },
        kBarrierIters);
    register_custom(
        "Barrier-Tournament" + suffix,
        [tournament, n](vm::Engine& e) {
          ctx().invoke(e, tournament,
                       {Slot::from_i32(n), Slot::from_i32(kBarrierIters)});
        },
        kBarrierIters);
  }

  // Future work (paper §6): shared-memory parallel red-black SOR.
  const auto psor = cil::build_sm_psor(v);
  for (int n : counts) {
    constexpr std::int32_t kPsorN = 64;
    constexpr std::int32_t kPsorIters = 8;
    register_custom(
        "ParallelSOR:" + std::to_string(n) + "t",
        [psor, n](vm::Engine& e) {
          ctx().invoke(e, psor,
                       {Slot::from_i32(kPsorN), Slot::from_i32(kPsorIters),
                        Slot::from_i32(n)});
        },
        // grid-cell updates per invoke
        static_cast<double>(kPsorN - 2) * (kPsorN - 2) * kPsorIters);
  }

  // Table 3: thread startup (1-thread fork-join) and uncontended locking.
  register_custom(
      "Thread-Startup",
      [forkjoin](vm::Engine& e) {
        ctx().invoke(e, forkjoin, {Slot::from_i32(1)});
      },
      1);
  register_sized("Lock-Uncontended", cil::build_lock_uncontended(v), 1,
                 1 << 13);

  return run_main(argc, argv,
                  "Table 2/3: barrier, fork-join, synchronization, locks");
}

// §5 pass attribution: how much of the optimizing tier's advantage comes
// from each JIT pass. The clr11 flag set is re-run with inlining, CSE and
// LICM toggled individually (and all off / all on), plus the vector tier's
// VECLOOP lowering alone and on top of the full set, over the benchmarks
// each pass targets: the method-call micro (inlining), Fibonacci (recursive
// inlining), and the SciMark SOR / SparseMatmul / MonteCarlo kernels
// (CSE + LICM on array-heavy loops). Scores are best-of-5 work-units/sec,
// the noise-robust protocol bench_bce uses.
//
//   bench_passes [--quick]
#include <algorithm>
#include <cstring>
#include <iostream>

#include "cil/jg.hpp"
#include "cil/micro.hpp"
#include "cil/sm.hpp"
#include "cil/suite.hpp"
#include "kernels/jgf.hpp"
#include "support/reporter.hpp"
#include "support/timer.hpp"

namespace {

using namespace hpcnet;
using vm::Slot;

struct Variant {
  const char* name;
  vm::EngineFlags flags;
};

std::vector<Variant> variants() {
  vm::EngineFlags base = vm::profiles::clr11().flags;
  base.inline_calls = false;
  base.cse = false;
  base.licm = false;
  std::vector<Variant> out;
  out.push_back({"passes off", base});
  vm::EngineFlags f = base;
  f.inline_calls = true;
  f.inline_max_il = 64;
  out.push_back({"+inline", f});
  f = base;
  f.cse = true;
  out.push_back({"+cse", f});
  f = base;
  f.licm = true;
  out.push_back({"+licm", f});
  f = base;
  f.vectorize = true;
  out.push_back({"+vec", f});
  out.push_back({"all on (clr11)", vm::profiles::clr11().flags});
  out.push_back(
      {"all on +vec (clr11.vec)", vm::profiles::vec(vm::profiles::clr11()).flags});
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hpcnet::cil;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      std::cerr << "usage: bench_passes [--quick]\n";
      return 1;
    }
  }

  BenchContext bc;
  auto& v = bc.vm();

  struct Row {
    const char* name;
    std::int32_t method;
    std::vector<Slot> args;
    double work;
  };
  const std::int32_t call_iters = quick ? 200000 : 2000000;
  const std::int32_t fib_n = quick ? 18 : 24;
  const ScimarkSizes sz =
      quick ? ScimarkSizes::test_model() : ScimarkSizes::small_model();
  const std::vector<Row> rows = {
      {"Method static(args)", build_method_static_args(v),
       {Slot::from_i32(call_iters)}, static_cast<double>(call_iters)},
      {"Fibonacci", build_jg_fib(v), {Slot::from_i32(fib_n)},
       kernels::fib::num_calls(fib_n)},
      {"SOR", build_sm_sor(v),
       {Slot::from_i32(sz.sor_n), Slot::from_i32(sz.sor_iters)},
       6.0 * (sz.sor_n - 1) * (sz.sor_n - 1) * sz.sor_iters},
      {"SparseMatmul", build_sm_sparse(v),
       {Slot::from_i32(sz.sparse_n), Slot::from_i32(sz.sparse_nz),
        Slot::from_i32(sz.sparse_iters)},
       2.0 * sz.sparse_nz * sz.sparse_iters},
      {"MonteCarlo", build_sm_montecarlo(v),
       {Slot::from_i32(sz.mc_samples)}, 4.0 * sz.mc_samples},
  };

  support::ResultTable t(
      "JIT pass attribution, clr11 flag set [work units/sec, best of 5]");
  vm::VMContext& ctx = v.main_context();
  for (const Variant& var : variants()) {
    vm::EngineProfile p;
    p.name = var.name;
    p.tier = vm::Tier::Optimizing;
    p.flags = var.flags;
    auto engine = vm::make_engine(v, p);
    ctx.engine = engine.get();
    for (const Row& r : rows) {
      // Warm-up (compiles under this flag set), then best-of-5.
      engine->invoke(ctx, r.method,
                     std::span<const Slot>(r.args.data(), r.args.size()));
      double best = 0;
      for (int rep = 0; rep < 5; ++rep) {
        const auto t0 = support::now_ns();
        engine->invoke(ctx, r.method,
                       std::span<const Slot>(r.args.data(), r.args.size()));
        const double secs =
            support::elapsed_seconds(t0, support::now_ns());
        best = std::max(best, r.work / secs);
      }
      t.set(r.name, var.name, best);
    }
  }
  ctx.engine = nullptr;

  t.print(std::cout);
  std::cout << "\n";
  t.normalized_to("passes off", "Speedup over passes-off")
      .print(std::cout);
  return 0;
}

// §5: array bounds-check elimination. The paper reports >= 15% improvement
// on the sparse matmul kernel when the loop bound is array.Length (letting
// the CLR 1.1 JIT hoist the per-element checks). We isolate the effect with
// two identical daxpy loops — one ldlen-bounded (BCE-eligible), one bounded
// by a separate local — across a BCE-on profile (clr11) and a BCE-off
// profile (bea81).
#include <algorithm>
#include <iostream>

#include "cil/sm.hpp"
#include "cil/suite.hpp"
#include "support/reporter.hpp"
#include "support/timer.hpp"

int main() {
  using namespace hpcnet;
  using namespace hpcnet::cil;
  using vm::Slot;

  BenchContext bc;
  auto& v = bc.vm();
  const auto ldlen = build_bce_daxpy_ldlen(v);
  const auto var = build_bce_daxpy_var(v);

  constexpr std::int32_t kN = 4096;
  constexpr std::int32_t kReps = 2000;

  auto mflops = [&](vm::Engine& e, std::int32_t m) {
    // Warm-up compile, then best-of-3 (the paper inspects repeated runs for
    // outliers; best-of-N is the noise-robust equivalent for a rate).
    bc.invoke(e, m, {Slot::from_i32(64), Slot::from_i32(2)});
    double best = 0;
    for (int rep = 0; rep < 3; ++rep) {
      const auto t0 = support::now_ns();
      bc.invoke(e, m, {Slot::from_i32(kN), Slot::from_i32(kReps)});
      const double secs = support::elapsed_seconds(t0, support::now_ns());
      best = std::max(best, 2.0 * kN * kReps / secs * 1e-6);
    }
    return best;
  };

  support::ResultTable t("daxpy MFlops: ldlen-bounded vs variable-bounded");
  for (auto& e : bc.engines()) {
    t.set("bound = arr.Length", e->name(), mflops(*e, ldlen));
    t.set("bound = local var", e->name(), mflops(*e, var));
  }
  t.print(std::cout);

  const double on_len = t.get("bound = arr.Length", "clr11");
  const double on_var = t.get("bound = local var", "clr11");
  const double off_len = t.get("bound = arr.Length", "bea81");
  const double off_var = t.get("bound = local var", "bea81");
  std::cout << "\nclr11 (BCE on):  .Length form is "
            << (on_len / on_var - 1) * 100
            << "% faster than the variable form (paper: >= 15%).\n";
  std::cout << "bea81 (BCE off): .Length form is "
            << (off_len / off_var - 1) * 100
            << "% faster (expected ~0%).\n";
  return 0;
}

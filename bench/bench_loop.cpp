// Graph 4: loop overheads (for / reverse-for / while).
#include "cil/micro.hpp"
#include "paper_bench.hpp"

namespace {

using namespace hpcnet;
using namespace hpcnet::bench;

constexpr std::int32_t kSize = 1 << 18;

void native_for(std::int32_t size) {
  std::int32_t i = 0;
  for (; i < size; ++i) {
    benchmark::DoNotOptimize(i);
  }
}
void native_reverse(std::int32_t size) {
  std::int32_t i = size;
  for (; i > 0; --i) {
    benchmark::DoNotOptimize(i);
  }
}
void native_while(std::int32_t size) {
  std::int32_t i = 0;
  while (i < size) {
    ++i;
    benchmark::DoNotOptimize(i);
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto& v = ctx().vm();
  register_sized("For", cil::build_loop_for(v), 1, kSize);
  register_native("For", native_for, 1, kSize);
  register_sized("ReverseFor", cil::build_loop_reverse_for(v), 1, kSize);
  register_native("ReverseFor", native_reverse, 1, kSize);
  register_sized("While", cil::build_loop_while(v), 1, kSize);
  register_native("While", native_while, 1, kSize);
  return run_main(argc, argv, "Graph 4: loop performance");
}

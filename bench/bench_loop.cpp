// Graph 4: loop overheads (for / reverse-for / while), plus a fuel-metered
// variant of the For row: same loop with a per-job fuel budget armed (large
// enough that it never fires), so the delta is the cost of the metering
// itself. The fuel pulse shares the interpreter's existing back-edge counter
// (DESIGN.md §11); a hand-timed interpreter comparison prints a greppable
// "interp-fuel-overhead-pct:" line that CI asserts stays under 2%.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <span>

#include "cil/micro.hpp"
#include "paper_bench.hpp"

namespace {

using namespace hpcnet;
using namespace hpcnet::bench;

constexpr std::int32_t kSize = 1 << 18;

void native_for(std::int32_t size) {
  std::int32_t i = 0;
  for (; i < size; ++i) {
    benchmark::DoNotOptimize(i);
  }
}
void native_reverse(std::int32_t size) {
  std::int32_t i = size;
  for (; i > 0; --i) {
    benchmark::DoNotOptimize(i);
  }
}
void native_while(std::int32_t size) {
  std::int32_t i = 0;
  while (i < size) {
    ++i;
    benchmark::DoNotOptimize(i);
  }
}

}  // namespace

int main(int argc, char** argv) {
  auto& v = ctx().vm();
  const std::int32_t loop_for = cil::build_loop_for(v);
  register_sized("For", loop_for, 1, kSize);
  register_native("For", native_for, 1, kSize);
  {
    const std::int32_t method = loop_for;
    register_custom(
        "ForFuelMetered",
        [method](vm::Engine& e) {
          vm::VMContext& vc = ctx().vm().main_context();
          vc.fuel.active = true;
          vc.fuel.remaining = std::int64_t{1} << 60;
          const vm::Slot arg = vm::Slot::from_i32(kSize);
          benchmark::DoNotOptimize(
              e.invoke(vc, method, std::span<const vm::Slot>(&arg, 1)).raw);
          vc.fuel = vm::FuelMeter{};
        },
        kSize);
  }
  register_sized("ReverseFor", cil::build_loop_reverse_for(v), 1, kSize);
  register_native("ReverseFor", native_reverse, 1, kSize);
  register_sized("While", cil::build_loop_while(v), 1, kSize);
  register_native("While", native_while, 1, kSize);

  // Hand-timed satellite check (deliberately not google-benchmark, so the
  // output format is stable for CI): arming a fuel budget on the pure
  // interpreter must be within noise of the unmetered loop — the pulse
  // rides the back-edge counter the dispatch loop already maintains.
  {
    vm::Engine& interp = ctx().engine("rotor10");
    vm::VMContext& vc = ctx().vm().main_context();
    const vm::Slot arg = vm::Slot::from_i32(kSize);
    const std::span<const vm::Slot> args(&arg, 1);
    auto time_once = [&](bool fuel) {
      const auto t0 = std::chrono::steady_clock::now();
      for (int i = 0; i < 8; ++i) {
        if (fuel) {
          vc.fuel.active = true;
          vc.fuel.remaining = std::int64_t{1} << 60;
        }
        interp.invoke(vc, loop_for, args);
        vc.fuel = vm::FuelMeter{};
      }
      return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
          .count();
    };
    time_once(false);  // warmup
    // Interleave the two variants so frequency/scheduler drift hits both
    // equally; best-of-8 discards preempted trials.
    double plain = 1e300;
    double metered = 1e300;
    for (int trial = 0; trial < 8; ++trial) {
      plain = std::min(plain, time_once(false));
      metered = std::min(metered, time_once(true));
    }
    std::printf("interp-fuel-overhead-pct: %.3f\n",
                (metered / plain - 1.0) * 100.0);
  }
  return run_main(argc, argv, "Graph 4: loop performance");
}

// Allocation scaling: does object/array creation scale with threads?
//
// Three tables:
//  1. Direct-heap scaling — native threads allocating straight through
//     Heap::alloc_array, comparing the per-thread TLAB bump path against the
//     heap-shared buffer (one lock acquisition per allocation, the pre-TLAB
//     behaviour). This isolates the allocator itself from engine overhead
//     and is the acceptance gauge for the segmented-heap work: the TLAB
//     column must keep scaling where the lock column flatlines.
//  2. Table-1-style creation throughput per engine — managed fork-join
//     workers (create.mt.* programs) allocating instances, 1-D arrays,
//     rank-2 matrices and boxes at 1/2/4/8 threads, reported as
//     allocations/sec. GC runs at the normal threshold mid-benchmark, as in
//     the paper's Create rows.
//  3. GC scaling — the acceptance gauge for the generational/parallel
//     collector: minor-pause p50 as the live old generation grows ~4x per
//     step (the card scan's clean-segment skip must keep it flat), and
//     full-collection wall time at 1/2/4/8 GC worker threads over the same
//     live heap (mark+sweep must speed up with workers).
//
//   bench_alloc [--quick] [--json FILE]
//
// --quick shrinks iteration counts and the engine list (CI smoke runs);
// --json writes the tables as a JSON array via ResultTable::print_json.
#include <algorithm>
#include <atomic>
#include <cstring>
#include <fstream>
#include <iostream>
#include <thread>
#include <vector>

#include "cil/micro.hpp"
#include "cil/suite.hpp"
#include "support/reporter.hpp"
#include "support/timer.hpp"
#include "vm/telemetry/telemetry.hpp"

namespace {

using namespace hpcnet;
using vm::Slot;

/// One direct-heap run: nthreads attached native threads each allocate
/// `per_thread` 16-element f64 arrays, through their own TLAB when
/// `use_tlab`, else through the heap-shared buffer under the lock. Returns
/// allocations/sec over the parallel phase.
double run_direct(vm::VirtualMachine& v, int nthreads, bool use_tlab,
                  std::int32_t per_thread) {
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(nthreads));
  std::atomic<std::int64_t> begin_ns{0};
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&] {
      auto ctx = v.attach_thread(nullptr);
      ready.fetch_add(1, std::memory_order_release);
      while (!go.load(std::memory_order_acquire)) {
        v.safepoint_poll(*ctx);
        std::this_thread::yield();
      }
      vm::Tlab* tlab = use_tlab ? &ctx->tlab : nullptr;
      for (std::int32_t i = 0; i < per_thread; ++i) {
        v.heap().alloc_array(vm::ValType::F64, 16, tlab);
        if ((i & 1023) == 0) v.safepoint_poll(*ctx);
      }
      v.detach_thread(*ctx);
    });
  }
  while (ready.load(std::memory_order_acquire) < nthreads) {
    std::this_thread::yield();
  }
  begin_ns.store(support::now_ns(), std::memory_order_relaxed);
  go.store(true, std::memory_order_release);
  for (auto& th : threads) th.join();
  const double secs = support::elapsed_seconds(
      begin_ns.load(std::memory_order_relaxed), support::now_ns());
  return static_cast<double>(nthreads) * per_thread / secs;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_alloc [--quick] [--json FILE]\n";
      return 1;
    }
  }

  const std::vector<int> thread_counts{1, 2, 4, 8};
  cil::BenchContext bc;
  auto& v = bc.vm();

  // ---- Table A: direct heap, TLAB vs shared-lock path ---------------------
  // A large budget keeps the collector out of the measured window; the dead
  // window is swept between configurations.
  support::ResultTable direct(
      "allocation scaling: direct heap [allocs/sec], TLAB vs global lock");
  {
    const std::int32_t per_thread = quick ? 100000 : 400000;
    v.heap().set_threshold(1u << 30);
    for (int n : thread_counts) {
      const std::string row = std::to_string(n) + " threads";
      // Warm-up pass, then the measured pass, for each mode.
      for (bool use_tlab : {false, true}) {
        run_direct(v, n, use_tlab, per_thread / 4);
        v.collect();
        const double rate = run_direct(v, n, use_tlab, per_thread);
        direct.set(row, use_tlab ? "tlab" : "global-lock", rate);
        v.collect();
      }
    }
    for (int n : thread_counts) {
      const std::string row = std::to_string(n) + " threads";
      direct.set(row, "tlab/global-lock",
                 direct.get(row, "tlab") / direct.get(row, "global-lock"));
    }
    v.heap().set_threshold(64u << 20);
  }

  // ---- Table B: per-engine managed creation at 1..8 threads ---------------
  const std::vector<std::string> kinds{"object", "array", "matrix", "box"};
  std::vector<std::int32_t> methods;
  for (const auto& k : kinds) methods.push_back(cil::build_create_mt(v, k));

  support::ResultTable engines_t(
      "allocation scaling: managed creation [allocs/sec] (Table-1 style)");
  {
    const std::int32_t iters = quick ? 20000 : 200000;
    for (auto& e : bc.engines()) {
      // Quick mode exercises the tier extremes only (the paper's JIT vs
      // interpreter contrast); full mode runs every profile.
      if (quick && e->name() != "clr11" && e->name() != "rotor10") continue;
      std::cerr << "running creation benchmarks on " << e->name() << "...\n";
      for (std::size_t k = 0; k < kinds.size(); ++k) {
        // Warm-up: compiles driver + worker on this engine outside the
        // timed region.
        bc.invoke(*e, methods[k], {Slot::from_i32(1), Slot::from_i32(1000)});
        for (int n : thread_counts) {
          // Per-thread work shrinks with the thread count so each cell does
          // the same total number of allocations; collecting first keeps the
          // number of in-cell GCs the same for every cell.
          const std::int32_t per_thread = iters / n;
          v.collect();
          const std::int64_t t0 = support::now_ns();
          const Slot r = bc.invoke(
              *e, methods[k], {Slot::from_i32(n), Slot::from_i32(per_thread)});
          const double secs =
              support::elapsed_seconds(t0, support::now_ns());
          if (r.i32 != n) {
            std::cerr << "worker census mismatch on " << e->name() << "/"
                      << kinds[k] << ": " << r.i32 << " != " << n << "\n";
            return 1;
          }
          engines_t.set(kinds[k] + ":" + std::to_string(n) + "t", e->name(),
                        static_cast<double>(n) * per_thread / secs);
        }
      }
    }
  }

  // ---- Table C: GC scaling — flat minors, parallel majors -----------------
  support::ResultTable gct("gc scaling: minor pauses vs old gen, major at "
                           "1..8 GC threads [ms]");
  {
    auto& heap = v.heap();
    heap.set_threshold(1u << 30);  // explicit collections only
    heap.set_gc_threads(1);

    // Live old generation: chains of small ref arrays (mark-heavy: every
    // link is a pointer hop) each carrying an f64 payload (sweep-heavy).
    // Only chain heads are pinned; a major after each growth step promotes
    // the lot.
    std::vector<vm::ObjRef> roots;
    auto grow_old = [&](int chains, int links) {
      for (int c = 0; c < chains; ++c) {
        vm::ObjRef head = v.heap().alloc_array(vm::ValType::Ref, 4);
        v.pin(head);
        roots.push_back(head);
        vm::ObjRef cur = head;
        for (int l = 0; l < links; ++l) {
          vm::ObjRef next = v.heap().alloc_array(vm::ValType::Ref, 4);
          vm::ObjRef payload = v.heap().alloc_array(vm::ValType::F64, 16);
          cur->ref_data()[0] = next;
          cur->ref_data()[1] = payload;
          vm::gc_write_barrier(cur);
          cur = next;
        }
      }
      v.collect();  // promote everything just built
    };
    // Median minor pause over `reps` cycles of ~2000 young garbage arrays.
    auto minor_p50_ms = [&](int reps) {
      std::vector<double> t;
      for (int r = 0; r < reps; ++r) {
        for (int i = 0; i < 2000; ++i) {
          v.heap().alloc_array(vm::ValType::F64, 16);
        }
        const std::int64_t t0 = support::now_ns();
        v.collect(vm::GcKind::Minor);
        t.push_back(support::elapsed_seconds(t0, support::now_ns()) * 1e3);
      }
      std::sort(t.begin(), t.end());
      return t[t.size() / 2];
    };

    const int links = quick ? 300 : 1500;
    const int chains = quick ? 12 : 24;
    const int reps = quick ? 7 : 15;
    int grown = 0;
    for (const int target : {1, 4, 16}) {  // old-gen size multiplier
      grow_old((target - grown) * chains, links);
      grown = target;
      const std::string row = "minor:old=" + std::to_string(target) + "x";
      gct.set(row, "p50_ms", minor_p50_ms(reps));
      gct.set(row, "old_mb",
              static_cast<double>(v.heap().stats().old_bytes) /
                  (1024.0 * 1024.0));
    }

    // Parallel major over the full 16x live heap: best-of-3 per width.
    double serial_ms = 0.0;
    for (int n : thread_counts) {
      heap.set_gc_threads(n);
      double best = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        const std::int64_t t0 = support::now_ns();
        v.collect();
        const double ms =
            support::elapsed_seconds(t0, support::now_ns()) * 1e3;
        if (rep == 0 || ms < best) best = ms;
      }
      const std::string row = "major:" + std::to_string(n) + "t";
      gct.set(row, "p50_ms", best);
      if (n == 1) serial_ms = best;
      gct.set(row, "speedup_vs_1t", serial_ms / best);
    }

    heap.set_gc_threads(1);
    for (vm::ObjRef r : roots) v.unpin(r);
    v.collect();
    v.heap().set_threshold(64u << 20);
  }

  direct.print(std::cout);
  std::cout << "\n";
  engines_t.print(std::cout);
  std::cout << "\n";
  gct.print(std::cout);

  // TLAB housekeeping counters, for the waste accounting in EXPERIMENTS.md.
  if (vm::telemetry::enabled()) {
    const auto snap = vm::telemetry::snapshot();
    const auto c = [&](vm::telemetry::Counter ctr) {
      return static_cast<unsigned long long>(snap.counter(ctr));
    };
    std::cout << "\ntlab refills: " << c(vm::telemetry::Counter::TlabRefills)
              << ", waste bytes: "
              << c(vm::telemetry::Counter::TlabWasteBytes)
              << ", large allocs: "
              << c(vm::telemetry::Counter::LargeAllocs) << ", allocations: "
              << c(vm::telemetry::Counter::Allocations) << ", bytes: "
              << c(vm::telemetry::Counter::BytesAllocated) << "\n";
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << "[";
    direct.print_json(out);
    out << ",\n";
    engines_t.print_json(out);
    out << ",\n";
    gct.print_json(out);
    out << "]\n";
    std::cout << "JSON written to " << json_path << "\n";
  }
  return 0;
}

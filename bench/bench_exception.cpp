// Graph 5: exception handling — rethrowing an existing object ("Throw"),
// constructing a new exception per iteration ("New"), and an exception
// raised one call level down ("Method"). The paper's headline here: every
// CLI engine pays far more per exception than the JVMs (cheap_exceptions
// profiles model the JVM side).
#include <stdexcept>

#include "cil/micro.hpp"
#include "paper_bench.hpp"

namespace {

using namespace hpcnet;
using namespace hpcnet::bench;

constexpr std::int32_t kSize = 1 << 12;

void native_throw_catch(std::int32_t size) {
  int count = 0;
  for (std::int32_t i = 0; i < size; ++i) {
    try {
      throw std::runtime_error("x");
    } catch (const std::runtime_error&) {
      ++count;
    }
  }
  benchmark::DoNotOptimize(count);
}

}  // namespace

int main(int argc, char** argv) {
  auto& v = ctx().vm();
  register_sized("Throw", cil::build_exception_throw(v), 1, kSize);
  register_sized("New", cil::build_exception_new(v), 1, kSize);
  register_sized("Method", cil::build_exception_method(v), 1, kSize);
  register_native("New", native_throw_catch, 1, kSize);
  return run_main(argc, argv, "Graph 5: exception handling");
}

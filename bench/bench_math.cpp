// Graphs 6-8: the System.Math routine set, one row per routine with the
// paper's row names. The fast_math profiles (clr11, jsharp11) inline these
// into the register IR — the "CLR Math library is faster" observation.
#include "cil/micro.hpp"
#include "paper_bench.hpp"
#include "vm/intrinsics.hpp"

namespace {

using namespace hpcnet;
using namespace hpcnet::bench;

constexpr std::int32_t kSize = 1 << 15;

struct RowDef {
  const char* row;
  std::int32_t intr;
};

// Row names follow the paper's graphs 6-8 labels.
constexpr RowDef kRows[] = {
    {"AbsInt", vm::I_ABS_I4},       {"AbsLong", vm::I_ABS_I8},
    {"AbsFloat", vm::I_ABS_R4},     {"AbsDouble", vm::I_ABS_R8},
    {"MaxInt", vm::I_MAX_I4},       {"MaxLong", vm::I_MAX_I8},
    {"MaxFloat", vm::I_MAX_R4},     {"MaxDouble", vm::I_MAX_R8},
    {"MinInt", vm::I_MIN_I4},       {"MinLong", vm::I_MIN_I8},
    {"MinFloat", vm::I_MIN_R4},     {"MinDouble", vm::I_MIN_R8},
    {"SinDouble", vm::I_SIN},       {"CosDouble", vm::I_COS},
    {"TanDouble", vm::I_TAN},       {"AsinDouble", vm::I_ASIN},
    {"AcosDouble", vm::I_ACOS},     {"AtanDouble", vm::I_ATAN},
    {"Atan2Double", vm::I_ATAN2},   {"FloorDouble", vm::I_FLOOR},
    {"CeilDouble", vm::I_CEIL},     {"SqrtDouble", vm::I_SQRT},
    {"ExpDouble", vm::I_EXP},       {"LogDouble", vm::I_LOG},
    {"PowDouble", vm::I_POW},       {"RintDouble", vm::I_RINT},
    {"Random", vm::I_RANDOM},       {"RoundFloat", vm::I_ROUND_R4},
    {"RoundDouble", vm::I_ROUND_R8},
};

}  // namespace

int main(int argc, char** argv) {
  auto& v = ctx().vm();
  for (const RowDef& r : kRows) {
    register_sized(r.row, cil::build_math_call(v, r.intr), 1, kSize);
  }
  return run_main(argc, argv, "Graphs 6-8: Math library routines",
                  "calls/sec");
}

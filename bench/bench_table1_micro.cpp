// Table 1 micro-benchmarks not covered by dedicated graph binaries:
// Assign (variable kinds), Cast (primitive conversions), Create (objects and
// arrays), Method (call kinds) and Serial (object-graph serialization).
#include "cil/micro.hpp"
#include "paper_bench.hpp"

namespace {

using namespace hpcnet;
using namespace hpcnet::bench;
using vm::Slot;

constexpr std::int32_t kSize = 1 << 16;

}  // namespace

int main(int argc, char** argv) {
  auto& v = ctx().vm();

  register_sized("Assign-Local", cil::build_assign_local(v), 4, kSize);
  register_sized("Assign-Instance", cil::build_assign_instance(v), 4, kSize);
  register_sized("Assign-Static", cil::build_assign_static(v), 4, kSize);
  register_sized("Assign-Array", cil::build_assign_array(v), 4, kSize);

  register_sized("Cast-IntLong", cil::build_cast_i32_i64(v), 2, kSize);
  register_sized("Cast-IntFloat", cil::build_cast_i32_f32(v), 2, kSize);
  register_sized("Cast-IntDouble", cil::build_cast_i32_f64(v), 2, kSize);
  register_sized("Cast-FloatDouble", cil::build_cast_f32_f64(v), 2, kSize);
  register_sized("Cast-LongDouble", cil::build_cast_i64_f64(v), 2, kSize);

  register_sized("Create-Object", cil::build_create_object(v), 1, kSize / 4);
  register_sized("Create-Array1", cil::build_create_array(v, 1), 1, kSize / 4);
  register_sized("Create-Array8", cil::build_create_array(v, 8), 1, kSize / 4);
  register_sized("Create-Array128", cil::build_create_array(v, 128), 1,
                 kSize / 8);

  register_sized("Method-Static", cil::build_method_static(v), 1, kSize / 2);
  register_sized("Method-StaticArgs", cil::build_method_static_args(v), 1,
                 kSize / 2);
  register_sized("Method-Instance", cil::build_method_instance(v), 1,
                 kSize / 2);
  register_sized("Method-Synchronized", cil::build_method_synchronized(v), 1,
                 kSize / 8);
  register_sized("Method-Library", cil::build_method_intrinsic(v), 1,
                 kSize / 2);

  // Serial: one invoke serializes+deserializes a 256-node list; count the
  // nodes written+read.
  const auto serial = cil::build_serial_roundtrip(v);
  register_custom(
      "Serial-ObjectGraph",
      [serial](vm::Engine& e) {
        ctx().invoke(e, serial, {Slot::from_i32(256)});
      },
      512);

  return run_main(argc, argv, "Table 1: assign / cast / create / method / serial");
}

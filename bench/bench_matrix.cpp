// Graph 12 + Table 3 "Matrix": copy-assignment throughput of true rank-2
// rectangular matrices vs jagged arrays, for value (f64) and object (ref)
// element types. The paper's finding: on CLR 1.1 the true multidimensional
// matrix runs at ~25% of jagged speed; fast_multidim profiles close the gap.
#include "cil/micro.hpp"
#include "paper_bench.hpp"

namespace {

using namespace hpcnet;
using namespace hpcnet::bench;
using vm::Slot;

constexpr std::int32_t kN = 64;
constexpr std::int32_t kReps = 8;
constexpr double kCopies = static_cast<double>(kReps) * kN * kN;

void reg(const std::string& row, std::int32_t method) {
  register_custom(
      row,
      [method](vm::Engine& e) {
        ctx().invoke(e, method, {Slot::from_i32(kReps), Slot::from_i32(kN)});
      },
      kCopies);
}

void native_multidim(std::int32_t) {
  static std::vector<double> a(kN * kN), b(kN * kN, 1.5);
  for (int r = 0; r < kReps; ++r) {
    for (int i = 0; i < kN; ++i) {
      for (int j = 0; j < kN; ++j) a[i * kN + j] = b[i * kN + j];
    }
  }
  benchmark::DoNotOptimize(a[kN + 1]);
}

}  // namespace

int main(int argc, char** argv) {
  auto& v = ctx().vm();
  reg("Multidim-ValueType", cil::build_matrix_multidim_f64(v));
  reg("Jagged-ValueType", cil::build_matrix_jagged_f64(v));
  reg("Multidim-ObjectType", cil::build_matrix_multidim_ref(v));
  reg("Jagged-ObjectType", cil::build_matrix_jagged_ref(v));
  register_native("Multidim-ValueType", native_multidim, kCopies, 1);

  // Table 3 "Boxing" rows live here too (same table in the paper).
  register_sized("Boxing-Int", cil::build_boxing_i32(v), 2, 1 << 14);
  register_sized("Boxing-Double", cil::build_boxing_f64(v), 2, 1 << 14);

  return run_main(argc, argv,
                  "Graph 12 / Table 3: matrix styles and boxing",
                  "copies/sec (boxing: ops/sec)");
}

// Graphs 9-11: SciMark MFlops. Graph 9 = composite for both memory models;
// Graphs 10/11 = per-kernel breakdown for the small and large models. Every
// CIL run validates its checksum against the native kernel before scoring.
// (These are long single-shot kernel runs, timed directly rather than
// through google-benchmark's sampling loop.)
//
//   bench_scimark [--quick] [--json FILE]
//
// --quick uses the tiny test-model sizes (CI smoke runs); --json writes the
// three tables as a JSON array via ResultTable::print_json.
#include <cstring>
#include <fstream>
#include <iostream>

#include "cil/suite.hpp"
#include "support/reporter.hpp"

int main(int argc, char** argv) {
  using namespace hpcnet;
  using namespace hpcnet::cil;

  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_scimark [--quick] [--json FILE]\n";
      return 1;
    }
  }

  BenchContext bc;
  const ScimarkSizes small =
      quick ? ScimarkSizes::test_model() : ScimarkSizes::small_model();
  const ScimarkSizes large =
      quick ? ScimarkSizes::small_model() : ScimarkSizes::large_model();

  support::ResultTable g9("Graph 9: SciMark composite MFlops");
  support::ResultTable g10(
      "Graph 10: SciMark kernels, small (cache-resident) model [MFlops]");
  support::ResultTable g11(
      "Graph 11: SciMark kernels, large (memory-resident) model [MFlops]");

  auto record = [](support::ResultTable& t, const std::string& col,
                   const ScimarkResult& r) {
    for (const auto& k : r.kernels) t.set(k.name, col, k.mflops);
  };

  {
    const ScimarkResult rs = run_scimark_native(small);
    const ScimarkResult rl = run_scimark_native(large);
    g9.set("small memory model", "native", rs.composite);
    g9.set("large memory model", "native", rl.composite);
    record(g10, "native", rs);
    record(g11, "native", rl);
  }
  for (auto& e : bc.engines()) {
    std::cerr << "running scimark on " << e->name() << "...\n";
    const ScimarkResult rs = run_scimark_cil(bc.vm(), *e, small, true);
    const ScimarkResult rl = run_scimark_cil(bc.vm(), *e, large, true);
    g9.set("small memory model", e->name(), rs.composite);
    g9.set("large memory model", e->name(), rl.composite);
    record(g10, e->name(), rs);
    record(g11, e->name(), rl);
  }
  {
    // Vector tier: clr11 flags plus the VECLOOP lowering pass. Scored the
    // same way as the paper seven (single pass, checksum-validated), so the
    // column is directly comparable to clr11.
    vm::Engine& e = bc.engine("clr11.vec");
    std::cerr << "running scimark on " << e.name() << "...\n";
    const ScimarkResult rs = run_scimark_cil(bc.vm(), e, small, true);
    const ScimarkResult rl = run_scimark_cil(bc.vm(), e, large, true);
    g9.set("small memory model", e.name(), rs.composite);
    g9.set("large memory model", e.name(), rl.composite);
    record(g10, e.name(), rs);
    record(g11, e.name(), rl);
  }
  {
    // Tiered steady state: a cold pass promotes every kernel (their loops
    // earn the full back-edge credit on the first invocation), then the
    // scored passes run register IR — comparable to clr11, whose methods
    // are likewise compiled by the time they are scored a second time.
    vm::Engine& e = bc.engine("clr11.tiered");
    std::cerr << "running scimark on clr11.tiered (cold pass + scored)...\n";
    run_scimark_cil(bc.vm(), e, small, true);
    const ScimarkResult rs = run_scimark_cil(bc.vm(), e, small, true);
    const ScimarkResult rl = run_scimark_cil(bc.vm(), e, large, true);
    g9.set("small memory model", e.name(), rs.composite);
    g9.set("large memory model", e.name(), rl.composite);
    record(g10, e.name(), rs);
    record(g11, e.name(), rl);
  }

  g9.print(std::cout);
  std::cout << "\n";
  g10.print(std::cout);
  std::cout << "\n";
  g11.print(std::cout);
  std::cout << "\n";
  g10.normalized_to("native", "Graph 10 normalized to native C++ (= the "
                              "paper's 'compared to C performance')")
      .print(std::cout);
  std::cout << "\nAll kernel checksums validated against the native "
               "baselines.\n";
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << "[";
    g9.print_json(out);
    out << ",\n";
    g10.print_json(out);
    out << ",\n";
    g11.print_json(out);
    out << "]\n";
    std::cout << "JSON written to " << json_path << "\n";
  }
  return 0;
}

// Multi-tenant execution service throughput (DESIGN.md §11). Two tables:
//
//   Table 1 — jobs/sec and p50/p99 end-to-end latency (submit -> result) for
//             a mixed SciMark job batch from 4 tenants, at 1/2/4/8 workers
//             sharing one VM.
//   Table 2 — fuel-metering overhead on an uncontended single-tenant run of
//             the same mix: unmetered vs. a fuel budget high enough that no
//             job is killed. This isolates the cost of the metering itself
//             (the back-edge pulse charge) from the cost of kills. CI asserts
//             the overhead stays under 5%.
//   Table 3 — TCP loopback vs in-process (DESIGN.md §14): the same mix
//             driven by 4 tenant threads, each keeping a pipeline of 8 jobs
//             outstanding — in-process via submit/wait handles, over TCP via
//             one VmClient connection each. Latency is client-observed
//             (submit to result seen), so the TCP rows carry the full frame
//             encode/decode + loopback + event-loop cost. The binary asserts
//             the best TCP p50 stays under 2x its in-process counterpart:
//             at pipeline depth 8 the wire cost must amortize.
//
//   bench_service [--quick] [--json FILE]
//
// Jobs run on the clr11 (optimizing) profile; all workers share the VM's
// code cache, so a one-worker warmup service compiles the kernels for every
// configuration that follows.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cil/sm.hpp"
#include "support/reporter.hpp"
#include "vm/net/client.hpp"
#include "vm/net/server.hpp"
#include "vm/service/service.hpp"

namespace {

using namespace hpcnet;
using vm::Slot;
namespace service = hpcnet::vm::service;

struct JobSpec {
  const char* name;
  std::int32_t method;
  std::vector<Slot> args;
};

struct BatchResult {
  double jobs_per_sec = 0;
  double p50_ms = 0;
  double p99_ms = 0;
};

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Submits `total` jobs round-robin over `tenants` and the job mix, drains,
/// and reports throughput plus end-to-end (queue + run) latency percentiles.
BatchResult run_batch(service::ExecutionService& svc,
                      const std::vector<std::string>& tenants,
                      const std::vector<JobSpec>& jobs, int total) {
  std::vector<service::JobHandle> handles;
  handles.reserve(static_cast<std::size_t>(total));
  const double t0 = now_ms();
  for (int i = 0; i < total; ++i) {
    const JobSpec& j = jobs[static_cast<std::size_t>(i) % jobs.size()];
    handles.push_back(svc.submit(tenants[static_cast<std::size_t>(i) %
                                         tenants.size()],
                                 j.method, j.args));
  }
  svc.drain();
  const double wall_ms = now_ms() - t0;

  std::vector<double> latency_ms;
  latency_ms.reserve(handles.size());
  for (service::JobHandle& h : handles) {
    const service::JobResult r = h.wait();  // done: returns immediately
    if (r.outcome != service::JobOutcome::Completed) {
      std::cerr << "job failed: " << r.error << "\n";
      std::exit(1);
    }
    latency_ms.push_back(static_cast<double>(r.queue_ns + r.run_ns) * 1e-6);
  }
  std::sort(latency_ms.begin(), latency_ms.end());
  const std::size_t n = latency_ms.size();
  BatchResult out;
  out.jobs_per_sec = static_cast<double>(total) / (wall_ms * 1e-3);
  out.p50_ms = latency_ms[n / 2];
  out.p99_ms = latency_ms[std::min(n - 1, n * 99 / 100)];
  return out;
}

BatchResult summarize(double wall_ms, std::vector<double> latency_ms) {
  std::sort(latency_ms.begin(), latency_ms.end());
  const std::size_t n = latency_ms.size();
  BatchResult out;
  out.jobs_per_sec = static_cast<double>(n) / (wall_ms * 1e-3);
  out.p50_ms = latency_ms[n / 2];
  out.p99_ms = latency_ms[std::min(n - 1, n * 99 / 100)];
  return out;
}

constexpr int kPipelineDepth = 8;

/// 4 driver threads, one per tenant, each a sliding window of depth-8
/// in-flight jobs; latency is client-observed submit -> result.
BatchResult run_inprocess_drivers(service::ExecutionService& svc,
                                  const std::vector<std::string>& tenants,
                                  const std::vector<JobSpec>& jobs,
                                  int per_tenant) {
  std::mutex mu;
  std::vector<double> latency_ms;
  const double t0 = now_ms();
  std::vector<std::thread> drivers;
  for (const std::string& tenant : tenants) {
    drivers.emplace_back([&, tenant] {
      std::vector<double> local;
      std::deque<std::pair<service::JobHandle, double>> window;
      const auto reap_front = [&] {
        auto [h, sent] = std::move(window.front());
        window.pop_front();
        const service::JobResult r = h.wait();
        if (r.outcome != service::JobOutcome::Completed) {
          std::cerr << "job failed: " << r.error << "\n";
          std::exit(1);
        }
        local.push_back(now_ms() - sent);
      };
      for (int i = 0; i < per_tenant; ++i) {
        if (static_cast<int>(window.size()) == kPipelineDepth) reap_front();
        const JobSpec& j = jobs[static_cast<std::size_t>(i) % jobs.size()];
        window.emplace_back(svc.submit(tenant, j.method, j.args), now_ms());
      }
      while (!window.empty()) reap_front();
      std::lock_guard<std::mutex> lock(mu);
      latency_ms.insert(latency_ms.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : drivers) t.join();
  return summarize(now_ms() - t0, std::move(latency_ms));
}

/// Same drivers, but through one pipelined VmClient connection per tenant.
BatchResult run_tcp_drivers(std::uint16_t port,
                            const std::vector<std::string>& tenants,
                            const std::vector<JobSpec>& jobs,
                            int per_tenant) {
  std::mutex mu;
  std::vector<double> latency_ms;
  const double t0 = now_ms();
  std::vector<std::thread> drivers;
  for (const std::string& tenant : tenants) {
    drivers.emplace_back([&, tenant] {
      vm::net::VmClient client;
      client.connect("127.0.0.1", port);
      client.hello(tenant, "");
      std::vector<double> local;
      std::map<std::uint64_t, double> sent;  // request id -> send time
      const auto reap_one = [&] {
        const vm::net::WireResult r = client.recv_result();
        if (r.outcome != 0) {
          std::cerr << "tcp job failed: " << r.error << "\n";
          std::exit(1);
        }
        local.push_back(now_ms() - sent.at(r.request_id));
        sent.erase(r.request_id);
      };
      for (int i = 0; i < per_tenant; ++i) {
        if (static_cast<int>(sent.size()) == kPipelineDepth) reap_one();
        const JobSpec& j = jobs[static_cast<std::size_t>(i) % jobs.size()];
        std::vector<vm::net::WireValue> args;
        args.reserve(j.args.size());
        for (const Slot& s : j.args) {
          args.push_back(vm::net::WireValue::from_i32(s.i32));
        }
        sent.emplace(client.send_submit(j.method, args), now_ms());
      }
      while (!sent.empty()) reap_one();
      std::lock_guard<std::mutex> lock(mu);
      latency_ms.insert(latency_ms.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : drivers) t.join();
  return summarize(now_ms() - t0, std::move(latency_ms));
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_service [--quick] [--json FILE]\n";
      return 1;
    }
  }

  vm::VirtualMachine machine;
  const std::vector<JobSpec> jobs = {
      {"fft", cil::build_sm_fft(machine),
       {Slot::from_i32(256), Slot::from_i32(quick ? 1 : 2)}},
      {"sor", cil::build_sm_sor(machine),
       {Slot::from_i32(quick ? 50 : 100), Slot::from_i32(quick ? 5 : 10)}},
      {"montecarlo", cil::build_sm_montecarlo(machine),
       {Slot::from_i32(quick ? 50000 : 200000)}},
      {"sparse", cil::build_sm_sparse(machine),
       {Slot::from_i32(quick ? 500 : 1000), Slot::from_i32(quick ? 2500 : 5000),
        Slot::from_i32(quick ? 5 : 10)}},
      {"lu", cil::build_sm_lu(machine), {Slot::from_i32(quick ? 50 : 100)}},
  };
  const vm::EngineProfile profile = vm::profiles::by_name("clr11");
  const int batch = quick ? 60 : 240;

  {
    // Warm the shared code cache so worker counts compare steady-state JIT
    // code rather than racing first-compile latency.
    service::ExecutionService warm(machine, profile, {.workers = 1});
    warm.add_tenant({.name = "warmup"});
    run_batch(warm, {"warmup"}, jobs, static_cast<int>(jobs.size()) * 2);
  }

  support::ResultTable scaling(
      "Service throughput: mixed SciMark jobs, 4 tenants (per worker count)");
  for (int workers : {1, 2, 4, 8}) {
    service::ExecutionService svc(machine, profile, {.workers = workers});
    std::vector<std::string> tenants;
    for (int t = 0; t < 4; ++t) {
      tenants.push_back("tenant-" + std::to_string(t));
      svc.add_tenant({.name = tenants.back()});
    }
    const BatchResult r = run_batch(svc, tenants, jobs, batch);
    const std::string row = std::to_string(workers) +
                            (workers == 1 ? " worker" : " workers");
    scaling.set(row, "jobs_per_sec", r.jobs_per_sec);
    scaling.set(row, "p50_ms", r.p50_ms);
    scaling.set(row, "p99_ms", r.p99_ms);
    std::cerr << row << ": " << support::sci(r.jobs_per_sec)
              << " jobs/sec\n";
  }

  // Fuel-metering overhead, uncontended: one tenant, one worker, same mix,
  // budget far above any job's spend so the meter runs but never fires.
  // Best-of-3 on both sides to damp scheduler noise.
  support::ResultTable overhead(
      "Service overhead: fuel metering, single tenant, 1 worker");
  double best_off = 0;
  double best_on = 0;
  for (int trial = 0; trial < 3; ++trial) {
    {
      service::ExecutionService svc(machine, profile, {.workers = 1});
      svc.add_tenant({.name = "solo"});
      best_off = std::max(
          best_off, run_batch(svc, {"solo"}, jobs, batch / 2).jobs_per_sec);
    }
    {
      service::ExecutionService svc(machine, profile, {.workers = 1});
      svc.add_tenant({.name = "solo", .fuel_per_job = 1ull << 40});
      best_on = std::max(
          best_on, run_batch(svc, {"solo"}, jobs, batch / 2).jobs_per_sec);
    }
  }
  const double pct = (best_off - best_on) / best_off * 100.0;
  overhead.set("unmetered jobs/sec", "clr11", best_off);
  overhead.set("fuel metered jobs/sec", "clr11", best_on);
  overhead.set("overhead %", "clr11", pct);

  // Table 3: the wire tax. Same mix, same 4 tenants, pipeline depth 8 per
  // tenant, measured from the caller's side of the seam — handle.wait() for
  // in-process, RESULT frame arrival for TCP.
  support::ResultTable loopback(
      "Service front end: TCP loopback vs in-process, 4 tenants, depth 8");
  double best_ratio = 1e9;
  for (int workers : {1, 4, 8}) {
    service::ExecutionService svc(machine, profile, {.workers = workers});
    std::vector<std::string> tenants;
    for (int t = 0; t < 4; ++t) {
      tenants.push_back("tenant-" + std::to_string(t));
      svc.add_tenant({.name = tenants.back()});
    }
    vm::net::ServerOptions sopt;
    sopt.open_tenants = true;
    vm::net::VmServer server(machine, svc, sopt);
    server.start();
    const int per_tenant = batch / 4;
    const BatchResult inproc =
        run_inprocess_drivers(svc, tenants, jobs, per_tenant);
    const BatchResult tcp =
        run_tcp_drivers(server.port(), tenants, jobs, per_tenant);
    server.stop();
    const std::string row = std::to_string(workers) +
                            (workers == 1 ? " worker" : " workers");
    loopback.set(row, "inproc_jobs_per_sec", inproc.jobs_per_sec);
    loopback.set(row, "inproc_p50_ms", inproc.p50_ms);
    loopback.set(row, "inproc_p99_ms", inproc.p99_ms);
    loopback.set(row, "tcp_jobs_per_sec", tcp.jobs_per_sec);
    loopback.set(row, "tcp_p50_ms", tcp.p50_ms);
    loopback.set(row, "tcp_p99_ms", tcp.p99_ms);
    const double ratio = tcp.p50_ms / inproc.p50_ms;
    loopback.set(row, "tcp_p50_ratio", ratio);
    best_ratio = std::min(best_ratio, ratio);
    std::cerr << row << ": tcp p50 " << support::sci(tcp.p50_ms)
              << " ms vs in-process " << support::sci(inproc.p50_ms)
              << " ms (" << support::sci(ratio) << "x)\n";
  }

  scaling.print(std::cout);
  std::cout << "\n";
  overhead.print(std::cout);
  std::cout << "\n";
  loopback.print(std::cout);

  // The claim CI holds us to: with the pipeline keeping the workers fed, the
  // per-job wire cost amortizes to under 2x the in-process p50. Asserted on
  // the best row — single-core CI runners make per-row asserts flaky, and
  // the claim is about the protocol's floor, not the scheduler's noise.
  if (best_ratio >= 2.0) {
    std::cerr << "FAIL: best tcp/in-process p50 ratio "
              << support::sci(best_ratio) << " >= 2.0\n";
    return 1;
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << "[";
    scaling.print_json(out);
    out << ",\n";
    overhead.print_json(out);
    out << ",\n";
    loopback.print_json(out);
    out << "]\n";
    std::cout << "JSON written to " << json_path << "\n";
  }
  return 0;
}

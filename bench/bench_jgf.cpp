// Table 4: the Java Grande section 2/3 kernels. Fibonacci, Sieve, Hanoi,
// HeapSort and Crypt (IDEA) run both as CIL (on every engine, validated
// against native) and natively; MolDyn, Euler, Search and RayTracer run
// natively (the paper itself had only SciMark + micros ported/validated at
// submission; see EXPERIMENTS.md).
#include <iostream>

#include "cil/jg.hpp"
#include "cil/suite.hpp"
#include "kernels/jgf.hpp"
#include "support/reporter.hpp"
#include "support/timer.hpp"

namespace {

using namespace hpcnet;
using vm::Slot;

double time_once(const std::function<void()>& fn) {
  const auto t0 = support::now_ns();
  fn();
  return support::elapsed_seconds(t0, support::now_ns());
}

}  // namespace

int main() {
  using namespace hpcnet::cil;
  BenchContext bc;
  auto& v = bc.vm();
  support::ResultTable t("Table 4 kernels [work units/sec]");

  struct Row {
    const char* name;
    std::int32_t method;
    std::vector<Slot> args;
    double work;  // work units per run (calls, elements, moves, ...)
    std::int64_t expect;
  };

  const int crypt_n = 1 << 16;
  const int fib_n = 24;
  const int sieve_n = 200000;
  const int hanoi_n = 18;
  const int sort_n = 100000;
  const std::vector<Row> rows = {
      {"Fibonacci", build_jg_fib(v), {Slot::from_i32(fib_n)},
       kernels::fib::num_calls(fib_n), kernels::fib::compute(fib_n)},
      {"Sieve", build_jg_sieve(v), {Slot::from_i32(sieve_n)},
       static_cast<double>(sieve_n), kernels::sieve::count_primes(sieve_n)},
      {"Hanoi", build_jg_hanoi(v), {Slot::from_i32(hanoi_n)},
       static_cast<double>(kernels::hanoi::solve(hanoi_n)),
       kernels::hanoi::solve(hanoi_n)},
      {"HeapSort", build_jg_heapsort(v), {Slot::from_i32(sort_n)},
       static_cast<double>(sort_n), kernels::heapsort::run(sort_n)},
      {"Crypt(IDEA)", build_jg_crypt(v), {Slot::from_i32(crypt_n)},
       static_cast<double>(crypt_n), kernels::crypt::run(crypt_n)},
  };

  for (const Row& r : rows) {
    for (auto& e : bc.engines()) {
      std::int64_t got = 0;
      const double secs = time_once([&] {
        const Slot s = bc.invoke(*e, r.method, r.args);
        got = v.module().method(r.method).sig.ret == vm::ValType::I32
                  ? s.i32
                  : s.i64;
      });
      if (got != r.expect) {
        std::cerr << "VALIDATION FAILED: " << r.name << " on " << e->name()
                  << ": got " << got << ", want " << r.expect << "\n";
        return 1;
      }
      t.set(r.name, e->name(), r.work / secs);
    }
  }
  // Native columns for the same four kernels.
  {
    double secs = time_once([&] { kernels::fib::compute(fib_n); });
    t.set("Fibonacci", "native", kernels::fib::num_calls(fib_n) / secs);
    secs = time_once([&] { kernels::sieve::count_primes(sieve_n); });
    t.set("Sieve", "native", sieve_n / secs);
    secs = time_once([&] { kernels::hanoi::solve(hanoi_n); });
    t.set("Hanoi", "native",
          static_cast<double>(kernels::hanoi::solve(hanoi_n)) / secs);
    secs = time_once([&] { kernels::heapsort::run(sort_n); });
    t.set("HeapSort", "native", sort_n / secs);
  }
  // Native-only kernels (the remainder of Table 4's inventory).
  {
    double secs = time_once([&] { kernels::crypt::run(crypt_n); });
    t.set("Crypt(IDEA)", "native", crypt_n / secs);
    kernels::moldyn::Result md{};
    secs = time_once([&] { md = kernels::moldyn::simulate(6, 10); });
    t.set("MolDyn", "native", md.interactions / secs);
    secs = time_once([&] { kernels::euler::solve(48, 60); });
    t.set("Euler", "native", 48.0 * 24 * 60 / secs);  // cell-steps/sec
    std::int64_t nodes = 0;
    secs = time_once([&] { nodes = kernels::search::solve(11, nullptr); });
    t.set("Search", "native", static_cast<double>(nodes) / secs);
    secs = time_once([&] { kernels::raytracer::render(96); });
    t.set("RayTracer", "native", 96.0 * 96 / secs);  // pixels/sec
  }

  t.print(std::cout);
  std::cout << "\nCIL results validated against native kernels.\n";
  return 0;
}

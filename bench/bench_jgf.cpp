// Table 4: the Java Grande section 2/3 kernels. Fibonacci, Sieve, Hanoi,
// HeapSort and Crypt (IDEA) run both as CIL (on every engine, validated
// against native) and natively; MolDyn, Euler, Search and RayTracer run
// natively (the paper itself had only SciMark + micros ported/validated at
// submission; see EXPERIMENTS.md).
//
//   bench_jgf [--quick] [--json FILE]
//
// --quick shrinks the kernel sizes (CI smoke runs); --json writes the table
// via ResultTable::print_json.
#include <cstring>
#include <fstream>
#include <iostream>

#include "cil/jg.hpp"
#include "cil/suite.hpp"
#include "kernels/jgf.hpp"
#include "support/reporter.hpp"
#include "support/timer.hpp"

namespace {

using namespace hpcnet;
using vm::Slot;

double time_once(const std::function<void()>& fn) {
  const auto t0 = support::now_ns();
  fn();
  return support::elapsed_seconds(t0, support::now_ns());
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hpcnet::cil;
  bool quick = false;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_jgf [--quick] [--json FILE]\n";
      return 1;
    }
  }
  BenchContext bc;
  auto& v = bc.vm();
  support::ResultTable t("Table 4 kernels [work units/sec]");

  struct Row {
    const char* name;
    std::int32_t method;
    std::vector<Slot> args;
    double work;  // work units per run (calls, elements, moves, ...)
    std::int64_t expect;
  };

  const int crypt_n = quick ? 1 << 12 : 1 << 16;
  const int fib_n = quick ? 18 : 24;
  const int sieve_n = quick ? 20000 : 200000;
  const int hanoi_n = quick ? 12 : 18;
  const int sort_n = quick ? 10000 : 100000;
  const std::vector<Row> rows = {
      {"Fibonacci", build_jg_fib(v), {Slot::from_i32(fib_n)},
       kernels::fib::num_calls(fib_n), kernels::fib::compute(fib_n)},
      {"Sieve", build_jg_sieve(v), {Slot::from_i32(sieve_n)},
       static_cast<double>(sieve_n), kernels::sieve::count_primes(sieve_n)},
      {"Hanoi", build_jg_hanoi(v), {Slot::from_i32(hanoi_n)},
       static_cast<double>(kernels::hanoi::solve(hanoi_n)),
       kernels::hanoi::solve(hanoi_n)},
      {"HeapSort", build_jg_heapsort(v), {Slot::from_i32(sort_n)},
       static_cast<double>(sort_n), kernels::heapsort::run(sort_n)},
      {"Crypt(IDEA)", build_jg_crypt(v), {Slot::from_i32(crypt_n)},
       static_cast<double>(crypt_n), kernels::crypt::run(crypt_n)},
  };

  for (const Row& r : rows) {
    for (auto& e : bc.engines()) {
      std::int64_t got = 0;
      const double secs = time_once([&] {
        const Slot s = bc.invoke(*e, r.method, r.args);
        got = v.module().method(r.method).sig.ret == vm::ValType::I32
                  ? s.i32
                  : s.i64;
      });
      if (got != r.expect) {
        std::cerr << "VALIDATION FAILED: " << r.name << " on " << e->name()
                  << ": got " << got << ", want " << r.expect << "\n";
        return 1;
      }
      t.set(r.name, e->name(), r.work / secs);
    }
  }
  // Native columns for the same four kernels.
  {
    double secs = time_once([&] { kernels::fib::compute(fib_n); });
    t.set("Fibonacci", "native", kernels::fib::num_calls(fib_n) / secs);
    secs = time_once([&] { kernels::sieve::count_primes(sieve_n); });
    t.set("Sieve", "native", sieve_n / secs);
    secs = time_once([&] { kernels::hanoi::solve(hanoi_n); });
    t.set("Hanoi", "native",
          static_cast<double>(kernels::hanoi::solve(hanoi_n)) / secs);
    secs = time_once([&] { kernels::heapsort::run(sort_n); });
    t.set("HeapSort", "native", sort_n / secs);
  }
  // Native-only kernels (the remainder of Table 4's inventory).
  {
    double secs = time_once([&] { kernels::crypt::run(crypt_n); });
    t.set("Crypt(IDEA)", "native", crypt_n / secs);
    kernels::moldyn::Result md{};
    const int md_n = quick ? 4 : 6, md_steps = quick ? 4 : 10;
    secs = time_once([&] { md = kernels::moldyn::simulate(md_n, md_steps); });
    t.set("MolDyn", "native", md.interactions / secs);
    const int eu_n = quick ? 16 : 48, eu_steps = quick ? 12 : 60;
    secs = time_once([&] { kernels::euler::solve(eu_n, eu_steps); });
    t.set("Euler", "native", eu_n * 24.0 * eu_steps / secs);  // cell-steps/sec
    std::int64_t nodes = 0;
    const int se_n = quick ? 8 : 11;
    secs = time_once([&] { nodes = kernels::search::solve(se_n, nullptr); });
    t.set("Search", "native", static_cast<double>(nodes) / secs);
    const int rt_n = quick ? 32 : 96;
    secs = time_once([&] { kernels::raytracer::render(rt_n); });
    t.set("RayTracer", "native", 1.0 * rt_n * rt_n / secs);  // pixels/sec
  }

  t.print(std::cout);
  std::cout << "\nCIL results validated against native kernels.\n";
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    t.print_json(out);
    out << "\n";
    std::cout << "JSON written to " << json_path << "\n";
  }
  return 0;
}

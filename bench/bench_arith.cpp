// Graphs 1-3: integer and floating-point arithmetic throughput across the
// seven VM profiles plus the native baseline. Four dependent operations per
// loop iteration, exactly as the JGF Arith benchmark chains them.
#include "cil/micro.hpp"
#include "paper_bench.hpp"

namespace {

using namespace hpcnet;
using namespace hpcnet::bench;

constexpr std::int32_t kSize = 1 << 17;

// Native twins of the cyclic-update loops (volatile sinks defeat hoisting).
template <typename T>
void native_cyclic_add(std::int32_t size) {
  T x1 = 1, x2 = 2, x3 = 3, x4 = 4;
  for (std::int32_t i = 0; i < size; ++i) {
    x1 += x2;
    x2 += x3;
    x3 += x4;
    x4 += x1;
  }
  volatile T sink = x4;
  (void)sink;
}
template <typename T>
void native_cyclic_mul(std::int32_t size) {
  T x1 = 1, x2 = 2, x3 = 3, x4 = 4;
  for (std::int32_t i = 0; i < size; ++i) {
    x1 *= x2;
    x2 *= x3;
    x3 *= x4;
    x4 *= x1;
  }
  volatile T sink = x4;
  (void)sink;
}
template <typename T>
void native_div(std::int32_t size) {
  T x = std::is_integral_v<T> ? static_cast<T>(2147483647) : static_cast<T>(1.7e308);
  for (std::int32_t i = 0; i < size; ++i) {
    for (int k = 0; k < 4; ++k) {
      x = static_cast<T>(x / static_cast<T>(3));
    }
    if constexpr (std::is_integral_v<T>) {
      if (x < 3) x = static_cast<T>(2147483647);
    }
  }
  volatile T sink = x;
  (void)sink;
}

void register_all() {
  auto& v = ctx().vm();
  register_sized("Addition-Int", cil::build_arith_add_i32(v), 4, kSize);
  register_native("Addition-Int", native_cyclic_add<std::int32_t>, 4, kSize);
  register_sized("Multiplication-Int", cil::build_arith_mul_i32(v), 4, kSize);
  register_native("Multiplication-Int", native_cyclic_mul<std::int32_t>, 4, kSize);
  register_sized("Division-Int", cil::build_arith_div_i32(v), 4, kSize / 4);
  register_native("Division-Int", native_div<std::int32_t>, 4, kSize / 4);

  register_sized("Addition-Long", cil::build_arith_add_i64(v), 4, kSize);
  register_native("Addition-Long", native_cyclic_add<std::int64_t>, 4, kSize);
  register_sized("Multiplication-Long", cil::build_arith_mul_i64(v), 4, kSize);
  register_native("Multiplication-Long", native_cyclic_mul<std::int64_t>, 4, kSize);
  register_sized("Division-Long", cil::build_arith_div_i64(v), 4, kSize / 4);
  register_native("Division-Long", native_div<std::int64_t>, 4, kSize / 4);

  register_sized("Add-Float", cil::build_arith_add_f32(v), 4, kSize);
  register_native("Add-Float", native_cyclic_add<float>, 4, kSize);
  register_sized("Multiply-Float", cil::build_arith_mul_f32(v), 4, kSize);
  register_native("Multiply-Float", native_cyclic_mul<float>, 4, kSize);
  register_sized("Division-Float", cil::build_arith_div_f32(v), 4, kSize / 2);
  register_native("Division-Float", native_div<float>, 4, kSize / 2);

  register_sized("Add-Double", cil::build_arith_add_f64(v), 4, kSize);
  register_native("Add-Double", native_cyclic_add<double>, 4, kSize);
  register_sized("Multiply-Double", cil::build_arith_mul_f64(v), 4, kSize);
  register_native("Multiply-Double", native_cyclic_mul<double>, 4, kSize);
  register_sized("Division-Double", cil::build_arith_div_f64(v), 4, kSize / 2);
  register_native("Division-Double", native_div<double>, 4, kSize / 2);
}

}  // namespace

int main(int argc, char** argv) {
  register_all();
  return hpcnet::bench::run_main(
      argc, argv, "Graphs 1-3: integer / floating point arithmetic");
}

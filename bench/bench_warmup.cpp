// Warmup curves for the tiered execution pipeline: per-invocation wall time
// of the first N calls of four representative programs (SOR, Crypt(IDEA),
// Method-Static, Loop-For) on each engine. Single-tier engines trace a flat
// line (after the one-off JIT on call 1); the .tiered profiles start at the
// interpreter's level and step down as the method crosses the baseline (8)
// and optimizing (64) promotion thresholds.
//
//   bench_warmup [--quick] [--iters N] [--json FILE]
//
// Each (engine, program) pair runs in a fresh VM so every curve starts cold.
// The trailing "steady-state" table (mean of the last third of the curve) is
// what CI asserts on: tiered steady state must land within noise of the
// optimizing-only engine.
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cil/jg.hpp"
#include "cil/micro.hpp"
#include "cil/sm.hpp"
#include "support/reporter.hpp"
#include "support/timer.hpp"
#include "vm/execution.hpp"
#include "vm/serialize.hpp"

namespace {

using namespace hpcnet;
using vm::Slot;

struct Program {
  std::string name;
  std::int32_t (*build)(vm::VirtualMachine&);
  std::vector<Slot> args;
};

// sm.sor.run takes (n, iters); adapt it to the single-builder shape.
std::int32_t build_sor(vm::VirtualMachine& v) { return cil::build_sm_sor(v); }

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  int iters = 96;  // crosses both promotion thresholds (8 and 64)
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else if (std::strcmp(argv[i], "--iters") == 0 && i + 1 < argc) {
      iters = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      json_path = argv[++i];
    } else {
      std::cerr << "usage: bench_warmup [--quick] [--iters N] [--json FILE]\n";
      return 1;
    }
  }
  if (iters < 8) iters = 8;

  const std::int32_t sor_n = quick ? 16 : 32;
  const std::int32_t sor_sweeps = quick ? 2 : 4;
  const std::int32_t crypt_n = quick ? 1024 : 4096;
  const std::int32_t call_n = quick ? 128 : 512;
  const std::int32_t loop_n = quick ? 1024 : 8192;

  const std::vector<Program> programs = {
      {"SOR", build_sor, {Slot::from_i32(sor_n), Slot::from_i32(sor_sweeps)}},
      {"Crypt(IDEA)", cil::build_jg_crypt, {Slot::from_i32(crypt_n)}},
      {"Method-Static", cil::build_method_static, {Slot::from_i32(call_n)}},
      {"Loop-For", cil::build_loop_for, {Slot::from_i32(loop_n)}},
  };
  const std::vector<std::string> engines = {"rotor10", "mono023", "clr11",
                                            "mono023.tiered", "clr11.tiered"};

  // Curve rows: dense around the promotion thresholds, sparse elsewhere.
  std::vector<int> sampled;
  for (int i = 1; i <= iters; ++i) {
    const bool near_tier_up = (i >= 7 && i <= 10) || (i >= 63 && i <= 66);
    const bool log_spaced = (i & (i - 1)) == 0;  // powers of two
    if (near_tier_up || log_spaced || i == iters) sampled.push_back(i);
  }

  std::vector<support::ResultTable> tables;
  support::ResultTable steady(
      "warmup: steady-state per-invocation time, mean of last third [us]");
  support::ResultTable first("warmup: first-invocation time [us]");

  for (const Program& p : programs) {
    support::ResultTable curve("warmup curve: " + p.name +
                               " per-invocation time [us]");
    std::uint64_t want_raw = 0;
    bool have_want = false;
    for (const std::string& ename : engines) {
      // Fresh VM per (engine, program) so hotness counters start at zero and
      // nothing is pre-verified by an earlier engine's run.
      vm::VirtualMachine v;
      const std::int32_t method = p.build(v);
      auto eng = vm::make_engine(v, vm::profiles::by_name(ename));
      vm::VMContext& ctx = v.main_context();

      std::vector<double> us(static_cast<std::size_t>(iters));
      Slot last = Slot::from_i32(0);
      for (int i = 0; i < iters; ++i) {
        const auto t0 = support::now_ns();
        last = eng->invoke(ctx, method, p.args);
        us[static_cast<std::size_t>(i)] =
            support::elapsed_seconds(t0, support::now_ns()) * 1e6;
      }
      if (!have_want) {
        want_raw = last.raw;
        have_want = true;
      } else if (last.raw != want_raw) {
        std::cerr << p.name << " on " << ename
                  << ": result mismatch across engines\n";
        return 1;
      }

      for (int i : sampled) {
        curve.set("iter " + std::string(i < 10 ? "0" : "") + std::to_string(i),
                  ename, us[static_cast<std::size_t>(i - 1)]);
      }
      double tail = 0;
      const int tail_n = iters / 3;
      for (int i = iters - tail_n; i < iters; ++i) {
        tail += us[static_cast<std::size_t>(i)];
      }
      steady.set(p.name, ename, tail / tail_n);
      first.set(p.name, ename, us[0]);
    }
    tables.push_back(std::move(curve));
  }
  tables.push_back(std::move(first));
  tables.push_back(std::move(steady));

  // Monster loop: ONE invocation whose nested loops cross the OSR back-edge
  // trigger thousands of times over (>= 1e6 grid updates). Call-boundary
  // tiering never gets a second chance here — the .tiered profiles must
  // promote mid-invocation (on-stack replacement) to land within noise of
  // the optimizing-only engine, and that is what CI asserts on this table.
  const std::int32_t monster_n = quick ? 32 : 64;
  const std::int32_t monster_sweeps = quick ? 64 : 300;
  support::ResultTable monster(
      "warmup: monster loop, single-invocation SOR(" +
      std::to_string(monster_n) + "x" + std::to_string(monster_n) + ", " +
      std::to_string(monster_sweeps) + " sweeps) wall time [ms]");
  {
    const std::vector<Slot> margs = {Slot::from_i32(monster_n),
                                     Slot::from_i32(monster_sweeps)};
    std::uint64_t want_raw = 0;
    bool have_want = false;
    for (const std::string& ename : engines) {
      vm::VirtualMachine v;
      const std::int32_t method = build_sor(v);
      auto eng = vm::make_engine(v, vm::profiles::by_name(ename));
      vm::VMContext& ctx = v.main_context();
      const auto t0 = support::now_ns();
      const Slot r = eng->invoke(ctx, method, margs);
      const double ms = support::elapsed_seconds(t0, support::now_ns()) * 1e3;
      if (!have_want) {
        want_raw = r.raw;
        have_want = true;
      } else if (r.raw != want_raw) {
        std::cerr << "monster SOR on " << ename
                  << ": result mismatch across engines\n";
        return 1;
      }
      monster.set("SOR single shot", ename, ms);
    }
  }
  tables.push_back(std::move(monster));

  // Snapshot warm start (DESIGN.md §13): one donor VM warms SOR through the
  // tiered pipeline, its cache is captured into an immutable CodeArchive and
  // round-tripped through the wire format ONCE; then N fresh VMs boot either
  // cold or attached to that single shared archive. Columns: mean
  // first-invocation time (time to first result), mean total time for all
  // `iters` invocations (time to steady state), and the snapshot leg's own
  // steady-state per-invocation mean — CI asserts snapshot first-invoke <=
  // 1.2x snapshot steady, i.e. a restored VM's first call already runs the
  // archived optimized code. Each row is best-of-3 boot rounds (same idiom
  // as the scimark best-of-N canary): a first invocation is one sample per
  // VM, so a single round is at the mercy of shared-host scheduling noise.
  {
    const std::vector<Slot> sargs = {Slot::from_i32(sor_n),
                                     Slot::from_i32(sor_sweeps)};
    const std::string prof = "clr11.tiered";
    std::vector<char> blob;
    std::uint64_t want_raw = 0;
    {
      vm::VirtualMachine donor;
      const std::int32_t method = build_sor(donor);
      auto eng = vm::make_engine(donor, vm::profiles::by_name(prof));
      vm::VMContext& ctx = donor.main_context();
      for (int i = 0; i < iters; ++i) {
        want_raw = eng->invoke(ctx, method, sargs).raw;
      }
      blob = vm::serialize_archives({vm::capture_archive(donor, prof)});
    }
    // Deserialized once, shared (immutable, refcounted) by every VM below.
    vm::VirtualMachine scratch;
    build_sor(scratch);
    const auto archives =
        vm::deserialize_archives(scratch.module(), blob.data(), blob.size());
    if (archives.empty() || archives[0]->records().empty()) {
      std::cerr << "snapshot round trip produced an empty archive\n";
      return 1;
    }

    support::ResultTable snap(
        "warmup: snapshot warm start, SOR cold vs snapshot boot [us]");
    constexpr int kBootRounds = 3;
    for (const int n : {1, 4, 8}) {
      double best_cold_first = 0, best_cold_total = 0;
      double best_snap_first = 0, best_snap_total = 0, best_snap_steady = 0;
      for (int rep = 0; rep < kBootRounds; ++rep) {
        double cold_first = 0, cold_total = 0;
        double snap_first = 0, snap_total = 0, snap_steady = 0;
        for (int k = 0; k < n; ++k) {
          for (const bool warm : {false, true}) {
            vm::VirtualMachine v;
            const std::int32_t method = build_sor(v);
            if (warm) vm::attach_archive(v, archives[0]);
            auto eng = vm::make_engine(v, vm::profiles::by_name(prof));
            vm::VMContext& ctx = v.main_context();
            std::vector<double> us(static_cast<std::size_t>(iters));
            Slot last = Slot::from_i32(0);
            for (int i = 0; i < iters; ++i) {
              const auto t0 = support::now_ns();
              last = eng->invoke(ctx, method, sargs);
              us[static_cast<std::size_t>(i)] =
                  support::elapsed_seconds(t0, support::now_ns()) * 1e6;
            }
            if (last.raw != want_raw) {
              std::cerr << "snapshot SOR (" << (warm ? "warm" : "cold")
                        << "): result mismatch vs donor\n";
              return 1;
            }
            double total = 0;
            for (double u : us) total += u;
            double tail = 0;
            const int tail_n = iters / 3;
            for (int i = iters - tail_n; i < iters; ++i) {
              tail += us[static_cast<std::size_t>(i)];
            }
            if (warm) {
              snap_first += us[0];
              snap_total += total;
              snap_steady += tail / tail_n;
            } else {
              cold_first += us[0];
              cold_total += total;
            }
          }
        }
        if (rep == 0 || cold_first < best_cold_first) {
          best_cold_first = cold_first;
        }
        if (rep == 0 || cold_total < best_cold_total) {
          best_cold_total = cold_total;
        }
        if (rep == 0 || snap_first < best_snap_first) {
          best_snap_first = snap_first;
          best_snap_steady = snap_steady;
        }
        if (rep == 0 || snap_total < best_snap_total) {
          best_snap_total = snap_total;
        }
      }
      const std::string row = "N=" + std::to_string(n);
      snap.set(row, "cold first-invoke", best_cold_first / n);
      snap.set(row, "snapshot first-invoke", best_snap_first / n);
      snap.set(row, "cold all-invokes", best_cold_total / n);
      snap.set(row, "snapshot all-invokes", best_snap_total / n);
      snap.set(row, "snapshot steady", best_snap_steady / n);
    }
    tables.push_back(std::move(snap));
  }

  for (const auto& t : tables) {
    t.print(std::cout);
    std::cout << "\n";
  }
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::cerr << "cannot write " << json_path << "\n";
      return 1;
    }
    out << "[";
    for (std::size_t i = 0; i < tables.size(); ++i) {
      if (i != 0) out << ",\n";
      tables[i].print_json(out);
    }
    out << "]\n";
    std::cout << "JSON written to " << json_path << "\n";
  }
  return 0;
}

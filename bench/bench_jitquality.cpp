// Tables 5-8 + the §5 enregistration study: the JIT-quality analysis.
//
//  * Prints the CIL for the integer-division benchmark loop (Table 5) and
//    the code each engine tier executes for it: the literal stack traffic of
//    the Baseline tier (Mono, Table 7-left), and the register IR each
//    Optimizing profile emits (CLR/IBM, Table 6) — including the CLR's
//    redundant constant store and the IBM immediate-divide fusion.
//  * Reports instructions-per-IL-op across profiles (the paper's "level of
//    optimization of the emitted code" comparison).
//  * Measures the 64-local enregistration cliff: the same arithmetic with 4
//    vs 80 live locals on the limit-64 profile vs an unlimited profile.
#include <algorithm>
#include <iostream>

#include "cil/common.hpp"
#include "cil/suite.hpp"
#include "support/reporter.hpp"
#include "support/timer.hpp"
#include "vm/disasm.hpp"

namespace {

using namespace hpcnet;
using namespace hpcnet::cil;
using vm::Slot;
using vm::ValType;

/// The Table 5 loop: for (i = 0; i < size; i++) { i1 = i1 / 3; } with
/// i1 = Int32.MaxValue reseeded — built standalone so its disassembly is
/// uncluttered.
std::int32_t build_div_loop(vm::VirtualMachine& v) {
  return cached(v, "jit.divloop", [&] {
    vm::ILBuilder b(v.module(), "jit.divloop", {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto i1 = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    b.ldarg(0).stloc(bound);
    b.ldc_i4(2147483647).stloc(i1);
    counted_loop(b, i, bound, [&] {
      b.ldloc(i1).ldc_i4(3).div().stloc(i1);
    });
    b.ldloc(i1).ret();
    return b.finish();
  });
}

/// The integer-addition loop the paper also disassembles (4 locals, all
/// register-allocatable).
std::int32_t build_add_loop(vm::VirtualMachine& v) {
  return cached(v, "jit.addloop", [&] {
    vm::ILBuilder b(v.module(), "jit.addloop", {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    std::int32_t x[4];
    for (auto& xi : x) xi = b.add_local(ValType::I32);
    for (int k = 0; k < 4; ++k) b.ldc_i4(k + 1).stloc(x[k]);
    b.ldarg(0).stloc(bound);
    counted_loop(b, i, bound, [&] {
      b.ldloc(x[0]).ldloc(x[1]).add().stloc(x[0]);
      b.ldloc(x[1]).ldloc(x[2]).add().stloc(x[1]);
      b.ldloc(x[2]).ldloc(x[3]).add().stloc(x[2]);
      b.ldloc(x[3]).ldloc(x[0]).add().stloc(x[3]);
    });
    b.ldloc(x[3]).ret();
    return b.finish();
  });
}

/// Arithmetic over `nlocals` live locals, to expose the enregistration
/// limit: locals beyond the profile's limit round-trip through memory.
std::int32_t build_many_locals_loop(vm::VirtualMachine& v, int nlocals) {
  const std::string name = "jit.locals" + std::to_string(nlocals);
  return cached(v, name, [&] {
    vm::ILBuilder b(v.module(), name, {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    std::vector<std::int32_t> x;
    for (int k = 0; k < nlocals; ++k) x.push_back(b.add_local(ValType::I32));
    for (int k = 0; k < nlocals; ++k) {
      b.ldc_i4(k + 1).stloc(x[static_cast<std::size_t>(k)]);
    }
    b.ldarg(0).stloc(bound);
    counted_loop(b, i, bound, [&] {
      // Touch the LAST four locals so the >limit ones are the hot ones.
      const auto n = static_cast<std::size_t>(nlocals);
      b.ldloc(x[n - 1]).ldloc(x[n - 2]).add().stloc(x[n - 1]);
      b.ldloc(x[n - 2]).ldloc(x[n - 3]).add().stloc(x[n - 2]);
      b.ldloc(x[n - 3]).ldloc(x[n - 4]).add().stloc(x[n - 3]);
      b.ldloc(x[n - 4]).ldloc(x[n - 1]).add().stloc(x[n - 4]);
    });
    b.ldloc(x[static_cast<std::size_t>(nlocals - 1)]).ret();
    return b.finish();
  });
}

double ns_per_iter(BenchContext& bc, vm::Engine& e, std::int32_t method,
                   std::int32_t size) {
  // Warm up (compiles), then best-of-3 to screen scheduler noise.
  bc.invoke(e, method, {Slot::from_i32(1024)});
  double best = 1e300;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = support::now_ns();
    bc.invoke(e, method, {Slot::from_i32(size)});
    const double secs = support::elapsed_seconds(t0, support::now_ns());
    best = std::min(best, secs / size * 1e9);
  }
  return best;
}

}  // namespace

int main() {
  BenchContext bc;
  auto& v = bc.vm();
  const auto divloop = build_div_loop(v);
  const auto addloop = build_add_loop(v);
  vm::verify(v.module(), divloop);
  vm::verify(v.module(), addloop);

  std::cout << "=== Table 5: the CIL of the integer-division loop ===\n";
  std::cout << vm::disassemble_cil(v.module(), divloop) << "\n";

  std::cout << "=== Tables 6-8: per-profile compiled code for the division "
               "loop ===\n";
  std::cout << "(mono023 executes the CIL above literally, one memory "
               "round-trip per stack slot — Table 7;\n"
               " rotor10 adds dynamic tag dispatch on top of it — Table 8.)\n\n";
  for (const char* prof : {"clr11", "ibm131", "sun14"}) {
    std::cout << vm::disassemble_compiled(v, divloop,
                                          vm::profiles::by_name(prof))
              << "\n";
  }

  std::cout << "=== Code quality: executed operations per IL instruction ===\n";
  support::ResultTable q("dispatched instructions for the division loop");
  for (auto& e : bc.engines()) {
    if (e->profile().tier == vm::Tier::Optimizing) {
      const auto cq = vm::code_quality(v, divloop, e->profile());
      q.set("register instrs", e->name(),
            static_cast<double>(cq.optimized_instructions));
    } else {
      q.set("register instrs", e->name(),
            static_cast<double>(v.module().method(divloop).code.size()));
    }
  }
  q.print(std::cout);

  std::cout << "\n=== Measured ns per loop iteration ===\n";
  support::ResultTable t("ns/iteration");
  constexpr std::int32_t kSize = 1 << 20;
  for (auto& e : bc.engines()) {
    t.set("div loop", e->name(), ns_per_iter(bc, *e, divloop, kSize));
    t.set("add loop", e->name(), ns_per_iter(bc, *e, addloop, kSize));
  }
  t.print(std::cout);

  std::cout << "\n=== §5: the 64-local enregistration limit ===\n";
  const auto few = build_many_locals_loop(v, 8);
  const auto many = build_many_locals_loop(v, 80);
  support::ResultTable el("ns/iteration (same arithmetic, 8 vs 80 locals)");
  for (const char* prof : {"clr11", "ibm131"}) {
    vm::Engine& e = bc.engine(prof);
    el.set("8 locals", prof, ns_per_iter(bc, e, few, kSize));
    el.set("80 locals", prof, ns_per_iter(bc, e, many, kSize));
  }
  el.print(std::cout);
  std::cout << "\nclr11 enregisters only the first 64 slots (paper §5): the "
               "80-local loop pays memory round-trips on clr11 but not on "
               "ibm131 (no limit).\n";
  return 0;
}

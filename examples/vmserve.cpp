// vmserve: the multi-tenant execution service over SciMark jobs.
//
//   $ ./vmserve [engine] [--workers N] [--tenants N] [--rounds N]
//               [--fuel F] [--mem MB] [--deadline MS] [--json]
//   $ ./vmserve [engine] --listen PORT [--workers N] [--tenants N] ...
//
// Builds the SciMark kernels into one VM, starts an ExecutionService with N
// workers on the chosen engine profile, registers N tenants (each with the
// given per-job fuel, wall-clock deadline and per-tenant memory budget;
// 0 = unmetered), submits `rounds` rounds of mixed-size jobs per tenant,
// then prints every job's outcome and the per-tenant telemetry summary
// (fuel spent, bytes charged, jobs completed/killed, queue wait).
//
// With --listen the local job loop is replaced by the TCP front end
// (src/vm/net): the service binds 127.0.0.1:PORT (0 = ephemeral; the bound
// port is printed), accepts any registered tenant (HELLO token ignored —
// this is a loopback demo, not a deployment posture), and serves SUBMIT/
// STATS/SNAPSHOT frames until stdin reaches EOF.
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "cil/sm.hpp"
#include "vm/net/server.hpp"
#include "vm/serialize.hpp"
#include "vm/service/service.hpp"
#include "vm/telemetry/summary.hpp"
#include "vm/telemetry/telemetry.hpp"

namespace {

const char* kUsage =
    "usage: vmserve [engine] [--workers N] [--tenants N] [--rounds N]\n"
    "               [--fuel F] [--mem MB] [--deadline MS] [--json]\n"
    "               [--listen PORT]\n"
    "               [--load-snapshot FILE] [--save-snapshot FILE]\n"
    "  engine     profile name (clr11, mono023, rotor10, clr11.tiered, ...)\n"
    "  --workers  worker threads sharing the VM          (default 4)\n"
    "  --tenants  tenants submitting jobs                (default 2)\n"
    "  --rounds   rounds of 5 mixed SciMark jobs each    (default 2)\n"
    "  --fuel     per-job fuel budget, backward branches (default 0 = off)\n"
    "  --mem      per-tenant allocation budget in MB     (default 0 = off)\n"
    "  --deadline per-job wall-clock budget in ms        (default 0 = off)\n"
    "  --listen   serve jobs over TCP on 127.0.0.1:PORT (0 = ephemeral)\n"
    "             instead of running the local job loop; runs until stdin\n"
    "             EOF, then prints the telemetry summary\n"
    "  --load-snapshot  warm-boot the service's code cache from FILE\n"
    "  --save-snapshot  after draining, archive the warmed cache to FILE\n";

struct JobSpec {
  const char* name;
  std::int32_t method;
  std::vector<hpcnet::vm::Slot> args;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hpcnet;
  using vm::Slot;
  namespace telemetry = vm::telemetry;
  namespace service = vm::service;

  std::string engine = "clr11";
  int workers = 4;
  int tenants = 2;
  int rounds = 2;
  std::uint64_t fuel = 0;
  std::uint64_t mem_mb = 0;
  std::uint64_t deadline_ms = 0;
  bool listen = false;
  int listen_port = 0;
  bool json = false;
  std::string load_snapshot;
  std::string save_snapshot;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--workers" && i + 1 < argc) {
      workers = std::atoi(argv[++i]);
    } else if (a == "--load-snapshot" && i + 1 < argc) {
      load_snapshot = argv[++i];
    } else if (a == "--save-snapshot" && i + 1 < argc) {
      save_snapshot = argv[++i];
    } else if (a == "--tenants" && i + 1 < argc) {
      tenants = std::atoi(argv[++i]);
    } else if (a == "--rounds" && i + 1 < argc) {
      rounds = std::atoi(argv[++i]);
    } else if (a == "--fuel" && i + 1 < argc) {
      fuel = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (a == "--mem" && i + 1 < argc) {
      mem_mb = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (a == "--deadline" && i + 1 < argc) {
      deadline_ms = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (a == "--listen" && i + 1 < argc) {
      listen = true;
      listen_port = std::atoi(argv[++i]);
    } else if (a == "--json") {
      json = true;
    } else if (a == "--help" || a == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else {
      engine = a;
    }
  }

  telemetry::set_enabled(true);

  vm::VirtualMachine machine;
  const std::vector<JobSpec> jobs = {
      {"fft", cil::build_sm_fft(machine),
       {Slot::from_i32(256), Slot::from_i32(2)}},
      {"sor", cil::build_sm_sor(machine),
       {Slot::from_i32(100), Slot::from_i32(10)}},
      {"montecarlo", cil::build_sm_montecarlo(machine),
       {Slot::from_i32(200000)}},
      {"sparse", cil::build_sm_sparse(machine),
       {Slot::from_i32(1000), Slot::from_i32(5000), Slot::from_i32(10)}},
      {"lu", cil::build_sm_lu(machine), {Slot::from_i32(100)}},
  };

  vm::EngineProfile profile;
  try {
    profile = vm::profiles::by_name(engine);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), kUsage);
    return 1;
  }

  // Warm-boot the code cache before the service spins up its workers, so
  // even the first job of the run dispatches into archived optimized code.
  if (!load_snapshot.empty()) {
    try {
      const vm::ArchiveStats s = vm::load_snapshot(machine, load_snapshot);
      std::fprintf(stderr, "snapshot: restored %zu methods, %zu misses\n",
                   s.restored, s.missed);
    } catch (const vm::SerializeError& e) {
      std::fprintf(stderr, "snapshot load failed: %s\n", e.what());
      return 1;
    }
  }

  service::ExecutionService svc(machine, profile,
                                {.workers = workers, .warm_start = nullptr});
  for (int t = 0; t < tenants; ++t) {
    svc.add_tenant({.name = "tenant-" + std::to_string(t),
                    .fuel_per_job = fuel,
                    .memory_budget_bytes = mem_mb << 20,
                    .deadline_ms = deadline_ms});
  }

  if (listen) {
    vm::net::ServerOptions sopt;
    sopt.port = static_cast<std::uint16_t>(listen_port);
    sopt.open_tenants = true;  // loopback demo: any registered tenant
    vm::net::VmServer server(machine, svc, sopt);
    try {
      server.start();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "listen failed: %s\n", e.what());
      return 1;
    }
    std::printf("vmserve: listening on 127.0.0.1:%u (%d workers, %d tenants)\n",
                server.port(), svc.workers(), tenants);
    std::printf("vmserve: close stdin (ctrl-d) to shut down\n");
    std::fflush(stdout);
    // Serve until the operator (or driving script) closes stdin.
    char buf[256];
    while (std::fgets(buf, sizeof buf, stdin) != nullptr) {
    }
    server.stop();
    svc.drain();
    telemetry::SummaryOptions opts;
    opts.json = json;
    telemetry::print_summary(std::cout, telemetry::snapshot(),
                             &machine.module(), opts);
    return 0;
  }

  struct Pending {
    std::string tenant;
    const char* job;
    service::JobHandle handle;
  };
  std::vector<Pending> pending;
  for (int r = 0; r < rounds; ++r) {
    for (int t = 0; t < tenants; ++t) {
      const std::string tenant = "tenant-" + std::to_string(t);
      for (const JobSpec& j : jobs) {
        pending.push_back(
            {tenant, j.name, svc.submit(tenant, j.method, j.args)});
      }
    }
  }

  std::printf("%-10s %-11s %-13s %14s %10s %9s %9s\n", "tenant", "job",
              "outcome", "value", "fuel", "queue_ms", "run_ms");
  for (Pending& p : pending) {
    const service::JobResult r = p.handle.wait();
    std::printf("%-10s %-11s %-13s %14.6g %10llu %9.3f %9.3f\n",
                p.tenant.c_str(), p.job, service::outcome_name(r.outcome),
                r.outcome == service::JobOutcome::Completed ? r.value.f64 : 0.0,
                static_cast<unsigned long long>(r.fuel_spent),
                static_cast<double>(r.queue_ns) * 1e-6,
                static_cast<double>(r.run_ns) * 1e-6);
  }
  svc.drain();
  std::printf("\n");

  if (!save_snapshot.empty()) {
    // capture_snapshot drains first — the cache is quiescent while the
    // archive walks it. save_snapshot then archives every warmed profile.
    svc.capture_snapshot();
    try {
      vm::save_snapshot(machine, save_snapshot);
      std::fprintf(stderr, "snapshot: saved to %s\n", save_snapshot.c_str());
    } catch (const vm::SerializeError& e) {
      std::fprintf(stderr, "snapshot save failed: %s\n", e.what());
      return 1;
    }
  }

  telemetry::SummaryOptions opts;
  opts.json = json;
  telemetry::print_summary(std::cout, telemetry::snapshot(), &machine.module(),
                           opts);
  return 0;
}

// Quickstart: author a CIL method with ILBuilder, verify it, and run it on
// all three engine tiers — the 60-second tour of the public API.
//
//   $ ./quickstart
//
#include <cstdio>

#include "vm/disasm.hpp"
#include "vm/execution.hpp"
#include "vm/ilbuilder.hpp"
#include "vm/verifier.hpp"

using namespace hpcnet::vm;

int main() {
  // 1. A virtual machine: module (metadata), heap (GC), monitors, threads.
  VirtualMachine vm;

  // 2. Author a method in CIL:  int sum_squares(int n) {
  //      int s = 0; for (int i = 1; i <= n; ++i) s += i * i; return s; }
  ILBuilder b(vm.module(), "sum_squares", {{ValType::I32}, ValType::I32});
  const auto s = b.add_local(ValType::I32);
  const auto i = b.add_local(ValType::I32);
  auto cond = b.new_label();
  auto body = b.new_label();
  b.ldc_i4(0).stloc(s);
  b.ldc_i4(1).stloc(i);
  b.br(cond);
  b.bind(body);
  b.ldloc(s).ldloc(i).ldloc(i).mul().add().stloc(s);
  b.ldloc(i).ldc_i4(1).add().stloc(i);
  b.bind(cond);
  b.ldloc(i).ldarg(0).ble(body);
  b.ldloc(s).ret();
  const std::int32_t method = b.finish();

  // 3. Verify: type-checks the stack, resolves branches, builds GC maps.
  verify(vm.module(), method);
  std::printf("=== CIL ===\n%s\n",
              disassemble_cil(vm.module(), method).c_str());

  // 4. Run the same CIL on each engine tier — the paper's core experiment.
  VMContext& ctx = vm.main_context();
  for (const EngineProfile& profile :
       {profiles::clr11(), profiles::mono023(), profiles::rotor10()}) {
    auto engine = make_engine(vm, profile);
    Slot arg = Slot::from_i32(100);
    const Slot r = engine->invoke(ctx, method, std::span<const Slot>(&arg, 1));
    std::printf("%-10s sum_squares(100) = %d\n", profile.name.c_str(), r.i32);
  }

  // 5. Peek at what the optimizing "JIT" actually executes.
  std::printf("\n=== register IR (clr11 profile) ===\n%s",
              disassemble_compiled(vm, method, profiles::clr11()).c_str());
  return 0;
}

// jit_explorer: the paper's §5 methodology as an interactive tool — author a
// benchmark loop, then inspect what each "JIT" makes of it: the CIL
// (Table 5), the literal stack execution of the Baseline tier (Table 7), and
// the register IR of every Optimizing profile (Tables 6/8), side by side
// with measured per-iteration cost.
//
//   $ ./jit_explorer [div|add|daxpy]
//
#include <cstdio>
#include <cstring>
#include <iostream>

#include "cil/common.hpp"
#include "cil/sm.hpp"
#include "cil/suite.hpp"
#include "support/timer.hpp"
#include "vm/disasm.hpp"

using namespace hpcnet;
using namespace hpcnet::cil;
using vm::Slot;
using vm::ValType;

namespace {

std::int32_t build_loop(vm::VirtualMachine& v, const std::string& which) {
  if (which == "daxpy") return build_bce_daxpy_ldlen(v);
  return cached(v, "explore." + which, [&] {
    vm::ILBuilder b(v.module(), "explore." + which,
                    {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto x = b.add_local(ValType::I32);
    const auto y = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    b.ldarg(0).stloc(bound);
    b.ldc_i4(2147483647).stloc(x);
    b.ldc_i4(3).stloc(y);
    counted_loop(b, i, bound, [&] {
      if (which == "add") {
        b.ldloc(x).ldloc(y).add().stloc(x);
      } else {
        b.ldloc(x).ldc_i4(3).div().stloc(x);
      }
    });
    b.ldloc(x).ret();
    return b.finish();
  });
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "div";
  BenchContext bc;
  auto& v = bc.vm();
  std::int32_t method;
  try {
    method = build_loop(v, which);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "usage: jit_explorer [div|add|daxpy] (%s)\n",
                 e.what());
    return 1;
  }
  vm::verify(v.module(), method);

  std::printf("================ CIL (what the 'C# compiler' emitted) "
              "================\n%s\n",
              vm::disassemble_cil(v.module(), method).c_str());

  std::printf("mono023 (Baseline tier) executes the CIL above literally:\n"
              "every stack slot is a memory round-trip — compare the paper's "
              "Mono listing in Table 7.\n");
  std::printf("rotor10 (Interp tier) additionally tag-checks each operand "
              "and polls every instruction — the Table 8 behaviour.\n\n");

  for (const auto& profile : vm::profiles::all()) {
    if (profile.tier != vm::Tier::Optimizing) continue;
    std::printf("================ %s register IR ================\n%s\n",
                profile.name.c_str(),
                vm::disassemble_compiled(v, method, profile).c_str());
  }

  std::printf("================ measured ns/iteration ================\n");
  const bool two_args = which == "daxpy";
  for (auto& e : bc.engines()) {
    // Warm-up (triggers compilation), then one timed run.
    std::vector<Slot> warm = two_args
                                 ? std::vector<Slot>{Slot::from_i32(64),
                                                     Slot::from_i32(2)}
                                 : std::vector<Slot>{Slot::from_i32(1024)};
    bc.invoke(*e, method, warm);
    const std::int32_t n = 1 << 20;
    std::vector<Slot> args =
        two_args ? std::vector<Slot>{Slot::from_i32(4096), Slot::from_i32(256)}
                 : std::vector<Slot>{Slot::from_i32(n)};
    const double iters = two_args ? 4096.0 * 256 : n;
    const auto t0 = support::now_ns();
    bc.invoke(*e, method, args);
    const double secs = support::elapsed_seconds(t0, support::now_ns());
    std::printf("  %-10s %8.2f ns/iter\n", e->name().c_str(),
                secs / iters * 1e9);
  }
  return 0;
}

// jit_explorer: the paper's §5 methodology as an interactive tool — author a
// benchmark loop, then inspect what each "JIT" makes of it: the CIL
// (Table 5), the literal stack execution of the Baseline tier (Table 7), and
// the register IR of every Optimizing profile (Tables 6/8), side by side
// with measured per-iteration cost.
//
//   $ ./jit_explorer [div|add|daxpy|call|cse|licm]
//   $ ./jit_explorer call --passes [profile]
//
// With --passes the tool compiles under one profile (default clr11) and
// prints the IR after every enabled pass, so the effect of inlining, CSE,
// LICM and bounds-check elimination can be read off as diffs between
// consecutive listings.
#include <cstdio>
#include <cstring>
#include <iostream>

#include "cil/common.hpp"
#include "cil/sm.hpp"
#include "cil/suite.hpp"
#include "support/timer.hpp"
#include "vm/disasm.hpp"
#include "vm/regcompile.hpp"
#include "vm/serialize.hpp"

using namespace hpcnet;
using namespace hpcnet::cil;
using vm::Slot;
using vm::ValType;

namespace {

std::int32_t build_loop(vm::VirtualMachine& v, const std::string& which) {
  if (which == "daxpy") return build_bce_daxpy_ldlen(v);
  if (which == "call") {
    // A hot one-liner callee: the inlining pass should splice it into the
    // loop, after which no call.r remains in the clr11/ibm131 listings.
    const std::int32_t sq = cached(v, "explore.sq", [&] {
      vm::ILBuilder b(v.module(), "explore.sq",
                      {{ValType::I32}, ValType::I32});
      b.ldarg(0).ldarg(0).mul().ldc_i4(1).add().ret();
      return b.finish();
    });
    return cached(v, "explore.call", [&] {
      vm::ILBuilder b(v.module(), "explore.call",
                      {{ValType::I32}, ValType::I32});
      const auto i = b.add_local(ValType::I32);
      const auto x = b.add_local(ValType::I32);
      const auto bound = b.add_local(ValType::I32);
      b.ldarg(0).stloc(bound);
      b.ldc_i4(3).stloc(x);
      counted_loop(b, i, bound, [&] { b.ldloc(x).call(sq).stloc(x); });
      b.ldloc(x).ret();
      return b.finish();
    });
  }
  if (which == "cse") {
    return cached(v, "explore.cse", [&] {
      // x = (x*x + 3) ^ ((x*x + 3) >> 1): the repeated subtree should
      // collapse to a single mul/addi pair under profiles with CSE.
      vm::ILBuilder b(v.module(), "explore.cse",
                      {{ValType::I32}, ValType::I32});
      const auto i = b.add_local(ValType::I32);
      const auto x = b.add_local(ValType::I32);
      const auto bound = b.add_local(ValType::I32);
      b.ldarg(0).stloc(bound);
      b.ldc_i4(7).stloc(x);
      counted_loop(b, i, bound, [&] {
        b.ldloc(x).ldloc(x).mul().ldc_i4(3).add();
        b.ldloc(x).ldloc(x).mul().ldc_i4(3).add().ldc_i4(1).shr();
        b.xor_().stloc(x);
      });
      b.ldloc(x).ret();
      return b.finish();
    });
  }
  if (which == "licm") {
    return cached(v, "explore.licm", [&] {
      // acc += a*b with loop-invariant a and b: the mul should move to the
      // loop preheader under profiles with LICM.
      vm::ILBuilder b(v.module(), "explore.licm",
                      {{ValType::I32, ValType::I32}, ValType::I32});
      const auto i = b.add_local(ValType::I32);
      const auto acc = b.add_local(ValType::I32);
      const auto bound = b.add_local(ValType::I32);
      b.ldarg(0).stloc(bound);
      b.ldc_i4(0).stloc(acc);
      counted_loop(b, i, bound, [&] {
        b.ldloc(acc).ldarg(1).ldarg(1).mul().add().stloc(acc);
      });
      b.ldloc(acc).ret();
      return b.finish();
    });
  }
  return cached(v, "explore." + which, [&] {
    vm::ILBuilder b(v.module(), "explore." + which,
                    {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto x = b.add_local(ValType::I32);
    const auto y = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    b.ldarg(0).stloc(bound);
    b.ldc_i4(2147483647).stloc(x);
    b.ldc_i4(3).stloc(y);
    counted_loop(b, i, bound, [&] {
      if (which == "add") {
        b.ldloc(x).ldloc(y).add().stloc(x);
      } else {
        b.ldloc(x).ldc_i4(3).div().stloc(x);
      }
    });
    b.ldloc(x).ret();
    return b.finish();
  });
}

int dump_passes(vm::VirtualMachine& v, std::int32_t method,
                const std::string& profile_name) {
  // by_name also resolves derived profiles ("clr11.vec", "clr11.tiered"),
  // so the vector-lowering pass can be inspected with e.g.
  //   jit_explorer daxpy --passes clr11.vec
  vm::EngineProfile profile;
  try {
    profile = vm::profiles::by_name(profile_name);
  } catch (const std::exception&) {
    std::fprintf(stderr, "unknown optimizing profile: %s\n",
                 profile_name.c_str());
    return 1;
  }
  if (profile.tier != vm::Tier::Optimizing) {
    std::fprintf(stderr, "profile %s does not reach the optimizing tier\n",
                 profile_name.c_str());
    return 1;
  }
  std::printf("================ CIL ================\n%s\n",
              vm::disassemble_cil(v.module(), method).c_str());
  std::printf("======== %s, IR after each pass ========\n",
              profile.name.c_str());
  vm::regir::compile_traced(
      v.module(), v.module().method(method), profile.flags,
      [](const char* pass, const std::string& listing) {
        std::printf("---- after %s ----\n%s\n", pass, listing.c_str());
      });
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string which = argc > 1 ? argv[1] : "div";
  bool passes = false;
  std::string profile_name = "clr11";
  std::string load_snapshot;
  std::string save_snapshot;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--passes") == 0) {
      passes = true;
    } else if (std::strcmp(argv[i], "--load-snapshot") == 0 && i + 1 < argc) {
      load_snapshot = argv[++i];
    } else if (std::strcmp(argv[i], "--save-snapshot") == 0 && i + 1 < argc) {
      save_snapshot = argv[++i];
    } else {
      profile_name = argv[i];
    }
  }
  BenchContext bc;
  auto& v = bc.vm();
  std::int32_t method;
  try {
    method = build_loop(v, which);
  } catch (const std::exception& e) {
    std::fprintf(stderr,
                 "usage: jit_explorer [div|add|daxpy|call|cse|licm] "
                 "[--passes [profile]] [--load-snapshot FILE] "
                 "[--save-snapshot FILE] (%s)\n",
                 e.what());
    return 1;
  }
  vm::verify(v.module(), method);

  if (passes) return dump_passes(v, method, profile_name);

  // Warm-boot every profile's cache from an archive captured by an earlier
  // --save-snapshot run: the "warm-up" invocations below then publish
  // nothing new (the measured loop runs the archived code).
  if (!load_snapshot.empty()) {
    try {
      const vm::ArchiveStats s = vm::load_snapshot(v, load_snapshot);
      std::fprintf(stderr, "snapshot: restored %zu methods, %zu misses\n",
                   s.restored, s.missed);
    } catch (const vm::SerializeError& e) {
      std::fprintf(stderr, "snapshot load failed: %s\n", e.what());
      return 1;
    }
  }

  std::printf("================ CIL (what the 'C# compiler' emitted) "
              "================\n%s\n",
              vm::disassemble_cil(v.module(), method).c_str());

  std::printf("mono023 (Baseline tier) executes the CIL above literally:\n"
              "every stack slot is a memory round-trip — compare the paper's "
              "Mono listing in Table 7.\n");
  std::printf("rotor10 (Interp tier) additionally tag-checks each operand "
              "and polls every instruction — the Table 8 behaviour.\n\n");

  for (const auto& profile : vm::profiles::all()) {
    if (profile.tier != vm::Tier::Optimizing) continue;
    std::printf("================ %s register IR ================\n%s\n",
                profile.name.c_str(),
                vm::disassemble_compiled(v, method, profile).c_str());
  }

  std::printf("================ measured ns/iteration ================\n");
  const bool two_args = which == "daxpy" || which == "licm";
  for (auto& e : bc.engines()) {
    // Warm-up (triggers compilation), then one timed run.
    std::vector<Slot> warm = two_args
                                 ? std::vector<Slot>{Slot::from_i32(64),
                                                     Slot::from_i32(2)}
                                 : std::vector<Slot>{Slot::from_i32(1024)};
    bc.invoke(*e, method, warm);
    const std::int32_t n = 1 << 20;
    std::vector<Slot> args;
    if (which == "daxpy") {
      args = {Slot::from_i32(4096), Slot::from_i32(256)};
    } else if (which == "licm") {
      args = {Slot::from_i32(n), Slot::from_i32(9)};
    } else {
      args = {Slot::from_i32(n)};
    }
    const double iters = which == "daxpy" ? 4096.0 * 256 : n;
    const auto t0 = support::now_ns();
    bc.invoke(*e, method, args);
    const double secs = support::elapsed_seconds(t0, support::now_ns());
    std::printf("  %-10s %8.2f ns/iter\n", e->name().c_str(),
                secs / iters * 1e9);
  }

  if (!save_snapshot.empty()) {
    // All invocations are done (single-threaded tool): the caches are
    // quiescent, so capture straight into a file.
    try {
      vm::save_snapshot(v, save_snapshot);
      std::fprintf(stderr, "snapshot: saved to %s\n", save_snapshot.c_str());
    } catch (const vm::SerializeError& e) {
      std::fprintf(stderr, "snapshot save failed: %s\n", e.what());
      return 1;
    }
  }
  return 0;
}

// moldyn_demo: the JGF molecular-dynamics workload (argon atoms under a
// Lennard-Jones potential) — one of the applications the paper's Table 4
// inventories — run natively with energy reporting per step block.
//
//   $ ./moldyn_demo [mm] [moves]     (default 6 10: 864 particles, 10 steps)
//
#include <cstdio>
#include <cstdlib>

#include "kernels/jgf.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace hpcnet;
  const int mm = argc > 1 ? std::atoi(argv[1]) : 6;
  const int moves = argc > 2 ? std::atoi(argv[2]) : 10;
  if (mm < 2 || mm > 12 || moves < 1) {
    std::fprintf(stderr, "usage: moldyn_demo [mm 2..12] [moves >=1]\n");
    return 1;
  }

  std::printf("MolDyn: %d x %d x %d fcc cells -> %d argon atoms, %d steps\n",
              mm, mm, mm, 4 * mm * mm * mm, moves);
  const auto t0 = support::now_ns();
  const kernels::moldyn::Result r = kernels::moldyn::simulate(mm, moves);
  const double secs = support::elapsed_seconds(t0, support::now_ns());

  std::printf("  particles:            %d\n", r.particles);
  std::printf("  pair interactions:    %.0f\n", r.interactions);
  std::printf("  final kinetic energy: %.6f\n", r.ek);
  std::printf("  potential energy:     %.6f\n", r.epot);
  std::printf("  virial:               %.6f\n", r.vir);
  std::printf("  wall time:            %.3f s (%.2f M interactions/s)\n",
              secs, r.interactions / secs * 1e-6);
  return 0;
}

// raytracer_demo: the JGF 64-sphere ray tracer (Table 4) rendered natively
// to a PPM image, plus the JGF-style pixel checksum.
//
//   $ ./raytracer_demo [n] [out.ppm]     (default 256, no file)
//
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "kernels/jgf.hpp"
#include "support/timer.hpp"

int main(int argc, char** argv) {
  using namespace hpcnet;
  const int n = argc > 1 ? std::atoi(argv[1]) : 256;
  if (n < 8 || n > 4096) {
    std::fprintf(stderr, "usage: raytracer_demo [n 8..4096] [out.ppm]\n");
    return 1;
  }

  std::printf("RayTracer: 64 spheres at %dx%d\n", n, n);
  std::vector<std::int32_t> pixels;
  const auto t0 = support::now_ns();
  const std::int64_t checksum = kernels::raytracer::render_image(n, pixels);
  const double secs = support::elapsed_seconds(t0, support::now_ns());
  std::printf("  checksum:  %lld\n", static_cast<long long>(checksum));
  std::printf("  wall time: %.3f s (%.2f Kpixels/s)\n", secs,
              n * static_cast<double>(n) / secs * 1e-3);

  if (argc > 2) {
    FILE* f = std::fopen(argv[2], "wb");
    if (f == nullptr) {
      std::perror("fopen");
      return 1;
    }
    std::fprintf(f, "P6\n%d %d\n255\n", n, n);
    for (const std::int32_t pix : pixels) {
      std::fputc((pix >> 16) & 0xFF, f);
      std::fputc((pix >> 8) & 0xFF, f);
      std::fputc(pix & 0xFF, f);
    }
    std::fclose(f);
    std::printf("  wrote %s\n", argv[2]);
  }
  return 0;
}

// scimark_cli: the paper's headline experiment as a command-line tool.
//
//   $ ./scimark_cli [small|large] [engine ...]
//
// Runs the SciMark suite on the requested engines (default: all seven
// profiles plus the native baseline), validates every kernel against the
// native implementation and prints the Graph 9/10/11-style table.
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "cil/suite.hpp"
#include "support/reporter.hpp"

int main(int argc, char** argv) {
  using namespace hpcnet;
  using namespace hpcnet::cil;

  bool large = false;
  std::vector<std::string> engines;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "large") == 0) {
      large = true;
    } else if (std::strcmp(argv[i], "small") == 0) {
      large = false;
    } else {
      engines.emplace_back(argv[i]);
    }
  }

  const ScimarkSizes sizes =
      large ? ScimarkSizes::large_model() : ScimarkSizes::small_model();
  BenchContext bc;
  if (engines.empty()) {
    for (auto& e : bc.engines()) engines.push_back(e->name());
  }

  support::ResultTable t(std::string("SciMark MFlops, ") +
                         (large ? "large" : "small") + " memory model");
  {
    const ScimarkResult r = run_scimark_native(sizes);
    for (const auto& k : r.kernels) t.set(k.name, "native", k.mflops);
    t.set("composite", "native", r.composite);
  }
  for (const std::string& name : engines) {
    std::fprintf(stderr, "running %s...\n", name.c_str());
    try {
      const ScimarkResult r =
          run_scimark_cil(bc.vm(), bc.engine(name), sizes, true);
      for (const auto& k : r.kernels) t.set(k.name, name, k.mflops);
      t.set("composite", name, r.composite);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "  %s failed: %s\n", name.c_str(), e.what());
      return 1;
    }
  }
  t.print(std::cout);
  std::cout << "\nall kernel results validated against the native "
               "baselines\n";
  return 0;
}

// vmprof: run SciMark kernels under engine profiles with telemetry enabled.
//
//   $ ./vmprof [fft|sor|montecarlo|sparse|lu|all] [engine ...]
//             [--large] [--trace FILE] [--json] [--mt] [--top N]
//
// Prints the MFlops table, a JIT-time vs steady-state breakdown per engine,
// and the full telemetry summary (per-method profile, JIT pass times, GC
// pause histogram, monitor contention), then writes a chrome://tracing JSON
// trace (load via chrome://tracing or https://ui.perfetto.dev).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "cil/mt.hpp"
#include "cil/suite.hpp"
#include "support/reporter.hpp"
#include "vm/telemetry/summary.hpp"
#include "vm/telemetry/telemetry.hpp"
#include "vm/telemetry/trace_writer.hpp"

namespace {

const char* kUsage =
    "usage: vmprof [fft|sor|montecarlo|sparse|lu|all] [engine ...]\n"
    "              [--large] [--trace FILE] [--json] [--mt] [--top N]\n";

std::string kernel_arg(const std::string& a) {
  if (a == "fft") return "FFT";
  if (a == "sor") return "SOR";
  if (a == "montecarlo") return "MonteCarlo";
  if (a == "sparse") return "Sparse";
  if (a == "lu") return "LU";
  if (a == "all") return "";
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hpcnet;
  using namespace hpcnet::cil;
  namespace telemetry = hpcnet::vm::telemetry;

  std::string only;  // empty = all kernels
  bool have_kernel = false;
  bool large = false;
  bool json = false;
  bool mt = false;
  std::string trace_path = "vmprof_trace.json";
  std::size_t top = 20;
  std::vector<std::string> engines;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--large" || a == "large") {
      large = true;
    } else if (a == "--json") {
      json = true;
    } else if (a == "--mt") {
      mt = true;
    } else if (a == "--trace" && i + 1 < argc) {
      trace_path = argv[++i];
    } else if (a == "--top" && i + 1 < argc) {
      top = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (a == "--help" || a == "-h") {
      std::fputs(kUsage, stdout);
      return 0;
    } else if (!have_kernel && kernel_arg(a) != "?") {
      only = kernel_arg(a);
      have_kernel = true;
    } else {
      engines.push_back(a);
    }
  }
  if (engines.empty()) engines = {"rotor10", "mono023", "clr11"};

  telemetry::set_enabled(true);

  const ScimarkSizes sizes =
      large ? ScimarkSizes::large_model() : ScimarkSizes::small_model();
  BenchContext bc;
  // Shrink the GC threshold so even the small model triggers collections and
  // the pause histogram has data.
  bc.vm().heap().set_threshold(8u << 20);

  support::ResultTable mflops("vmprof: SciMark MFlops (" +
                              std::string(large ? "large" : "small") +
                              " model" +
                              (only.empty() ? "" : ", " + only + " only") +
                              ")");
  std::vector<double> kernel_secs(engines.size(), 0.0);
  for (std::size_t i = 0; i < engines.size(); ++i) {
    const std::string& name = engines[i];
    std::fprintf(stderr, "running %s...\n", name.c_str());
    try {
      const ScimarkResult r =
          run_scimark_cil(bc.vm(), bc.engine(name), sizes, true, only);
      for (const auto& k : r.kernels) {
        mflops.set(k.name, name, k.mflops);
        kernel_secs[i] += k.seconds;
      }
      if (only.empty()) mflops.set("composite", name, r.composite);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "  %s failed: %s\n", name.c_str(), e.what());
      return 1;
    }
  }

  if (mt) {
    // A contended-monitor workload so monitor telemetry has data: each of 4
    // threads bumps a shared counter under one lock, on the first engine.
    // The iteration count is high enough that the threads genuinely overlap.
    std::fprintf(stderr, "running mt_sync on %s...\n", engines[0].c_str());
    const std::int32_t sync = build_mt_sync(bc.vm());
    bc.invoke(bc.engine(engines[0]), sync,
              {vm::Slot::from_i32(4), vm::Slot::from_i32(20000)});
  }

  // One explicit collection so the run always ends with GC data even if the
  // allocation windows never crossed the threshold.
  bc.vm().collect();

  const telemetry::Snapshot snap = telemetry::snapshot();

  // JIT-time vs steady-state: kernel wall time includes first-call compiles,
  // so steady = kernel - compile for each engine that JITs.
  support::ResultTable split("vmprof: JIT time vs steady-state, per engine");
  for (std::size_t i = 0; i < engines.size(); ++i) {
    const telemetry::EngineJitTimes* j = snap.engine_jit(engines[i]);
    const double jit_s = j ? j->compile_ns * 1e-9 : 0.0;
    split.set(engines[i], "kernel_s", kernel_secs[i]);
    split.set(engines[i], "jit_s", jit_s);
    split.set(engines[i], "steady_s", kernel_secs[i] - jit_s);
    split.set(engines[i], "jit_pct",
              kernel_secs[i] > 0 ? 100.0 * jit_s / kernel_secs[i] : 0.0);
  }

  telemetry::SummaryOptions opts;
  opts.top_methods = top;
  opts.json = json;
  if (json) {
    mflops.print_json(std::cout);
    std::cout << "\n";
    split.print_json(std::cout);
    std::cout << "\n";
  } else {
    mflops.print(std::cout);
    std::cout << "\n";
    split.print(std::cout);
    std::cout << "\n";
  }
  telemetry::print_summary(std::cout, snap, &bc.vm().module(), opts);

  std::ofstream trace(trace_path, std::ios::binary);
  if (!trace) {
    std::fprintf(stderr, "cannot open %s for writing\n", trace_path.c_str());
    return 1;
  }
  telemetry::write_chrome_trace(trace, snap);
  std::fprintf(stderr, "wrote %s (%zu trace events)\n", trace_path.c_str(),
               snap.events.size());
  return 0;
}

// Create micro-benchmark (Table 1): object and array allocation throughput.
// Allocation-heavy by design — this is also the GC stress path, since the
// engines collect at the heap threshold mid-benchmark.
#include "cil/common.hpp"
#include "cil/micro.hpp"
#include "vm/intrinsics.hpp"

namespace hpcnet::cil {

namespace {

std::int32_t create_target_class(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  std::int32_t cls = mod.find_class("bench.CreateTarget");
  if (cls < 0) {
    cls = mod.define_class("bench.CreateTarget",
                           {{"x", ValType::I32}, {"y", ValType::F64}});
  }
  return cls;
}

}  // namespace

std::int32_t build_create_object(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  const std::int32_t cls = create_target_class(v);
  return cached(v, "micro.create.object", [&] {
    ILBuilder b(mod, "micro.create.object", {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    const auto last = b.add_local(ValType::Ref);
    b.ldarg(0).stloc(bound);
    counted_loop(b, i, bound, [&] {
      b.newobj(cls).stloc(last);
      b.ldloc(last).ldloc(i).stfld(cls, "x");
    });
    b.ldloc(last).ldfld(cls, "x").ret();
    return b.finish();
  });
}

std::int32_t build_create_array(vm::VirtualMachine& v, std::int32_t length) {
  const std::string name =
      "micro.create.array" + std::to_string(length);
  return cached(v, name, [&] {
    ILBuilder b(v.module(), name, {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    const auto last = b.add_local(ValType::Ref);
    b.ldarg(0).stloc(bound);
    counted_loop(b, i, bound, [&] {
      b.ldc_i4(length).newarr(ValType::F64).stloc(last);
    });
    b.ldloc(last).ldlen().ret();
    return b.finish();
  });
}

std::int32_t build_create_matrix2(vm::VirtualMachine& v, std::int32_t rows,
                                  std::int32_t cols) {
  const std::string name = "micro.create.matrix" + std::to_string(rows) + "x" +
                           std::to_string(cols);
  return cached(v, name, [&] {
    ILBuilder b(v.module(), name, {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    const auto last = b.add_local(ValType::Ref);
    b.ldarg(0).stloc(bound);
    counted_loop(b, i, bound, [&] {
      b.ldc_i4(rows).ldc_i4(cols).newmat(ValType::F64).stloc(last);
    });
    b.ldloc(last).ldlen().ret();
    return b.finish();
  });
}

std::int32_t build_create_box(vm::VirtualMachine& v) {
  return cached(v, "micro.create.box", [&] {
    ILBuilder b(v.module(), "micro.create.box", {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    const auto last = b.add_local(ValType::Ref);
    b.ldarg(0).stloc(bound);
    counted_loop(b, i, bound, [&] {
      b.ldloc(i).box(ValType::I32).stloc(last);
    });
    b.ldloc(last).unbox(ValType::I32).ret();
    return b.finish();
  });
}

// --- Multithreaded creation (allocation scaling) ---------------------------
//
// A minimal fork-join driver around the single-thread creation loops: each
// worker reads its iteration count from a shared object, runs the creation
// loop (all allocations go through the worker thread's own TLAB), then
// bumps a completion counter under the shared object's monitor.

namespace {

struct CreateMtClasses {
  std::int32_t shared;  // create.Shared {iters, done}
};

CreateMtClasses create_mt_classes(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  std::int32_t shared = mod.find_class("create.Shared");
  if (shared < 0) {
    shared = mod.define_class(
        "create.Shared", {{"iters", ValType::I32}, {"done", ValType::I32}});
  }
  return {shared};
}

/// Builds the worker for one creation kind: (Ref shared) -> i32; runs
/// `iters` creations, then increments shared.done under the monitor.
std::int32_t build_create_mt_worker(
    vm::VirtualMachine& v, const std::string& kind,
    const std::function<void(ILBuilder&, std::int32_t i_local,
                             std::int32_t last_local)>& emit_create) {
  const CreateMtClasses c = create_mt_classes(v);
  const std::string name = "create.mt." + kind + ".worker";
  return cached(v, name, [&] {
    ILBuilder b(v.module(), name, {{ValType::Ref}, ValType::I32});
    const auto shared = b.add_local(ValType::Ref);
    const auto i = b.add_local(ValType::I32);
    const auto iters = b.add_local(ValType::I32);
    const auto last = b.add_local(ValType::Ref);
    b.ldarg(0).stloc(shared);
    b.ldloc(shared).ldfld(c.shared, "iters").stloc(iters);
    counted_loop(b, i, iters, [&] { emit_create(b, i, last); });
    b.ldloc(shared).call_intr(vm::I_MON_ENTER);
    b.ldloc(shared).ldloc(shared).ldfld(c.shared, "done")
        .ldc_i4(1).add().stfld(c.shared, "done");
    b.ldloc(shared).call_intr(vm::I_MON_EXIT);
    b.ldc_i4(0).ret();
    return b.finish();
  });
}

}  // namespace

std::int32_t build_create_mt(vm::VirtualMachine& v, const std::string& kind) {
  const CreateMtClasses c = create_mt_classes(v);
  const std::int32_t target = create_target_class(v);

  std::function<void(ILBuilder&, std::int32_t, std::int32_t)> emit_create;
  if (kind == "object") {
    emit_create = [target](ILBuilder& b, std::int32_t, std::int32_t last) {
      b.newobj(target).stloc(last);
    };
  } else if (kind == "array") {
    emit_create = [](ILBuilder& b, std::int32_t, std::int32_t last) {
      b.ldc_i4(16).newarr(ValType::F64).stloc(last);
    };
  } else if (kind == "matrix") {
    emit_create = [](ILBuilder& b, std::int32_t, std::int32_t last) {
      b.ldc_i4(4).ldc_i4(4).newmat(ValType::F64).stloc(last);
    };
  } else if (kind == "box") {
    emit_create = [](ILBuilder& b, std::int32_t i, std::int32_t last) {
      b.ldloc(i).box(ValType::I32).stloc(last);
    };
  } else {
    throw std::invalid_argument("build_create_mt: unknown kind " + kind);
  }
  const std::int32_t worker = build_create_mt_worker(v, kind, emit_create);

  const std::string name = "create.mt." + kind + ".run";
  return cached(v, name, [&] {
    MethodSig sig;
    sig.params = {ValType::I32, ValType::I32};
    sig.ret = ValType::I32;
    ILBuilder b(v.module(), name, sig);
    const auto t = b.add_local(ValType::I32);
    const auto n = b.add_local(ValType::I32);
    const auto shared = b.add_local(ValType::Ref);
    const auto handles = b.add_local(ValType::Ref);
    b.ldarg(0).stloc(n);
    b.newobj(c.shared).stloc(shared);
    b.ldloc(shared).ldarg(1).stfld(c.shared, "iters");
    b.ldloc(n).newarr(ValType::Ref).stloc(handles);
    counted_loop(b, t, n, [&] {
      b.ldloc(handles).ldloc(t);
      b.ldc_i4(worker).ldloc(shared).call_intr(vm::I_THREAD_START);
      b.stelem(ValType::Ref);
    });
    counted_loop(b, t, n, [&] {
      b.ldloc(handles).ldloc(t).ldelem(ValType::Ref)
          .call_intr(vm::I_THREAD_JOIN);
    });
    b.ldloc(shared).ldfld(c.shared, "done").ret();
    return b.finish();
  });
}

}  // namespace hpcnet::cil

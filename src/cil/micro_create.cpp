// Create micro-benchmark (Table 1): object and array allocation throughput.
// Allocation-heavy by design — this is also the GC stress path, since the
// engines collect at the heap threshold mid-benchmark.
#include "cil/common.hpp"
#include "cil/micro.hpp"

namespace hpcnet::cil {

std::int32_t build_create_object(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  std::int32_t cls = mod.find_class("bench.CreateTarget");
  if (cls < 0) {
    cls = mod.define_class("bench.CreateTarget",
                           {{"x", ValType::I32}, {"y", ValType::F64}});
  }
  return cached(v, "micro.create.object", [&] {
    ILBuilder b(mod, "micro.create.object", {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    const auto last = b.add_local(ValType::Ref);
    b.ldarg(0).stloc(bound);
    counted_loop(b, i, bound, [&] {
      b.newobj(cls).stloc(last);
      b.ldloc(last).ldloc(i).stfld(cls, "x");
    });
    b.ldloc(last).ldfld(cls, "x").ret();
    return b.finish();
  });
}

std::int32_t build_create_array(vm::VirtualMachine& v, std::int32_t length) {
  const std::string name =
      "micro.create.array" + std::to_string(length);
  return cached(v, name, [&] {
    ILBuilder b(v.module(), name, {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    const auto last = b.add_local(ValType::Ref);
    b.ldarg(0).stloc(bound);
    counted_loop(b, i, bound, [&] {
      b.ldc_i4(length).newarr(ValType::F64).stloc(last);
    });
    b.ldloc(last).ldlen().ret();
    return b.finish();
  });
}

}  // namespace hpcnet::cil

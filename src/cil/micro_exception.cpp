// Exception-handling micro-benchmarks (Graph 5). Three variants per the JGF
// Exception benchmark: rethrowing one pre-created object, constructing a new
// exception per iteration, and an exception raised one call level down.
#include "cil/common.hpp"
#include "cil/micro.hpp"

namespace hpcnet::cil {

namespace {

/// Common shape: count = 0; loop { try { <raise> } catch (Exception) {
/// count++ } } return count. Every iteration must take the handler.
std::int32_t build_catch_loop(
    vm::VirtualMachine& v, const std::string& name,
    const std::function<void(ILBuilder&, std::int32_t /*excl*/)>& raise,
    bool needs_exc_local) {
  return cached(v, name, [&] {
    vm::Module& mod = v.module();
    ILBuilder b(mod, name, {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto count = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    const auto exc = b.add_local(ValType::Ref);
    b.ldarg(0).stloc(bound);
    b.ldc_i4(0).stloc(count);
    if (needs_exc_local) {
      b.newobj(mod.exception_class()).stloc(exc);
    }
    counted_loop(b, i, bound, [&] {
      auto try_begin = b.new_label();
      auto try_end = b.new_label();
      auto handler = b.new_label();
      auto after = b.new_label();
      b.bind(try_begin);
      raise(b, exc);
      b.bind(try_end);
      b.add_catch(try_begin, try_end, handler, mod.exception_class());
      b.bind(handler);
      b.pop();  // discard the exception object
      b.ldloc(count).ldc_i4(1).add().stloc(count);
      b.leave(after);
      b.bind(after);
    });
    b.ldloc(count).ret();
    return b.finish();
  });
}

}  // namespace

std::int32_t build_exception_throw(vm::VirtualMachine& v) {
  return build_catch_loop(
      v, "micro.exception.throw",
      [](ILBuilder& b, std::int32_t exc) { b.ldloc(exc).throw_(); }, true);
}

std::int32_t build_exception_new(vm::VirtualMachine& v) {
  const std::int32_t exc_class = v.module().exception_class();
  return build_catch_loop(
      v, "micro.exception.new",
      [exc_class](ILBuilder& b, std::int32_t) {
        b.newobj(exc_class).throw_();
      },
      false);
}

std::int32_t build_exception_method(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  // Callee: void thrower() { throw new Exception(); }
  const std::int32_t thrower =
      cached(v, "micro.exception.thrower_fn", [&] {
        ILBuilder b(mod, "micro.exception.thrower_fn", {{}, ValType::None});
        b.newobj(mod.exception_class()).throw_();
        return b.finish();
      });
  return build_catch_loop(
      v, "micro.exception.method",
      [thrower](ILBuilder& b, std::int32_t) {
        auto unreachable = b.new_label();
        b.call(thrower);
        // The call always throws; branch back keeps the region well-formed.
        b.br(unreachable);
        b.bind(unreachable);
        b.newobj(b.module().exception_class()).throw_();
      },
      false);
}

}  // namespace hpcnet::cil

// Math-library micro-benchmarks (Graphs 6-8): one CIL loop per System.Math
// routine, feeding each call an iteration-dependent argument and folding the
// result into an accumulator so no tier can hoist the call.
#include <stdexcept>

#include "cil/common.hpp"
#include "cil/micro.hpp"
#include "vm/intrinsics.hpp"

namespace hpcnet::cil {

std::int32_t build_math_call(vm::VirtualMachine& v, std::int32_t intrinsic_id) {
  using namespace hpcnet::vm;
  const IntrinsicDef& def = intrinsic(intrinsic_id);
  const std::string name = std::string("micro.math.") + def.name;
  return cached(v, name, [&] {
    ILBuilder b(v.module(), name, {{ValType::I32}, ValType::F64});
    const auto i = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    const auto acc = b.add_local(ValType::F64);
    b.ldarg(0).stloc(bound);
    b.ldc_r8(0.0).stloc(acc);

    // Pushes an argument of the requested type derived from `i` (bounded to
    // keep trig/asin arguments in domain).
    auto push_arg = [&](ValType t, bool second) {
      b.ldloc(i).ldc_i4(second ? 63 : 255).and_();
      switch (t) {
        case ValType::I32:
          b.ldc_i4(second ? 7 : 13).sub();
          break;
        case ValType::I64:
          b.conv_i8().ldc_i8(second ? 7 : 13).sub();
          break;
        case ValType::F32:
          b.conv_r4().ldc_r4(0.00390625f).mul();  // in [0, ~1)
          if (second) b.ldc_r4(0.25f).add();
          break;
        default:
          b.conv_r8().ldc_r8(0.00390625).mul();
          if (second) b.ldc_r8(0.25).add();
          break;
      }
    };

    counted_loop(b, i, bound, [&] {
      for (std::size_t k = 0; k < def.sig.params.size(); ++k) {
        push_arg(def.sig.params[k], k == 1);
      }
      b.call_intr(intrinsic_id);
      // Fold the result into the f64 accumulator.
      switch (def.sig.ret) {
        case ValType::I32: b.conv_r8(); break;
        case ValType::I64: b.conv_r8(); break;
        case ValType::F32: b.conv_r8(); break;
        case ValType::F64: break;
        default:
          throw std::logic_error("math benchmark: unsupported return type");
      }
      b.ldloc(acc).add().stloc(acc);
    });
    b.ldloc(acc).ret();
    return b.finish();
  });
}

}  // namespace hpcnet::cil

// Shared-memory parallel SciMark (the paper's §6 future work: "the port of
// the parallel versions, for shared memory ... is planned"). Red-black SOR:
// each worker sweeps an interleaved set of rows; a monitor-based
// sense-reversing barrier separates the red and black phases, so the result
// is deterministic and identical for every thread count — validated against
// kernels::sor::checksum_redblack.
#include "cil/common.hpp"
#include "cil/sm.hpp"
#include "vm/intrinsics.hpp"

namespace hpcnet::cil {

namespace {

struct PsorClasses {
  std::int32_t shared;
  std::int32_t arg;
};

PsorClasses psor_classes(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  std::int32_t shared = mod.find_class("sm.PsorShared");
  if (shared < 0) {
    shared = mod.define_class("sm.PsorShared",
                              {{"G", ValType::Ref},
                               {"n", ValType::I32},
                               {"iters", ValType::I32},
                               {"nthreads", ValType::I32},
                               {"count", ValType::I32},
                               {"sense", ValType::I32}});
  }
  std::int32_t arg = mod.find_class("sm.PsorArg");
  if (arg < 0) {
    arg = mod.define_class("sm.PsorArg",
                           {{"id", ValType::I32}, {"shared", ValType::Ref}});
  }
  return {shared, arg};
}

/// Emits a full sense-reversing barrier over the shared object's monitor.
void emit_barrier(ILBuilder& b, const PsorClasses& c, std::int32_t shared,
                  std::int32_t my_sense) {
  using vm::I_MON_ENTER;
  using vm::I_MON_EXIT;
  using vm::I_MON_PULSEALL;
  using vm::I_MON_WAIT;
  auto last_in = b.new_label();
  auto done = b.new_label();
  auto wait_top = b.new_label();
  b.ldloc(shared).call_intr(I_MON_ENTER);
  b.ldloc(shared).ldfld(c.shared, "sense").stloc(my_sense);
  b.ldloc(shared).ldloc(shared).ldfld(c.shared, "count")
      .ldc_i4(1).add().stfld(c.shared, "count");
  b.ldloc(shared).ldfld(c.shared, "count")
      .ldloc(shared).ldfld(c.shared, "nthreads").beq(last_in);
  b.bind(wait_top);
  b.ldloc(shared).ldfld(c.shared, "sense").ldloc(my_sense).bne(done);
  b.ldloc(shared).call_intr(I_MON_WAIT);
  b.br(wait_top);
  b.bind(last_in);
  b.ldloc(shared).ldc_i4(0).stfld(c.shared, "count");
  b.ldloc(shared).ldc_i4(1).ldloc(my_sense).sub().stfld(c.shared, "sense");
  b.ldloc(shared).call_intr(I_MON_PULSEALL);
  b.bind(done);
  b.ldloc(shared).call_intr(I_MON_EXIT);
}

}  // namespace

std::int32_t build_sm_psor(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  const PsorClasses c = psor_classes(v);
  const SmRandom rnd = build_sm_random(v);

  const std::int32_t worker = cached(v, "sm.psor.worker", [&] {
    ILBuilder b(mod, "sm.psor.worker", {{ValType::Ref}, ValType::I32});
    const auto shared = b.add_local(ValType::Ref);
    const auto id = b.add_local(ValType::I32);
    const auto G = b.add_local(ValType::Ref);
    const auto n = b.add_local(ValType::I32);
    const auto iters = b.add_local(ValType::I32);
    const auto nthreads = b.add_local(ValType::I32);
    const auto nm1 = b.add_local(ValType::I32);
    const auto p = b.add_local(ValType::I32);
    const auto phase = b.add_local(ValType::I32);
    const auto i = b.add_local(ValType::I32);
    const auto j = b.add_local(ValType::I32);
    const auto gi = b.add_local(ValType::Ref);
    const auto gim1 = b.add_local(ValType::Ref);
    const auto gip1 = b.add_local(ValType::Ref);
    const auto my_sense = b.add_local(ValType::I32);

    b.ldarg(0).ldfld(c.arg, "shared").stloc(shared);
    b.ldarg(0).ldfld(c.arg, "id").stloc(id);
    b.ldloc(shared).ldfld(c.shared, "G").stloc(G);
    b.ldloc(shared).ldfld(c.shared, "n").stloc(n);
    b.ldloc(shared).ldfld(c.shared, "iters").stloc(iters);
    b.ldloc(shared).ldfld(c.shared, "nthreads").stloc(nthreads);
    b.ldloc(n).ldc_i4(1).sub().stloc(nm1);

    counted_loop(b, p, iters, [&] {
      auto phase_loop = [&] {
        // Interleaved rows: i = 1 + id; i < n-1; i += nthreads.
        auto itop = b.new_label();
        auto iend = b.new_label();
        b.ldc_i4(1).ldloc(id).add().stloc(i);
        b.bind(itop);
        b.ldloc(i).ldloc(nm1).bge(iend);
        b.ldloc(G).ldloc(i).ldelem(ValType::Ref).stloc(gi);
        b.ldloc(G).ldloc(i).ldc_i4(1).sub().ldelem(ValType::Ref).stloc(gim1);
        b.ldloc(G).ldloc(i).ldc_i4(1).add().ldelem(ValType::Ref).stloc(gip1);
        // j starts at the first column of this colour in row i:
        // j0 = 1 + ((i + 1 + phase) & 1), then j += 2.
        auto jtop = b.new_label();
        auto jend = b.new_label();
        b.ldc_i4(1)
            .ldloc(i).ldc_i4(1).add().ldloc(phase).add().ldc_i4(1).and_()
            .add().stloc(j);
        b.bind(jtop);
        b.ldloc(j).ldloc(nm1).bge(jend);
        b.ldloc(gi).ldloc(j);
        b.ldc_r8(1.25 * 0.25);
        b.ldloc(gim1).ldloc(j).ldelem(ValType::F64);
        b.ldloc(gip1).ldloc(j).ldelem(ValType::F64).add();
        b.ldloc(gi).ldloc(j).ldc_i4(1).sub().ldelem(ValType::F64).add();
        b.ldloc(gi).ldloc(j).ldc_i4(1).add().ldelem(ValType::F64).add();
        b.mul();
        b.ldc_r8(1.0 - 1.25).ldloc(gi).ldloc(j).ldelem(ValType::F64).mul()
            .add();
        b.stelem(ValType::F64);
        b.ldloc(j).ldc_i4(2).add().stloc(j);
        b.br(jtop);
        b.bind(jend);
        b.ldloc(i).ldloc(nthreads).add().stloc(i);
        b.br(itop);
        b.bind(iend);
      };
      b.ldc_i4(0).stloc(phase);
      phase_loop();
      emit_barrier(b, c, shared, my_sense);
      b.ldc_i4(1).stloc(phase);
      phase_loop();
      emit_barrier(b, c, shared, my_sense);
    });
    b.ldc_i4(0).ret();
    return b.finish();
  });

  return cached(v, "sm.psor.run", [&] {
    ILBuilder b(mod, "sm.psor.run",
                {{ValType::I32, ValType::I32, ValType::I32}, ValType::F64});
    const auto n = b.add_local(ValType::I32);
    const auto nthreads = b.add_local(ValType::I32);
    const auto st = b.add_local(ValType::Ref);
    const auto G = b.add_local(ValType::Ref);
    const auto shared = b.add_local(ValType::Ref);
    const auto handles = b.add_local(ValType::Ref);
    const auto warg = b.add_local(ValType::Ref);
    const auto i = b.add_local(ValType::I32);
    const auto t = b.add_local(ValType::I32);

    b.ldarg(0).stloc(n);
    b.ldarg(2).stloc(nthreads);
    // Same grid initialization as the serial kernel (seed 101010, row by
    // row) so checksum_redblack applies.
    b.ldc_i4(101010).call(rnd.new_fn).stloc(st);
    b.ldloc(n).newarr(ValType::Ref).stloc(G);
    counted_loop(b, i, n, [&] {
      b.ldloc(G).ldloc(i).ldloc(n).newarr(ValType::F64).stelem(ValType::Ref);
      b.ldloc(st).ldloc(G).ldloc(i).ldelem(ValType::Ref).call(rnd.fill_fn);
    });
    b.newobj(c.shared).stloc(shared);
    b.ldloc(shared).ldloc(G).stfld(c.shared, "G");
    b.ldloc(shared).ldloc(n).stfld(c.shared, "n");
    b.ldloc(shared).ldarg(1).stfld(c.shared, "iters");
    b.ldloc(shared).ldloc(nthreads).stfld(c.shared, "nthreads");
    b.ldloc(nthreads).newarr(ValType::Ref).stloc(handles);
    counted_loop(b, t, nthreads, [&] {
      b.newobj(c.arg).stloc(warg);
      b.ldloc(warg).ldloc(t).stfld(c.arg, "id");
      b.ldloc(warg).ldloc(shared).stfld(c.arg, "shared");
      b.ldloc(handles).ldloc(t);
      b.ldc_i4(worker).ldloc(warg).call_intr(vm::I_THREAD_START);
      b.stelem(ValType::Ref);
    });
    counted_loop(b, t, nthreads, [&] {
      b.ldloc(handles).ldloc(t).ldelem(ValType::Ref)
          .call_intr(vm::I_THREAD_JOIN);
    });
    b.ldloc(G).ldc_i4(1).ldelem(ValType::Ref).ldc_i4(1).ldelem(ValType::F64)
        .ret();
    return b.finish();
  });
}

}  // namespace hpcnet::cil

// Multithreaded CIL benchmark programs. Shared state lives in managed
// objects handed to each thread through its argument object; coordination
// uses the Monitor intrinsics (sync, simple barrier) or flag arrays with
// yielding spins (tournament barrier), matching the JGF multithreaded
// section-1 benchmark designs.
#include "cil/common.hpp"
#include "cil/mt.hpp"
#include "vm/intrinsics.hpp"

namespace hpcnet::cil {

namespace {

using vm::I_MON_ENTER;
using vm::I_MON_EXIT;
using vm::I_MON_PULSEALL;
using vm::I_MON_WAIT;
using vm::I_THREAD_JOIN;
using vm::I_THREAD_START;
using vm::I_THREAD_YIELD;

struct MtClasses {
  std::int32_t shared;
  std::int32_t arg;
};

MtClasses mt_classes(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  std::int32_t shared = mod.find_class("mt.Shared");
  if (shared < 0) {
    shared = mod.define_class("mt.Shared", {
                                               {"counter", ValType::I32},
                                               {"n", ValType::I32},
                                               {"iters", ValType::I32},
                                               {"sense", ValType::I32},
                                               {"rounds", ValType::I32},
                                               {"flags", ValType::Ref},
                                               {"release", ValType::I32},
                                           });
  }
  std::int32_t arg = mod.find_class("mt.WorkerArg");
  if (arg < 0) {
    arg = mod.define_class("mt.WorkerArg",
                           {{"id", ValType::I32}, {"shared", ValType::Ref}});
  }
  return {shared, arg};
}

/// Emits the driver: creates the shared object (caller initializes extra
/// fields via `init_shared(shared_local)`), spawns nthreads workers, joins
/// them, then runs `epilogue` to produce the i32 return value.
std::int32_t build_driver(
    vm::VirtualMachine& v, const std::string& name, bool has_iters,
    std::int32_t worker_id,
    const std::function<void(ILBuilder&, std::int32_t shared_local)>&
        init_shared,
    const std::function<void(ILBuilder&, std::int32_t shared_local)>&
        epilogue) {
  const MtClasses c = mt_classes(v);
  return cached(v, name, [&] {
    MethodSig sig;
    sig.params = has_iters
                     ? std::vector<ValType>{ValType::I32, ValType::I32}
                     : std::vector<ValType>{ValType::I32};
    sig.ret = ValType::I32;
    ILBuilder b(v.module(), name, sig);
    const auto t = b.add_local(ValType::I32);
    const auto n = b.add_local(ValType::I32);
    const auto shared = b.add_local(ValType::Ref);
    const auto handles = b.add_local(ValType::Ref);
    const auto warg = b.add_local(ValType::Ref);

    b.ldarg(0).stloc(n);
    b.newobj(c.shared).stloc(shared);
    b.ldloc(shared).ldloc(n).stfld(c.shared, "n");
    if (has_iters) {
      b.ldloc(shared).ldarg(1).stfld(c.shared, "iters");
    }
    init_shared(b, shared);

    b.ldloc(n).newarr(ValType::Ref).stloc(handles);
    counted_loop(b, t, n, [&] {
      b.newobj(c.arg).stloc(warg);
      b.ldloc(warg).ldloc(t).stfld(c.arg, "id");
      b.ldloc(warg).ldloc(shared).stfld(c.arg, "shared");
      b.ldloc(handles).ldloc(t);
      b.ldc_i4(worker_id).ldloc(warg).call_intr(I_THREAD_START);
      b.stelem(ValType::Ref);
    });
    counted_loop(b, t, n, [&] {
      b.ldloc(handles).ldloc(t).ldelem(ValType::Ref).call_intr(I_THREAD_JOIN);
    });
    epilogue(b, shared);
    return b.finish();
  });
}

}  // namespace

std::int32_t build_mt_forkjoin(vm::VirtualMachine& v) {
  const MtClasses c = mt_classes(v);
  const std::int32_t worker = cached(v, "mt.forkjoin.worker", [&] {
    // Each thread bumps the shared counter once, under the monitor.
    ILBuilder b(v.module(), "mt.forkjoin.worker", {{ValType::Ref}, ValType::I32});
    const auto shared = b.add_local(ValType::Ref);
    b.ldarg(0).ldfld(c.arg, "shared").stloc(shared);
    b.ldloc(shared).call_intr(I_MON_ENTER);
    b.ldloc(shared).ldloc(shared).ldfld(c.shared, "counter")
        .ldc_i4(1).add().stfld(c.shared, "counter");
    b.ldloc(shared).call_intr(I_MON_EXIT);
    b.ldc_i4(0).ret();
    return b.finish();
  });
  return build_driver(
      v, "mt.forkjoin.run", /*has_iters=*/false, worker,
      [](ILBuilder&, std::int32_t) {},
      [&](ILBuilder& b, std::int32_t shared) {
        b.ldloc(shared).ldfld(c.shared, "counter").ret();
      });
}

std::int32_t build_mt_sync(vm::VirtualMachine& v) {
  const MtClasses c = mt_classes(v);
  const std::int32_t worker = cached(v, "mt.sync.worker", [&] {
    ILBuilder b(v.module(), "mt.sync.worker", {{ValType::Ref}, ValType::I32});
    const auto shared = b.add_local(ValType::Ref);
    const auto i = b.add_local(ValType::I32);
    const auto iters = b.add_local(ValType::I32);
    b.ldarg(0).ldfld(c.arg, "shared").stloc(shared);
    b.ldloc(shared).ldfld(c.shared, "iters").stloc(iters);
    counted_loop(b, i, iters, [&] {
      b.ldloc(shared).call_intr(I_MON_ENTER);
      b.ldloc(shared).ldloc(shared).ldfld(c.shared, "counter")
          .ldc_i4(1).add().stfld(c.shared, "counter");
      b.ldloc(shared).call_intr(I_MON_EXIT);
    });
    b.ldc_i4(0).ret();
    return b.finish();
  });
  return build_driver(
      v, "mt.sync.run", /*has_iters=*/true, worker,
      [](ILBuilder&, std::int32_t) {},
      [&](ILBuilder& b, std::int32_t shared) {
        b.ldloc(shared).ldfld(c.shared, "counter").ret();
      });
}

std::int32_t build_mt_barrier_simple(vm::VirtualMachine& v) {
  const MtClasses c = mt_classes(v);
  const std::int32_t worker = cached(v, "mt.barrier.simple.worker", [&] {
    // Sense-reversing counter barrier under the shared object's monitor.
    ILBuilder b(v.module(), "mt.barrier.simple.worker",
                {{ValType::Ref}, ValType::I32});
    const auto shared = b.add_local(ValType::Ref);
    const auto i = b.add_local(ValType::I32);
    const auto iters = b.add_local(ValType::I32);
    const auto my_sense = b.add_local(ValType::I32);
    b.ldarg(0).ldfld(c.arg, "shared").stloc(shared);
    b.ldloc(shared).ldfld(c.shared, "iters").stloc(iters);
    counted_loop(b, i, iters, [&] {
      auto last_in = b.new_label();
      auto done = b.new_label();
      auto wait_top = b.new_label();
      b.ldloc(shared).call_intr(I_MON_ENTER);
      b.ldloc(shared).ldfld(c.shared, "sense").stloc(my_sense);
      b.ldloc(shared).ldloc(shared).ldfld(c.shared, "counter")
          .ldc_i4(1).add().stfld(c.shared, "counter");
      b.ldloc(shared).ldfld(c.shared, "counter")
          .ldloc(shared).ldfld(c.shared, "n").beq(last_in);
      // Not last: wait until the sense flips.
      b.bind(wait_top);
      b.ldloc(shared).ldfld(c.shared, "sense").ldloc(my_sense).bne(done);
      b.ldloc(shared).call_intr(I_MON_WAIT);
      b.br(wait_top);
      // Last arrival: reset, flip sense, count the round, wake everyone.
      b.bind(last_in);
      b.ldloc(shared).ldc_i4(0).stfld(c.shared, "counter");
      b.ldloc(shared).ldc_i4(1).ldloc(my_sense).sub().stfld(c.shared, "sense");
      b.ldloc(shared).ldloc(shared).ldfld(c.shared, "rounds")
          .ldc_i4(1).add().stfld(c.shared, "rounds");
      b.ldloc(shared).call_intr(I_MON_PULSEALL);
      b.bind(done);
      b.ldloc(shared).call_intr(I_MON_EXIT);
    });
    b.ldc_i4(0).ret();
    return b.finish();
  });
  return build_driver(
      v, "mt.barrier.simple.run", /*has_iters=*/true, worker,
      [](ILBuilder&, std::int32_t) {},
      [&](ILBuilder& b, std::int32_t shared) {
        b.ldloc(shared).ldfld(c.shared, "rounds").ret();
      });
}

std::int32_t build_mt_barrier_tournament(vm::VirtualMachine& v) {
  const MtClasses c = mt_classes(v);
  const std::int32_t worker = cached(v, "mt.barrier.tournament.worker", [&] {
    // Binary tournament: in round r, thread `id` with id % 2^(r+1) == 2^r
    // posts its arrival flag and drops out; id % 2^(r+1) == 0 spins for the
    // partner's flag. The champion (id 0) flips the release word; everyone
    // else spins on it. All spins yield. Flags live in a rank-2 i32 matrix
    // flags[round][thread]; sense alternates 1/0 by barrier parity.
    ILBuilder b(v.module(), "mt.barrier.tournament.worker",
                {{ValType::Ref}, ValType::I32});
    const auto shared = b.add_local(ValType::Ref);
    const auto id = b.add_local(ValType::I32);
    const auto n = b.add_local(ValType::I32);
    const auto iters = b.add_local(ValType::I32);
    const auto i = b.add_local(ValType::I32);
    const auto sense = b.add_local(ValType::I32);
    const auto flags = b.add_local(ValType::Ref);
    const auto step = b.add_local(ValType::I32);   // 2^r
    const auto round = b.add_local(ValType::I32);
    const auto partner = b.add_local(ValType::I32);

    b.ldarg(0).ldfld(c.arg, "shared").stloc(shared);
    b.ldarg(0).ldfld(c.arg, "id").stloc(id);
    b.ldloc(shared).ldfld(c.shared, "n").stloc(n);
    b.ldloc(shared).ldfld(c.shared, "iters").stloc(iters);
    b.ldloc(shared).ldfld(c.shared, "flags").stloc(flags);

    counted_loop(b, i, iters, [&] {
      // sense = 1 - (i & 1)
      b.ldc_i4(1).ldloc(i).ldc_i4(1).and_().sub().stloc(sense);
      auto rounds_done = b.new_label();
      auto next_round = b.new_label();
      auto round_top = b.new_label();
      b.ldc_i4(1).stloc(step);
      b.ldc_i4(0).stloc(round);
      b.bind(round_top);
      b.ldloc(step).ldloc(n).bge(rounds_done);
      {
        auto is_loser = b.new_label();
        auto advance = b.new_label();
        // if (id & (2*step - 1)) == step -> loser: post flag, go wait for
        // release. if == 0 and id+step < n -> winner: spin for partner.
        b.ldloc(id).ldloc(step).ldc_i4(2).mul().ldc_i4(1).sub().and_()
            .ldloc(step).beq(is_loser);
        // Winner path: partner = id + step; spin while flags[round][partner]
        // != sense.
        b.ldloc(id).ldloc(step).add().stloc(partner);
        {
          auto spin = b.new_label();
          auto got = b.new_label();
          b.ldloc(partner).ldloc(n).bge(advance);  // no partner this round
          b.bind(spin);
          b.ldloc(flags).ldloc(round).ldloc(partner).ldelem2(ValType::I32)
              .ldloc(sense).beq(got);
          b.call_intr(I_THREAD_YIELD);
          b.br(spin);
          b.bind(got);
        }
        b.br(advance);
        // Loser: post arrival and exit the ascent.
        b.bind(is_loser);
        b.ldloc(flags).ldloc(round).ldloc(id).ldloc(sense).stelem2(ValType::I32);
        b.br(rounds_done);
        b.bind(advance);
        b.ldloc(step).ldc_i4(2).mul().stloc(step);
        b.ldloc(round).ldc_i4(1).add().stloc(round);
        b.br(round_top);
      }
      b.bind(rounds_done);
      {
        auto champion = b.new_label();
        auto wait_release = b.new_label();
        auto released = b.new_label();
        b.ldloc(id).ldc_i4(0).beq(champion);
        // Spin on the release word.
        b.bind(wait_release);
        b.ldloc(shared).ldfld(c.shared, "release").ldloc(sense).beq(released);
        b.call_intr(I_THREAD_YIELD);
        b.br(wait_release);
        // Champion: all arrived; count the round and release.
        b.bind(champion);
        b.ldloc(shared).ldloc(shared).ldfld(c.shared, "rounds")
            .ldc_i4(1).add().stfld(c.shared, "rounds");
        b.ldloc(shared).ldloc(sense).stfld(c.shared, "release");
        b.bind(released);
      }
      b.bind(next_round);
    });
    b.ldc_i4(0).ret();
    return b.finish();
  });
  return build_driver(
      v, "mt.barrier.tournament.run", /*has_iters=*/true, worker,
      [&](ILBuilder& b, std::int32_t shared) {
        // flags = new i32[rounds][n]; release starts "even" (0 means the
        // previous (imaginary) odd round completed).
        const auto rounds = b.add_local(ValType::I32);
        const auto tmp = b.add_local(ValType::I32);
        auto grow = b.new_label();
        auto done = b.new_label();
        b.ldc_i4(0).stloc(rounds);
        b.ldc_i4(1).stloc(tmp);
        b.bind(grow);
        b.ldloc(tmp).ldarg(0).bge(done);
        b.ldloc(tmp).ldc_i4(2).mul().stloc(tmp);
        b.ldloc(rounds).ldc_i4(1).add().stloc(rounds);
        b.br(grow);
        b.bind(done);
        // At least one round so the matrix is never 0-rowed.
        auto ok = b.new_label();
        b.ldloc(rounds).ldc_i4(0).bgt(ok);
        b.ldc_i4(1).stloc(rounds);
        b.bind(ok);
        b.ldloc(shared).ldloc(rounds).ldarg(0).newmat(ValType::I32)
            .stfld(c.shared, "flags");
        b.ldloc(shared).ldc_i4(0).stfld(c.shared, "release");
      },
      [&](ILBuilder& b, std::int32_t shared) {
        b.ldloc(shared).ldfld(c.shared, "rounds").ret();
      });
}

}  // namespace hpcnet::cil

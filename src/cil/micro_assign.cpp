// Assign micro-benchmark (Table 1): cost of assigning to the different
// variable kinds — locals, instance fields, static fields, array elements —
// four assignments per iteration like the JGF original.
#include "cil/common.hpp"
#include "cil/micro.hpp"

namespace hpcnet::cil {

namespace {

std::int32_t assign_holder_class(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  std::int32_t cls = mod.find_class("bench.AssignHolder");
  if (cls < 0) {
    cls = mod.define_class(
        "bench.AssignHolder",
        {{"a", ValType::I32}, {"b", ValType::I32}},
        -1,
        {{"sa", ValType::I32}, {"sb", ValType::I32}});
  }
  return cls;
}

}  // namespace

std::int32_t build_assign_local(vm::VirtualMachine& v) {
  return cached(v, "micro.assign.local", [&] {
    ILBuilder b(v.module(), "micro.assign.local", {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    const auto a = b.add_local(ValType::I32);
    const auto c = b.add_local(ValType::I32);
    b.ldarg(0).stloc(bound);
    b.ldc_i4(7).stloc(a);
    counted_loop(b, i, bound, [&] {
      b.ldloc(a).stloc(c);
      b.ldloc(c).stloc(a);
      b.ldloc(a).stloc(c);
      b.ldloc(i).stloc(a);
    });
    b.ldloc(a).ldloc(c).add().ret();
    return b.finish();
  });
}

std::int32_t build_assign_instance(vm::VirtualMachine& v) {
  const std::int32_t cls = assign_holder_class(v);
  return cached(v, "micro.assign.instance", [&] {
    ILBuilder b(v.module(), "micro.assign.instance",
                {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    const auto obj = b.add_local(ValType::Ref);
    b.ldarg(0).stloc(bound);
    b.newobj(cls).stloc(obj);
    counted_loop(b, i, bound, [&] {
      b.ldloc(obj).ldloc(i).stfld(cls, "a");
      b.ldloc(obj).ldloc(obj).ldfld(cls, "a").stfld(cls, "b");
      b.ldloc(obj).ldloc(obj).ldfld(cls, "b").stfld(cls, "a");
      b.ldloc(obj).ldloc(i).stfld(cls, "b");
    });
    b.ldloc(obj).ldfld(cls, "a").ldloc(obj).ldfld(cls, "b").add().ret();
    return b.finish();
  });
}

std::int32_t build_assign_static(vm::VirtualMachine& v) {
  const std::int32_t cls = assign_holder_class(v);
  return cached(v, "micro.assign.static", [&] {
    ILBuilder b(v.module(), "micro.assign.static",
                {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    b.ldarg(0).stloc(bound);
    counted_loop(b, i, bound, [&] {
      b.ldloc(i).stsfld(cls, "sa");
      b.ldsfld(cls, "sa").stsfld(cls, "sb");
      b.ldsfld(cls, "sb").stsfld(cls, "sa");
      b.ldloc(i).stsfld(cls, "sb");
    });
    b.ldsfld(cls, "sa").ldsfld(cls, "sb").add().ret();
    return b.finish();
  });
}

std::int32_t build_assign_array(vm::VirtualMachine& v) {
  return cached(v, "micro.assign.array", [&] {
    ILBuilder b(v.module(), "micro.assign.array",
                {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    const auto arr = b.add_local(ValType::Ref);
    b.ldarg(0).stloc(bound);
    b.ldc_i4(4).newarr(ValType::I32).stloc(arr);
    counted_loop(b, i, bound, [&] {
      b.ldloc(arr).ldc_i4(0).ldloc(i).stelem(ValType::I32);
      b.ldloc(arr).ldc_i4(1).ldloc(arr).ldc_i4(0).ldelem(ValType::I32)
          .stelem(ValType::I32);
      b.ldloc(arr).ldc_i4(2).ldloc(arr).ldc_i4(1).ldelem(ValType::I32)
          .stelem(ValType::I32);
      b.ldloc(arr).ldc_i4(3).ldloc(arr).ldc_i4(2).ldelem(ValType::I32)
          .stelem(ValType::I32);
    });
    b.ldloc(arr).ldc_i4(3).ldelem(ValType::I32).ret();
    return b.finish();
  });
}

}  // namespace hpcnet::cil

#include "cil/suite.hpp"

#include <cmath>
#include <stdexcept>

#include "cil/sm.hpp"
#include "kernels/scimark.hpp"
#include "support/timer.hpp"
#include "vm/telemetry/telemetry.hpp"

namespace hpcnet::cil {

using vm::Slot;

ScimarkSizes ScimarkSizes::small_model() { return {}; }

ScimarkSizes ScimarkSizes::large_model() {
  // The paper's large model is FFT 2^20 / SOR 1000^2 / sparse 100k x 1M /
  // LU 1000^2 on native hardware; we scale by ~16x-64x so the interpreter
  // tier completes, preserving the cache-resident -> memory-resident jump.
  ScimarkSizes s;
  s.fft_n = 16384;
  s.fft_cycles = 1;
  s.sor_n = 500;
  s.sor_iters = 4;
  s.mc_samples = 400000;
  s.sparse_n = 20000;
  s.sparse_nz = 200000;
  s.sparse_iters = 4;
  s.lu_n = 250;
  return s;
}

ScimarkSizes ScimarkSizes::test_model() {
  ScimarkSizes s;
  s.fft_n = 64;
  s.fft_cycles = 1;
  s.sor_n = 16;
  s.sor_iters = 3;
  s.mc_samples = 2000;
  s.sparse_n = 50;
  s.sparse_nz = 250;
  s.sparse_iters = 2;
  s.lu_n = 24;
  return s;
}

namespace {

double flops_fft(const ScimarkSizes& s) {
  // One forward + one inverse per cycle.
  return 2.0 * kernels::fft::num_flops(s.fft_n) * s.fft_cycles;
}
double flops_sor(const ScimarkSizes& s) {
  return kernels::sor::num_flops(s.sor_n, s.sor_n, s.sor_iters);
}
double flops_mc(const ScimarkSizes& s) {
  return kernels::montecarlo::num_flops(s.mc_samples);
}
double flops_sparse(const ScimarkSizes& s) {
  return kernels::sparse::num_flops(s.sparse_n, s.sparse_nz, s.sparse_iters);
}
double flops_lu(const ScimarkSizes& s) {
  return kernels::lu::num_flops(s.lu_n);
}

void check(const std::string& kernel, double got, double want) {
  const double denom = std::max(std::fabs(want), 1e-30);
  if (std::fabs(got - want) / denom > 1e-9) {
    throw std::runtime_error("validation failed for " + kernel + ": got " +
                             std::to_string(got) + ", want " +
                             std::to_string(want));
  }
}

}  // namespace

ScimarkResult run_scimark_cil(vm::VirtualMachine& v, vm::Engine& engine,
                              const ScimarkSizes& s, bool validate,
                              const std::string& only) {
  const std::int32_t fft = build_sm_fft(v);
  const std::int32_t sor = build_sm_sor(v);
  const std::int32_t mc = build_sm_montecarlo(v);
  const std::int32_t sparse = build_sm_sparse(v);
  const std::int32_t lu = build_sm_lu(v);
  vm::VMContext& ctx = v.main_context();

  ScimarkResult out;
  auto run1 = [&](const std::string& name, std::int32_t method,
                  std::vector<Slot> args, double flops, double want) {
    if (!only.empty() && name != only) return;
    KernelScore k;
    k.name = name;
    const auto t0 = support::now_ns();
    const Slot r = engine.invoke(ctx, method, args);
    const auto t1 = support::now_ns();
    vm::telemetry::record_span("kernel", name + " @ " + engine.name(), t0, t1,
                               "\"engine\":\"" + engine.name() + "\"");
    k.seconds = support::elapsed_seconds(t0, t1);
    k.checksum = r.f64;
    if (validate) {
      check(name, k.checksum, want);
      k.validated = true;
    }
    k.mflops = k.seconds > 0 ? flops / k.seconds * 1e-6 : 0;
    out.kernels.push_back(k);
  };

  run1("FFT", fft, {Slot::from_i32(s.fft_n), Slot::from_i32(s.fft_cycles)},
       flops_fft(s),
       kernels::fft::roundtrip_checksum(s.fft_n, s.fft_cycles));
  run1("SOR", sor, {Slot::from_i32(s.sor_n), Slot::from_i32(s.sor_iters)},
       flops_sor(s), kernels::sor::checksum(s.sor_n, s.sor_iters));
  run1("MonteCarlo", mc, {Slot::from_i32(s.mc_samples)}, flops_mc(s),
       kernels::montecarlo::integrate(s.mc_samples));
  run1("Sparse", sparse,
       {Slot::from_i32(s.sparse_n), Slot::from_i32(s.sparse_nz),
        Slot::from_i32(s.sparse_iters)},
       flops_sparse(s),
       kernels::sparse::checksum(s.sparse_n, s.sparse_nz, s.sparse_iters));
  run1("LU", lu, {Slot::from_i32(s.lu_n)}, flops_lu(s),
       kernels::lu::checksum(s.lu_n));

  double sum = 0;
  for (const auto& k : out.kernels) sum += k.mflops;
  out.composite =
      out.kernels.empty() ? 0 : sum / static_cast<double>(out.kernels.size());
  return out;
}

ScimarkResult run_scimark_native(const ScimarkSizes& s) {
  ScimarkResult out;
  auto add = [&](const std::string& name, double secs, double flops,
                 double checksum) {
    KernelScore k;
    k.name = name;
    k.seconds = secs;
    k.checksum = checksum;
    k.validated = true;
    k.mflops = secs > 0 ? flops / secs * 1e-6 : 0;
    out.kernels.push_back(k);
  };

  {
    const auto t0 = support::now_ns();
    const double c = kernels::fft::roundtrip_checksum(s.fft_n, s.fft_cycles);
    add("FFT", support::elapsed_seconds(t0, support::now_ns()), flops_fft(s), c);
  }
  {
    const auto t0 = support::now_ns();
    const double c = kernels::sor::checksum(s.sor_n, s.sor_iters);
    add("SOR", support::elapsed_seconds(t0, support::now_ns()), flops_sor(s), c);
  }
  {
    const auto t0 = support::now_ns();
    const double c = kernels::montecarlo::integrate(s.mc_samples);
    add("MonteCarlo", support::elapsed_seconds(t0, support::now_ns()),
        flops_mc(s), c);
  }
  {
    const auto t0 = support::now_ns();
    const double c =
        kernels::sparse::checksum(s.sparse_n, s.sparse_nz, s.sparse_iters);
    add("Sparse", support::elapsed_seconds(t0, support::now_ns()),
        flops_sparse(s), c);
  }
  {
    const auto t0 = support::now_ns();
    const double c = kernels::lu::checksum(s.lu_n);
    add("LU", support::elapsed_seconds(t0, support::now_ns()), flops_lu(s), c);
  }

  double sum = 0;
  for (const auto& k : out.kernels) sum += k.mflops;
  out.composite = sum / static_cast<double>(out.kernels.size());
  return out;
}

BenchContext::BenchContext() {
  for (const auto& p : vm::profiles::all()) {
    engines_.push_back(vm::make_engine(vm_, p));
  }
}

vm::Engine& BenchContext::engine(const std::string& profile_name) {
  for (auto& e : engines_) {
    if (e->name() == profile_name) return *e;
  }
  // Derived profiles ("clr11.tiered", ...) are created on demand so tools
  // can name any profile by_name() understands, not just the paper seven.
  engines_.push_back(
      vm::make_engine(vm_, vm::profiles::by_name(profile_name)));
  return *engines_.back();
}

Slot BenchContext::invoke(vm::Engine& e, std::int32_t method,
                          std::vector<Slot> args) {
  return e.invoke(vm_.main_context(), method, args);
}

double BenchContext::ops_per_sec(vm::Engine& e, std::int32_t method,
                                 double ops_per_iteration,
                                 double min_seconds) {
  vm::VMContext& ctx = vm_.main_context();
  std::int32_t size = 512;
  for (int guard = 0; guard < 32; ++guard) {
    Slot arg = Slot::from_i32(size);
    const auto t0 = support::now_ns();
    e.invoke(ctx, method, std::span<const Slot>(&arg, 1));
    const double secs = support::elapsed_seconds(t0, support::now_ns());
    if (secs >= min_seconds || size >= (1 << 28)) {
      return ops_per_iteration * size / secs;
    }
    // Aim straight for the target with one doubling of margin.
    if (secs <= 0) {
      size *= 8;
    } else {
      const double scale = min_seconds / secs * 1.5;
      size = static_cast<std::int32_t>(
          std::min<double>(size * std::max(2.0, scale), 1 << 28));
    }
  }
  return 0;
}

}  // namespace hpcnet::cil

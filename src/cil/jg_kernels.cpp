#include "cil/common.hpp"
#include "cil/jg.hpp"

namespace hpcnet::cil {

std::int32_t build_jg_fib(vm::VirtualMachine& v) {
  return cached(v, "jg.fib.run", [&] {
    vm::Module& mod = v.module();
    ILBuilder b(mod, "jg.fib.run", {{ValType::I32}, ValType::I64});
    const auto self = static_cast<std::int32_t>(mod.method_count());
    auto recurse = b.new_label();
    b.ldarg(0).ldc_i4(2).bge(recurse);
    b.ldarg(0).conv_i8().ret();
    b.bind(recurse);
    b.ldarg(0).ldc_i4(1).sub().call(self);
    b.ldarg(0).ldc_i4(2).sub().call(self);
    b.add().ret();
    return b.finish();
  });
}

std::int32_t build_jg_sieve(vm::VirtualMachine& v) {
  return cached(v, "jg.sieve.run", [&] {
    ILBuilder b(v.module(), "jg.sieve.run", {{ValType::I32}, ValType::I32});
    const auto n = b.add_local(ValType::I32);
    const auto flags = b.add_local(ValType::Ref);
    const auto i = b.add_local(ValType::I32);
    const auto j = b.add_local(ValType::I32);
    const auto count = b.add_local(ValType::I32);
    b.ldarg(0).stloc(n);
    auto big_enough = b.new_label();
    b.ldloc(n).ldc_i4(2).bge(big_enough);
    b.ldc_i4(0).ret();
    b.bind(big_enough);
    b.ldloc(n).ldc_i4(1).add().newarr(ValType::I32).stloc(flags);
    b.ldc_i4(0).stloc(count);
    // for (i = 2; i <= n; i++)
    auto itop = b.new_label();
    auto iend = b.new_label();
    auto inext = b.new_label();
    b.ldc_i4(2).stloc(i);
    b.bind(itop);
    b.ldloc(i).ldloc(n).bgt(iend);
    b.ldloc(flags).ldloc(i).ldelem(ValType::I32).brtrue(inext);
    b.ldloc(count).ldc_i4(1).add().stloc(count);
    // mark multiples starting at i*i (i*i can overflow i32 for huge n, but
    // the benchmark sizes keep n < 46341 squared)
    {
      auto jtop = b.new_label();
      auto jend = b.new_label();
      b.ldloc(i).ldloc(i).mul().stloc(j);
      b.bind(jtop);
      b.ldloc(j).ldloc(n).bgt(jend);
      b.ldloc(j).ldc_i4(0).blt(jend);  // overflow guard
      b.ldloc(flags).ldloc(j).ldc_i4(1).stelem(ValType::I32);
      b.ldloc(j).ldloc(i).add().stloc(j);
      b.br(jtop);
      b.bind(jend);
    }
    b.bind(inext);
    b.ldloc(i).ldc_i4(1).add().stloc(i);
    b.br(itop);
    b.bind(iend);
    b.ldloc(count).ret();
    return b.finish();
  });
}

std::int32_t build_jg_hanoi(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  const std::int32_t mover = cached(v, "jg.hanoi.move", [&] {
    // i64 move(i32 n, i32 from, i32 to, i32 via)
    ILBuilder b(mod, "jg.hanoi.move",
                {{ValType::I32, ValType::I32, ValType::I32, ValType::I32},
                 ValType::I64});
    const auto self = static_cast<std::int32_t>(mod.method_count());
    auto recurse = b.new_label();
    b.ldarg(0).ldc_i4(1).bgt(recurse);
    b.ldc_i8(1).ret();
    b.bind(recurse);
    b.ldarg(0).ldc_i4(1).sub().ldarg(1).ldarg(3).ldarg(2).call(self);
    b.ldc_i8(1).add();
    b.ldarg(0).ldc_i4(1).sub().ldarg(3).ldarg(2).ldarg(1).call(self);
    b.add().ret();
    return b.finish();
  });
  return cached(v, "jg.hanoi.run", [&] {
    ILBuilder b(mod, "jg.hanoi.run", {{ValType::I32}, ValType::I64});
    auto nonzero = b.new_label();
    b.ldarg(0).ldc_i4(0).bgt(nonzero);
    b.ldc_i8(0).ret();
    b.bind(nonzero);
    b.ldarg(0).ldc_i4(0).ldc_i4(2).ldc_i4(1).call(mover).ret();
    return b.finish();
  });
}

std::int32_t build_jg_heapsort(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  // java.util.Random LCG state in a 1-element i64 array (no long fields
  // needed elsewhere; an array keeps the port compact).
  std::int32_t rnd_cls = mod.find_class("jg.Rand");
  if (rnd_cls < 0) {
    rnd_cls = mod.define_class("jg.Rand", {{"seed", ValType::I64}});
  }
  const std::int32_t rand_new = cached(v, "jg.rand.new", [&] {
    ILBuilder b(mod, "jg.rand.new", {{ValType::I64}, ValType::Ref});
    const auto st = b.add_local(ValType::Ref);
    b.newobj(rnd_cls).stloc(st);
    b.ldloc(st)
        .ldarg(0).ldc_i8(0x5DEECE66DLL).xor_()
        .ldc_i8((1LL << 48) - 1).and_()
        .stfld(rnd_cls, "seed");
    b.ldloc(st).ret();
    return b.finish();
  });
  const std::int32_t rand_next32 = cached(v, "jg.rand.next32", [&] {
    // next(32): seed = (seed * 0x5DEECE66D + 0xB) & mask; return hi 32 bits.
    ILBuilder b(mod, "jg.rand.next32", {{ValType::Ref}, ValType::I32});
    const auto s = b.add_local(ValType::I64);
    b.ldarg(0).ldfld(rnd_cls, "seed")
        .ldc_i8(0x5DEECE66DLL).mul().ldc_i8(0xBLL).add()
        .ldc_i8((1LL << 48) - 1).and_().stloc(s);
    b.ldarg(0).ldloc(s).stfld(rnd_cls, "seed");
    b.ldloc(s).ldc_i4(16).shr_un().conv_i4().ret();
    return b.finish();
  });

  return cached(v, "jg.heapsort.run", [&] {
    ILBuilder b(mod, "jg.heapsort.run", {{ValType::I32}, ValType::I64});
    const auto n = b.add_local(ValType::I32);
    const auto data = b.add_local(ValType::Ref);
    const auto rnd = b.add_local(ValType::Ref);
    const auto i = b.add_local(ValType::I32);
    const auto start = b.add_local(ValType::I32);
    const auto end = b.add_local(ValType::I32);
    const auto root = b.add_local(ValType::I32);
    const auto child = b.add_local(ValType::I32);
    const auto tmp = b.add_local(ValType::I32);
    const auto checksum = b.add_local(ValType::I64);

    b.ldarg(0).stloc(n);
    b.ldc_i8(1966).call(rand_new).stloc(rnd);
    b.ldloc(n).newarr(ValType::I32).stloc(data);
    counted_loop(b, i, n, [&] {
      b.ldloc(data).ldloc(i).ldloc(rnd).call(rand_next32)
          .stelem(ValType::I32);
    });

    // sift(start, end): inline twice would be bulky; emit as a local helper
    // method taking (ref data, i32 start, i32 end).
    const std::int32_t sift = cached(v, "jg.heapsort.sift", [&] {
      ILBuilder sb(mod, "jg.heapsort.sift",
                   {{ValType::Ref, ValType::I32, ValType::I32},
                    ValType::None});
      const auto r2 = sb.add_local(ValType::I32);
      const auto c2 = sb.add_local(ValType::I32);
      const auto t2 = sb.add_local(ValType::I32);
      auto loop = sb.new_label();
      auto done = sb.new_label();
      sb.ldarg(1).stloc(r2);
      sb.bind(loop);
      // child = root*2 + 1; if (child > end) return;
      sb.ldloc(r2).ldc_i4(2).mul().ldc_i4(1).add().stloc(c2);
      sb.ldloc(c2).ldarg(2).bgt(done);
      // if (child+1 <= end && data[child] < data[child+1]) child++;
      auto no_sibling = sb.new_label();
      sb.ldloc(c2).ldc_i4(1).add().ldarg(2).bgt(no_sibling);
      sb.ldarg(0).ldloc(c2).ldelem(ValType::I32)
          .ldarg(0).ldloc(c2).ldc_i4(1).add().ldelem(ValType::I32)
          .bge(no_sibling);
      sb.ldloc(c2).ldc_i4(1).add().stloc(c2);
      sb.bind(no_sibling);
      // if (data[root] < data[child]) swap + continue; else return.
      sb.ldarg(0).ldloc(r2).ldelem(ValType::I32)
          .ldarg(0).ldloc(c2).ldelem(ValType::I32).bge(done);
      sb.ldarg(0).ldloc(r2).ldelem(ValType::I32).stloc(t2);
      sb.ldarg(0).ldloc(r2)
          .ldarg(0).ldloc(c2).ldelem(ValType::I32).stelem(ValType::I32);
      sb.ldarg(0).ldloc(c2).ldloc(t2).stelem(ValType::I32);
      sb.ldloc(c2).stloc(r2);
      sb.br(loop);
      sb.bind(done);
      sb.ret();
      return sb.finish();
    });

    // Build the heap: for (start = (n-2)/2; start >= 0; start--).
    auto htop = b.new_label();
    auto hend = b.new_label();
    b.ldloc(n).ldc_i4(2).sub().ldc_i4(2).div().stloc(start);
    b.bind(htop);
    b.ldloc(start).ldc_i4(0).blt(hend);
    b.ldloc(data).ldloc(start).ldloc(n).ldc_i4(1).sub().call(sift);
    b.ldloc(start).ldc_i4(1).sub().stloc(start);
    b.br(htop);
    b.bind(hend);
    // Extract: for (end = n-1; end > 0; end--).
    auto etop = b.new_label();
    auto eend = b.new_label();
    b.ldloc(n).ldc_i4(1).sub().stloc(end);
    b.bind(etop);
    b.ldloc(end).ldc_i4(0).ble(eend);
    b.ldloc(data).ldc_i4(0).ldelem(ValType::I32).stloc(tmp);
    b.ldloc(data).ldc_i4(0)
        .ldloc(data).ldloc(end).ldelem(ValType::I32).stelem(ValType::I32);
    b.ldloc(data).ldloc(end).ldloc(tmp).stelem(ValType::I32);
    b.ldloc(data).ldc_i4(0).ldloc(end).ldc_i4(1).sub().call(sift);
    b.ldloc(end).ldc_i4(1).sub().stloc(end);
    b.br(etop);
    b.bind(eend);
    // checksum = (checksum << 1) ^ (checksum >> 7) ^ data[i]
    b.ldc_i8(0).stloc(checksum);
    counted_loop(b, i, n, [&] {
      b.ldloc(checksum).ldc_i4(1).shl()
          .ldloc(checksum).ldc_i4(7).shr().xor_()
          .ldloc(data).ldloc(i).ldelem(ValType::I32).conv_i8().xor_()
          .stloc(checksum);
    });
    b.ldloc(checksum).ret();
    return b.finish();
  });
}

}  // namespace hpcnet::cil

// Helpers shared by the CIL benchmark authors: counted-loop emission, and
// the cached-builder pattern (every program is built into a Module once,
// then executed unmodified by each engine — the paper's single-compiler
// methodology).
#pragma once

#include <functional>
#include <string>

#include "vm/execution.hpp"
#include "vm/ilbuilder.hpp"
#include "vm/verifier.hpp"

namespace hpcnet::cil {

using vm::ILBuilder;
using vm::MethodSig;
using vm::ValType;

/// Emits `for (i = 0; i < bound; ++i) { body(); }` where `i` and `bound` are
/// i32 locals. The loop shape matches what the C# compiler emits (branch to
/// the condition first), which is also the shape the BCE pass recognizes.
inline void counted_loop(ILBuilder& b, std::int32_t i_local,
                         std::int32_t bound_local,
                         const std::function<void()>& body) {
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldc_i4(0).stloc(i_local).br(cond);
  b.bind(top);
  body();
  b.ldloc(i_local).ldc_i4(1).add().stloc(i_local);
  b.bind(cond);
  b.ldloc(i_local).ldloc(bound_local).blt(top);
}

/// `for (i = 0; i < arr.Length; ++i)` — the ldlen-bounded form whose bounds
/// checks the CLR 1.1 eliminates (paper §5, the +15% sparse-matmul result).
inline void ldlen_loop(ILBuilder& b, std::int32_t i_local,
                       std::int32_t arr_local,
                       const std::function<void()>& body) {
  auto cond = b.new_label();
  auto top = b.new_label();
  b.ldc_i4(0).stloc(i_local).br(cond);
  b.bind(top);
  body();
  b.ldloc(i_local).ldc_i4(1).add().stloc(i_local);
  b.bind(cond);
  b.ldloc(i_local).ldloc(arr_local).ldlen().blt(top);
}

/// Returns the method id if `name` is already built, else invokes `build`
/// (which must register a method under `name`) and verifies it.
inline std::int32_t cached(vm::VirtualMachine& v, const std::string& name,
                           const std::function<std::int32_t()>& build) {
  const std::int32_t existing = v.module().find_method(name);
  if (existing >= 0) return existing;
  const std::int32_t id = build();
  vm::verify(v.module(), id);
  return id;
}

}  // namespace hpcnet::cil

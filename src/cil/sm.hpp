// SciMark 2.0 kernels authored as CIL (the macro benchmarks of Graphs 9-11).
// The SciMark lagged-Fibonacci RNG is itself ported to CIL (`sm.rand.*`), so
// every engine generates bit-identical inputs and the kernel results can be
// validated against the native baselines in src/kernels.
#pragma once

#include <cstdint>

#include "vm/execution.hpp"

namespace hpcnet::cil {

/// sm.rand.new(i32 seed) -> ref state; sm.rand.next(ref) -> f64;
/// sm.rand.fill(ref state, ref f64[]) -> void.
struct SmRandom {
  std::int32_t new_fn;
  std::int32_t next_fn;
  std::int32_t fill_fn;
};
SmRandom build_sm_random(vm::VirtualMachine& v);

/// sm.fft.run(i32 n, i32 cycles) -> f64: `cycles` forward+inverse round
/// trips over a random 2n-element interleaved complex vector (seed 7);
/// returns data[0] (equals fft_roundtrip_checksum on the native side).
std::int32_t build_sm_fft(vm::VirtualMachine& v);

/// sm.sor.run(i32 n, i32 iters) -> f64: returns G[1][1] (jagged grid).
std::int32_t build_sm_sor(vm::VirtualMachine& v);

/// sm.montecarlo.run(i32 samples) -> f64: the pi estimate.
std::int32_t build_sm_montecarlo(vm::VirtualMachine& v);

/// sm.sparse.run(i32 n, i32 nz, i32 iters) -> f64: sum of y.
std::int32_t build_sm_sparse(vm::VirtualMachine& v);

/// sm.lu.run(i32 n) -> f64: A[0][0] after the in-place factorization.
std::int32_t build_sm_lu(vm::VirtualMachine& v);

/// psor.run(i32 n, i32 iters, i32 nthreads) -> f64: shared-memory parallel
/// red-black SOR — the paper's stated future work (porting the JGF parallel
/// benchmarks). Thread-count independent and validated against
/// kernels::sor::checksum_redblack.
std::int32_t build_sm_psor(vm::VirtualMachine& v);

/// bce.daxpy.ldlen(i32 n, i32 reps) -> f64 and bce.daxpy.var(...): the §5
/// bounds-check-elimination experiment — identical loops except that one is
/// bounded by `arr.Length` (BCE-eligible) and one by a separate local.
std::int32_t build_bce_daxpy_ldlen(vm::VirtualMachine& v);
std::int32_t build_bce_daxpy_var(vm::VirtualMachine& v);

}  // namespace hpcnet::cil

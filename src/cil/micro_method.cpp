// Method-call micro-benchmark (Table 1): static calls, static calls with
// arguments, instance calls (explicit this argument, as our CIL subset
// models instance methods), synchronized methods (Monitor-wrapped body, the
// JGF "synchronized method" case) and base-library (intrinsic) calls.
#include "cil/common.hpp"
#include "cil/micro.hpp"
#include "vm/intrinsics.hpp"

namespace hpcnet::cil {

namespace {

std::int32_t target_class(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  std::int32_t cls = mod.find_class("bench.MethodTarget");
  if (cls < 0) cls = mod.define_class("bench.MethodTarget", {{"v", ValType::I32}});
  return cls;
}

std::int32_t build_loop_calling(
    vm::VirtualMachine& v, const std::string& name,
    const std::function<void(ILBuilder&, std::int32_t i, std::int32_t obj)>&
        call_once,
    bool needs_obj) {
  const std::int32_t cls = target_class(v);
  return cached(v, name, [&] {
    ILBuilder b(v.module(), name, {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    const auto acc = b.add_local(ValType::I32);
    const auto obj = b.add_local(ValType::Ref);
    b.ldarg(0).stloc(bound);
    b.ldc_i4(0).stloc(acc);
    if (needs_obj) b.newobj(cls).stloc(obj);
    counted_loop(b, i, bound, [&] {
      call_once(b, i, obj);
      b.ldloc(acc).add().stloc(acc);
    });
    b.ldloc(acc).ret();
    return b.finish();
  });
}

}  // namespace

std::int32_t build_method_static(vm::VirtualMachine& v) {
  const std::int32_t callee = cached(v, "micro.method.static_fn", [&] {
    ILBuilder b(v.module(), "micro.method.static_fn", {{}, ValType::I32});
    b.ldc_i4(1).ret();
    return b.finish();
  });
  return build_loop_calling(
      v, "micro.method.static",
      [callee](ILBuilder& b, std::int32_t, std::int32_t) { b.call(callee); },
      false);
}

std::int32_t build_method_static_args(vm::VirtualMachine& v) {
  const std::int32_t callee = cached(v, "micro.method.staticargs_fn", [&] {
    ILBuilder b(v.module(), "micro.method.staticargs_fn",
                {{ValType::I32, ValType::I32}, ValType::I32});
    b.ldarg(0).ldarg(1).add().ret();
    return b.finish();
  });
  return build_loop_calling(
      v, "micro.method.staticargs",
      [callee](ILBuilder& b, std::int32_t i, std::int32_t) {
        b.ldloc(i).ldc_i4(3).call(callee);
      },
      false);
}

std::int32_t build_method_instance(vm::VirtualMachine& v) {
  const std::int32_t cls = target_class(v);
  const std::int32_t callee = cached(v, "micro.method.instance_fn", [&] {
    // int get(this): reads a field through the this-pointer.
    ILBuilder b(v.module(), "micro.method.instance_fn",
                {{ValType::Ref}, ValType::I32});
    b.ldarg(0).ldfld(cls, "v").ldc_i4(1).add().ret();
    return b.finish();
  });
  return build_loop_calling(
      v, "micro.method.instance",
      [callee](ILBuilder& b, std::int32_t, std::int32_t obj) {
        b.ldloc(obj).call(callee);
      },
      true);
}

std::int32_t build_method_synchronized(vm::VirtualMachine& v) {
  const std::int32_t cls = target_class(v);
  const std::int32_t callee = cached(v, "micro.method.sync_fn", [&] {
    // int get(this) { lock(this) { return this.v + 1; } }
    ILBuilder b(v.module(), "micro.method.sync_fn",
                {{ValType::Ref}, ValType::I32});
    const auto r = b.add_local(ValType::I32);
    b.ldarg(0).call_intr(vm::I_MON_ENTER);
    b.ldarg(0).ldfld(cls, "v").ldc_i4(1).add().stloc(r);
    b.ldarg(0).call_intr(vm::I_MON_EXIT);
    b.ldloc(r).ret();
    return b.finish();
  });
  return build_loop_calling(
      v, "micro.method.synchronized",
      [callee](ILBuilder& b, std::int32_t, std::int32_t obj) {
        b.ldloc(obj).call(callee);
      },
      true);
}

std::int32_t build_method_intrinsic(vm::VirtualMachine& v) {
  return build_loop_calling(
      v, "micro.method.intrinsic",
      [](ILBuilder& b, std::int32_t i, std::int32_t) {
        b.ldloc(i).ldc_i4(-17).call_intr(vm::I_MAX_I4);
      },
      false);
}

std::int32_t build_lock_uncontended(vm::VirtualMachine& v) {
  const std::int32_t cls = target_class(v);
  return cached(v, "micro.lock.uncontended", [&] {
    ILBuilder b(v.module(), "micro.lock.uncontended",
                {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    const auto acc = b.add_local(ValType::I32);
    const auto obj = b.add_local(ValType::Ref);
    b.ldarg(0).stloc(bound);
    b.newobj(cls).stloc(obj);
    counted_loop(b, i, bound, [&] {
      b.ldloc(obj).call_intr(vm::I_MON_ENTER);
      b.ldloc(acc).ldc_i4(1).add().stloc(acc);
      b.ldloc(obj).call_intr(vm::I_MON_EXIT);
    });
    b.ldloc(acc).ret();
    return b.finish();
  });
}

std::int32_t build_boxing_i32(vm::VirtualMachine& v) {
  return cached(v, "micro.boxing.i32", [&] {
    ILBuilder b(v.module(), "micro.boxing.i32", {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    const auto acc = b.add_local(ValType::I32);
    b.ldarg(0).stloc(bound);
    counted_loop(b, i, bound, [&] {
      b.ldloc(i).box(ValType::I32).unbox(ValType::I32)
          .ldloc(acc).add().stloc(acc);
    });
    b.ldloc(acc).ret();
    return b.finish();
  });
}

std::int32_t build_boxing_f64(vm::VirtualMachine& v) {
  return cached(v, "micro.boxing.f64", [&] {
    ILBuilder b(v.module(), "micro.boxing.f64", {{ValType::I32}, ValType::F64});
    const auto i = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    const auto acc = b.add_local(ValType::F64);
    b.ldarg(0).stloc(bound);
    counted_loop(b, i, bound, [&] {
      b.ldloc(i).conv_r8().box(ValType::F64).unbox(ValType::F64)
          .ldloc(acc).add().stloc(acc);
    });
    b.ldloc(acc).ret();
    return b.finish();
  });
}

}  // namespace hpcnet::cil

// The CLI-Grande micro-benchmark programs (paper Tables 1-3, Graphs 1-8 and
// 12), authored as CIL. Each builder registers (once) and returns a method
// id; the method takes an i32 iteration count and returns a value that
// depends on every iteration, so no tier can elide the measured work.
//
// Loop bodies follow the JGF sources: e.g. the arithmetic benchmarks chain
// four variables cyclically (Add), or repeatedly divide by a constant (Div —
// the exact loop of the paper's Table 5 disassembly study).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vm/execution.hpp"

namespace hpcnet::cil {

// --- Arith (Graphs 1-3); ops/iteration = 4 -------------------------------
std::int32_t build_arith_add_i32(vm::VirtualMachine& v);
std::int32_t build_arith_mul_i32(vm::VirtualMachine& v);
std::int32_t build_arith_div_i32(vm::VirtualMachine& v);
std::int32_t build_arith_add_i64(vm::VirtualMachine& v);
std::int32_t build_arith_mul_i64(vm::VirtualMachine& v);
std::int32_t build_arith_div_i64(vm::VirtualMachine& v);
std::int32_t build_arith_add_f32(vm::VirtualMachine& v);
std::int32_t build_arith_mul_f32(vm::VirtualMachine& v);
std::int32_t build_arith_div_f32(vm::VirtualMachine& v);
std::int32_t build_arith_add_f64(vm::VirtualMachine& v);
std::int32_t build_arith_mul_f64(vm::VirtualMachine& v);
std::int32_t build_arith_div_f64(vm::VirtualMachine& v);

// --- Loop (Graph 4); ops/iteration = 1 ------------------------------------
std::int32_t build_loop_for(vm::VirtualMachine& v);
std::int32_t build_loop_reverse_for(vm::VirtualMachine& v);
std::int32_t build_loop_while(vm::VirtualMachine& v);

// --- Exception (Graph 5); ops/iteration = 1 -------------------------------
std::int32_t build_exception_throw(vm::VirtualMachine& v);   // rethrow one object
std::int32_t build_exception_new(vm::VirtualMachine& v);     // new object each time
std::int32_t build_exception_method(vm::VirtualMachine& v);  // thrown in callee

// --- Math (Graphs 6-8); ops/iteration = 1; id = Intr enum value -----------
std::int32_t build_math_call(vm::VirtualMachine& v, std::int32_t intrinsic_id);

// --- Assign (Table 1); ops/iteration = 4 -----------------------------------
std::int32_t build_assign_local(vm::VirtualMachine& v);
std::int32_t build_assign_instance(vm::VirtualMachine& v);
std::int32_t build_assign_static(vm::VirtualMachine& v);
std::int32_t build_assign_array(vm::VirtualMachine& v);

// --- Cast (Table 1); ops/iteration = 2 (round trip) ------------------------
std::int32_t build_cast_i32_i64(vm::VirtualMachine& v);
std::int32_t build_cast_i32_f32(vm::VirtualMachine& v);
std::int32_t build_cast_i32_f64(vm::VirtualMachine& v);
std::int32_t build_cast_f32_f64(vm::VirtualMachine& v);
std::int32_t build_cast_i64_f64(vm::VirtualMachine& v);

// --- Create (Table 1); ops/iteration = 1 -----------------------------------
std::int32_t build_create_object(vm::VirtualMachine& v);        // 2-field class
std::int32_t build_create_array(vm::VirtualMachine& v, std::int32_t length);
std::int32_t build_create_matrix2(vm::VirtualMachine& v,        // rank-2 f64
                                  std::int32_t rows, std::int32_t cols);
std::int32_t build_create_box(vm::VirtualMachine& v);           // box an i32

// --- Create, multithreaded (allocation scaling) ----------------------------
/// (i32 nthreads, i32 iters) -> i32. Starts nthreads managed threads, each
/// performing `iters` creations of `kind` ("object", "array", "matrix",
/// "box") through its own TLAB; returns the number of workers that finished
/// (must equal nthreads). Total allocations per call = nthreads * iters.
std::int32_t build_create_mt(vm::VirtualMachine& v, const std::string& kind);

// --- Method (Table 1); ops/iteration = 1 -----------------------------------
std::int32_t build_method_static(vm::VirtualMachine& v);
std::int32_t build_method_static_args(vm::VirtualMachine& v);
std::int32_t build_method_instance(vm::VirtualMachine& v);     // this-pointer arg
std::int32_t build_method_synchronized(vm::VirtualMachine& v); // monitor wrap
std::int32_t build_method_intrinsic(vm::VirtualMachine& v);

// --- Serial (Table 1); ops/iteration = list length -------------------------
/// Builds+serializes+deserializes a linked list of `size` nodes per call;
/// method signature (i32 size) -> i32 (node count read back).
std::int32_t build_serial_roundtrip(vm::VirtualMachine& v);

// --- Matrix (Table 3, Graph 12); ops/iteration = n*n copies ----------------
/// (i32 reps, i32 n) -> f64/ref checksum; copies B into A element-wise.
std::int32_t build_matrix_multidim_f64(vm::VirtualMachine& v);
std::int32_t build_matrix_jagged_f64(vm::VirtualMachine& v);
std::int32_t build_matrix_multidim_ref(vm::VirtualMachine& v);
std::int32_t build_matrix_jagged_ref(vm::VirtualMachine& v);

// --- Boxing (Table 3); ops/iteration = 2 (box + unbox) ---------------------
std::int32_t build_boxing_i32(vm::VirtualMachine& v);
std::int32_t build_boxing_f64(vm::VirtualMachine& v);

// --- Lock (Table 3); ops/iteration = 1 (enter+exit pair) -------------------
std::int32_t build_lock_uncontended(vm::VirtualMachine& v);

}  // namespace hpcnet::cil

// Serial micro-benchmark (Table 1): build a linked list of `size` nodes,
// serialize it through the base-library serializer, deserialize it back and
// walk the reconstructed list — the write-and-read object graph round trip
// of the JGF Serial benchmark.
#include "cil/common.hpp"
#include "cil/micro.hpp"
#include "vm/intrinsics.hpp"

namespace hpcnet::cil {

std::int32_t build_serial_roundtrip(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  std::int32_t node = mod.find_class("bench.ListNode");
  if (node < 0) {
    node = mod.define_class("bench.ListNode",
                            {{"value", ValType::I32}, {"next", ValType::Ref}});
  }
  return cached(v, "micro.serial.roundtrip", [&] {
    ILBuilder b(mod, "micro.serial.roundtrip", {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    const auto size = b.add_local(ValType::I32);
    const auto head = b.add_local(ValType::Ref);
    const auto blob = b.add_local(ValType::Ref);
    const auto cur = b.add_local(ValType::Ref);
    const auto count = b.add_local(ValType::I32);

    b.ldarg(0).stloc(size);
    // Build the list: head = null; for i in [0, size): n = new Node(i, head).
    b.ldnull().stloc(head);
    counted_loop(b, i, size, [&] {
      b.newobj(node).stloc(cur);
      b.ldloc(cur).ldloc(i).stfld(node, "value");
      b.ldloc(cur).ldloc(head).stfld(node, "next");
      b.ldloc(cur).stloc(head);
    });

    // blob = Serialize(head); head2 = Deserialize(blob).
    b.ldloc(head).call_intr(vm::I_SERIALIZE).stloc(blob);
    b.ldloc(blob).call_intr(vm::I_DESERIALIZE).stloc(cur);

    // Walk the reconstructed list, counting nodes and checking values.
    auto walk = b.new_label();
    auto done = b.new_label();
    b.ldc_i4(0).stloc(count);
    b.bind(walk);
    b.ldloc(cur).brfalse(done);
    b.ldloc(count).ldc_i4(1).add().stloc(count);
    b.ldloc(cur).ldfld(node, "next").stloc(cur);
    b.br(walk);
    b.bind(done);
    b.ldloc(count).ret();
    return b.finish();
  });
}

}  // namespace hpcnet::cil

// CIL ports of the SciMark 2.0 kernels. Algorithm structure follows the
// reference Java sources statement-for-statement (the paper's port rule);
// see src/kernels for the native twins these validate against.
#include "cil/common.hpp"
#include "cil/sm.hpp"
#include "vm/intrinsics.hpp"

namespace hpcnet::cil {

namespace {
constexpr std::int32_t kM1 = 2147483647;  // 2^31 - 1
constexpr std::int32_t kM2 = 65536;       // 2^16
constexpr double kPi = 3.141592653589793;
}  // namespace

SmRandom build_sm_random(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  std::int32_t cls = mod.find_class("sm.RandState");
  if (cls < 0) {
    cls = mod.define_class("sm.RandState", {{"m", ValType::Ref},
                                            {"i", ValType::I32},
                                            {"j", ValType::I32}});
  }

  SmRandom r{};
  r.new_fn = cached(v, "sm.rand.new", [&] {
    ILBuilder b(mod, "sm.rand.new", {{ValType::I32}, ValType::Ref});
    const auto st = b.add_local(ValType::Ref);
    const auto marr = b.add_local(ValType::Ref);
    const auto jseed = b.add_local(ValType::I32);
    const auto k0 = b.add_local(ValType::I32);
    const auto k1 = b.add_local(ValType::I32);
    const auto j0 = b.add_local(ValType::I32);
    const auto j1 = b.add_local(ValType::I32);
    const auto iloop = b.add_local(ValType::I32);
    const auto seventeen = b.add_local(ValType::I32);

    b.newobj(cls).stloc(st);
    b.ldc_i4(17).newarr(ValType::I32).stloc(marr);
    b.ldloc(st).ldloc(marr).stfld(cls, "m");
    // jseed = min(abs(seed), m1); force odd.
    b.ldarg(0).call_intr(vm::I_ABS_I4).ldc_i4(kM1).call_intr(vm::I_MIN_I4)
        .stloc(jseed);
    auto odd = b.new_label();
    b.ldloc(jseed).ldc_i4(2).rem().ldc_i4(0).bne(odd);
    b.ldloc(jseed).ldc_i4(1).sub().stloc(jseed);
    b.bind(odd);
    b.ldc_i4(9069).ldc_i4(kM2).rem().stloc(k0);
    b.ldc_i4(9069).ldc_i4(kM2).div().stloc(k1);
    b.ldloc(jseed).ldc_i4(kM2).rem().stloc(j0);
    b.ldloc(jseed).ldc_i4(kM2).div().stloc(j1);
    b.ldc_i4(17).stloc(seventeen);
    counted_loop(b, iloop, seventeen, [&] {
      // jseed = j0 * k0
      b.ldloc(j0).ldloc(k0).mul().stloc(jseed);
      // j1 = (jseed / m2 + j0 * k1 + j1 * k0) % (m2 / 2)
      b.ldloc(jseed).ldc_i4(kM2).div()
          .ldloc(j0).ldloc(k1).mul().add()
          .ldloc(j1).ldloc(k0).mul().add()
          .ldc_i4(kM2 / 2).rem().stloc(j1);
      // j0 = jseed % m2
      b.ldloc(jseed).ldc_i4(kM2).rem().stloc(j0);
      // m[iloop] = j0 + m2 * j1
      b.ldloc(marr).ldloc(iloop)
          .ldloc(j0).ldc_i4(kM2).ldloc(j1).mul().add()
          .stelem(ValType::I32);
    });
    b.ldloc(st).ldc_i4(4).stfld(cls, "i");
    b.ldloc(st).ldc_i4(16).stfld(cls, "j");
    b.ldloc(st).ret();
    return b.finish();
  });

  r.next_fn = cached(v, "sm.rand.next", [&] {
    ILBuilder b(mod, "sm.rand.next", {{ValType::Ref}, ValType::F64});
    const auto marr = b.add_local(ValType::Ref);
    const auto i = b.add_local(ValType::I32);
    const auto j = b.add_local(ValType::I32);
    const auto k = b.add_local(ValType::I32);
    b.ldarg(0).ldfld(cls, "m").stloc(marr);
    b.ldarg(0).ldfld(cls, "i").stloc(i);
    b.ldarg(0).ldfld(cls, "j").stloc(j);
    // k = m[i] - m[j]; if (k < 0) k += m1; m[j] = k;
    b.ldloc(marr).ldloc(i).ldelem(ValType::I32)
        .ldloc(marr).ldloc(j).ldelem(ValType::I32).sub().stloc(k);
    auto nonneg = b.new_label();
    b.ldloc(k).ldc_i4(0).bge(nonneg);
    b.ldloc(k).ldc_i4(kM1).add().stloc(k);
    b.bind(nonneg);
    b.ldloc(marr).ldloc(j).ldloc(k).stelem(ValType::I32);
    // i = (i == 0) ? 16 : i - 1; likewise j.
    auto idec = b.new_label();
    auto iout = b.new_label();
    b.ldloc(i).ldc_i4(0).bne(idec);
    b.ldc_i4(16).stloc(i).br(iout);
    b.bind(idec);
    b.ldloc(i).ldc_i4(1).sub().stloc(i);
    b.bind(iout);
    auto jdec = b.new_label();
    auto jout = b.new_label();
    b.ldloc(j).ldc_i4(0).bne(jdec);
    b.ldc_i4(16).stloc(j).br(jout);
    b.bind(jdec);
    b.ldloc(j).ldc_i4(1).sub().stloc(j);
    b.bind(jout);
    b.ldarg(0).ldloc(i).stfld(cls, "i");
    b.ldarg(0).ldloc(j).stfld(cls, "j");
    // return dm1 * (double)k
    b.ldc_r8(1.0 / kM1).ldloc(k).conv_r8().mul().ret();
    return b.finish();
  });

  r.fill_fn = cached(v, "sm.rand.fill", [&] {
    ILBuilder b(mod, "sm.rand.fill",
                {{ValType::Ref, ValType::Ref}, ValType::None});
    const auto i = b.add_local(ValType::I32);
    const auto arr = b.add_local(ValType::Ref);
    b.ldarg(1).stloc(arr);
    ldlen_loop(b, i, arr, [&] {
      b.ldloc(arr).ldloc(i).ldarg(0).call(r.next_fn).stelem(ValType::F64);
    });
    b.ret();
    return b.finish();
  });
  return r;
}

// ---------------------------------------------------------------------------
// FFT.

std::int32_t build_sm_fft(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  const SmRandom rnd = build_sm_random(v);

  const std::int32_t log2_fn = cached(v, "sm.fft.log2", [&] {
    ILBuilder b(mod, "sm.fft.log2", {{ValType::I32}, ValType::I32});
    const auto k = b.add_local(ValType::I32);
    const auto log = b.add_local(ValType::I32);
    auto top = b.new_label();
    auto done = b.new_label();
    b.ldc_i4(1).stloc(k);
    b.ldc_i4(0).stloc(log);
    b.bind(top);
    b.ldloc(k).ldarg(0).bge(done);
    b.ldloc(k).ldc_i4(2).mul().stloc(k);
    b.ldloc(log).ldc_i4(1).add().stloc(log);
    b.br(top);
    b.bind(done);
    b.ldloc(log).ret();
    return b.finish();
  });

  const std::int32_t bitrev_fn = cached(v, "sm.fft.bitreverse", [&] {
    ILBuilder b(mod, "sm.fft.bitreverse", {{ValType::Ref}, ValType::None});
    const auto data = b.add_local(ValType::Ref);
    const auto n = b.add_local(ValType::I32);
    const auto nm1 = b.add_local(ValType::I32);
    const auto i = b.add_local(ValType::I32);
    const auto j = b.add_local(ValType::I32);
    const auto ii = b.add_local(ValType::I32);
    const auto jj = b.add_local(ValType::I32);
    const auto k = b.add_local(ValType::I32);
    const auto tr = b.add_local(ValType::F64);
    const auto ti = b.add_local(ValType::F64);
    b.ldarg(0).stloc(data);
    b.ldloc(data).ldlen().ldc_i4(2).div().stloc(n);
    b.ldloc(n).ldc_i4(1).sub().stloc(nm1);
    b.ldc_i4(0).stloc(j);
    counted_loop(b, i, nm1, [&] {
      b.ldloc(i).ldc_i4(1).shl().stloc(ii);
      b.ldloc(j).ldc_i4(1).shl().stloc(jj);
      b.ldloc(n).ldc_i4(1).shr().stloc(k);
      auto noswap = b.new_label();
      b.ldloc(i).ldloc(j).bge(noswap);
      // swap pairs (ii, ii+1) <-> (jj, jj+1)
      b.ldloc(data).ldloc(ii).ldelem(ValType::F64).stloc(tr);
      b.ldloc(data).ldloc(ii).ldc_i4(1).add().ldelem(ValType::F64).stloc(ti);
      b.ldloc(data).ldloc(ii)
          .ldloc(data).ldloc(jj).ldelem(ValType::F64).stelem(ValType::F64);
      b.ldloc(data).ldloc(ii).ldc_i4(1).add()
          .ldloc(data).ldloc(jj).ldc_i4(1).add().ldelem(ValType::F64)
          .stelem(ValType::F64);
      b.ldloc(data).ldloc(jj).ldloc(tr).stelem(ValType::F64);
      b.ldloc(data).ldloc(jj).ldc_i4(1).add().ldloc(ti).stelem(ValType::F64);
      b.bind(noswap);
      // while (k <= j) { j -= k; k >>= 1; }
      auto wtop = b.new_label();
      auto wend = b.new_label();
      b.bind(wtop);
      b.ldloc(k).ldloc(j).bgt(wend);
      b.ldloc(j).ldloc(k).sub().stloc(j);
      b.ldloc(k).ldc_i4(1).shr().stloc(k);
      b.br(wtop);
      b.bind(wend);
      b.ldloc(j).ldloc(k).add().stloc(j);
    });
    b.ret();
    return b.finish();
  });

  const std::int32_t xform_fn = cached(v, "sm.fft.transform_internal", [&] {
    ILBuilder b(mod, "sm.fft.transform_internal",
                {{ValType::Ref, ValType::I32}, ValType::None});
    const auto data = b.add_local(ValType::Ref);
    const auto n = b.add_local(ValType::I32);
    const auto logn = b.add_local(ValType::I32);
    const auto bit = b.add_local(ValType::I32);
    const auto dual = b.add_local(ValType::I32);
    const auto w_real = b.add_local(ValType::F64);
    const auto w_imag = b.add_local(ValType::F64);
    const auto theta = b.add_local(ValType::F64);
    const auto s = b.add_local(ValType::F64);
    const auto t = b.add_local(ValType::F64);
    const auto s2 = b.add_local(ValType::F64);
    const auto a = b.add_local(ValType::I32);
    const auto bb = b.add_local(ValType::I32);
    const auto i = b.add_local(ValType::I32);
    const auto j = b.add_local(ValType::I32);
    const auto wd_real = b.add_local(ValType::F64);
    const auto wd_imag = b.add_local(ValType::F64);
    const auto z1_real = b.add_local(ValType::F64);
    const auto z1_imag = b.add_local(ValType::F64);
    const auto tmp_real = b.add_local(ValType::F64);

    b.ldarg(0).stloc(data);
    b.ldloc(data).ldlen().ldc_i4(2).div().stloc(n);
    auto not_trivial = b.new_label();
    b.ldloc(n).ldc_i4(1).bgt(not_trivial);
    b.ret();
    b.bind(not_trivial);
    b.ldloc(n).call(log2_fn).stloc(logn);
    b.ldloc(data).call(bitrev_fn);

    b.ldc_i4(1).stloc(dual);
    counted_loop(b, bit, logn, [&] {
      b.ldc_r8(1.0).stloc(w_real);
      b.ldc_r8(0.0).stloc(w_imag);
      // theta = 2 * direction * PI / (2 * dual)
      b.ldc_r8(2.0).ldarg(1).conv_r8().mul().ldc_r8(kPi).mul()
          .ldc_r8(2.0).ldloc(dual).conv_r8().mul().div().stloc(theta);
      b.ldloc(theta).call_intr(vm::I_SIN).stloc(s);
      b.ldloc(theta).ldc_r8(2.0).div().call_intr(vm::I_SIN).stloc(t);
      b.ldc_r8(2.0).ldloc(t).mul().ldloc(t).mul().stloc(s2);

      // a == 0 butterfly: for (b = 0; b < n; b += 2*dual)
      auto btop0 = b.new_label();
      auto bend0 = b.new_label();
      b.ldc_i4(0).stloc(bb);
      b.bind(btop0);
      b.ldloc(bb).ldloc(n).bge(bend0);
      b.ldloc(bb).ldc_i4(2).mul().stloc(i);
      b.ldloc(bb).ldloc(dual).add().ldc_i4(2).mul().stloc(j);
      b.ldloc(data).ldloc(j).ldelem(ValType::F64).stloc(wd_real);
      b.ldloc(data).ldloc(j).ldc_i4(1).add().ldelem(ValType::F64).stloc(wd_imag);
      b.ldloc(data).ldloc(j)
          .ldloc(data).ldloc(i).ldelem(ValType::F64).ldloc(wd_real).sub()
          .stelem(ValType::F64);
      b.ldloc(data).ldloc(j).ldc_i4(1).add()
          .ldloc(data).ldloc(i).ldc_i4(1).add().ldelem(ValType::F64)
          .ldloc(wd_imag).sub().stelem(ValType::F64);
      b.ldloc(data).ldloc(i)
          .ldloc(data).ldloc(i).ldelem(ValType::F64).ldloc(wd_real).add()
          .stelem(ValType::F64);
      b.ldloc(data).ldloc(i).ldc_i4(1).add()
          .ldloc(data).ldloc(i).ldc_i4(1).add().ldelem(ValType::F64)
          .ldloc(wd_imag).add().stelem(ValType::F64);
      b.ldloc(bb).ldc_i4(2).ldloc(dual).mul().add().stloc(bb);
      b.br(btop0);
      b.bind(bend0);

      // for (a = 1; a < dual; a++)
      auto atop = b.new_label();
      auto aend = b.new_label();
      b.ldc_i4(1).stloc(a);
      b.bind(atop);
      b.ldloc(a).ldloc(dual).bge(aend);
      // trig recurrence
      b.ldloc(w_real).ldloc(s).ldloc(w_imag).mul().sub()
          .ldloc(s2).ldloc(w_real).mul().sub().stloc(tmp_real);
      b.ldloc(w_imag).ldloc(s).ldloc(w_real).mul().add()
          .ldloc(s2).ldloc(w_imag).mul().sub().stloc(w_imag);
      b.ldloc(tmp_real).stloc(w_real);
      // inner butterfly loop
      auto btop = b.new_label();
      auto bend = b.new_label();
      b.ldc_i4(0).stloc(bb);
      b.bind(btop);
      b.ldloc(bb).ldloc(n).bge(bend);
      b.ldloc(bb).ldloc(a).add().ldc_i4(2).mul().stloc(i);
      b.ldloc(bb).ldloc(a).add().ldloc(dual).add().ldc_i4(2).mul().stloc(j);
      b.ldloc(data).ldloc(j).ldelem(ValType::F64).stloc(z1_real);
      b.ldloc(data).ldloc(j).ldc_i4(1).add().ldelem(ValType::F64).stloc(z1_imag);
      b.ldloc(w_real).ldloc(z1_real).mul()
          .ldloc(w_imag).ldloc(z1_imag).mul().sub().stloc(wd_real);
      b.ldloc(w_real).ldloc(z1_imag).mul()
          .ldloc(w_imag).ldloc(z1_real).mul().add().stloc(wd_imag);
      b.ldloc(data).ldloc(j)
          .ldloc(data).ldloc(i).ldelem(ValType::F64).ldloc(wd_real).sub()
          .stelem(ValType::F64);
      b.ldloc(data).ldloc(j).ldc_i4(1).add()
          .ldloc(data).ldloc(i).ldc_i4(1).add().ldelem(ValType::F64)
          .ldloc(wd_imag).sub().stelem(ValType::F64);
      b.ldloc(data).ldloc(i)
          .ldloc(data).ldloc(i).ldelem(ValType::F64).ldloc(wd_real).add()
          .stelem(ValType::F64);
      b.ldloc(data).ldloc(i).ldc_i4(1).add()
          .ldloc(data).ldloc(i).ldc_i4(1).add().ldelem(ValType::F64)
          .ldloc(wd_imag).add().stelem(ValType::F64);
      b.ldloc(bb).ldc_i4(2).ldloc(dual).mul().add().stloc(bb);
      b.br(btop);
      b.bind(bend);
      b.ldloc(a).ldc_i4(1).add().stloc(a);
      b.br(atop);
      b.bind(aend);
      b.ldloc(dual).ldc_i4(2).mul().stloc(dual);
    });
    b.ret();
    return b.finish();
  });

  const std::int32_t inverse_fn = cached(v, "sm.fft.inverse", [&] {
    ILBuilder b(mod, "sm.fft.inverse", {{ValType::Ref}, ValType::None});
    const auto data = b.add_local(ValType::Ref);
    const auto i = b.add_local(ValType::I32);
    const auto norm = b.add_local(ValType::F64);
    b.ldarg(0).stloc(data);
    b.ldloc(data).ldc_i4(1).call(xform_fn);
    b.ldc_r8(1.0)
        .ldloc(data).ldlen().ldc_i4(2).div().conv_r8().div().stloc(norm);
    ldlen_loop(b, i, data, [&] {
      b.ldloc(data).ldloc(i)
          .ldloc(data).ldloc(i).ldelem(ValType::F64).ldloc(norm).mul()
          .stelem(ValType::F64);
    });
    b.ret();
    return b.finish();
  });

  return cached(v, "sm.fft.run", [&] {
    ILBuilder b(mod, "sm.fft.run",
                {{ValType::I32, ValType::I32}, ValType::F64});
    const auto st = b.add_local(ValType::Ref);
    const auto data = b.add_local(ValType::Ref);
    const auto c = b.add_local(ValType::I32);
    const auto cycles = b.add_local(ValType::I32);
    b.ldarg(1).stloc(cycles);
    b.ldc_i4(7).call(rnd.new_fn).stloc(st);
    b.ldarg(0).ldc_i4(2).mul().newarr(ValType::F64).stloc(data);
    b.ldloc(data).call_intr(vm::I_GC_PRETOUCH);
    b.ldloc(st).ldloc(data).call(rnd.fill_fn);
    counted_loop(b, c, cycles, [&] {
      b.ldloc(data).ldc_i4(-1).call(xform_fn);
      b.ldloc(data).call(inverse_fn);
    });
    b.ldloc(data).ldc_i4(0).ldelem(ValType::F64).ret();
    return b.finish();
  });
}

// ---------------------------------------------------------------------------
// SOR (jagged grid, like the Java source).

std::int32_t build_sm_sor(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  const SmRandom rnd = build_sm_random(v);
  return cached(v, "sm.sor.run", [&] {
    ILBuilder b(mod, "sm.sor.run",
                {{ValType::I32, ValType::I32}, ValType::F64});
    const auto n = b.add_local(ValType::I32);
    const auto iters = b.add_local(ValType::I32);
    const auto st = b.add_local(ValType::Ref);
    const auto G = b.add_local(ValType::Ref);
    const auto gi = b.add_local(ValType::Ref);
    const auto gim1 = b.add_local(ValType::Ref);
    const auto gip1 = b.add_local(ValType::Ref);
    const auto p = b.add_local(ValType::I32);
    const auto i = b.add_local(ValType::I32);
    const auto j = b.add_local(ValType::I32);
    const auto nm1 = b.add_local(ValType::I32);
    const auto o4 = b.add_local(ValType::F64);   // omega/4
    const auto omo = b.add_local(ValType::F64);  // 1 - omega

    b.ldarg(0).stloc(n);
    b.ldarg(1).stloc(iters);
    b.ldc_i4(101010).call(rnd.new_fn).stloc(st);
    b.ldloc(n).newarr(ValType::Ref).stloc(G);
    counted_loop(b, i, n, [&] {
      b.ldloc(G).ldloc(i).ldloc(n).newarr(ValType::F64).stelem(ValType::Ref);
      b.ldloc(G).ldloc(i).ldelem(ValType::Ref).call_intr(vm::I_GC_PRETOUCH);
      b.ldloc(st).ldloc(G).ldloc(i).ldelem(ValType::Ref).call(rnd.fill_fn);
    });
    b.ldc_r8(1.25 * 0.25).stloc(o4);
    b.ldc_r8(1.0 - 1.25).stloc(omo);
    b.ldloc(n).ldc_i4(1).sub().stloc(nm1);
    counted_loop(b, p, iters, [&] {
      // for (i = 1; i < n-1; i++)
      auto itop = b.new_label();
      auto iend = b.new_label();
      b.ldc_i4(1).stloc(i);
      b.bind(itop);
      b.ldloc(i).ldloc(nm1).bge(iend);
      b.ldloc(G).ldloc(i).ldelem(ValType::Ref).stloc(gi);
      b.ldloc(G).ldloc(i).ldc_i4(1).sub().ldelem(ValType::Ref).stloc(gim1);
      b.ldloc(G).ldloc(i).ldc_i4(1).add().ldelem(ValType::Ref).stloc(gip1);
      auto jtop = b.new_label();
      auto jend = b.new_label();
      b.ldc_i4(1).stloc(j);
      b.bind(jtop);
      b.ldloc(j).ldloc(nm1).bge(jend);
      // Gi[j] = o4*(Gim1[j] + Gip1[j] + Gi[j-1] + Gi[j+1]) + omo*Gi[j]
      b.ldloc(gi).ldloc(j);
      b.ldloc(o4);
      b.ldloc(gim1).ldloc(j).ldelem(ValType::F64);
      b.ldloc(gip1).ldloc(j).ldelem(ValType::F64).add();
      b.ldloc(gi).ldloc(j).ldc_i4(1).sub().ldelem(ValType::F64).add();
      b.ldloc(gi).ldloc(j).ldc_i4(1).add().ldelem(ValType::F64).add();
      b.mul();
      b.ldloc(omo).ldloc(gi).ldloc(j).ldelem(ValType::F64).mul().add();
      b.stelem(ValType::F64);
      b.ldloc(j).ldc_i4(1).add().stloc(j);
      b.br(jtop);
      b.bind(jend);
      b.ldloc(i).ldc_i4(1).add().stloc(i);
      b.br(itop);
      b.bind(iend);
    });
    b.ldloc(G).ldc_i4(1).ldelem(ValType::Ref).ldc_i4(1).ldelem(ValType::F64)
        .ret();
    return b.finish();
  });
}

// ---------------------------------------------------------------------------
// Monte Carlo.

std::int32_t build_sm_montecarlo(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  const SmRandom rnd = build_sm_random(v);
  return cached(v, "sm.montecarlo.run", [&] {
    ILBuilder b(mod, "sm.montecarlo.run", {{ValType::I32}, ValType::F64});
    const auto st = b.add_local(ValType::Ref);
    const auto count = b.add_local(ValType::I32);
    const auto under = b.add_local(ValType::I32);
    const auto samples = b.add_local(ValType::I32);
    const auto x = b.add_local(ValType::F64);
    const auto y = b.add_local(ValType::F64);
    b.ldarg(0).stloc(samples);
    b.ldc_i4(113).call(rnd.new_fn).stloc(st);
    b.ldc_i4(0).stloc(under);
    counted_loop(b, count, samples, [&] {
      b.ldloc(st).call(rnd.next_fn).stloc(x);
      b.ldloc(st).call(rnd.next_fn).stloc(y);
      auto outside = b.new_label();
      b.ldloc(x).ldloc(x).mul().ldloc(y).ldloc(y).mul().add()
          .ldc_r8(1.0).bgt(outside);
      b.ldloc(under).ldc_i4(1).add().stloc(under);
      b.bind(outside);
    });
    b.ldloc(under).conv_r8().ldloc(samples).conv_r8().div()
        .ldc_r8(4.0).mul().ret();
    return b.finish();
  });
}

// ---------------------------------------------------------------------------
// Sparse matmul (CRS).

std::int32_t build_sm_sparse(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  const SmRandom rnd = build_sm_random(v);
  return cached(v, "sm.sparse.run", [&] {
    ILBuilder b(mod, "sm.sparse.run",
                {{ValType::I32, ValType::I32, ValType::I32}, ValType::F64});
    const auto n = b.add_local(ValType::I32);
    const auto iters = b.add_local(ValType::I32);
    const auto st = b.add_local(ValType::Ref);
    const auto x = b.add_local(ValType::Ref);
    const auto y = b.add_local(ValType::Ref);
    const auto val = b.add_local(ValType::Ref);
    const auto col = b.add_local(ValType::Ref);
    const auto row = b.add_local(ValType::Ref);
    const auto nr = b.add_local(ValType::I32);
    const auto anz = b.add_local(ValType::I32);
    const auto r = b.add_local(ValType::I32);
    const auto i = b.add_local(ValType::I32);
    const auto reps = b.add_local(ValType::I32);
    const auto rowr = b.add_local(ValType::I32);
    const auto rowrp1 = b.add_local(ValType::I32);
    const auto step = b.add_local(ValType::I32);
    const auto sum = b.add_local(ValType::F64);
    const auto total = b.add_local(ValType::F64);

    b.ldarg(0).stloc(n);
    b.ldarg(2).stloc(iters);
    b.ldc_i4(101010).call(rnd.new_fn).stloc(st);
    b.ldloc(n).newarr(ValType::F64).stloc(x);
    b.ldloc(x).call_intr(vm::I_GC_PRETOUCH);
    b.ldloc(st).ldloc(x).call(rnd.fill_fn);
    b.ldloc(n).newarr(ValType::F64).stloc(y);
    b.ldloc(y).call_intr(vm::I_GC_PRETOUCH);
    b.ldarg(1).ldloc(n).div().stloc(nr);
    b.ldloc(nr).ldloc(n).mul().stloc(anz);
    b.ldloc(anz).newarr(ValType::F64).stloc(val);
    b.ldloc(val).call_intr(vm::I_GC_PRETOUCH);
    b.ldloc(st).ldloc(val).call(rnd.fill_fn);
    b.ldloc(anz).newarr(ValType::I32).stloc(col);
    b.ldloc(col).call_intr(vm::I_GC_PRETOUCH);
    b.ldloc(n).ldc_i4(1).add().newarr(ValType::I32).stloc(row);
    b.ldloc(row).ldc_i4(0).ldc_i4(0).stelem(ValType::I32);
    counted_loop(b, r, n, [&] {
      b.ldloc(row).ldloc(r).ldelem(ValType::I32).stloc(rowr);
      b.ldloc(row).ldloc(r).ldc_i4(1).add()
          .ldloc(rowr).ldloc(nr).add().stelem(ValType::I32);
      b.ldloc(r).ldloc(nr).div().stloc(step);
      auto step_ok = b.new_label();
      b.ldloc(step).ldc_i4(1).bge(step_ok);
      b.ldc_i4(1).stloc(step);
      b.bind(step_ok);
      counted_loop(b, i, nr, [&] {
        b.ldloc(col).ldloc(rowr).ldloc(i).add()
            .ldloc(i).ldloc(step).mul().stelem(ValType::I32);
      });
    });
    counted_loop(b, reps, iters, [&] {
      counted_loop(b, r, n, [&] {
        b.ldc_r8(0.0).stloc(sum);
        b.ldloc(row).ldloc(r).ldelem(ValType::I32).stloc(i);
        b.ldloc(row).ldloc(r).ldc_i4(1).add().ldelem(ValType::I32)
            .stloc(rowrp1);
        auto ktop = b.new_label();
        auto kend = b.new_label();
        b.bind(ktop);
        b.ldloc(i).ldloc(rowrp1).bge(kend);
        b.ldloc(sum)
            .ldloc(x).ldloc(col).ldloc(i).ldelem(ValType::I32)
            .ldelem(ValType::F64)
            .ldloc(val).ldloc(i).ldelem(ValType::F64).mul().add().stloc(sum);
        b.ldloc(i).ldc_i4(1).add().stloc(i);
        b.br(ktop);
        b.bind(kend);
        b.ldloc(y).ldloc(r).ldloc(sum).stelem(ValType::F64);
      });
    });
    b.ldc_r8(0.0).stloc(total);
    ldlen_loop(b, i, y, [&] {
      b.ldloc(total).ldloc(y).ldloc(i).ldelem(ValType::F64).add().stloc(total);
    });
    b.ldloc(total).ret();
    return b.finish();
  });
}

// ---------------------------------------------------------------------------
// LU (jagged rows; pivoting swaps row references like the Java source).

std::int32_t build_sm_lu(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  const SmRandom rnd = build_sm_random(v);
  return cached(v, "sm.lu.run", [&] {
    ILBuilder b(mod, "sm.lu.run", {{ValType::I32}, ValType::F64});
    const auto n = b.add_local(ValType::I32);
    const auto st = b.add_local(ValType::Ref);
    const auto A = b.add_local(ValType::Ref);
    const auto pivot = b.add_local(ValType::Ref);
    const auto i = b.add_local(ValType::I32);
    const auto j = b.add_local(ValType::I32);
    const auto jp = b.add_local(ValType::I32);
    const auto k = b.add_local(ValType::I32);
    const auto ii = b.add_local(ValType::I32);
    const auto jj = b.add_local(ValType::I32);
    const auto t = b.add_local(ValType::F64);
    const auto ab = b.add_local(ValType::F64);
    const auto recp = b.add_local(ValType::F64);
    const auto aii = b.add_local(ValType::Ref);
    const auto aj = b.add_local(ValType::Ref);
    const auto aii_j = b.add_local(ValType::F64);
    const auto tmprow = b.add_local(ValType::Ref);

    b.ldarg(0).stloc(n);
    b.ldc_i4(101010).call(rnd.new_fn).stloc(st);
    b.ldloc(n).newarr(ValType::Ref).stloc(A);
    counted_loop(b, i, n, [&] {
      b.ldloc(A).ldloc(i).ldloc(n).newarr(ValType::F64).stelem(ValType::Ref);
      b.ldloc(A).ldloc(i).ldelem(ValType::Ref).call_intr(vm::I_GC_PRETOUCH);
      b.ldloc(st).ldloc(A).ldloc(i).ldelem(ValType::Ref).call(rnd.fill_fn);
    });
    b.ldloc(n).newarr(ValType::I32).stloc(pivot);

    counted_loop(b, j, n, [&] {
      b.ldloc(j).stloc(jp);
      b.ldloc(A).ldloc(j).ldelem(ValType::Ref).ldloc(j).ldelem(ValType::F64)
          .call_intr(vm::I_ABS_R8).stloc(t);
      // pivot search: for (i = j+1; i < n; i++)
      auto ptop = b.new_label();
      auto pend = b.new_label();
      b.ldloc(j).ldc_i4(1).add().stloc(i);
      b.bind(ptop);
      b.ldloc(i).ldloc(n).bge(pend);
      b.ldloc(A).ldloc(i).ldelem(ValType::Ref).ldloc(j).ldelem(ValType::F64)
          .call_intr(vm::I_ABS_R8).stloc(ab);
      auto no_better = b.new_label();
      b.ldloc(ab).ldloc(t).ble(no_better);
      b.ldloc(i).stloc(jp);
      b.ldloc(ab).stloc(t);
      b.bind(no_better);
      b.ldloc(i).ldc_i4(1).add().stloc(i);
      b.br(ptop);
      b.bind(pend);
      b.ldloc(pivot).ldloc(j).ldloc(jp).stelem(ValType::I32);
      // Row swap by reference, like the Java source.
      auto no_swap = b.new_label();
      b.ldloc(jp).ldloc(j).beq(no_swap);
      b.ldloc(A).ldloc(j).ldelem(ValType::Ref).stloc(tmprow);
      b.ldloc(A).ldloc(j)
          .ldloc(A).ldloc(jp).ldelem(ValType::Ref).stelem(ValType::Ref);
      b.ldloc(A).ldloc(jp).ldloc(tmprow).stelem(ValType::Ref);
      b.bind(no_swap);
      // Scale the column below the pivot.
      auto no_scale = b.new_label();
      b.ldloc(j).ldloc(n).ldc_i4(1).sub().bge(no_scale);
      b.ldc_r8(1.0)
          .ldloc(A).ldloc(j).ldelem(ValType::Ref).ldloc(j).ldelem(ValType::F64)
          .div().stloc(recp);
      auto stop = b.new_label();
      auto send = b.new_label();
      b.ldloc(j).ldc_i4(1).add().stloc(k);
      b.bind(stop);
      b.ldloc(k).ldloc(n).bge(send);
      b.ldloc(A).ldloc(k).ldelem(ValType::Ref).stloc(aii);
      b.ldloc(aii).ldloc(j)
          .ldloc(aii).ldloc(j).ldelem(ValType::F64).ldloc(recp).mul()
          .stelem(ValType::F64);
      b.ldloc(k).ldc_i4(1).add().stloc(k);
      b.br(stop);
      b.bind(send);
      // Rank-1 update of the trailing submatrix.
      auto utop = b.new_label();
      auto uend = b.new_label();
      b.ldloc(j).ldc_i4(1).add().stloc(ii);
      b.bind(utop);
      b.ldloc(ii).ldloc(n).bge(uend);
      b.ldloc(A).ldloc(ii).ldelem(ValType::Ref).stloc(aii);
      b.ldloc(A).ldloc(j).ldelem(ValType::Ref).stloc(aj);
      b.ldloc(aii).ldloc(j).ldelem(ValType::F64).stloc(aii_j);
      auto vtop = b.new_label();
      auto vend = b.new_label();
      b.ldloc(j).ldc_i4(1).add().stloc(jj);
      b.bind(vtop);
      b.ldloc(jj).ldloc(n).bge(vend);
      b.ldloc(aii).ldloc(jj)
          .ldloc(aii).ldloc(jj).ldelem(ValType::F64)
          .ldloc(aii_j).ldloc(aj).ldloc(jj).ldelem(ValType::F64).mul().sub()
          .stelem(ValType::F64);
      b.ldloc(jj).ldc_i4(1).add().stloc(jj);
      b.br(vtop);
      b.bind(vend);
      b.ldloc(ii).ldc_i4(1).add().stloc(ii);
      b.br(utop);
      b.bind(uend);
      b.bind(no_scale);
    });
    b.ldloc(A).ldc_i4(0).ldelem(ValType::Ref).ldc_i4(0).ldelem(ValType::F64)
        .ret();
    return b.finish();
  });
}

// ---------------------------------------------------------------------------
// Bounds-check-elimination experiment (§5): identical daxpy loops, one
// bounded by ldlen (BCE-eligible on profiles with the pass) and one by a
// separate local variable.

namespace {

std::int32_t build_bce_daxpy(vm::VirtualMachine& v, const std::string& name,
                             bool ldlen_bound) {
  const SmRandom rnd = build_sm_random(v);
  return cached(v, name, [&] {
    ILBuilder b(v.module(), name,
                {{ValType::I32, ValType::I32}, ValType::F64});
    const auto n = b.add_local(ValType::I32);
    const auto reps = b.add_local(ValType::I32);
    const auto st = b.add_local(ValType::Ref);
    const auto x = b.add_local(ValType::Ref);
    const auto y = b.add_local(ValType::Ref);
    const auto rep = b.add_local(ValType::I32);
    const auto i = b.add_local(ValType::I32);
    const auto total = b.add_local(ValType::F64);

    b.ldarg(0).stloc(n);
    b.ldarg(1).stloc(reps);
    b.ldc_i4(101010).call(rnd.new_fn).stloc(st);
    b.ldloc(n).newarr(ValType::F64).stloc(x);
    b.ldloc(x).call_intr(vm::I_GC_PRETOUCH);
    b.ldloc(st).ldloc(x).call(rnd.fill_fn);
    b.ldloc(n).newarr(ValType::F64).stloc(y);
    b.ldloc(y).call_intr(vm::I_GC_PRETOUCH);
    counted_loop(b, rep, reps, [&] {
      auto body = [&] {
        b.ldloc(y).ldloc(i)
            .ldloc(y).ldloc(i).ldelem(ValType::F64)
            .ldc_r8(1.0000001).ldloc(x).ldloc(i).ldelem(ValType::F64).mul()
            .add().stelem(ValType::F64);
      };
      if (ldlen_bound) {
        ldlen_loop(b, i, y, body);
      } else {
        counted_loop(b, i, n, body);
      }
    });
    b.ldloc(y).ldc_i4(1).ldelem(ValType::F64).stloc(total);
    b.ldloc(total).ret();
    return b.finish();
  });
}

}  // namespace

std::int32_t build_bce_daxpy_ldlen(vm::VirtualMachine& v) {
  return build_bce_daxpy(v, "bce.daxpy.ldlen", true);
}
std::int32_t build_bce_daxpy_var(vm::VirtualMachine& v) {
  return build_bce_daxpy(v, "bce.daxpy.var", false);
}

}  // namespace hpcnet::cil

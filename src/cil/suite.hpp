// The benchmark suite runner: builds all CIL programs into one VM, creates
// an engine per paper profile, times kernels and validates every CIL result
// against its native twin. The bench binaries and the example CLIs produce
// the paper's tables/graphs through this interface.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "vm/execution.hpp"

namespace hpcnet::cil {

/// SciMark problem sizes. The paper's "small" (cache-resident) and "large"
/// (memory-resident) models, scaled so the slowest engine (rotor10) finishes
/// in seconds rather than hours; the small/large *ratio* of working-set size
/// is preserved (see EXPERIMENTS.md).
struct ScimarkSizes {
  int fft_n = 1024;
  int fft_cycles = 2;
  int sor_n = 100;
  int sor_iters = 10;
  int mc_samples = 100000;
  int sparse_n = 1000;
  int sparse_nz = 5000;
  int sparse_iters = 10;
  int lu_n = 100;

  static ScimarkSizes small_model();
  static ScimarkSizes large_model();
  /// Tiny sizes for unit tests.
  static ScimarkSizes test_model();
};

struct KernelScore {
  std::string name;
  double mflops = 0;
  double seconds = 0;
  double checksum = 0;
  bool validated = false;
};

struct ScimarkResult {
  std::vector<KernelScore> kernels;  // FFT, SOR, MonteCarlo, Sparse, LU
  double composite = 0;              // arithmetic mean, like SciMark
};

/// Runs the five CIL kernels on `engine` (building them into vm's module on
/// first use). When `validate`, each checksum is compared with the native
/// kernel (throws std::runtime_error on mismatch beyond 1e-9 relative).
/// `only` restricts the run to one kernel ("FFT", "SOR", "MonteCarlo",
/// "Sparse", "LU"); empty runs all five. Each kernel run is also recorded as
/// a telemetry "kernel" span so traces attribute JIT vs steady-state time.
ScimarkResult run_scimark_cil(vm::VirtualMachine& vm, vm::Engine& engine,
                              const ScimarkSizes& sizes, bool validate = true,
                              const std::string& only = {});

/// Native C++ baseline with identical sizes and flop accounting.
ScimarkResult run_scimark_native(const ScimarkSizes& sizes);

/// A VM pre-loaded with every benchmark program plus one engine per paper
/// profile — the shared fixture for bench binaries and examples.
class BenchContext {
 public:
  BenchContext();

  vm::VirtualMachine& vm() { return vm_; }
  /// Engines in the paper's order (ibm131, clr11, bea81, jsharp11, sun14,
  /// mono023, rotor10).
  const std::vector<std::unique_ptr<vm::Engine>>& engines() { return engines_; }
  vm::Engine& engine(const std::string& profile_name);

  /// Invokes `method` with int args on the engine; returns the raw result.
  vm::Slot invoke(vm::Engine& e, std::int32_t method,
                  std::vector<vm::Slot> args);

  /// Times `method(size)` and returns ops/sec where ops = size *
  /// ops_per_iteration. Self-calibrates size until >= min_seconds.
  double ops_per_sec(vm::Engine& e, std::int32_t method,
                     double ops_per_iteration, double min_seconds = 0.1);

 private:
  vm::VirtualMachine vm_;
  std::vector<std::unique_ptr<vm::Engine>> engines_;
};

}  // namespace hpcnet::cil

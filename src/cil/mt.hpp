// Multithreaded benchmark programs (paper Table 2 and the Thread/Lock rows
// of Table 3), authored as CIL against the managed threading surface
// (Thread.Start/Join, Monitor.Enter/Exit/Wait/PulseAll).
#pragma once

#include <cstdint>

#include "vm/execution.hpp"

namespace hpcnet::cil {

/// ForkJoin: (i32 nthreads) -> i32. Starts and joins nthreads no-op
/// threads; returns the number of threads that ran (via a shared counter).
std::int32_t build_mt_forkjoin(vm::VirtualMachine& v);

/// Sync: (i32 nthreads, i32 iters) -> i32. Each thread increments a shared
/// counter under a contended monitor `iters` times; returns the counter
/// (must equal nthreads * iters).
std::int32_t build_mt_sync(vm::VirtualMachine& v);

/// Simple barrier: (i32 nthreads, i32 iters) -> i32. Sense-reversing
/// counter barrier over a monitor; every thread passes `iters` barriers.
/// Returns the number of completed barrier rounds (== iters).
std::int32_t build_mt_barrier_simple(vm::VirtualMachine& v);

/// Tournament barrier: same signature/semantics as the simple barrier but
/// built from a tree of per-node flags (the JGF 4-ary tournament design,
/// realized as a binary tournament over arrays).
std::int32_t build_mt_barrier_tournament(vm::VirtualMachine& v);

}  // namespace hpcnet::cil

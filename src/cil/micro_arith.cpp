// Arithmetic micro-benchmarks (JGF section 1 "Arith"): four variables
// updated cyclically per iteration for add/mul; division repeatedly divides
// by a small constant exactly as in the paper's Table 5 study.
#include "cil/common.hpp"
#include "cil/micro.hpp"

namespace hpcnet::cil {

namespace {

/// Cyclic add/mul over four variables of type T.
/// add: i1+=i2; i2+=i3; i3+=i4; i4+=i1;  (values stay bounded by wrap)
/// mul: i1*=i2; ... with multipliers near 1.0 for floats.
template <typename EmitConst>
std::int32_t build_cyclic(vm::VirtualMachine& v, const std::string& name,
                          ValType t, bool mul, EmitConst init) {
  return cached(v, name, [&] {
    ILBuilder b(v.module(), name, {{ValType::I32}, t});
    const auto size = 0;  // arg 0
    const auto i = b.add_local(ValType::I32);
    std::int32_t x[4];
    for (auto& xi : x) xi = b.add_local(t);
    for (int k = 0; k < 4; ++k) {
      init(b, k);
      b.stloc(x[k]);
    }
    const auto bound = b.add_local(ValType::I32);
    b.ldarg(size).stloc(bound);
    counted_loop(b, i, bound, [&] {
      for (int k = 0; k < 4; ++k) {
        const int next = (k + 1) % 4;
        b.ldloc(x[k]).ldloc(x[next]);
        if (mul) {
          b.mul();
        } else {
          b.add();
        }
        b.stloc(x[k]);
      }
    });
    b.ldloc(x[3]).ret();
    return b.finish();
  });
}

/// Division: x = x / C repeated 4x per iteration, reseeding when the value
/// bottoms out (matching the JGF loop which restarts from MaxValue).
std::int32_t build_div(vm::VirtualMachine& v, const std::string& name,
                       ValType t) {
  return cached(v, name, [&] {
    ILBuilder b(v.module(), name, {{ValType::I32}, t});
    const auto i = b.add_local(ValType::I32);
    const auto x = b.add_local(t);
    const auto bound = b.add_local(ValType::I32);
    b.ldarg(0).stloc(bound);
    switch (t) {
      case ValType::I32: b.ldc_i4(2147483647); break;
      case ValType::I64: b.ldc_i8(9223372036854775807LL); break;
      case ValType::F32: b.ldc_r4(3.4e38f); break;
      default: b.ldc_r8(1.7e308); break;
    }
    b.stloc(x);
    counted_loop(b, i, bound, [&] {
      for (int k = 0; k < 4; ++k) {
        b.ldloc(x);
        switch (t) {
          case ValType::I32: b.ldc_i4(3); break;
          case ValType::I64: b.ldc_i8(3); break;
          case ValType::F32: b.ldc_r4(1.0000001f); break;
          default: b.ldc_r8(1.000000000001); break;
        }
        b.div().stloc(x);
      }
      if (t == ValType::I32 || t == ValType::I64) {
        // Reseed when exhausted so the divide never degenerates to 0/3.
        auto ok = b.new_label();
        b.ldloc(x);
        if (t == ValType::I32) {
          b.ldc_i4(3).bge(ok);
          b.ldc_i4(2147483647).stloc(x);
        } else {
          b.ldc_i8(3).bge(ok);
          b.ldc_i8(9223372036854775807LL).stloc(x);
        }
        b.bind(ok);
      }
    });
    b.ldloc(x).ret();
    return b.finish();
  });
}

void const_i32(ILBuilder& b, int k) { b.ldc_i4(k + 1); }
void const_i64(ILBuilder& b, int k) { b.ldc_i8(k + 1); }
void const_f32_add(ILBuilder& b, int k) { b.ldc_r4(0.5f + 0.25f * k); }
void const_f64_add(ILBuilder& b, int k) { b.ldc_r8(0.5 + 0.25 * k); }
void const_f32_mul(ILBuilder& b, int k) {
  b.ldc_r4(k % 2 == 0 ? 1.0000002f : 0.9999998f);
}
void const_f64_mul(ILBuilder& b, int k) {
  b.ldc_r8(k % 2 == 0 ? 1.0000000002 : 0.9999999998);
}

}  // namespace

std::int32_t build_arith_add_i32(vm::VirtualMachine& v) {
  return build_cyclic(v, "micro.arith.add.i32", ValType::I32, false, const_i32);
}
std::int32_t build_arith_mul_i32(vm::VirtualMachine& v) {
  return build_cyclic(v, "micro.arith.mul.i32", ValType::I32, true, const_i32);
}
std::int32_t build_arith_div_i32(vm::VirtualMachine& v) {
  return build_div(v, "micro.arith.div.i32", ValType::I32);
}
std::int32_t build_arith_add_i64(vm::VirtualMachine& v) {
  return build_cyclic(v, "micro.arith.add.i64", ValType::I64, false, const_i64);
}
std::int32_t build_arith_mul_i64(vm::VirtualMachine& v) {
  return build_cyclic(v, "micro.arith.mul.i64", ValType::I64, true, const_i64);
}
std::int32_t build_arith_div_i64(vm::VirtualMachine& v) {
  return build_div(v, "micro.arith.div.i64", ValType::I64);
}
std::int32_t build_arith_add_f32(vm::VirtualMachine& v) {
  return build_cyclic(v, "micro.arith.add.f32", ValType::F32, false,
                      const_f32_add);
}
std::int32_t build_arith_mul_f32(vm::VirtualMachine& v) {
  return build_cyclic(v, "micro.arith.mul.f32", ValType::F32, true,
                      const_f32_mul);
}
std::int32_t build_arith_div_f32(vm::VirtualMachine& v) {
  return build_div(v, "micro.arith.div.f32", ValType::F32);
}
std::int32_t build_arith_add_f64(vm::VirtualMachine& v) {
  return build_cyclic(v, "micro.arith.add.f64", ValType::F64, false,
                      const_f64_add);
}
std::int32_t build_arith_mul_f64(vm::VirtualMachine& v) {
  return build_cyclic(v, "micro.arith.mul.f64", ValType::F64, true,
                      const_f64_mul);
}
std::int32_t build_arith_div_f64(vm::VirtualMachine& v) {
  return build_div(v, "micro.arith.div.f64", ValType::F64);
}

}  // namespace hpcnet::cil

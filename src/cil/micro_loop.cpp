// Loop-overhead micro-benchmarks (Graph 4): for, reverse-for and while loops
// whose body only keeps the induction variable live, measuring pure loop
// machinery as the JGF Loop benchmark does.
#include "cil/common.hpp"
#include "cil/micro.hpp"

namespace hpcnet::cil {

std::int32_t build_loop_for(vm::VirtualMachine& v) {
  return cached(v, "micro.loop.for", [&] {
    ILBuilder b(v.module(), "micro.loop.for", {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    auto cond = b.new_label();
    auto top = b.new_label();
    b.ldc_i4(0).stloc(i).br(cond);
    b.bind(top);
    b.ldloc(i).ldc_i4(1).add().stloc(i);
    b.bind(cond);
    b.ldloc(i).ldarg(0).blt(top);
    b.ldloc(i).ret();
    return b.finish();
  });
}

std::int32_t build_loop_reverse_for(vm::VirtualMachine& v) {
  return cached(v, "micro.loop.reversefor", [&] {
    ILBuilder b(v.module(), "micro.loop.reversefor",
                {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    auto cond = b.new_label();
    auto top = b.new_label();
    b.ldarg(0).stloc(i).br(cond);
    b.bind(top);
    b.ldloc(i).ldc_i4(1).sub().stloc(i);
    b.bind(cond);
    b.ldloc(i).ldc_i4(0).bgt(top);
    b.ldloc(i).ret();
    return b.finish();
  });
}

std::int32_t build_loop_while(vm::VirtualMachine& v) {
  return cached(v, "micro.loop.while", [&] {
    ILBuilder b(v.module(), "micro.loop.while", {{ValType::I32}, ValType::I32});
    const auto i = b.add_local(ValType::I32);
    auto top = b.new_label();
    auto done = b.new_label();
    b.ldc_i4(0).stloc(i);
    b.bind(top);
    b.ldloc(i).ldarg(0).bge(done);
    b.ldloc(i).ldc_i4(1).add().stloc(i);
    b.br(top);
    b.bind(done);
    b.ldloc(i).ret();
    return b.finish();
  });
}

}  // namespace hpcnet::cil

// Matrix-style micro-benchmark (Table 3 / Graph 12): element-wise copy
// assignments A[i,j] = B[i,j] over an n x n matrix, comparing true rank-2
// rectangular arrays against jagged (array-of-arrays) layout, for both value
// (f64) and object (ref) element types.
#include "cil/common.hpp"
#include "cil/micro.hpp"

namespace hpcnet::cil {

namespace {

/// (i32 reps, i32 n) -> f64: performs reps full n*n copies, then returns
/// A[1,1] (value type) or the element count reachable (ref type -> count).
std::int32_t build_multidim(vm::VirtualMachine& v, const std::string& name,
                            ValType elem) {
  return cached(v, name, [&] {
    ILBuilder b(v.module(), name,
                {{ValType::I32, ValType::I32}, ValType::I32});
    const auto rep = b.add_local(ValType::I32);
    const auto reps = b.add_local(ValType::I32);
    const auto n = b.add_local(ValType::I32);
    const auto i = b.add_local(ValType::I32);
    const auto j = b.add_local(ValType::I32);
    const auto A = b.add_local(ValType::Ref);
    const auto B = b.add_local(ValType::Ref);
    const auto boxv = b.add_local(ValType::Ref);

    b.ldarg(0).stloc(reps);
    b.ldarg(1).stloc(n);
    b.ldloc(n).ldloc(n).newmat(elem).stloc(A);
    b.ldloc(n).ldloc(n).newmat(elem).stloc(B);
    if (elem == ValType::Ref) {
      // Fill B with one shared object so ref copies are real pointer moves.
      b.ldc_i4(1).box(ValType::I32).stloc(boxv);
      counted_loop(b, i, n, [&] {
        counted_loop(b, j, n, [&] {
          b.ldloc(B).ldloc(i).ldloc(j).ldloc(boxv).stelem2(ValType::Ref);
        });
      });
    } else {
      counted_loop(b, i, n, [&] {
        counted_loop(b, j, n, [&] {
          b.ldloc(B).ldloc(i).ldloc(j);
          b.ldloc(i).ldloc(j).add().conv_r8();
          b.stelem2(ValType::F64);
        });
      });
    }
    counted_loop(b, rep, reps, [&] {
      counted_loop(b, i, n, [&] {
        counted_loop(b, j, n, [&] {
          b.ldloc(A).ldloc(i).ldloc(j);
          b.ldloc(B).ldloc(i).ldloc(j).ldelem2(elem);
          b.stelem2(elem);
        });
      });
    });
    if (elem == ValType::Ref) {
      b.ldloc(A).ldc_i4(1).ldc_i4(1).ldelem2(ValType::Ref)
          .unbox(ValType::I32).ret();
    } else {
      b.ldloc(A).ldc_i4(1).ldc_i4(1).ldelem2(ValType::F64).conv_i4().ret();
    }
    return b.finish();
  });
}

std::int32_t build_jagged(vm::VirtualMachine& v, const std::string& name,
                          ValType elem) {
  return cached(v, name, [&] {
    ILBuilder b(v.module(), name,
                {{ValType::I32, ValType::I32}, ValType::I32});
    const auto rep = b.add_local(ValType::I32);
    const auto reps = b.add_local(ValType::I32);
    const auto n = b.add_local(ValType::I32);
    const auto i = b.add_local(ValType::I32);
    const auto j = b.add_local(ValType::I32);
    const auto A = b.add_local(ValType::Ref);
    const auto B = b.add_local(ValType::Ref);
    const auto rowA = b.add_local(ValType::Ref);
    const auto rowB = b.add_local(ValType::Ref);
    const auto boxv = b.add_local(ValType::Ref);

    b.ldarg(0).stloc(reps);
    b.ldarg(1).stloc(n);
    // A = new elem[n][]; B likewise, with per-row arrays.
    b.ldloc(n).newarr(ValType::Ref).stloc(A);
    b.ldloc(n).newarr(ValType::Ref).stloc(B);
    counted_loop(b, i, n, [&] {
      b.ldloc(A).ldloc(i).ldloc(n).newarr(elem).stelem(ValType::Ref);
      b.ldloc(B).ldloc(i).ldloc(n).newarr(elem).stelem(ValType::Ref);
    });
    if (elem == ValType::Ref) {
      b.ldc_i4(1).box(ValType::I32).stloc(boxv);
      counted_loop(b, i, n, [&] {
        b.ldloc(B).ldloc(i).ldelem(ValType::Ref).stloc(rowB);
        counted_loop(b, j, n, [&] {
          b.ldloc(rowB).ldloc(j).ldloc(boxv).stelem(ValType::Ref);
        });
      });
    } else {
      counted_loop(b, i, n, [&] {
        b.ldloc(B).ldloc(i).ldelem(ValType::Ref).stloc(rowB);
        counted_loop(b, j, n, [&] {
          b.ldloc(rowB).ldloc(j);
          b.ldloc(i).ldloc(j).add().conv_r8();
          b.stelem(ValType::F64);
        });
      });
    }
    counted_loop(b, rep, reps, [&] {
      counted_loop(b, i, n, [&] {
        b.ldloc(A).ldloc(i).ldelem(ValType::Ref).stloc(rowA);
        b.ldloc(B).ldloc(i).ldelem(ValType::Ref).stloc(rowB);
        counted_loop(b, j, n, [&] {
          b.ldloc(rowA).ldloc(j);
          b.ldloc(rowB).ldloc(j).ldelem(elem);
          b.stelem(elem);
        });
      });
    });
    if (elem == ValType::Ref) {
      b.ldloc(A).ldc_i4(1).ldelem(ValType::Ref).ldc_i4(1).ldelem(ValType::Ref)
          .unbox(ValType::I32).ret();
    } else {
      b.ldloc(A).ldc_i4(1).ldelem(ValType::Ref).ldc_i4(1).ldelem(ValType::F64)
          .conv_i4().ret();
    }
    return b.finish();
  });
}

}  // namespace

std::int32_t build_matrix_multidim_f64(vm::VirtualMachine& v) {
  return build_multidim(v, "micro.matrix.multidim.f64", ValType::F64);
}
std::int32_t build_matrix_jagged_f64(vm::VirtualMachine& v) {
  return build_jagged(v, "micro.matrix.jagged.f64", ValType::F64);
}
std::int32_t build_matrix_multidim_ref(vm::VirtualMachine& v) {
  return build_multidim(v, "micro.matrix.multidim.ref", ValType::Ref);
}
std::int32_t build_matrix_jagged_ref(vm::VirtualMachine& v) {
  return build_jagged(v, "micro.matrix.jagged.ref", ValType::Ref);
}

}  // namespace hpcnet::cil

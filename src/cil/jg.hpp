// Java Grande section 2/3 kernels authored as CIL (paper Table 4). The
// heapsort input generator is an IL port of java.util.Random's 48-bit LCG so
// the sorted checksum matches the native kernel bit-for-bit.
#pragma once

#include <cstdint>

#include "vm/execution.hpp"

namespace hpcnet::cil {

/// jg.fib.run(i32 n) -> i64 — naive double recursion.
std::int32_t build_jg_fib(vm::VirtualMachine& v);

/// jg.sieve.run(i32 n) -> i32 — count of primes <= n.
std::int32_t build_jg_sieve(vm::VirtualMachine& v);

/// jg.hanoi.run(i32 n) -> i64 — move count, computed by real recursion.
std::int32_t build_jg_hanoi(vm::VirtualMachine& v);

/// jg.heapsort.run(i32 n) -> i64 — checksum of the sorted random array
/// (equals kernels::heapsort::run(n)).
std::int32_t build_jg_heapsort(vm::VirtualMachine& v);

/// jg.crypt.run(i32 n) -> i64 — IDEA encrypt+decrypt round trip over n
/// bytes; returns the encrypted-text checksum (equals
/// kernels::crypt::run(n)) or -1 if the round trip failed.
std::int32_t build_jg_crypt(vm::VirtualMachine& v);

}  // namespace hpcnet::cil

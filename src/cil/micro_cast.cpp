// Cast micro-benchmark (Table 1): round-trip conversions between primitive
// types, two casts per iteration.
#include "cil/common.hpp"
#include "cil/micro.hpp"

namespace hpcnet::cil {

namespace {

std::int32_t build_roundtrip(vm::VirtualMachine& v, const std::string& name,
                             ValType src,
                             const std::function<void(ILBuilder&)>& there,
                             const std::function<void(ILBuilder&)>& back) {
  return cached(v, name, [&] {
    ILBuilder b(v.module(), name, {{ValType::I32}, src});
    const auto i = b.add_local(ValType::I32);
    const auto bound = b.add_local(ValType::I32);
    const auto x = b.add_local(src);
    b.ldarg(0).stloc(bound);
    switch (src) {
      case ValType::I32: b.ldc_i4(123456); break;
      case ValType::I64: b.ldc_i8(1234567890123LL); break;
      case ValType::F32: b.ldc_r4(1234.5f); break;
      default: b.ldc_r8(123456.75); break;
    }
    b.stloc(x);
    counted_loop(b, i, bound, [&] {
      b.ldloc(x);
      there(b);
      back(b);
      b.stloc(x);
    });
    b.ldloc(x).ret();
    return b.finish();
  });
}

}  // namespace

std::int32_t build_cast_i32_i64(vm::VirtualMachine& v) {
  return build_roundtrip(
      v, "micro.cast.i32_i64", ValType::I32,
      [](ILBuilder& b) { b.conv_i8(); }, [](ILBuilder& b) { b.conv_i4(); });
}
std::int32_t build_cast_i32_f32(vm::VirtualMachine& v) {
  return build_roundtrip(
      v, "micro.cast.i32_f32", ValType::I32,
      [](ILBuilder& b) { b.conv_r4(); }, [](ILBuilder& b) { b.conv_i4(); });
}
std::int32_t build_cast_i32_f64(vm::VirtualMachine& v) {
  return build_roundtrip(
      v, "micro.cast.i32_f64", ValType::I32,
      [](ILBuilder& b) { b.conv_r8(); }, [](ILBuilder& b) { b.conv_i4(); });
}
std::int32_t build_cast_f32_f64(vm::VirtualMachine& v) {
  return build_roundtrip(
      v, "micro.cast.f32_f64", ValType::F32,
      [](ILBuilder& b) { b.conv_r8(); }, [](ILBuilder& b) { b.conv_r4(); });
}
std::int32_t build_cast_i64_f64(vm::VirtualMachine& v) {
  return build_roundtrip(
      v, "micro.cast.i64_f64", ValType::I64,
      [](ILBuilder& b) { b.conv_r8(); }, [](ILBuilder& b) { b.conv_i8(); });
}

}  // namespace hpcnet::cil

// CIL port of the JGF Crypt benchmark: full IDEA key expansion (including
// the extended-Euclid inverse) and the 8.5-round cipher, over byte streams
// held in i32 arrays. Validated bit-for-bit against kernels::crypt::run —
// both sides use the same java.util.Random data/key generation and the same
// corrected IDEA multiply (see src/kernels/crypt.cpp).
#include "cil/common.hpp"
#include "cil/jg.hpp"

namespace hpcnet::cil {

namespace {

/// i32 mul16(i32 a, i32 k): IDEA multiplication mod 2^16+1, 0 == 2^16.
std::int32_t build_mul16(vm::VirtualMachine& v) {
  return cached(v, "jg.crypt.mul16", [&] {
    ILBuilder b(v.module(), "jg.crypt.mul16",
                {{ValType::I32, ValType::I32}, ValType::I32});
    auto a_nonzero = b.new_label();
    auto k_nonzero = b.new_label();
    b.ldarg(0).ldc_i4(0).bne(a_nonzero);
    b.ldc_i4(0x10001).ldarg(1).sub().ldc_i4(0xFFFF).and_().ret();
    b.bind(a_nonzero);
    b.ldarg(1).ldc_i4(0).bne(k_nonzero);
    b.ldc_i4(0x10001).ldarg(0).sub().ldc_i4(0xFFFF).and_().ret();
    b.bind(k_nonzero);
    b.ldarg(0).conv_i8().ldarg(1).conv_i8().mul()
        .ldc_i8(0x10001).rem().conv_i4().ldc_i4(0xFFFF).and_().ret();
    return b.finish();
  });
}

/// i32 inv(i32 x): multiplicative inverse mod 0x10001 (JGF's algorithm).
std::int32_t build_inv(vm::VirtualMachine& v) {
  return cached(v, "jg.crypt.inv", [&] {
    ILBuilder b(v.module(), "jg.crypt.inv", {{ValType::I32}, ValType::I32});
    const auto x = b.add_local(ValType::I64);
    const auto y = b.add_local(ValType::I64);
    const auto t0 = b.add_local(ValType::I64);
    const auto t1 = b.add_local(ValType::I64);
    const auto q = b.add_local(ValType::I64);
    auto big = b.new_label();
    b.ldarg(0).ldc_i4(1).bgt(big);
    b.ldarg(0).ret();
    b.bind(big);
    b.ldarg(0).conv_i8().stloc(x);
    b.ldc_i8(0x10001).ldloc(x).div().stloc(t1);
    b.ldc_i8(0x10001).ldloc(x).rem().stloc(y);
    auto general = b.new_label();
    b.ldloc(y).ldc_i8(1).bne(general);
    b.ldc_i8(1).ldloc(t1).sub().ldc_i8(0xFFFF).and_().conv_i4().ret();
    b.bind(general);
    b.ldc_i8(1).stloc(t0);
    auto loop = b.new_label();
    b.bind(loop);
    // q = x / y; x = x % y; t0 += q * t1; if (x == 1) return t0;
    b.ldloc(x).ldloc(y).div().stloc(q);
    b.ldloc(x).ldloc(y).rem().stloc(x);
    b.ldloc(t0).ldloc(q).ldloc(t1).mul().add().stloc(t0);
    auto not_done1 = b.new_label();
    b.ldloc(x).ldc_i8(1).bne(not_done1);
    b.ldloc(t0).conv_i4().ret();
    b.bind(not_done1);
    // q = y / x; y = y % x; t1 += q * t0; loop while (y != 1).
    b.ldloc(y).ldloc(x).div().stloc(q);
    b.ldloc(y).ldloc(x).rem().stloc(y);
    b.ldloc(t1).ldloc(q).ldloc(t0).mul().add().stloc(t1);
    b.ldloc(y).ldc_i8(1).bne(loop);
    b.ldc_i8(1).ldloc(t1).sub().ldc_i8(0xFFFF).and_().conv_i4().ret();
    return b.finish();
  });
}

}  // namespace

std::int32_t build_jg_crypt(vm::VirtualMachine& v) {
  vm::Module& mod = v.module();
  // Reuse the jg.Rand LCG built by the heapsort port.
  build_jg_heapsort(v);
  const std::int32_t rand_new = mod.find_method("jg.rand.new");
  const std::int32_t rand_next32 = mod.find_method("jg.rand.next32");
  const std::int32_t mul16 = build_mul16(v);
  const std::int32_t inv = build_inv(v);

  // i32 nextInt255(ref rnd): java.util.Random.nextInt(255) incl. rejection.
  const std::int32_t next255 = cached(v, "jg.crypt.next255", [&] {
    ILBuilder b(mod, "jg.crypt.next255", {{ValType::Ref}, ValType::I32});
    const auto bits = b.add_local(ValType::I32);
    const auto val = b.add_local(ValType::I32);
    auto retry = b.new_label();
    b.bind(retry);
    // bits = next(31) == next32() >>> 1.
    b.ldarg(0).call(rand_next32).ldc_i4(1).shr_un().stloc(bits);
    b.ldloc(bits).ldc_i4(255).rem().stloc(val);
    b.ldloc(bits).ldloc(val).sub().ldc_i4(254).add().ldc_i4(0).blt(retry);
    b.ldloc(val).ret();
    return b.finish();
  });

  // ref makeKeys(i64 seed): returns i32[104]: [0..52) encrypt, [52..104) dec.
  const std::int32_t makekeys = cached(v, "jg.crypt.makekeys", [&] {
    ILBuilder b(mod, "jg.crypt.makekeys", {{ValType::I64}, ValType::Ref});
    const auto rnd = b.add_local(ValType::Ref);
    const auto Z = b.add_local(ValType::Ref);  // the 104-entry key block
    const auto i = b.add_local(ValType::I32);
    const auto j = b.add_local(ValType::I32);
    const auto k = b.add_local(ValType::I32);
    const auto t1 = b.add_local(ValType::I32);
    const auto t2 = b.add_local(ValType::I32);
    const auto t3 = b.add_local(ValType::I32);
    const auto eight = b.add_local(ValType::I32);

    auto ldZ = [&](const std::function<void()>& idx) {
      b.ldloc(Z);
      idx();
      b.ldelem(ValType::I32);
    };
    auto stZ = [&](const std::function<void()>& idx,
                   const std::function<void()>& val) {
      b.ldloc(Z);
      idx();
      val();
      b.stelem(ValType::I32);
    };

    b.ldarg(0).call(rand_new).stloc(rnd);
    b.ldc_i4(104).newarr(ValType::I32).stloc(Z);
    // userkey: 8 shorts from nextInt().
    b.ldc_i4(8).stloc(eight);
    counted_loop(b, i, eight, [&] {
      stZ([&] { b.ldloc(i); },
          [&] { b.ldloc(rnd).call(rand_next32).ldc_i4(0xFFFF).and_(); });
    });
    // Expansion for i in [8, 52).
    {
      auto top = b.new_label();
      auto end = b.new_label();
      b.ldc_i4(8).stloc(i);
      b.bind(top);
      b.ldloc(i).ldc_i4(52).bge(end);
      auto case6 = b.new_label();
      auto case7 = b.new_label();
      auto done = b.new_label();
      b.ldloc(i).ldc_i4(7).and_().ldc_i4(6).beq(case6);
      b.ldloc(i).ldc_i4(7).and_().ldc_i4(7).beq(case7);
      // default: (Z[i-7]&0x7F)<<9 | Z[i-6]>>7
      stZ([&] { b.ldloc(i); },
          [&] {
            ldZ([&] { b.ldloc(i).ldc_i4(7).sub(); });
            b.ldc_i4(0x7F).and_().ldc_i4(9).shl();
            ldZ([&] { b.ldloc(i).ldc_i4(6).sub(); });
            b.ldc_i4(7).shr().or_().ldc_i4(0xFFFF).and_();
          });
      b.br(done);
      b.bind(case6);
      stZ([&] { b.ldloc(i); },
          [&] {
            ldZ([&] { b.ldloc(i).ldc_i4(7).sub(); });
            b.ldc_i4(0x7F).and_().ldc_i4(9).shl();
            ldZ([&] { b.ldloc(i).ldc_i4(14).sub(); });
            b.ldc_i4(7).shr().or_().ldc_i4(0xFFFF).and_();
          });
      b.br(done);
      b.bind(case7);
      stZ([&] { b.ldloc(i); },
          [&] {
            ldZ([&] { b.ldloc(i).ldc_i4(15).sub(); });
            b.ldc_i4(0x7F).and_().ldc_i4(9).shl();
            ldZ([&] { b.ldloc(i).ldc_i4(14).sub(); });
            b.ldc_i4(7).shr().or_().ldc_i4(0xFFFF).and_();
          });
      b.bind(done);
      b.ldloc(i).ldc_i4(1).add().stloc(i);
      b.br(top);
      b.bind(end);
    }
    // Decryption schedule at offset 52 (JGF calcDecryptKey).
    auto DKst = [&](std::int32_t at_local_minus, const std::function<void()>& val) {
      // Z[52 + j--] = val: we keep j as the running index.
      (void)at_local_minus;
      b.ldloc(Z).ldc_i4(52).ldloc(j).add();
      val();
      b.stelem(ValType::I32);
      b.ldloc(j).ldc_i4(1).sub().stloc(j);
    };
    b.ldc_i4(51).stloc(j);
    // t1 = inv(Z[0]); t2 = -Z[1]&0xFFFF; t3 = -Z[2]&0xFFFF;
    ldZ([&] { b.ldc_i4(0); });
    b.call(inv).stloc(t1);
    ldZ([&] { b.ldc_i4(1); });
    b.neg().ldc_i4(0xFFFF).and_().stloc(t2);
    ldZ([&] { b.ldc_i4(2); });
    b.neg().ldc_i4(0xFFFF).and_().stloc(t3);
    DKst(51, [&] { ldZ([&] { b.ldc_i4(3); }); b.call(inv); });
    DKst(50, [&] { b.ldloc(t3); });
    DKst(49, [&] { b.ldloc(t2); });
    DKst(48, [&] { b.ldloc(t1); });
    // k = 4; 7 middle rounds then the final group with swapped t2/t3.
    b.ldc_i4(4).stloc(k);
    auto middle = [&](bool last) {
      // t1 = Z[k++]; DK[j--] = Z[k++]; DK[j--] = t1;
      ldZ([&] { b.ldloc(k); });
      b.stloc(t1);
      b.ldloc(k).ldc_i4(1).add().stloc(k);
      DKst(0, [&] { ldZ([&] { b.ldloc(k); }); });
      b.ldloc(k).ldc_i4(1).add().stloc(k);
      DKst(0, [&] { b.ldloc(t1); });
      // t1 = inv(Z[k++]); t2 = -Z[k++]&FFFF; t3 = -Z[k++]&FFFF;
      ldZ([&] { b.ldloc(k); });
      b.call(inv).stloc(t1);
      b.ldloc(k).ldc_i4(1).add().stloc(k);
      ldZ([&] { b.ldloc(k); });
      b.neg().ldc_i4(0xFFFF).and_().stloc(t2);
      b.ldloc(k).ldc_i4(1).add().stloc(k);
      ldZ([&] { b.ldloc(k); });
      b.neg().ldc_i4(0xFFFF).and_().stloc(t3);
      b.ldloc(k).ldc_i4(1).add().stloc(k);
      // DK[j--] = inv(Z[k++]); then t2/t3 (middle) or t3/t2 (last); then t1.
      DKst(0, [&] {
        ldZ([&] { b.ldloc(k); });
        b.call(inv);
      });
      b.ldloc(k).ldc_i4(1).add().stloc(k);
      if (!last) {
        DKst(0, [&] { b.ldloc(t2); });
        DKst(0, [&] { b.ldloc(t3); });
      } else {
        DKst(0, [&] { b.ldloc(t3); });
        DKst(0, [&] { b.ldloc(t2); });
      }
      DKst(0, [&] { b.ldloc(t1); });
    };
    for (int round = 0; round < 7; ++round) middle(false);
    middle(true);
    b.ldloc(Z).ret();
    return b.finish();
  });

  // void cipher(ref text_in, ref text_out, ref keys, i32 key_offset):
  // byte stream in i32 arrays (one byte per element).
  const std::int32_t cipher = cached(v, "jg.crypt.cipher", [&] {
    ILBuilder b(mod, "jg.crypt.cipher",
                {{ValType::Ref, ValType::Ref, ValType::Ref, ValType::I32},
                 ValType::None});
    const auto i1 = b.add_local(ValType::I32);
    const auto ik = b.add_local(ValType::I32);
    const auto r = b.add_local(ValType::I32);
    const auto x1 = b.add_local(ValType::I32);
    const auto x2 = b.add_local(ValType::I32);
    const auto x3 = b.add_local(ValType::I32);
    const auto x4 = b.add_local(ValType::I32);
    const auto t1 = b.add_local(ValType::I32);
    const auto t2 = b.add_local(ValType::I32);

    auto load16 = [&](std::int32_t dst) {
      // dst = in[i1++] | in[i1++] << 8
      b.ldarg(0).ldloc(i1).ldelem(ValType::I32);
      b.ldarg(0).ldloc(i1).ldc_i4(1).add().ldelem(ValType::I32)
          .ldc_i4(8).shl().or_().stloc(dst);
      b.ldloc(i1).ldc_i4(2).add().stloc(i1);
    };
    auto key = [&] {
      // push keys[key_offset + ik]; ik++
      b.ldarg(2).ldarg(3).ldloc(ik).add().ldelem(ValType::I32);
      b.ldloc(ik).ldc_i4(1).add().stloc(ik);
    };
    auto store16 = [&](std::int32_t src, int offset) {
      b.ldarg(1).ldloc(i1).ldc_i4(offset).add()
          .ldloc(src).ldc_i4(0xFF).and_().stelem(ValType::I32);
      b.ldarg(1).ldloc(i1).ldc_i4(offset + 1).add()
          .ldloc(src).ldc_i4(8).shr_un().ldc_i4(0xFF).and_()
          .stelem(ValType::I32);
    };

    auto blocks = b.new_label();
    auto end = b.new_label();
    b.ldc_i4(0).stloc(i1);
    b.bind(blocks);
    b.ldloc(i1).ldarg(0).ldlen().bge(end);
    b.ldc_i4(0).stloc(ik);
    load16(x1);
    load16(x2);
    load16(x3);
    load16(x4);
    b.ldc_i4(8).stloc(r);
    {
      auto round = b.new_label();
      b.bind(round);
      // x1 = mul16(x1, key); x2 = (x2+key)&FFFF; x3 = (x3+key)&FFFF;
      // x4 = mul16(x4, key);
      b.ldloc(x1);
      key();
      b.call(mul16).stloc(x1);
      b.ldloc(x2);
      key();
      b.add().ldc_i4(0xFFFF).and_().stloc(x2);
      b.ldloc(x3);
      key();
      b.add().ldc_i4(0xFFFF).and_().stloc(x3);
      b.ldloc(x4);
      key();
      b.call(mul16).stloc(x4);
      // t2 = mul16(x1^x3, key); t1 = mul16((t2 + (x2^x4)) & FFFF, key);
      // t2 = (t1 + t2) & FFFF;
      b.ldloc(x1).ldloc(x3).xor_();
      key();
      b.call(mul16).stloc(t2);
      b.ldloc(t2).ldloc(x2).ldloc(x4).xor_().add().ldc_i4(0xFFFF).and_();
      key();
      b.call(mul16).stloc(t1);
      b.ldloc(t1).ldloc(t2).add().ldc_i4(0xFFFF).and_().stloc(t2);
      // x1 ^= t1; x4 ^= t2; t2 ^= x2; x2 = x3 ^ t1; x3 = t2;
      b.ldloc(x1).ldloc(t1).xor_().stloc(x1);
      b.ldloc(x4).ldloc(t2).xor_().stloc(x4);
      b.ldloc(t2).ldloc(x2).xor_().stloc(t2);
      b.ldloc(x3).ldloc(t1).xor_().stloc(x2);
      b.ldloc(t2).stloc(x3);
      b.ldloc(r).ldc_i4(1).sub().stloc(r);
      b.ldloc(r).ldc_i4(0).bgt(round);
    }
    // Output transform: x1*K, x3+K, x2+K, x4*K, emitted x1 x3 x2 x4.
    b.ldloc(x1);
    key();
    b.call(mul16).stloc(x1);
    b.ldloc(x3);
    key();
    b.add().ldc_i4(0xFFFF).and_().stloc(x3);
    b.ldloc(x2);
    key();
    b.add().ldc_i4(0xFFFF).and_().stloc(x2);
    b.ldloc(x4);
    key();
    b.call(mul16).stloc(x4);
    b.ldloc(i1).ldc_i4(8).sub().stloc(i1);
    store16(x1, 0);
    store16(x3, 2);
    store16(x2, 4);
    store16(x4, 6);
    b.ldloc(i1).ldc_i4(8).add().stloc(i1);
    b.br(blocks);
    b.bind(end);
    b.ret();
    return b.finish();
  });

  // i64 run(i32 n): matches kernels::crypt::run(n) exactly.
  return cached(v, "jg.crypt.run", [&] {
    ILBuilder b(mod, "jg.crypt.run", {{ValType::I32}, ValType::I64});
    const auto n = b.add_local(ValType::I32);
    const auto rnd = b.add_local(ValType::Ref);
    const auto plain = b.add_local(ValType::Ref);
    const auto enc = b.add_local(ValType::Ref);
    const auto dec = b.add_local(ValType::Ref);
    const auto keys = b.add_local(ValType::Ref);
    const auto i = b.add_local(ValType::I32);
    const auto checksum = b.add_local(ValType::I64);

    b.ldarg(0).ldc_i4(8).div().ldc_i4(8).mul().stloc(n);
    b.ldc_i8(136506717).call(rand_new).stloc(rnd);
    b.ldloc(n).newarr(ValType::I32).stloc(plain);
    counted_loop(b, i, n, [&] {
      b.ldloc(plain).ldloc(i).ldloc(rnd).call(next255).stelem(ValType::I32);
    });
    b.ldc_i8(0x1234ABCDLL).call(makekeys).stloc(keys);
    b.ldloc(n).newarr(ValType::I32).stloc(enc);
    b.ldloc(n).newarr(ValType::I32).stloc(dec);
    b.ldloc(plain).ldloc(enc).ldloc(keys).ldc_i4(0).call(cipher);
    b.ldloc(enc).ldloc(dec).ldloc(keys).ldc_i4(52).call(cipher);
    // Verify the round trip; a failure returns -1 (tests reject it).
    counted_loop(b, i, n, [&] {
      auto ok = b.new_label();
      b.ldloc(dec).ldloc(i).ldelem(ValType::I32)
          .ldloc(plain).ldloc(i).ldelem(ValType::I32).beq(ok);
      b.ldc_i8(-1).ret();
      b.bind(ok);
    });
    // checksum over the encrypted bytes, matching the native loop.
    b.ldc_i8(0).stloc(checksum);
    counted_loop(b, i, n, [&] {
      b.ldloc(checksum).ldc_i4(1).shl()
          .ldloc(checksum).ldc_i4(7).shr().xor_()
          .ldloc(enc).ldloc(i).ldelem(ValType::I32).conv_i8().xor_()
          .stloc(checksum);
    });
    b.ldloc(checksum).ret();
    return b.finish();
  });
}

}  // namespace hpcnet::cil

// Shared CIL arithmetic semantics. Every engine must produce bit-identical
// results (the paper validates each kernel's output across runtimes), so the
// exact wrap/truncate/NaN rules live here, once.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace hpcnet::vm::arith {

// Two's-complement wrapping ops (well-defined via unsigned arithmetic).
inline std::int32_t add_i32(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                   static_cast<std::uint32_t>(b));
}
inline std::int32_t sub_i32(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) -
                                   static_cast<std::uint32_t>(b));
}
inline std::int32_t mul_i32(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) *
                                   static_cast<std::uint32_t>(b));
}
inline std::int64_t add_i64(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t sub_i64(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                   static_cast<std::uint64_t>(b));
}
inline std::int64_t mul_i64(std::int64_t a, std::int64_t b) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                   static_cast<std::uint64_t>(b));
}

/// Integer division outcome: CIL `div`/`rem` throw DivideByZeroException on a
/// zero divisor and ArithmeticException on MinValue / -1 overflow.
enum class DivStatus { Ok, DivideByZero, Overflow };

inline DivStatus div_i32(std::int32_t a, std::int32_t b, std::int32_t* out) {
  if (b == 0) return DivStatus::DivideByZero;
  if (a == std::numeric_limits<std::int32_t>::min() && b == -1) {
    return DivStatus::Overflow;
  }
  *out = a / b;
  return DivStatus::Ok;
}
inline DivStatus rem_i32(std::int32_t a, std::int32_t b, std::int32_t* out) {
  if (b == 0) return DivStatus::DivideByZero;
  if (a == std::numeric_limits<std::int32_t>::min() && b == -1) {
    *out = 0;  // CLI rem does not overflow; result is 0
    return DivStatus::Ok;
  }
  *out = a % b;
  return DivStatus::Ok;
}
inline DivStatus div_i64(std::int64_t a, std::int64_t b, std::int64_t* out) {
  if (b == 0) return DivStatus::DivideByZero;
  if (a == std::numeric_limits<std::int64_t>::min() && b == -1) {
    return DivStatus::Overflow;
  }
  *out = a / b;
  return DivStatus::Ok;
}
inline DivStatus rem_i64(std::int64_t a, std::int64_t b, std::int64_t* out) {
  if (b == 0) return DivStatus::DivideByZero;
  if (a == std::numeric_limits<std::int64_t>::min() && b == -1) {
    *out = 0;
    return DivStatus::Ok;
  }
  *out = a % b;
  return DivStatus::Ok;
}

// Shift counts are masked like the hardware (and the CLR) does.
inline std::int32_t shl_i32(std::int32_t a, std::int32_t n) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a)
                                   << (n & 31));
}
inline std::int32_t shr_i32(std::int32_t a, std::int32_t n) { return a >> (n & 31); }
inline std::int32_t shru_i32(std::int32_t a, std::int32_t n) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) >> (n & 31));
}
inline std::int64_t shl_i64(std::int64_t a, std::int32_t n) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a)
                                   << (n & 63));
}
inline std::int64_t shr_i64(std::int64_t a, std::int32_t n) { return a >> (n & 63); }
inline std::int64_t shru_i64(std::int64_t a, std::int32_t n) {
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) >> (n & 63));
}

/// Float-to-int truncation toward zero; out-of-range and NaN saturate to
/// MinValue (the x86 cvttsd2si "integer indefinite" value the CLR produces).
inline std::int32_t f_to_i32(double v) {
  if (std::isnan(v) || v >= 2147483648.0 || v < -2147483648.0) {
    return std::numeric_limits<std::int32_t>::min();
  }
  return static_cast<std::int32_t>(v);
}
inline std::int64_t f_to_i64(double v) {
  if (std::isnan(v) || v >= 9223372036854775808.0 ||
      v < -9223372036854775808.0) {
    return std::numeric_limits<std::int64_t>::min();
  }
  return static_cast<std::int64_t>(v);
}

}  // namespace hpcnet::vm::arith

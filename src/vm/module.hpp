// Metadata model: a Module is the self-describing unit of the CLI — it owns
// type definitions, method bodies, the string pool and static field storage.
// This plays the role of the single CIL assembly that the paper compiles once
// (with the CLR 1.1 C# compiler) and then runs unmodified on every VM.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "vm/opcode.hpp"
#include "vm/value.hpp"

namespace hpcnet::vm {

struct FieldDef {
  std::string name;
  ValType type = ValType::I32;
};

/// A class definition. Classes participate in single inheritance (used for
/// exception type matching); instances are a header plus one Slot per field.
struct ClassDef {
  std::string name;
  std::int32_t id = -1;
  std::int32_t base = -1;  // class id of base, or -1
  std::vector<FieldDef> fields;
  std::vector<FieldDef> static_fields;

  /// Index of an instance field by name, -1 if absent (does not search base).
  std::int32_t field_index(const std::string& n) const;
  std::int32_t static_field_index(const std::string& n) const;
};

enum class HandlerKind : std::uint8_t { Catch, Finally };

/// Exception handler region. Ranges are [try_begin, try_end) in instruction
/// indices; handlers appear innermost-first, as a compiler would emit them.
struct ExHandler {
  HandlerKind kind = HandlerKind::Catch;
  std::int32_t try_begin = 0;
  std::int32_t try_end = 0;
  std::int32_t handler = 0;     // first instruction of the handler
  std::int32_t catch_class = -1;  // class id to match (Catch only)
};

struct MethodSig {
  std::vector<ValType> params;
  ValType ret = ValType::None;
};

struct MethodDef {
  std::string name;
  std::int32_t id = -1;
  MethodSig sig;
  std::vector<ValType> locals;
  std::vector<Instr> code;
  std::vector<ExHandler> handlers;

  // Filled by the verifier.
  bool verified = false;
  std::int32_t max_stack = 0;
  /// Per-pc operand stack types (entry state). Used for dynamic GC root maps
  /// and by the Optimizing engine's stack-to-register translation.
  std::vector<std::vector<ValType>> stack_in;
  /// Per-pc reachability (unreachable padding is legal but not translated).
  std::vector<bool> reachable;

  std::size_t num_args() const { return sig.params.size(); }
  /// IL body length; the tiering policy starts tiny (call-overhead-bound)
  /// methods above the interpreter on their first invocation.
  std::size_t il_size() const { return code.size(); }
  /// Frame slot count: arguments then locals share one array.
  std::size_t frame_slots() const { return sig.params.size() + locals.size(); }
  /// Static type of frame slot i (argument or local).
  ValType slot_type(std::size_t i) const {
    return i < sig.params.size() ? sig.params[i]
                                 : locals[i - sig.params.size()];
  }
};

class Module {
 public:
  Module();

  // --- Types -------------------------------------------------------------
  /// Defines a class; returns its id. `base` is a class id or -1.
  std::int32_t define_class(const std::string& name,
                            std::vector<FieldDef> fields = {},
                            std::int32_t base = -1,
                            std::vector<FieldDef> static_fields = {});
  const ClassDef& klass(std::int32_t id) const { return classes_[static_cast<std::size_t>(id)]; }
  ClassDef& klass(std::int32_t id) { return classes_[static_cast<std::size_t>(id)]; }
  std::int32_t find_class(const std::string& name) const;
  std::size_t class_count() const { return classes_.size(); }
  /// True if `cls` equals or derives from `base`.
  bool is_subclass(std::int32_t cls, std::int32_t base) const;

  // Built-in exception hierarchy (defined in the constructor, mirroring the
  // System.* exceptions the benchmarks touch).
  std::int32_t exception_class() const { return exc_exception_; }
  std::int32_t null_reference_class() const { return exc_nullref_; }
  std::int32_t index_range_class() const { return exc_indexrange_; }
  std::int32_t divide_by_zero_class() const { return exc_divzero_; }
  std::int32_t arithmetic_class() const { return exc_arith_; }
  std::int32_t invalid_cast_class() const { return exc_invalidcast_; }
  std::int32_t fuel_exhausted_class() const { return exc_fuel_; }
  std::int32_t out_of_memory_class() const { return exc_oom_; }
  std::int32_t deadline_exceeded_class() const { return exc_deadline_; }

  // --- Methods -----------------------------------------------------------
  /// Registers an (unverified) method body; returns its id.
  std::int32_t add_method(MethodDef def);
  const MethodDef& method(std::int32_t id) const { return *methods_[static_cast<std::size_t>(id)]; }
  MethodDef& method(std::int32_t id) { return *methods_[static_cast<std::size_t>(id)]; }
  std::int32_t find_method(const std::string& name) const;
  std::size_t method_count() const { return methods_.size(); }

  // --- Strings -----------------------------------------------------------
  std::int32_t intern_string(const std::string& s);
  const std::string& string_at(std::int32_t id) const {
    return strings_[static_cast<std::size_t>(id)];
  }
  std::size_t string_count() const { return strings_.size(); }

  // --- Statics -----------------------------------------------------------
  /// Static field storage for a class (allocated lazily, zero-initialized).
  Slot* statics(std::int32_t class_id);
  /// Enumerate ref-typed static slots (GC roots).
  template <typename Fn>
  void for_each_static_ref(Fn&& fn) {
    for (std::size_t c = 0; c < classes_.size(); ++c) {
      auto it = statics_.find(static_cast<std::int32_t>(c));
      if (it == statics_.end()) continue;
      const auto& sf = classes_[c].static_fields;
      for (std::size_t i = 0; i < sf.size(); ++i) {
        if (sf[i].type == ValType::Ref) fn(it->second[i].ref);
      }
    }
  }

 private:
  std::vector<ClassDef> classes_;
  std::vector<std::unique_ptr<MethodDef>> methods_;
  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::int32_t> string_ids_;
  std::unordered_map<std::string, std::int32_t> method_ids_;
  std::unordered_map<std::string, std::int32_t> class_ids_;
  std::unordered_map<std::int32_t, std::vector<Slot>> statics_;

  std::int32_t exc_exception_ = -1;
  std::int32_t exc_nullref_ = -1;
  std::int32_t exc_indexrange_ = -1;
  std::int32_t exc_divzero_ = -1;
  std::int32_t exc_arith_ = -1;
  std::int32_t exc_invalidcast_ = -1;
  std::int32_t exc_fuel_ = -1;
  std::int32_t exc_oom_ = -1;
  std::int32_t exc_deadline_ = -1;
};

}  // namespace hpcnet::vm

// Internal: per-tier engine factories (implemented in interpreter.cpp,
// baseline.cpp and optimizing.cpp). Public code uses make_engine().
#pragma once

#include <memory>

#include "vm/execution.hpp"

namespace hpcnet::vm {

std::unique_ptr<Engine> make_interpreter(VirtualMachine& vm,
                                         EngineProfile profile);
std::unique_ptr<Engine> make_baseline(VirtualMachine& vm,
                                      EngineProfile profile);
std::unique_ptr<Engine> make_optimizing(VirtualMachine& vm,
                                        EngineProfile profile);

}  // namespace hpcnet::vm

// Internal: the tiered execution pipeline. The three engines the paper
// compares (interpreter.cpp, baseline.cpp, optimizing.cpp) are tier backends
// behind one TieredEngine; public code uses make_engine().
//
// Dispatch (tiered.cpp): every call funnels through TieredEngine::call(),
// which consults the method's CodeCache entry. Methods at Tier::Optimizing
// run their published register-IR body directly; colder methods bump the
// hotness counter, may promote at the call boundary, and run on their
// current tier's backend. A frame that gets hot while ALREADY running enters
// compiled code mid-loop via on-stack replacement (osr_code/osr_enter), and
// compiled frames can bail back to the interpreter through the deopt side
// table (request_deopt/deopt_bailout). In TierMode::Single the profile's
// tier runs unconditionally, preserving the paper's per-engine measurement
// mode.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>

#include "vm/codecache.hpp"
#include "vm/execution.hpp"

namespace hpcnet::vm {

class TieredEngine;

/// One execution tier. execute() runs `m` on the calling thread; `args`
/// points at m.num_args() Slots (copied into the frame; never mutated). On
/// managed exception the backend sets ctx.pending_exception and returns.
class TierBackend {
 public:
  virtual ~TierBackend() = default;
  virtual Slot execute(VMContext& ctx, const MethodDef& m,
                       const Slot* args) = 0;
};

/// The optimizing tier also dispatches directly on compiled bodies (the
/// hot-to-hot CALL_R fast path skips the CodeCache entry entirely).
class OptBackend : public TierBackend {
 public:
  virtual Slot run_compiled(VMContext& ctx, const regir::RCode& rc,
                            const Slot* args) = 0;
};

std::unique_ptr<TierBackend> make_interp_backend(VirtualMachine& vm,
                                                 TieredEngine& engine);
std::unique_ptr<TierBackend> make_baseline_backend(VirtualMachine& vm,
                                                   TieredEngine& engine);
std::unique_ptr<OptBackend> make_optimizing_backend(VirtualMachine& vm,
                                                    TieredEngine& engine);

/// The engine: owns one backend per tier and drives per-method tier
/// selection through the profile's CodeCache.
class TieredEngine final : public Engine {
 public:
  TieredEngine(VirtualMachine& vm, EngineProfile profile);
  ~TieredEngine() override;

  const EngineProfile& profile() const override { return profile_; }
  VirtualMachine& vm() { return vm_; }
  bool tiered() const { return tiered_; }

  /// Dispatches one call: straight into published optimized code when the
  /// method is hot, otherwise hotness bookkeeping + the current tier.
  Slot call(VMContext& ctx, std::int32_t method_id, const Slot* args);

  /// Frame-entry verification gate used by the IL tiers: one acquire load
  /// once the method is verified. Verification state is shared VM-wide (the
  /// "<verify>" cache), so concurrent engines never race on MethodDef.
  void ensure_verified(const MethodDef& m) {
    CodeCache::Entry& e = vcache_.entry(m.id);
    if (!e.verified.load(std::memory_order_acquire)) verify_slow(e, m);
  }

  /// Optimized code for a CALL_R site. Single mode compiles on demand and
  /// never returns null; tiered mode returns the published body or null
  /// (the caller routes the cold callee back through call()).
  const regir::RCode* opt_code_for_call(std::int32_t method_id);

  /// Frame-exit flush of taken-backward-branch counts from the IL tiers;
  /// may promote the method for its next invocation (loop-heavy methods
  /// tier up after one or two calls even if rarely invoked).
  void note_backedges(std::int32_t method_id, std::uint32_t taken);

  /// The method's current dispatch tier (telemetry, tests, benches).
  Tier method_tier(std::int32_t method_id) {
    return static_cast<Tier>(
        cache_.entry(method_id).tier.load(std::memory_order_acquire));
  }

  // --- On-stack replacement / deoptimization (DESIGN.md §10) ---------------

  /// Per-frame taken-back-edge count at which the IL tiers attempt OSR;
  /// 0 when this engine can never OSR (Single mode, or the policy caps
  /// below the optimizing tier).
  std::uint32_t osr_step() const { return osr_step_; }

  /// Compiled OSR continuation of `body` at loop header `header_pc` — the
  /// published one, or compiled on the spot (also promotes the method itself
  /// so future calls run fully compiled). `body` is the method the frame is
  /// executing: the module's method, or a continuation from an earlier
  /// OSR/deopt of this same invocation (re-OSR keys off that body pointer).
  /// Returns nullptr when the continuation cannot be built; callers then
  /// stop trying for the rest of the frame.
  const regir::RCode* osr_code(const MethodDef& body, std::int32_t header_pc);

  /// Enters a compiled OSR continuation with the live frame state (`args` =
  /// frame slots then operand stack, matching the continuation signature).
  /// The return value is the original invocation's result; a managed
  /// exception propagates via ctx.pending_exception as usual.
  Slot osr_enter(VMContext& ctx, const regir::RCode& rc,
                 std::int32_t header_pc, const Slot* args);

  /// Invalidates the method's compiled assumptions: bumps the entry's deopt
  /// generation (running compiled frames bail out at their next back-edge
  /// safepoint), drops the dispatch tier below Optimizing and zeroes hotness
  /// so the method re-profiles. The compiled body stays cached — a re-warm
  /// republishes it without recompiling.
  void request_deopt(std::int32_t method_id);

  /// Bails a compiled frame out at the back-edge safepoint `rpc`: maps the
  /// register file back to IL frame state through the deopt side table and
  /// finishes the invocation in an interpreter continuation. Returns the
  /// invocation's result (exceptions via ctx.pending_exception).
  Slot deopt_bailout(VMContext& ctx, const regir::RCode& rc, std::int32_t rpc,
                     const Slot* regs);

  /// The per-method cache entry (the optimizing backend snapshots
  /// deopt_generation at frame entry).
  CodeCache::Entry& code_entry(std::int32_t method_id) {
    return cache_.entry(method_id);
  }

 protected:
  Slot do_invoke(VMContext& ctx, const MethodDef& m, Slot* args) override;

 private:
  Tier maybe_promote(CodeCache::Entry& e, const MethodDef& m,
                     std::uint32_t hotness);
  const regir::RCode& compile_optimizing(CodeCache::Entry& e,
                                         const MethodDef& m);
  void pre_verify_callees(const MethodDef& root);
  void verify_slow(CodeCache::Entry& e, const MethodDef& m);
  /// The continuation MethodDef for (body, header), built+verified once and
  /// cached for the VM's lifetime (nullptr is cached too: an unbuildable
  /// header is never retried). Shared by the OSR-up and deopt directions.
  std::shared_ptr<const MethodDef> continuation_for(const MethodDef& body,
                                                    std::int32_t header_pc);

  VirtualMachine& vm_;
  EngineProfile profile_;
  const bool tiered_;
  std::uint32_t osr_step_ = 0;
  CodeCache& cache_;   // this profile's compiled code + tier state
  CodeCache& vcache_;  // VM-shared verification latches/flags
  std::unique_ptr<TierBackend> interp_;
  std::unique_ptr<TierBackend> baseline_;
  std::unique_ptr<OptBackend> opt_;
  // OSR/deopt continuations are rare (once per hot loop header) and live as
  // long as the engine; a plain mutex-guarded map is plenty.
  std::mutex osr_mu_;
  std::map<std::pair<const void*, std::int32_t>,
           std::shared_ptr<const MethodDef>>
      continuations_;
};

}  // namespace hpcnet::vm

// CodeArchive capture/attach and the verified-IL content hash that keys
// method identity across VM instances (see archive.hpp for the contract).
#include "vm/archive.hpp"

#include <algorithm>
#include <mutex>
#include <utility>

#include "support/timer.hpp"
#include "vm/codecache.hpp"
#include "vm/execution.hpp"
#include "vm/module.hpp"
#include "vm/regir.hpp"
#include "vm/telemetry/telemetry.hpp"
#include "vm/verifier.hpp"

namespace hpcnet::vm {
namespace {

constexpr std::uint8_t kTierBaseline =
    static_cast<std::uint8_t>(Tier::Baseline);
constexpr std::uint8_t kTierOpt = static_cast<std::uint8_t>(Tier::Optimizing);
constexpr std::size_t kOptSlot = static_cast<std::size_t>(Tier::Optimizing);

struct Fnv {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis

  void bytes(const void* p, std::size_t n) {
    const auto* c = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= c[i];
      h *= 1099511628211ull;  // FNV-1a 64 prime
    }
  }
  void u8(std::uint8_t v) { bytes(&v, 1); }
  void i32(std::int32_t v) { bytes(&v, 4); }
  void u64(std::uint64_t v) { bytes(&v, 8); }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
  /// Folded in for any out-of-range id: keeps the hash total on malformed
  /// references instead of faulting, and can't collide with a well-formed
  /// stream because well-formed hashing never emits this tag.
  void poison() { u64(0x9e3779b97f4a7c15ull); }
};

void hash_class(Fnv& f, const Module& mod, std::int32_t cls) {
  if (cls < 0 || static_cast<std::size_t>(cls) >= mod.class_count()) {
    f.poison();
    return;
  }
  const ClassDef& c = mod.klass(cls);
  f.str(c.name);
  f.i32(c.base);  // base chain ids feed exception matching in compiled code
  f.u64(c.fields.size());
  for (const FieldDef& fd : c.fields) {
    f.str(fd.name);
    f.u8(static_cast<std::uint8_t>(fd.type));
  }
  f.u64(c.static_fields.size());
  for (const FieldDef& fd : c.static_fields) {
    f.str(fd.name);
    f.u8(static_cast<std::uint8_t>(fd.type));
  }
}

/// One method's verified body plus every module datum its compiled form
/// bakes in by id: string pool entries, class layouts, handler regions.
/// Instr::type is included — it carries semantic element/operand types (the
/// builder sets it on array and conversion ops; the verifier fills the rest
/// deterministically), which is why callers hash only verified methods.
void hash_method(Fnv& f, const Module& mod, const MethodDef& m) {
  f.str(m.name);
  f.i32(m.id);
  f.u64(m.sig.params.size());
  for (ValType t : m.sig.params) f.u8(static_cast<std::uint8_t>(t));
  f.u8(static_cast<std::uint8_t>(m.sig.ret));
  f.u64(m.locals.size());
  for (ValType t : m.locals) f.u8(static_cast<std::uint8_t>(t));
  f.u64(m.code.size());
  for (const Instr& in : m.code) {
    f.u8(static_cast<std::uint8_t>(in.op));
    f.u8(static_cast<std::uint8_t>(in.type));
    f.i32(in.a);
    f.i32(in.b);
    f.u64(static_cast<std::uint64_t>(in.imm.i64));
    switch (in.op) {
      case Op::LDSTR:
        if (in.a < 0 ||
            static_cast<std::size_t>(in.a) >= mod.string_count()) {
          f.poison();
        } else {
          f.str(mod.string_at(in.a));
        }
        break;
      case Op::NEWOBJ:
        hash_class(f, mod, in.a);
        break;
      case Op::LDFLD:
      case Op::STFLD:
      case Op::LDSFLD:
      case Op::STSFLD:
        hash_class(f, mod, in.b);
        break;
      default:
        break;
    }
  }
  f.u64(m.handlers.size());
  for (const ExHandler& h : m.handlers) {
    f.u8(static_cast<std::uint8_t>(h.kind));
    f.i32(h.try_begin);
    f.i32(h.try_end);
    f.i32(h.handler);
    f.i32(h.catch_class);
    if (h.kind == HandlerKind::Catch) hash_class(f, mod, h.catch_class);
  }
}

/// The method plus its transitive CALL targets, BFS discovery order (the
/// same order for the same IL on both the capture and attach side).
/// Out-of-range callees are skipped here; hash_method poisons them.
std::vector<std::int32_t> call_closure(const Module& mod, std::int32_t root) {
  std::vector<std::int32_t> order{root};
  std::vector<bool> seen(mod.method_count(), false);
  seen[static_cast<std::size_t>(root)] = true;
  for (std::size_t qi = 0; qi < order.size(); ++qi) {
    const MethodDef& m = mod.method(order[qi]);
    for (const Instr& in : m.code) {
      if (in.op != Op::CALL) continue;
      if (in.a < 0 || static_cast<std::size_t>(in.a) >= mod.method_count()) {
        continue;
      }
      if (!seen[static_cast<std::size_t>(in.a)]) {
        seen[static_cast<std::size_t>(in.a)] = true;
        order.push_back(in.a);
      }
    }
  }
  return order;
}

/// Mirror of TieredEngine::ensure_verified/verify_slow against the VM-shared
/// "<verify>" cache: per-method latch, double-checked flag, release publish.
/// Safe to run while engines execute — they take the same latch.
void verify_under_latch(VirtualMachine& vm, std::int32_t method_id) {
  CodeCache::Entry& e = vm.code_cache("<verify>").entry(method_id);
  if (e.verified.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> latch(e.latch);
  if (e.verified.load(std::memory_order_relaxed)) return;
  verify(vm.module(), method_id);
  e.verified.store(true, std::memory_order_release);
}

/// Verifies `root` and its transitive CALL closure (each under its own
/// latch, never two at once — the codecache.hpp deadlock rule). Returns
/// false if any method in the closure fails verification.
bool verify_closure(VirtualMachine& vm, std::int32_t root) {
  try {
    for (std::int32_t id : call_closure(vm.module(), root)) {
      verify_under_latch(vm, id);
    }
  } catch (const VerifyError&) {
    return false;
  }
  return true;
}

}  // namespace

std::uint64_t il_content_hash(const Module& module, std::int32_t method_id) {
  Fnv f;
  if (method_id < 0 ||
      static_cast<std::size_t>(method_id) >= module.method_count()) {
    f.poison();
    return f.h;
  }
  for (std::int32_t id : call_closure(module, method_id)) {
    hash_method(f, module, module.method(id));
  }
  return f.h;
}

std::shared_ptr<const CodeArchive> capture_archive(
    VirtualMachine& vm, const std::string& profile_name) {
  CodeCache& cache = vm.code_cache(profile_name);
  const Module& mod = vm.module();
  std::vector<CodeArchive::MethodRecord> records;
  for (std::size_t i = 0; i < mod.method_count(); ++i) {
    const auto id = static_cast<std::int32_t>(i);
    CodeCache::Entry& e = cache.entry(id);
    const std::uint8_t tier = e.tier.load(std::memory_order_acquire);
    const std::uint32_t hotness = e.hotness.load(std::memory_order_relaxed);
    const regir::RCode* raw = e.code[kOptSlot].load(std::memory_order_acquire);
    if (tier == 0 && hotness == 0 && raw == nullptr) continue;  // cold
    CodeArchive::MethodRecord rec;
    rec.method_id = id;
    rec.name = mod.method(id).name;
    rec.code = raw != nullptr ? cache.shared_code(raw) : nullptr;
    // A published body implies adopt() registered it; a miss would mean a
    // foreign pointer — snapshot the counters but not the code.
    rec.tier = rec.code != nullptr ? tier : std::min(tier, kTierBaseline);
    rec.hotness = hotness;
    // The hash is defined over verified IL; warm methods are verified
    // already, but cold transitive callees of a warm method may not be.
    if (!verify_closure(vm, id)) continue;
    rec.il_hash = il_content_hash(mod, id);
    records.push_back(std::move(rec));
  }
  return std::make_shared<const CodeArchive>(profile_name, std::move(records));
}

ArchiveStats attach_archive(VirtualMachine& vm,
                            const std::shared_ptr<const CodeArchive>& archive) {
  const std::int64_t t0 = support::now_ns();
  ArchiveStats stats;
  if (archive == nullptr) return stats;
  CodeCache& cache = vm.code_cache(archive->profile());
  const Module& mod = vm.module();
  for (const CodeArchive::MethodRecord& rec : archive->records()) {
    if (rec.method_id < 0 ||
        static_cast<std::size_t>(rec.method_id) >= mod.method_count() ||
        mod.method(rec.method_id).name != rec.name ||
        !verify_closure(vm, rec.method_id) ||
        il_content_hash(mod, rec.method_id) != rec.il_hash) {
      ++stats.missed;  // stays cold; the engine compiles it normally
      continue;
    }
    CodeCache::Entry& e = cache.entry(rec.method_id);
    std::lock_guard<std::mutex> latch(e.latch);
    // Only cold entries are written: a VM that already ran (or raced another
    // attach) keeps its own state. Restored methods therefore always start
    // exactly at the snapshot.
    if (e.code[kOptSlot].load(std::memory_order_relaxed) != nullptr ||
        e.tier.load(std::memory_order_relaxed) != 0 ||
        e.hotness.load(std::memory_order_relaxed) != 0) {
      continue;
    }
    std::uint8_t tier = rec.tier;
    if (rec.code != nullptr) {
      const regir::RCode* raw = cache.adopt(rec.code);  // refcount, not copy
      e.code[kOptSlot].store(raw, std::memory_order_release);
    } else if (tier > kTierBaseline) {
      tier = kTierBaseline;  // never dispatch to Optimizing without a body
    }
    e.hotness.store(rec.hotness, std::memory_order_relaxed);
    if (tier > kTierOpt) tier = kTierOpt;
    // Published after code, release — the same order compile_optimizing
    // uses, so the call() fast path's acquire/relaxed pairing holds.
    e.tier.store(tier, std::memory_order_release);
    ++stats.restored;
  }
  telemetry::record_archive_load(stats.restored, stats.missed,
                                 support::now_ns() - t0);
  return stats;
}

}  // namespace hpcnet::vm

// ILBuilder: the assembler the benchmark sources are written against. It
// plays the role of the paper's single C# compiler — every benchmark kernel
// is authored once through this API and the resulting CIL is then executed
// unmodified by each engine, reproducing the paper's "one compiler, many
// runtimes" methodology.
//
// Branch targets are labels resolved at finish(); exception-handler regions
// are declared with label triples and patched the same way.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vm/module.hpp"

namespace hpcnet::vm {

class ILBuilder {
 public:
  struct Label {
    std::int32_t id = -1;
  };

  ILBuilder(Module& module, std::string name, MethodSig sig);

  /// Declares a local; returns its *local* index (CIL local index space).
  std::int32_t add_local(ValType t);

  Label new_label();
  /// Binds `l` to the next emitted instruction.
  void bind(Label l);
  /// Index of the next instruction to be emitted.
  std::int32_t here() const { return static_cast<std::int32_t>(code_.size()); }

  // -- constants --
  ILBuilder& ldc_i4(std::int32_t v);
  ILBuilder& ldc_i8(std::int64_t v);
  ILBuilder& ldc_r4(float v);
  ILBuilder& ldc_r8(double v);
  ILBuilder& ldnull();
  ILBuilder& ldstr(const std::string& s);

  // -- locals/args/stack --
  ILBuilder& ldloc(std::int32_t i);
  ILBuilder& stloc(std::int32_t i);
  ILBuilder& ldarg(std::int32_t i);
  ILBuilder& starg(std::int32_t i);
  ILBuilder& dup();
  ILBuilder& pop();

  // -- arithmetic / bitwise --
  ILBuilder& add();
  ILBuilder& sub();
  ILBuilder& mul();
  ILBuilder& div();
  ILBuilder& rem();
  ILBuilder& neg();
  ILBuilder& and_();
  ILBuilder& or_();
  ILBuilder& xor_();
  ILBuilder& not_();
  ILBuilder& shl();
  ILBuilder& shr();
  ILBuilder& shr_un();

  // -- comparisons --
  ILBuilder& ceq();
  ILBuilder& cgt();
  ILBuilder& clt();

  // -- branches --
  ILBuilder& br(Label l);
  ILBuilder& brtrue(Label l);
  ILBuilder& brfalse(Label l);
  ILBuilder& beq(Label l);
  ILBuilder& bne(Label l);
  ILBuilder& blt(Label l);
  ILBuilder& ble(Label l);
  ILBuilder& bgt(Label l);
  ILBuilder& bge(Label l);

  // -- conversions --
  ILBuilder& conv_i4();
  ILBuilder& conv_i8();
  ILBuilder& conv_r4();
  ILBuilder& conv_r8();
  ILBuilder& conv_i1();
  ILBuilder& conv_u1();
  ILBuilder& conv_i2();
  ILBuilder& conv_u2();

  // -- calls --
  ILBuilder& call(std::int32_t method_id);
  ILBuilder& call_intr(std::int32_t intrinsic_id);
  ILBuilder& ret();

  // -- objects / fields --
  ILBuilder& newobj(std::int32_t class_id);
  ILBuilder& ldfld(std::int32_t class_id, std::int32_t field_index);
  ILBuilder& stfld(std::int32_t class_id, std::int32_t field_index);
  ILBuilder& ldfld(std::int32_t class_id, const std::string& field);
  ILBuilder& stfld(std::int32_t class_id, const std::string& field);
  ILBuilder& ldsfld(std::int32_t class_id, const std::string& field);
  ILBuilder& stsfld(std::int32_t class_id, const std::string& field);

  // -- arrays --
  ILBuilder& newarr(ValType elem);
  ILBuilder& ldlen();
  ILBuilder& ldelem(ValType elem);
  ILBuilder& stelem(ValType elem);
  ILBuilder& newmat(ValType elem);
  ILBuilder& ldelem2(ValType elem);
  ILBuilder& stelem2(ValType elem);
  ILBuilder& ldmat_rows();
  ILBuilder& ldmat_cols();

  // -- boxing --
  ILBuilder& box(ValType t);
  ILBuilder& unbox(ValType t);

  // -- exceptions --
  ILBuilder& throw_();
  ILBuilder& leave(Label l);
  ILBuilder& endfinally();
  /// Declares a catch handler: try region [begin, end), handler at `handler`,
  /// matching `catch_class` (a class id). Handlers are matched in the order
  /// added, so add inner regions first.
  void add_catch(Label try_begin, Label try_end, Label handler,
                 std::int32_t catch_class);
  void add_finally(Label try_begin, Label try_end, Label handler);

  /// Patches labels, registers the method with the module, returns its id.
  /// The method is *not* verified yet (Verifier::verify does that).
  std::int32_t finish();

  Module& module() { return module_; }

 private:
  struct PendingHandler {
    HandlerKind kind;
    Label try_begin, try_end, handler;
    std::int32_t catch_class;
  };

  ILBuilder& emit(Instr in) {
    code_.push_back(in);
    return *this;
  }
  ILBuilder& emit_branch(Op op, Label l);
  std::int32_t resolve(Label l) const;

  Module& module_;
  std::string name_;
  MethodSig sig_;
  std::vector<ValType> locals_;
  std::vector<Instr> code_;
  std::vector<std::int32_t> label_targets_;  // -1 = unbound
  std::vector<std::pair<std::int32_t, std::int32_t>> fixups_;  // (pc, label)
  std::vector<PendingHandler> pending_handlers_;
  bool finished_ = false;
};

}  // namespace hpcnet::vm

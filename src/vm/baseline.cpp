// Tier::Baseline — the Mono 0.23 stand-in. The verifier's type annotations
// let this engine drop all dynamic tag dispatch (each opcode switches on the
// statically-known operand type), but it still translates the stack IL
// literally: every value round-trips through the memory-resident operand
// stack and locals array, exactly the code shape the paper's Mono
// disassembly shows (Table 7: "uses two memory locations for each of the
// variables, loads those and stores the result again").
//
// GC maps: the frame records its current IL pc; roots are derived from the
// verifier's per-pc stack type map plus the static local/arg types.
#include <vector>

#include "vm/arith.hpp"
#include "vm/engines.hpp"
#include "vm/execution.hpp"
#include "vm/heap.hpp"
#include "vm/intrinsics.hpp"
#include "vm/telemetry/telemetry.hpp"
#include "vm/unwind.hpp"

namespace hpcnet::vm {

namespace {

constexpr std::uint8_t kTierIndex = static_cast<std::uint8_t>(Tier::Baseline);

struct BaseFrame {
  GcFrame gc;  // must be first
  const MethodDef* m = nullptr;
  Slot* slots = nullptr;
  Slot* stack = nullptr;
  std::int32_t sp = 0;
  std::int32_t pc = 0;  // kept current at every potential GC point

  static void enumerate(const GcFrame* g, void (*visit)(ObjRef, void*),
                        void* arg) {
    const auto* f = reinterpret_cast<const BaseFrame*>(g);
    const MethodDef& m = *f->m;
    for (std::size_t i = 0; i < m.frame_slots(); ++i) {
      if (m.slot_type(i) == ValType::Ref && f->slots[i].ref != nullptr) {
        visit(f->slots[i].ref, arg);
      }
    }
    // The operand stack's ref layout at the recorded pc. The engine keeps
    // sp consistent with stack_in[pc] at every GC point (values being
    // consumed by the current instruction are not popped until it retires).
    const auto& types = m.stack_in[static_cast<std::size_t>(f->pc)];
    const std::int32_t n =
        std::min(f->sp, static_cast<std::int32_t>(types.size()));
    for (std::int32_t i = 0; i < n; ++i) {
      if (types[static_cast<std::size_t>(i)] == ValType::Ref &&
          f->stack[i].ref != nullptr) {
        visit(f->stack[i].ref, arg);
      }
    }
  }
};

class BaselineBackend final : public TierBackend {
 public:
  BaselineBackend(VirtualMachine& vm, TieredEngine& engine)
      : vm_(vm), engine_(engine), tiered_(engine.tiered()) {}

  Slot execute(VMContext& ctx, const MethodDef& m,
               const Slot* args) override {
    return exec(ctx, m, args);
  }

 private:
  Slot exec(VMContext& ctx, const MethodDef& m, const Slot* args);

  VirtualMachine& vm_;
  TieredEngine& engine_;
  const bool tiered_;
};

#define BASE_THROW(cls, msg)                \
  do {                                      \
    frame.pc = pc;                          \
    vm_.throw_exception(ctx, (cls), (msg)); \
    goto dispatch_exception;                \
  } while (0)

Slot BaselineBackend::exec(VMContext& ctx, const MethodDef& m,
                           const Slot* args) {
  Module& mod = vm_.module();
  engine_.ensure_verified(m);
  // Fuel check at the call boundary (see interpreter.cpp for rationale).
  if (ctx.fuel.exhausted()) {
    vm_.throw_exception(ctx, mod.fuel_exhausted_class(),
                        "fuel budget exhausted");
    return Slot{};
  }
  if (ctx.fuel.past_deadline()) {
    vm_.throw_exception(ctx, mod.deadline_exceeded_class(),
                        "wall-clock deadline exceeded");
    return Slot{};
  }
  telemetry::InvocationScope tel(m.id, kTierIndex);
  const auto arena_mark = ctx.arena.mark();

  BaseFrame frame;
  frame.m = &m;
  const std::size_t nslots = m.frame_slots();
  frame.slots = static_cast<Slot*>(ctx.arena.alloc(nslots * sizeof(Slot)));
  frame.stack = static_cast<Slot*>(ctx.arena.alloc(
      static_cast<std::size_t>(m.max_stack + 1) * sizeof(Slot)));
  for (std::size_t i = 0; i < m.num_args(); ++i) frame.slots[i] = args[i];
  frame.gc.parent = ctx.top_frame;
  frame.gc.enumerate = &BaseFrame::enumerate;
  ctx.top_frame = &frame.gc;

  UnwindMachine uw;
  Slot* st = frame.stack;
  Slot* loc = frame.slots;
  std::int32_t pc = 0;
  Slot result;
  // Bytecode counter kept in a register-friendly local; flushed to the
  // telemetry scope only at frame exit so the dispatch loop pays nothing.
  std::uint64_t bc = 0;
  // Taken backward branches; counted inside the existing back-edge safepoint
  // blocks (no new branches in the dispatch loop) and flushed at frame exit.
  std::uint32_t backedges = 0;
  // Back edges already charged to ctx.fuel (== backedges at each pulse).
  std::uint32_t fuel_charged = 0;

  // RAII frame teardown: runs on normal returns, managed-exception
  // propagation AND native C++ unwinds (arena exhaustion, nested compile
  // failure) — see the matching guard in interpreter.cpp for the full
  // rationale. Declared after `tel` so bc lands before tel's flush.
  struct FrameExit {
    BaselineBackend* self;
    VMContext& ctx;
    BaseFrame& frame;
    telemetry::InvocationScope& tel;
    const MethodDef& m;
    FrameArena::Mark arena_mark;
    const std::uint64_t& bc;
    const std::uint32_t& backedges;
    const std::uint32_t& fuel_charged;
    bool tiered;
    ~FrameExit() {
      tel.bytecodes = bc;
      ctx.top_frame = frame.gc.parent;
      ctx.arena.release(arena_mark);
      // Residual fuel for back edges taken since the last pulse (the next
      // pulse or call boundary catches any overdraw).
      if (ctx.fuel.active && backedges != fuel_charged) {
        ctx.fuel.charge(backedges - fuel_charged);
      }
      if (tiered && backedges != 0) {
        try {
          self->engine_.note_backedges(m.id, backedges);
        } catch (...) {
          // Never let a failed promotion terminate an in-flight unwind.
        }
      }
    }
  } frame_exit{this,       ctx, frame,     tel,          m,
               arena_mark, bc,  backedges, fuel_charged, tiered_};

  // On-stack replacement at the back-edge safepoint blocks (see
  // interpreter.cpp; the baseline frame's slots/stack are untagged Slots so
  // the state transfer is a straight copy). As in the interpreter, the OSR
  // counter doubles as the fuel counter: one `backedges == pulse_next`
  // compare serves both, so metering adds no branch to the dispatch loop.
  const std::uint32_t osr_step = tiered_ ? engine_.osr_step() : 0;
  const bool fuel_on = ctx.fuel.active;
  const std::uint32_t pulse_step =
      osr_step != 0 ? osr_step : (fuel_on ? kFuelPulseBackedges : 0);
  std::uint32_t pulse_next = pulse_step;
  bool osr_armed = osr_step != 0;
  Slot osr_result;
  auto try_osr = [&](std::int32_t header) -> bool {
    if (!osr_armed || !uw.idle()) return false;
    const auto& entry_stack = m.stack_in[static_cast<std::size_t>(header)];
    if (static_cast<std::size_t>(frame.sp) != entry_stack.size()) {
      return false;
    }
    const regir::RCode* rc = engine_.osr_code(m, header);
    if (rc == nullptr) {
      // Unbuildable continuation: stop trying in this frame; keep pulsing
      // only if fuel still needs the counter.
      osr_armed = false;
      if (!fuel_on) pulse_next = 0;
      return false;
    }
    std::vector<Slot> a(nslots + entry_stack.size());
    for (std::size_t i = 0; i < nslots; ++i) a[i] = loc[i];
    for (std::int32_t k = 0; k < frame.sp; ++k) {
      a[nslots + static_cast<std::size_t>(k)] = st[k];
    }
    osr_result = engine_.osr_enter(ctx, *rc, header, a.data());
    return true;
  };
  // Pulse handler: charge the window's fuel (raising a catchable
  // FuelExhausted via ctx.pending_exception when dry), then attempt OSR.
  auto pulse = [&](std::int32_t header) -> bool {
    pulse_next += pulse_step;
    if (fuel_on) {
      ctx.fuel.charge(backedges - fuel_charged);
      fuel_charged = backedges;
      if (ctx.fuel.exhausted()) {
        vm_.throw_exception(ctx, mod.fuel_exhausted_class(),
                            "fuel budget exhausted");
        return false;
      }
      // Wall-clock deadline poll at the same pulse (DESIGN.md §14).
      if (ctx.fuel.past_deadline()) {
        vm_.throw_exception(ctx, mod.deadline_exceeded_class(),
                            "wall-clock deadline exceeded");
        return false;
      }
    }
    return try_osr(header);
  };

  for (;;) {
    ++bc;
    const Instr& in = m.code[static_cast<std::size_t>(pc)];
    switch (in.op) {
      case Op::NOP:
        break;
      case Op::LDC_I4:
        st[frame.sp++] = Slot::from_i32(static_cast<std::int32_t>(in.imm.i64));
        break;
      case Op::LDC_I8:
        st[frame.sp++] = Slot::from_i64(in.imm.i64);
        break;
      case Op::LDC_R4:
        st[frame.sp++] = Slot::from_f32(static_cast<float>(in.imm.f64));
        break;
      case Op::LDC_R8:
        st[frame.sp++] = Slot::from_f64(in.imm.f64);
        break;
      case Op::LDNULL:
        st[frame.sp++] = Slot::from_ref(nullptr);
        break;
      case Op::LDSTR: {
        frame.pc = pc;
        ObjRef s = vm_.heap().alloc_string(mod.string_at(in.a), &ctx.tlab);
        if (s == nullptr) {
          BASE_THROW(mod.out_of_memory_class(), "allocation budget exhausted");
        }
        st[frame.sp++] = Slot::from_ref(s);
        break;
      }

      case Op::LDLOC:
        st[frame.sp++] = loc[m.num_args() + static_cast<std::size_t>(in.a)];
        break;
      case Op::STLOC:
        loc[m.num_args() + static_cast<std::size_t>(in.a)] = st[--frame.sp];
        break;
      case Op::LDARG:
        st[frame.sp++] = loc[static_cast<std::size_t>(in.a)];
        break;
      case Op::STARG:
        loc[static_cast<std::size_t>(in.a)] = st[--frame.sp];
        break;
      case Op::DUP:
        st[frame.sp] = st[frame.sp - 1];
        ++frame.sp;
        break;
      case Op::POP:
        --frame.sp;
        break;

      case Op::ADD: {
        Slot b = st[--frame.sp];
        Slot& a = st[frame.sp - 1];
        switch (in.type) {
          case ValType::I32: a.i32 = arith::add_i32(a.i32, b.i32); break;
          case ValType::I64: a.i64 = arith::add_i64(a.i64, b.i64); break;
          case ValType::F32: a.f32 = a.f32 + b.f32; break;
          default: a.f64 = a.f64 + b.f64; break;
        }
        break;
      }
      case Op::SUB: {
        Slot b = st[--frame.sp];
        Slot& a = st[frame.sp - 1];
        switch (in.type) {
          case ValType::I32: a.i32 = arith::sub_i32(a.i32, b.i32); break;
          case ValType::I64: a.i64 = arith::sub_i64(a.i64, b.i64); break;
          case ValType::F32: a.f32 = a.f32 - b.f32; break;
          default: a.f64 = a.f64 - b.f64; break;
        }
        break;
      }
      case Op::MUL: {
        Slot b = st[--frame.sp];
        Slot& a = st[frame.sp - 1];
        switch (in.type) {
          case ValType::I32: a.i32 = arith::mul_i32(a.i32, b.i32); break;
          case ValType::I64: a.i64 = arith::mul_i64(a.i64, b.i64); break;
          case ValType::F32: a.f32 = a.f32 * b.f32; break;
          default: a.f64 = a.f64 * b.f64; break;
        }
        break;
      }
      case Op::DIV: {
        Slot b = st[--frame.sp];
        Slot& a = st[frame.sp - 1];
        switch (in.type) {
          case ValType::I32: {
            std::int32_t out;
            const auto s = arith::div_i32(a.i32, b.i32, &out);
            if (s == arith::DivStatus::DivideByZero) {
              BASE_THROW(mod.divide_by_zero_class(), "division by zero");
            }
            if (s == arith::DivStatus::Overflow) {
              BASE_THROW(mod.arithmetic_class(), "integer overflow in division");
            }
            a.i32 = out;
            break;
          }
          case ValType::I64: {
            std::int64_t out;
            const auto s = arith::div_i64(a.i64, b.i64, &out);
            if (s == arith::DivStatus::DivideByZero) {
              BASE_THROW(mod.divide_by_zero_class(), "division by zero");
            }
            if (s == arith::DivStatus::Overflow) {
              BASE_THROW(mod.arithmetic_class(), "integer overflow in division");
            }
            a.i64 = out;
            break;
          }
          case ValType::F32: a.f32 = a.f32 / b.f32; break;
          default: a.f64 = a.f64 / b.f64; break;
        }
        break;
      }
      case Op::REM: {
        Slot b = st[--frame.sp];
        Slot& a = st[frame.sp - 1];
        switch (in.type) {
          case ValType::I32: {
            std::int32_t out;
            if (arith::rem_i32(a.i32, b.i32, &out) ==
                arith::DivStatus::DivideByZero) {
              BASE_THROW(mod.divide_by_zero_class(), "division by zero");
            }
            a.i32 = out;
            break;
          }
          case ValType::I64: {
            std::int64_t out;
            if (arith::rem_i64(a.i64, b.i64, &out) ==
                arith::DivStatus::DivideByZero) {
              BASE_THROW(mod.divide_by_zero_class(), "division by zero");
            }
            a.i64 = out;
            break;
          }
          case ValType::F32: a.f32 = std::fmod(a.f32, b.f32); break;
          default: a.f64 = std::fmod(a.f64, b.f64); break;
        }
        break;
      }
      case Op::NEG: {
        Slot& a = st[frame.sp - 1];
        switch (in.type) {
          case ValType::I32: a.i32 = arith::sub_i32(0, a.i32); break;
          case ValType::I64: a.i64 = arith::sub_i64(0, a.i64); break;
          case ValType::F32: a.f32 = -a.f32; break;
          default: a.f64 = -a.f64; break;
        }
        break;
      }

      case Op::AND: {
        Slot b = st[--frame.sp];
        Slot& a = st[frame.sp - 1];
        if (in.type == ValType::I32) a.i32 &= b.i32; else a.i64 &= b.i64;
        break;
      }
      case Op::OR: {
        Slot b = st[--frame.sp];
        Slot& a = st[frame.sp - 1];
        if (in.type == ValType::I32) a.i32 |= b.i32; else a.i64 |= b.i64;
        break;
      }
      case Op::XOR: {
        Slot b = st[--frame.sp];
        Slot& a = st[frame.sp - 1];
        if (in.type == ValType::I32) a.i32 ^= b.i32; else a.i64 ^= b.i64;
        break;
      }
      case Op::NOT: {
        Slot& a = st[frame.sp - 1];
        if (in.type == ValType::I32) a.i32 = ~a.i32; else a.i64 = ~a.i64;
        break;
      }
      case Op::SHL: {
        Slot b = st[--frame.sp];
        Slot& a = st[frame.sp - 1];
        if (in.type == ValType::I32) a.i32 = arith::shl_i32(a.i32, b.i32);
        else a.i64 = arith::shl_i64(a.i64, b.i32);
        break;
      }
      case Op::SHR: {
        Slot b = st[--frame.sp];
        Slot& a = st[frame.sp - 1];
        if (in.type == ValType::I32) a.i32 = arith::shr_i32(a.i32, b.i32);
        else a.i64 = arith::shr_i64(a.i64, b.i32);
        break;
      }
      case Op::SHR_UN: {
        Slot b = st[--frame.sp];
        Slot& a = st[frame.sp - 1];
        if (in.type == ValType::I32) a.i32 = arith::shru_i32(a.i32, b.i32);
        else a.i64 = arith::shru_i64(a.i64, b.i32);
        break;
      }

      case Op::CEQ:
      case Op::CGT:
      case Op::CLT: {
        Slot b = st[--frame.sp];
        Slot a = st[--frame.sp];
        bool r = false;
        switch (in.type) {
          case ValType::I32:
            r = in.op == Op::CEQ ? a.i32 == b.i32
                : in.op == Op::CGT ? a.i32 > b.i32 : a.i32 < b.i32;
            break;
          case ValType::I64:
            r = in.op == Op::CEQ ? a.i64 == b.i64
                : in.op == Op::CGT ? a.i64 > b.i64 : a.i64 < b.i64;
            break;
          case ValType::F32:
            r = in.op == Op::CEQ ? a.f32 == b.f32
                : in.op == Op::CGT ? a.f32 > b.f32 : a.f32 < b.f32;
            break;
          case ValType::F64:
            r = in.op == Op::CEQ ? a.f64 == b.f64
                : in.op == Op::CGT ? a.f64 > b.f64 : a.f64 < b.f64;
            break;
          default:
            r = in.op == Op::CEQ && a.ref == b.ref;
            break;
        }
        st[frame.sp++] = Slot::from_i32(r ? 1 : 0);
        break;
      }

      case Op::BR:
        if (in.a <= pc) {  // back-edge safepoint
          ++backedges;
          frame.pc = in.a;
          vm_.safepoint_poll(ctx);
          if (backedges == pulse_next) {
            if (pulse(in.a)) return osr_result;
            if (ctx.has_pending()) goto dispatch_exception;  // fuel fault
          }
        }
        pc = in.a;
        continue;
      case Op::BRTRUE:
      case Op::BRFALSE: {
        Slot a = st[--frame.sp];
        bool truth;
        switch (in.type) {
          case ValType::Ref: truth = a.ref != nullptr; break;
          case ValType::I64: truth = a.i64 != 0; break;
          default: truth = a.i32 != 0; break;
        }
        if (truth == (in.op == Op::BRTRUE)) {
          if (in.a <= pc) {
            ++backedges;
            frame.pc = in.a;
            vm_.safepoint_poll(ctx);
            if (backedges == pulse_next) {
              if (pulse(in.a)) return osr_result;
              if (ctx.has_pending()) goto dispatch_exception;  // fuel fault
            }
          }
          pc = in.a;
          continue;
        }
        break;
      }
      case Op::BEQ:
      case Op::BNE:
      case Op::BLT:
      case Op::BLE:
      case Op::BGT:
      case Op::BGE: {
        Slot b = st[--frame.sp];
        Slot a = st[--frame.sp];
        auto cmp = [&](auto x, auto y) {
          switch (in.op) {
            case Op::BEQ: return x == y;
            case Op::BNE: return x != y;
            case Op::BLT: return x < y;
            case Op::BLE: return x <= y;
            case Op::BGT: return x > y;
            default: return x >= y;
          }
        };
        bool taken;
        switch (in.type) {
          case ValType::I32: taken = cmp(a.i32, b.i32); break;
          case ValType::I64: taken = cmp(a.i64, b.i64); break;
          case ValType::F32: taken = cmp(a.f32, b.f32); break;
          case ValType::F64: taken = cmp(a.f64, b.f64); break;
          default:
            taken = in.op == Op::BEQ ? a.ref == b.ref : a.ref != b.ref;
            break;
        }
        if (taken) {
          if (in.a <= pc) {
            ++backedges;
            frame.pc = in.a;
            vm_.safepoint_poll(ctx);
            if (backedges == pulse_next) {
              if (pulse(in.a)) return osr_result;
              if (ctx.has_pending()) goto dispatch_exception;  // fuel fault
            }
          }
          pc = in.a;
          continue;
        }
        break;
      }

      case Op::CONV_I4:
      case Op::CONV_I8:
      case Op::CONV_R4:
      case Op::CONV_R8:
      case Op::CONV_I1:
      case Op::CONV_U1:
      case Op::CONV_I2:
      case Op::CONV_U2: {
        Slot& a = st[frame.sp - 1];
        const bool is_float = in.type == ValType::F32 || in.type == ValType::F64;
        double fv = 0;
        std::int64_t iv = 0;
        switch (in.type) {
          case ValType::I32: iv = a.i32; fv = a.i32; break;
          case ValType::I64: iv = a.i64; fv = static_cast<double>(a.i64); break;
          case ValType::F32: fv = a.f32; break;
          default: fv = a.f64; break;
        }
        switch (in.op) {
          case Op::CONV_I4:
            a = Slot::from_i32(is_float ? arith::f_to_i32(fv)
                                        : static_cast<std::int32_t>(iv));
            break;
          case Op::CONV_I8:
            a = Slot::from_i64(is_float ? arith::f_to_i64(fv) : iv);
            break;
          case Op::CONV_R4:
            a = Slot::from_f32(is_float ? static_cast<float>(fv)
                                        : static_cast<float>(iv));
            break;
          case Op::CONV_R8:
            a = Slot::from_f64(is_float ? fv : static_cast<double>(iv));
            break;
          case Op::CONV_I1: {
            const auto x = is_float ? arith::f_to_i32(fv) : static_cast<std::int32_t>(iv);
            a = Slot::from_i32(static_cast<std::int8_t>(x));
            break;
          }
          case Op::CONV_U1: {
            const auto x = is_float ? arith::f_to_i32(fv) : static_cast<std::int32_t>(iv);
            a = Slot::from_i32(static_cast<std::uint8_t>(x));
            break;
          }
          case Op::CONV_I2: {
            const auto x = is_float ? arith::f_to_i32(fv) : static_cast<std::int32_t>(iv);
            a = Slot::from_i32(static_cast<std::int16_t>(x));
            break;
          }
          default: {
            const auto x = is_float ? arith::f_to_i32(fv) : static_cast<std::int32_t>(iv);
            a = Slot::from_i32(static_cast<std::uint16_t>(x));
            break;
          }
        }
        break;
      }

      case Op::CALL: {
        frame.pc = pc;
        vm_.safepoint_poll(ctx);
        const MethodDef& callee = mod.method(in.a);
        const std::size_t argc = callee.sig.params.size();
        // Tiered mode routes calls through the engine so a hot callee runs
        // on its promoted tier; Single mode keeps the direct recursion.
        Slot* cargs = st + frame.sp - static_cast<std::int32_t>(argc);
        const Slot r = tiered_ ? engine_.call(ctx, in.a, cargs)
                               : exec(ctx, callee, cargs);
        if (ctx.has_pending()) goto dispatch_exception;
        frame.sp -= static_cast<std::int32_t>(argc);
        if (callee.sig.ret != ValType::None) st[frame.sp++] = r;
        break;
      }
      case Op::CALLINTR: {
        frame.pc = pc;
        const IntrinsicDef& d = intrinsic(in.a);
        const std::size_t argc = d.sig.params.size();
        Slot r;
        d.fn(ctx, st + frame.sp - static_cast<std::int32_t>(argc), &r);
        if (ctx.has_pending()) goto dispatch_exception;
        frame.sp -= static_cast<std::int32_t>(argc);
        if (d.sig.ret != ValType::None) st[frame.sp++] = r;
        break;
      }
      case Op::RET:
        if (m.sig.ret != ValType::None) result = st[frame.sp - 1];
        return result;  // frame_exit tears down

      case Op::NEWOBJ: {
        frame.pc = pc;
        ObjRef obj = vm_.heap().alloc_instance(in.a, &ctx.tlab);
        if (obj == nullptr) {
          BASE_THROW(mod.out_of_memory_class(), "allocation budget exhausted");
        }
        st[frame.sp++] = Slot::from_ref(obj);
        break;
      }
      case Op::LDFLD: {
        ObjRef obj = st[frame.sp - 1].ref;
        if (obj == nullptr) BASE_THROW(mod.null_reference_class(), "ldfld");
        st[frame.sp - 1] = obj->fields()[in.a];
        break;
      }
      case Op::STFLD: {
        Slot v = st[--frame.sp];
        ObjRef obj = st[--frame.sp].ref;
        if (obj == nullptr) BASE_THROW(mod.null_reference_class(), "stfld");
        obj->fields()[in.a] = v;
        if (in.type == ValType::Ref) gc_write_barrier(obj);
        break;
      }
      case Op::LDSFLD:
        st[frame.sp++] = mod.statics(in.b)[in.a];
        break;
      case Op::STSFLD:
        mod.statics(in.b)[in.a] = st[--frame.sp];
        break;

      case Op::NEWARR: {
        frame.pc = pc;
        const std::int32_t len = st[frame.sp - 1].i32;
        if (len < 0) BASE_THROW(mod.index_range_class(), "negative array size");
        ObjRef arr = vm_.heap().alloc_array(in.type, len, &ctx.tlab);
        if (arr == nullptr) {
          BASE_THROW(mod.out_of_memory_class(), "allocation budget exhausted");
        }
        st[frame.sp - 1] = Slot::from_ref(arr);
        break;
      }
      case Op::LDLEN: {
        ObjRef arr = st[frame.sp - 1].ref;
        if (arr == nullptr) BASE_THROW(mod.null_reference_class(), "ldlen");
        st[frame.sp - 1] = Slot::from_i32(arr->length);
        break;
      }
      case Op::LDELEM: {
        const std::int32_t idx = st[--frame.sp].i32;
        ObjRef arr = st[frame.sp - 1].ref;
        if (arr == nullptr) BASE_THROW(mod.null_reference_class(), "ldelem");
        if (idx < 0 || idx >= arr->length) {
          BASE_THROW(mod.index_range_class(), "index out of range");
        }
        Slot v;
        switch (in.type) {
          case ValType::I32: v = Slot::from_i32(arr->i32_data()[idx]); break;
          case ValType::I64: v = Slot::from_i64(arr->i64_data()[idx]); break;
          case ValType::F32: v = Slot::from_f32(arr->f32_data()[idx]); break;
          case ValType::F64: v = Slot::from_f64(arr->f64_data()[idx]); break;
          default: v = Slot::from_ref(arr->ref_data()[idx]); break;
        }
        st[frame.sp - 1] = v;
        break;
      }
      case Op::STELEM: {
        Slot v = st[--frame.sp];
        const std::int32_t idx = st[--frame.sp].i32;
        ObjRef arr = st[--frame.sp].ref;
        if (arr == nullptr) BASE_THROW(mod.null_reference_class(), "stelem");
        if (idx < 0 || idx >= arr->length) {
          BASE_THROW(mod.index_range_class(), "index out of range");
        }
        switch (in.type) {
          case ValType::I32: arr->i32_data()[idx] = v.i32; break;
          case ValType::I64: arr->i64_data()[idx] = v.i64; break;
          case ValType::F32: arr->f32_data()[idx] = v.f32; break;
          case ValType::F64: arr->f64_data()[idx] = v.f64; break;
          default:
            arr->ref_data()[idx] = v.ref;
            gc_write_barrier(arr);
            break;
        }
        break;
      }
      case Op::NEWMAT: {
        frame.pc = pc;
        const std::int32_t cols = st[frame.sp - 1].i32;
        const std::int32_t rows = st[frame.sp - 2].i32;
        if (rows < 0 || cols < 0) {
          BASE_THROW(mod.index_range_class(), "negative matrix size");
        }
        ObjRef mat = vm_.heap().alloc_matrix2(in.type, rows, cols, &ctx.tlab);
        if (mat == nullptr) {
          BASE_THROW(mod.out_of_memory_class(), "allocation budget exhausted");
        }
        frame.sp -= 1;
        st[frame.sp - 1] = Slot::from_ref(mat);
        break;
      }
      case Op::LDELEM2: {
        const std::int32_t c = st[--frame.sp].i32;
        const std::int32_t r = st[--frame.sp].i32;
        ObjRef mat = st[frame.sp - 1].ref;
        if (mat == nullptr) BASE_THROW(mod.null_reference_class(), "ldelem2");
        if (r < 0 || r >= mat->length || c < 0 || c >= mat->cols) {
          BASE_THROW(mod.index_range_class(), "matrix index out of range");
        }
        const std::int64_t i = static_cast<std::int64_t>(r) * mat->cols + c;
        Slot v;
        switch (in.type) {
          case ValType::I32: v = Slot::from_i32(mat->i32_data()[i]); break;
          case ValType::I64: v = Slot::from_i64(mat->i64_data()[i]); break;
          case ValType::F32: v = Slot::from_f32(mat->f32_data()[i]); break;
          case ValType::F64: v = Slot::from_f64(mat->f64_data()[i]); break;
          default: v = Slot::from_ref(mat->ref_data()[i]); break;
        }
        st[frame.sp - 1] = v;
        break;
      }
      case Op::STELEM2: {
        Slot v = st[--frame.sp];
        const std::int32_t c = st[--frame.sp].i32;
        const std::int32_t r = st[--frame.sp].i32;
        ObjRef mat = st[--frame.sp].ref;
        if (mat == nullptr) BASE_THROW(mod.null_reference_class(), "stelem2");
        if (r < 0 || r >= mat->length || c < 0 || c >= mat->cols) {
          BASE_THROW(mod.index_range_class(), "matrix index out of range");
        }
        const std::int64_t i = static_cast<std::int64_t>(r) * mat->cols + c;
        switch (in.type) {
          case ValType::I32: mat->i32_data()[i] = v.i32; break;
          case ValType::I64: mat->i64_data()[i] = v.i64; break;
          case ValType::F32: mat->f32_data()[i] = v.f32; break;
          case ValType::F64: mat->f64_data()[i] = v.f64; break;
          default:
            mat->ref_data()[i] = v.ref;
            gc_write_barrier(mat);
            break;
        }
        break;
      }
      case Op::LDMATROWS:
      case Op::LDMATCOLS: {
        ObjRef mat = st[frame.sp - 1].ref;
        if (mat == nullptr) BASE_THROW(mod.null_reference_class(), "ldmat");
        st[frame.sp - 1] = Slot::from_i32(
            in.op == Op::LDMATROWS ? mat->length : mat->cols);
        break;
      }

      case Op::BOX: {
        frame.pc = pc;
        ObjRef box = vm_.heap().alloc_box(in.type, st[frame.sp - 1], &ctx.tlab);
        if (box == nullptr) {
          BASE_THROW(mod.out_of_memory_class(), "allocation budget exhausted");
        }
        st[frame.sp - 1] = Slot::from_ref(box);
        break;
      }
      case Op::UNBOX: {
        ObjRef box = st[frame.sp - 1].ref;
        if (box == nullptr) BASE_THROW(mod.null_reference_class(), "unbox");
        if (box->kind != ObjKind::Boxed || box->elem != in.type) {
          BASE_THROW(mod.invalid_cast_class(), "unbox type mismatch");
        }
        st[frame.sp - 1] = box->fields()[0];
        break;
      }

      case Op::THROW: {
        ObjRef exc = st[--frame.sp].ref;
        if (exc == nullptr) BASE_THROW(mod.null_reference_class(), "throw null");
        frame.pc = pc;
        ctx.pending_exception = exc;
        goto dispatch_exception;
      }
      case Op::LEAVE: {
        const UnwindAction a = uw.on_leave(m, pc, in.a);
        frame.sp = 0;
        pc = a.pc;
        continue;
      }
      case Op::ENDFINALLY: {
        const UnwindAction a = uw.on_endfinally(mod, m);
        switch (a.kind) {
          case UnwindAction::Kind::Resume:
          case UnwindAction::Kind::EnterFinally:
            frame.sp = 0;
            pc = a.pc;
            continue;
          case UnwindAction::Kind::EnterCatch:
            frame.sp = 0;
            st[frame.sp++] = Slot::from_ref(uw.exception());
            pc = a.pc;
            continue;
          case UnwindAction::Kind::Propagate:
            ctx.pending_exception = uw.exception();
            return result;  // frame_exit tears down
        }
        break;
      }

      case Op::COUNT_:
        break;
    }
    ++pc;
    continue;

  dispatch_exception: {
    ObjRef exc = ctx.pending_exception;
    ctx.pending_exception = nullptr;
    const UnwindAction a = uw.on_throw(mod, m, pc, exc);
    switch (a.kind) {
      case UnwindAction::Kind::EnterCatch:
        frame.sp = 0;
        st[frame.sp++] = Slot::from_ref(uw.exception());
        pc = a.pc;
        continue;
      case UnwindAction::Kind::EnterFinally:
        frame.sp = 0;
        pc = a.pc;
        continue;
      default:
        ctx.pending_exception = exc;
        return result;  // frame_exit tears down
    }
  }
  }
}

#undef BASE_THROW

}  // namespace

std::unique_ptr<TierBackend> make_baseline_backend(VirtualMachine& vm,
                                                   TieredEngine& engine) {
  return std::make_unique<BaselineBackend>(vm, engine);
}

}  // namespace hpcnet::vm

#include "vm/disasm.hpp"

#include <cstdio>

#include "vm/regcompile.hpp"

namespace hpcnet::vm {

std::string disassemble_cil(const Module& module, std::int32_t method_id) {
  const MethodDef& m = module.method(method_id);
  std::string s;
  s += "; " + m.name + " (";
  for (std::size_t i = 0; i < m.sig.params.size(); ++i) {
    if (i > 0) s += ", ";
    s += to_string(m.sig.params[i]);
  }
  s += ") -> ";
  s += to_string(m.sig.ret);
  s += "\n";
  for (std::size_t i = 0; i < m.locals.size(); ++i) {
    s += ";   .local " + std::to_string(i) + " : " + to_string(m.locals[i]) +
         "\n";
  }
  char head[32];
  for (std::size_t pc = 0; pc < m.code.size(); ++pc) {
    std::snprintf(head, sizeof head, "IL_%04zu: ", pc);
    s += head;
    s += to_string(m.code[pc]);
    s += "\n";
  }
  for (const ExHandler& h : m.handlers) {
    s += h.kind == HandlerKind::Catch ? ";  .catch " : ";  .finally ";
    s += "[" + std::to_string(h.try_begin) + ", " + std::to_string(h.try_end) +
         ") -> " + std::to_string(h.handler);
    if (h.kind == HandlerKind::Catch) {
      s += " (" + module.klass(h.catch_class).name + ")";
    }
    s += "\n";
  }
  return s;
}

std::string disassemble_compiled(VirtualMachine& vm, std::int32_t method_id,
                                 const EngineProfile& profile) {
  regir::RCode rc = regir::compile(vm.module(), vm.module().method(method_id),
                                   profile.flags);
  return "; profile: " + profile.name + "\n" + regir::to_string(rc);
}

CodeQuality code_quality(VirtualMachine& vm, std::int32_t method_id,
                         const EngineProfile& profile) {
  CodeQuality q;
  const MethodDef& m = vm.module().method(method_id);
  q.cil_instructions = m.code.size();
  q.interp_dispatches = m.code.size();
  q.baseline_dispatches = m.code.size();
  regir::RCode rc = regir::compile(vm.module(), m, profile.flags);
  q.optimized_instructions = rc.code.size();
  return q;
}

}  // namespace hpcnet::vm

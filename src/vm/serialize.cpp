#include "vm/serialize.hpp"

#include <cstring>
#include <fstream>
#include <unordered_map>

#include "vm/execution.hpp"
#include "vm/heap.hpp"
#include "vm/intrinsics.hpp"
#include "vm/regir.hpp"
#include "vm/regir_ops.hpp"
#include "vm/veckernels.hpp"
#include "vm/verifier.hpp"

namespace hpcnet::vm {

namespace {

constexpr std::uint32_t kMagic = 0x48504331;  // "HPC1"

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void i32(std::int32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void raw(const void* p, std::size_t n) {
    const char* c = static_cast<const char*>(p);
    buf_.insert(buf_.end(), c, c + n);
  }
  std::vector<char> take() { return std::move(buf_); }

 private:
  std::vector<char> buf_;
};

class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}
  std::uint8_t u8() { return static_cast<std::uint8_t>(data_[need(1)]); }
  std::uint32_t u32() {
    std::uint32_t v;
    std::memcpy(&v, data_ + need(4), 4);
    return v;
  }
  std::int32_t i32() {
    std::int32_t v;
    std::memcpy(&v, data_ + need(4), 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    std::memcpy(&v, data_ + need(8), 8);
    return v;
  }
  const char* bytes(std::size_t n) { return data_ + need(n); }

 private:
  std::size_t need(std::size_t n) {
    if (pos_ + n > size_) throw SerializeError("truncated stream");
    const std::size_t at = pos_;
    pos_ += n;
    return at;
  }
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<char> serialize_graph(VirtualMachine& vm, ObjRef root) {
  // Assign record ids in discovery (BFS) order, then emit each record with
  // child references encoded as ids. Cycles terminate because ids are
  // assigned before children are visited.
  std::unordered_map<ObjRef, std::int32_t> ids;
  std::vector<ObjRef> order;
  auto id_of = [&](ObjRef o) -> std::int32_t {
    if (o == nullptr) return -1;
    auto it = ids.find(o);
    if (it != ids.end()) return it->second;
    const auto id = static_cast<std::int32_t>(order.size());
    ids.emplace(o, id);
    order.push_back(o);
    return id;
  };

  id_of(root);
  Writer w;
  w.u32(kMagic);
  // Object count back-patched at the end (discovery grows the list).
  std::size_t visited = 0;
  Writer body;
  while (visited < order.size()) {
    ObjRef obj = order[visited++];
    body.u8(static_cast<std::uint8_t>(obj->kind));
    switch (obj->kind) {
      case ObjKind::Instance: {
        body.i32(obj->klass);
        const auto& cls = vm.module().klass(obj->klass);
        body.i32(static_cast<std::int32_t>(cls.fields.size()));
        for (std::size_t i = 0; i < cls.fields.size(); ++i) {
          const Slot s = obj->fields()[i];
          if (cls.fields[i].type == ValType::Ref) {
            body.i32(id_of(s.ref));
          } else {
            body.u64(s.raw);
          }
        }
        break;
      }
      case ObjKind::Array: {
        body.u8(static_cast<std::uint8_t>(obj->elem));
        body.i32(obj->length);
        if (obj->elem == ValType::Ref) {
          for (std::int32_t i = 0; i < obj->length; ++i) {
            body.i32(id_of(obj->ref_data()[i]));
          }
        } else {
          body.raw(obj->data(),
                   static_cast<std::size_t>(obj->length) * elem_size(obj->elem));
        }
        break;
      }
      case ObjKind::Matrix2: {
        body.u8(static_cast<std::uint8_t>(obj->elem));
        body.i32(obj->length);
        body.i32(obj->cols);
        const std::size_t n =
            static_cast<std::size_t>(obj->length) * static_cast<std::size_t>(obj->cols);
        if (obj->elem == ValType::Ref) {
          for (std::size_t i = 0; i < n; ++i) body.i32(id_of(obj->ref_data()[i]));
        } else {
          body.raw(obj->data(), n * elem_size(obj->elem));
        }
        break;
      }
      case ObjKind::Boxed: {
        body.u8(static_cast<std::uint8_t>(obj->elem));
        body.u64(obj->fields()[0].raw);
        break;
      }
      case ObjKind::String: {
        body.i32(obj->length);
        body.raw(obj->chars(), static_cast<std::size_t>(obj->length));
        break;
      }
    }
  }
  w.u32(static_cast<std::uint32_t>(order.size()));
  std::vector<char> head = w.take();
  std::vector<char> tail = body.take();
  head.insert(head.end(), tail.begin(), tail.end());
  return head;
}

ObjRef deserialize_graph(VirtualMachine& vm, VMContext& ctx, const char* data,
                         std::size_t size) {
  Reader r(data, size);
  if (r.u32() != kMagic) throw SerializeError("bad magic");
  const std::uint32_t count = r.u32();
  if (count == 0) return nullptr;

  // Pass 1: allocate shells (pinned so an allocation-triggered GC can't
  // reclaim them before they are linked). Ref fields are patched in pass 2
  // via a fixup list because a child may appear later in the stream.
  struct Fixup {
    ObjRef obj;
    std::size_t slot;   // field/element index
    std::int32_t target;
  };
  std::vector<ObjRef> objs;
  std::vector<Fixup> fixups;
  objs.reserve(count);

  Heap& heap = vm.heap();
  struct PinAll {
    VirtualMachine& vm;
    std::vector<ObjRef>& objs;
    ~PinAll() {
      for (ObjRef o : objs) vm.unpin(o);
    }
  } pin_guard{vm, objs};

  for (std::uint32_t id = 0; id < count; ++id) {
    const auto kind = static_cast<ObjKind>(r.u8());
    ObjRef obj = nullptr;
    switch (kind) {
      case ObjKind::Instance: {
        const std::int32_t klass = r.i32();
        if (klass < 0 ||
            static_cast<std::size_t>(klass) >= vm.module().class_count()) {
          throw SerializeError("bad class id");
        }
        const std::int32_t nfields = r.i32();
        const auto& cls = vm.module().klass(klass);
        if (static_cast<std::size_t>(nfields) != cls.fields.size()) {
          throw SerializeError("field count mismatch");
        }
        obj = heap.alloc_instance(klass, &ctx.tlab);
        if (obj == nullptr) throw SerializeError("allocation budget exhausted");
        vm.pin(obj);
        objs.push_back(obj);
        for (std::size_t i = 0; i < cls.fields.size(); ++i) {
          if (cls.fields[i].type == ValType::Ref) {
            fixups.push_back({obj, i, r.i32()});
          } else {
            obj->fields()[i].raw = r.u64();
          }
        }
        break;
      }
      case ObjKind::Array: {
        const auto elem = static_cast<ValType>(r.u8());
        const std::int32_t len = r.i32();
        if (len < 0) throw SerializeError("bad array length");
        obj = heap.alloc_array(elem, len, &ctx.tlab);
        if (obj == nullptr) throw SerializeError("allocation budget exhausted");
        vm.pin(obj);
        objs.push_back(obj);
        if (elem == ValType::Ref) {
          for (std::int32_t i = 0; i < len; ++i) {
            fixups.push_back({obj, static_cast<std::size_t>(i), r.i32()});
          }
        } else {
          const std::size_t bytes =
              static_cast<std::size_t>(len) * elem_size(elem);
          std::memcpy(obj->data(), r.bytes(bytes), bytes);
        }
        break;
      }
      case ObjKind::Matrix2: {
        const auto elem = static_cast<ValType>(r.u8());
        const std::int32_t rows = r.i32();
        const std::int32_t cols = r.i32();
        if (rows < 0 || cols < 0) throw SerializeError("bad matrix dims");
        obj = heap.alloc_matrix2(elem, rows, cols, &ctx.tlab);
        if (obj == nullptr) throw SerializeError("allocation budget exhausted");
        vm.pin(obj);
        objs.push_back(obj);
        const std::size_t n =
            static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
        if (elem == ValType::Ref) {
          for (std::size_t i = 0; i < n; ++i) fixups.push_back({obj, i, r.i32()});
        } else {
          const std::size_t bytes = n * elem_size(elem);
          std::memcpy(obj->data(), r.bytes(bytes), bytes);
        }
        break;
      }
      case ObjKind::Boxed: {
        const auto elem = static_cast<ValType>(r.u8());
        Slot s;
        s.raw = r.u64();
        obj = heap.alloc_box(elem, s, &ctx.tlab);
        if (obj == nullptr) throw SerializeError("allocation budget exhausted");
        vm.pin(obj);
        objs.push_back(obj);
        break;
      }
      case ObjKind::String: {
        const std::int32_t len = r.i32();
        if (len < 0) throw SerializeError("bad string length");
        obj = heap.alloc_string(
            std::string(r.bytes(static_cast<std::size_t>(len)),
                        static_cast<std::size_t>(len)),
            &ctx.tlab);
        if (obj == nullptr) throw SerializeError("allocation budget exhausted");
        vm.pin(obj);
        objs.push_back(obj);
        break;
      }
      default:
        throw SerializeError("bad record kind");
    }
  }

  // Pass 2: link references.
  for (const Fixup& f : fixups) {
    ObjRef target = nullptr;
    if (f.target >= 0) {
      if (static_cast<std::uint32_t>(f.target) >= count) {
        throw SerializeError("bad reference id");
      }
      target = objs[static_cast<std::size_t>(f.target)];
    }
    if (f.obj->kind == ObjKind::Instance) {
      f.obj->fields()[f.slot] = Slot::from_ref(target);
    } else {
      f.obj->ref_data()[f.slot] = target;
    }
    // A minor GC between the allocation passes can promote earlier-created
    // objects, making these fixups genuine old->young stores.
    gc_write_barrier(f.obj);
  }
  return objs[0];
}

ObjRef serialize_to_string(VirtualMachine& vm, VMContext& ctx, ObjRef root) {
  std::vector<char> bytes = serialize_graph(vm, root);
  // Allocate through the caller's TLAB, never the heap-shared one: a metered
  // job must not mint its output blob unaccounted (tenant budget audit).
  ObjRef blob = vm.heap().alloc_string(
      std::string(bytes.data(), bytes.size()), &ctx.tlab);
  if (blob == nullptr) throw SerializeError("allocation budget exhausted");
  return blob;
}

ObjRef deserialize_from_string(VirtualMachine& vm, VMContext& ctx,
                               ObjRef blob) {
  if (blob == nullptr || blob->kind != ObjKind::String) {
    throw SerializeError("deserialize: not a byte blob");
  }
  return deserialize_graph(vm, ctx, blob->chars(),
                           static_cast<std::size_t>(blob->length));
}

void serialize_to_file(VirtualMachine& vm, ObjRef root,
                       const std::string& path) {
  std::vector<char> bytes = serialize_graph(vm, root);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw SerializeError("cannot open " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

ObjRef deserialize_from_file(VirtualMachine& vm, VMContext& ctx,
                             const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializeError("cannot open " + path);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  return deserialize_graph(vm, ctx, bytes.data(), bytes.size());
}

// --- Code archives (snapshot warm start) ----------------------------------

namespace {

constexpr std::uint32_t kArchiveMagic = 0x48504341;  // "HPCA"
constexpr std::uint32_t kArchiveVersion = 1;
// The checksum covers everything after its own field (byte offset 16).
constexpr std::size_t kChecksumStart = 16;

std::uint64_t fnv1a(const char* p, std::size_t n) {
  std::uint64_t h = 1469598103934665603ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= static_cast<unsigned char>(p[i]);
    h *= 1099511628211ull;
  }
  return h;
}

void put_str(Writer& w, const std::string& s) {
  w.u32(static_cast<std::uint32_t>(s.size()));
  w.raw(s.data(), s.size());
}

// Reader::bytes() throws before anything is allocated, so a hostile length
// can never drive a giant allocation — the stream must actually contain it.
std::string get_str(Reader& r) {
  const std::uint32_t n = r.u32();
  const char* p = r.bytes(n);
  return std::string(p, n);
}

ValType get_valtype(Reader& r, const char* what) {
  const std::uint8_t v = r.u8();
  if (v > static_cast<std::uint8_t>(ValType::Ref)) {
    throw SerializeError(std::string("archive: bad ValType in ") + what);
  }
  return static_cast<ValType>(v);
}

[[noreturn]] void bad(const std::string& what) {
  throw SerializeError("archive: " + what);
}

// -- IL body ----------------------------------------------------------------
// Only the raw fields travel: deserialization re-runs verify_body against
// the local module, so verifier outputs (stack maps, reachability, the
// stack-derived type annotations) are recomputed locally and never trusted
// from the wire. The per-instruction type byte IS serialized — for newarr/
// ldelem/conv/box-style ops it is a builder-set semantic input the verifier
// validates rather than infers — but on every stack-derived op the verifier
// overwrites it during simulation, so a hostile value can only fail
// verification, never leak through.

void put_body(Writer& w, const MethodDef& m) {
  put_str(w, m.name);
  w.i32(m.id);
  w.u32(static_cast<std::uint32_t>(m.sig.params.size()));
  for (ValType t : m.sig.params) w.u8(static_cast<std::uint8_t>(t));
  w.u8(static_cast<std::uint8_t>(m.sig.ret));
  w.u32(static_cast<std::uint32_t>(m.locals.size()));
  for (ValType t : m.locals) w.u8(static_cast<std::uint8_t>(t));
  w.u32(static_cast<std::uint32_t>(m.code.size()));
  for (const Instr& in : m.code) {
    w.u8(static_cast<std::uint8_t>(in.op));
    w.u8(static_cast<std::uint8_t>(in.type));
    w.i32(in.a);
    w.i32(in.b);
    w.u64(static_cast<std::uint64_t>(in.imm.i64));
  }
  w.u32(static_cast<std::uint32_t>(m.handlers.size()));
  for (const ExHandler& h : m.handlers) {
    w.u8(static_cast<std::uint8_t>(h.kind));
    w.i32(h.try_begin);
    w.i32(h.try_end);
    w.i32(h.handler);
    w.i32(h.catch_class);
  }
}

MethodDef get_body(Reader& r) {
  MethodDef m;
  m.name = get_str(r);
  m.id = r.i32();
  const std::uint32_t nparams = r.u32();
  for (std::uint32_t i = 0; i < nparams; ++i) {
    m.sig.params.push_back(get_valtype(r, "param"));
  }
  m.sig.ret = get_valtype(r, "return type");
  const std::uint32_t nlocals = r.u32();
  for (std::uint32_t i = 0; i < nlocals; ++i) {
    m.locals.push_back(get_valtype(r, "local"));
  }
  const std::uint32_t ncode = r.u32();
  for (std::uint32_t i = 0; i < ncode; ++i) {
    Instr in;
    const std::uint8_t op = r.u8();
    if (op >= static_cast<std::uint8_t>(Op::COUNT_)) bad("bad IL opcode");
    in.op = static_cast<Op>(op);
    in.type = get_valtype(r, "instruction type");
    in.a = r.i32();
    in.b = r.i32();
    in.imm.i64 = static_cast<std::int64_t>(r.u64());
    m.code.push_back(in);
  }
  const std::uint32_t nhandlers = r.u32();
  for (std::uint32_t i = 0; i < nhandlers; ++i) {
    ExHandler h;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(HandlerKind::Finally)) {
      bad("bad handler kind");
    }
    h.kind = static_cast<HandlerKind>(kind);
    h.try_begin = r.i32();
    h.try_end = r.i32();
    h.handler = r.i32();
    h.catch_class = r.i32();
    m.handlers.push_back(h);
  }
  return m;
}

// -- Compiled body ----------------------------------------------------------

void put_rcode(Writer& w, const regir::RCode& rc) {
  put_body(w, *rc.body);
  w.i32(rc.num_regs);
  w.i32(rc.slot_regs);
  w.u32(static_cast<std::uint32_t>(rc.code.size()));
  for (const regir::RInstr& in : rc.code) {
    w.u8(static_cast<std::uint8_t>(in.op));
    w.u8(in.flags);
    w.i32(in.d);
    w.i32(in.a);
    w.i32(in.b);
    w.i32(in.il_pc);
    w.u64(static_cast<std::uint64_t>(in.imm.i64));
  }
  w.u32(static_cast<std::uint32_t>(rc.args_pool.size()));
  for (std::int32_t v : rc.args_pool) w.i32(v);
  w.u32(static_cast<std::uint32_t>(rc.ref_regs.size()));
  for (std::int32_t v : rc.ref_regs) w.i32(v);
  w.u32(static_cast<std::uint32_t>(rc.reg_types.size()));
  for (ValType t : rc.reg_types) w.u8(static_cast<std::uint8_t>(t));
  w.u32(static_cast<std::uint32_t>(rc.il2rpc.size()));
  for (std::int32_t v : rc.il2rpc) w.i32(v);
  w.u32(static_cast<std::uint32_t>(rc.handler_exc_reg.size()));
  for (std::int32_t v : rc.handler_exc_reg) w.i32(v);
  w.u32(static_cast<std::uint32_t>(rc.deopt_points.size()));
  for (const regir::RCode::DeoptPoint& d : rc.deopt_points) {
    w.i32(d.rpc);
    w.i32(d.il_pc);
    w.u32(static_cast<std::uint32_t>(d.stack_regs.size()));
    for (std::int32_t v : d.stack_regs) w.i32(v);
  }
  w.u32(static_cast<std::uint32_t>(rc.vec_loops.size()));
  for (const regir::RCode::VecLoop& v : rc.vec_loops) {
    w.i32(v.kernel);
    w.i32(v.ivar);
    w.i32(v.limit);
    w.i32(v.limit_arr);
    w.i32(v.arr0);
    w.i32(v.arr1);
    w.i32(v.arr2);
    w.i32(v.acc);
    w.i32(v.s0_reg);
    w.i32(v.s1_reg);
    w.u64(static_cast<std::uint64_t>(v.s0_bits));
    w.u64(static_cast<std::uint64_t>(v.s1_bits));
  }
}

/// Full structural validation of a deserialized compiled body: everything
/// the optimizing dispatch loop and the deopt/OSR machinery would otherwise
/// trust blindly. Throws SerializeError on any violation — runs BEFORE the
/// body is verified, so it only leans on raw sizes, never verifier outputs.
void validate_rcode(const regir::RCode& rc, const Module& module) {
  const std::size_t nregs = static_cast<std::size_t>(rc.num_regs);
  const std::size_t ncode = rc.code.size();
  const std::size_t il_size = rc.body->code.size();
  if (rc.num_regs <= 0) bad("non-positive register count");
  if (rc.slot_regs < 0 || static_cast<std::size_t>(rc.slot_regs) > nregs) {
    bad("slot_regs out of range");
  }
  if (rc.reg_types.size() != nregs) bad("reg_types length mismatch");
  if (rc.code.empty()) bad("empty compiled body");
  if (rc.il2rpc.size() != il_size + 1) bad("il2rpc length mismatch");
  if (rc.handler_exc_reg.size() != rc.body->handlers.size()) {
    bad("handler_exc_reg length mismatch");
  }
  const auto reg_ok = [&](std::int32_t reg) {
    return reg >= 0 && static_cast<std::size_t>(reg) < nregs;
  };
  const auto opt_reg_ok = [&](std::int32_t reg) {
    return reg == -1 || reg_ok(reg);
  };
  for (std::int32_t reg : rc.args_pool) {
    if (!reg_ok(reg)) bad("args_pool register out of range");
  }
  for (std::int32_t reg : rc.ref_regs) {
    if (!reg_ok(reg) || rc.reg_types[static_cast<std::size_t>(reg)] !=
                            ValType::Ref) {
      bad("ref_regs entry is not a ref register");
    }
  }
  for (std::int32_t rpc : rc.il2rpc) {
    if (rpc < 0 || static_cast<std::size_t>(rpc) > ncode) {
      bad("il2rpc target out of range");
    }
  }
  for (std::int32_t reg : rc.handler_exc_reg) {
    if (!opt_reg_ok(reg)) bad("handler_exc_reg out of range");
  }
  for (const regir::RInstr& in : rc.code) {
    if (static_cast<std::uint8_t>(in.op) >=
        static_cast<std::uint8_t>(regir::ROp::COUNT_)) {
      bad("bad register opcode");
    }
    if (in.il_pc < -1 || (in.il_pc >= 0 &&
                          static_cast<std::size_t>(in.il_pc) >= il_size)) {
      bad("il_pc out of range");
    }
    if (regir::is_branch(in.op) &&
        (in.d < 0 || static_cast<std::size_t>(in.d) >= ncode)) {
      bad("branch target out of range");
    }
    // Register operands, via the same role table every pass uses.
    const regir::Operands o = regir::operands_of(in, rc.args_pool);
    if (!opt_reg_ok(o.def)) bad("defined register out of range");
    for (int i = 0; i < o.nuses; ++i) {
      if (!reg_ok(o.uses[i])) bad("used register out of range");
    }
    switch (in.op) {
      case regir::ROp::LDSTR_R:
        if (in.a < 0 ||
            static_cast<std::size_t>(in.a) >= module.string_count()) {
          bad("string pool id out of range");
        }
        break;
      case regir::ROp::NEWOBJ_R:
        if (in.a < 0 ||
            static_cast<std::size_t>(in.a) >= module.class_count()) {
          bad("class id out of range");
        }
        break;
      case regir::ROp::LDFLD_R:
      case regir::ROp::STFLD_R:
        if (in.b < 0) bad("negative field index");
        break;
      case regir::ROp::LDSFLD_R:
      case regir::ROp::STSFLD_R:
        if (in.a < 0 ||
            static_cast<std::size_t>(in.a) >= module.class_count()) {
          bad("static class id out of range");
        }
        if (in.b < 0 || static_cast<std::size_t>(in.b) >=
                            module.klass(in.a).static_fields.size()) {
          bad("static field index out of range");
        }
        break;
      case regir::ROp::NEWARR_R:
        if (in.b < static_cast<std::int32_t>(ValType::I32) ||
            in.b > static_cast<std::int32_t>(ValType::Ref)) {
          bad("bad array element type");
        }
        break;
      case regir::ROp::BOX_R:
      case regir::ROp::UNBOX_R:
        if (in.b < static_cast<std::int32_t>(ValType::I32) ||
            in.b > static_cast<std::int32_t>(ValType::Ref)) {
          bad("bad boxed type");
        }
        break;
      case regir::ROp::NEWMAT_R:
        if (in.imm.i64 < static_cast<std::int64_t>(ValType::I32) ||
            in.imm.i64 > static_cast<std::int64_t>(ValType::Ref)) {
          bad("bad matrix element type");
        }
        break;
      case regir::ROp::CALL_R: {
        if (in.a < 0 ||
            static_cast<std::size_t>(in.a) >= module.method_count()) {
          bad("call target out of range");
        }
        const std::int64_t argc = in.imm.i64;
        if (argc < 0 ||
            argc != static_cast<std::int64_t>(
                        module.method(in.a).num_args())) {
          bad("call arity mismatch");
        }
        if (in.b < 0 || static_cast<std::size_t>(in.b) + argc >
                            rc.args_pool.size()) {
          bad("call argument window out of range");
        }
        break;
      }
      case regir::ROp::CALLINTR_R: {
        if (in.a < 0 || in.a >= I_COUNT_) bad("intrinsic id out of range");
        const std::int64_t argc = in.imm.i64;
        if (argc < 0 || in.b < 0 ||
            static_cast<std::size_t>(in.b) + argc > rc.args_pool.size()) {
          bad("intrinsic argument window out of range");
        }
        break;
      }
      case regir::ROp::MATH1_R8:
        if (regir::math1_fn(static_cast<std::int32_t>(in.imm.i64)) ==
            nullptr) {
          bad("unresolvable math1 intrinsic");
        }
        break;
      case regir::ROp::MATH2_R8:
        if (regir::math2_fn(static_cast<std::int32_t>(in.imm.i64)) ==
            nullptr) {
          bad("unresolvable math2 intrinsic");
        }
        break;
      case regir::ROp::VECLOOP:
        if (in.a < 0 ||
            static_cast<std::size_t>(in.a) >= rc.vec_loops.size()) {
          bad("vec_loops index out of range");
        }
        break;
      case regir::ROp::LEAVE_R:
        if (in.a < 0 || static_cast<std::size_t>(in.a) > il_size) {
          bad("leave target out of range");
        }
        break;
      default:
        break;
    }
  }
  std::int32_t prev_rpc = -1;
  for (const regir::RCode::DeoptPoint& d : rc.deopt_points) {
    if (d.rpc <= prev_rpc || static_cast<std::size_t>(d.rpc) >= ncode) {
      bad("deopt points not ascending within body");
    }
    prev_rpc = d.rpc;
    if (d.il_pc < 0 || static_cast<std::size_t>(d.il_pc) >= il_size) {
      bad("deopt il_pc out of range");
    }
    for (std::int32_t reg : d.stack_regs) {
      if (!reg_ok(reg)) bad("deopt stack register out of range");
    }
  }
  for (const regir::RCode::VecLoop& v : rc.vec_loops) {
    if (v.kernel < 0 || v.kernel >= veckernels::kCount_) {
      bad("vector kernel id out of range");
    }
    for (std::int32_t reg : {v.ivar, v.limit, v.limit_arr, v.arr0, v.arr1,
                             v.arr2, v.acc, v.s0_reg, v.s1_reg}) {
      if (!opt_reg_ok(reg)) bad("vector loop register out of range");
    }
  }
}

/// Reads one compiled body. Structural damage throws; a body whose IL fails
/// local re-verification returns null (the caller degrades the record).
std::shared_ptr<const regir::RCode> get_rcode(Reader& r, Module& module) {
  auto rc = std::make_shared<regir::RCode>();
  auto body = std::make_shared<MethodDef>(get_body(r));
  rc->num_regs = r.i32();
  rc->slot_regs = r.i32();
  const std::uint32_t ncode = r.u32();
  for (std::uint32_t i = 0; i < ncode; ++i) {
    regir::RInstr in;
    in.op = static_cast<regir::ROp>(r.u8());
    in.flags = r.u8();
    in.d = r.i32();
    in.a = r.i32();
    in.b = r.i32();
    in.il_pc = r.i32();
    in.imm.i64 = static_cast<std::int64_t>(r.u64());
    rc->code.push_back(in);
  }
  const std::uint32_t npool = r.u32();
  for (std::uint32_t i = 0; i < npool; ++i) rc->args_pool.push_back(r.i32());
  const std::uint32_t nrefs = r.u32();
  for (std::uint32_t i = 0; i < nrefs; ++i) rc->ref_regs.push_back(r.i32());
  const std::uint32_t ntypes = r.u32();
  for (std::uint32_t i = 0; i < ntypes; ++i) {
    rc->reg_types.push_back(get_valtype(r, "register type"));
  }
  const std::uint32_t nil2 = r.u32();
  for (std::uint32_t i = 0; i < nil2; ++i) rc->il2rpc.push_back(r.i32());
  const std::uint32_t nhex = r.u32();
  for (std::uint32_t i = 0; i < nhex; ++i) {
    rc->handler_exc_reg.push_back(r.i32());
  }
  const std::uint32_t ndeopt = r.u32();
  for (std::uint32_t i = 0; i < ndeopt; ++i) {
    regir::RCode::DeoptPoint d;
    d.rpc = r.i32();
    d.il_pc = r.i32();
    const std::uint32_t nstack = r.u32();
    for (std::uint32_t j = 0; j < nstack; ++j) {
      d.stack_regs.push_back(r.i32());
    }
    rc->deopt_points.push_back(std::move(d));
  }
  const std::uint32_t nvec = r.u32();
  for (std::uint32_t i = 0; i < nvec; ++i) {
    regir::RCode::VecLoop v;
    v.kernel = r.i32();
    v.ivar = r.i32();
    v.limit = r.i32();
    v.limit_arr = r.i32();
    v.arr0 = r.i32();
    v.arr1 = r.i32();
    v.arr2 = r.i32();
    v.acc = r.i32();
    v.s0_reg = r.i32();
    v.s1_reg = r.i32();
    v.s0_bits = static_cast<std::int64_t>(r.u64());
    v.s1_bits = static_cast<std::int64_t>(r.u64());
    rc->vec_loops.push_back(v);
  }
  rc->body = body;
  rc->method = rc->body.get();
  validate_rcode(*rc, module);
  // Re-verify the restored IL against the local module: fills types, stack
  // maps and reachability (which deopt continuations consume) from LOCAL
  // state. An unverifiable body is not an attack we need to distinguish
  // from a stale archive — both degrade to a cold compile.
  try {
    verify_body(module, *body);
  } catch (const VerifyError&) {
    return nullptr;
  }
  return rc;
}

}  // namespace

std::vector<char> serialize_archives(
    const std::vector<std::shared_ptr<const CodeArchive>>& archives) {
  Writer body;
  body.u32(static_cast<std::uint32_t>(archives.size()));
  for (const auto& ar : archives) {
    put_str(body, ar->profile());
    body.u32(static_cast<std::uint32_t>(ar->records().size()));
    for (const CodeArchive::MethodRecord& rec : ar->records()) {
      body.i32(rec.method_id);
      put_str(body, rec.name);
      body.u64(rec.il_hash);
      body.u8(rec.tier);
      body.u32(rec.hotness);
      body.u8(rec.code != nullptr ? 1 : 0);
      if (rec.code != nullptr) put_rcode(body, *rec.code);
    }
  }
  const std::vector<char> payload = body.take();
  Writer w;
  w.u32(kArchiveMagic);
  w.u32(kArchiveVersion);
  w.u64(fnv1a(payload.data(), payload.size()));
  w.raw(payload.data(), payload.size());
  return w.take();
}

std::vector<std::shared_ptr<const CodeArchive>> deserialize_archives(
    Module& module, const char* data, std::size_t size) {
  Reader r(data, size);
  if (r.u32() != kArchiveMagic) throw SerializeError("archive: bad magic");
  const std::uint32_t version = r.u32();
  if (version != kArchiveVersion) {
    throw SerializeError("archive: unsupported version " +
                         std::to_string(version));
  }
  const std::uint64_t want = r.u64();
  if (size < kChecksumStart ||
      fnv1a(data + kChecksumStart, size - kChecksumStart) != want) {
    throw SerializeError("archive: checksum mismatch");
  }
  std::vector<std::shared_ptr<const CodeArchive>> out;
  const std::uint32_t narchives = r.u32();
  for (std::uint32_t ai = 0; ai < narchives; ++ai) {
    std::string profile = get_str(r);
    std::vector<CodeArchive::MethodRecord> records;
    const std::uint32_t nrecords = r.u32();
    for (std::uint32_t ri = 0; ri < nrecords; ++ri) {
      CodeArchive::MethodRecord rec;
      rec.method_id = r.i32();
      rec.name = get_str(r);
      rec.il_hash = r.u64();
      rec.tier = r.u8();
      rec.hotness = r.u32();
      if (rec.tier > static_cast<std::uint8_t>(Tier::Optimizing)) {
        throw SerializeError("archive: bad tier byte");
      }
      if (r.u8() != 0) rec.code = get_rcode(r, module);
      if (rec.code == nullptr &&
          rec.tier >= static_cast<std::uint8_t>(Tier::Optimizing)) {
        // Unverifiable-body degradation path: never dispatch to a tier
        // whose compiled artifact is absent.
        rec.tier = static_cast<std::uint8_t>(Tier::Baseline);
      }
      records.push_back(std::move(rec));
    }
    out.push_back(std::make_shared<const CodeArchive>(std::move(profile),
                                                      std::move(records)));
  }
  return out;
}

void save_snapshot(VirtualMachine& vm, const std::string& path) {
  std::vector<std::shared_ptr<const CodeArchive>> archives;
  for (const std::string& key : vm.code_cache_keys()) {
    if (key == "<verify>") continue;  // latches only, nothing to snapshot
    std::shared_ptr<const CodeArchive> ar = capture_archive(vm, key);
    if (!ar->records().empty()) archives.push_back(std::move(ar));
  }
  const std::vector<char> bytes = serialize_archives(archives);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw SerializeError("cannot open " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  if (!out) throw SerializeError("cannot write " + path);
}

ArchiveStats load_snapshot(VirtualMachine& vm, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializeError("cannot open " + path);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  ArchiveStats total;
  for (const auto& ar :
       deserialize_archives(vm.module(), bytes.data(), bytes.size())) {
    const ArchiveStats s = attach_archive(vm, ar);
    total.restored += s.restored;
    total.missed += s.missed;
  }
  return total;
}

}  // namespace hpcnet::vm

#include "vm/serialize.hpp"

#include <cstring>
#include <fstream>
#include <unordered_map>

#include "vm/execution.hpp"
#include "vm/heap.hpp"

namespace hpcnet::vm {

namespace {

constexpr std::uint32_t kMagic = 0x48504331;  // "HPC1"

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, 4); }
  void i32(std::int32_t v) { raw(&v, 4); }
  void u64(std::uint64_t v) { raw(&v, 8); }
  void raw(const void* p, std::size_t n) {
    const char* c = static_cast<const char*>(p);
    buf_.insert(buf_.end(), c, c + n);
  }
  std::vector<char> take() { return std::move(buf_); }

 private:
  std::vector<char> buf_;
};

class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}
  std::uint8_t u8() { return static_cast<std::uint8_t>(data_[need(1)]); }
  std::uint32_t u32() {
    std::uint32_t v;
    std::memcpy(&v, data_ + need(4), 4);
    return v;
  }
  std::int32_t i32() {
    std::int32_t v;
    std::memcpy(&v, data_ + need(4), 4);
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    std::memcpy(&v, data_ + need(8), 8);
    return v;
  }
  const char* bytes(std::size_t n) { return data_ + need(n); }

 private:
  std::size_t need(std::size_t n) {
    if (pos_ + n > size_) throw SerializeError("truncated stream");
    const std::size_t at = pos_;
    pos_ += n;
    return at;
  }
  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<char> serialize_graph(VirtualMachine& vm, ObjRef root) {
  // Assign record ids in discovery (BFS) order, then emit each record with
  // child references encoded as ids. Cycles terminate because ids are
  // assigned before children are visited.
  std::unordered_map<ObjRef, std::int32_t> ids;
  std::vector<ObjRef> order;
  auto id_of = [&](ObjRef o) -> std::int32_t {
    if (o == nullptr) return -1;
    auto it = ids.find(o);
    if (it != ids.end()) return it->second;
    const auto id = static_cast<std::int32_t>(order.size());
    ids.emplace(o, id);
    order.push_back(o);
    return id;
  };

  id_of(root);
  Writer w;
  w.u32(kMagic);
  // Object count back-patched at the end (discovery grows the list).
  std::size_t visited = 0;
  Writer body;
  while (visited < order.size()) {
    ObjRef obj = order[visited++];
    body.u8(static_cast<std::uint8_t>(obj->kind));
    switch (obj->kind) {
      case ObjKind::Instance: {
        body.i32(obj->klass);
        const auto& cls = vm.module().klass(obj->klass);
        body.i32(static_cast<std::int32_t>(cls.fields.size()));
        for (std::size_t i = 0; i < cls.fields.size(); ++i) {
          const Slot s = obj->fields()[i];
          if (cls.fields[i].type == ValType::Ref) {
            body.i32(id_of(s.ref));
          } else {
            body.u64(s.raw);
          }
        }
        break;
      }
      case ObjKind::Array: {
        body.u8(static_cast<std::uint8_t>(obj->elem));
        body.i32(obj->length);
        if (obj->elem == ValType::Ref) {
          for (std::int32_t i = 0; i < obj->length; ++i) {
            body.i32(id_of(obj->ref_data()[i]));
          }
        } else {
          body.raw(obj->data(),
                   static_cast<std::size_t>(obj->length) * elem_size(obj->elem));
        }
        break;
      }
      case ObjKind::Matrix2: {
        body.u8(static_cast<std::uint8_t>(obj->elem));
        body.i32(obj->length);
        body.i32(obj->cols);
        const std::size_t n =
            static_cast<std::size_t>(obj->length) * static_cast<std::size_t>(obj->cols);
        if (obj->elem == ValType::Ref) {
          for (std::size_t i = 0; i < n; ++i) body.i32(id_of(obj->ref_data()[i]));
        } else {
          body.raw(obj->data(), n * elem_size(obj->elem));
        }
        break;
      }
      case ObjKind::Boxed: {
        body.u8(static_cast<std::uint8_t>(obj->elem));
        body.u64(obj->fields()[0].raw);
        break;
      }
      case ObjKind::String: {
        body.i32(obj->length);
        body.raw(obj->chars(), static_cast<std::size_t>(obj->length));
        break;
      }
    }
  }
  w.u32(static_cast<std::uint32_t>(order.size()));
  std::vector<char> head = w.take();
  std::vector<char> tail = body.take();
  head.insert(head.end(), tail.begin(), tail.end());
  return head;
}

ObjRef deserialize_graph(VirtualMachine& vm, VMContext& ctx, const char* data,
                         std::size_t size) {
  Reader r(data, size);
  if (r.u32() != kMagic) throw SerializeError("bad magic");
  const std::uint32_t count = r.u32();
  if (count == 0) return nullptr;

  // Pass 1: allocate shells (pinned so an allocation-triggered GC can't
  // reclaim them before they are linked). Ref fields are patched in pass 2
  // via a fixup list because a child may appear later in the stream.
  struct Fixup {
    ObjRef obj;
    std::size_t slot;   // field/element index
    std::int32_t target;
  };
  std::vector<ObjRef> objs;
  std::vector<Fixup> fixups;
  objs.reserve(count);

  Heap& heap = vm.heap();
  struct PinAll {
    VirtualMachine& vm;
    std::vector<ObjRef>& objs;
    ~PinAll() {
      for (ObjRef o : objs) vm.unpin(o);
    }
  } pin_guard{vm, objs};

  for (std::uint32_t id = 0; id < count; ++id) {
    const auto kind = static_cast<ObjKind>(r.u8());
    ObjRef obj = nullptr;
    switch (kind) {
      case ObjKind::Instance: {
        const std::int32_t klass = r.i32();
        if (klass < 0 ||
            static_cast<std::size_t>(klass) >= vm.module().class_count()) {
          throw SerializeError("bad class id");
        }
        const std::int32_t nfields = r.i32();
        const auto& cls = vm.module().klass(klass);
        if (static_cast<std::size_t>(nfields) != cls.fields.size()) {
          throw SerializeError("field count mismatch");
        }
        obj = heap.alloc_instance(klass, &ctx.tlab);
        if (obj == nullptr) throw SerializeError("allocation budget exhausted");
        vm.pin(obj);
        objs.push_back(obj);
        for (std::size_t i = 0; i < cls.fields.size(); ++i) {
          if (cls.fields[i].type == ValType::Ref) {
            fixups.push_back({obj, i, r.i32()});
          } else {
            obj->fields()[i].raw = r.u64();
          }
        }
        break;
      }
      case ObjKind::Array: {
        const auto elem = static_cast<ValType>(r.u8());
        const std::int32_t len = r.i32();
        if (len < 0) throw SerializeError("bad array length");
        obj = heap.alloc_array(elem, len, &ctx.tlab);
        if (obj == nullptr) throw SerializeError("allocation budget exhausted");
        vm.pin(obj);
        objs.push_back(obj);
        if (elem == ValType::Ref) {
          for (std::int32_t i = 0; i < len; ++i) {
            fixups.push_back({obj, static_cast<std::size_t>(i), r.i32()});
          }
        } else {
          const std::size_t bytes =
              static_cast<std::size_t>(len) * elem_size(elem);
          std::memcpy(obj->data(), r.bytes(bytes), bytes);
        }
        break;
      }
      case ObjKind::Matrix2: {
        const auto elem = static_cast<ValType>(r.u8());
        const std::int32_t rows = r.i32();
        const std::int32_t cols = r.i32();
        if (rows < 0 || cols < 0) throw SerializeError("bad matrix dims");
        obj = heap.alloc_matrix2(elem, rows, cols, &ctx.tlab);
        if (obj == nullptr) throw SerializeError("allocation budget exhausted");
        vm.pin(obj);
        objs.push_back(obj);
        const std::size_t n =
            static_cast<std::size_t>(rows) * static_cast<std::size_t>(cols);
        if (elem == ValType::Ref) {
          for (std::size_t i = 0; i < n; ++i) fixups.push_back({obj, i, r.i32()});
        } else {
          const std::size_t bytes = n * elem_size(elem);
          std::memcpy(obj->data(), r.bytes(bytes), bytes);
        }
        break;
      }
      case ObjKind::Boxed: {
        const auto elem = static_cast<ValType>(r.u8());
        Slot s;
        s.raw = r.u64();
        obj = heap.alloc_box(elem, s, &ctx.tlab);
        if (obj == nullptr) throw SerializeError("allocation budget exhausted");
        vm.pin(obj);
        objs.push_back(obj);
        break;
      }
      case ObjKind::String: {
        const std::int32_t len = r.i32();
        if (len < 0) throw SerializeError("bad string length");
        obj = heap.alloc_string(
            std::string(r.bytes(static_cast<std::size_t>(len)),
                        static_cast<std::size_t>(len)),
            &ctx.tlab);
        if (obj == nullptr) throw SerializeError("allocation budget exhausted");
        vm.pin(obj);
        objs.push_back(obj);
        break;
      }
      default:
        throw SerializeError("bad record kind");
    }
  }

  // Pass 2: link references.
  for (const Fixup& f : fixups) {
    ObjRef target = nullptr;
    if (f.target >= 0) {
      if (static_cast<std::uint32_t>(f.target) >= count) {
        throw SerializeError("bad reference id");
      }
      target = objs[static_cast<std::size_t>(f.target)];
    }
    if (f.obj->kind == ObjKind::Instance) {
      f.obj->fields()[f.slot] = Slot::from_ref(target);
    } else {
      f.obj->ref_data()[f.slot] = target;
    }
    // A minor GC between the allocation passes can promote earlier-created
    // objects, making these fixups genuine old->young stores.
    gc_write_barrier(f.obj);
  }
  return objs[0];
}

ObjRef serialize_to_string(VirtualMachine& vm, VMContext& ctx, ObjRef root) {
  std::vector<char> bytes = serialize_graph(vm, root);
  // Allocate through the caller's TLAB, never the heap-shared one: a metered
  // job must not mint its output blob unaccounted (tenant budget audit).
  ObjRef blob = vm.heap().alloc_string(
      std::string(bytes.data(), bytes.size()), &ctx.tlab);
  if (blob == nullptr) throw SerializeError("allocation budget exhausted");
  return blob;
}

ObjRef deserialize_from_string(VirtualMachine& vm, VMContext& ctx,
                               ObjRef blob) {
  if (blob == nullptr || blob->kind != ObjKind::String) {
    throw SerializeError("deserialize: not a byte blob");
  }
  return deserialize_graph(vm, ctx, blob->chars(),
                           static_cast<std::size_t>(blob->length));
}

void serialize_to_file(VirtualMachine& vm, ObjRef root,
                       const std::string& path) {
  std::vector<char> bytes = serialize_graph(vm, root);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw SerializeError("cannot open " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

ObjRef deserialize_from_file(VirtualMachine& vm, VMContext& ctx,
                             const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw SerializeError("cannot open " + path);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  return deserialize_graph(vm, ctx, bytes.data(), bytes.size());
}

}  // namespace hpcnet::vm

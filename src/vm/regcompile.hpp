// Stack IL -> register IR compilation for Tier::Optimizing.
#pragma once

#include <functional>
#include <string>

#include "vm/execution.hpp"
#include "vm/regir.hpp"

namespace hpcnet::vm::regir {

/// Compiles a verified method under the profile's optimization flags.
RCode compile(Module& module, const MethodDef& m, const EngineFlags& flags);

/// Observer for jit_explorer and tests: invoked after each enabled pass with
/// the pass name and the current IR listing. Listings before "compact" are
/// pre-compaction (NOP placeholders still present, branch targets still in
/// IL-pc space); the "inline" listing is the expanded stack IL, not register
/// IR, since inlining runs before translation.
using PassObserver =
    std::function<void(const char* pass, const std::string& listing)>;

/// As compile(), additionally reporting the IR after every pass.
RCode compile_traced(Module& module, const MethodDef& m,
                     const EngineFlags& flags, const PassObserver& observe);

}  // namespace hpcnet::vm::regir

// Stack IL -> register IR compilation for Tier::Optimizing.
#pragma once

#include "vm/execution.hpp"
#include "vm/regir.hpp"

namespace hpcnet::vm::regir {

/// Compiles a verified method under the profile's optimization flags.
RCode compile(Module& module, const MethodDef& m, const EngineFlags& flags);

}  // namespace hpcnet::vm::regir

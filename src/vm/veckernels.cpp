#include "vm/veckernels.hpp"

#include "vm/arith.hpp"

// The HPCNET_SIMD gate turns on intrinsic lanes for the element-independent
// map kernels only. Everything else (and every build with the gate off, or
// on an ISA we have no lanes for) runs the portable strip-mined loops below,
// which GCC/Clang auto-vectorize where legal — and which define the
// bit-exact semantics the intrinsic paths must reproduce.
#if defined(HPCNET_SIMD)
#if defined(__AVX2__)
#include <immintrin.h>
#define HPCNET_SIMD_AVX2 1
#elif defined(__SSE2__) || defined(_M_X64)
#include <emmintrin.h>
#define HPCNET_SIMD_SSE2 1
#elif defined(__ARM_NEON)
#include <arm_neon.h>
#define HPCNET_SIMD_NEON 1
#endif
#endif

namespace hpcnet::vm::veckernels {

const char* kernel_name(std::int32_t k) {
  switch (k) {
    case kMapScaleF64: return "map.scale.f64";
    case kMapAddF64: return "map.add.f64";
    case kDaxpyF64: return "daxpy.f64";
    case kSumF64: return "sum.f64";
    case kDotF64: return "dot.f64";
    case kGatherDotF64: return "gather.dot.f64";
    case kSor5F64: return "sor5.f64";
    case kMapScaleI4: return "map.scale.i4";
    case kMapAddI4: return "map.add.i4";
    case kDaxpyI4: return "daxpy.i4";
    case kSumI4: return "sum.i4";
    case kDotI4: return "dot.i4";
    default: return "?";
  }
}

bool simd_enabled() {
#if defined(HPCNET_SIMD_AVX2) || defined(HPCNET_SIMD_SSE2) || \
    defined(HPCNET_SIMD_NEON)
  return true;
#else
  return false;
#endif
}

// --- f64 map family: SIMD-legal (per-lane IEEE ops are exact) ----------

void map_scale_f64(double* a, std::int32_t start, std::int32_t limit,
                   double s) {
  std::int32_t i = start;
#if defined(HPCNET_SIMD_AVX2)
  const __m256d vs = _mm256_set1_pd(s);
  for (; i + 4 <= limit; i += 4) {
    _mm256_storeu_pd(a + i, _mm256_mul_pd(_mm256_loadu_pd(a + i), vs));
  }
#elif defined(HPCNET_SIMD_SSE2)
  const __m128d vs = _mm_set1_pd(s);
  for (; i + 2 <= limit; i += 2) {
    _mm_storeu_pd(a + i, _mm_mul_pd(_mm_loadu_pd(a + i), vs));
  }
#elif defined(HPCNET_SIMD_NEON)
  const float64x2_t vs = vdupq_n_f64(s);
  for (; i + 2 <= limit; i += 2) {
    vst1q_f64(a + i, vmulq_f64(vld1q_f64(a + i), vs));
  }
#endif
  for (; i < limit; ++i) a[i] = a[i] * s;
}

void map_add_f64(double* a, const double* b, std::int32_t start,
                 std::int32_t limit) {
  std::int32_t i = start;
#if defined(HPCNET_SIMD_AVX2)
  for (; i + 4 <= limit; i += 4) {
    _mm256_storeu_pd(
        a + i, _mm256_add_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i)));
  }
#elif defined(HPCNET_SIMD_SSE2)
  for (; i + 2 <= limit; i += 2) {
    _mm_storeu_pd(a + i, _mm_add_pd(_mm_loadu_pd(a + i), _mm_loadu_pd(b + i)));
  }
#elif defined(HPCNET_SIMD_NEON)
  for (; i + 2 <= limit; i += 2) {
    vst1q_f64(a + i, vaddq_f64(vld1q_f64(a + i), vld1q_f64(b + i)));
  }
#endif
  for (; i < limit; ++i) a[i] = a[i] + b[i];
}

void daxpy_f64(double* y, const double* x, std::int32_t start,
               std::int32_t limit, double s) {
  std::int32_t i = start;
  // No FMA even on AVX2: the scalar engines round the mul and the add
  // separately, and the bit-identity contract binds the vector tier to that.
#if defined(HPCNET_SIMD_AVX2)
  const __m256d vs = _mm256_set1_pd(s);
  for (; i + 4 <= limit; i += 4) {
    const __m256d prod = _mm256_mul_pd(vs, _mm256_loadu_pd(x + i));
    _mm256_storeu_pd(y + i, _mm256_add_pd(_mm256_loadu_pd(y + i), prod));
  }
#elif defined(HPCNET_SIMD_SSE2)
  const __m128d vs = _mm_set1_pd(s);
  for (; i + 2 <= limit; i += 2) {
    const __m128d prod = _mm_mul_pd(vs, _mm_loadu_pd(x + i));
    _mm_storeu_pd(y + i, _mm_add_pd(_mm_loadu_pd(y + i), prod));
  }
#elif defined(HPCNET_SIMD_NEON)
  const float64x2_t vs = vdupq_n_f64(s);
  for (; i + 2 <= limit; i += 2) {
    const float64x2_t prod = vmulq_f64(vs, vld1q_f64(x + i));
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), prod));
  }
#endif
  for (; i < limit; ++i) y[i] = y[i] + s * x[i];
}

// --- f64 reductions: strict scalar order (no reassociation) ------------

double sum_f64(const double* a, std::int32_t start, std::int32_t limit,
               double acc) {
  for (std::int32_t i = start; i < limit; ++i) acc = acc + a[i];
  return acc;
}

double dot_f64(const double* a, const double* b, std::int32_t start,
               std::int32_t limit, double acc) {
  for (std::int32_t i = start; i < limit; ++i) acc = acc + a[i] * b[i];
  return acc;
}

bool gather_dot_f64(const double* x, std::int32_t xlen,
                    const std::int32_t* col, const double* val,
                    std::int32_t start, std::int32_t limit, double acc,
                    double* out) {
  for (std::int32_t i = start; i < limit; ++i) {
    const std::int32_t c = col[i];
    if (static_cast<std::uint32_t>(c) >= static_cast<std::uint32_t>(xlen)) {
      return false;  // scalar loop re-runs and throws at element i
    }
    acc = acc + x[c] * val[i];
  }
  *out = acc;
  return true;
}

void sor5_f64(double* g, const double* up, const double* down,
              std::int32_t start, std::int32_t limit, double s0, double s1) {
  // g[i-1] is this iteration's freshly-written neighbour: a loop-carried
  // recurrence, so the order (and association) is the scalar loop's exactly.
  for (std::int32_t i = start; i < limit; ++i) {
    g[i] = s0 * (((up[i] + down[i]) + g[i - 1]) + g[i + 1]) + s1 * g[i];
  }
}

// --- i32 kernels: wrapping semantics via arith.hpp ---------------------

void map_scale_i32(std::int32_t* a, std::int32_t start, std::int32_t limit,
                   std::int32_t s) {
  for (std::int32_t i = start; i < limit; ++i) a[i] = arith::mul_i32(a[i], s);
}

void map_add_i32(std::int32_t* a, const std::int32_t* b, std::int32_t start,
                 std::int32_t limit) {
  for (std::int32_t i = start; i < limit; ++i) a[i] = arith::add_i32(a[i], b[i]);
}

void daxpy_i32(std::int32_t* y, const std::int32_t* x, std::int32_t start,
               std::int32_t limit, std::int32_t s) {
  for (std::int32_t i = start; i < limit; ++i) {
    y[i] = arith::add_i32(y[i], arith::mul_i32(s, x[i]));
  }
}

std::int32_t sum_i32(const std::int32_t* a, std::int32_t start,
                     std::int32_t limit, std::int32_t acc) {
  for (std::int32_t i = start; i < limit; ++i) acc = arith::add_i32(acc, a[i]);
  return acc;
}

std::int32_t dot_i32(const std::int32_t* a, const std::int32_t* b,
                     std::int32_t start, std::int32_t limit,
                     std::int32_t acc) {
  for (std::int32_t i = start; i < limit; ++i) {
    acc = arith::add_i32(acc, arith::mul_i32(a[i], b[i]));
  }
  return acc;
}

}  // namespace hpcnet::vm::veckernels

// Register IR for Tier::Optimizing — the CLR-1.1/JVM-class JIT stand-in.
//
// The stack-to-register translator assigns every (stack depth, type) pair and
// every local/argument slot a virtual register with a FIXED type for the
// whole method. That invariant is what makes GC precise and cheap here: the
// set of ref-typed registers is a compile-time constant per method, and any
// bit pattern in a ref register is (inductively) either null or a pointer to
// an object this very register has kept alive — so frames need no per-pc
// maps at all, matching how generational JITs batch their root scans.
//
// Optimization passes (gated by EngineFlags, see DESIGN.md §5): constant
// operand folding (immediate instruction forms), compare+branch fusion,
// copy propagation + dead-move elimination (the "enregistration" the paper's
// disassembly shows for CLR/IBM but not Mono/Rotor), the CLR's
// redundant-constant-store quirk, the 64-local enregistration limit, and
// array bounds-check elimination for counted loops bounded by ldlen.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "vm/module.hpp"
#include "vm/value.hpp"

namespace hpcnet::vm::regir {

enum class ROp : std::uint8_t {
  NOP_R = 0,
  MOV,    // d <- a
  MEMLD,  // d <- a  (spilled local load: pinned, never optimized)
  MEMST,  // d <- a  (spilled local store: pinned)
  LDI,    // d <- imm (raw 8 bytes)
  LDSTR_R,  // d <- new string(a = pool id)   [alloc]

  // Three-address arithmetic: d <- a op b.
  ADD_I4, SUB_I4, MUL_I4, DIV_I4, REM_I4, NEG_I4,
  ADD_I8, SUB_I8, MUL_I8, DIV_I8, REM_I8, NEG_I8,
  ADD_R4, SUB_R4, MUL_R4, DIV_R4, REM_R4, NEG_R4,
  ADD_R8, SUB_R8, MUL_R8, DIV_R8, REM_R8, NEG_R8,

  // Immediate forms: d <- a op imm.
  ADDI_I4, SUBI_I4, MULI_I4, DIVI_I4, REMI_I4,
  ADDI_I8, SUBI_I8, MULI_I8, DIVI_I8, REMI_I8,
  ADDI_R8, MULI_R8,

  AND_I4, OR_I4, XOR_I4, NOT_I4, SHL_I4, SHR_I4, SHRU_I4,
  AND_I8, OR_I8, XOR_I8, NOT_I8, SHL_I8, SHR_I8, SHRU_I8,
  SHLI_I4, SHRI_I4, SHLI_I8, SHRI_I8, ANDI_I4,

  // d <- (a cmp b) as i32 0/1.
  CEQ_I4, CGT_I4, CLT_I4,
  CEQ_I8, CGT_I8, CLT_I8,
  CEQ_R4, CGT_R4, CLT_R4,
  CEQ_R8, CGT_R8, CLT_R8,
  CEQ_REF,

  // Conversions: d <- conv(a).
  CV_I4_I8, CV_I4_R4, CV_I4_R8,
  CV_I8_I4, CV_I8_R4, CV_I8_R8,
  CV_R4_I4, CV_R4_I8, CV_R4_R8,
  CV_R8_I4, CV_R8_I8, CV_R8_R4,
  SEXT8, ZEXT8, SEXT16, ZEXT16,  // on i32 in d <- a

  // Control flow. Branch target is in `d`.
  JMP,      // forward jump
  JMPB,     // backward jump (safepoint poll)
  JZ_I4, JNZ_I4, JZ_I8, JNZ_I8, JZ_REF, JNZ_REF,  // test a
  // Fused compare-and-branch: test (a cmp b).
  JEQ_I4, JNE_I4, JLT_I4, JLE_I4, JGT_I4, JGE_I4,
  JEQ_I8, JNE_I8, JLT_I8, JLE_I8, JGT_I8, JGE_I8,
  JEQ_R4, JNE_R4, JLT_R4, JLE_R4, JGT_R4, JGE_R4,
  JEQ_R8, JNE_R8, JLT_R8, JLE_R8, JGT_R8, JGE_R8,
  JEQ_REF, JNE_REF,
  // Immediate compare-and-branch on i32: test (a cmp imm).
  JEQI_I4, JNEI_I4, JLTI_I4, JLEI_I4, JGTI_I4, JGEI_I4,

  CALL_R,      // a = method id, b = args-pool index, d = dst (-1 void),
               // imm.i64 = argc                                  [gc point]
  CALLINTR_R,  // a = intrinsic id, rest as CALL_R                [gc point]
  // fast_math inlined intrinsics (no marshalling, no pending check). The
  // immediate is the vm::Intr id, NOT a function pointer: compiled bodies
  // must stay position-independent so a serialized archive restored into
  // another process resolves the routine through math1_fn/math2_fn below.
  MATH1_R8,  // d.f64 <- fn(a.f64), imm.i64 = vm::Intr id
  MATH2_R8,  // d.f64 <- fn(a.f64, b.f64), imm.i64 = vm::Intr id
  ABS_I4_R, ABS_I8_R, ABS_R4_R, ABS_R8_R,
  MAX_I4_R, MAX_I8_R, MAX_R4_R, MAX_R8_R,
  MIN_I4_R, MIN_I8_R, MIN_R4_R, MIN_R8_R,

  RET_R,  // a = src reg or -1 for void

  NEWOBJ_R,  // d <- new(a = class id)                            [alloc]
  LDFLD_R,   // d <- a.fields[b]
  STFLD_R,   // a.fields[b] <- d  (d is the SOURCE here)
  LDSFLD_R,  // d <- statics(a)[b]
  STSFLD_R,  // statics(a)[b] <- d

  NEWARR_R,  // d <- new[a], b = ValType                          [alloc]
  LDLEN_R,   // d <- a.length
  CHK_BOUNDS,  // explicit range-check node (a = array, b = index); the
               // translation emits one before every unchecked access and the
               // BCE pass deletes the provably-redundant ones, exactly like
               // the range-check IR nodes of production JITs
  JLT_LEN,     // fused loop guard: if (a < b.length) jump (d = target);
               // produced by BCE when the in-loop ldlen feeds only the guard
  // Checked element access (a = array, b = index).
  LDELEM_I4, LDELEM_I8, LDELEM_R4, LDELEM_R8, LDELEM_REF,
  STELEM_I4, STELEM_I8, STELEM_R4, STELEM_R8, STELEM_REF,  // d = source
  // Unchecked forms produced by bounds-check elimination.
  LDELEMU_I4, LDELEMU_I8, LDELEMU_R4, LDELEMU_R8, LDELEMU_REF,
  STELEMU_I4, STELEMU_I8, STELEMU_R4, STELEMU_R8, STELEMU_REF,

  NEWMAT_R,   // d <- new[a, b], imm = ValType                    [alloc]
  // Rank-2 access: a = matrix, b = row, imm low 32 = col reg,
  // imm high 32 = source reg (stores). Fast = direct row-major indexing.
  LDEL2_I4, LDEL2_I8, LDEL2_R4, LDEL2_R8, LDEL2_REF,
  STEL2_I4, STEL2_I8, STEL2_R4, STEL2_R8, STEL2_REF,
  // Generic (profile without fast_multidim): extra helper-call indirection.
  LDEL2_SLOW, STEL2_SLOW,  // imm low 32 = col reg, high = src; b2 in `b`
  LDMROWS_R, LDMCOLS_R,

  BOX_R,    // d <- box(a), b = ValType                           [alloc]
  UNBOX_R,  // d <- unbox(a), b = ValType

  THROW_R,       // a = exception reg
  LEAVE_R,       // a = IL target pc (resolved via unwind machine)
  ENDFINALLY_R,
  SAFEPOINT,

  CARDMARK,  // card-mark a (object a ref field/element was just stored into);
             // emitted after every ref STFLD/STELEM so the generational GC
             // sees old->young edges; CSE drops repeats between GC points

  VECLOOP,  // vectorized loop superinstruction; a = index into
            // RCode::vec_loops. Placed in the preheader of the scalar loop
            // it replaces: when its runtime span guards pass it runs the
            // whole kernel, advances the induction variable to the limit
            // (so the retained scalar loop exits immediately) and polls one
            // safepoint; when they fail it is a no-op and the scalar loop
            // runs unchanged. Never a branch, never an OSR header.

  COUNT_,
};

/// One register instruction. `flags` bit 0 = pinned (exempt from
/// optimization); `il_pc` maps back to the stack IL for exception ranges and
/// the disassembly study (Tables 5-8).
struct RInstr {
  ROp op = ROp::NOP_R;
  std::uint8_t flags = 0;
  std::int32_t d = -1;
  std::int32_t a = -1;
  std::int32_t b = -1;
  std::int32_t il_pc = -1;
  union {
    std::int64_t i64;
    double f64;
  } imm{};

  static constexpr std::uint8_t kPinned = 1;
  bool pinned() const { return (flags & kPinned) != 0; }
};

/// A compiled method.
struct RCode {
  /// Deopt side table: one record per backward branch (JMPB and the fused
  /// conditional back edges), sorted by `rpc`. At the recorded register pc
  /// the register file holds the IL frame state of the branch TARGET (the
  /// loop header): registers [0, slot_regs) mirror the locals/arguments and
  /// `stack_regs` (bottom-up) hold the header's entry operand stack — the
  /// invariant DCE maintains by keeping slot registers and successor-entry
  /// stack registers live across block boundaries. Empty when the body has
  /// no recoverable back edges; deopt is then disabled for the whole body.
  struct DeoptPoint {
    std::int32_t rpc = -1;    // register pc of the backward branch
    std::int32_t il_pc = -1;  // IL pc of the loop header (branch target)
    std::vector<std::int32_t> stack_regs;  // header entry stack, bottom-up
  };
  std::vector<DeoptPoint> deopt_points;

  /// Vector-loop side table: one record per VECLOOP superinstruction
  /// (indexed by the instruction's `a` field). All fields are register ids
  /// except the kernel id and the spilled scalar immediates. `limit` is the
  /// trip bound register, or -1 when the bound is `limit_arr.length`
  /// (BCE-fused JLT_LEN loops). `s0_reg`/`s1_reg` name scalar operand
  /// registers, or -1 when the operand is the constant in `s0_bits`/
  /// `s1_bits` (raw slot bits, i32 or f64 per kernel).
  struct VecLoop {
    std::int32_t kernel = -1;     // veckernels::VecKernel
    std::int32_t ivar = -1;       // induction variable register
    std::int32_t limit = -1;      // trip bound register (-1: use limit_arr)
    std::int32_t limit_arr = -1;  // array whose length bounds the loop
    std::int32_t arr0 = -1;       // kernel span registers (meaning per
    std::int32_t arr1 = -1;       // kernel; see veckernels.hpp)
    std::int32_t arr2 = -1;
    std::int32_t acc = -1;        // reduction accumulator register
    std::int32_t s0_reg = -1;
    std::int32_t s1_reg = -1;
    std::int64_t s0_bits = 0;
    std::int64_t s1_bits = 0;
  };
  std::vector<VecLoop> vec_loops;

  /// Always points at `body` below — never into the module that happened to
  /// drive the compile. Compiled code must be position-independent: an RCode
  /// published into a CodeArchive outlives (and precedes) any particular VM,
  /// so it carries its own verified copy of the method it implements.
  const MethodDef* method = nullptr;
  /// The owned body `method` points at: the module method's verified state
  /// as of compilation, or — when the inlining pass expanded call sites —
  /// the expanded, re-verified copy (same name/id/signature), so handler
  /// tables, stack maps and il_pc ranges always describe the code that was
  /// actually compiled.
  std::shared_ptr<const MethodDef> body;
  std::vector<RInstr> code;
  std::vector<std::int32_t> args_pool;  // flattened call argument registers
  std::vector<std::int32_t> ref_regs;   // ref-typed registers (GC roots)
  std::vector<ValType> reg_types;       // per-register static type
  std::vector<std::int32_t> il2rpc;     // IL pc -> first register pc
  std::vector<std::int32_t> handler_exc_reg;  // per handler: catch dest reg
  std::int32_t num_regs = 0;

  /// Registers = [slots][stack depth x type][scratch].
  std::int32_t slot_regs = 0;
};

/// Resolution of the fast-math superinstruction immediates: the native
/// routine for a vm::Intr id, or nullptr when the id is not a one-argument
/// (respectively two-argument) pure-math entry. Shared by the emitter, the
/// dispatch loop and the archive deserializer (which validates restored
/// immediates through the same tables).
using Math1Fn = double (*)(double);
using Math2Fn = double (*)(double, double);
Math1Fn math1_fn(std::int32_t intr_id);
Math2Fn math2_fn(std::int32_t intr_id);

/// One-line disassembly of a register instruction (jit_explorer, tests).
std::string to_string(const RInstr& in);

/// Side-table-aware variant: VECLOOP renders its kernel name, span and
/// scalar operands from `code.vec_loops` (other ops defer to the one-line
/// form). Used by the full disassembly and the per-pass trace listings.
std::string to_string(const RInstr& in, const RCode& code);

/// Full method disassembly.
std::string to_string(const RCode& code);

}  // namespace hpcnet::vm::regir

// Multi-tenant execution service (DESIGN.md §11): a job queue + worker pool
// running verified IL jobs from N tenants on one shared VM, with three
// per-tenant resource boundaries the paper's single-tenant harness lacks:
//
//   Fuel     — a deterministic execution budget, in taken backward branches,
//              armed per JOB (per-job, not per-tenant, so the kill point does
//              not depend on co-tenant scheduling). The tier backends charge
//              the meter at their existing back-edge pulse cadence; an
//              over-budget job faults with a catchable
//              HPCNet.FuelExhaustedException at the next back-edge safepoint
//              or call boundary, in all three tiers and OSR continuations.
//   Deadline — a wall-clock budget per job (milliseconds from worker pickup,
//              monotonic clock), polled at the same back-edge pulse cadence
//              as fuel and at call boundaries. Fuel is deterministic but not
//              time; the deadline is time but not deterministic — services
//              exposed to a network (src/vm/net) arm both. An overdue job
//              faults with a catchable HPCNet.DeadlineExceededException;
//              overshoot is bounded by one pulse window (DESIGN.md §14).
//   Memory   — an allocation budget (bytes), shared per TENANT across its
//              concurrent jobs, charged at TLAB refill and on the
//              large-object path (heap.hpp AllocBudget). A refused charge
//              surfaces as a managed System.OutOfMemoryException.
//
// Scheduling is deficit round-robin over per-tenant sub-queues (unit job
// cost, quantum = TenantConfig::weight): a backlogged tenant gets `weight`
// consecutive dispatches per turn, then the turn rotates — so one chatty
// tenant (or network connection) cannot starve the rest, and relative
// throughput under backlog tracks the weight ratio (DESIGN.md §14).
//
// Workers are plain attached VM threads: each owns an engine built from the
// service's profile (engines sharing the VM and profile name share compiled
// code through the VM's CodeCache), parks GC-safe while the queue is empty,
// and tears fuel/budget state down between jobs so no state leaks across
// tenants. Job isolation is by construction — tenants share the heap and the
// code cache but never a TLAB window, a fuel meter, or an unreleased budget.
// Metered jobs are single-threaded by construction too: Thread.Start from a
// context with fuel armed (which includes deadline-only jobs) or a budget
// bound is refused with a catchable managed exception, because a spawned
// thread would run unmetered and could outlive the job's released budget.
//
// Concurrency contract (the PR-10 bugfix pass):
//   * Ref-typed arguments of a queued job are pinned through the VM's pin
//     registry from submit until worker pickup — a collection between the
//     two must not sweep an otherwise-unreachable argument graph.
//   * capture_snapshot closes admission (submit blocks) across its whole
//     quiesce window, so no submit racing the drain can start a compile
//     mid-capture.
//   * Destroying the service fails every still-queued job as Rejected
//     ("service stopped") before joining the workers — a handle whose
//     service died never blocks forever. In-flight jobs still finish.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "vm/archive.hpp"
#include "vm/execution.hpp"

namespace hpcnet::vm::service {

/// Per-tenant resource limits. Zero means unmetered for fuel, deadline and
/// memory; weight 0 is treated as 1.
struct TenantConfig {
  std::string name;
  std::uint64_t fuel_per_job = 0;        // taken backward branches per job
  std::uint64_t memory_budget_bytes = 0; // in-flight allocation cap, shared
                                         // by the tenant's concurrent jobs
  std::uint64_t deadline_ms = 0;         // wall-clock budget per job, from
                                         // worker pickup (0 = none)
  std::uint32_t weight = 1;              // deficit-round-robin quantum: jobs
                                         // dispatched per scheduling turn
                                         // under backlog
};

/// Keep the numeric values stable: telemetry::record_service_job takes the
/// outcome as uint8 with this exact encoding, and the RESULT frame of the
/// network protocol (src/vm/net) carries it on the wire.
enum class JobOutcome : std::uint8_t {
  Completed = 0,
  KilledFuel = 1,     // fuel budget exhausted (uncaught FuelExhausted)
  KilledMemory = 2,   // allocation budget exhausted (uncaught OutOfMemory)
  Faulted = 3,        // any other managed or native fault
  Rejected = 4,       // refused before execution (bad method/args/IL,
                      // cancelled, or service stopped)
  KilledDeadline = 5, // wall-clock deadline passed (uncaught
                      // DeadlineExceeded)
};
const char* outcome_name(JobOutcome o);

struct JobResult {
  JobOutcome outcome = JobOutcome::Rejected;
  Slot value{};              // return value when Completed
  std::string error;         // exception class + message otherwise
  std::uint64_t fuel_spent = 0;    // backward branches charged
  std::uint64_t bytes_charged = 0; // budget bytes charged by this job's TLAB
  std::int64_t queue_ns = 0;       // submit -> worker pickup
  std::int64_t run_ns = 0;         // worker pickup -> finish
};

/// Shared handle to a submitted job. wait() blocks until a worker finishes
/// (or rejects) the job. A ref-typed result is pinned in the VM until the
/// last handle to the job is dropped — which is why the VM must outlive
/// every handle (the drop unpins through the VM's pin registry).
class JobHandle {
 public:
  /// Callers on a VM-attached thread must pass their context so the wait
  /// parks GC-safe (a worker's collection would otherwise deadlock against
  /// an attached waiter blocked outside a safepoint).
  JobResult wait(VMContext* ctx = nullptr);
  bool done() const;

 private:
  friend class ExecutionService;
  struct State;
  explicit JobHandle(std::shared_ptr<State> s) : state_(std::move(s)) {}
  std::shared_ptr<State> state_;
};

/// Service-side per-tenant counters (mirrors telemetry::TenantTelemetry but
/// always collected, so callers do not need the telemetry switch on).
struct TenantStats {
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_killed_fuel = 0;
  std::uint64_t jobs_killed_memory = 0;
  std::uint64_t jobs_killed_deadline = 0;
  std::uint64_t jobs_faulted = 0;
  std::uint64_t jobs_rejected = 0;
  std::uint64_t fuel_spent = 0;
  std::uint64_t bytes_charged = 0;
  std::int64_t queue_ns = 0;
  std::int64_t run_ns = 0;
};

struct ServiceOptions {
  int workers = 1;
  /// Optional warm start: attached to the VM before any worker runs, so the
  /// workers' first jobs dispatch straight into the archived optimized code
  /// (no per-instance recompilation — N services can share one archive).
  /// Ignored (cold boot) when null or when the archive targets a different
  /// profile than the service's.
  std::shared_ptr<const CodeArchive> warm_start;
};

class ExecutionService {
 public:
  using Options = ServiceOptions;
  /// Completion hook, invoked exactly once per job after the result is
  /// published (handle waiters are already released when it runs). Called on
  /// the worker thread that finished the job — or on the submitting thread
  /// for submit-time rejects, the cancelling thread for cancellations, and
  /// the destroying thread for service-stopped rejects. Must not call back
  /// into the service. The network front end uses this to push RESULT
  /// frames without a thread parked in wait() per job.
  using Completion = std::function<void(const JobResult&)>;

  /// Workers share `vm` (heap, module, code caches) and each build their own
  /// engine from `profile`. The VM must outlive the service — and every
  /// JobHandle the service issues (handles unpin results through the VM).
  ExecutionService(VirtualMachine& vm, const EngineProfile& profile,
                   Options options = {});
  /// Fails every still-queued job as Rejected ("service stopped"), lets
  /// in-flight jobs finish, and joins the workers.
  ~ExecutionService();

  ExecutionService(const ExecutionService&) = delete;
  ExecutionService& operator=(const ExecutionService&) = delete;

  /// Registers a tenant. Throws std::invalid_argument on a duplicate name.
  void add_tenant(const TenantConfig& config);

  /// Enqueues `method_id(args)` for `tenant`. Malformed submissions (unknown
  /// tenant throws; bad method id / arg count) come back Rejected without
  /// reaching a worker; unverifiable IL is Rejected by the worker's verify
  /// latch. Ref-typed args are pinned until worker pickup, so the caller may
  /// drop its own references to the argument graph as soon as submit
  /// returns. Blocks while a capture_snapshot quiesce is in progress. The
  /// returned handle may outlive the service, but not the VM.
  JobHandle submit(const std::string& tenant, std::int32_t method_id,
                   std::vector<Slot> args, Completion on_done = nullptr);

  /// Cancels a job that is still queued: removes it from its tenant's
  /// sub-queue and fails it as Rejected ("cancelled"). Returns false when
  /// the job already left the queue (running or finished) — a running job is
  /// never interrupted. The network front end calls this for every pending
  /// job of a dropped connection.
  bool cancel(const JobHandle& handle);

  /// Blocks until every job submitted so far has finished. Same attached-
  /// caller rule as JobHandle::wait.
  void drain(VMContext* ctx = nullptr);

  /// Snapshots the service's warmed code cache into an immutable archive.
  /// This is an explicit quiesced operation: it closes admission (concurrent
  /// submits block), drains the queue (no job runs or compiles during
  /// capture), captures the profile's cache, then reopens admission. The
  /// archive can seed other services via Options::warm_start or be
  /// serialized with serialize_archives/save_snapshot.
  std::shared_ptr<const CodeArchive> capture_snapshot(VMContext* ctx = nullptr);

  TenantStats tenant_stats(const std::string& tenant) const;
  /// True when `tenant` is registered (the network front end authenticates
  /// HELLO frames against this before any submit).
  bool has_tenant(const std::string& tenant) const;
  int workers() const { return static_cast<int>(threads_.size()); }

 private:
  struct Tenant {
    TenantConfig config;
    std::unique_ptr<AllocBudget> budget;  // null when unmetered
    // Deficit-round-robin state, all guarded by mu_: this tenant's FIFO
    // sub-queue, the dispatches left in its current turn, and whether it is
    // linked into the active ring.
    std::deque<std::shared_ptr<JobHandle::State>> queue;
    std::uint32_t deficit = 0;
    bool in_ring = false;
  };

  void worker_main(std::size_t index);
  void run_job(VMContext& ctx, Engine& engine, JobHandle::State& job);
  void finish(JobHandle::State& job, JobResult result);
  void enqueue_locked(Tenant& tenant, std::shared_ptr<JobHandle::State> job);
  std::shared_ptr<JobHandle::State> pop_locked();
  void unpin_args(JobHandle::State& job);

  VirtualMachine& vm_;
  const EngineProfile profile_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // signalled on submit and stop
  std::condition_variable drain_cv_;  // signalled when a job finishes
  std::condition_variable admit_cv_;  // signalled when admission reopens
  std::map<std::string, std::shared_ptr<Tenant>> tenants_;
  std::deque<Tenant*> ring_;      // tenants with queued jobs, DRR order
  std::size_t queued_ = 0;        // jobs across all sub-queues
  std::map<std::string, TenantStats> stats_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  bool admission_closed_ = false;  // capture_snapshot quiesce in progress

  std::vector<std::thread> threads_;
};

}  // namespace hpcnet::vm::service

#include "vm/service/service.hpp"

#include <algorithm>
#include <limits>
#include <span>
#include <stdexcept>
#include <utility>

#include "support/timer.hpp"
#include "vm/telemetry/telemetry.hpp"
#include "vm/verifier.hpp"

namespace hpcnet::vm::service {

const char* outcome_name(JobOutcome o) {
  switch (o) {
    case JobOutcome::Completed: return "completed";
    case JobOutcome::KilledFuel: return "killed-fuel";
    case JobOutcome::KilledMemory: return "killed-memory";
    case JobOutcome::KilledDeadline: return "killed-deadline";
    case JobOutcome::Faulted: return "faulted";
    case JobOutcome::Rejected: return "rejected";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// JobHandle.

struct JobHandle::State {
  // Filled at submit; immutable once queued. `budget` points into the
  // service's tenant table, valid while jobs can run (the service fails the
  // queue and joins its workers before the table is destroyed).
  VirtualMachine* vm = nullptr;
  std::string tenant;
  std::int32_t method_id = -1;
  std::vector<Slot> args;
  std::uint64_t fuel = 0;
  std::uint64_t deadline_ms = 0;
  AllocBudget* budget = nullptr;
  bool returns_ref = false;
  // True while the job's ref-typed args are pinned in the VM (submit ->
  // worker pickup / cancel / service stop). Owned by whoever holds the job:
  // the queue hands a job to exactly one of those paths under mu_.
  bool args_pinned = false;
  std::int64_t submit_ns = 0;
  ExecutionService::Completion on_done;

  // Completion protocol.
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool result_pinned = false;  // written before `done` is published
  JobResult result;

  // Unpins through the VM: a handle may outlive the service, but the VM
  // must outlive every handle (service.hpp documents this contract).
  ~State() {
    if (result_pinned) vm->unpin(result.value.ref);
  }
};

JobResult JobHandle::wait(VMContext* ctx) {
  if (ctx != nullptr) state_->vm->enter_safe_region(*ctx);
  JobResult out;
  {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->done; });
    out = state_->result;
  }
  if (ctx != nullptr) state_->vm->leave_safe_region(*ctx);
  return out;
}

bool JobHandle::done() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

// ---------------------------------------------------------------------------
// ExecutionService.

ExecutionService::ExecutionService(VirtualMachine& vm,
                                   const EngineProfile& profile,
                                   Options options)
    : vm_(vm), profile_(profile) {
  // Warm-start before any worker exists: attach is cheap (refcount + cache
  // stores, no compilation), and doing it here means the very first job a
  // worker picks up already dispatches into the archived optimized code.
  if (options.warm_start != nullptr &&
      options.warm_start->profile() == profile_.name) {
    attach_archive(vm_, options.warm_start);
  }
  const int n = options.workers < 1 ? 1 : options.workers;
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_main(static_cast<std::size_t>(i)); });
  }
}

ExecutionService::~ExecutionService() {
  // Fail every still-queued job BEFORE joining: a handle whose service died
  // must observe Rejected, not block in wait() forever. stopping_ and the
  // queue sweep happen under one critical section so no worker can observe
  // stopping_ while jobs it will never run are still queued.
  std::vector<std::shared_ptr<JobHandle::State>> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
    for (auto& [name, tenant] : tenants_) {
      for (auto& job : tenant->queue) orphans.push_back(std::move(job));
      tenant->queue.clear();
      tenant->in_ring = false;
      tenant->deficit = 0;
    }
    ring_.clear();
    queued_ = 0;
  }
  work_cv_.notify_all();
  admit_cv_.notify_all();
  for (auto& job : orphans) {
    unpin_args(*job);
    JobResult r;
    r.outcome = JobOutcome::Rejected;
    r.error = "service stopped";
    r.queue_ns = support::now_ns() - job->submit_ns;
    finish(*job, std::move(r));
  }
  drain_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ExecutionService::add_tenant(const TenantConfig& config) {
  auto tenant = std::make_shared<Tenant>();
  tenant->config = config;
  if (config.memory_budget_bytes > 0) {
    tenant->budget = std::make_unique<AllocBudget>(config.memory_budget_bytes);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!tenants_.emplace(config.name, std::move(tenant)).second) {
    throw std::invalid_argument("execution service: duplicate tenant " +
                                config.name);
  }
}

JobHandle ExecutionService::submit(const std::string& tenant,
                                   std::int32_t method_id,
                                   std::vector<Slot> args,
                                   Completion on_done) {
  auto state = std::make_shared<JobHandle::State>();
  state->vm = &vm_;
  state->tenant = tenant;
  state->method_id = method_id;
  state->args = std::move(args);
  state->on_done = std::move(on_done);
  state->submit_ns = support::now_ns();

  std::shared_ptr<Tenant> ten;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      throw std::invalid_argument("execution service: unknown tenant " +
                                  tenant);
    }
    ten = it->second;
  }
  state->fuel = ten->config.fuel_per_job;
  state->deadline_ms = ten->config.deadline_ms;
  state->budget = ten->budget.get();

  // Shape validation up front; IL verification itself happens behind the
  // workers' per-method verify latch (a raw verify() here would race it).
  Module& mod = vm_.module();
  JobResult reject;
  reject.outcome = JobOutcome::Rejected;
  if (method_id < 0 ||
      static_cast<std::size_t>(method_id) >= mod.method_count()) {
    reject.error = "bad method id";
  } else if (state->args.size() != mod.method(method_id).num_args()) {
    reject.error = "argument count mismatch";
  } else {
    const MethodDef& m = mod.method(method_id);
    state->returns_ref = m.sig.ret == ValType::Ref;
    // Root the argument graph while the job sits in the queue: a Slot in a
    // std::deque is invisible to the GC's stack walk, so an otherwise-
    // unreachable ref arg would be swept between submit and pickup. Pinned
    // here, unpinned at worker pickup (or cancel / service stop).
    for (std::size_t i = 0; i < state->args.size(); ++i) {
      if (m.sig.params[i] == ValType::Ref && state->args[i].ref != nullptr) {
        vm_.pin(state->args[i].ref);
        state->args_pinned = true;
      }
    }
    {
      std::unique_lock<std::mutex> lock(mu_);
      // Admission is held closed across a capture_snapshot quiesce window —
      // block here rather than start a compile mid-capture.
      admit_cv_.wait(lock, [&] { return !admission_closed_ || stopping_; });
      if (stopping_) {
        lock.unlock();
        unpin_args(*state);
        throw std::logic_error("execution service: already stopping");
      }
      enqueue_locked(*ten, state);
    }
    work_cv_.notify_one();
    return JobHandle(state);
  }
  finish(*state, std::move(reject));
  return JobHandle(state);
}

bool ExecutionService::cancel(const JobHandle& handle) {
  const std::shared_ptr<JobHandle::State>& job = handle.state_;
  if (job == nullptr) return false;
  bool removed = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(job->tenant);
    if (it != tenants_.end()) {
      auto& q = it->second->queue;
      auto pos = std::find(q.begin(), q.end(), job);
      if (pos != q.end()) {
        q.erase(pos);
        --queued_;
        removed = true;
      }
    }
  }
  if (!removed) return false;  // already picked up (or finished): let it run
  unpin_args(*job);
  JobResult r;
  r.outcome = JobOutcome::Rejected;
  r.error = "cancelled";
  r.queue_ns = support::now_ns() - job->submit_ns;
  finish(*job, std::move(r));
  drain_cv_.notify_all();
  return true;
}

void ExecutionService::drain(VMContext* ctx) {
  if (ctx != nullptr) vm_.enter_safe_region(*ctx);
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [&] { return queued_ == 0 && in_flight_ == 0; });
  }
  if (ctx != nullptr) vm_.leave_safe_region(*ctx);
}

std::shared_ptr<const CodeArchive> ExecutionService::capture_snapshot(
    VMContext* ctx) {
  // Quiesce with admission closed: the old drain-then-capture left a window
  // where a submit racing the drain predicate could start a compile mid-
  // capture. With admission_closed_ set, concurrent submits block on
  // admit_cv_ until the capture is over, so "queue empty + nothing in
  // flight" stays true for the whole walk of the profile's cache.
  {
    std::unique_lock<std::mutex> lock(mu_);
    admit_cv_.wait(lock, [&] { return !admission_closed_; });
    admission_closed_ = true;
  }
  std::shared_ptr<const CodeArchive> archive;
  try {
    drain(ctx);
    archive = capture_archive(vm_, profile_.name);
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      admission_closed_ = false;
    }
    admit_cv_.notify_all();
    throw;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    admission_closed_ = false;
  }
  admit_cv_.notify_all();
  return archive;
}

bool ExecutionService::has_tenant(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  return tenants_.find(tenant) != tenants_.end();
}

TenantStats ExecutionService::tenant_stats(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(tenant);
  return it != stats_.end() ? it->second : TenantStats{};
}

void ExecutionService::enqueue_locked(Tenant& tenant,
                                      std::shared_ptr<JobHandle::State> job) {
  tenant.queue.push_back(std::move(job));
  ++queued_;
  if (!tenant.in_ring) {
    tenant.in_ring = true;
    tenant.deficit = 0;  // replenished on the tenant's first service turn
    ring_.push_back(&tenant);
  }
}

std::shared_ptr<JobHandle::State> ExecutionService::pop_locked() {
  // Deficit round-robin, unit job cost: the tenant at the head of the ring
  // dispatches up to `weight` jobs per turn, then rotates to the back — so
  // under backlog every tenant makes progress each round and relative
  // throughput tracks the weight ratio. Tenants leave the ring when their
  // sub-queue empties (cancel can empty one mid-turn).
  while (!ring_.empty()) {
    Tenant* t = ring_.front();
    if (t->queue.empty()) {
      t->in_ring = false;
      t->deficit = 0;
      ring_.pop_front();
      continue;
    }
    if (t->deficit == 0) {  // new service turn
      t->deficit = t->config.weight == 0 ? 1 : t->config.weight;
    }
    std::shared_ptr<JobHandle::State> job = std::move(t->queue.front());
    t->queue.pop_front();
    --queued_;
    --t->deficit;
    if (t->queue.empty()) {
      t->in_ring = false;
      t->deficit = 0;
      ring_.pop_front();
    } else if (t->deficit == 0) {  // turn over: go to the back of the ring
      ring_.pop_front();
      ring_.push_back(t);
    }
    return job;
  }
  return nullptr;
}

void ExecutionService::unpin_args(JobHandle::State& job) {
  if (!job.args_pinned) return;
  job.args_pinned = false;
  const MethodDef& m = vm_.module().method(job.method_id);
  for (std::size_t i = 0; i < job.args.size(); ++i) {
    if (m.sig.params[i] == ValType::Ref && job.args[i].ref != nullptr) {
      vm_.unpin(job.args[i].ref);
    }
  }
}

void ExecutionService::worker_main(std::size_t /*index*/) {
  // Each worker owns an engine built from the service profile; engines
  // sharing a VM and a profile name share compiled code (CodeCache), so
  // tier-up / OSR work done for one tenant's job benefits every worker.
  std::unique_ptr<Engine> engine = make_engine(vm_, profile_);
  std::unique_ptr<VMContext> ctx = vm_.attach_thread(engine.get());
  for (;;) {
    std::shared_ptr<JobHandle::State> job;
    bool stop = false;
    // Park GC-safe while the queue is empty: a collection triggered by a
    // busy worker must not wait on an idle one. mu_ is never held across
    // the safe-region transitions (leave may park for an in-flight GC).
    vm_.enter_safe_region(*ctx);
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || queued_ != 0; });
      if (stopping_) {
        // The destructor already failed everything still queued (under the
        // same lock that set stopping_), so there is nothing left to run.
        stop = true;
      } else {
        job = pop_locked();
        if (job != nullptr) ++in_flight_;
      }
    }
    vm_.leave_safe_region(*ctx);
    if (stop) break;
    if (job == nullptr) continue;  // raced away; re-park
    run_job(*ctx, *engine, *job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    drain_cv_.notify_all();
  }
  vm_.detach_thread(*ctx);
}

void ExecutionService::run_job(VMContext& ctx, Engine& engine,
                               JobHandle::State& job) {
  const std::int64_t start_ns = support::now_ns();
  // Pickup: from here the frame the engine is about to build roots the ref
  // args, so the queue-lifetime pins come off. No safepoint lies between
  // this unpin and the engine pushing the frame's GcFrame, so no collection
  // can run in the gap.
  unpin_args(job);
  JobResult res;
  res.queue_ns = start_ns - job.submit_ns;

  // Arm the per-job meter. Fuel is charged in taken backward branches at the
  // backends' pulse cadence, so the measured kill point is exact to within
  // one pulse window and identical run to run; the wall-clock deadline rides
  // the same pulse (DESIGN.md §14). A deadline-only job arms the meter with
  // the fuel axis clamped to INT64_MAX so it never fires.
  if (job.fuel > 0 || job.deadline_ms > 0) {
    ctx.fuel.active = true;
    // Clamp: a configured fuel_per_job above INT64_MAX means "effectively
    // unmetered", not a meter armed already negative.
    ctx.fuel.remaining = static_cast<std::int64_t>(std::min<std::uint64_t>(
        job.fuel > 0 ? job.fuel : std::numeric_limits<std::uint64_t>::max(),
        std::numeric_limits<std::int64_t>::max()));
    ctx.fuel.spent = 0;
    if (job.deadline_ms > 0) {
      // Same clamp idea on the time axis: an absurd deadline must not wrap
      // the ns product negative and kill the job instantly.
      constexpr std::uint64_t kMaxMs =
          std::numeric_limits<std::int64_t>::max() / 4'000'000;
      ctx.fuel.deadline_ns =
          start_ns + static_cast<std::int64_t>(
                         std::min<std::uint64_t>(job.deadline_ms, kMaxMs)) *
                         1'000'000;
    }
  }
  // Bind the tenant's allocation budget, retiring the TLAB window on both
  // sides of the job so no window acquired under one accounting regime is
  // bumped under another.
  if (job.budget != nullptr) {
    vm_.heap().retire_tlab(ctx.tlab);
    ctx.tlab.bind_budget(job.budget);
  }

  try {
    Slot value = engine.invoke(ctx, job.method_id,
                               std::span<const Slot>(job.args));
    res.outcome = JobOutcome::Completed;
    res.value = value;
  } catch (const ManagedException& e) {
    if (e.class_name() == "HPCNet.FuelExhaustedException") {
      res.outcome = JobOutcome::KilledFuel;
    } else if (e.class_name() == "HPCNet.DeadlineExceededException") {
      res.outcome = JobOutcome::KilledDeadline;
    } else if (e.class_name() == "System.OutOfMemoryException") {
      res.outcome = JobOutcome::KilledMemory;
    } else {
      res.outcome = JobOutcome::Faulted;
    }
    res.error = e.what();
  } catch (const VerifyError& e) {
    res.outcome = JobOutcome::Rejected;
    res.error = e.what();
  } catch (const std::exception& e) {
    res.outcome = JobOutcome::Faulted;
    res.error = e.what();
  }

  // Disarm and read back the job's accounting. Frame-exit residual flushes
  // ran during unwinding, so `spent` is complete here.
  res.fuel_spent = ctx.fuel.spent;
  ctx.fuel = FuelMeter{};
  if (job.budget != nullptr) {
    vm_.heap().retire_tlab(ctx.tlab);
    res.bytes_charged = ctx.tlab.budget_charged();
    ctx.tlab.bind_budget(nullptr);
    // The budget caps in-flight allocation, not a lifetime total: the job is
    // over, its garbage belongs to the next GC, the headroom to the tenant.
    job.budget->release(res.bytes_charged);
  }
  // Root a ref-typed result for as long as a handle can observe it
  // (~State unpins).
  if (res.outcome == JobOutcome::Completed && job.returns_ref &&
      res.value.ref != nullptr) {
    vm_.pin(res.value.ref);
    job.result_pinned = true;
  }
  res.run_ns = support::now_ns() - start_ns;
  finish(job, std::move(res));
}

void ExecutionService::finish(JobHandle::State& job, JobResult result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TenantStats& st = stats_[job.tenant];
    switch (result.outcome) {
      case JobOutcome::Completed: st.jobs_completed += 1; break;
      case JobOutcome::KilledFuel: st.jobs_killed_fuel += 1; break;
      case JobOutcome::KilledMemory: st.jobs_killed_memory += 1; break;
      case JobOutcome::KilledDeadline: st.jobs_killed_deadline += 1; break;
      case JobOutcome::Faulted: st.jobs_faulted += 1; break;
      case JobOutcome::Rejected: st.jobs_rejected += 1; break;
    }
    st.fuel_spent += result.fuel_spent;
    st.bytes_charged += result.bytes_charged;
    st.queue_ns += result.queue_ns;
    st.run_ns += result.run_ns;
  }
  telemetry::record_service_job(job.tenant,
                                static_cast<std::uint8_t>(result.outcome),
                                result.fuel_spent, result.bytes_charged,
                                result.queue_ns, result.run_ns);
  Completion cb;
  {
    std::lock_guard<std::mutex> lock(job.mu);
    job.result = std::move(result);
    job.done = true;
    cb = std::move(job.on_done);
  }
  job.cv.notify_all();
  // Completion hook last, off every lock: waiters are already released, and
  // job.result is immutable now that done is published.
  if (cb) cb(job.result);
}

}  // namespace hpcnet::vm::service

#include "vm/service/service.hpp"

#include <algorithm>
#include <limits>
#include <span>
#include <stdexcept>
#include <utility>

#include "support/timer.hpp"
#include "vm/telemetry/telemetry.hpp"
#include "vm/verifier.hpp"

namespace hpcnet::vm::service {

const char* outcome_name(JobOutcome o) {
  switch (o) {
    case JobOutcome::Completed: return "completed";
    case JobOutcome::KilledFuel: return "killed-fuel";
    case JobOutcome::KilledMemory: return "killed-memory";
    case JobOutcome::Faulted: return "faulted";
    case JobOutcome::Rejected: return "rejected";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// JobHandle.

struct JobHandle::State {
  // Filled at submit; immutable once queued. `budget` points into the
  // service's tenant table, valid while jobs can run (the service drains
  // before the table is destroyed).
  VirtualMachine* vm = nullptr;
  std::string tenant;
  std::int32_t method_id = -1;
  std::vector<Slot> args;
  std::uint64_t fuel = 0;
  AllocBudget* budget = nullptr;
  bool returns_ref = false;
  std::int64_t submit_ns = 0;

  // Completion protocol.
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  bool result_pinned = false;  // written before `done` is published
  JobResult result;

  // Unpins through the VM: a handle may outlive the service, but the VM
  // must outlive every handle (service.hpp documents this contract).
  ~State() {
    if (result_pinned) vm->unpin(result.value.ref);
  }
};

JobResult JobHandle::wait(VMContext* ctx) {
  if (ctx != nullptr) state_->vm->enter_safe_region(*ctx);
  JobResult out;
  {
    std::unique_lock<std::mutex> lock(state_->mu);
    state_->cv.wait(lock, [&] { return state_->done; });
    out = state_->result;
  }
  if (ctx != nullptr) state_->vm->leave_safe_region(*ctx);
  return out;
}

bool JobHandle::done() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->done;
}

// ---------------------------------------------------------------------------
// ExecutionService.

ExecutionService::ExecutionService(VirtualMachine& vm,
                                   const EngineProfile& profile,
                                   Options options)
    : vm_(vm), profile_(profile) {
  // Warm-start before any worker exists: attach is cheap (refcount + cache
  // stores, no compilation), and doing it here means the very first job a
  // worker picks up already dispatches into the archived optimized code.
  if (options.warm_start != nullptr &&
      options.warm_start->profile() == profile_.name) {
    attach_archive(vm_, options.warm_start);
  }
  const int n = options.workers < 1 ? 1 : options.workers;
  threads_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    threads_.emplace_back([this, i] { worker_main(static_cast<std::size_t>(i)); });
  }
}

ExecutionService::~ExecutionService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ExecutionService::add_tenant(const TenantConfig& config) {
  auto tenant = std::make_shared<Tenant>();
  tenant->config = config;
  if (config.memory_budget_bytes > 0) {
    tenant->budget = std::make_unique<AllocBudget>(config.memory_budget_bytes);
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (!tenants_.emplace(config.name, std::move(tenant)).second) {
    throw std::invalid_argument("execution service: duplicate tenant " +
                                config.name);
  }
}

JobHandle ExecutionService::submit(const std::string& tenant,
                                   std::int32_t method_id,
                                   std::vector<Slot> args) {
  auto state = std::make_shared<JobHandle::State>();
  state->vm = &vm_;
  state->tenant = tenant;
  state->method_id = method_id;
  state->args = std::move(args);
  state->submit_ns = support::now_ns();

  std::shared_ptr<Tenant> ten;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = tenants_.find(tenant);
    if (it == tenants_.end()) {
      throw std::invalid_argument("execution service: unknown tenant " +
                                  tenant);
    }
    ten = it->second;
  }
  state->fuel = ten->config.fuel_per_job;
  state->budget = ten->budget.get();

  // Shape validation up front; IL verification itself happens behind the
  // workers' per-method verify latch (a raw verify() here would race it).
  Module& mod = vm_.module();
  JobResult reject;
  reject.outcome = JobOutcome::Rejected;
  if (method_id < 0 ||
      static_cast<std::size_t>(method_id) >= mod.method_count()) {
    reject.error = "bad method id";
  } else if (state->args.size() != mod.method(method_id).num_args()) {
    reject.error = "argument count mismatch";
  } else {
    state->returns_ref = mod.method(method_id).sig.ret == ValType::Ref;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) {
        throw std::logic_error("execution service: already stopping");
      }
      queue_.push_back(state);
    }
    work_cv_.notify_one();
    return JobHandle(state);
  }
  finish(*state, std::move(reject));
  return JobHandle(state);
}

void ExecutionService::drain(VMContext* ctx) {
  if (ctx != nullptr) vm_.enter_safe_region(*ctx);
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [&] { return queue_.empty() && in_flight_ == 0; });
  }
  if (ctx != nullptr) vm_.leave_safe_region(*ctx);
}

std::shared_ptr<const CodeArchive> ExecutionService::capture_snapshot(
    VMContext* ctx) {
  // Quiesce first: with the queue empty and no job in flight, the workers
  // are parked in their wait loops — nothing is executing or compiling
  // against the profile's cache while capture walks it.
  drain(ctx);
  return capture_archive(vm_, profile_.name);
}

TenantStats ExecutionService::tenant_stats(const std::string& tenant) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = stats_.find(tenant);
  return it != stats_.end() ? it->second : TenantStats{};
}

void ExecutionService::worker_main(std::size_t /*index*/) {
  // Each worker owns an engine built from the service profile; engines
  // sharing a VM and a profile name share compiled code (CodeCache), so
  // tier-up / OSR work done for one tenant's job benefits every worker.
  std::unique_ptr<Engine> engine = make_engine(vm_, profile_);
  std::unique_ptr<VMContext> ctx = vm_.attach_thread(engine.get());
  for (;;) {
    std::shared_ptr<JobHandle::State> job;
    // Park GC-safe while the queue is empty: a collection triggered by a
    // busy worker must not wait on an idle one. mu_ is never held across
    // the safe-region transitions (leave may park for an in-flight GC).
    vm_.enter_safe_region(*ctx);
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] { return stopping_ || !queue_.empty(); });
      if (!queue_.empty()) {
        job = std::move(queue_.front());
        queue_.pop_front();
        ++in_flight_;
      }
    }
    vm_.leave_safe_region(*ctx);
    if (job == nullptr) break;  // stopping, queue fully drained
    run_job(*ctx, *engine, *job);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
    }
    drain_cv_.notify_all();
  }
  vm_.detach_thread(*ctx);
}

void ExecutionService::run_job(VMContext& ctx, Engine& engine,
                               JobHandle::State& job) {
  const std::int64_t start_ns = support::now_ns();
  JobResult res;
  res.queue_ns = start_ns - job.submit_ns;

  // Arm the per-job fuel meter. Fuel is charged in taken backward branches
  // at the backends' pulse cadence, so the measured kill point is exact to
  // within one pulse window and identical run to run.
  if (job.fuel > 0) {
    ctx.fuel.active = true;
    // Clamp: a configured fuel_per_job above INT64_MAX means "effectively
    // unmetered", not a meter armed already negative.
    ctx.fuel.remaining = static_cast<std::int64_t>(std::min<std::uint64_t>(
        job.fuel, std::numeric_limits<std::int64_t>::max()));
    ctx.fuel.spent = 0;
  }
  // Bind the tenant's allocation budget, retiring the TLAB window on both
  // sides of the job so no window acquired under one accounting regime is
  // bumped under another.
  if (job.budget != nullptr) {
    vm_.heap().retire_tlab(ctx.tlab);
    ctx.tlab.bind_budget(job.budget);
  }

  try {
    Slot value = engine.invoke(ctx, job.method_id,
                               std::span<const Slot>(job.args));
    res.outcome = JobOutcome::Completed;
    res.value = value;
  } catch (const ManagedException& e) {
    if (e.class_name() == "HPCNet.FuelExhaustedException") {
      res.outcome = JobOutcome::KilledFuel;
    } else if (e.class_name() == "System.OutOfMemoryException") {
      res.outcome = JobOutcome::KilledMemory;
    } else {
      res.outcome = JobOutcome::Faulted;
    }
    res.error = e.what();
  } catch (const VerifyError& e) {
    res.outcome = JobOutcome::Rejected;
    res.error = e.what();
  } catch (const std::exception& e) {
    res.outcome = JobOutcome::Faulted;
    res.error = e.what();
  }

  // Disarm and read back the job's accounting. Frame-exit residual flushes
  // ran during unwinding, so `spent` is complete here.
  res.fuel_spent = ctx.fuel.spent;
  ctx.fuel = FuelMeter{};
  if (job.budget != nullptr) {
    vm_.heap().retire_tlab(ctx.tlab);
    res.bytes_charged = ctx.tlab.budget_charged();
    ctx.tlab.bind_budget(nullptr);
    // The budget caps in-flight allocation, not a lifetime total: the job is
    // over, its garbage belongs to the next GC, the headroom to the tenant.
    job.budget->release(res.bytes_charged);
  }
  // Root a ref-typed result for as long as a handle can observe it
  // (~State unpins).
  if (res.outcome == JobOutcome::Completed && job.returns_ref &&
      res.value.ref != nullptr) {
    vm_.pin(res.value.ref);
    job.result_pinned = true;
  }
  res.run_ns = support::now_ns() - start_ns;
  finish(job, std::move(res));
}

void ExecutionService::finish(JobHandle::State& job, JobResult result) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    TenantStats& st = stats_[job.tenant];
    switch (result.outcome) {
      case JobOutcome::Completed: st.jobs_completed += 1; break;
      case JobOutcome::KilledFuel: st.jobs_killed_fuel += 1; break;
      case JobOutcome::KilledMemory: st.jobs_killed_memory += 1; break;
      case JobOutcome::Faulted: st.jobs_faulted += 1; break;
      case JobOutcome::Rejected: st.jobs_rejected += 1; break;
    }
    st.fuel_spent += result.fuel_spent;
    st.bytes_charged += result.bytes_charged;
    st.queue_ns += result.queue_ns;
    st.run_ns += result.run_ns;
  }
  telemetry::record_service_job(job.tenant,
                                static_cast<std::uint8_t>(result.outcome),
                                result.fuel_spent, result.bytes_charged,
                                result.queue_ns, result.run_ns);
  {
    std::lock_guard<std::mutex> lock(job.mu);
    job.result = std::move(result);
    job.done = true;
  }
  job.cv.notify_all();
}

}  // namespace hpcnet::vm::service

// The VM-owned code cache behind the tiered execution pipeline (DESIGN.md
// §"Tiered execution"). One CodeCache per engine profile holds the per-method
// CodeEntry table: hotness counters, the method's current dispatch tier,
// published compiled bodies keyed by (method_id, tier), and a per-method
// compile latch.
//
// Locking discipline:
//   - entry() is lock-free once the entry's chunk exists (chunks are
//     allocated under mu_ and published with release stores; entries never
//     move, so readers index concurrently with growth).
//   - Entry::latch serializes verification and compilation of ONE method.
//     regir::compile runs under the method's latch only — never under a
//     cache-wide lock — so different methods compile concurrently.
//   - A thread must never hold one entry's latch while acquiring another's:
//     the inline pass verifies callees, so compile callers pre-verify the
//     transitive callee set (each under its own latch) before latching the
//     method being compiled. This is what makes mutually-inlining methods
//     deadlock-free.
//   - mu_ guards only chunk allocation and ownership of compiled bodies;
//     it is held for pointer pushes, never across verify/compile.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

namespace hpcnet::vm {

namespace regir {
struct RCode;
}

class CodeCache {
 public:
  static constexpr std::size_t kNumTiers = 3;  // Tier::Interp..Optimizing

  /// Per-method tiering state. Writers publish code[t] (release) before
  /// raising `tier` (release); readers that load `tier` with acquire and see
  /// Optimizing may load code[Optimizing] relaxed and rely on it non-null.
  struct Entry {
    std::atomic<std::uint32_t> hotness{0};  // invocations + capped back-edges
    std::atomic<std::uint8_t> tier{0};      // current dispatch Tier
    std::atomic<bool> verified{false};      // method passed IL verification
    std::atomic<const regir::RCode*> code[kNumTiers] = {};
    /// Bumped by TieredEngine::request_deopt. Compiled frames capture the
    /// generation at entry and bail out (deopt) at the next back-edge
    /// safepoint once it no longer matches — the hook speculative
    /// optimizations use to invalidate running code.
    std::atomic<std::uint32_t> deopt_generation{0};
    /// Synchronized OSR/deopt event counts for this method (continuations
    /// report against their root method's entry). Telemetry keeps the same
    /// tallies in thread-local sinks, but those only merge safely once the
    /// recording threads quiesce; these atomics are pollable mid-run.
    std::atomic<std::uint32_t> osr_entries{0};
    std::atomic<std::uint32_t> deopts{0};
    std::mutex latch;  // serializes this method's verify/compile
  };

  CodeCache();  // out of line: members hold the still-incomplete RCode
  ~CodeCache();
  CodeCache(const CodeCache&) = delete;
  CodeCache& operator=(const CodeCache&) = delete;

  /// The entry for `method_id`; lock-free after first touch of its chunk.
  Entry& entry(std::int32_t method_id) {
    const auto id = static_cast<std::size_t>(method_id);
    Chunk* c = chunks_[id >> kChunkBits].load(std::memory_order_acquire);
    if (c == nullptr) c = grow(id >> kChunkBits);
    return c->entries[id & (kChunkSize - 1)];
  }

  /// Retains a shared reference to a compiled body; the returned pointer
  /// stays valid for the cache's lifetime (entries publish it, never free
  /// it). Ownership is refcounted so the same immutable body can be held by
  /// many VMs' caches and by a CodeArchive (src/vm/archive.hpp) at once —
  /// the cache is now only the mutable per-VM tier-state layer over bodies
  /// that may outlive it.
  const regir::RCode* adopt(std::shared_ptr<const regir::RCode> code);

  /// The shared handle behind a pointer previously returned by adopt(), or
  /// null for a foreign pointer. This is how snapshot capture recovers
  /// refcounted ownership of published bodies (archive.cpp); rare-path, so
  /// it takes mu_.
  std::shared_ptr<const regir::RCode> shared_code(
      const regir::RCode* code) const;

  /// The OSR entry keyed (method body, loop-header pc). Bodies at distinct
  /// headers compile independently; continuations of a deopted continuation
  /// re-key by their own body pointer, so the map also backs re-OSR. Takes
  /// mu_ (OSR compiles are rare — once per hot loop header); the returned
  /// reference is stable for the cache's lifetime.
  Entry& osr_entry(const void* body, std::int32_t header_pc);

 private:
  static constexpr std::size_t kChunkBits = 9;
  static constexpr std::size_t kChunkSize = std::size_t{1} << kChunkBits;
  static constexpr std::size_t kMaxChunks = 128;  // 65536 methods

  struct Chunk {
    Entry entries[kChunkSize];
  };

  Chunk* grow(std::size_t chunk_index);

  mutable std::mutex mu_;
  std::atomic<Chunk*> chunks_[kMaxChunks] = {};
  // Keyed by raw pointer so shared_code() can recover the refcounted handle
  // for any published body (capture into a CodeArchive).
  std::map<const regir::RCode*, std::shared_ptr<const regir::RCode>> owned_;
  // Entries are address-stable (they hold atomics and a mutex), so the OSR
  // map stores them behind unique_ptr.
  std::map<std::pair<const void*, std::int32_t>, std::unique_ptr<Entry>>
      osr_entries_;
};

}  // namespace hpcnet::vm

#include "vm/intrinsics.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <thread>

#include "support/timer.hpp"
#include "vm/execution.hpp"
#include "vm/monitor.hpp"
#include "vm/serialize.hpp"

namespace hpcnet::vm {

namespace {

// -- System.Math ------------------------------------------------------------

void abs_i4(VMContext&, const Slot* a, Slot* r) {
  const std::int32_t v = a[0].i32;
  *r = Slot::from_i32(v < 0 ? -v : v);
}
void abs_i8(VMContext&, const Slot* a, Slot* r) {
  const std::int64_t v = a[0].i64;
  *r = Slot::from_i64(v < 0 ? -v : v);
}
void abs_r4(VMContext&, const Slot* a, Slot* r) {
  *r = Slot::from_f32(std::fabs(a[0].f32));
}
void abs_r8(VMContext&, const Slot* a, Slot* r) {
  *r = Slot::from_f64(std::fabs(a[0].f64));
}
void max_i4(VMContext&, const Slot* a, Slot* r) {
  *r = Slot::from_i32(std::max(a[0].i32, a[1].i32));
}
void max_i8(VMContext&, const Slot* a, Slot* r) {
  *r = Slot::from_i64(std::max(a[0].i64, a[1].i64));
}
void max_r4(VMContext&, const Slot* a, Slot* r) {
  *r = Slot::from_f32(std::fmax(a[0].f32, a[1].f32));
}
void max_r8(VMContext&, const Slot* a, Slot* r) {
  *r = Slot::from_f64(std::fmax(a[0].f64, a[1].f64));
}
void min_i4(VMContext&, const Slot* a, Slot* r) {
  *r = Slot::from_i32(std::min(a[0].i32, a[1].i32));
}
void min_i8(VMContext&, const Slot* a, Slot* r) {
  *r = Slot::from_i64(std::min(a[0].i64, a[1].i64));
}
void min_r4(VMContext&, const Slot* a, Slot* r) {
  *r = Slot::from_f32(std::fmin(a[0].f32, a[1].f32));
}
void min_r8(VMContext&, const Slot* a, Slot* r) {
  *r = Slot::from_f64(std::fmin(a[0].f64, a[1].f64));
}
void m_sin(VMContext&, const Slot* a, Slot* r) { *r = Slot::from_f64(std::sin(a[0].f64)); }
void m_cos(VMContext&, const Slot* a, Slot* r) { *r = Slot::from_f64(std::cos(a[0].f64)); }
void m_tan(VMContext&, const Slot* a, Slot* r) { *r = Slot::from_f64(std::tan(a[0].f64)); }
void m_asin(VMContext&, const Slot* a, Slot* r) { *r = Slot::from_f64(std::asin(a[0].f64)); }
void m_acos(VMContext&, const Slot* a, Slot* r) { *r = Slot::from_f64(std::acos(a[0].f64)); }
void m_atan(VMContext&, const Slot* a, Slot* r) { *r = Slot::from_f64(std::atan(a[0].f64)); }
void m_atan2(VMContext&, const Slot* a, Slot* r) {
  *r = Slot::from_f64(std::atan2(a[0].f64, a[1].f64));
}
void m_floor(VMContext&, const Slot* a, Slot* r) { *r = Slot::from_f64(std::floor(a[0].f64)); }
void m_ceil(VMContext&, const Slot* a, Slot* r) { *r = Slot::from_f64(std::ceil(a[0].f64)); }
void m_sqrt(VMContext&, const Slot* a, Slot* r) { *r = Slot::from_f64(std::sqrt(a[0].f64)); }
void m_exp(VMContext&, const Slot* a, Slot* r) { *r = Slot::from_f64(std::exp(a[0].f64)); }
void m_log(VMContext&, const Slot* a, Slot* r) { *r = Slot::from_f64(std::log(a[0].f64)); }
void m_pow(VMContext&, const Slot* a, Slot* r) {
  *r = Slot::from_f64(std::pow(a[0].f64, a[1].f64));
}
void m_rint(VMContext&, const Slot* a, Slot* r) { *r = Slot::from_f64(std::rint(a[0].f64)); }
void m_round_r4(VMContext&, const Slot* a, Slot* r) {
  // Java Math.round(float): floor(x + 0.5f) as int — both benchmark sources
  // kept this semantic, so we do too.
  *r = Slot::from_i32(static_cast<std::int32_t>(
      std::floor(static_cast<double>(a[0].f32) + 0.5)));
}
void m_round_r8(VMContext&, const Slot* a, Slot* r) {
  *r = Slot::from_i64(static_cast<std::int64_t>(std::floor(a[0].f64 + 0.5)));
}
void m_random(VMContext& ctx, const Slot*, Slot* r) {
  *r = Slot::from_f64(ctx.math_random.next_double());
}

// -- System.Threading --------------------------------------------------------

void t_start(VMContext& ctx, const Slot* a, Slot* r) {
  *r = Slot::from_ref(ctx.vm->start_thread(ctx, a[0].i32, a[1].ref));
}
void t_join(VMContext& ctx, const Slot* a, Slot*) {
  ctx.vm->join_thread(ctx, a[0].ref);
}
void t_id(VMContext& ctx, const Slot*, Slot* r) {
  *r = Slot::from_i32(static_cast<std::int32_t>(ctx.thread_id));
}
void t_yield(VMContext&, const Slot*, Slot*) { std::this_thread::yield(); }
void t_sleep(VMContext& ctx, const Slot* a, Slot*) {
  ctx.vm->enter_safe_region(ctx);
  std::this_thread::sleep_for(std::chrono::milliseconds(a[0].i32));
  ctx.vm->leave_safe_region(ctx);
}

void null_monitor_error(VMContext& ctx) {
  ctx.vm->throw_exception(ctx, ctx.vm->module().null_reference_class(),
                          "Monitor on null object");
}
void lock_error(VMContext& ctx) {
  ctx.vm->throw_exception(ctx, ctx.vm->module().exception_class(),
                          "monitor not owned by caller");
}
void mon_enter(VMContext& ctx, const Slot* a, Slot*) {
  if (a[0].ref == nullptr) return null_monitor_error(ctx);
  ctx.vm->monitors().enter(ctx, a[0].ref);
}
void mon_exit(VMContext& ctx, const Slot* a, Slot*) {
  if (a[0].ref == nullptr) return null_monitor_error(ctx);
  if (!ctx.vm->monitors().exit(ctx, a[0].ref)) lock_error(ctx);
}
void mon_wait(VMContext& ctx, const Slot* a, Slot*) {
  if (a[0].ref == nullptr) return null_monitor_error(ctx);
  if (!ctx.vm->monitors().wait(ctx, a[0].ref)) lock_error(ctx);
}
void mon_pulse(VMContext& ctx, const Slot* a, Slot*) {
  if (a[0].ref == nullptr) return null_monitor_error(ctx);
  if (!ctx.vm->monitors().pulse(ctx, a[0].ref)) lock_error(ctx);
}
void mon_pulseall(VMContext& ctx, const Slot* a, Slot*) {
  if (a[0].ref == nullptr) return null_monitor_error(ctx);
  if (!ctx.vm->monitors().pulse_all(ctx, a[0].ref)) lock_error(ctx);
}

// -- Serialization ------------------------------------------------------------

void ser(VMContext& ctx, const Slot* a, Slot* r) {
  try {
    *r = Slot::from_ref(serialize_to_string(*ctx.vm, ctx, a[0].ref));
  } catch (const SerializeError& e) {
    ctx.vm->throw_exception(ctx, ctx.vm->module().exception_class(), e.what());
  }
}
void deser(VMContext& ctx, const Slot* a, Slot* r) {
  try {
    *r = Slot::from_ref(deserialize_from_string(*ctx.vm, ctx, a[0].ref));
  } catch (const SerializeError& e) {
    ctx.vm->throw_exception(ctx, ctx.vm->module().exception_class(), e.what());
  }
}

// -- Utilities ----------------------------------------------------------------

void now_ns(VMContext&, const Slot*, Slot* r) {
  *r = Slot::from_i64(support::now_ns());
}
void strlen_(VMContext& ctx, const Slot* a, Slot* r) {
  if (a[0].ref == nullptr) {
    ctx.vm->throw_exception(ctx, ctx.vm->module().null_reference_class(),
                            "strlen on null");
    return;
  }
  *r = Slot::from_i32(a[0].ref->length);
}
void gc_collect(VMContext& ctx, const Slot*, Slot*) { ctx.vm->collect(); }
void gc_pretouch(VMContext& ctx, const Slot* a, Slot*) {
  ctx.vm->heap().pretouch(a[0].ref);
}
void print_i4(VMContext&, const Slot* a, Slot*) {
  std::printf("%d\n", a[0].i32);
}
void print_r8(VMContext&, const Slot* a, Slot*) {
  std::printf("%.17g\n", a[0].f64);
}
void print_str(VMContext&, const Slot* a, Slot*) {
  if (a[0].ref != nullptr) {
    std::fwrite(a[0].ref->chars(), 1,
                static_cast<std::size_t>(a[0].ref->length), stdout);
    std::fputc('\n', stdout);
  }
}

using VT = ValType;

const IntrinsicDef kTable[] = {
    {"Math.AbsI4", {{VT::I32}, VT::I32}, abs_i4, true},
    {"Math.AbsI8", {{VT::I64}, VT::I64}, abs_i8, true},
    {"Math.AbsR4", {{VT::F32}, VT::F32}, abs_r4, true},
    {"Math.AbsR8", {{VT::F64}, VT::F64}, abs_r8, true},
    {"Math.MaxI4", {{VT::I32, VT::I32}, VT::I32}, max_i4, true},
    {"Math.MaxI8", {{VT::I64, VT::I64}, VT::I64}, max_i8, true},
    {"Math.MaxR4", {{VT::F32, VT::F32}, VT::F32}, max_r4, true},
    {"Math.MaxR8", {{VT::F64, VT::F64}, VT::F64}, max_r8, true},
    {"Math.MinI4", {{VT::I32, VT::I32}, VT::I32}, min_i4, true},
    {"Math.MinI8", {{VT::I64, VT::I64}, VT::I64}, min_i8, true},
    {"Math.MinR4", {{VT::F32, VT::F32}, VT::F32}, min_r4, true},
    {"Math.MinR8", {{VT::F64, VT::F64}, VT::F64}, min_r8, true},
    {"Math.Sin", {{VT::F64}, VT::F64}, m_sin, true},
    {"Math.Cos", {{VT::F64}, VT::F64}, m_cos, true},
    {"Math.Tan", {{VT::F64}, VT::F64}, m_tan, true},
    {"Math.Asin", {{VT::F64}, VT::F64}, m_asin, true},
    {"Math.Acos", {{VT::F64}, VT::F64}, m_acos, true},
    {"Math.Atan", {{VT::F64}, VT::F64}, m_atan, true},
    {"Math.Atan2", {{VT::F64, VT::F64}, VT::F64}, m_atan2, true},
    {"Math.Floor", {{VT::F64}, VT::F64}, m_floor, true},
    {"Math.Ceil", {{VT::F64}, VT::F64}, m_ceil, true},
    {"Math.Sqrt", {{VT::F64}, VT::F64}, m_sqrt, true},
    {"Math.Exp", {{VT::F64}, VT::F64}, m_exp, true},
    {"Math.Log", {{VT::F64}, VT::F64}, m_log, true},
    {"Math.Pow", {{VT::F64, VT::F64}, VT::F64}, m_pow, true},
    {"Math.Rint", {{VT::F64}, VT::F64}, m_rint, true},
    {"Math.RoundR4", {{VT::F32}, VT::I32}, m_round_r4, true},
    {"Math.RoundR8", {{VT::F64}, VT::I64}, m_round_r8, true},
    {"Math.Random", {{}, VT::F64}, m_random, false},

    {"Thread.Start", {{VT::I32, VT::Ref}, VT::Ref}, t_start, false},
    {"Thread.Join", {{VT::Ref}, VT::None}, t_join, false},
    {"Thread.CurrentId", {{}, VT::I32}, t_id, false},
    {"Thread.Yield", {{}, VT::None}, t_yield, false},
    {"Thread.Sleep", {{VT::I32}, VT::None}, t_sleep, false},
    {"Monitor.Enter", {{VT::Ref}, VT::None}, mon_enter, false},
    {"Monitor.Exit", {{VT::Ref}, VT::None}, mon_exit, false},
    {"Monitor.Wait", {{VT::Ref}, VT::None}, mon_wait, false},
    {"Monitor.Pulse", {{VT::Ref}, VT::None}, mon_pulse, false},
    {"Monitor.PulseAll", {{VT::Ref}, VT::None}, mon_pulseall, false},

    {"Serializer.Serialize", {{VT::Ref}, VT::Ref}, ser, false},
    {"Serializer.Deserialize", {{VT::Ref}, VT::Ref}, deser, false},

    {"Env.NowNs", {{}, VT::I64}, now_ns, false},
    {"String.Length", {{VT::Ref}, VT::I32}, strlen_, false},
    {"GC.Collect", {{}, VT::None}, gc_collect, false},
    {"Console.WriteI4", {{VT::I32}, VT::None}, print_i4, false},
    {"Console.WriteR8", {{VT::F64}, VT::None}, print_r8, false},
    {"Console.WriteStr", {{VT::Ref}, VT::None}, print_str, false},
    {"GC.PretouchArray", {{VT::Ref}, VT::None}, gc_pretouch, false},
};

static_assert(sizeof(kTable) / sizeof(kTable[0]) == I_COUNT_,
              "intrinsic table out of sync with Intr enum");

}  // namespace

const IntrinsicDef& intrinsic(std::int32_t id) {
  return kTable[static_cast<std::size_t>(id)];
}

}  // namespace hpcnet::vm

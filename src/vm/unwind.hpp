// Shared structured-exception-handling state machine. Each engine keeps one
// UnwindMachine per frame and consults it on throw / leave / endfinally; the
// machine walks the method's handler table (innermost-first), interleaving
// finally blocks with the catch search exactly as the CLI two-pass model
// requires. Engines only differ in how they map the returned IL pc into
// their own code representation.
#pragma once

#include <cstdint>
#include <vector>

#include "vm/module.hpp"
#include "vm/value.hpp"

namespace hpcnet::vm {

class Module;

/// Result of an unwind step.
struct UnwindAction {
  enum class Kind {
    Propagate,     // no handler here: pop the frame, rethrow in the caller
    EnterCatch,    // jump to pc; clear the stack and push the exception
    EnterFinally,  // jump to pc with an empty stack
    Resume,        // normal completion of a leave: jump to pc
  } kind = Kind::Propagate;
  std::int32_t pc = -1;
  /// Index into MethodDef::handlers for EnterCatch/EnterFinally (the
  /// Optimizing tier uses it to find the handler's exception register).
  std::int32_t handler_index = -1;
};

class UnwindMachine {
 public:
  /// Starts exception dispatch at `throw_pc`. Finds the first applicable
  /// handler, running intervening finally blocks first.
  UnwindAction on_throw(const Module& mod, const MethodDef& m,
                        std::int32_t throw_pc, ObjRef exc);

  /// Handles `leave target` at `leave_pc`: queues the finally blocks whose
  /// try range covers the leave but not the target.
  UnwindAction on_leave(const MethodDef& m, std::int32_t leave_pc,
                        std::int32_t target);

  /// Handles `endfinally`: continues the interrupted unwind or leave.
  UnwindAction on_endfinally(const Module& mod, const MethodDef& m);

  /// The in-flight exception (valid while unwinding).
  ObjRef exception() const { return exc_; }
  bool unwinding() const { return mode_ == Mode::Throw; }
  /// No throw OR leave in flight. OSR and deopt transfer only locals and the
  /// operand stack, so both are gated on an idle machine — a frame executing
  /// a finally on behalf of an unwind keeps its pending-finally queue here
  /// and must not be torn out from under it.
  bool idle() const { return mode_ == Mode::None; }
  void reset() {
    mode_ = Mode::None;
    exc_ = nullptr;
    pending_finallys_.clear();
    pending_finally_idx_.clear();
  }

 private:
  enum class Mode { None, Throw, Leave };

  UnwindAction search(const Module& mod, const MethodDef& m);

  Mode mode_ = Mode::None;
  ObjRef exc_ = nullptr;
  std::int32_t throw_pc_ = -1;
  std::size_t next_handler_ = 0;
  std::vector<std::int32_t> pending_finallys_;  // for Mode::Leave, in order
  std::vector<std::int32_t> pending_finally_idx_;
  std::size_t next_finally_ = 0;
  std::int32_t leave_target_ = -1;
};

/// True if `pc` lies in the handler's try range.
inline bool covers(const ExHandler& h, std::int32_t pc) {
  return pc >= h.try_begin && pc < h.try_end;
}

}  // namespace hpcnet::vm

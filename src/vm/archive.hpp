// The immutable half of the code-cache split (DESIGN.md §13): a CodeArchive
// is a refcounted, read-only collection of published regir::RCode bodies
// plus per-method tier/hotness snapshots, captured from one VM's CodeCache
// and attachable to any number of others. The CodeCache keeps the mutable
// per-VM tier state (hotness counters, latches, deopt generations); the
// archive owns nothing mutable, so N VM instances in one process can share
// one archive — and boot pre-warmed from it — without recompiling or
// copying a single body.
//
// Method identity across VMs is (method id, name, content hash of the
// verified IL). The hash covers the method's own verified body, the string
// pool entries and class layouts it references, and the transitive CALL
// target set — everything a compiled body bakes in by id — so an archive
// captured against a different program degrades to a cold miss instead of
// running wrong code.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hpcnet::vm {

class Module;
class VirtualMachine;

namespace regir {
struct RCode;
}

class CodeArchive {
 public:
  struct MethodRecord {
    std::int32_t method_id = -1;
    std::string name;
    std::uint64_t il_hash = 0;
    std::uint8_t tier = 0;      // snapshotted dispatch Tier (numeric)
    std::uint32_t hotness = 0;  // snapshotted hotness counter
    /// Published optimizing-tier body; null when the method was snapshotted
    /// below Tier::Optimizing (tier/hotness still warm-start the counters).
    std::shared_ptr<const regir::RCode> code;
  };

  CodeArchive(std::string profile, std::vector<MethodRecord> records)
      : profile_(std::move(profile)), records_(std::move(records)) {}

  /// The engine-profile name whose CodeCache this archive snapshots; attach
  /// targets the same-named cache, so profiles with differing pass mixes
  /// never exchange code.
  const std::string& profile() const { return profile_; }
  const std::vector<MethodRecord>& records() const { return records_; }

 private:
  std::string profile_;
  std::vector<MethodRecord> records_;
};

struct ArchiveStats {
  std::size_t restored = 0;  // records written into the cache
  std::size_t missed = 0;    // records rejected (id/name/hash mismatch)
};

/// Content hash (FNV-1a 64) of the verified IL of `method_id` plus the
/// module state its compiled form bakes in: referenced strings, referenced
/// class layouts, and the transitive CALL target set (each hashed the same
/// way). The method (and every transitive callee) must already be verified;
/// out-of-range ids poison the hash rather than faulting.
std::uint64_t il_content_hash(const Module& module, std::int32_t method_id);

/// Snapshots `vm`'s CodeCache for `profile_name` into an immutable archive.
/// The VM must be quiesced: no engine may be executing or compiling against
/// this cache during capture (ExecutionService::capture_snapshot drains
/// first; tests/CLIs capture between invocations).
std::shared_ptr<const CodeArchive> capture_archive(
    VirtualMachine& vm, const std::string& profile_name);

/// Warm-starts `vm`'s cache for the archive's profile: every record whose
/// (id, name, verified-IL hash) matches the local module is published at its
/// snapshotted tier and hotness — a subsequent first call runs straight from
/// the archived optimized body, compiling nothing. Mismatches are counted
/// and skipped (the method stays cold and compiles normally). Verifies each
/// matching method under the VM-shared verify latch, so attaching to a VM
/// with engines already running is safe; entries already warm are left
/// untouched.
ArchiveStats attach_archive(VirtualMachine& vm,
                            const std::shared_ptr<const CodeArchive>& archive);

}  // namespace hpcnet::vm

// TieredEngine: hotness-driven dispatch across the three tier backends.
//
// The CodeEntry state machine (DESIGN.md "Tiered execution"):
//
//   unverified --verify--> Interp --h >= baseline_threshold--> Baseline
//              (tiny bodies skip straight to Baseline on their first call)
//       Baseline/Interp --h >= opt_threshold--> Optimizing (compiled)
//
// Hotness h = invocations + per-frame-capped back-edge credit. Promotion
// happens only at call boundaries: a frame executing when its method tiers
// up simply finishes on the old tier (no on-stack replacement), which is
// what keeps every tier bit-identical — the tiers already agree on results
// instruction-for-instruction, so WHERE a frame runs can never change WHAT
// it computes.
//
// Locking: verification takes the VM-shared per-method verify latch;
// compilation takes this profile's per-method latch. Neither is ever held
// while acquiring another method's latch — the inline pass's callees are
// verified (transitively) up front — and regir::compile runs outside any
// cache-wide lock, so distinct methods compile concurrently.
#include <algorithm>
#include <vector>

#include "support/timer.hpp"
#include "vm/engines.hpp"
#include "vm/regcompile.hpp"
#include "vm/regir.hpp"
#include "vm/telemetry/telemetry.hpp"
#include "vm/verifier.hpp"

namespace hpcnet::vm {

namespace {
constexpr std::uint8_t kOpt = static_cast<std::uint8_t>(Tier::Optimizing);
}

TieredEngine::TieredEngine(VirtualMachine& vm, EngineProfile profile)
    : vm_(vm),
      profile_(std::move(profile)),
      tiered_(profile_.tiering.mode == TierMode::Tiered),
      cache_(vm.code_cache(profile_.name)),
      vcache_(vm.code_cache("<verify>")),
      interp_(make_interp_backend(vm, *this)),
      baseline_(make_baseline_backend(vm, *this)),
      opt_(make_optimizing_backend(vm, *this)) {}

TieredEngine::~TieredEngine() = default;

Slot TieredEngine::do_invoke(VMContext& ctx, const MethodDef& m, Slot* args) {
  return call(ctx, m.id, args);
}

Slot TieredEngine::call(VMContext& ctx, std::int32_t method_id,
                        const Slot* args) {
  CodeCache::Entry& e = cache_.entry(method_id);
  // Hot path: the method reached the optimizing tier (or Single mode already
  // compiled it) — the acquire load of `tier` makes the relaxed code load
  // safe, see CodeCache::Entry.
  if (e.tier.load(std::memory_order_acquire) == kOpt) {
    return opt_->run_compiled(
        ctx, *e.code[kOpt].load(std::memory_order_relaxed), args);
  }
  const MethodDef& m = vm_.module().method(method_id);
  if (!tiered_) {
    switch (profile_.tier) {
      case Tier::Interp: return interp_->execute(ctx, m, args);
      case Tier::Baseline: return baseline_->execute(ctx, m, args);
      case Tier::Optimizing:
        return opt_->run_compiled(ctx, compile_optimizing(e, m), args);
    }
  }
  // Tiered slow path: count the invocation and maybe promote. Once a method
  // sits at the policy's max tier the counters stop (no steady-state cost
  // for interp-only / baseline-capped shapes, and no counter overflow).
  const TierPolicy& pol = profile_.tiering;
  Tier t = static_cast<Tier>(e.tier.load(std::memory_order_relaxed));
  if (t < pol.max_tier) {
    const std::uint32_t h =
        e.hotness.fetch_add(1, std::memory_order_relaxed) + 1;
    t = maybe_promote(e, m, h);
    if (t == Tier::Optimizing) {
      return opt_->run_compiled(
          ctx, *e.code[kOpt].load(std::memory_order_acquire), args);
    }
  }
  return t == Tier::Baseline ? baseline_->execute(ctx, m, args)
                             : interp_->execute(ctx, m, args);
}

Tier TieredEngine::maybe_promote(CodeCache::Entry& e, const MethodDef& m,
                                 std::uint32_t hotness) {
  const TierPolicy& pol = profile_.tiering;
  Tier cur = static_cast<Tier>(e.tier.load(std::memory_order_relaxed));
  Tier want = cur;
  if (cur == Tier::Interp && (hotness >= pol.baseline_threshold ||
                              m.il_size() <= pol.tiny_method_il)) {
    want = Tier::Baseline;
  }
  if (hotness >= pol.opt_threshold) want = Tier::Optimizing;
  if (want > pol.max_tier) want = pol.max_tier;
  if (want <= cur) return cur;
  if (want == Tier::Optimizing) {
    compile_optimizing(e, m);  // publishes code + raises tier
    return Tier::Optimizing;
  }
  // Interp -> Baseline needs no compiled artifact: a monotonic max on the
  // tier byte. Only the winning CAS records the transition.
  std::uint8_t prev = e.tier.load(std::memory_order_relaxed);
  while (prev < static_cast<std::uint8_t>(want)) {
    if (e.tier.compare_exchange_weak(prev, static_cast<std::uint8_t>(want),
                                     std::memory_order_release,
                                     std::memory_order_relaxed)) {
      telemetry::record_tier_up(m.id, m.name, prev,
                                static_cast<std::uint8_t>(want));
      return want;
    }
  }
  return static_cast<Tier>(prev);
}

const regir::RCode& TieredEngine::compile_optimizing(CodeCache::Entry& e,
                                                     const MethodDef& m) {
  if (const regir::RCode* rc = e.code[kOpt].load(std::memory_order_acquire)) {
    return *rc;
  }
  // All verification happens BEFORE this method's latch is taken: the inline
  // pass verifies callees, and holding latch(A) while waiting on latch(B)
  // would deadlock two threads compiling mutually-inlining methods.
  ensure_verified(m);
  if (profile_.flags.inline_calls) pre_verify_callees(m);
  std::unique_lock<std::mutex> latch(e.latch);
  if (const regir::RCode* rc = e.code[kOpt].load(std::memory_order_relaxed)) {
    return *rc;  // lost the race; the winner already published
  }
  const telemetry::CompileContext tel_engine(profile_.name.c_str());
  const std::int64_t compile_begin = support::now_ns();
  auto compiled = std::make_unique<const regir::RCode>(
      regir::compile(vm_.module(), m, profile_.flags));
  const regir::RCode* rc = cache_.adopt(std::move(compiled));
  e.code[kOpt].store(rc, std::memory_order_release);
  const std::uint8_t prev =
      e.tier.exchange(kOpt, std::memory_order_release);
  latch.unlock();
  telemetry::record_compile(m.id, m.name, compile_begin, support::now_ns());
  if (tiered_ && prev != kOpt) {
    telemetry::record_tier_up(m.id, m.name, prev, kOpt);
  }
  return *rc;
}

const regir::RCode* TieredEngine::opt_code_for_call(std::int32_t method_id) {
  CodeCache::Entry& e = cache_.entry(method_id);
  if (e.tier.load(std::memory_order_acquire) == kOpt) {
    return e.code[kOpt].load(std::memory_order_relaxed);
  }
  if (tiered_) return nullptr;
  return &compile_optimizing(e, vm_.module().method(method_id));
}

void TieredEngine::note_backedges(std::int32_t method_id,
                                  std::uint32_t taken) {
  CodeCache::Entry& e = cache_.entry(method_id);
  const TierPolicy& pol = profile_.tiering;
  if (static_cast<Tier>(e.tier.load(std::memory_order_relaxed)) >=
      pol.max_tier) {
    return;
  }
  const std::uint32_t credit = std::min(taken, pol.backedge_credit);
  const std::uint32_t h =
      e.hotness.fetch_add(credit, std::memory_order_relaxed) + credit;
  maybe_promote(e, vm_.module().method(method_id), h);
}

void TieredEngine::verify_slow(CodeCache::Entry& e, const MethodDef& m) {
  std::lock_guard<std::mutex> latch(e.latch);
  if (e.verified.load(std::memory_order_relaxed)) return;
  verify(vm_.module(), m.id);
  e.verified.store(true, std::memory_order_release);
}

void TieredEngine::pre_verify_callees(const MethodDef& root) {
  // The transitive CALL-target set (a superset of what the inline pass will
  // actually expand). Each callee is verified under its own latch, one at a
  // time; by the time regir::compile's inline pass calls verify() on a
  // callee it is a synchronized no-op.
  std::vector<std::int32_t> work{root.id};
  std::vector<bool> visited(vm_.module().method_count(), false);
  visited[static_cast<std::size_t>(root.id)] = true;
  while (!work.empty()) {
    const std::int32_t id = work.back();
    work.pop_back();
    const MethodDef& m = vm_.module().method(id);
    if (id != root.id) ensure_verified(m);
    for (const Instr& in : m.code) {
      if (in.op != Op::CALL) continue;
      const auto callee = static_cast<std::size_t>(in.a);
      if (callee < visited.size() && !visited[callee]) {
        visited[callee] = true;
        work.push_back(in.a);
      }
    }
  }
}

std::unique_ptr<Engine> make_engine(VirtualMachine& vm,
                                    const EngineProfile& profile) {
  return std::make_unique<TieredEngine>(vm, profile);
}

}  // namespace hpcnet::vm

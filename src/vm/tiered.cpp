// TieredEngine: hotness-driven dispatch across the three tier backends.
//
// The CodeEntry state machine (DESIGN.md "Tiered execution"):
//
//   unverified --verify--> Interp --h >= baseline_threshold--> Baseline
//              (tiny bodies skip straight to Baseline on their first call)
//       Baseline/Interp --h >= opt_threshold--> Optimizing (compiled)
//
// Hotness h = invocations + per-frame-capped back-edge credit. Methods
// promote at call boundaries; a frame still RUNNING when its loop gets hot
// enters compiled code mid-loop via on-stack replacement (osr_code /
// osr_enter below), and compiled frames can bail back out through the deopt
// side table (request_deopt / deopt_bailout). Both directions move frame
// state through the same device — a verified continuation method whose
// arguments are the live frame (src/vm/osr.hpp) — so WHERE a frame runs
// still can never change WHAT it computes.
//
// Locking: verification takes the VM-shared per-method verify latch;
// compilation takes this profile's per-method latch (OSR continuations get
// their own entry, keyed (body, header pc)). Neither is ever held while
// acquiring another method's latch — the inline pass's callees are verified
// (transitively) up front, and osr_code promotes the root method BEFORE
// taking the continuation's latch — and regir::compile runs outside any
// cache-wide lock, so distinct methods compile concurrently.
#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "support/timer.hpp"
#include "vm/engines.hpp"
#include "vm/osr.hpp"
#include "vm/regcompile.hpp"
#include "vm/regir.hpp"
#include "vm/telemetry/telemetry.hpp"
#include "vm/verifier.hpp"

namespace hpcnet::vm {

namespace {
constexpr std::uint8_t kOpt = static_cast<std::uint8_t>(Tier::Optimizing);

/// Saturating hotness bump: interp-capped policies (rotor/mono `.tiered`)
/// never stop counting via the max-tier early-out alone on methods below
/// their threshold, and an unchecked u32 fetch_add would eventually wrap a
/// hot method back below threshold. Returns the post-add value.
std::uint32_t bump_hotness(std::atomic<std::uint32_t>& h,
                           std::uint32_t delta) {
  std::uint32_t cur = h.load(std::memory_order_relaxed);
  while (true) {
    const std::uint32_t next =
        cur > UINT32_MAX - delta ? UINT32_MAX : cur + delta;
    if (next == cur) return cur;  // already saturated
    if (h.compare_exchange_weak(cur, next, std::memory_order_relaxed,
                                std::memory_order_relaxed)) {
      return next;
    }
  }
}
}  // namespace

TieredEngine::TieredEngine(VirtualMachine& vm, EngineProfile profile)
    : vm_(vm),
      profile_(std::move(profile)),
      tiered_(profile_.tiering.mode == TierMode::Tiered),
      osr_step_(tiered_ && profile_.tiering.max_tier == Tier::Optimizing
                    ? profile_.tiering.osr_backedge_trigger
                    : 0),
      cache_(vm.code_cache(profile_.name)),
      vcache_(vm.code_cache("<verify>")),
      interp_(make_interp_backend(vm, *this)),
      baseline_(make_baseline_backend(vm, *this)),
      opt_(make_optimizing_backend(vm, *this)) {}

TieredEngine::~TieredEngine() = default;

Slot TieredEngine::do_invoke(VMContext& ctx, const MethodDef& m, Slot* args) {
  return call(ctx, m.id, args);
}

Slot TieredEngine::call(VMContext& ctx, std::int32_t method_id,
                        const Slot* args) {
  CodeCache::Entry& e = cache_.entry(method_id);
  // Hot path: the method reached the optimizing tier (or Single mode already
  // compiled it) — the acquire load of `tier` makes the relaxed code load
  // safe, see CodeCache::Entry.
  if (e.tier.load(std::memory_order_acquire) == kOpt) {
    return opt_->run_compiled(
        ctx, *e.code[kOpt].load(std::memory_order_relaxed), args);
  }
  const MethodDef& m = vm_.module().method(method_id);
  if (!tiered_) {
    switch (profile_.tier) {
      case Tier::Interp: return interp_->execute(ctx, m, args);
      case Tier::Baseline: return baseline_->execute(ctx, m, args);
      case Tier::Optimizing:
        // Same latch-protected lookup the CALL_R fast path and the tiered
        // promoter use (compile_optimizing double-checks under the method's
        // latch), so Single mode and tiered mode share one compile path.
        return opt_->run_compiled(ctx, *opt_code_for_call(method_id), args);
    }
  }
  // Tiered slow path: count the invocation and maybe promote. Once a method
  // sits at the policy's max tier the counters stop (no steady-state cost
  // for interp-only / baseline-capped shapes).
  const TierPolicy& pol = profile_.tiering;
  Tier t = static_cast<Tier>(e.tier.load(std::memory_order_relaxed));
  if (t < pol.max_tier) {
    const std::uint32_t h = bump_hotness(e.hotness, 1);
    t = maybe_promote(e, m, h);
    if (t == Tier::Optimizing) {
      return opt_->run_compiled(
          ctx, *e.code[kOpt].load(std::memory_order_acquire), args);
    }
  }
  return t == Tier::Baseline ? baseline_->execute(ctx, m, args)
                             : interp_->execute(ctx, m, args);
}

Tier TieredEngine::maybe_promote(CodeCache::Entry& e, const MethodDef& m,
                                 std::uint32_t hotness) {
  const TierPolicy& pol = profile_.tiering;
  Tier cur = static_cast<Tier>(e.tier.load(std::memory_order_relaxed));
  Tier want = cur;
  if (cur == Tier::Interp && (hotness >= pol.baseline_threshold ||
                              m.il_size() <= pol.tiny_method_il)) {
    want = Tier::Baseline;
  }
  if (hotness >= pol.opt_threshold) want = Tier::Optimizing;
  if (want > pol.max_tier) want = pol.max_tier;
  if (want <= cur) return cur;
  if (want == Tier::Optimizing) {
    compile_optimizing(e, m);  // publishes code + raises tier
    return Tier::Optimizing;
  }
  // Interp -> Baseline needs no compiled artifact: a monotonic max on the
  // tier byte. Only the winning CAS records the transition.
  std::uint8_t prev = e.tier.load(std::memory_order_relaxed);
  while (prev < static_cast<std::uint8_t>(want)) {
    if (e.tier.compare_exchange_weak(prev, static_cast<std::uint8_t>(want),
                                     std::memory_order_release,
                                     std::memory_order_relaxed)) {
      telemetry::record_tier_up(m.id, m.name, prev,
                                static_cast<std::uint8_t>(want));
      return want;
    }
  }
  return static_cast<Tier>(prev);
}

const regir::RCode& TieredEngine::compile_optimizing(CodeCache::Entry& e,
                                                     const MethodDef& m) {
  if (const regir::RCode* rc = e.code[kOpt].load(std::memory_order_acquire)) {
    // Fast path doubles as the re-warm after a deopt: request_deopt drops
    // the tier byte but keeps the compiled artifact, so re-promotion just
    // republishes it. The tier byte is a monotonic max here (kOpt is top).
    const std::uint8_t prev = e.tier.exchange(kOpt, std::memory_order_release);
    if (tiered_ && prev != kOpt) {
      telemetry::record_tier_up(m.id, m.name, prev, kOpt);
    }
    return *rc;
  }
  // All verification happens BEFORE this method's latch is taken: the inline
  // pass verifies callees, and holding latch(A) while waiting on latch(B)
  // would deadlock two threads compiling mutually-inlining methods.
  ensure_verified(m);
  if (profile_.flags.inline_calls) pre_verify_callees(m);
  std::unique_lock<std::mutex> latch(e.latch);
  if (const regir::RCode* rc = e.code[kOpt].load(std::memory_order_relaxed)) {
    return *rc;  // lost the race; the winner already published tier + code
  }
  const telemetry::CompileContext tel_engine(profile_.name.c_str());
  const std::int64_t compile_begin = support::now_ns();
  auto compiled = std::make_shared<const regir::RCode>(
      regir::compile(vm_.module(), m, profile_.flags));
  const regir::RCode* rc = cache_.adopt(std::move(compiled));
  e.code[kOpt].store(rc, std::memory_order_release);
  const std::uint8_t prev =
      e.tier.exchange(kOpt, std::memory_order_release);
  latch.unlock();
  telemetry::record_compile(m.id, m.name, compile_begin, support::now_ns());
  if (tiered_ && prev != kOpt) {
    telemetry::record_tier_up(m.id, m.name, prev, kOpt);
  }
  return *rc;
}

const regir::RCode* TieredEngine::opt_code_for_call(std::int32_t method_id) {
  CodeCache::Entry& e = cache_.entry(method_id);
  if (e.tier.load(std::memory_order_acquire) == kOpt) {
    return e.code[kOpt].load(std::memory_order_relaxed);
  }
  if (tiered_) return nullptr;
  return &compile_optimizing(e, vm_.module().method(method_id));
}

void TieredEngine::note_backedges(std::int32_t method_id,
                                  std::uint32_t taken) {
  CodeCache::Entry& e = cache_.entry(method_id);
  const TierPolicy& pol = profile_.tiering;
  if (static_cast<Tier>(e.tier.load(std::memory_order_relaxed)) >=
      pol.max_tier) {
    return;
  }
  const std::uint32_t credit = std::min(taken, pol.backedge_credit);
  const std::uint32_t h = bump_hotness(e.hotness, credit);
  maybe_promote(e, vm_.module().method(method_id), h);
}

std::shared_ptr<const MethodDef> TieredEngine::continuation_for(
    const MethodDef& body, std::int32_t header_pc) {
  std::lock_guard<std::mutex> lock(osr_mu_);
  auto [it, fresh] = continuations_.try_emplace({&body, header_pc});
  if (fresh) it->second = osr::build_continuation(vm_.module(), body,
                                                  header_pc);
  return it->second;  // nullptr stays cached: unbuildable headers don't retry
}

const regir::RCode* TieredEngine::osr_code(const MethodDef& body,
                                           std::int32_t header_pc) {
  if (osr_step_ == 0) return nullptr;
  CodeCache::Entry& e = cache_.osr_entry(&body, header_pc);
  if (e.tier.load(std::memory_order_acquire) == kOpt) {
    return e.code[kOpt].load(std::memory_order_relaxed);
  }
  // Promote the method itself first (under ITS latch, released before the
  // continuation's latch below — never two latches at once) so future calls
  // skip the IL tiers entirely; for a deopt continuation's re-OSR the root
  // is already compiled and this just resolves the verify/callee state.
  const MethodDef& root = vm_.module().method(body.id);
  if (&body == &root) {
    compile_optimizing(cache_.entry(body.id), root);
  } else {
    ensure_verified(root);
    if (profile_.flags.inline_calls) pre_verify_callees(root);
  }
  std::shared_ptr<const MethodDef> cont = continuation_for(body, header_pc);
  if (cont == nullptr) return nullptr;
  std::unique_lock<std::mutex> latch(e.latch);
  if (const regir::RCode* rc = e.code[kOpt].load(std::memory_order_relaxed)) {
    return rc;  // lost the race; the winner already published
  }
  const telemetry::CompileContext tel_engine(profile_.name.c_str());
  const std::int64_t compile_begin = support::now_ns();
  // No lifetime knot here anymore: compile() always hands the RCode its own
  // body copy, so the detached continuation's shared_ptr map entry is not
  // load-bearing for the published code.
  auto compiled = std::make_shared<const regir::RCode>(
      regir::compile(vm_.module(), *cont, profile_.flags));
  const regir::RCode* rc = cache_.adopt(std::move(compiled));
  e.code[kOpt].store(rc, std::memory_order_release);
  e.tier.store(kOpt, std::memory_order_release);
  latch.unlock();
  telemetry::record_compile(body.id, cont->name, compile_begin,
                            support::now_ns());
  return rc;
}

Slot TieredEngine::osr_enter(VMContext& ctx, const regir::RCode& rc,
                             std::int32_t header_pc, const Slot* args) {
  cache_.entry(rc.method->id).osr_entries.fetch_add(
      1, std::memory_order_relaxed);
  telemetry::record_osr_entry(rc.method->id, rc.method->name, header_pc);
  return opt_->run_compiled(ctx, rc, args);
}

void TieredEngine::request_deopt(std::int32_t method_id) {
  CodeCache::Entry& e = cache_.entry(method_id);
  e.deopt_generation.fetch_add(1, std::memory_order_relaxed);
  // Demote the dispatch tier and restart profiling from cold. The compiled
  // body stays adopted in the cache; once the method re-warms, the compile
  // latch path finds and republishes it without recompiling.
  e.hotness.store(0, std::memory_order_relaxed);
  std::uint8_t cur = e.tier.load(std::memory_order_relaxed);
  while (cur == kOpt) {
    if (e.tier.compare_exchange_weak(
            cur, static_cast<std::uint8_t>(Tier::Interp),
            std::memory_order_release, std::memory_order_relaxed)) {
      break;
    }
  }
}

Slot TieredEngine::deopt_bailout(VMContext& ctx, const regir::RCode& rc,
                                 std::int32_t rpc, const Slot* regs) {
  // The side table is sorted by rpc and covers every backward branch of a
  // deopt-enabled body, so the lookup cannot miss.
  const auto it = std::lower_bound(
      rc.deopt_points.begin(), rc.deopt_points.end(), rpc,
      [](const regir::RCode::DeoptPoint& p, std::int32_t key) {
        return p.rpc < key;
      });
  if (it == rc.deopt_points.end() || it->rpc != rpc) {
    throw std::logic_error("deopt: no side-table record at safepoint");
  }
  const regir::RCode::DeoptPoint& dp = *it;
  const MethodDef& body = *rc.method;  // the body the registers mirror
  std::shared_ptr<const MethodDef> cont = continuation_for(body, dp.il_pc);
  if (cont == nullptr) {
    // Unreachable by construction: deopt_points is only non-empty when every
    // point's continuation shape is expressible (compact() clears the table
    // otherwise).
    throw std::logic_error("deopt: continuation unbuildable");
  }
  cache_.entry(body.id).deopts.fetch_add(1, std::memory_order_relaxed);
  telemetry::record_deopt(body.id, body.name, dp.il_pc);
  // Register file -> continuation arguments: slot registers mirror the
  // frame's locals/arguments in place, then the header's operand stack from
  // the side table's stack registers (bottom-up).
  std::vector<Slot> args;
  args.reserve(static_cast<std::size_t>(rc.slot_regs) +
               dp.stack_regs.size());
  for (std::int32_t i = 0; i < rc.slot_regs; ++i) args.push_back(regs[i]);
  for (std::int32_t r : dp.stack_regs) args.push_back(regs[r]);
  return interp_->execute(ctx, *cont, args.data());
}

void TieredEngine::verify_slow(CodeCache::Entry& e, const MethodDef& m) {
  std::lock_guard<std::mutex> latch(e.latch);
  if (e.verified.load(std::memory_order_relaxed)) return;
  verify(vm_.module(), m.id);
  e.verified.store(true, std::memory_order_release);
}

void TieredEngine::pre_verify_callees(const MethodDef& root) {
  // The transitive CALL-target set (a superset of what the inline pass will
  // actually expand). Each callee is verified under its own latch, one at a
  // time; by the time regir::compile's inline pass calls verify() on a
  // callee it is a synchronized no-op.
  std::vector<std::int32_t> work{root.id};
  std::vector<bool> visited(vm_.module().method_count(), false);
  visited[static_cast<std::size_t>(root.id)] = true;
  while (!work.empty()) {
    const std::int32_t id = work.back();
    work.pop_back();
    const MethodDef& m = vm_.module().method(id);
    if (id != root.id) ensure_verified(m);
    for (const Instr& in : m.code) {
      if (in.op != Op::CALL) continue;
      const auto callee = static_cast<std::size_t>(in.a);
      if (callee < visited.size() && !visited[callee]) {
        visited[callee] = true;
        work.push_back(in.a);
      }
    }
  }
}

std::unique_ptr<Engine> make_engine(VirtualMachine& vm,
                                    const EngineProfile& profile) {
  return std::make_unique<TieredEngine>(vm, profile);
}

}  // namespace hpcnet::vm

// Human-readable telemetry summary: renders a Snapshot as the repo's
// standard reporter tables (per-method profile, JIT pass times) plus compact
// GC / safepoint / monitor sections.
#pragma once

#include <cstddef>
#include <ostream>
#include <vector>

#include "support/reporter.hpp"
#include "vm/telemetry/telemetry.hpp"

namespace hpcnet::vm {
class Module;
}

namespace hpcnet::vm::telemetry {

struct SummaryOptions {
  std::size_t top_methods = 20;  // most-invoked methods to show
  bool json = false;             // emit the tables via print_json instead
};

/// The summary's tabular sections, as reporter tables (shared machine-
/// readable path with the bench tables). `module` supplies method names and
/// may be null (methods render as "#id").
std::vector<support::ResultTable> summary_tables(const Snapshot& s,
                                                 const Module* module,
                                                 const SummaryOptions& opts);

/// Full summary: tables plus GC pause histogram, safepoint stalls and
/// monitor contention counters.
void print_summary(std::ostream& os, const Snapshot& s, const Module* module,
                   const SummaryOptions& opts = {});

}  // namespace hpcnet::vm::telemetry

// chrome://tracing exporter: renders a telemetry Snapshot's span events
// (JIT compiles, GC pauses, kernel runs, thread run spans) as a Trace Event
// Format JSON document that loads in chrome://tracing / Perfetto.
#pragma once

#include <ostream>

#include "vm/telemetry/telemetry.hpp"

namespace hpcnet::vm::telemetry {

/// Writes `{"displayTimeUnit":"ms","traceEvents":[...]}`. Timestamps are
/// rebased so the earliest event starts at t=0 and converted to the format's
/// microseconds. Per-thread metadata events name each managed thread.
void write_chrome_trace(std::ostream& os, const Snapshot& snapshot);

}  // namespace hpcnet::vm::telemetry

#include "vm/telemetry/telemetry.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <mutex>

#include "support/timer.hpp"

namespace hpcnet::vm::telemetry {

namespace {

constexpr std::size_t kMaxTraceEvents = 1u << 20;

bool env_default() {
  const char* e = std::getenv("HPCNET_TELEMETRY");
  return e != nullptr && *e != '\0' && std::strcmp(e, "0") != 0;
}

// High-frequency counters live here: one sink per OS thread, plain (non-
// atomic) increments by the owning thread. The sink mutex guards only vector
// growth and snapshot merges; the increment fast path never takes it.
struct ThreadSink {
  std::mutex mu;
  std::vector<std::uint64_t> invocations;  // indexed by method id
  std::vector<std::uint64_t> bytecodes;
  std::vector<std::uint64_t> tier_invocations[kNumTiers];
  std::uint64_t counters[kNumCounters] = {};
  std::uint32_t tid = 0;          // managed thread id, if attached
  std::int64_t attach_ns = 0;

  void ensure_method(std::size_t id) {
    if (id < invocations.size()) return;
    std::lock_guard<std::mutex> lock(mu);
    invocations.resize(id + 1, 0);
    bytecodes.resize(id + 1, 0);
    for (auto& t : tier_invocations) t.resize(id + 1, 0);
  }
};

struct Hub {
  std::mutex mu;  // guards everything below
  std::vector<std::unique_ptr<ThreadSink>> sinks;

  support::Histogram gc_pause_ns;
  support::Histogram minor_pause_ns;
  support::Histogram major_pause_ns;
  support::Histogram safepoint_stall_ns;
  support::Histogram monitor_wait_ns;
  support::Histogram archive_load_ns;
  GcTelemetry gc;
  // Sweep facts for the in-progress collection, consumed by record_gc_pause.
  std::uint64_t pending_gc_allocated = 0;
  std::uint64_t pending_gc_freed = 0;
  std::uint64_t pending_gc_swept = 0;

  std::map<std::string, EngineJitTimes> jit;  // by engine name
  std::map<std::int32_t, std::int64_t> method_jit_ns;
  std::map<std::string, TenantTelemetry> tenants;  // by tenant name
  std::map<std::string, support::Histogram> vec_trips;  // by kernel name

  std::vector<TraceEvent> events;

  void add_event(TraceEvent ev) {
    if (events.size() < kMaxTraceEvents) events.push_back(std::move(ev));
  }
};

Hub& hub() {
  static Hub h;
  return h;
}

thread_local ThreadSink* tl_sink = nullptr;
thread_local std::uint32_t tl_tid = 0;
thread_local const char* tl_engine = nullptr;

ThreadSink& sink() {
  if (tl_sink == nullptr) {
    auto owned = std::make_unique<ThreadSink>();
    tl_sink = owned.get();
    std::lock_guard<std::mutex> lock(hub().mu);
    hub().sinks.push_back(std::move(owned));
  }
  return *tl_sink;
}

EngineJitTimes& jit_for_current_engine(Hub& h) {
  const std::string name = tl_engine != nullptr ? tl_engine : "<unknown>";
  EngineJitTimes& j = h.jit[name];
  if (j.engine.empty()) j.engine = name;
  return j;
}

}  // namespace

#if HPCNET_TELEMETRY_ENABLED
namespace detail {
std::atomic<bool> g_enabled{env_default()};
}
#endif

const char* counter_name(Counter c) {
  switch (c) {
    case Counter::Allocations: return "allocations";
    case Counter::BytesAllocated: return "bytes_allocated";
    case Counter::MonitorAcquires: return "monitor_acquires";
    case Counter::MonitorContended: return "monitor_contended";
    case Counter::MonitorWaits: return "monitor_waits";
    case Counter::TlabRefills: return "tlab_refills";
    case Counter::TlabWasteBytes: return "tlab_waste_bytes";
    case Counter::LargeAllocs: return "large_allocs";
    case Counter::TierUps: return "tier_ups";
    case Counter::OsrEntries: return "osr_entries";
    case Counter::Deopts: return "deopts";
    case Counter::CardsScanned: return "cards_scanned";
    case Counter::PromotedBytes: return "promoted_bytes";
    case Counter::VecLoopsEntered: return "vec_loops_entered";
    case Counter::SnapshotMethodsRestored: return "snapshot_methods_restored";
    case Counter::SnapshotMisses: return "snapshot_misses";
    case Counter::kCount: break;
  }
  return "?";
}

const char* jit_pass_name(JitPass p) {
  switch (p) {
    case JitPass::Inline: return "inline";
    case JitPass::Translate: return "translate";
    case JitPass::Optimize: return "copyprop+dce";
    case JitPass::Cse: return "cse";
    case JitPass::Licm: return "licm";
    case JitPass::BoundsCheckElim: return "bounds-check-elim";
    case JitPass::VecLower: return "vec-lower";
    case JitPass::Compact: return "compact";
    case JitPass::Finalize: return "finalize";
    case JitPass::kCount: break;
  }
  return "?";
}

void set_enabled(bool on) {
#if HPCNET_TELEMETRY_ENABLED
  detail::g_enabled.store(on, std::memory_order_relaxed);
#else
  (void)on;
#endif
}

void reset() {
  Hub& h = hub();
  std::lock_guard<std::mutex> lock(h.mu);
  for (auto& s : h.sinks) {
    std::lock_guard<std::mutex> slock(s->mu);
    std::fill(s->invocations.begin(), s->invocations.end(), 0);
    std::fill(s->bytecodes.begin(), s->bytecodes.end(), 0);
    for (auto& t : s->tier_invocations) std::fill(t.begin(), t.end(), 0);
    std::fill(std::begin(s->counters), std::end(s->counters), 0);
  }
  h.gc_pause_ns.reset();
  h.minor_pause_ns.reset();
  h.major_pause_ns.reset();
  h.safepoint_stall_ns.reset();
  h.monitor_wait_ns.reset();
  h.archive_load_ns.reset();
  h.gc = GcTelemetry{};
  h.pending_gc_allocated = h.pending_gc_freed = h.pending_gc_swept = 0;
  h.jit.clear();
  h.method_jit_ns.clear();
  h.tenants.clear();
  h.vec_trips.clear();
  h.events.clear();
}

Snapshot snapshot() {
  Snapshot out;
  Hub& h = hub();
  std::lock_guard<std::mutex> lock(h.mu);

  std::map<std::int32_t, MethodProfile> methods;
  for (auto& s : h.sinks) {
    std::lock_guard<std::mutex> slock(s->mu);
    for (std::size_t id = 0; id < s->invocations.size(); ++id) {
      if (s->invocations[id] == 0 && s->bytecodes[id] == 0) continue;
      MethodProfile& m = methods[static_cast<std::int32_t>(id)];
      m.method_id = static_cast<std::int32_t>(id);
      m.invocations += s->invocations[id];
      m.bytecodes += s->bytecodes[id];
      for (std::size_t t = 0; t < kNumTiers; ++t) {
        m.tier_invocations[t] += s->tier_invocations[t][id];
      }
    }
    for (std::size_t c = 0; c < kNumCounters; ++c) {
      out.counters[c] += s->counters[c];
    }
  }
  for (const auto& [id, ns] : h.method_jit_ns) {
    MethodProfile& m = methods[id];
    m.method_id = id;
    m.jit_ns += ns;
  }
  out.methods.reserve(methods.size());
  for (auto& [id, m] : methods) out.methods.push_back(m);

  out.gc_pause_ns = h.gc_pause_ns;
  out.minor_pause_ns = h.minor_pause_ns;
  out.major_pause_ns = h.major_pause_ns;
  out.safepoint_stall_ns = h.safepoint_stall_ns;
  out.monitor_wait_ns = h.monitor_wait_ns;
  out.archive_load_ns = h.archive_load_ns;
  out.gc = h.gc;
  for (const auto& [name, j] : h.jit) out.jit.push_back(j);
  for (const auto& [name, t] : h.tenants) out.tenants.push_back(t);
  for (const auto& [name, hist] : h.vec_trips) {
    out.vec_kernels.push_back(VecKernelTelemetry{name, hist});
  }
  out.events = h.events;
  return out;
}

const MethodProfile* Snapshot::method(std::int32_t id) const {
  for (const MethodProfile& m : methods) {
    if (m.method_id == id) return &m;
  }
  return nullptr;
}

const EngineJitTimes* Snapshot::engine_jit(const std::string& engine) const {
  for (const EngineJitTimes& j : jit) {
    if (j.engine == engine) return &j;
  }
  return nullptr;
}

const TenantTelemetry* Snapshot::tenant(const std::string& name) const {
  for (const TenantTelemetry& t : tenants) {
    if (t.tenant == name) return &t;
  }
  return nullptr;
}

std::int64_t Snapshot::jit_total_ns() const {
  std::int64_t t = 0;
  for (const EngineJitTimes& j : jit) t += j.compile_ns;
  return t;
}

// ---------------------------------------------------------------------------
// Hot-path slow halves.

namespace detail {

void record_invocation_slow(std::int32_t method_id, std::uint64_t bytecodes,
                            std::uint8_t tier) {
  if (method_id < 0) return;
  ThreadSink& s = sink();
  s.ensure_method(static_cast<std::size_t>(method_id));
  s.invocations[static_cast<std::size_t>(method_id)] += 1;
  s.bytecodes[static_cast<std::size_t>(method_id)] += bytecodes;
  if (tier < kNumTiers) {
    s.tier_invocations[tier][static_cast<std::size_t>(method_id)] += 1;
  }
}

void count_slow(Counter c, std::uint64_t delta) {
  sink().counters[static_cast<std::size_t>(c)] += delta;
}

void record_allocation_slow(std::uint64_t bytes) {
  ThreadSink& s = sink();
  s.counters[static_cast<std::size_t>(Counter::Allocations)] += 1;
  s.counters[static_cast<std::size_t>(Counter::BytesAllocated)] += bytes;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Low-frequency hooks.

CompileContext::CompileContext(const char* engine_name) : prev_(tl_engine) {
  tl_engine = engine_name;
}
CompileContext::~CompileContext() { tl_engine = prev_; }

void record_jit_pass(std::int32_t method_id, JitPass pass, std::int64_t ns) {
  if (!enabled()) return;
  (void)method_id;
  Hub& h = hub();
  std::lock_guard<std::mutex> lock(h.mu);
  jit_for_current_engine(h).pass_ns[static_cast<std::size_t>(pass)] += ns;
}

void record_compile(std::int32_t method_id, const std::string& method_name,
                    std::int64_t begin_ns, std::int64_t end_ns) {
  if (!enabled()) return;
  Hub& h = hub();
  std::lock_guard<std::mutex> lock(h.mu);
  EngineJitTimes& j = jit_for_current_engine(h);
  j.compile_ns += end_ns - begin_ns;
  j.methods_compiled += 1;
  h.method_jit_ns[method_id] += end_ns - begin_ns;
  TraceEvent ev;
  ev.name = "jit " + method_name;
  ev.cat = "jit";
  ev.begin_ns = begin_ns;
  ev.end_ns = end_ns;
  ev.tid = tl_tid;
  ev.args_json = "\"engine\":\"" + j.engine + "\"";
  h.add_event(std::move(ev));
}

void record_tier_up(std::int32_t method_id, const std::string& method_name,
                    std::uint8_t from_tier, std::uint8_t to_tier) {
  if (!enabled()) return;
  count(Counter::TierUps);
  auto tier_name = [](std::uint8_t t) {
    return t == 0 ? "interp" : t == 1 ? "baseline" : "opt";
  };
  Hub& h = hub();
  std::lock_guard<std::mutex> lock(h.mu);
  TraceEvent ev;
  ev.name = "tier-up " + method_name;
  ev.cat = "tier";
  ev.begin_ns = support::now_ns();
  ev.end_ns = ev.begin_ns;  // instant event
  ev.tid = tl_tid;
  ev.args_json = std::string("\"method_id\":") + std::to_string(method_id) +
                 ",\"from\":\"" + tier_name(from_tier) + "\",\"to\":\"" +
                 tier_name(to_tier) + "\"";
  h.add_event(std::move(ev));
}

namespace {
// Shared shape of the OSR/deopt instant events (both land in cat "tier"
// next to the tier-up markers so the trace shows the whole promotion story).
void record_tier_instant(const char* verb, Counter counter,
                         std::int32_t method_id,
                         const std::string& method_name, std::int32_t il_pc) {
  if (!enabled()) return;
  count(counter);
  Hub& h = hub();
  std::lock_guard<std::mutex> lock(h.mu);
  TraceEvent ev;
  ev.name = std::string(verb) + " " + method_name;
  ev.cat = "tier";
  ev.begin_ns = support::now_ns();
  ev.end_ns = ev.begin_ns;  // instant event
  ev.tid = tl_tid;
  ev.args_json = std::string("\"method_id\":") + std::to_string(method_id) +
                 ",\"il_pc\":" + std::to_string(il_pc);
  h.add_event(std::move(ev));
}
}  // namespace

void record_osr_entry(std::int32_t method_id, const std::string& method_name,
                      std::int32_t il_pc) {
  record_tier_instant("osr-enter", Counter::OsrEntries, method_id,
                      method_name, il_pc);
}

void record_deopt(std::int32_t method_id, const std::string& method_name,
                  std::int32_t il_pc) {
  record_tier_instant("deopt", Counter::Deopts, method_id, method_name,
                      il_pc);
}

void record_gc_sweep(bool major, std::uint64_t bytes_allocated,
                     std::uint64_t bytes_freed, std::uint64_t objects_swept,
                     std::uint64_t segments, std::int64_t mark_ns,
                     std::int64_t sweep_ns) {
  if (!enabled()) return;
  Hub& h = hub();
  std::lock_guard<std::mutex> lock(h.mu);
  (void)major;  // the pause hook splits per kind; sweep facts are combined
  h.pending_gc_allocated = bytes_allocated;
  h.pending_gc_freed = bytes_freed;
  h.pending_gc_swept = objects_swept;
  h.gc.heap_segments = segments;
  h.gc.mark_ns += mark_ns;
  h.gc.sweep_ns += sweep_ns;
}

void record_gc_pause(bool major, std::int64_t begin_ns, std::int64_t end_ns) {
  if (!enabled()) return;
  Hub& h = hub();
  std::lock_guard<std::mutex> lock(h.mu);
  const auto pause = static_cast<std::uint64_t>(end_ns - begin_ns);
  h.gc_pause_ns.record(pause);
  if (major) {
    h.major_pause_ns.record(pause);
    h.gc.major_collections += 1;
  } else {
    h.minor_pause_ns.record(pause);
    h.gc.minor_collections += 1;
  }
  h.gc.collections += 1;
  h.gc.bytes_allocated += h.pending_gc_allocated;
  h.gc.bytes_freed += h.pending_gc_freed;
  h.gc.objects_swept += h.pending_gc_swept;
  TraceEvent ev;
  ev.name = major ? "GC pause (major)" : "GC pause (minor)";
  ev.cat = "gc";
  ev.begin_ns = begin_ns;
  ev.end_ns = end_ns;
  ev.tid = tl_tid;
  ev.args_json = "\"bytes_freed\":" + std::to_string(h.pending_gc_freed) +
                 ",\"objects_swept\":" + std::to_string(h.pending_gc_swept);
  h.pending_gc_allocated = h.pending_gc_freed = h.pending_gc_swept = 0;
  h.add_event(std::move(ev));
}

void record_safepoint_stall(std::int64_t ns) {
  if (!enabled()) return;
  Hub& h = hub();
  std::lock_guard<std::mutex> lock(h.mu);
  h.safepoint_stall_ns.record(static_cast<std::uint64_t>(ns));
}

void record_monitor_contention_begin() {
  count(Counter::MonitorContended);
}

void record_monitor_contention_end(std::int64_t wait_ns) {
  if (!enabled()) return;
  Hub& h = hub();
  std::lock_guard<std::mutex> lock(h.mu);
  h.monitor_wait_ns.record(static_cast<std::uint64_t>(wait_ns));
}

void record_service_job(const std::string& tenant, std::uint8_t outcome,
                        std::uint64_t fuel_spent, std::uint64_t bytes_charged,
                        std::int64_t queue_ns, std::int64_t run_ns) {
  if (!enabled()) return;
  Hub& h = hub();
  std::lock_guard<std::mutex> lock(h.mu);
  TenantTelemetry& t = h.tenants[tenant];
  if (t.tenant.empty()) t.tenant = tenant;
  switch (outcome) {
    case 0: t.jobs_completed += 1; break;
    case 1: t.jobs_killed_fuel += 1; break;
    case 2: t.jobs_killed_memory += 1; break;
    case 3: t.jobs_faulted += 1; break;
    case 5: t.jobs_killed_deadline += 1; break;
    default: t.jobs_rejected += 1; break;
  }
  t.fuel_spent += fuel_spent;
  t.bytes_charged += bytes_charged;
  t.queue_ns += queue_ns;
  t.run_ns += run_ns;
}

void record_vec_loop(const char* kernel, std::uint64_t trips) {
  if (!enabled()) return;
  count(Counter::VecLoopsEntered);
  Hub& h = hub();
  std::lock_guard<std::mutex> lock(h.mu);
  h.vec_trips[kernel].record(trips);
}

void record_archive_load(std::uint64_t restored, std::uint64_t missed,
                         std::int64_t ns) {
  if (!enabled()) return;
  if (restored != 0) count(Counter::SnapshotMethodsRestored, restored);
  if (missed != 0) count(Counter::SnapshotMisses, missed);
  Hub& h = hub();
  std::lock_guard<std::mutex> lock(h.mu);
  h.archive_load_ns.record(static_cast<std::uint64_t>(ns < 0 ? 0 : ns));
}

void record_span(const char* cat, std::string name, std::int64_t begin_ns,
                 std::int64_t end_ns, std::string args_json) {
  if (!enabled()) return;
  Hub& h = hub();
  std::lock_guard<std::mutex> lock(h.mu);
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = cat;
  ev.begin_ns = begin_ns;
  ev.end_ns = end_ns;
  ev.tid = tl_tid;
  ev.args_json = std::move(args_json);
  h.add_event(std::move(ev));
}

void on_thread_attach(std::uint32_t thread_id) {
  tl_tid = thread_id;
  if (!enabled()) return;
  ThreadSink& s = sink();
  s.tid = thread_id;
  s.attach_ns = support::now_ns();
}

void on_thread_detach(std::uint32_t thread_id) {
  if (!enabled()) return;
  if (tl_sink == nullptr || tl_tid != thread_id || tl_sink->attach_ns == 0) {
    return;
  }
  record_span("thread", "thread-" + std::to_string(thread_id) + " run",
              tl_sink->attach_ns, support::now_ns());
}

}  // namespace hpcnet::vm::telemetry

// VM telemetry: a low-overhead, always-compiled (cheaply-disabled)
// instrumentation layer threaded through the whole VM.
//
// Architecture (DESIGN.md §9):
//   - A process-global TelemetryHub owns everything. High-frequency data
//     (per-method invocation/bytecode counters, allocation and monitor
//     counters) goes to lock-free per-thread sinks: plain increments on the
//     calling thread, merged under a lock only at snapshot time.
//   - Low-frequency data (GC pauses, JIT compiles, safepoint stalls,
//     contended monitor acquires, trace spans) is recorded under a hub mutex;
//     these events are rare enough that the lock never shows up.
//   - Two exporters consume a Snapshot: print_summary (summary.hpp) renders
//     human-readable tables through support/reporter, write_chrome_trace
//     (trace_writer.hpp) emits a chrome://tracing JSON trace.
//
// Cost model: every hook starts with `if (!enabled())` on a relaxed atomic
// bool. With the CMake option HPCNET_TELEMETRY=OFF, enabled() is constexpr
// false and the hooks compile to nothing. With telemetry compiled in but not
// enabled (the default; set HPCNET_TELEMETRY=1 in the environment or call
// set_enabled(true)), the hot paths pay one predictable branch.
//
// Snapshots taken while managed threads are running may miss in-flight
// increments (counters are plain, not atomic); counts are exact once the
// threads whose work is being counted have been joined.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "support/stats.hpp"

#ifndef HPCNET_TELEMETRY_ENABLED
#define HPCNET_TELEMETRY_ENABLED 1
#endif

namespace hpcnet::vm::telemetry {

// ---------------------------------------------------------------------------
// Counter and pass identifiers.

enum class Counter : std::uint8_t {
  Allocations,       // heap objects allocated
  BytesAllocated,    // payload+header bytes allocated
  MonitorAcquires,   // Monitor.Enter calls (fast or contended)
  MonitorContended,  // acquires that had to park
  MonitorWaits,      // Monitor.Wait calls
  TlabRefills,       // TLAB refill slow paths (one lock trip per refill)
  TlabWasteBytes,    // bytes discarded at TLAB retirement (refill/detach)
  LargeAllocs,       // allocations routed to the large-object list
  TierUps,           // tiered-pipeline promotions (interp->baseline->opt)
  OsrEntries,        // on-stack replacements: frames that entered compiled
                     // code mid-loop at a back-edge safepoint
  Deopts,            // deoptimizations: compiled frames that bailed out at a
                     // back-edge safepoint to an interpreter continuation
                     // (request_deopt invalidated the method's assumptions)
  CardsScanned,      // dirty cards visited by minor-collection card scans
  PromotedBytes,     // nursery-survivor bytes promoted to the old generation
  VecLoopsEntered,   // VECLOOP superinstructions whose guards passed (the
                     // whole loop ran as one vector kernel call)
  SnapshotMethodsRestored,  // archive records attached warm (code/tier/
                            // hotness published into a cold cache entry)
  SnapshotMisses,           // archive records rejected at attach (id, name
                            // or verified-IL hash mismatch — stale archive)
  kCount,
};
constexpr std::size_t kNumCounters = static_cast<std::size_t>(Counter::kCount);
const char* counter_name(Counter c);

/// The optimizing pipeline's passes, in execution order (regcompile.cpp).
enum class JitPass : std::uint8_t {
  Inline,           // IL-level method inlining (pre-translation)
  Translate,        // stack IL -> register IR
  Optimize,         // copy propagation + DCE rounds
  Cse,              // common-subexpression elimination (EBB value numbering)
  Licm,             // loop-invariant code motion
  BoundsCheckElim,  // counted-loop bounds-check hoisting
  VecLower,         // vector-loop lowering (VECLOOP superinstructions)
  Compact,          // dead-instruction squeeze + branch retarget
  Finalize,         // ref maps, arg pools, il->pc tables
  kCount,
};
constexpr std::size_t kNumJitPasses = static_cast<std::size_t>(JitPass::kCount);
const char* jit_pass_name(JitPass p);

// ---------------------------------------------------------------------------
// Snapshot model.

struct TraceEvent {
  std::string name;
  const char* cat = "";  // "gc", "jit", "kernel", "thread"
  std::int64_t begin_ns = 0;
  std::int64_t end_ns = 0;
  std::uint32_t tid = 0;          // managed thread id (0 = unattached)
  std::string args_json;          // pre-rendered `"k":v` pairs, may be empty
};

constexpr std::size_t kNumTiers = 3;  // Tier::Interp..Tier::Optimizing

struct MethodProfile {
  std::int32_t method_id = -1;
  std::uint64_t invocations = 0;  // managed frames entered (all tiers)
  std::uint64_t bytecodes = 0;    // IL instructions retired (interp/baseline)
  std::int64_t jit_ns = 0;        // compile time, summed over engines
  std::uint64_t tier_invocations[kNumTiers] = {};  // frames entered per tier
};

struct GcTelemetry {
  std::uint64_t collections = 0;        // minor + major
  std::uint64_t minor_collections = 0;  // nursery-only (card-scan) cycles
  std::uint64_t major_collections = 0;  // full-heap parallel cycles
  std::uint64_t bytes_allocated = 0;  // allocated in the windows before GCs
  std::uint64_t bytes_freed = 0;
  std::uint64_t objects_swept = 0;
  std::uint64_t heap_segments = 0;  // gauge: walkable segments after the
                                    // most recent sweep
  std::int64_t mark_ns = 0;   // total trace/mark phase time, all collections
  std::int64_t sweep_ns = 0;  // total sweep phase time, all collections
};

/// Per-tenant execution-service accounting (src/vm/service, DESIGN.md §11).
/// One row per tenant name, accumulated by record_service_job at job
/// completion (a low-frequency hook: one hub-lock trip per job).
struct TenantTelemetry {
  std::string tenant;
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_killed_fuel = 0;    // FuelExhausted terminations
  std::uint64_t jobs_killed_memory = 0;  // allocation-budget terminations
  std::uint64_t jobs_killed_deadline = 0;  // wall-clock-deadline terminations
  std::uint64_t jobs_faulted = 0;        // other managed/native faults
  std::uint64_t jobs_rejected = 0;       // refused before execution
  std::uint64_t fuel_spent = 0;          // taken backward branches, all jobs
  std::uint64_t bytes_charged = 0;       // budget bytes charged, all jobs
  std::int64_t queue_ns = 0;             // total submit -> dispatch wait
  std::int64_t run_ns = 0;               // total dispatch -> finish time

  std::uint64_t jobs_total() const {
    return jobs_completed + jobs_killed_fuel + jobs_killed_memory +
           jobs_killed_deadline + jobs_faulted + jobs_rejected;
  }
};

/// Vector-kernel execution stats (DESIGN.md §12): one row per VECLOOP kernel
/// that actually ran, with a histogram of its trip counts. Accumulated by
/// record_vec_loop (one hub-lock trip per guarded loop entry — a whole loop's
/// worth of work, so the lock never dominates).
struct VecKernelTelemetry {
  std::string kernel;          // veckernels::kernel_name
  support::Histogram trips;    // iterations per VECLOOP entry
};

struct EngineJitTimes {
  std::string engine;
  std::int64_t pass_ns[kNumJitPasses] = {};
  std::int64_t compile_ns = 0;  // wall time of whole compiles (verify + IR)
  std::uint64_t methods_compiled = 0;
  std::int64_t pass_total_ns() const {
    std::int64_t t = 0;
    for (std::int64_t v : pass_ns) t += v;
    return t;
  }
};

struct Snapshot {
  std::vector<MethodProfile> methods;  // sorted by method_id
  std::uint64_t counters[kNumCounters] = {};
  support::Histogram gc_pause_ns;        // all collections (minor + major)
  support::Histogram minor_pause_ns;     // nursery collections only
  support::Histogram major_pause_ns;     // full collections only
  support::Histogram safepoint_stall_ns;
  support::Histogram monitor_wait_ns;  // contended-acquire wait times
  support::Histogram archive_load_ns;  // per attach_archive call, whole-load
  GcTelemetry gc;
  std::vector<EngineJitTimes> jit;     // one entry per engine that compiled
  std::vector<TenantTelemetry> tenants;  // sorted by tenant name
  std::vector<VecKernelTelemetry> vec_kernels;  // sorted by kernel name
  std::vector<TraceEvent> events;

  std::uint64_t counter(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  const MethodProfile* method(std::int32_t id) const;
  const EngineJitTimes* engine_jit(const std::string& engine) const;
  const TenantTelemetry* tenant(const std::string& name) const;
  std::int64_t jit_total_ns() const;
};

// ---------------------------------------------------------------------------
// Control.

#if HPCNET_TELEMETRY_ENABLED
namespace detail {
extern std::atomic<bool> g_enabled;
}
/// Fast-path gate: one relaxed atomic load.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
#else
constexpr bool enabled() { return false; }
#endif

/// Runtime switch (also settable via the HPCNET_TELEMETRY env var: any value
/// other than empty/"0" enables collection at process start).
void set_enabled(bool on);

/// Clears all collected data (sinks stay registered). Call at quiescence.
void reset();

/// Merged view of everything collected so far.
Snapshot snapshot();

// ---------------------------------------------------------------------------
// Hot-path hooks: inline gate, out-of-line recording.

namespace detail {
void record_invocation_slow(std::int32_t method_id, std::uint64_t bytecodes,
                            std::uint8_t tier);
void count_slow(Counter c, std::uint64_t delta);
void record_allocation_slow(std::uint64_t bytes);
}  // namespace detail

/// One managed frame entered (plus bytecodes retired, for the IL tiers).
/// `tier` is the numeric Tier the frame ran on (uint8 to keep this header
/// free of execution.hpp).
inline void record_invocation(std::int32_t method_id,
                              std::uint64_t bytecodes = 0,
                              std::uint8_t tier = 0) {
  if (enabled()) detail::record_invocation_slow(method_id, bytecodes, tier);
}

inline void count(Counter c, std::uint64_t delta = 1) {
  if (enabled()) detail::count_slow(c, delta);
}

inline void record_allocation(std::uint64_t bytes) {
  if (enabled()) detail::record_allocation_slow(bytes);
}

/// RAII per-frame scope for the engines: counts the invocation (and, for the
/// IL tiers, retired bytecodes) when the frame exits. The dispatch loops keep
/// their own register-local counter and assign it to `bytecodes` at frame
/// exit — writing through this member per instruction costs ~10% on the
/// baseline tier even when telemetry is idle. A frame torn down by a native
/// C++ exception reports 0 bytecodes; the invocation itself is still counted.
class InvocationScope {
 public:
  explicit InvocationScope(std::int32_t method_id, std::uint8_t tier = 0)
      : method_id_(method_id), tier_(tier) {}
  ~InvocationScope() { record_invocation(method_id_, bytecodes, tier_); }
  InvocationScope(const InvocationScope&) = delete;
  InvocationScope& operator=(const InvocationScope&) = delete;

  std::uint64_t bytecodes = 0;

 private:
  std::int32_t method_id_;
  std::uint8_t tier_;
};

// ---------------------------------------------------------------------------
// Low-frequency hooks (gate checked inside; call cost irrelevant).

/// Attributes JIT pass/compile times recorded on this thread to `engine`
/// while in scope (the optimizing engine wraps regir::compile with this).
class CompileContext {
 public:
  explicit CompileContext(const char* engine_name);
  ~CompileContext();
  CompileContext(const CompileContext&) = delete;
  CompileContext& operator=(const CompileContext&) = delete;

 private:
  const char* prev_;
};

void record_jit_pass(std::int32_t method_id, JitPass pass, std::int64_t ns);
/// Whole-compile span; also emits a "jit" trace event named after the method.
void record_compile(std::int32_t method_id, const std::string& method_name,
                    std::int64_t begin_ns, std::int64_t end_ns);

/// A tiered-pipeline promotion: bumps Counter::TierUps and emits an instant
/// "tier" trace event. Called once per transition (the CAS/compile winner).
void record_tier_up(std::int32_t method_id, const std::string& method_name,
                    std::uint8_t from_tier, std::uint8_t to_tier);

/// An on-stack replacement: a running interpreter/baseline frame entered
/// compiled code at the loop header `il_pc`. Bumps Counter::OsrEntries and
/// emits an instant "tier" trace event.
void record_osr_entry(std::int32_t method_id, const std::string& method_name,
                      std::int32_t il_pc);

/// A deoptimization: a compiled frame bailed out at a back-edge safepoint to
/// an interpreter continuation at `il_pc`. Bumps Counter::Deopts and emits
/// an instant "tier" trace event.
void record_deopt(std::int32_t method_id, const std::string& method_name,
                  std::int32_t il_pc);

/// Sweep-side GC facts, recorded by the heap during the stop-the-world
/// window; folded into the pause recorded by record_gc_pause. `major`
/// selects which per-kind totals the facts land in; `mark_ns`/`sweep_ns`
/// are the collection's phase timings. `segments` is the post-sweep
/// walkable-segment count (kept as a gauge).
void record_gc_sweep(bool major, std::uint64_t bytes_allocated,
                     std::uint64_t bytes_freed, std::uint64_t objects_swept,
                     std::uint64_t segments, std::int64_t mark_ns,
                     std::int64_t sweep_ns);
/// Full stop-the-world pause (request -> world resumed). Lands in the
/// combined gc_pause_ns histogram and the per-kind minor/major one.
void record_gc_pause(bool major, std::int64_t begin_ns, std::int64_t end_ns);

/// Time a mutator spent parked at a safepoint for someone else's collection.
void record_safepoint_stall(std::int64_t ns);

/// A contended monitor acquire is starting (counted before the park so tests
/// and live dashboards can observe contention while the waiter is blocked).
void record_monitor_contention_begin();
/// ...and has finished, after `wait_ns` parked.
void record_monitor_contention_end(std::int64_t wait_ns);

/// One execution-service job finished (src/vm/service). `outcome` is the
/// numeric service::JobOutcome (uint8 to keep this header free of
/// service.hpp): 0 completed, 1 killed-fuel, 2 killed-memory, 3 faulted,
/// 4 rejected, 5 killed-deadline. Low-frequency: one hub-lock trip per job.
void record_service_job(const std::string& tenant, std::uint8_t outcome,
                        std::uint64_t fuel_spent, std::uint64_t bytes_charged,
                        std::int64_t queue_ns, std::int64_t run_ns);

/// One VECLOOP superinstruction entered with its guards passing: `trips`
/// scalar iterations ran as a single `kernel` call. Bumps
/// Counter::VecLoopsEntered and records the trip count per kernel.
void record_vec_loop(const char* kernel, std::uint64_t trips);

/// One attach_archive call finished: `restored` records published warm,
/// `missed` rejected, `ns` the whole attach (verify + hash + publish).
/// Bumps the Snapshot* counters and records the load-time histogram.
void record_archive_load(std::uint64_t restored, std::uint64_t missed,
                         std::int64_t ns);

/// Generic trace span on the current thread ("kernel" runs, etc.).
void record_span(const char* cat, std::string name, std::int64_t begin_ns,
                 std::int64_t end_ns, std::string args_json = {});

/// Thread lifecycle (managed thread id <-> trace tid; emits a "thread" run
/// span at detach).
void on_thread_attach(std::uint32_t thread_id);
void on_thread_detach(std::uint32_t thread_id);

}  // namespace hpcnet::vm::telemetry

#include "vm/telemetry/summary.hpp"

#include <algorithm>
#include <cstdio>
#include <string>

#include "vm/module.hpp"

namespace hpcnet::vm::telemetry {

namespace {

std::string method_label(const Module* module, std::int32_t id) {
  if (module != nullptr &&
      static_cast<std::size_t>(id) < module->method_count()) {
    return module->method(id).name;
  }
  return "#" + std::to_string(id);
}

double ms(std::int64_t ns) { return static_cast<double>(ns) * 1e-6; }

void print_histogram(std::ostream& os, const support::Histogram& h,
                     const char* what) {
  if (h.count() == 0) {
    os << "  " << what << ": none\n";
    return;
  }
  char line[256];
  std::snprintf(line, sizeof line,
                "  %s: %llu, total %.3f ms, mean %.3f ms, p50 %.3f ms, "
                "p95 %.3f ms, max %.3f ms\n",
                what, static_cast<unsigned long long>(h.count()),
                ms(static_cast<std::int64_t>(h.total())),
                h.mean() * 1e-6,
                ms(static_cast<std::int64_t>(h.percentile(50))),
                ms(static_cast<std::int64_t>(h.percentile(95))),
                ms(static_cast<std::int64_t>(h.max())));
  os << line;
  // Bucket sparkline: only the occupied range, one row per non-empty bucket.
  for (std::size_t i = 0; i < support::Histogram::kBuckets; ++i) {
    if (h.bucket(i) == 0) continue;
    std::snprintf(line, sizeof line, "    [%9.3f ms, %9.3f ms]  %llu\n",
                  ms(static_cast<std::int64_t>(
                      support::Histogram::bucket_floor(i))),
                  ms(static_cast<std::int64_t>(
                      std::min(support::Histogram::bucket_ceil(i),
                               h.max()))),
                  static_cast<unsigned long long>(h.bucket(i)));
    os << line;
  }
}

}  // namespace

std::vector<support::ResultTable> summary_tables(const Snapshot& s,
                                                 const Module* module,
                                                 const SummaryOptions& opts) {
  std::vector<support::ResultTable> tables;

  {
    support::ResultTable t("telemetry: per-method profile");
    std::vector<const MethodProfile*> by_invocations;
    by_invocations.reserve(s.methods.size());
    for (const MethodProfile& m : s.methods) by_invocations.push_back(&m);
    std::sort(by_invocations.begin(), by_invocations.end(),
              [](const MethodProfile* a, const MethodProfile* b) {
                return a->invocations > b->invocations;
              });
    const std::size_t n =
        std::min(by_invocations.size(), opts.top_methods);
    for (std::size_t i = 0; i < n; ++i) {
      const MethodProfile& m = *by_invocations[i];
      const std::string name = method_label(module, m.method_id);
      t.set(name, "invocations", static_cast<double>(m.invocations));
      if (m.bytecodes != 0) {
        t.set(name, "bytecodes", static_cast<double>(m.bytecodes));
      }
      // Dominant execution tier (0=interp 1=baseline 2=opt) plus the split
      // across tiers, when the tiered pipeline moved the method.
      std::uint64_t tiered_total = 0;
      for (std::uint64_t v : m.tier_invocations) tiered_total += v;
      if (tiered_total != 0) {
        std::size_t dominant = 0;
        std::size_t used = 0;
        for (std::size_t tier = 0; tier < kNumTiers; ++tier) {
          if (m.tier_invocations[tier] == 0) continue;
          ++used;
          if (m.tier_invocations[tier] > m.tier_invocations[dominant]) {
            dominant = tier;
          }
        }
        t.set(name, "tier", static_cast<double>(dominant));
        if (used > 1) {
          const char* tier_cols[kNumTiers] = {"interp", "baseline", "opt"};
          for (std::size_t tier = 0; tier < kNumTiers; ++tier) {
            if (m.tier_invocations[tier] != 0) {
              t.set(name, tier_cols[tier],
                    static_cast<double>(m.tier_invocations[tier]));
            }
          }
        }
      }
      if (m.jit_ns != 0) t.set(name, "jit_ms", ms(m.jit_ns));
    }
    tables.push_back(std::move(t));
  }

  if (!s.jit.empty()) {
    support::ResultTable t("telemetry: JIT pass times (ms)");
    for (const EngineJitTimes& j : s.jit) {
      for (std::size_t p = 0; p < kNumJitPasses; ++p) {
        t.set(jit_pass_name(static_cast<JitPass>(p)), j.engine,
              ms(j.pass_ns[p]));
      }
      t.set("total (compile)", j.engine, ms(j.compile_ns));
      t.set("methods compiled", j.engine,
            static_cast<double>(j.methods_compiled));
    }
    tables.push_back(std::move(t));
  }

  if (!s.tenants.empty()) {
    support::ResultTable t("telemetry: execution service (per tenant)");
    for (const TenantTelemetry& ten : s.tenants) {
      t.set(ten.tenant, "jobs", static_cast<double>(ten.jobs_total()));
      t.set(ten.tenant, "completed", static_cast<double>(ten.jobs_completed));
      const std::uint64_t killed = ten.jobs_killed_fuel +
                                   ten.jobs_killed_memory +
                                   ten.jobs_killed_deadline;
      t.set(ten.tenant, "killed", static_cast<double>(killed));
      if (ten.jobs_faulted != 0) {
        t.set(ten.tenant, "faulted", static_cast<double>(ten.jobs_faulted));
      }
      if (ten.jobs_rejected != 0) {
        t.set(ten.tenant, "rejected", static_cast<double>(ten.jobs_rejected));
      }
      t.set(ten.tenant, "fuel_spent", static_cast<double>(ten.fuel_spent));
      t.set(ten.tenant, "alloc_mb",
            static_cast<double>(ten.bytes_charged) / (1024.0 * 1024.0));
      const std::uint64_t jobs = ten.jobs_total();
      if (jobs != 0) {
        t.set(ten.tenant, "avg_queue_ms",
              ms(ten.queue_ns) / static_cast<double>(jobs));
        t.set(ten.tenant, "avg_run_ms",
              ms(ten.run_ns) / static_cast<double>(jobs));
      }
    }
    tables.push_back(std::move(t));
  }

  return tables;
}

void print_summary(std::ostream& os, const Snapshot& s, const Module* module,
                   const SummaryOptions& opts) {
  for (const support::ResultTable& t : summary_tables(s, module, opts)) {
    if (opts.json) {
      t.print_json(os);
    } else {
      t.print(os);
      os << "\n";
    }
  }
  if (opts.json) return;  // counters below ride in the tables' JSON callers

  os << "== telemetry: GC ==\n";
  char line[256];
  std::snprintf(line, sizeof line,
                "  collections: %llu (%llu minor, %llu major), allocated "
                "%.2f MB, freed %.2f MB, swept %llu objects\n",
                static_cast<unsigned long long>(s.gc.collections),
                static_cast<unsigned long long>(s.gc.minor_collections),
                static_cast<unsigned long long>(s.gc.major_collections),
                static_cast<double>(s.gc.bytes_allocated) / (1024.0 * 1024.0),
                static_cast<double>(s.gc.bytes_freed) / (1024.0 * 1024.0),
                static_cast<unsigned long long>(s.gc.objects_swept));
  os << line;
  std::snprintf(line, sizeof line,
                "  phases: mark %.2f ms, sweep %.2f ms; cards scanned: "
                "%llu, promoted %.2f KB\n",
                ms(s.gc.mark_ns), ms(s.gc.sweep_ns),
                static_cast<unsigned long long>(
                    s.counter(Counter::CardsScanned)),
                static_cast<double>(s.counter(Counter::PromotedBytes)) /
                    1024.0);
  os << line;
  std::snprintf(line, sizeof line,
                "  allocations (all time): %llu objects, %.2f MB\n",
                static_cast<unsigned long long>(
                    s.counter(Counter::Allocations)),
                static_cast<double>(s.counter(Counter::BytesAllocated)) /
                    (1024.0 * 1024.0));
  os << line;
  std::snprintf(line, sizeof line,
                "  tlab refills: %llu, tlab waste %.2f KB, large allocs: "
                "%llu, segments: %llu\n",
                static_cast<unsigned long long>(
                    s.counter(Counter::TlabRefills)),
                static_cast<double>(s.counter(Counter::TlabWasteBytes)) /
                    1024.0,
                static_cast<unsigned long long>(
                    s.counter(Counter::LargeAllocs)),
                static_cast<unsigned long long>(s.gc.heap_segments));
  os << line;
  print_histogram(os, s.gc_pause_ns, "pauses");
  print_histogram(os, s.minor_pause_ns, "minor pauses");
  print_histogram(os, s.major_pause_ns, "major pauses");
  print_histogram(os, s.safepoint_stall_ns, "safepoint stalls");

  os << "\n== telemetry: monitors ==\n";
  std::snprintf(line, sizeof line,
                "  acquires: %llu, contended: %llu, waits: %llu\n",
                static_cast<unsigned long long>(
                    s.counter(Counter::MonitorAcquires)),
                static_cast<unsigned long long>(
                    s.counter(Counter::MonitorContended)),
                static_cast<unsigned long long>(
                    s.counter(Counter::MonitorWaits)));
  os << line;
  print_histogram(os, s.monitor_wait_ns, "contended-acquire waits");

  os << "\n== telemetry: tiering ==\n";
  std::snprintf(line, sizeof line,
                "  tier-ups: %llu, osr entries: %llu, deopts: %llu\n",
                static_cast<unsigned long long>(s.counter(Counter::TierUps)),
                static_cast<unsigned long long>(
                    s.counter(Counter::OsrEntries)),
                static_cast<unsigned long long>(s.counter(Counter::Deopts)));
  os << line;

  if (s.counter(Counter::SnapshotMethodsRestored) != 0 ||
      s.counter(Counter::SnapshotMisses) != 0 ||
      s.archive_load_ns.count() != 0) {
    os << "\n== telemetry: snapshot warm start ==\n";
    std::snprintf(line, sizeof line,
                  "  methods restored: %llu, misses: %llu\n",
                  static_cast<unsigned long long>(
                      s.counter(Counter::SnapshotMethodsRestored)),
                  static_cast<unsigned long long>(
                      s.counter(Counter::SnapshotMisses)));
    os << line;
    print_histogram(os, s.archive_load_ns, "archive loads");
  }

  if (s.counter(Counter::VecLoopsEntered) != 0 || !s.vec_kernels.empty()) {
    os << "\n== telemetry: vectorization ==\n";
    std::snprintf(line, sizeof line, "  vec loops entered: %llu\n",
                  static_cast<unsigned long long>(
                      s.counter(Counter::VecLoopsEntered)));
    os << line;
    for (const VecKernelTelemetry& v : s.vec_kernels) {
      // Trip counts are iterations, not ns, so print_histogram's ms
      // formatting does not apply here.
      std::snprintf(line, sizeof line,
                    "  %s: entries %llu, trips total %llu, mean %.1f, "
                    "min %llu, max %llu\n",
                    v.kernel.c_str(),
                    static_cast<unsigned long long>(v.trips.count()),
                    static_cast<unsigned long long>(v.trips.total()),
                    v.trips.mean(),
                    static_cast<unsigned long long>(v.trips.min()),
                    static_cast<unsigned long long>(v.trips.max()));
      os << line;
    }
  }

  if (!s.tenants.empty()) {
    os << "\n== telemetry: execution service ==\n";
    for (const TenantTelemetry& ten : s.tenants) {
      std::snprintf(
          line, sizeof line,
          "  %s: %llu jobs (%llu ok, %llu fuel-killed, %llu mem-killed, "
          "%llu deadline-killed, %llu faulted, %llu rejected), fuel %llu, "
          "alloc %.2f MB\n",
          ten.tenant.c_str(),
          static_cast<unsigned long long>(ten.jobs_total()),
          static_cast<unsigned long long>(ten.jobs_completed),
          static_cast<unsigned long long>(ten.jobs_killed_fuel),
          static_cast<unsigned long long>(ten.jobs_killed_memory),
          static_cast<unsigned long long>(ten.jobs_killed_deadline),
          static_cast<unsigned long long>(ten.jobs_faulted),
          static_cast<unsigned long long>(ten.jobs_rejected),
          static_cast<unsigned long long>(ten.fuel_spent),
          static_cast<double>(ten.bytes_charged) / (1024.0 * 1024.0));
      os << line;
    }
  }
}

}  // namespace hpcnet::vm::telemetry

#include "vm/telemetry/trace_writer.hpp"

#include <algorithm>
#include <cstdio>
#include <set>

#include "support/reporter.hpp"

namespace hpcnet::vm::telemetry {

namespace {

std::string us(std::int64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.3f", static_cast<double>(ns) * 1e-3);
  return buf;
}

}  // namespace

void write_chrome_trace(std::ostream& os, const Snapshot& snapshot) {
  std::int64_t epoch = 0;
  bool first_event = true;
  for (const TraceEvent& ev : snapshot.events) {
    if (first_event || ev.begin_ns < epoch) epoch = ev.begin_ns;
    first_event = false;
  }

  os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  std::set<std::uint32_t> tids;
  for (const TraceEvent& ev : snapshot.events) tids.insert(ev.tid);
  for (std::uint32_t tid : tids) {
    sep();
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
       << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
       << (tid == 0 ? std::string("native") :
                      "managed-" + std::to_string(tid))
       << "\"}}";
  }

  for (const TraceEvent& ev : snapshot.events) {
    sep();
    os << "{\"ph\":\"X\",\"pid\":1,\"tid\":" << ev.tid << ",\"name\":\""
       << support::json_escape(ev.name) << "\",\"cat\":\""
       << support::json_escape(ev.cat) << "\",\"ts\":"
       << us(ev.begin_ns - epoch) << ",\"dur\":"
       << us(std::max<std::int64_t>(ev.end_ns - ev.begin_ns, 0));
    if (!ev.args_json.empty()) os << ",\"args\":{" << ev.args_json << "}";
    os << "}";
  }
  os << "\n]}\n";
}

}  // namespace hpcnet::vm::telemetry

#include "vm/monitor.hpp"

#include <atomic>

#include "support/timer.hpp"
#include "vm/execution.hpp"
#include "vm/heap.hpp"
#include "vm/telemetry/telemetry.hpp"

namespace hpcnet::vm {

MonitorTable::Entry& MonitorTable::entry_for(ObjRef obj) {
  // lock_id is written once (under table_mu_) and never changes afterwards.
  // The unlocked fast-path read still needs acquire/release on the word
  // itself: the release store publishes the Entry constructed just before it,
  // so a thread that observes a nonzero id also observes a fully-built Entry
  // at entries_[id - 1] (deque => stable addresses, no reallocation races).
  std::atomic_ref<std::uint32_t> lock_id(obj->lock_id);
  std::uint32_t id = lock_id.load(std::memory_order_acquire);
  if (id == 0) {
    std::lock_guard<std::mutex> lock(table_mu_);
    id = lock_id.load(std::memory_order_relaxed);
    if (id == 0) {
      entries_.emplace_back();
      id = static_cast<std::uint32_t>(entries_.size());
      lock_id.store(id, std::memory_order_release);
    }
  }
  return entries_[id - 1];
}

void MonitorTable::enter(VMContext& ctx, ObjRef obj) {
  Entry& e = entry_for(obj);
  telemetry::count(telemetry::Counter::MonitorAcquires);
  // Uncontended fast path: try to take ownership without becoming GC-safe.
  {
    std::unique_lock<std::mutex> l(e.m, std::try_to_lock);
    if (l.owns_lock()) {
      if (e.owner == 0) {
        e.owner = ctx.thread_id;
        e.count = 1;
        return;
      }
      if (e.owner == ctx.thread_id) {
        ++e.count;
        return;
      }
    }
  }
  // Contended: park GC-safe while waiting.
  telemetry::record_monitor_contention_begin();
  const std::int64_t wait_begin =
      telemetry::enabled() ? support::now_ns() : 0;
  vm_.enter_safe_region(ctx);
  {
    std::unique_lock<std::mutex> l(e.m);
    if (e.owner == ctx.thread_id) {
      ++e.count;
    } else {
      e.acquire_cv.wait(l, [&] { return e.owner == 0; });
      e.owner = ctx.thread_id;
      e.count = 1;
    }
  }
  vm_.leave_safe_region(ctx);
  if (wait_begin != 0) {
    telemetry::record_monitor_contention_end(support::now_ns() - wait_begin);
  }
}

bool MonitorTable::exit(VMContext& ctx, ObjRef obj) {
  Entry& e = entry_for(obj);
  std::lock_guard<std::mutex> l(e.m);
  if (e.owner != ctx.thread_id) return false;
  if (--e.count == 0) {
    e.owner = 0;
    e.acquire_cv.notify_one();
  }
  return true;
}

bool MonitorTable::wait(VMContext& ctx, ObjRef obj) {
  Entry& e = entry_for(obj);
  telemetry::count(telemetry::Counter::MonitorWaits);
  vm_.enter_safe_region(ctx);
  bool ok = true;
  {
    std::unique_lock<std::mutex> l(e.m);
    if (e.owner != ctx.thread_id) {
      ok = false;
    } else {
      const int saved = e.count;
      e.owner = 0;
      e.count = 0;
      e.acquire_cv.notify_one();
      e.wait_cv.wait(l);
      while (e.owner != 0) e.acquire_cv.wait(l);
      e.owner = ctx.thread_id;
      e.count = saved;
    }
  }
  vm_.leave_safe_region(ctx);
  return ok;
}

bool MonitorTable::pulse(VMContext& ctx, ObjRef obj) {
  Entry& e = entry_for(obj);
  std::lock_guard<std::mutex> l(e.m);
  if (e.owner != ctx.thread_id) return false;
  e.wait_cv.notify_one();
  return true;
}

bool MonitorTable::pulse_all(VMContext& ctx, ObjRef obj) {
  Entry& e = entry_for(obj);
  std::lock_guard<std::mutex> l(e.m);
  if (e.owner != ctx.thread_id) return false;
  e.wait_cv.notify_all();
  return true;
}

std::size_t MonitorTable::inflated() const {
  std::lock_guard<std::mutex> lock(table_mu_);
  return entries_.size();
}

}  // namespace hpcnet::vm

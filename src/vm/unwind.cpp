#include "vm/unwind.hpp"

#include "vm/heap.hpp"
#include "vm/module.hpp"

namespace hpcnet::vm {

UnwindAction UnwindMachine::on_throw(const Module& mod, const MethodDef& m,
                                     std::int32_t throw_pc, ObjRef exc) {
  // A throw while already unwinding (from inside a finally) replaces the
  // in-flight exception; the search continues outward from the finally's
  // position, i.e. from the current cursor.
  if (mode_ != Mode::Throw) {
    next_handler_ = 0;
    throw_pc_ = throw_pc;
  }
  mode_ = Mode::Throw;
  exc_ = exc;
  pending_finallys_.clear();
  return search(mod, m);
}

UnwindAction UnwindMachine::search(const Module& mod, const MethodDef& m) {
  while (next_handler_ < m.handlers.size()) {
    const std::int32_t idx = static_cast<std::int32_t>(next_handler_);
    const ExHandler& h = m.handlers[next_handler_++];
    if (!covers(h, throw_pc_)) continue;
    if (h.kind == HandlerKind::Finally) {
      return {UnwindAction::Kind::EnterFinally, h.handler, idx};
    }
    if (exc_ != nullptr && exc_->kind == ObjKind::Instance &&
        mod.is_subclass(exc_->klass, h.catch_class)) {
      mode_ = Mode::None;
      return {UnwindAction::Kind::EnterCatch, h.handler, idx};
    }
  }
  // Nothing (left) in this frame.
  return {UnwindAction::Kind::Propagate, -1};
}

UnwindAction UnwindMachine::on_leave(const MethodDef& m, std::int32_t leave_pc,
                                     std::int32_t target) {
  pending_finallys_.clear();
  pending_finally_idx_.clear();
  next_finally_ = 0;
  for (std::size_t hi = 0; hi < m.handlers.size(); ++hi) {
    const ExHandler& h = m.handlers[hi];
    if (h.kind != HandlerKind::Finally) continue;
    if (covers(h, leave_pc) && !covers(h, target)) {
      pending_finallys_.push_back(h.handler);
      pending_finally_idx_.push_back(static_cast<std::int32_t>(hi));
    }
  }
  leave_target_ = target;
  if (pending_finallys_.empty()) {
    mode_ = Mode::None;
    return {UnwindAction::Kind::Resume, target};
  }
  mode_ = Mode::Leave;
  const std::size_t i = next_finally_++;
  return {UnwindAction::Kind::EnterFinally, pending_finallys_[i],
          pending_finally_idx_[i]};
}

UnwindAction UnwindMachine::on_endfinally(const Module& mod,
                                          const MethodDef& m) {
  switch (mode_) {
    case Mode::Throw:
      return search(mod, m);
    case Mode::Leave:
      if (next_finally_ < pending_finallys_.size()) {
        const std::size_t i = next_finally_++;
        return {UnwindAction::Kind::EnterFinally, pending_finallys_[i],
                pending_finally_idx_[i]};
      }
      mode_ = Mode::None;
      return {UnwindAction::Kind::Resume, leave_target_};
    case Mode::None:
      // endfinally outside any unwind: verifier allows it only inside a
      // finally region; treat as a no-op fallthrough hazard -> propagate a
      // frame error by resuming past the end is impossible, so resume at -1
      // is a logic error. The verifier prevents this path for valid IL.
      return {UnwindAction::Kind::Propagate, -1};
  }
  return {UnwindAction::Kind::Propagate, -1};
}

}  // namespace hpcnet::vm

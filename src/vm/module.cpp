#include "vm/module.hpp"

namespace hpcnet::vm {

std::int32_t ClassDef::field_index(const std::string& n) const {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (fields[i].name == n) return static_cast<std::int32_t>(i);
  }
  return -1;
}

std::int32_t ClassDef::static_field_index(const std::string& n) const {
  for (std::size_t i = 0; i < static_fields.size(); ++i) {
    if (static_fields[i].name == n) return static_cast<std::int32_t>(i);
  }
  return -1;
}

Module::Module() {
  // System exception hierarchy. Every exception carries a message field
  // (a string ref) so benchmark code and tests can inspect what was thrown.
  exc_exception_ = define_class(
      "System.Exception", {{"message", ValType::Ref}});
  exc_arith_ = define_class("System.ArithmeticException", {}, exc_exception_);
  exc_nullref_ =
      define_class("System.NullReferenceException", {}, exc_exception_);
  exc_indexrange_ =
      define_class("System.IndexOutOfRangeException", {}, exc_exception_);
  exc_divzero_ =
      define_class("System.DivideByZeroException", {}, exc_arith_);
  exc_invalidcast_ =
      define_class("System.InvalidCastException", {}, exc_exception_);
  // Service-layer faults (appended last so the ids above stay stable for
  // serialized modules): thrown when a metered job exceeds its fuel or
  // allocation budget (src/vm/service, DESIGN.md §11).
  exc_fuel_ =
      define_class("HPCNet.FuelExhaustedException", {}, exc_exception_);
  exc_oom_ =
      define_class("System.OutOfMemoryException", {}, exc_exception_);
  // Wall-clock deadline kills (DESIGN.md §14) — appended after the PR-6
  // classes so every earlier id stays stable for serialized modules.
  exc_deadline_ =
      define_class("HPCNet.DeadlineExceededException", {}, exc_exception_);
}

std::int32_t Module::define_class(const std::string& name,
                                  std::vector<FieldDef> fields,
                                  std::int32_t base,
                                  std::vector<FieldDef> static_fields) {
  ClassDef c;
  c.name = name;
  c.id = static_cast<std::int32_t>(classes_.size());
  c.base = base;
  // Derived classes inherit base instance fields by prefixing them, so field
  // indices of the base remain valid on derived instances.
  if (base >= 0) {
    const auto& b = classes_[static_cast<std::size_t>(base)];
    c.fields = b.fields;
  }
  for (auto& f : fields) c.fields.push_back(std::move(f));
  c.static_fields = std::move(static_fields);
  class_ids_[name] = c.id;
  classes_.push_back(std::move(c));
  return classes_.back().id;
}

std::int32_t Module::find_class(const std::string& name) const {
  auto it = class_ids_.find(name);
  return it == class_ids_.end() ? -1 : it->second;
}

bool Module::is_subclass(std::int32_t cls, std::int32_t base) const {
  while (cls >= 0) {
    if (cls == base) return true;
    cls = classes_[static_cast<std::size_t>(cls)].base;
  }
  return false;
}

std::int32_t Module::add_method(MethodDef def) {
  def.id = static_cast<std::int32_t>(methods_.size());
  method_ids_[def.name] = def.id;
  methods_.push_back(std::make_unique<MethodDef>(std::move(def)));
  return methods_.back()->id;
}

std::int32_t Module::find_method(const std::string& name) const {
  auto it = method_ids_.find(name);
  return it == method_ids_.end() ? -1 : it->second;
}

std::int32_t Module::intern_string(const std::string& s) {
  auto it = string_ids_.find(s);
  if (it != string_ids_.end()) return it->second;
  const auto id = static_cast<std::int32_t>(strings_.size());
  strings_.push_back(s);
  string_ids_[s] = id;
  return id;
}

Slot* Module::statics(std::int32_t class_id) {
  auto it = statics_.find(class_id);
  if (it == statics_.end()) {
    const auto& c = classes_[static_cast<std::size_t>(class_id)];
    it = statics_
             .emplace(class_id,
                      std::vector<Slot>(c.static_fields.size()))
             .first;
  }
  return it->second.data();
}

}  // namespace hpcnet::vm

#include "vm/veccompile.hpp"

#include <algorithm>
#include <cstdint>
#include <vector>

#include "vm/regir_ops.hpp"
#include "vm/veckernels.hpp"

namespace hpcnet::vm::regir {

namespace {

namespace vk = veckernels;

// Symbolic per-iteration value: the recognizer executes the loop body once,
// abstractly, and template-matches the resulting expression DAG. Anything it
// cannot model (calls, allocations, ref stores, division, extra branches,
// non-unit strides) rejects the loop — the scalar code is always correct.
struct Expr {
  enum class Kind { Idx, Imm, Inv, Load, Add, Sub, Mul };
  Kind kind = Kind::Imm;
  ValType type = ValType::I32;
  std::int32_t reg = -1;     // Inv: the invariant register read
  bool carried = false;      // Inv: reg IS defined later in the region — a
                             // loop-carried read of the iteration-entry
                             // value, legal only as a reduction accumulator
  std::int64_t bits = 0;     // Imm: raw slot bits; Idx: offset from ivar
  std::int32_t arr = -1;     // Load: array register
  std::int32_t gather = -1;  // Load: i32 index array (index = gather[ivar]);
                             // -1 means the index is ivar + bits
  int l = -1, r = -1;        // Add/Sub/Mul children
};

/// A guard interval the chosen kernel's runtime checks must cover: every
/// in-loop CHK_BOUNDS the superinstruction subsumes becomes one of these.
struct BoundReq {
  std::int32_t arr;
  std::int32_t off;   // index = ivar + off, or ignored when gather
  std::int32_t gather = -1;  // per-element check: arr[gather[ivar]]
};

struct Match {
  std::int32_t kernel = -1;
  std::int32_t arr0 = -1, arr1 = -1, arr2 = -1;
  std::int32_t s0_reg = -1, s1_reg = -1;
  std::int64_t s0_bits = 0, s1_bits = 0;
};

class Lowerer {
 public:
  explicit Lowerer(const VecLowerInput& in)
      : code_(*in.code),
        il_start_(*in.il_start),
        labels_(*in.labels),
        method_(*in.method),
        rc_(*in.rc) {}

  int run() {
    int lowered = 0;
    // Each insertion shifts positions; rescan from scratch (LICM-style).
    for (int round = 0; round < 32; ++round) {
      if (!round_once()) break;
      ++lowered;
    }
    return lowered;
  }

 private:
  bool round_once() {
    struct Cand {
      std::size_t j;
      std::int32_t body;
    };
    std::vector<Cand> cands;
    for (std::size_t j = 0; j < code_.size(); ++j) {
      const RInstr& br = code_[j];
      if (br.op != ROp::JLT_I4 && br.op != ROp::JLT_LEN && br.op != ROp::JMP) {
        continue;
      }
      const std::int32_t til = br.d;  // IL pc pre-compaction
      if (til < 0 || static_cast<std::size_t>(til) >= il_start_.size()) {
        continue;
      }
      const std::int32_t body = il_start_[static_cast<std::size_t>(til)];
      if (body < 0 || static_cast<std::size_t>(body) >= j) continue;
      cands.push_back({j, body});
    }
    // Innermost first: smaller regions cannot contain other loops.
    std::sort(cands.begin(), cands.end(), [](const Cand& x, const Cand& y) {
      return (static_cast<std::int32_t>(x.j) - x.body) <
             (static_cast<std::int32_t>(y.j) - y.body);
    });
    for (const Cand& c : cands) {
      if (try_lower(c.body, static_cast<std::int32_t>(c.j))) return true;
    }
    return false;
  }

  // ---- shared region analysis -----------------------------------------

  bool handler_starts_inside(std::int32_t body, std::int32_t j) const {
    for (const ExHandler& h : method_.handlers) {
      const std::int32_t hs = il_start_[static_cast<std::size_t>(h.handler)];
      if (hs >= body && hs <= j) return true;
    }
    return false;
  }

  /// try_hoist's entry analysis: every control transfer into [body, j] from
  /// outside the region.
  void analyze_entries(std::int32_t body, std::int32_t j, std::int32_t* count,
                       std::int32_t* entry_jmp, std::int32_t* entry_target,
                       bool* entry_uncond, bool* fall_in) const {
    *count = 0;
    *entry_jmp = -1;
    *entry_target = -1;
    *entry_uncond = false;
    for (std::size_t p = 0; p < code_.size(); ++p) {
      const RInstr& in = code_[p];
      std::int32_t til;
      if (is_branch(in.op)) {
        til = in.d;
      } else if (in.op == ROp::LEAVE_R) {
        til = in.a;
      } else {
        continue;
      }
      if (til < 0 || static_cast<std::size_t>(til) >= il_start_.size()) {
        continue;
      }
      const std::int32_t t = il_start_[static_cast<std::size_t>(til)];
      if (t < body || t > j) continue;
      const auto pos = static_cast<std::int32_t>(p);
      if (pos >= body && pos <= j) continue;  // internal edge
      ++*count;
      *entry_jmp = pos;
      *entry_target = t;
      *entry_uncond = in.op == ROp::JMP || in.op == ROp::JMPB;
    }
    *fall_in = true;
    std::int32_t p = body - 1;
    while (p >= 0 && code_[static_cast<std::size_t>(p)].op == ROp::NOP_R) --p;
    if (p >= 0) {
      const ROp op = code_[static_cast<std::size_t>(p)].op;
      if (op == ROp::JMP || op == ROp::JMPB || op == ROp::RET_R ||
          op == ROp::THROW_R || op == ROp::LEAVE_R ||
          op == ROp::ENDFINALLY_R) {
        *fall_in = false;
      }
    }
  }

  bool uses_reg(const RInstr& in, std::int32_t r) const {
    const Operands ops = operands_of(in, rc_.args_pool);
    for (int k = 0; k < ops.nuses; ++k) {
      if (ops.uses[k] == r) return true;
    }
    if (in.op == ROp::CALL_R || in.op == ROp::CALLINTR_R) {
      const auto argc = static_cast<std::int32_t>(in.imm.i64);
      for (std::int32_t k = 0; k < argc; ++k) {
        if (rc_.args_pool[static_cast<std::size_t>(in.b + k)] == r) {
          return true;
        }
      }
    }
    return false;
  }

  // ---- expression pool -------------------------------------------------

  int add(Expr e) {
    pool_.push_back(e);
    return static_cast<int>(pool_.size()) - 1;
  }
  int idx_node(std::int64_t off) {
    Expr e;
    e.kind = Expr::Kind::Idx;
    e.type = ValType::I32;
    e.bits = off;
    return add(e);
  }
  int bin(Expr::Kind k, ValType t, int l, int r) {
    Expr e;
    e.kind = k;
    e.type = t;
    e.l = l;
    e.r = r;
    return add(e);
  }

  const Expr& at(int e) const { return pool_[static_cast<std::size_t>(e)]; }

  bool subtree_has_carried(int e) const {
    const Expr& x = at(e);
    if (x.kind == Expr::Kind::Inv) return x.carried;
    if (x.l >= 0 && subtree_has_carried(x.l)) return true;
    if (x.r >= 0 && subtree_has_carried(x.r)) return true;
    return false;
  }

  // ---- the lowering attempt -------------------------------------------

  bool try_lower(std::int32_t body, std::int32_t j) {
    const RInstr& br = code_[static_cast<std::size_t>(j)];
    const bool rotated = br.op != ROp::JMP;  // JLT_I4 / JLT_LEN back edge

    if (handler_starts_inside(body, j)) return false;

    std::int32_t entries, entry_jmp, entry_target;
    bool entry_uncond, fall_in;
    analyze_entries(body, j, &entries, &entry_jmp, &entry_target,
                    &entry_uncond, &fall_in);

    std::int32_t insert_at;
    std::int32_t ivar, limit = -1, limit_arr = -1;
    std::int32_t work_begin;  // body evaluation range [work_begin, work_end)
    std::int32_t work_end;
    if (rotated) {
      // Form A — `br cond; top: body; i++; cond: jlt top` (counted_loop /
      // ldlen_loop). Loop entered only through one unconditional jump to the
      // guard; the VECLOOP goes right before that jump.
      if (entries != 1 || fall_in || !entry_uncond) return false;
      insert_at = entry_jmp;
      ivar = br.a;
      if (br.op == ROp::JLT_I4) {
        limit = br.b;
      } else {
        limit_arr = br.b;
      }
      // The entry must land on the guard: everything from the landing point
      // to the back edge has to be NOPs, or the post-kernel hand-off (entry
      // jump -> guard -> exit) would re-execute body work. One exception:
      // when BCE could not fuse a JLT_LEN (length register shared with body
      // scratch) the guard block recomputes `t = ldlen arr; jlt i, t`. That
      // ldlen re-executes after the kernel commits, so it needs no
      // modelling — the loop is simply length-bounded on `arr`.
      for (std::int32_t k = entry_target; k < j; ++k) {
        const RInstr& gi = code_[static_cast<std::size_t>(k)];
        if (gi.op == ROp::NOP_R) continue;
        if (gi.op == ROp::LDLEN_R && br.op == ROp::JLT_I4 && gi.d == br.b &&
            limit == br.b && limit_arr < 0) {
          limit = -1;
          limit_arr = gi.a;
          continue;
        }
        return false;
      }
      work_begin = body;
      work_end = entry_target;
    } else {
      // Form B — `head: jge exit; body; i++; jmp head` (top-tested loops:
      // the SOR j-loop, the sparse gather loop). Entered by fall-in only;
      // the VECLOOP goes at the head. The il_start shift then re-points
      // every branch to the head PAST the superinstruction, so only the
      // fall-in path runs it — once.
      if (entries != 0 || !fall_in) return false;
      insert_at = body;
      // First non-NOP must be the exit guard `jge ivar, limit -> after j`.
      std::int32_t g = body;
      while (g < j && code_[static_cast<std::size_t>(g)].op == ROp::NOP_R) {
        ++g;
      }
      const RInstr& guard = code_[static_cast<std::size_t>(g)];
      if (guard.op != ROp::JGE_I4) return false;
      const std::int32_t gtil = guard.d;
      if (gtil < 0 || static_cast<std::size_t>(gtil) >= il_start_.size()) {
        return false;
      }
      if (il_start_[static_cast<std::size_t>(gtil)] <= j) return false;
      ivar = guard.a;
      limit = guard.b;
      work_begin = g + 1;
      work_end = j;
    }

    // Don't re-lower a loop that already has its VECLOOP.
    if (insert_at > 0 &&
        code_[static_cast<std::size_t>(insert_at) - 1].op == ROp::VECLOOP) {
      return false;
    }

    // Region def counts + first def position (for carried-read legality).
    const auto nregs = static_cast<std::int32_t>(rc_.reg_types.size());
    std::vector<std::int32_t> region_defs(static_cast<std::size_t>(nregs), 0);
    std::vector<std::int32_t> first_def(static_cast<std::size_t>(nregs), -1);
    for (std::int32_t p = body; p <= j; ++p) {
      const Operands ops = operands_of(code_[static_cast<std::size_t>(p)],
                                       rc_.args_pool);
      if (ops.def >= 0) {
        ++region_defs[static_cast<std::size_t>(ops.def)];
        if (first_def[static_cast<std::size_t>(ops.def)] < 0) {
          first_def[static_cast<std::size_t>(ops.def)] = p;
        }
      }
    }
    auto invariant = [&](std::int32_t r) {
      return r >= 0 && region_defs[static_cast<std::size_t>(r)] == 0;
    };
    if (limit >= 0 && !invariant(limit)) return false;
    if (limit_arr >= 0 && !invariant(limit_arr)) return false;
    if (region_defs[static_cast<std::size_t>(ivar)] != 1) return false;

    // ---- abstract execution of one iteration --------------------------
    // The induction step is recognized through the expression DAG rather
    // than by instruction shape: the single def of ivar must assign the
    // value Idx(+1) (so `addi i, i, 1`, `addi t, i, 1; … mov i, t`, and the
    // CSE'd form where t doubles as an `a[i+1]` address all match), and
    // nothing but NOPs may follow it before the back edge.
    pool_.clear();
    std::vector<int> val(static_cast<std::size_t>(nregs), -1);
    val[static_cast<std::size_t>(ivar)] = idx_node(0);

    std::vector<BoundReq> reqs;
    std::int32_t store_arr = -1;
    int store_expr = -1;
    std::int32_t acc = -1;
    std::vector<std::int32_t> scratch_defs;

    auto eval = [&](std::int32_t r, std::int32_t pos) -> int {
      if (val[static_cast<std::size_t>(r)] >= 0) {
        return val[static_cast<std::size_t>(r)];
      }
      Expr e;
      e.kind = Expr::Kind::Inv;
      e.type = rc_.reg_types[static_cast<std::size_t>(r)];
      e.reg = r;
      if (region_defs[static_cast<std::size_t>(r)] != 0) {
        // Use-before-def inside the region: a read of the iteration-entry
        // value. Legal only for the reduction accumulator; flag it.
        if (first_def[static_cast<std::size_t>(r)] <= pos) return -1;
        e.carried = true;
      }
      return add(e);
    };

    bool past_incr = false;
    for (std::int32_t k = work_begin; k < work_end; ++k) {
      const RInstr& in = code_[static_cast<std::size_t>(k)];
      if (in.op == ROp::NOP_R) continue;
      // Work after the increment would see a shifted index.
      if (past_incr) return false;

      auto def = [&](std::int32_t d, int v) -> bool {
        if (v < 0) return false;
        if (d == ivar) {
          // The induction step: must assign i+1, and nothing but NOPs may
          // run between it and the back edge.
          const Expr& e = at(v);
          if (e.kind != Expr::Kind::Idx || e.bits != 1) return false;
          past_incr = true;
          return true;
        }
        val[static_cast<std::size_t>(d)] = v;
        if (d < rc_.slot_regs) {
          if (acc >= 0 && acc != d) return false;  // one accumulator max
          acc = d;
        } else {
          scratch_defs.push_back(d);
        }
        return true;
      };

      switch (in.op) {
        case ROp::MOV:
          if (!def(in.d, eval(in.a, k))) return false;
          break;
        case ROp::LDI: {
          Expr e;
          e.kind = Expr::Kind::Imm;
          e.type = rc_.reg_types[static_cast<std::size_t>(in.d)];
          e.bits = in.imm.i64;
          if (!def(in.d, add(e))) return false;
          break;
        }
        case ROp::ADDI_I4:
        case ROp::SUBI_I4: {
          const int a = eval(in.a, k);
          if (a < 0) return false;
          const std::int64_t c =
              in.op == ROp::ADDI_I4 ? in.imm.i64 : -in.imm.i64;
          int v;
          if (at(a).kind == Expr::Kind::Idx) {
            v = idx_node(at(a).bits + c);
          } else if (at(a).kind == Expr::Kind::Imm) {
            Expr e;
            e.kind = Expr::Kind::Imm;
            e.type = ValType::I32;
            e.bits = static_cast<std::int32_t>(at(a).bits + c);
            v = add(e);
          } else {
            Expr imm;
            imm.kind = Expr::Kind::Imm;
            imm.type = ValType::I32;
            imm.bits = in.imm.i64;
            v = bin(in.op == ROp::ADDI_I4 ? Expr::Kind::Add : Expr::Kind::Sub,
                    ValType::I32, a, add(imm));
          }
          if (!def(in.d, v)) return false;
          break;
        }
        case ROp::ADD_I4:
        case ROp::SUB_I4: {
          const int a = eval(in.a, k), b = eval(in.b, k);
          if (a < 0 || b < 0) return false;
          const bool isadd = in.op == ROp::ADD_I4;
          int v = -1;
          if (at(a).kind == Expr::Kind::Idx &&
              at(b).kind == Expr::Kind::Imm) {
            v = idx_node(at(a).bits + (isadd ? at(b).bits : -at(b).bits));
          } else if (isadd && at(a).kind == Expr::Kind::Imm &&
                     at(b).kind == Expr::Kind::Idx) {
            v = idx_node(at(a).bits + at(b).bits);
          } else {
            v = bin(isadd ? Expr::Kind::Add : Expr::Kind::Sub, ValType::I32,
                    a, b);
          }
          if (!def(in.d, v)) return false;
          break;
        }
        case ROp::MUL_I4:
        case ROp::MULI_I4: {
          const int a = eval(in.a, k);
          if (a < 0) return false;
          int b;
          if (in.op == ROp::MUL_I4) {
            b = eval(in.b, k);
            if (b < 0) return false;
          } else {
            Expr imm;
            imm.kind = Expr::Kind::Imm;
            imm.type = ValType::I32;
            imm.bits = in.imm.i64;
            b = add(imm);
          }
          if (!def(in.d, bin(Expr::Kind::Mul, ValType::I32, a, b))) {
            return false;
          }
          break;
        }
        case ROp::ADD_R8:
        case ROp::SUB_R8:
        case ROp::MUL_R8: {
          const int a = eval(in.a, k), b = eval(in.b, k);
          if (a < 0 || b < 0) return false;
          const Expr::Kind kk = in.op == ROp::ADD_R8 ? Expr::Kind::Add
                                : in.op == ROp::SUB_R8 ? Expr::Kind::Sub
                                                       : Expr::Kind::Mul;
          if (!def(in.d, bin(kk, ValType::F64, a, b))) return false;
          break;
        }
        case ROp::ADDI_R8:
        case ROp::MULI_R8: {
          const int a = eval(in.a, k);
          if (a < 0) return false;
          Expr imm;
          imm.kind = Expr::Kind::Imm;
          imm.type = ValType::F64;
          imm.bits = in.imm.i64;  // raw double bits
          const Expr::Kind kk =
              in.op == ROp::ADDI_R8 ? Expr::Kind::Add : Expr::Kind::Mul;
          if (!def(in.d, bin(kk, ValType::F64, a, add(imm)))) return false;
          break;
        }
        case ROp::CHK_BOUNDS: {
          if (store_expr >= 0) return false;  // no memory ops after store
          if (!invariant(in.a)) return false;
          const int vi = eval(in.b, k);
          if (vi < 0) return false;
          const Expr& ix = at(vi);
          if (ix.kind == Expr::Kind::Idx) {
            if (ix.bits < -1 || ix.bits > 1) return false;
            reqs.push_back({in.a, static_cast<std::int32_t>(ix.bits), -1});
          } else if (ix.kind == Expr::Kind::Load && ix.gather < 0 &&
                     ix.bits == 0 && ix.type == ValType::I32) {
            reqs.push_back({in.a, 0, ix.arr});  // checked per element
          } else {
            return false;
          }
          break;
        }
        case ROp::LDELEMU_I4:
        case ROp::LDELEMU_R8: {
          if (store_expr >= 0) return false;  // load could see the store
          if (!invariant(in.a)) return false;
          const int vi = eval(in.b, k);
          if (vi < 0) return false;
          const Expr& ix = at(vi);
          Expr e;
          e.kind = Expr::Kind::Load;
          e.type = in.op == ROp::LDELEMU_R8 ? ValType::F64 : ValType::I32;
          e.arr = in.a;
          if (ix.kind == Expr::Kind::Idx && ix.bits >= -1 && ix.bits <= 1) {
            e.bits = ix.bits;
          } else if (ix.kind == Expr::Kind::Load && ix.gather < 0 &&
                     ix.bits == 0 && ix.type == ValType::I32) {
            e.gather = ix.arr;
          } else {
            return false;
          }
          if (!def(in.d, add(e))) return false;
          break;
        }
        case ROp::STELEMU_I4:
        case ROp::STELEMU_R8: {
          if (store_expr >= 0) return false;  // single store per iteration
          if (!invariant(in.a)) return false;
          const int vi = eval(in.b, k);
          if (vi < 0 || at(vi).kind != Expr::Kind::Idx || at(vi).bits != 0) {
            return false;
          }
          const int src = eval(in.d, k);
          if (src < 0) return false;
          const ValType t =
              in.op == ROp::STELEMU_R8 ? ValType::F64 : ValType::I32;
          if (at(src).type != t) return false;
          store_arr = in.a;
          store_expr = src;
          break;
        }
        default:
          return false;  // calls, allocs, ref stores, division, branches, …
      }
    }

    // Classify: exactly one of {map store, reduction accumulator}.
    if ((store_expr >= 0) == (acc >= 0)) return false;
    Match m;
    if (store_expr >= 0) {
      if (subtree_has_carried(store_expr)) return false;
      if (!match_map(store_arr, store_expr, &m)) return false;
    } else {
      if (!match_reduction(acc, val[static_cast<std::size_t>(acc)], &m)) {
        return false;
      }
    }

    // Every bounds check the kernel subsumes must fall inside its guards.
    for (const BoundReq& r : reqs) {
      if (!covered(m, r)) return false;
    }

    // Scratch staleness: when the kernel runs, the body's scratch registers
    // keep whatever they held before the loop. Any read of one after the
    // loop (before a redefinition) would observe that stale value — reject.
    for (const std::int32_t r : scratch_defs) {
      for (std::size_t p = static_cast<std::size_t>(j) + 1; p < code_.size();
           ++p) {
        if (operands_of(code_[p], rc_.args_pool).def == r) break;
        if (uses_reg(code_[p], r)) return false;
      }
    }

    // ---- plant the superinstruction ------------------------------------
    RCode::VecLoop vl;
    vl.kernel = m.kernel;
    vl.ivar = ivar;
    vl.limit = limit;
    vl.limit_arr = limit_arr;
    vl.arr0 = m.arr0;
    vl.arr1 = m.arr1;
    vl.arr2 = m.arr2;
    vl.acc = acc;
    vl.s0_reg = m.s0_reg;
    vl.s1_reg = m.s1_reg;
    vl.s0_bits = m.s0_bits;
    vl.s1_bits = m.s1_bits;

    RInstr v;
    v.op = ROp::VECLOOP;
    v.flags = RInstr::kPinned;
    v.a = static_cast<std::int32_t>(rc_.vec_loops.size());
    v.il_pc = code_[static_cast<std::size_t>(insert_at)].il_pc;
    rc_.vec_loops.push_back(vl);
    code_.insert(code_.begin() + insert_at, v);
    for (auto& p : il_start_) {
      if (p >= insert_at) p += 1;
    }
    return true;
  }

  // ---- template matching ----------------------------------------------

  bool load_at(int e, ValType t, std::int64_t off, std::int32_t* arr) const {
    const Expr& x = at(e);
    if (x.kind != Expr::Kind::Load || x.type != t || x.gather >= 0 ||
        x.bits != off) {
      return false;
    }
    *arr = x.arr;
    return true;
  }

  bool scalar_opnd(int e, ValType t, std::int32_t* sreg,
                   std::int64_t* sbits) const {
    const Expr& x = at(e);
    if (x.type != t) return false;
    if (x.kind == Expr::Kind::Inv && !x.carried) {
      *sreg = x.reg;
      return true;
    }
    if (x.kind == Expr::Kind::Imm) {
      *sbits = x.bits;
      return true;
    }
    return false;
  }

  bool match_map(std::int32_t dst, int e, Match* m) const {
    const Expr& x = at(e);
    const ValType t = x.type;
    const bool f64 = t == ValType::F64;
    std::int32_t a = -1, b = -1;
    // a[i] = a[i] * s  (scalar on either side; both-NaN payload caveat is
    // documented in DESIGN.md §12).
    if (x.kind == Expr::Kind::Mul) {
      for (int flip = 0; flip < 2; ++flip) {
        const int le = flip == 0 ? x.l : x.r;
        const int re = flip == 0 ? x.r : x.l;
        if (load_at(le, t, 0, &a) && a == dst &&
            scalar_opnd(re, t, &m->s0_reg, &m->s0_bits)) {
          m->kernel = f64 ? vk::kMapScaleF64 : vk::kMapScaleI4;
          m->arr0 = dst;
          return true;
        }
      }
    }
    if (x.kind == Expr::Kind::Add) {
      // a[i] = a[i] + b[i]
      if (load_at(x.l, t, 0, &a) && a == dst && load_at(x.r, t, 0, &b)) {
        m->kernel = f64 ? vk::kMapAddF64 : vk::kMapAddI4;
        m->arr0 = dst;
        m->arr1 = b;
        return true;
      }
      // y[i] = y[i] + s * x[i]  (daxpy; scalar on either side of the mul)
      if (load_at(x.l, t, 0, &a) && a == dst &&
          at(x.r).kind == Expr::Kind::Mul) {
        const Expr& mm = at(x.r);
        for (int flip = 0; flip < 2; ++flip) {
          const int le = flip == 0 ? mm.l : mm.r;
          const int re = flip == 0 ? mm.r : mm.l;
          std::int32_t xarr = -1;
          if (load_at(re, t, 0, &xarr) &&
              scalar_opnd(le, t, &m->s0_reg, &m->s0_bits)) {
            m->kernel = f64 ? vk::kDaxpyF64 : vk::kDaxpyI4;
            m->arr0 = dst;
            m->arr1 = xarr;
            return true;
          }
        }
      }
      // SOR 5-point: g[i] = s0*(((up[i]+down[i])+g[i-1])+g[i+1]) + s1*g[i]
      if (f64 && at(x.l).kind == Expr::Kind::Mul &&
          at(x.r).kind == Expr::Kind::Mul) {
        const Expr& l = at(x.l);
        const Expr& r = at(x.r);
        std::int32_t g = -1, up = -1, down = -1, gm = -1, gp = -1;
        Match probe;
        if (scalar_opnd(l.l, t, &probe.s0_reg, &probe.s0_bits) &&
            scalar_opnd(r.l, t, &probe.s1_reg, &probe.s1_bits) &&
            load_at(r.r, t, 0, &g) && g == dst &&
            at(l.r).kind == Expr::Kind::Add) {
          const Expr& t3 = at(l.r);  // ((up+down)+g[-1]) + g[+1]
          if (load_at(t3.r, t, 1, &gp) && gp == dst &&
              at(t3.l).kind == Expr::Kind::Add) {
            const Expr& t2 = at(t3.l);  // (up+down) + g[-1]
            if (load_at(t2.r, t, -1, &gm) && gm == dst &&
                at(t2.l).kind == Expr::Kind::Add) {
              const Expr& t1 = at(t2.l);  // up + down
              if (load_at(t1.l, t, 0, &up) && load_at(t1.r, t, 0, &down)) {
                m->kernel = vk::kSor5F64;
                m->arr0 = dst;
                m->arr1 = up;
                m->arr2 = down;
                m->s0_reg = probe.s0_reg;
                m->s0_bits = probe.s0_bits;
                m->s1_reg = probe.s1_reg;
                m->s1_bits = probe.s1_bits;
                return true;
              }
            }
          }
        }
      }
    }
    return false;
  }

  bool match_reduction(std::int32_t acc, int e, Match* m) const {
    if (e < 0) return false;
    const Expr& x = at(e);
    if (x.kind != Expr::Kind::Add) return false;
    // acc = acc + T, with the carried read on the LEFT (matching the
    // `sum = sum + …` idiom; keeping the operand order fixed preserves
    // bit-identical NaN propagation).
    const Expr& l = at(x.l);
    if (l.kind != Expr::Kind::Inv || l.reg != acc) return false;
    const int te = x.r;
    if (subtree_has_carried(te)) return false;
    const Expr& term = at(te);
    const ValType t = term.type;
    const bool f64 = t == ValType::F64;
    std::int32_t a = -1, b = -1;
    if (load_at(te, t, 0, &a)) {
      m->kernel = f64 ? vk::kSumF64 : vk::kSumI4;
      m->arr0 = a;
      return true;
    }
    if (term.kind == Expr::Kind::Mul) {
      if (load_at(term.l, t, 0, &a) && load_at(term.r, t, 0, &b)) {
        m->kernel = f64 ? vk::kDotF64 : vk::kDotI4;
        m->arr0 = a;
        m->arr1 = b;
        return true;
      }
      // acc += x[col[i]] * val[i]  (sparse gather; f64 only)
      const Expr& gl = at(term.l);
      if (f64 && gl.kind == Expr::Kind::Load && gl.gather >= 0 &&
          load_at(term.r, t, 0, &b)) {
        m->kernel = vk::kGatherDotF64;
        m->arr0 = gl.arr;
        m->arr1 = gl.gather;
        m->arr2 = b;
        return true;
      }
    }
    return false;
  }

  /// Is one in-loop CHK_BOUNDS requirement subsumed by the kernel's runtime
  /// span guards (optimizing.cpp dispatch)?
  bool covered(const Match& m, const BoundReq& r) const {
    if (r.gather >= 0) {
      // Per-element gather check: only GatherDot performs it, on x via col.
      return m.kernel == vk::kGatherDotF64 && r.arr == m.arr0 &&
             r.gather == m.arr1;
    }
    auto in_span = [&](std::int32_t arr, std::int32_t lo, std::int32_t hi) {
      return r.arr == arr && r.off >= lo && r.off <= hi;
    };
    switch (m.kernel) {
      case vk::kMapScaleF64:
      case vk::kMapScaleI4:
      case vk::kSumF64:
      case vk::kSumI4:
        return in_span(m.arr0, 0, 0);
      case vk::kMapAddF64:
      case vk::kMapAddI4:
      case vk::kDaxpyF64:
      case vk::kDaxpyI4:
      case vk::kDotF64:
      case vk::kDotI4:
        return in_span(m.arr0, 0, 0) || in_span(m.arr1, 0, 0);
      case vk::kGatherDotF64:
        return in_span(m.arr1, 0, 0) || in_span(m.arr2, 0, 0);
      case vk::kSor5F64:
        return in_span(m.arr0, -1, 1) || in_span(m.arr1, 0, 0) ||
               in_span(m.arr2, 0, 0);
      default:
        return false;
    }
  }

  std::vector<RInstr>& code_;
  std::vector<std::int32_t>& il_start_;
  const std::vector<bool>& labels_;
  const MethodDef& method_;
  RCode& rc_;
  std::vector<Expr> pool_;
};

}  // namespace

int lower_vector_loops(const VecLowerInput& in) {
  return Lowerer(in).run();
}

}  // namespace hpcnet::vm::regir

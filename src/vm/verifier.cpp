#include "vm/verifier.hpp"

#include <deque>
#include <mutex>
#include <vector>

#include "vm/intrinsics.hpp"

namespace hpcnet::vm {

namespace {

bool is_numeric(ValType t) {
  return t == ValType::I32 || t == ValType::I64 || t == ValType::F32 ||
         t == ValType::F64;
}
bool is_integer(ValType t) { return t == ValType::I32 || t == ValType::I64; }

class MethodVerifier {
 public:
  MethodVerifier(Module& module, MethodDef& m) : mod_(module), m_(m) {}

  void run() {
    const auto n = m_.code.size();
    if (n == 0) fail(0, "empty body");
    m_.stack_in.assign(n, {});
    seen_.assign(n, false);
    check_handlers();

    schedule(0, {});
    for (const auto& h : m_.handlers) {
      if (h.kind == HandlerKind::Catch) {
        schedule(h.handler, {ValType::Ref});
      } else {
        schedule(h.handler, {});
      }
    }
    while (!work_.empty()) {
      const auto [pc, state] = work_.front();
      work_.pop_front();
      simulate(pc, state);
    }
    check_termination();
    m_.reachable = seen_;
    m_.verified = true;
  }

 private:
  using Stack = std::vector<ValType>;

  [[noreturn]] void fail(std::int32_t pc, const std::string& what) const {
    throw VerifyError(m_.name, pc, what);
  }

  void check_handlers() const {
    const auto n = static_cast<std::int32_t>(m_.code.size());
    for (const auto& h : m_.handlers) {
      if (h.try_begin < 0 || h.try_end > n || h.try_begin >= h.try_end) {
        fail(h.try_begin, "bad handler try range");
      }
      if (h.handler < 0 || h.handler >= n) fail(h.handler, "bad handler pc");
      if (h.kind == HandlerKind::Catch &&
          (h.catch_class < 0 ||
           static_cast<std::size_t>(h.catch_class) >= mod_.class_count())) {
        fail(h.handler, "bad catch class");
      }
    }
  }

  void schedule(std::int32_t pc, Stack state) {
    if (pc < 0 || static_cast<std::size_t>(pc) >= m_.code.size()) {
      fail(pc, "branch target out of range");
    }
    auto upc = static_cast<std::size_t>(pc);
    if (seen_[upc]) {
      if (m_.stack_in[upc] != state) fail(pc, "inconsistent stack at merge");
      return;
    }
    seen_[upc] = true;
    m_.stack_in[upc] = state;
    work_.emplace_back(pc, std::move(state));
  }

  ValType pop(Stack& st, std::int32_t pc) {
    if (st.empty()) fail(pc, "stack underflow");
    ValType t = st.back();
    st.pop_back();
    return t;
  }
  void expect(ValType got, ValType want, std::int32_t pc, const char* what) {
    if (got != want) {
      fail(pc, std::string(what) + ": expected " + to_string(want) + ", got " +
                   to_string(got));
    }
  }
  void track_depth(const Stack& st) {
    if (static_cast<std::int32_t>(st.size()) > m_.max_stack) {
      m_.max_stack = static_cast<std::int32_t>(st.size());
    }
  }

  void simulate(std::int32_t pc0, Stack st) {
    std::int32_t pc = pc0;
    for (;;) {
      auto upc = static_cast<std::size_t>(pc);
      // Re-record entry state for straight-line flow (schedule() records it
      // for branch targets; sequential successors arrive here directly).
      if (!seen_[upc]) {
        seen_[upc] = true;
        m_.stack_in[upc] = st;
      } else if (pc != pc0 && m_.stack_in[upc] != st) {
        fail(pc, "inconsistent stack at fallthrough merge");
      } else if (pc != pc0) {
        return;  // already explored from here with identical state
      }

      Instr& in = m_.code[upc];
      bool terminal = false;
      switch (in.op) {
        case Op::NOP:
          break;
        case Op::LDC_I4:
          st.push_back(ValType::I32);
          break;
        case Op::LDC_I8:
          st.push_back(ValType::I64);
          break;
        case Op::LDC_R4:
          st.push_back(ValType::F32);
          break;
        case Op::LDC_R8:
          st.push_back(ValType::F64);
          break;
        case Op::LDNULL:
        case Op::LDSTR:
          st.push_back(ValType::Ref);
          break;

        case Op::LDLOC: {
          const auto i = static_cast<std::size_t>(in.a) + m_.num_args();
          if (in.a < 0 || i >= m_.frame_slots()) fail(pc, "ldloc range");
          in.type = m_.slot_type(i);
          st.push_back(in.type);
          break;
        }
        case Op::STLOC: {
          const auto i = static_cast<std::size_t>(in.a) + m_.num_args();
          if (in.a < 0 || i >= m_.frame_slots()) fail(pc, "stloc range");
          in.type = m_.slot_type(i);
          expect(pop(st, pc), in.type, pc, "stloc");
          break;
        }
        case Op::LDARG: {
          if (in.a < 0 || static_cast<std::size_t>(in.a) >= m_.num_args()) {
            fail(pc, "ldarg range");
          }
          in.type = m_.sig.params[static_cast<std::size_t>(in.a)];
          st.push_back(in.type);
          break;
        }
        case Op::STARG: {
          if (in.a < 0 || static_cast<std::size_t>(in.a) >= m_.num_args()) {
            fail(pc, "starg range");
          }
          in.type = m_.sig.params[static_cast<std::size_t>(in.a)];
          expect(pop(st, pc), in.type, pc, "starg");
          break;
        }

        case Op::DUP: {
          if (st.empty()) fail(pc, "dup on empty stack");
          in.type = st.back();
          st.push_back(in.type);
          break;
        }
        case Op::POP:
          in.type = pop(st, pc);
          break;

        case Op::ADD:
        case Op::SUB:
        case Op::MUL:
        case Op::DIV:
        case Op::REM: {
          ValType b = pop(st, pc), a = pop(st, pc);
          if (a != b || !is_numeric(a)) fail(pc, "arith operand types");
          in.type = a;
          st.push_back(a);
          break;
        }
        case Op::NEG: {
          ValType a = pop(st, pc);
          if (!is_numeric(a)) fail(pc, "neg operand");
          in.type = a;
          st.push_back(a);
          break;
        }
        case Op::AND:
        case Op::OR:
        case Op::XOR: {
          ValType b = pop(st, pc), a = pop(st, pc);
          if (a != b || !is_integer(a)) fail(pc, "bitwise operand types");
          in.type = a;
          st.push_back(a);
          break;
        }
        case Op::NOT: {
          ValType a = pop(st, pc);
          if (!is_integer(a)) fail(pc, "not operand");
          in.type = a;
          st.push_back(a);
          break;
        }
        case Op::SHL:
        case Op::SHR:
        case Op::SHR_UN: {
          ValType amt = pop(st, pc), a = pop(st, pc);
          expect(amt, ValType::I32, pc, "shift amount");
          if (!is_integer(a)) fail(pc, "shift operand");
          in.type = a;
          st.push_back(a);
          break;
        }

        case Op::CEQ:
        case Op::CGT:
        case Op::CLT: {
          ValType b = pop(st, pc), a = pop(st, pc);
          if (a != b) fail(pc, "compare operand types");
          if (in.op != Op::CEQ && !is_numeric(a)) fail(pc, "ordered compare");
          in.type = a;
          st.push_back(ValType::I32);
          break;
        }

        case Op::BR:
          schedule(in.a, st);
          terminal = true;
          break;
        case Op::BRTRUE:
        case Op::BRFALSE: {
          ValType a = pop(st, pc);
          if (a != ValType::I32 && a != ValType::Ref && a != ValType::I64) {
            fail(pc, "brtrue/brfalse operand");
          }
          in.type = a;
          schedule(in.a, st);
          break;
        }
        case Op::BEQ:
        case Op::BNE:
        case Op::BLT:
        case Op::BLE:
        case Op::BGT:
        case Op::BGE: {
          ValType b = pop(st, pc), a = pop(st, pc);
          if (a != b) fail(pc, "branch compare operand types");
          const bool ordered = in.op != Op::BEQ && in.op != Op::BNE;
          if (ordered && !is_numeric(a)) fail(pc, "ordered branch compare");
          if (!ordered && !(is_numeric(a) || a == ValType::Ref)) {
            fail(pc, "branch compare operand");
          }
          in.type = a;
          schedule(in.a, st);
          break;
        }

        case Op::CONV_I4:
        case Op::CONV_I8:
        case Op::CONV_R4:
        case Op::CONV_R8:
        case Op::CONV_I1:
        case Op::CONV_U1:
        case Op::CONV_I2:
        case Op::CONV_U2: {
          ValType a = pop(st, pc);
          if (!is_numeric(a)) fail(pc, "conv operand");
          in.type = a;  // source type; destination implied by opcode
          switch (in.op) {
            case Op::CONV_I8: st.push_back(ValType::I64); break;
            case Op::CONV_R4: st.push_back(ValType::F32); break;
            case Op::CONV_R8: st.push_back(ValType::F64); break;
            default: st.push_back(ValType::I32); break;
          }
          break;
        }

        case Op::CALL: {
          if (in.a < 0 ||
              static_cast<std::size_t>(in.a) >= mod_.method_count()) {
            fail(pc, "call target out of range");
          }
          const MethodDef& callee = mod_.method(in.a);
          if (callee.sig.params.size() >
              static_cast<std::size_t>(kMaxCallArgs)) {
            fail(pc, "call target exceeds max argument count");
          }
          for (std::size_t i = callee.sig.params.size(); i-- > 0;) {
            expect(pop(st, pc), callee.sig.params[i], pc, "call argument");
          }
          if (callee.sig.ret != ValType::None) st.push_back(callee.sig.ret);
          break;
        }
        case Op::CALLINTR: {
          if (in.a < 0 || in.a >= I_COUNT_) fail(pc, "intrinsic id");
          const IntrinsicDef& d = intrinsic(in.a);
          if (d.sig.params.size() >
              static_cast<std::size_t>(kMaxIntrinsicArgs)) {
            fail(pc, "intrinsic exceeds max argument count");
          }
          for (std::size_t i = d.sig.params.size(); i-- > 0;) {
            expect(pop(st, pc), d.sig.params[i], pc, "intrinsic argument");
          }
          if (d.sig.ret != ValType::None) st.push_back(d.sig.ret);
          break;
        }
        case Op::RET: {
          if (m_.sig.ret != ValType::None) {
            expect(pop(st, pc), m_.sig.ret, pc, "return value");
          }
          if (!st.empty()) fail(pc, "stack not empty at ret");
          terminal = true;
          break;
        }

        case Op::NEWOBJ: {
          if (in.a < 0 ||
              static_cast<std::size_t>(in.a) >= mod_.class_count()) {
            fail(pc, "newobj class");
          }
          st.push_back(ValType::Ref);
          break;
        }
        case Op::LDFLD:
        case Op::STFLD: {
          if (in.b < 0 ||
              static_cast<std::size_t>(in.b) >= mod_.class_count()) {
            fail(pc, "field class");
          }
          const ClassDef& cls = mod_.klass(in.b);
          if (in.a < 0 ||
              static_cast<std::size_t>(in.a) >= cls.fields.size()) {
            fail(pc, "field index");
          }
          in.type = cls.fields[static_cast<std::size_t>(in.a)].type;
          if (in.op == Op::STFLD) {
            expect(pop(st, pc), in.type, pc, "stfld value");
            expect(pop(st, pc), ValType::Ref, pc, "stfld object");
          } else {
            expect(pop(st, pc), ValType::Ref, pc, "ldfld object");
            st.push_back(in.type);
          }
          break;
        }
        case Op::LDSFLD:
        case Op::STSFLD: {
          if (in.b < 0 ||
              static_cast<std::size_t>(in.b) >= mod_.class_count()) {
            fail(pc, "static field class");
          }
          const ClassDef& cls = mod_.klass(in.b);
          if (in.a < 0 ||
              static_cast<std::size_t>(in.a) >= cls.static_fields.size()) {
            fail(pc, "static field index");
          }
          in.type = cls.static_fields[static_cast<std::size_t>(in.a)].type;
          if (in.op == Op::STSFLD) {
            expect(pop(st, pc), in.type, pc, "stsfld value");
          } else {
            st.push_back(in.type);
          }
          break;
        }

        case Op::NEWARR:
          expect(pop(st, pc), ValType::I32, pc, "newarr length");
          if (in.type == ValType::None) fail(pc, "newarr element type");
          st.push_back(ValType::Ref);
          break;
        case Op::LDLEN:
          expect(pop(st, pc), ValType::Ref, pc, "ldlen array");
          st.push_back(ValType::I32);
          break;
        case Op::LDELEM:
          expect(pop(st, pc), ValType::I32, pc, "ldelem index");
          expect(pop(st, pc), ValType::Ref, pc, "ldelem array");
          if (in.type == ValType::None) fail(pc, "ldelem element type");
          st.push_back(in.type);
          break;
        case Op::STELEM:
          expect(pop(st, pc), in.type, pc, "stelem value");
          expect(pop(st, pc), ValType::I32, pc, "stelem index");
          expect(pop(st, pc), ValType::Ref, pc, "stelem array");
          break;
        case Op::NEWMAT:
          expect(pop(st, pc), ValType::I32, pc, "newmat cols");
          expect(pop(st, pc), ValType::I32, pc, "newmat rows");
          if (in.type == ValType::None) fail(pc, "newmat element type");
          st.push_back(ValType::Ref);
          break;
        case Op::LDELEM2:
          expect(pop(st, pc), ValType::I32, pc, "ldelem2 col");
          expect(pop(st, pc), ValType::I32, pc, "ldelem2 row");
          expect(pop(st, pc), ValType::Ref, pc, "ldelem2 matrix");
          st.push_back(in.type);
          break;
        case Op::STELEM2:
          expect(pop(st, pc), in.type, pc, "stelem2 value");
          expect(pop(st, pc), ValType::I32, pc, "stelem2 col");
          expect(pop(st, pc), ValType::I32, pc, "stelem2 row");
          expect(pop(st, pc), ValType::Ref, pc, "stelem2 matrix");
          break;
        case Op::LDMATROWS:
        case Op::LDMATCOLS:
          expect(pop(st, pc), ValType::Ref, pc, "ldmat dims");
          st.push_back(ValType::I32);
          break;

        case Op::BOX: {
          if (!is_numeric(in.type)) fail(pc, "box type");
          expect(pop(st, pc), in.type, pc, "box value");
          st.push_back(ValType::Ref);
          break;
        }
        case Op::UNBOX: {
          if (!is_numeric(in.type)) fail(pc, "unbox type");
          expect(pop(st, pc), ValType::Ref, pc, "unbox object");
          st.push_back(in.type);
          break;
        }

        case Op::THROW:
          expect(pop(st, pc), ValType::Ref, pc, "throw operand");
          terminal = true;
          break;
        case Op::LEAVE:
          // leave empties the evaluation stack (ECMA-335 III.3.43).
          schedule(in.a, {});
          terminal = true;
          break;
        case Op::ENDFINALLY:
          if (!st.empty()) fail(pc, "stack not empty at endfinally");
          terminal = true;
          break;

        case Op::COUNT_:
          fail(pc, "bad opcode");
      }

      track_depth(st);
      if (terminal) return;
      ++pc;
      if (static_cast<std::size_t>(pc) >= m_.code.size()) {
        fail(pc - 1, "control falls off the end of the method");
      }
    }
  }

  void check_termination() const {
    // Every reachable instruction has a recorded entry state; unreachable
    // trailing code is permitted (a compiler may pad), but reachable code
    // falling off the end was rejected during simulation.
  }

  Module& mod_;
  MethodDef& m_;
  std::vector<bool> seen_;
  std::deque<std::pair<std::int32_t, Stack>> work_;
};

}  // namespace

void verify(Module& module, std::int32_t method_id) {
  // Serialized: verification mutates the method body (type annotations), and
  // lazy verification may be triggered from multiple engine threads.
  static std::mutex mu;
  MethodDef& m = module.method(method_id);
  if (m.verified) return;
  std::lock_guard<std::mutex> lock(mu);
  if (m.verified) return;
  MethodVerifier(module, m).run();
}

void verify_body(Module& module, MethodDef& m) {
  if (m.verified) return;
  MethodVerifier(module, m).run();
}

void verify_all(Module& module) {
  for (std::size_t i = 0; i < module.method_count(); ++i) {
    verify(module, static_cast<std::int32_t>(i));
  }
}

}  // namespace hpcnet::vm

#include "vm/opcode.hpp"

#include <cstdio>

namespace hpcnet::vm {

const char* to_string(ValType t) {
  switch (t) {
    case ValType::None: return "none";
    case ValType::I32: return "i32";
    case ValType::I64: return "i64";
    case ValType::F32: return "f32";
    case ValType::F64: return "f64";
    case ValType::Ref: return "ref";
  }
  return "?";
}

const char* to_string(Op op) {
  switch (op) {
    case Op::NOP: return "nop";
    case Op::LDC_I4: return "ldc.i4";
    case Op::LDC_I8: return "ldc.i8";
    case Op::LDC_R4: return "ldc.r4";
    case Op::LDC_R8: return "ldc.r8";
    case Op::LDNULL: return "ldnull";
    case Op::LDSTR: return "ldstr";
    case Op::LDLOC: return "ldloc";
    case Op::STLOC: return "stloc";
    case Op::LDARG: return "ldarg";
    case Op::STARG: return "starg";
    case Op::DUP: return "dup";
    case Op::POP: return "pop";
    case Op::ADD: return "add";
    case Op::SUB: return "sub";
    case Op::MUL: return "mul";
    case Op::DIV: return "div";
    case Op::REM: return "rem";
    case Op::NEG: return "neg";
    case Op::AND: return "and";
    case Op::OR: return "or";
    case Op::XOR: return "xor";
    case Op::NOT: return "not";
    case Op::SHL: return "shl";
    case Op::SHR: return "shr";
    case Op::SHR_UN: return "shr.un";
    case Op::CEQ: return "ceq";
    case Op::CGT: return "cgt";
    case Op::CLT: return "clt";
    case Op::BR: return "br";
    case Op::BRTRUE: return "brtrue";
    case Op::BRFALSE: return "brfalse";
    case Op::BEQ: return "beq";
    case Op::BNE: return "bne.un";
    case Op::BLT: return "blt";
    case Op::BLE: return "ble";
    case Op::BGT: return "bgt";
    case Op::BGE: return "bge";
    case Op::CONV_I4: return "conv.i4";
    case Op::CONV_I8: return "conv.i8";
    case Op::CONV_R4: return "conv.r4";
    case Op::CONV_R8: return "conv.r8";
    case Op::CONV_I1: return "conv.i1";
    case Op::CONV_U1: return "conv.u1";
    case Op::CONV_I2: return "conv.i2";
    case Op::CONV_U2: return "conv.u2";
    case Op::CALL: return "call";
    case Op::CALLINTR: return "call.intr";
    case Op::RET: return "ret";
    case Op::NEWOBJ: return "newobj";
    case Op::LDFLD: return "ldfld";
    case Op::STFLD: return "stfld";
    case Op::LDSFLD: return "ldsfld";
    case Op::STSFLD: return "stsfld";
    case Op::NEWARR: return "newarr";
    case Op::LDLEN: return "ldlen";
    case Op::LDELEM: return "ldelem";
    case Op::STELEM: return "stelem";
    case Op::NEWMAT: return "newmat";
    case Op::LDELEM2: return "ldelem2";
    case Op::STELEM2: return "stelem2";
    case Op::LDMATROWS: return "ldmat.rows";
    case Op::LDMATCOLS: return "ldmat.cols";
    case Op::BOX: return "box";
    case Op::UNBOX: return "unbox";
    case Op::THROW: return "throw";
    case Op::LEAVE: return "leave";
    case Op::ENDFINALLY: return "endfinally";
    case Op::COUNT_: break;
  }
  return "?";
}

std::string to_string(const Instr& in) {
  char buf[128];
  switch (in.op) {
    case Op::LDC_I4:
    case Op::LDC_I8:
      std::snprintf(buf, sizeof buf, "%s %lld", to_string(in.op),
                    static_cast<long long>(in.imm.i64));
      return buf;
    case Op::LDC_R4:
    case Op::LDC_R8:
      std::snprintf(buf, sizeof buf, "%s %g", to_string(in.op), in.imm.f64);
      return buf;
    case Op::LDLOC:
    case Op::STLOC:
    case Op::LDARG:
    case Op::STARG:
    case Op::BR:
    case Op::BRTRUE:
    case Op::BRFALSE:
    case Op::BEQ:
    case Op::BNE:
    case Op::BLT:
    case Op::BLE:
    case Op::BGT:
    case Op::BGE:
    case Op::CALL:
    case Op::CALLINTR:
    case Op::NEWOBJ:
    case Op::LDSTR:
    case Op::LEAVE:
      std::snprintf(buf, sizeof buf, "%s %d", to_string(in.op), in.a);
      return buf;
    case Op::LDFLD:
    case Op::STFLD:
    case Op::LDSFLD:
    case Op::STSFLD:
      std::snprintf(buf, sizeof buf, "%s %d::%d", to_string(in.op), in.b,
                    in.a);
      return buf;
    default:
      if (in.type != ValType::None) {
        std::snprintf(buf, sizeof buf, "%s [%s]", to_string(in.op),
                      to_string(in.type));
        return buf;
      }
      return to_string(in.op);
  }
}

}  // namespace hpcnet::vm

// Runtime value representation for the CIL-subset virtual machine.
//
// The CLI evaluation stack holds int32, int64, float32, float64 and object
// references. We represent every stack slot, local variable, field and
// register as an 8-byte untyped union; the verifier proves the static type of
// every slot, so the Baseline and Optimizing engines never need runtime tags
// (mirroring a real JIT). The Interpreter carries a ValType tag next to each
// slot and dispatches on it dynamically — that is precisely the
// portability-over-performance design of SSCLI/Rotor that the paper measures.
#pragma once

#include <cstdint>

namespace hpcnet::vm {

struct ObjHeader;  // heap.hpp
using ObjRef = ObjHeader*;

/// Static type of a stack slot / local / register.
enum class ValType : std::uint8_t {
  None = 0,  // "no value" (void return, unset)
  I32,
  I64,
  F32,
  F64,
  Ref,
};

const char* to_string(ValType t);

/// One untyped 8-byte slot.
union Slot {
  std::int32_t i32;
  std::int64_t i64;
  float f32;
  double f64;
  ObjRef ref;
  std::uint64_t raw;

  Slot() : raw(0) {}
  static Slot from_i32(std::int32_t v) { Slot s; s.raw = 0; s.i32 = v; return s; }
  static Slot from_i64(std::int64_t v) { Slot s; s.i64 = v; return s; }
  static Slot from_f32(float v) { Slot s; s.raw = 0; s.f32 = v; return s; }
  static Slot from_f64(double v) { Slot s; s.f64 = v; return s; }
  static Slot from_ref(ObjRef v) { Slot s; s.raw = 0; s.ref = v; return s; }
};
static_assert(sizeof(Slot) == 8, "slots must be 8 bytes");

/// A slot with a dynamic tag — the Interpreter's representation.
struct TaggedSlot {
  Slot v;
  ValType tag = ValType::None;
};

}  // namespace hpcnet::vm

#include "vm/net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <map>
#include <mutex>
#include <system_error>
#include <thread>
#include <utility>
#include <vector>

#include "vm/net/protocol.hpp"
#include "vm/serialize.hpp"

namespace hpcnet::vm::net {

namespace {

void set_nonblock(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Scoped GC-safe region (poll and potentially-blocking submits run inside
/// one; everything touching the managed heap runs outside).
class SafeRegion {
 public:
  SafeRegion(VirtualMachine& vm, VMContext& ctx) : vm_(vm), ctx_(ctx) {
    vm_.enter_safe_region(ctx_);
  }
  ~SafeRegion() { vm_.leave_safe_region(ctx_); }
  SafeRegion(const SafeRegion&) = delete;
  SafeRegion& operator=(const SafeRegion&) = delete;

 private:
  VirtualMachine& vm_;
  VMContext& ctx_;
};

std::uint32_t read_le32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

/// Completion hooks from service workers rendezvous with the loop thread
/// here: append {connection, request}, poke the wake pipe. Jointly owned by
/// the server and every outstanding hook, so a job that outlives the server
/// (or its connection) fires into a closed queue and is dropped.
struct DoneQueue {
  std::mutex mu;
  std::vector<std::pair<std::uint64_t, std::uint64_t>> entries;
  int wake_fd = -1;
  bool closed = false;
};

/// A job the loop has submitted and not yet answered. The handle keeps the
/// job's ref-typed result pinned until the RESULT frame is encoded.
struct Pending {
  service::JobHandle handle;
  ValType ret = ValType::None;
};

struct Connection {
  int fd = -1;
  std::uint64_t id = 0;
  bool authed = false;
  bool closing = false;  // flush `out`, then close (ERROR frame sent)
  bool dead = false;
  std::string tenant;
  std::vector<char> in;
  std::vector<char> out;
  std::size_t out_off = 0;
  std::map<std::uint64_t, Pending> pending;
};

}  // namespace

struct VmServer::Impl {
  VirtualMachine& vm;
  service::ExecutionService& svc;
  ServerOptions opt;
  std::map<std::string, std::string> creds;

  int listen_fd = -1;
  int wake_read = -1;
  int wake_write = -1;
  std::uint16_t bound_port = 0;
  std::shared_ptr<DoneQueue> done = std::make_shared<DoneQueue>();
  std::atomic<bool> stop{false};
  std::thread loop;
  bool started = false;

  Impl(VirtualMachine& v, service::ExecutionService& s, ServerOptions o)
      : vm(v), svc(s), opt(std::move(o)) {}

  void start();
  void shutdown();
  void loop_main();
  void drain_done(std::map<std::uint64_t, Connection>& conns);
  void handle_frame(Connection& c, FrameType type, const char* payload,
                    std::size_t size, VMContext& ctx);
  void handle_hello(Connection& c, WireReader& r);
  void handle_submit(Connection& c, const char* payload, std::size_t size,
                     VMContext& ctx);
  void handle_stats(Connection& c);
  void handle_snapshot(Connection& c, VMContext& ctx);
  void send_frame(Connection& c, FrameType type,
                  const std::vector<char>& payload);
  void send_result(Connection& c, std::uint64_t req, ValType ret,
                   const service::JobResult& res);
  void send_reject(Connection& c, std::uint64_t req, const std::string& why);
  void protocol_error_close(Connection& c, const std::string& msg);
  bool read_input(Connection& c, VMContext& ctx);
  bool flush_output(Connection& c);
  service::ExecutionService::Completion make_completion(std::uint64_t cid,
                                                        std::uint64_t req);
};

void VmServer::Impl::start() {
  if (started) return;
  listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    throw std::system_error(errno, std::generic_category(), "socket");
  }
  int one = 1;
  ::setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opt.port);
  if (::inet_pton(AF_INET, opt.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd);
    listen_fd = -1;
    throw std::system_error(EINVAL, std::generic_category(), "bad host");
  }
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd, 128) < 0) {
    const int err = errno;
    ::close(listen_fd);
    listen_fd = -1;
    throw std::system_error(err, std::generic_category(), "bind/listen");
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  ::getsockname(listen_fd, reinterpret_cast<sockaddr*>(&bound), &blen);
  bound_port = ntohs(bound.sin_port);
  set_nonblock(listen_fd);

  int pipefd[2];
  if (::pipe(pipefd) < 0) {
    const int err = errno;
    ::close(listen_fd);
    listen_fd = -1;
    throw std::system_error(err, std::generic_category(), "pipe");
  }
  wake_read = pipefd[0];
  wake_write = pipefd[1];
  set_nonblock(wake_read);
  set_nonblock(wake_write);
  {
    std::lock_guard<std::mutex> lock(done->mu);
    done->wake_fd = wake_write;
    done->closed = false;
  }
  stop.store(false);
  loop = std::thread([this] { loop_main(); });
  started = true;
}

void VmServer::Impl::shutdown() {
  if (!started) return;
  {
    // Close the rendezvous first: completion hooks from jobs still running
    // must become no-ops before their wake fd disappears.
    std::lock_guard<std::mutex> lock(done->mu);
    done->closed = true;
    done->wake_fd = -1;
  }
  stop.store(true);
  char b = 1;
  (void)!::write(wake_write, &b, 1);
  loop.join();
  ::close(wake_write);
  ::close(wake_read);
  ::close(listen_fd);
  wake_write = wake_read = listen_fd = -1;
  started = false;
}

service::ExecutionService::Completion VmServer::Impl::make_completion(
    std::uint64_t cid, std::uint64_t req) {
  std::shared_ptr<DoneQueue> dq = done;
  return [dq, cid, req](const service::JobResult&) {
    std::lock_guard<std::mutex> lock(dq->mu);
    if (dq->closed) return;
    dq->entries.emplace_back(cid, req);
    char b = 1;
    (void)!::write(dq->wake_fd, &b, 1);  // EAGAIN fine: a wake is pending
  };
}

void VmServer::Impl::loop_main() {
  // Engine-less attach, like the host's main_context: this thread never
  // executes IL, but graph (de)serialization reads and allocates from the
  // managed heap, which needs a context and its TLAB.
  std::unique_ptr<VMContext> ctx = vm.attach_thread(nullptr);
  std::map<std::uint64_t, Connection> conns;
  std::uint64_t next_id = 1;
  std::vector<pollfd> fds;
  std::vector<std::uint64_t> fd_conn;  // conn id per pollfd slot (0 = none)

  while (!stop.load()) {
    fds.clear();
    fd_conn.clear();
    fds.push_back({wake_read, POLLIN, 0});
    fd_conn.push_back(0);
    if (static_cast<int>(conns.size()) < opt.max_connections) {
      fds.push_back({listen_fd, POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (auto& [id, c] : conns) {
      short ev = POLLIN;
      if (c.out_off < c.out.size()) ev |= POLLOUT;
      fds.push_back({c.fd, ev, 0});
      fd_conn.push_back(id);
    }
    int n;
    {
      // Parked in poll, the loop must not block a stop-the-world collection
      // triggered by a worker mid-job.
      SafeRegion safe(vm, *ctx);
      n = ::poll(fds.data(), static_cast<nfds_t>(fds.size()), -1);
    }
    if (stop.load()) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }

    if ((fds[0].revents & POLLIN) != 0) {
      char buf[256];
      while (::read(wake_read, buf, sizeof buf) > 0) {
      }
    }
    // Completed jobs first, so their RESULT frames ride this iteration's
    // flush.
    drain_done(conns);

    for (std::size_t i = 1; i < fds.size(); ++i) {
      if (fd_conn[i] != 0) continue;
      if ((fds[i].revents & POLLIN) == 0) continue;
      for (;;) {  // the listening socket
        const int cfd = ::accept(listen_fd, nullptr, nullptr);
        if (cfd < 0) break;
        if (static_cast<int>(conns.size()) >= opt.max_connections) {
          ::close(cfd);
          continue;
        }
        set_nonblock(cfd);
        int one = 1;
        ::setsockopt(cfd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        Connection c;
        c.fd = cfd;
        c.id = next_id++;
        conns.emplace(c.id, std::move(c));
      }
    }

    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fd_conn[i] == 0) continue;
      auto it = conns.find(fd_conn[i]);
      if (it == conns.end()) continue;
      Connection& c = it->second;
      if ((fds[i].revents & POLLIN) != 0 && !c.dead) {
        if (!read_input(c, *ctx)) c.dead = true;
      }
      if ((fds[i].revents & (POLLERR | POLLNVAL)) != 0) c.dead = true;
      if ((fds[i].revents & POLLHUP) != 0 && !c.dead) {
        // Peer went away; whatever read_input salvaged above is all there is.
        c.dead = true;
      }
    }

    // Flush everything with output pending (including frames just produced),
    // then reap: a closing connection dies once its ERROR frame is out, a
    // dead connection takes its pending jobs with it.
    std::vector<std::uint64_t> reap;
    for (auto& [id, c] : conns) {
      if (!c.dead && !flush_output(c)) c.dead = true;
      if (c.closing && c.out_off >= c.out.size()) c.dead = true;
      if (c.dead) reap.push_back(id);
    }
    for (std::uint64_t id : reap) {
      auto it = conns.find(id);
      Connection& c = it->second;
      ::close(c.fd);
      // Connection-lifetime cancellation: a dropped socket rejects its
      // still-queued jobs now; running jobs finish but report into a
      // connection that no longer exists and are dropped by drain_done.
      for (auto& [req, p] : c.pending) svc.cancel(p.handle);
      conns.erase(it);
    }
  }

  for (auto& [id, c] : conns) {
    ::close(c.fd);
    for (auto& [req, p] : c.pending) svc.cancel(p.handle);
  }
  conns.clear();
  vm.detach_thread(*ctx);
}

void VmServer::Impl::drain_done(std::map<std::uint64_t, Connection>& conns) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> batch;
  {
    std::lock_guard<std::mutex> lock(done->mu);
    batch.swap(done->entries);
  }
  for (const auto& [cid, req] : batch) {
    auto ci = conns.find(cid);
    if (ci == conns.end()) continue;  // connection died before the job
    Connection& c = ci->second;
    auto pi = c.pending.find(req);
    if (pi == c.pending.end()) continue;
    Pending p = std::move(pi->second);
    // The hook only fires after the result is published, so this wait
    // returns immediately; the handle stays live (result pinned) until the
    // frame below has serialized it.
    const service::JobResult res = p.handle.wait(nullptr);
    send_result(c, req, p.ret, res);
    c.pending.erase(pi);
  }
}

void VmServer::Impl::send_frame(Connection& c, FrameType type,
                                const std::vector<char>& payload) {
  const std::vector<char> frame = encode_frame(type, payload);
  c.out.insert(c.out.end(), frame.begin(), frame.end());
}

void VmServer::Impl::protocol_error_close(Connection& c,
                                          const std::string& msg) {
  WireWriter w;
  w.str(msg);
  send_frame(c, FrameType::Error, w.data());
  c.closing = true;
}

void VmServer::Impl::send_reject(Connection& c, std::uint64_t req,
                                 const std::string& why) {
  service::JobResult res;
  res.outcome = service::JobOutcome::Rejected;
  res.error = why;
  send_result(c, req, ValType::None, res);
}

void VmServer::Impl::send_result(Connection& c, std::uint64_t req, ValType ret,
                                 const service::JobResult& res) {
  WireWriter w;
  w.u64(req);
  w.u8(static_cast<std::uint8_t>(res.outcome));
  std::string error = res.error;
  if (res.outcome != service::JobOutcome::Completed) {
    w.u8(static_cast<std::uint8_t>(ValType::None));
  } else {
    switch (ret) {
      case ValType::I32:
      case ValType::I64:
      case ValType::F32:
      case ValType::F64:
        w.u8(static_cast<std::uint8_t>(ret));
        w.u64(res.value.raw);
        break;
      case ValType::Ref: {
        std::vector<char> blob;
        if (res.value.ref != nullptr) {
          try {
            blob = serialize_graph(vm, res.value.ref);
          } catch (const SerializeError& e) {
            w.u8(static_cast<std::uint8_t>(ValType::None));
            error = std::string("result not serializable: ") + e.what();
            break;
          }
        }
        if (blob.size() > kMaxFramePayload / 2) {
          w.u8(static_cast<std::uint8_t>(ValType::None));
          error = "result graph too large for one frame";
          break;
        }
        w.u8(static_cast<std::uint8_t>(ValType::Ref));
        w.u32(static_cast<std::uint32_t>(blob.size()));
        w.bytes(blob.data(), blob.size());
        break;
      }
      case ValType::None:
      default:
        w.u8(static_cast<std::uint8_t>(ValType::None));
        break;
    }
  }
  w.str(error);
  w.u64(res.fuel_spent);
  w.u64(res.bytes_charged);
  w.u64(static_cast<std::uint64_t>(res.queue_ns));
  w.u64(static_cast<std::uint64_t>(res.run_ns));
  send_frame(c, FrameType::Result, w.data());
}

bool VmServer::Impl::read_input(Connection& c, VMContext& ctx) {
  char buf[65536];
  for (;;) {
    const ssize_t k = ::recv(c.fd, buf, sizeof buf, 0);
    if (k > 0) {
      c.in.insert(c.in.end(), buf, buf + k);
      if (static_cast<std::size_t>(k) < sizeof buf) break;
      continue;
    }
    if (k == 0) return false;  // orderly EOF
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }

  std::size_t off = 0;
  while (!c.closing && c.in.size() - off >= 4) {
    const std::uint32_t len = read_le32(c.in.data() + off);
    if (len < 1 || len > kMaxFramePayload) {
      protocol_error_close(c, "bad frame length");
      break;
    }
    if (c.in.size() - off - 4 < len) break;  // incomplete; wait for more
    const FrameType type = static_cast<FrameType>(c.in[off + 4]);
    handle_frame(c, type, c.in.data() + off + 5, len - 1, ctx);
    off += 4 + static_cast<std::size_t>(len);
  }
  if (off != 0) c.in.erase(c.in.begin(), c.in.begin() + off);
  return true;
}

bool VmServer::Impl::flush_output(Connection& c) {
  while (c.out_off < c.out.size()) {
    const ssize_t k = ::send(c.fd, c.out.data() + c.out_off,
                             c.out.size() - c.out_off, MSG_NOSIGNAL);
    if (k > 0) {
      c.out_off += static_cast<std::size_t>(k);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
    if (errno == EINTR) continue;
    return false;
  }
  c.out.clear();
  c.out_off = 0;
  return true;
}

void VmServer::Impl::handle_frame(Connection& c, FrameType type,
                                  const char* payload, std::size_t size,
                                  VMContext& ctx) {
  if (c.closing) return;
  switch (type) {
    case FrameType::Hello: {
      WireReader r(payload, size);
      handle_hello(c, r);
      return;
    }
    case FrameType::Submit:
      if (!c.authed) {
        protocol_error_close(c, "HELLO required before SUBMIT");
        return;
      }
      handle_submit(c, payload, size, ctx);
      return;
    case FrameType::Stats:
      if (!c.authed) {
        protocol_error_close(c, "HELLO required before STATS");
        return;
      }
      handle_stats(c);
      return;
    case FrameType::Snapshot:
      if (!c.authed) {
        protocol_error_close(c, "HELLO required before SNAPSHOT");
        return;
      }
      handle_snapshot(c, ctx);
      return;
    default:
      protocol_error_close(c, "unexpected frame type");
      return;
  }
}

void VmServer::Impl::handle_hello(Connection& c, WireReader& r) {
  if (c.authed) {
    protocol_error_close(c, "duplicate HELLO");
    return;
  }
  try {
    const std::uint32_t magic = r.u32();
    if (magic != kMagic) {
      protocol_error_close(c, "bad magic");
      return;
    }
    const std::uint32_t version = r.u32();
    if (version != kVersion) {
      protocol_error_close(c, "unsupported protocol version");
      return;
    }
    const std::string tenant = r.str();
    const std::string token = r.str();
    const auto it = creds.find(tenant);
    const bool ok = it != creds.end()
                        ? it->second == token
                        : (opt.open_tenants && svc.has_tenant(tenant));
    if (!ok) {
      protocol_error_close(c, "auth failed");
      return;
    }
    c.authed = true;
    c.tenant = tenant;
  } catch (const ProtocolError&) {
    protocol_error_close(c, "malformed HELLO");
    return;
  }
  WireWriter w;
  w.u32(kVersion);
  send_frame(c, FrameType::HelloOk, w.data());
}

void VmServer::Impl::handle_submit(Connection& c, const char* payload,
                                   std::size_t size, VMContext& ctx) {
  WireReader r(payload, size);
  std::uint64_t req = 0;
  bool have_req = false;
  std::vector<ObjRef> pins;
  const auto unpin_all = [&] {
    for (ObjRef o : pins) vm.unpin(o);
    pins.clear();
  };
  try {
    req = r.u64();
    have_req = true;
    const std::int32_t method = r.i32();
    const std::uint8_t argc = r.u8();
    std::vector<Slot> args;
    args.reserve(argc);
    for (std::uint8_t i = 0; i < argc; ++i) {
      const auto tag = static_cast<ValType>(r.u8());
      Slot s;
      switch (tag) {
        case ValType::I32:
        case ValType::I64:
        case ValType::F32:
        case ValType::F64:
          s.raw = r.u64();
          break;
        case ValType::Ref: {
          const std::uint32_t len = r.u32();
          if (len == 0) {
            s.ref = nullptr;
            break;
          }
          const char* blob = r.bytes(len);
          // Same defensive path the snapshot loader uses: structural damage
          // throws SerializeError, which becomes a Rejected RESULT below.
          const ObjRef root = deserialize_graph(vm, ctx, blob, len);
          // Pin before anything can block: the raw root on this native
          // stack is not a GC root.
          vm.pin(root);
          pins.push_back(root);
          s.ref = root;
          break;
        }
        default:
          throw ProtocolError("bad argument tag");
      }
      args.push_back(s);
    }
    if (!r.empty()) throw ProtocolError("trailing bytes in SUBMIT");

    ValType ret = ValType::None;
    Module& mod = vm.module();
    if (method >= 0 && static_cast<std::size_t>(method) < mod.method_count()) {
      ret = mod.method(method).sig.ret;
    }
    // GC-safe across submit: it can block while a snapshot quiesce holds
    // admission closed, and an unsafe blocked loop would deadlock the
    // collection that quiesce is waiting out. The arg graphs are pinned.
    service::JobHandle handle = [&] {
      SafeRegion safe(vm, ctx);
      return svc.submit(c.tenant, method, std::move(args),
                        make_completion(c.id, req));
    }();
    unpin_all();
    // A submit-time reject already fired its completion hook into the done
    // queue; the queue is only drained by this thread after dispatch, so
    // inserting now is not a race.
    c.pending.emplace(req, Pending{std::move(handle), ret});
  } catch (const ProtocolError& e) {
    unpin_all();
    if (!have_req) {
      protocol_error_close(c, e.what());
      return;
    }
    send_reject(c, req, e.what());
  } catch (const SerializeError& e) {
    unpin_all();
    send_reject(c, req, std::string("bad argument graph: ") + e.what());
  } catch (const std::exception& e) {
    unpin_all();
    send_reject(c, req, e.what());  // unknown tenant / service stopping
  }
}

void VmServer::Impl::handle_stats(Connection& c) {
  const service::TenantStats st = svc.tenant_stats(c.tenant);
  WireWriter w;
  w.u64(st.jobs_completed);
  w.u64(st.jobs_killed_fuel);
  w.u64(st.jobs_killed_memory);
  w.u64(st.jobs_killed_deadline);
  w.u64(st.jobs_faulted);
  w.u64(st.jobs_rejected);
  w.u64(st.fuel_spent);
  w.u64(st.bytes_charged);
  w.u64(static_cast<std::uint64_t>(st.queue_ns));
  w.u64(static_cast<std::uint64_t>(st.run_ns));
  send_frame(c, FrameType::StatsOk, w.data());
}

void VmServer::Impl::handle_snapshot(Connection& c, VMContext& ctx) {
  if (!opt.allow_snapshot) {
    protocol_error_close(c, "snapshot disabled");
    return;
  }
  try {
    // Quiesces the whole service (admission closed, queue drained) and
    // blocks the loop until done — every connection stalls; that is the
    // documented cost of the operation.
    std::shared_ptr<const CodeArchive> archive = svc.capture_snapshot(&ctx);
    const std::vector<char> stream = serialize_archives({archive});
    if (stream.size() + 1 > kMaxFramePayload) {
      protocol_error_close(c, "snapshot too large for one frame");
      return;
    }
    send_frame(c, FrameType::SnapshotOk, stream);
  } catch (const std::exception& e) {
    protocol_error_close(c, std::string("snapshot failed: ") + e.what());
  }
}

VmServer::VmServer(VirtualMachine& vm, service::ExecutionService& service,
                   ServerOptions options)
    : impl_(std::make_unique<Impl>(vm, service, std::move(options))) {}

VmServer::~VmServer() { impl_->shutdown(); }

void VmServer::add_credential(const std::string& tenant,
                              const std::string& token) {
  impl_->creds[tenant] = token;
}

void VmServer::start() { impl_->start(); }

void VmServer::stop() { impl_->shutdown(); }

std::uint16_t VmServer::port() const { return impl_->bound_port; }

}  // namespace hpcnet::vm::net

// Async TCP front end over the multi-tenant execution service (DESIGN.md
// §14): one poll()-driven event-loop thread owns the listening socket, every
// connection's non-blocking fd and its read/write buffers, and speaks the
// length-prefixed protocol of protocol.hpp. Job execution stays on the
// service's worker pool — the loop only decodes SUBMIT frames (including
// deserialize_graph for ref-typed args, through the same defensive path the
// snapshot code uses), submits with a completion hook, and encodes RESULT
// frames when the hook reports back through a wake pipe.
//
// Threading model:
//   * The loop thread attaches to the VM (engine-less, like main_context)
//     because argument/result graph (de)serialization allocates from and
//     reads the managed heap. It parks GC-safe only across poll() and across
//     submit (which can block while a snapshot quiesce holds admission
//     closed) — everywhere else it runs in a normal region, so a collection
//     cannot sweep a graph it is mid-way through decoding.
//   * Service workers run jobs and fire the completion hook; the hook only
//     appends {connection, request} to a queue behind its own mutex and
//     writes one byte to the wake pipe — it never touches connection state,
//     which belongs exclusively to the loop thread.
//
// Connection lifecycle: HELLO must come first and carries the protocol
// version plus tenant name and auth token; a bad magic, version, tenant or
// token gets an ERROR frame and the connection is closed. A connection that
// drops (EOF, reset) has every job it still has pending cancelled — queued
// jobs are failed as Rejected immediately, running jobs finish but their
// results are discarded with the connection.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "vm/service/service.hpp"

namespace hpcnet::vm::net {

struct ServerOptions {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = ephemeral; see VmServer::port()
  int max_connections = 64;
  /// Accept a HELLO for any tenant registered with the service, regardless
  /// of token, when no credential was configured for it. Credentials added
  /// with add_credential still take precedence. Meant for examples and local
  /// benchmarking; tests and anything internet-facing configure credentials.
  bool open_tenants = false;
  /// Allow the SNAPSHOT frame (it quiesces the whole service, so a server
  /// shared by untrusted tenants may want it off).
  bool allow_snapshot = true;
};

/// The VM and the service must outlive the server. stop() (or destruction)
/// joins the loop thread and cancels every job still pending for a
/// connection; completion hooks from jobs that were already running fire
/// into a detached, closed queue and are dropped harmlessly.
class VmServer {
 public:
  VmServer(VirtualMachine& vm, service::ExecutionService& service,
           ServerOptions options = {});
  ~VmServer();

  VmServer(const VmServer&) = delete;
  VmServer& operator=(const VmServer&) = delete;

  /// Registers tenant -> token; HELLO for this tenant must present exactly
  /// this token. Call before start().
  void add_credential(const std::string& tenant, const std::string& token);

  /// Binds, listens and spawns the loop thread. Throws std::system_error on
  /// socket errors (port in use, etc.).
  void start();
  /// Stops accepting, closes every connection, joins the loop. Idempotent.
  void stop();

  /// The bound port (resolves port 0 to the kernel-chosen ephemeral port).
  /// Valid after start().
  std::uint16_t port() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace hpcnet::vm::net

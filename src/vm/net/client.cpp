#include "vm/net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <system_error>

namespace hpcnet::vm::net {

namespace {

void write_all(int fd, const void* data, std::size_t size) {
  const char* p = static_cast<const char*>(data);
  while (size != 0) {
    const ssize_t k = ::send(fd, p, size, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(), "send");
    }
    p += k;
    size -= static_cast<std::size_t>(k);
  }
}

/// false on clean EOF at a frame boundary; throws mid-frame.
bool read_exact(int fd, void* data, std::size_t size, bool eof_ok) {
  char* p = static_cast<char*>(data);
  std::size_t got = 0;
  while (got != size) {
    const ssize_t k = ::recv(fd, p + got, size - got, 0);
    if (k < 0) {
      if (errno == EINTR) continue;
      throw std::system_error(errno, std::generic_category(), "recv");
    }
    if (k == 0) {
      if (eof_ok && got == 0) return false;
      throw ProtocolError("connection closed mid-frame");
    }
    got += static_cast<std::size_t>(k);
  }
  return true;
}

}  // namespace

WireValue WireValue::from_i32(std::int32_t v) {
  WireValue w;
  w.type = ValType::I32;
  Slot s = Slot::from_i32(v);
  w.raw = s.raw;
  return w;
}

WireValue WireValue::from_i64(std::int64_t v) {
  WireValue w;
  w.type = ValType::I64;
  Slot s = Slot::from_i64(v);
  w.raw = s.raw;
  return w;
}

WireValue WireValue::from_f64(double v) {
  WireValue w;
  w.type = ValType::F64;
  Slot s = Slot::from_f64(v);
  w.raw = s.raw;
  return w;
}

WireValue WireValue::from_graph(std::vector<char> serialized) {
  WireValue w;
  w.type = ValType::Ref;
  w.blob = std::move(serialized);
  return w;
}

double WireValue::as_f64() const {
  Slot s;
  s.raw = raw;
  return s.f64;
}

VmClient::~VmClient() { close(); }

void VmClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void VmClient::connect(const std::string& host, std::uint16_t port) {
  close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    throw std::system_error(errno, std::generic_category(), "socket");
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close();
    throw std::system_error(EINVAL, std::generic_category(), "bad host");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const int err = errno;
    close();
    throw std::system_error(err, std::generic_category(), "connect");
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

void VmClient::send_raw(const void* data, std::size_t size) {
  write_all(fd_, data, size);
}

bool VmClient::recv_frame(FrameType& type, std::vector<char>& payload) {
  char head[4];
  if (!read_exact(fd_, head, sizeof head, /*eof_ok=*/true)) return false;
  WireReader hr(head, sizeof head);
  const std::uint32_t len = hr.u32();
  if (len < 1 || len > kMaxFramePayload) {
    throw ProtocolError("bad frame length from server");
  }
  char tbyte;
  read_exact(fd_, &tbyte, 1, /*eof_ok=*/false);
  type = static_cast<FrameType>(tbyte);
  payload.resize(len - 1);
  if (len > 1) read_exact(fd_, payload.data(), len - 1, /*eof_ok=*/false);
  return true;
}

void VmClient::hello(const std::string& tenant, const std::string& token) {
  WireWriter w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.str(tenant);
  w.str(token);
  const std::vector<char> frame = encode_frame(FrameType::Hello, w.data());
  write_all(fd_, frame.data(), frame.size());

  FrameType type{};
  std::vector<char> payload;
  if (!recv_frame(type, payload)) {
    throw ProtocolError("server closed connection during HELLO");
  }
  if (type == FrameType::Error) {
    WireReader r(payload.data(), payload.size());
    throw ProtocolError("server refused HELLO: " + r.str());
  }
  if (type != FrameType::HelloOk) {
    throw ProtocolError("unexpected reply to HELLO");
  }
}

std::vector<char> VmClient::encode_value(const WireValue& v) const {
  WireWriter w;
  w.u8(static_cast<std::uint8_t>(v.type));
  switch (v.type) {
    case ValType::I32:
    case ValType::I64:
    case ValType::F32:
    case ValType::F64:
      w.u64(v.raw);
      break;
    case ValType::Ref:
      w.u32(static_cast<std::uint32_t>(v.blob.size()));
      w.bytes(v.blob.data(), v.blob.size());
      break;
    default:
      throw ProtocolError("cannot encode a value of this type");
  }
  return w.take();
}

std::uint64_t VmClient::send_submit(std::int32_t method_id,
                                    const std::vector<WireValue>& args) {
  const std::uint64_t id = next_id_++;
  WireWriter w;
  w.u64(id);
  w.i32(method_id);
  w.u8(static_cast<std::uint8_t>(args.size()));
  for (const WireValue& a : args) {
    const std::vector<char> enc = encode_value(a);
    w.bytes(enc.data(), enc.size());
  }
  const std::vector<char> frame = encode_frame(FrameType::Submit, w.data());
  write_all(fd_, frame.data(), frame.size());
  return id;
}

WireResult VmClient::recv_result() {
  FrameType type{};
  std::vector<char> payload;
  if (!recv_frame(type, payload)) {
    throw ProtocolError("server closed connection while awaiting RESULT");
  }
  WireReader r(payload.data(), payload.size());
  if (type == FrameType::Error) {
    throw ProtocolError("server error: " + r.str());
  }
  if (type != FrameType::Result) {
    throw ProtocolError("unexpected frame while awaiting RESULT");
  }
  WireResult res;
  res.request_id = r.u64();
  res.outcome = r.u8();
  const auto tag = static_cast<ValType>(r.u8());
  res.value.type = tag;
  switch (tag) {
    case ValType::I32:
    case ValType::I64:
    case ValType::F32:
    case ValType::F64:
      res.value.raw = r.u64();
      break;
    case ValType::Ref: {
      const std::uint32_t len = r.u32();
      const char* blob = r.bytes(len);
      res.value.blob.assign(blob, blob + len);
      break;
    }
    case ValType::None:
      break;
    default:
      throw ProtocolError("bad value tag in RESULT");
  }
  res.error = r.str();
  res.fuel_spent = r.u64();
  res.bytes_charged = r.u64();
  res.queue_ns = static_cast<std::int64_t>(r.u64());
  res.run_ns = static_cast<std::int64_t>(r.u64());
  return res;
}

WireResult VmClient::call(std::int32_t method_id,
                          const std::vector<WireValue>& args) {
  const std::uint64_t id = send_submit(method_id, args);
  for (;;) {
    WireResult res = recv_result();
    if (res.request_id == id) return res;
  }
}

WireStats VmClient::stats() {
  const std::vector<char> frame = encode_frame(FrameType::Stats, {});
  write_all(fd_, frame.data(), frame.size());
  FrameType type{};
  std::vector<char> payload;
  if (!recv_frame(type, payload)) {
    throw ProtocolError("server closed connection while awaiting STATS_OK");
  }
  WireReader r(payload.data(), payload.size());
  if (type == FrameType::Error) {
    throw ProtocolError("server error: " + r.str());
  }
  if (type != FrameType::StatsOk) {
    throw ProtocolError("unexpected reply to STATS");
  }
  WireStats st;
  st.jobs_completed = r.u64();
  st.jobs_killed_fuel = r.u64();
  st.jobs_killed_memory = r.u64();
  st.jobs_killed_deadline = r.u64();
  st.jobs_faulted = r.u64();
  st.jobs_rejected = r.u64();
  st.fuel_spent = r.u64();
  st.bytes_charged = r.u64();
  st.queue_ns = static_cast<std::int64_t>(r.u64());
  st.run_ns = static_cast<std::int64_t>(r.u64());
  return st;
}

std::vector<char> VmClient::snapshot() {
  const std::vector<char> frame = encode_frame(FrameType::Snapshot, {});
  write_all(fd_, frame.data(), frame.size());
  FrameType type{};
  std::vector<char> payload;
  if (!recv_frame(type, payload)) {
    throw ProtocolError("server closed connection while awaiting SNAPSHOT_OK");
  }
  if (type == FrameType::Error) {
    WireReader r(payload.data(), payload.size());
    throw ProtocolError("server error: " + r.str());
  }
  if (type != FrameType::SnapshotOk) {
    throw ProtocolError("unexpected reply to SNAPSHOT");
  }
  return payload;
}

}  // namespace hpcnet::vm::net

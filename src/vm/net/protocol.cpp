#include "vm/net/protocol.hpp"

namespace hpcnet::vm::net {

std::vector<char> encode_frame(FrameType type,
                               const std::vector<char>& payload) {
  if (payload.size() + 1 > kMaxFramePayload) {
    throw ProtocolError("frame payload exceeds protocol limit");
  }
  WireWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size() + 1));
  w.u8(static_cast<std::uint8_t>(type));
  w.bytes(payload.data(), payload.size());
  return w.take();
}

const char* frame_type_name(FrameType t) {
  switch (t) {
    case FrameType::Hello: return "HELLO";
    case FrameType::HelloOk: return "HELLO_OK";
    case FrameType::Submit: return "SUBMIT";
    case FrameType::Result: return "RESULT";
    case FrameType::Stats: return "STATS";
    case FrameType::StatsOk: return "STATS_OK";
    case FrameType::Snapshot: return "SNAPSHOT";
    case FrameType::SnapshotOk: return "SNAPSHOT_OK";
    case FrameType::Error: return "ERROR";
  }
  return "?";
}

}  // namespace hpcnet::vm::net

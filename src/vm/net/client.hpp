// Blocking client for the VmServer wire protocol (protocol.hpp): used by the
// loopback tests, the service benchmark's TCP mode and examples/vmserve. One
// connection, one thread — but submits can be pipelined: send_submit returns
// as soon as the frame is written, recv_result returns results in completion
// order (which under concurrent workers is not submission order; match on
// request_id).
//
// The client is VM-free on purpose — it moves bytes, not object graphs. A
// caller that wants to pass or receive a managed graph serializes it with
// serialize_graph on its own VM and ships the blob in a WireValue.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "vm/net/protocol.hpp"
#include "vm/value.hpp"

namespace hpcnet::vm::net {

/// A typed argument or result crossing the wire. Scalars live in `raw`
/// (the 8-byte Slot image); Ref values carry a serialize_graph blob
/// (empty = null).
struct WireValue {
  ValType type = ValType::None;
  std::uint64_t raw = 0;
  std::vector<char> blob;

  static WireValue from_i32(std::int32_t v);
  static WireValue from_i64(std::int64_t v);
  static WireValue from_f64(double v);
  static WireValue from_graph(std::vector<char> serialized);

  std::int32_t as_i32() const { return static_cast<std::int32_t>(raw); }
  std::int64_t as_i64() const { return static_cast<std::int64_t>(raw); }
  double as_f64() const;
};

struct WireResult {
  std::uint64_t request_id = 0;
  std::uint8_t outcome = 0;  // numeric service::JobOutcome
  WireValue value;
  std::string error;
  std::uint64_t fuel_spent = 0;
  std::uint64_t bytes_charged = 0;
  std::int64_t queue_ns = 0;
  std::int64_t run_ns = 0;
};

struct WireStats {
  std::uint64_t jobs_completed = 0;
  std::uint64_t jobs_killed_fuel = 0;
  std::uint64_t jobs_killed_memory = 0;
  std::uint64_t jobs_killed_deadline = 0;
  std::uint64_t jobs_faulted = 0;
  std::uint64_t jobs_rejected = 0;
  std::uint64_t fuel_spent = 0;
  std::uint64_t bytes_charged = 0;
  std::int64_t queue_ns = 0;
  std::int64_t run_ns = 0;
};

/// Methods throw ProtocolError on a server ERROR frame or a malformed reply,
/// and std::system_error on socket failures (a server that slams the
/// connection shut mid-read surfaces as one of the two).
class VmClient {
 public:
  VmClient() = default;
  ~VmClient();
  VmClient(const VmClient&) = delete;
  VmClient& operator=(const VmClient&) = delete;
  VmClient(VmClient&& other) noexcept
      : fd_(other.fd_), next_id_(other.next_id_) {
    other.fd_ = -1;
  }
  VmClient& operator=(VmClient&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = other.fd_;
      next_id_ = other.next_id_;
      other.fd_ = -1;
    }
    return *this;
  }

  void connect(const std::string& host, std::uint16_t port);
  /// HELLO/HELLO_OK exchange; must be the first frames on the connection.
  void hello(const std::string& tenant, const std::string& token);

  /// Writes a SUBMIT frame and returns its request id without waiting.
  std::uint64_t send_submit(std::int32_t method_id,
                            const std::vector<WireValue>& args);
  /// Next RESULT frame, in completion order.
  WireResult recv_result();
  /// send_submit + receive until this submit's RESULT arrives (results for
  /// earlier pipelined submits that arrive first are discarded — do not mix
  /// call() into a pipelined stream).
  WireResult call(std::int32_t method_id, const std::vector<WireValue>& args);

  WireStats stats();
  /// SNAPSHOT: returns the serialize_archives stream of the service's
  /// warmed code cache (loadable via deserialize_archives).
  std::vector<char> snapshot();

  void close();
  bool connected() const { return fd_ >= 0; }

  /// Escape hatches for protocol tests: raw bytes out, raw frame in.
  void send_raw(const void* data, std::size_t size);
  /// Reads one [len][type][payload] frame; false on clean EOF.
  bool recv_frame(FrameType& type, std::vector<char>& payload);

 private:
  std::vector<char> encode_value(const WireValue& v) const;
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
};

}  // namespace hpcnet::vm::net

// Wire protocol for the network front end (DESIGN.md §14): a length-prefixed,
// versioned binary framing shared by the server event loop (server.hpp) and
// the blocking client (client.hpp).
//
// Every frame is
//
//   [u32 length][u8 type][payload...]
//
// with `length` counting everything after the length field (so length >= 1)
// and capped at kMaxFramePayload — a peer announcing more is cut off before
// it can make the receiver buffer unbounded. All integers are little-endian,
// encoded byte by byte (the codec never reinterprets struct memory, so the
// format is identical across hosts). Strings and byte blobs are [u32 len]
// [bytes]. Frame types:
//
//   Hello      c->s  [u32 magic 'HPCN'][u32 version][str tenant][str token]
//   HelloOk    s->c  [u32 version]
//   Submit     c->s  [u64 request id][i32 method id][u8 argc][args...]
//                    each arg: [u8 ValType][8-byte raw slot] for scalars, or
//                    [u8 ValType::Ref][u32 len][serialize_graph blob] for an
//                    object graph (len 0 = null ref)
//   Result     s->c  [u64 request id][u8 JobOutcome][value][str error]
//                    [u64 fuel spent][u64 bytes charged][u64 queue ns]
//                    [u64 run ns]; value encoded like an arg, tag
//                    ValType::None when there is none
//   Stats      c->s  [] — per-tenant counters for the connection's tenant
//   StatsOk    s->c  [u64 completed][u64 killed fuel][u64 killed memory]
//                    [u64 killed deadline][u64 faulted][u64 rejected]
//                    [u64 fuel spent][u64 bytes charged][u64 queue ns]
//                    [u64 run ns]
//   Snapshot   c->s  [] — quiesce the service and capture its code archive
//   SnapshotOk s->c  [serialize_archives 'HPCA' stream]
//   Error      s->c  [str message] — protocol violation; the server closes
//                    the connection after flushing this frame
//
// Decoding is defensive like serialize.cpp: every read bounds-checks and
// throws ProtocolError, so truncated, oversized or bit-flipped frames fail
// cleanly (the server answers with a Rejected result or an Error frame and,
// at worst, drops the connection — never UB).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace hpcnet::vm::net {

inline constexpr std::uint32_t kMagic = 0x4850434E;  // 'HPCN'
inline constexpr std::uint32_t kVersion = 1;
/// Upper bound on [u8 type][payload] — and thereby on every string, blob and
/// receive buffer a peer can force the other side to hold.
inline constexpr std::uint32_t kMaxFramePayload = 16u << 20;  // 16 MiB

enum class FrameType : std::uint8_t {
  Hello = 1,
  HelloOk = 2,
  Submit = 3,
  Result = 4,
  Stats = 5,
  StatsOk = 6,
  Snapshot = 7,
  SnapshotOk = 8,
  Error = 9,
};

class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Append-only little-endian encoder.
class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<char>(v >> (8 * i)));
  }
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void bytes(const char* data, std::size_t n) {
    buf_.insert(buf_.end(), data, data + n);
  }
  const std::vector<char>& data() const { return buf_; }
  std::vector<char> take() { return std::move(buf_); }

 private:
  std::vector<char> buf_;
};

/// Bounds-checked little-endian decoder over a borrowed buffer; every
/// overrun throws ProtocolError.
class WireReader {
 public:
  WireReader(const char* data, std::size_t size) : p_(data), n_(size) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(p_[off_++]);
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(static_cast<std::uint8_t>(p_[off_++]))
           << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(static_cast<std::uint8_t>(p_[off_++]))
           << (8 * i);
    }
    return v;
  }
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  std::string str() {
    const std::uint32_t len = u32();
    if (len > kMaxFramePayload) throw ProtocolError("string length too large");
    need(len);
    std::string s(p_ + off_, len);
    off_ += len;
    return s;
  }
  /// Borrows `len` bytes out of the frame (no copy; valid while the frame
  /// buffer lives).
  const char* bytes(std::size_t len) {
    need(len);
    const char* out = p_ + off_;
    off_ += len;
    return out;
  }
  std::size_t remaining() const { return n_ - off_; }
  bool empty() const { return off_ == n_; }

 private:
  void need(std::size_t k) const {
    if (n_ - off_ < k) throw ProtocolError("truncated frame");
  }
  const char* p_;
  std::size_t n_;
  std::size_t off_ = 0;
};

/// [u32 length][u8 type][payload] with the length filled in.
std::vector<char> encode_frame(FrameType type, const std::vector<char>& payload);

const char* frame_type_name(FrameType t);

}  // namespace hpcnet::vm::net

#include "vm/regcompile.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "support/timer.hpp"
#include "vm/intrinsics.hpp"
#include "vm/regir_ops.hpp"
#include "vm/telemetry/telemetry.hpp"
#include "vm/veccompile.hpp"
#include "vm/verifier.hpp"

namespace hpcnet::vm::regir {

namespace {

struct ConstVal {
  std::uint64_t raw;
  ValType type;
};

class Compiler {
 public:
  Compiler(Module& mod, const MethodDef& m, const EngineFlags& flags,
           const PassObserver* obs = nullptr)
      : mod_(mod), m_(m), mp_(&m), flags_(flags), obs_(obs) {}

  RCode run() {
    // Per-pass timing feeds the paper's JIT-quality analysis (Tables 5-8):
    // a profile's pass mix is exactly what differentiates the engines.
    const bool timed = telemetry::enabled();
    std::int64_t t = timed ? support::now_ns() : 0;
    auto mark = [&](telemetry::JitPass pass) {
      if (!timed) return;
      const std::int64_t now = support::now_ns();
      telemetry::record_jit_pass(m_.id, pass, now - t);
      t = now;
    };
    auto trace = [&](const char* pass) {
      if (obs_ != nullptr) (*obs_)(pass, dump_rcode());
    };
    if (flags_.inline_calls) {
      inline_methods();
      mark(telemetry::JitPass::Inline);
      if (obs_ != nullptr && inlined_) (*obs_)("inline", dump_il());
    }
    alloc_slot_regs();
    find_labels();
    translate();
    mark(telemetry::JitPass::Translate);
    trace("translate");
    if (flags_.copy_propagation) {
      optimize_blocks();
      optimize_blocks();  // second round cleans copies exposed by DCE
    }
    mark(telemetry::JitPass::Optimize);
    trace("copyprop+dce");
    if (flags_.cse) {
      // Two rounds: the copy propagation between them forwards the MOVs the
      // first round left behind, exposing cascaded duplicates (a repeated
      // subtree matches only after its repeated leaves were unified).
      for (int i = 0; i < 2; ++i) {
        cse_blocks();
        if (flags_.copy_propagation) optimize_blocks();
      }
    }
    mark(telemetry::JitPass::Cse);
    if (flags_.cse) trace("cse");
    if (flags_.licm) hoist_loop_invariants();
    mark(telemetry::JitPass::Licm);
    if (flags_.licm) trace("licm");
    if (flags_.bounds_check_elim) eliminate_bounds_checks();
    mark(telemetry::JitPass::BoundsCheckElim);
    if (flags_.bounds_check_elim) trace("bce");
    if (flags_.vectorize) {
      regir::VecLowerInput vin;
      vin.code = &out_;
      vin.il_start = &il_start_;
      vin.labels = &labels_;
      vin.method = mp_;
      vin.rc = &rc_;
      regir::lower_vector_loops(vin);
    }
    mark(telemetry::JitPass::VecLower);
    if (flags_.vectorize) trace("veclower");
    compact();
    mark(telemetry::JitPass::Compact);
    finalize();
    mark(telemetry::JitPass::Finalize);
    trace("final");
    return std::move(rc_);
  }

 private:
  // ---- register allocation ----
  std::int32_t new_reg(ValType t) {
    rc_.reg_types.push_back(t);
    return static_cast<std::int32_t>(rc_.reg_types.size()) - 1;
  }

  void alloc_slot_regs() {
    for (std::size_t i = 0; i < mp_->frame_slots(); ++i) {
      new_reg(mp_->slot_type(i));
    }
    rc_.slot_regs = static_cast<std::int32_t>(mp_->frame_slots());
  }

  std::int32_t sreg(std::int32_t depth, ValType t) {
    const auto key = (static_cast<std::int64_t>(depth) << 4) |
                     static_cast<std::int64_t>(t);
    auto it = stack_regs_.find(key);
    if (it != stack_regs_.end()) return it->second;
    const std::int32_t r = new_reg(t);
    stack_regs_.emplace(key, r);
    return r;
  }

  std::int32_t slot_reg(std::int32_t slot) { return slot; }
  bool spilled(std::int32_t slot) const {
    return slot >= flags_.enregister_limit;
  }

  // ---- emission ----
  RInstr& emit(ROp op, std::int32_t d = -1, std::int32_t a = -1,
               std::int32_t b = -1) {
    RInstr in;
    in.op = op;
    in.d = d;
    in.a = a;
    in.b = b;
    in.il_pc = cur_il_;
    out_.push_back(in);
    return out_.back();
  }

  void find_labels() {
    labels_.assign(mp_->code.size() + 1, false);
    for (const Instr& in : mp_->code) {
      switch (in.op) {
        case Op::BR: case Op::BRTRUE: case Op::BRFALSE:
        case Op::BEQ: case Op::BNE: case Op::BLT: case Op::BLE:
        case Op::BGT: case Op::BGE: case Op::LEAVE:
          labels_[static_cast<std::size_t>(in.a)] = true;
          break;
        default:
          break;
      }
    }
    for (const ExHandler& h : mp_->handlers) {
      labels_[static_cast<std::size_t>(h.handler)] = true;
    }
  }

  // ---- constant tracking (per stack depth, reset at labels) ----
  std::optional<ConstVal> const_at(std::size_t depth) const {
    return depth < consts_.size() ? consts_[depth] : std::nullopt;
  }
  void set_const(std::size_t depth, std::optional<ConstVal> v) {
    if (consts_.size() <= depth) consts_.resize(depth + 1);
    consts_[depth] = v;
  }
  void reset_consts() { consts_.clear(); }

  // ---- main translation loop ----
  void translate();
  void translate_one(std::int32_t pc, const Instr& in);

  // ---- passes ----
  void inline_methods();
  bool inlinable(const MethodDef& callee) const;
  static void splice(MethodDef& work, std::size_t c, const MethodDef& callee);
  void optimize_blocks();
  void cse_blocks();
  void hoist_loop_invariants();
  bool hoist_round();
  bool try_hoist(std::int32_t body, std::int32_t j);
  void eliminate_bounds_checks();
  void compact();
  void finalize();

  std::vector<std::int32_t> block_leaders() const;
  std::vector<std::int32_t> live_out_stack_regs(std::size_t block_end) const;

  std::string dump_rcode() const;
  std::string dump_il() const;

  Module& mod_;
  const MethodDef& m_;        // the module's method (identity, telemetry)
  const MethodDef* mp_;       // body actually compiled (== &m_ or inlined_)
  std::shared_ptr<MethodDef> inlined_;  // expanded copy when inlining fired
  EngineFlags flags_;
  const PassObserver* obs_ = nullptr;
  RCode rc_;

  std::vector<RInstr> out_;
  std::vector<std::int32_t> il_start_;  // IL pc -> out_ index (pre-compaction)
  std::map<std::int64_t, std::int32_t> stack_regs_;
  std::vector<bool> labels_;
  std::vector<std::optional<ConstVal>> consts_;
  std::int32_t cur_il_ = 0;
  bool skip_next_ = false;  // fused compare+branch consumed the next IL op
};

// --------------------------------------------------------------------------

void Compiler::translate() {
  il_start_.assign(mp_->code.size() + 1, -1);
  for (std::size_t pc = 0; pc < mp_->code.size(); ++pc) {
    il_start_[pc] = static_cast<std::int32_t>(out_.size());
    cur_il_ = static_cast<std::int32_t>(pc);
    if (labels_[pc]) reset_consts();
    if (skip_next_) {
      skip_next_ = false;
      continue;
    }
    if (!mp_->reachable.empty() && !mp_->reachable[pc]) continue;
    translate_one(static_cast<std::int32_t>(pc), mp_->code[pc]);
  }
  il_start_[mp_->code.size()] = static_cast<std::int32_t>(out_.size());
}

void Compiler::translate_one(std::int32_t pc, const Instr& in) {
  const auto& st = mp_->stack_in[static_cast<std::size_t>(pc)];
  const auto d = static_cast<std::int32_t>(st.size());
  auto stk = [&](std::int32_t i) { return st[static_cast<std::size_t>(i)]; };

  switch (in.op) {
    case Op::NOP:
      break;

    case Op::LDC_I4: {
      Slot s = Slot::from_i32(static_cast<std::int32_t>(in.imm.i64));
      RInstr& r = emit(ROp::LDI, sreg(d, ValType::I32));
      r.imm.i64 = static_cast<std::int64_t>(s.raw);
      set_const(static_cast<std::size_t>(d), ConstVal{s.raw, ValType::I32});
      break;
    }
    case Op::LDC_I8: {
      RInstr& r = emit(ROp::LDI, sreg(d, ValType::I64));
      r.imm.i64 = in.imm.i64;
      set_const(static_cast<std::size_t>(d),
                ConstVal{static_cast<std::uint64_t>(in.imm.i64), ValType::I64});
      break;
    }
    case Op::LDC_R4: {
      Slot s = Slot::from_f32(static_cast<float>(in.imm.f64));
      RInstr& r = emit(ROp::LDI, sreg(d, ValType::F32));
      r.imm.i64 = static_cast<std::int64_t>(s.raw);
      set_const(static_cast<std::size_t>(d), ConstVal{s.raw, ValType::F32});
      break;
    }
    case Op::LDC_R8: {
      Slot s = Slot::from_f64(in.imm.f64);
      RInstr& r = emit(ROp::LDI, sreg(d, ValType::F64));
      r.imm.i64 = static_cast<std::int64_t>(s.raw);
      set_const(static_cast<std::size_t>(d), ConstVal{s.raw, ValType::F64});
      break;
    }
    case Op::LDNULL: {
      RInstr& r = emit(ROp::LDI, sreg(d, ValType::Ref));
      r.imm.i64 = 0;
      set_const(static_cast<std::size_t>(d), std::nullopt);
      break;
    }
    case Op::LDSTR:
      emit(ROp::LDSTR_R, sreg(d, ValType::Ref), in.a);
      set_const(static_cast<std::size_t>(d), std::nullopt);
      break;

    case Op::LDLOC:
    case Op::LDARG: {
      const std::int32_t slot =
          in.op == Op::LDLOC ? in.a + static_cast<std::int32_t>(mp_->num_args())
                             : in.a;
      emit(spilled(slot) ? ROp::MEMLD : ROp::MOV, sreg(d, in.type),
           slot_reg(slot))
          .flags = spilled(slot) ? RInstr::kPinned : 0;
      set_const(static_cast<std::size_t>(d), std::nullopt);
      break;
    }
    case Op::STLOC:
    case Op::STARG: {
      const std::int32_t slot =
          in.op == Op::STLOC ? in.a + static_cast<std::int32_t>(mp_->num_args())
                             : in.a;
      emit(spilled(slot) ? ROp::MEMST : ROp::MOV, slot_reg(slot),
           sreg(d - 1, in.type))
          .flags = spilled(slot) ? RInstr::kPinned : 0;
      break;
    }
    case Op::DUP:
      emit(ROp::MOV, sreg(d, in.type), sreg(d - 1, in.type));
      set_const(static_cast<std::size_t>(d),
                const_at(static_cast<std::size_t>(d - 1)));
      break;
    case Op::POP:
      break;

    case Op::ADD:
    case Op::SUB:
    case Op::MUL:
    case Op::DIV:
    case Op::REM: {
      const ValType t = in.type;
      const std::int32_t ra = sreg(d - 2, t);
      const std::int32_t rb = sreg(d - 1, t);
      const std::int32_t rd = sreg(d - 2, t);
      const auto cb = const_at(static_cast<std::size_t>(d - 1));
      const bool is_int = t == ValType::I32 || t == ValType::I64;

      auto base3 = [&](ROp i4, ROp i8, ROp r4, ROp r8) {
        return t == ValType::I32 ? i4 : t == ValType::I64 ? i8
               : t == ValType::F32 ? r4 : r8;
      };

      bool emitted = false;
      if (cb.has_value() && flags_.imm_operands) {
        // Immediate-operand instruction selection, gated per-op by the
        // profile (the "different JITs optimize different operations"
        // result in the paper's §5).
        ROp iop = ROp::NOP_R;
        if (t == ValType::I32 || t == ValType::I64) {
          const bool i4 = t == ValType::I32;
          switch (in.op) {
            case Op::ADD: iop = i4 ? ROp::ADDI_I4 : ROp::ADDI_I8; break;
            case Op::SUB: iop = i4 ? ROp::SUBI_I4 : ROp::SUBI_I8; break;
            case Op::MUL:
              if (flags_.mul_imm_fusion) iop = i4 ? ROp::MULI_I4 : ROp::MULI_I8;
              break;
            case Op::DIV:
              if (flags_.div_imm_fusion) iop = i4 ? ROp::DIVI_I4 : ROp::DIVI_I8;
              break;
            case Op::REM:
              if (flags_.div_imm_fusion) iop = i4 ? ROp::REMI_I4 : ROp::REMI_I8;
              break;
            default: break;
          }
        } else if (t == ValType::F64) {
          if (in.op == Op::ADD) iop = ROp::ADDI_R8;
          if (in.op == Op::MUL && flags_.mul_imm_fusion) iop = ROp::MULI_R8;
        }
        if (iop != ROp::NOP_R) {
          RInstr& r = emit(iop, rd, ra);
          r.imm.i64 = static_cast<std::int64_t>(cb->raw);
          emitted = true;
        } else if (is_int && (in.op == Op::DIV || in.op == Op::REM) &&
                   flags_.redundant_const_store) {
          // The CLR 1.1 quirk from Table 6: the divisor constant takes a
          // round trip through a temporary before the divide.
          const std::int32_t t1 = new_reg(t);
          const std::int32_t t2 = new_reg(t);
          RInstr& l = emit(ROp::LDI, t1);
          l.imm.i64 = static_cast<std::int64_t>(cb->raw);
          l.flags = RInstr::kPinned;
          emit(ROp::MOV, t2, t1).flags = RInstr::kPinned;
          emit(in.op == Op::DIV ? base3(ROp::DIV_I4, ROp::DIV_I8, ROp::DIV_R4,
                                        ROp::DIV_R8)
                                : base3(ROp::REM_I4, ROp::REM_I8, ROp::REM_R4,
                                        ROp::REM_R8),
               rd, ra, t2);
          emitted = true;
        }
      }
      if (!emitted) {
        ROp op3;
        switch (in.op) {
          case Op::ADD: op3 = base3(ROp::ADD_I4, ROp::ADD_I8, ROp::ADD_R4, ROp::ADD_R8); break;
          case Op::SUB: op3 = base3(ROp::SUB_I4, ROp::SUB_I8, ROp::SUB_R4, ROp::SUB_R8); break;
          case Op::MUL: op3 = base3(ROp::MUL_I4, ROp::MUL_I8, ROp::MUL_R4, ROp::MUL_R8); break;
          case Op::DIV: op3 = base3(ROp::DIV_I4, ROp::DIV_I8, ROp::DIV_R4, ROp::DIV_R8); break;
          default: op3 = base3(ROp::REM_I4, ROp::REM_I8, ROp::REM_R4, ROp::REM_R8); break;
        }
        emit(op3, rd, ra, rb);
      }
      set_const(static_cast<std::size_t>(d - 2), std::nullopt);
      break;
    }
    case Op::NEG: {
      const ValType t = in.type;
      const ROp op = t == ValType::I32 ? ROp::NEG_I4
                     : t == ValType::I64 ? ROp::NEG_I8
                     : t == ValType::F32 ? ROp::NEG_R4 : ROp::NEG_R8;
      emit(op, sreg(d - 1, t), sreg(d - 1, t));
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;
    }

    case Op::AND:
    case Op::OR:
    case Op::XOR: {
      const bool i4 = in.type == ValType::I32;
      const auto ca = const_at(static_cast<std::size_t>(d - 1));
      if (in.op == Op::AND && i4 && ca.has_value() && flags_.imm_operands) {
        RInstr& r = emit(ROp::ANDI_I4, sreg(d - 2, in.type), sreg(d - 2, in.type));
        r.imm.i64 = static_cast<std::int64_t>(ca->raw);
      } else {
        ROp op = in.op == Op::AND ? (i4 ? ROp::AND_I4 : ROp::AND_I8)
                 : in.op == Op::OR ? (i4 ? ROp::OR_I4 : ROp::OR_I8)
                                   : (i4 ? ROp::XOR_I4 : ROp::XOR_I8);
        emit(op, sreg(d - 2, in.type), sreg(d - 2, in.type), sreg(d - 1, in.type));
      }
      set_const(static_cast<std::size_t>(d - 2), std::nullopt);
      break;
    }
    case Op::NOT: {
      const bool i4 = in.type == ValType::I32;
      emit(i4 ? ROp::NOT_I4 : ROp::NOT_I8, sreg(d - 1, in.type),
           sreg(d - 1, in.type));
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;
    }
    case Op::SHL:
    case Op::SHR:
    case Op::SHR_UN: {
      const bool i4 = in.type == ValType::I32;
      const auto ca = const_at(static_cast<std::size_t>(d - 1));
      if (ca.has_value() && flags_.imm_operands && in.op != Op::SHR_UN) {
        const ROp iop = in.op == Op::SHL ? (i4 ? ROp::SHLI_I4 : ROp::SHLI_I8)
                                         : (i4 ? ROp::SHRI_I4 : ROp::SHRI_I8);
        RInstr& r = emit(iop, sreg(d - 2, in.type), sreg(d - 2, in.type));
        r.imm.i64 = static_cast<std::int64_t>(ca->raw);
      } else {
        ROp op = in.op == Op::SHL ? (i4 ? ROp::SHL_I4 : ROp::SHL_I8)
                 : in.op == Op::SHR ? (i4 ? ROp::SHR_I4 : ROp::SHR_I8)
                                    : (i4 ? ROp::SHRU_I4 : ROp::SHRU_I8);
        emit(op, sreg(d - 2, in.type), sreg(d - 2, in.type),
             sreg(d - 1, ValType::I32));
      }
      set_const(static_cast<std::size_t>(d - 2), std::nullopt);
      break;
    }

    case Op::CEQ:
    case Op::CGT:
    case Op::CLT: {
      const ValType t = in.type;
      auto pick = [&](ROp i4, ROp i8, ROp r4, ROp r8) {
        return t == ValType::I32 ? i4 : t == ValType::I64 ? i8
               : t == ValType::F32 ? r4
               : t == ValType::F64 ? r8 : ROp::CEQ_REF;
      };
      ROp op = in.op == Op::CEQ
                   ? pick(ROp::CEQ_I4, ROp::CEQ_I8, ROp::CEQ_R4, ROp::CEQ_R8)
               : in.op == Op::CGT
                   ? pick(ROp::CGT_I4, ROp::CGT_I8, ROp::CGT_R4, ROp::CGT_R8)
                   : pick(ROp::CLT_I4, ROp::CLT_I8, ROp::CLT_R4, ROp::CLT_R8);
      emit(op, sreg(d - 2, ValType::I32), sreg(d - 2, t), sreg(d - 1, t));
      set_const(static_cast<std::size_t>(d - 2), std::nullopt);
      break;
    }

    case Op::BR:
      emit(ROp::JMP, in.a);
      reset_consts();
      break;
    case Op::BRTRUE:
    case Op::BRFALSE: {
      const ValType t = in.type;
      const ROp op = in.op == Op::BRTRUE
                         ? (t == ValType::Ref ? ROp::JNZ_REF
                            : t == ValType::I64 ? ROp::JNZ_I8 : ROp::JNZ_I4)
                         : (t == ValType::Ref ? ROp::JZ_REF
                            : t == ValType::I64 ? ROp::JZ_I8 : ROp::JZ_I4);
      emit(op, in.a, sreg(d - 1, t));
      reset_consts();
      break;
    }
    case Op::BEQ:
    case Op::BNE:
    case Op::BLT:
    case Op::BLE:
    case Op::BGT:
    case Op::BGE: {
      const ValType t = in.type;
      const std::int32_t ra = sreg(d - 2, t);
      const std::int32_t rb = sreg(d - 1, t);
      const auto cb = const_at(static_cast<std::size_t>(d - 1));
      if (flags_.fuse_cmp_branch) {
        if (t == ValType::I32 && cb.has_value() && flags_.imm_operands) {
          ROp op;
          switch (in.op) {
            case Op::BEQ: op = ROp::JEQI_I4; break;
            case Op::BNE: op = ROp::JNEI_I4; break;
            case Op::BLT: op = ROp::JLTI_I4; break;
            case Op::BLE: op = ROp::JLEI_I4; break;
            case Op::BGT: op = ROp::JGTI_I4; break;
            default: op = ROp::JGEI_I4; break;
          }
          RInstr& r = emit(op, in.a, ra);
          r.imm.i64 = static_cast<std::int64_t>(cb->raw);
        } else {
          auto pick = [&](ROp i4, ROp i8, ROp r4, ROp r8, ROp ref) {
            return t == ValType::I32 ? i4 : t == ValType::I64 ? i8
                   : t == ValType::F32 ? r4
                   : t == ValType::F64 ? r8 : ref;
          };
          ROp op;
          switch (in.op) {
            case Op::BEQ: op = pick(ROp::JEQ_I4, ROp::JEQ_I8, ROp::JEQ_R4, ROp::JEQ_R8, ROp::JEQ_REF); break;
            case Op::BNE: op = pick(ROp::JNE_I4, ROp::JNE_I8, ROp::JNE_R4, ROp::JNE_R8, ROp::JNE_REF); break;
            case Op::BLT: op = pick(ROp::JLT_I4, ROp::JLT_I8, ROp::JLT_R4, ROp::JLT_R8, ROp::JEQ_REF); break;
            case Op::BLE: op = pick(ROp::JLE_I4, ROp::JLE_I8, ROp::JLE_R4, ROp::JLE_R8, ROp::JEQ_REF); break;
            case Op::BGT: op = pick(ROp::JGT_I4, ROp::JGT_I8, ROp::JGT_R4, ROp::JGT_R8, ROp::JEQ_REF); break;
            default: op = pick(ROp::JGE_I4, ROp::JGE_I8, ROp::JGE_R4, ROp::JGE_R8, ROp::JEQ_REF); break;
          }
          emit(op, in.a, ra, rb);
        }
      } else {
        // Two-instruction sequence (the "fewer passes" profiles): materialize
        // the comparison, then branch on the flag. NaN note: BLE/BGE are
        // emulated via the negated strict compare; this differs from the
        // fused form only for NaN operands, which no benchmark exercises.
        const std::int32_t flag = new_reg(ValType::I32);
        auto pick = [&](ROp i4, ROp i8, ROp r4, ROp r8) {
          return t == ValType::I32 ? i4 : t == ValType::I64 ? i8
                 : t == ValType::F32 ? r4
                 : t == ValType::F64 ? r8 : ROp::CEQ_REF;
        };
        ROp cmp;
        bool jump_if_true;
        switch (in.op) {
          case Op::BEQ: cmp = pick(ROp::CEQ_I4, ROp::CEQ_I8, ROp::CEQ_R4, ROp::CEQ_R8); jump_if_true = true; break;
          case Op::BNE: cmp = pick(ROp::CEQ_I4, ROp::CEQ_I8, ROp::CEQ_R4, ROp::CEQ_R8); jump_if_true = false; break;
          case Op::BLT: cmp = pick(ROp::CLT_I4, ROp::CLT_I8, ROp::CLT_R4, ROp::CLT_R8); jump_if_true = true; break;
          case Op::BLE: cmp = pick(ROp::CGT_I4, ROp::CGT_I8, ROp::CGT_R4, ROp::CGT_R8); jump_if_true = false; break;
          case Op::BGT: cmp = pick(ROp::CGT_I4, ROp::CGT_I8, ROp::CGT_R4, ROp::CGT_R8); jump_if_true = true; break;
          default: cmp = pick(ROp::CLT_I4, ROp::CLT_I8, ROp::CLT_R4, ROp::CLT_R8); jump_if_true = false; break;
        }
        emit(cmp, flag, ra, rb).flags = RInstr::kPinned;
        emit(jump_if_true ? ROp::JNZ_I4 : ROp::JZ_I4, in.a, flag);
      }
      reset_consts();
      break;
    }

    case Op::CONV_I4:
    case Op::CONV_I8:
    case Op::CONV_R4:
    case Op::CONV_R8:
    case Op::CONV_I1:
    case Op::CONV_U1:
    case Op::CONV_I2:
    case Op::CONV_U2: {
      const ValType src = in.type;
      ValType dst;
      switch (in.op) {
        case Op::CONV_I8: dst = ValType::I64; break;
        case Op::CONV_R4: dst = ValType::F32; break;
        case Op::CONV_R8: dst = ValType::F64; break;
        default: dst = ValType::I32; break;
      }
      const std::int32_t rs = sreg(d - 1, src);
      const std::int32_t rd = sreg(d - 1, dst);
      auto cv = [&](ValType s, ValType t2) -> ROp {
        if (s == ValType::I32) {
          return t2 == ValType::I64 ? ROp::CV_I4_I8
                 : t2 == ValType::F32 ? ROp::CV_I4_R4 : ROp::CV_I4_R8;
        }
        if (s == ValType::I64) {
          return t2 == ValType::I32 ? ROp::CV_I8_I4
                 : t2 == ValType::F32 ? ROp::CV_I8_R4 : ROp::CV_I8_R8;
        }
        if (s == ValType::F32) {
          return t2 == ValType::I32 ? ROp::CV_R4_I4
                 : t2 == ValType::I64 ? ROp::CV_R4_I8 : ROp::CV_R4_R8;
        }
        return t2 == ValType::I32 ? ROp::CV_R8_I4
               : t2 == ValType::I64 ? ROp::CV_R8_I8 : ROp::CV_R8_R4;
      };
      std::int32_t cur = rs;
      if (src != dst) {
        emit(cv(src, dst), rd, rs);
        cur = rd;
      }
      switch (in.op) {
        case Op::CONV_I1: emit(ROp::SEXT8, rd, cur); break;
        case Op::CONV_U1: emit(ROp::ZEXT8, rd, cur); break;
        case Op::CONV_I2: emit(ROp::SEXT16, rd, cur); break;
        case Op::CONV_U2: emit(ROp::ZEXT16, rd, cur); break;
        default:
          if (src == dst && cur != rd) emit(ROp::MOV, rd, cur);
          break;
      }
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;
    }

    case Op::CALL: {
      const MethodDef& callee = mod_.method(in.a);
      const auto argc = static_cast<std::int32_t>(callee.sig.params.size());
      const auto pool_at = static_cast<std::int32_t>(rc_.args_pool.size());
      for (std::int32_t i = 0; i < argc; ++i) {
        rc_.args_pool.push_back(sreg(d - argc + i, callee.sig.params[static_cast<std::size_t>(i)]));
      }
      const std::int32_t rd =
          callee.sig.ret == ValType::None ? -1 : sreg(d - argc, callee.sig.ret);
      RInstr& r = emit(ROp::CALL_R, rd, in.a, pool_at);
      r.imm.i64 = argc;
      reset_consts();
      break;
    }
    case Op::CALLINTR: {
      const IntrinsicDef& def = intrinsic(in.a);
      const auto argc = static_cast<std::int32_t>(def.sig.params.size());
      bool emitted = false;
      if (flags_.fast_math && def.pure_math && in.a != I_ROUND_R4 &&
          in.a != I_ROUND_R8) {
        const std::int32_t a0 = argc >= 1 ? sreg(d - argc, def.sig.params[0]) : -1;
        const std::int32_t a1 = argc >= 2 ? sreg(d - argc + 1, def.sig.params[1]) : -1;
        const std::int32_t rd = sreg(d - argc, def.sig.ret);
        ROp dedicated = ROp::NOP_R;
        switch (in.a) {
          case I_ABS_I4: dedicated = ROp::ABS_I4_R; break;
          case I_ABS_I8: dedicated = ROp::ABS_I8_R; break;
          case I_ABS_R4: dedicated = ROp::ABS_R4_R; break;
          case I_ABS_R8: dedicated = ROp::ABS_R8_R; break;
          case I_MAX_I4: dedicated = ROp::MAX_I4_R; break;
          case I_MAX_I8: dedicated = ROp::MAX_I8_R; break;
          case I_MAX_R4: dedicated = ROp::MAX_R4_R; break;
          case I_MAX_R8: dedicated = ROp::MAX_R8_R; break;
          case I_MIN_I4: dedicated = ROp::MIN_I4_R; break;
          case I_MIN_I8: dedicated = ROp::MIN_I8_R; break;
          case I_MIN_R4: dedicated = ROp::MIN_R4_R; break;
          case I_MIN_R8: dedicated = ROp::MIN_R8_R; break;
          default: break;
        }
        // The immediate carries the intrinsic ID (position-independent; the
        // dispatch loop resolves it via math1_fn/math2_fn), so same id =>
        // same value and CSE/LICM keying is unchanged.
        if (regir::math1_fn(in.a) != nullptr) {
          RInstr& r = emit(ROp::MATH1_R8, rd, a0);
          r.imm.i64 = in.a;
          emitted = true;
        } else if (regir::math2_fn(in.a) != nullptr) {
          RInstr& r = emit(ROp::MATH2_R8, rd, a0, a1);
          r.imm.i64 = in.a;
          emitted = true;
        } else if (dedicated != ROp::NOP_R) {
          emit(dedicated, rd, a0, a1);
          emitted = true;
        }
      }
      if (!emitted) {
        const auto pool_at = static_cast<std::int32_t>(rc_.args_pool.size());
        for (std::int32_t i = 0; i < argc; ++i) {
          rc_.args_pool.push_back(sreg(d - argc + i, def.sig.params[static_cast<std::size_t>(i)]));
        }
        const std::int32_t rd =
            def.sig.ret == ValType::None ? -1 : sreg(d - argc, def.sig.ret);
        RInstr& r = emit(ROp::CALLINTR_R, rd, in.a, pool_at);
        r.imm.i64 = argc;
      }
      reset_consts();
      break;
    }
    case Op::RET:
      emit(ROp::RET_R, -1,
           mp_->sig.ret == ValType::None ? -1 : sreg(d - 1, mp_->sig.ret));
      reset_consts();
      break;

    case Op::NEWOBJ:
      emit(ROp::NEWOBJ_R, sreg(d, ValType::Ref), in.a);
      set_const(static_cast<std::size_t>(d), std::nullopt);
      break;
    case Op::LDFLD:
      emit(ROp::LDFLD_R, sreg(d - 1, in.type), sreg(d - 1, ValType::Ref), in.a);
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;
    case Op::STFLD:
      emit(ROp::STFLD_R, sreg(d - 1, in.type), sreg(d - 2, ValType::Ref), in.a);
      if (in.type == ValType::Ref) {
        emit(ROp::CARDMARK, -1, sreg(d - 2, ValType::Ref));
      }
      break;
    case Op::LDSFLD:
      emit(ROp::LDSFLD_R, sreg(d, in.type), in.b, in.a);
      set_const(static_cast<std::size_t>(d), std::nullopt);
      break;
    case Op::STSFLD:
      emit(ROp::STSFLD_R, sreg(d - 1, in.type), in.b, in.a);
      break;

    case Op::NEWARR:
      emit(ROp::NEWARR_R, sreg(d - 1, ValType::Ref), sreg(d - 1, ValType::I32),
           static_cast<std::int32_t>(in.type));
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;
    case Op::LDLEN:
      emit(ROp::LDLEN_R, sreg(d - 1, ValType::I32), sreg(d - 1, ValType::Ref));
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;
    case Op::LDELEM: {
      auto pick = [&](ROp i4, ROp i8, ROp r4, ROp r8, ROp ref) {
        switch (in.type) {
          case ValType::I32: return i4;
          case ValType::I64: return i8;
          case ValType::F32: return r4;
          case ValType::F64: return r8;
          default: return ref;
        }
      };
      // Explicit range-check node + unchecked access: the shape real JIT IRs
      // use, and what lets the BCE pass delete exactly the check.
      emit(ROp::CHK_BOUNDS, -1, sreg(d - 2, ValType::Ref),
           sreg(d - 1, ValType::I32));
      emit(pick(ROp::LDELEMU_I4, ROp::LDELEMU_I8, ROp::LDELEMU_R4,
                ROp::LDELEMU_R8, ROp::LDELEMU_REF),
           sreg(d - 2, in.type), sreg(d - 2, ValType::Ref),
           sreg(d - 1, ValType::I32));
      set_const(static_cast<std::size_t>(d - 2), std::nullopt);
      break;
    }
    case Op::STELEM: {
      auto pick = [&](ROp i4, ROp i8, ROp r4, ROp r8, ROp ref) {
        switch (in.type) {
          case ValType::I32: return i4;
          case ValType::I64: return i8;
          case ValType::F32: return r4;
          case ValType::F64: return r8;
          default: return ref;
        }
      };
      emit(ROp::CHK_BOUNDS, -1, sreg(d - 3, ValType::Ref),
           sreg(d - 2, ValType::I32));
      emit(pick(ROp::STELEMU_I4, ROp::STELEMU_I8, ROp::STELEMU_R4,
                ROp::STELEMU_R8, ROp::STELEMU_REF),
           sreg(d - 1, in.type), sreg(d - 3, ValType::Ref),
           sreg(d - 2, ValType::I32));
      if (in.type != ValType::I32 && in.type != ValType::I64 &&
          in.type != ValType::F32 && in.type != ValType::F64) {
        emit(ROp::CARDMARK, -1, sreg(d - 3, ValType::Ref));
      }
      break;
    }
    case Op::NEWMAT: {
      RInstr& r = emit(ROp::NEWMAT_R, sreg(d - 2, ValType::Ref),
                       sreg(d - 2, ValType::I32), sreg(d - 1, ValType::I32));
      r.imm.i64 = static_cast<std::int64_t>(in.type);
      set_const(static_cast<std::size_t>(d - 2), std::nullopt);
      break;
    }
    case Op::LDELEM2: {
      const std::int32_t creg = sreg(d - 1, ValType::I32);
      if (flags_.fast_multidim) {
        auto pick = [&] {
          switch (in.type) {
            case ValType::I32: return ROp::LDEL2_I4;
            case ValType::I64: return ROp::LDEL2_I8;
            case ValType::F32: return ROp::LDEL2_R4;
            case ValType::F64: return ROp::LDEL2_R8;
            default: return ROp::LDEL2_REF;
          }
        };
        RInstr& r = emit(pick(), sreg(d - 3, in.type),
                         sreg(d - 3, ValType::Ref), sreg(d - 2, ValType::I32));
        r.imm.i64 = creg;
      } else {
        RInstr& r = emit(ROp::LDEL2_SLOW, sreg(d - 3, in.type),
                         sreg(d - 3, ValType::Ref), sreg(d - 2, ValType::I32));
        r.imm.i64 = creg | (static_cast<std::int64_t>(in.type) << 40);
      }
      set_const(static_cast<std::size_t>(d - 3), std::nullopt);
      break;
    }
    case Op::STELEM2: {
      const std::int32_t creg = sreg(d - 2, ValType::I32);
      const std::int32_t vreg = sreg(d - 1, in.type);
      const std::int64_t packed =
          creg | (static_cast<std::int64_t>(vreg) << kRegFieldBits);
      if (flags_.fast_multidim) {
        auto pick = [&] {
          switch (in.type) {
            case ValType::I32: return ROp::STEL2_I4;
            case ValType::I64: return ROp::STEL2_I8;
            case ValType::F32: return ROp::STEL2_R4;
            case ValType::F64: return ROp::STEL2_R8;
            default: return ROp::STEL2_REF;
          }
        };
        RInstr& r = emit(pick(), -1, sreg(d - 4, ValType::Ref),
                         sreg(d - 3, ValType::I32));
        r.imm.i64 = packed;
      } else {
        RInstr& r = emit(ROp::STEL2_SLOW, -1, sreg(d - 4, ValType::Ref),
                         sreg(d - 3, ValType::I32));
        r.imm.i64 = packed | (static_cast<std::int64_t>(in.type) << 40);
      }
      if (in.type != ValType::I32 && in.type != ValType::I64 &&
          in.type != ValType::F32 && in.type != ValType::F64) {
        emit(ROp::CARDMARK, -1, sreg(d - 4, ValType::Ref));
      }
      break;
    }
    case Op::LDMATROWS:
      emit(ROp::LDMROWS_R, sreg(d - 1, ValType::I32), sreg(d - 1, ValType::Ref));
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;
    case Op::LDMATCOLS:
      emit(ROp::LDMCOLS_R, sreg(d - 1, ValType::I32), sreg(d - 1, ValType::Ref));
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;

    case Op::BOX:
      emit(ROp::BOX_R, sreg(d - 1, ValType::Ref), sreg(d - 1, in.type),
           static_cast<std::int32_t>(in.type));
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;
    case Op::UNBOX:
      emit(ROp::UNBOX_R, sreg(d - 1, in.type), sreg(d - 1, ValType::Ref),
           static_cast<std::int32_t>(in.type));
      set_const(static_cast<std::size_t>(d - 1), std::nullopt);
      break;

    case Op::THROW:
      emit(ROp::THROW_R, -1, sreg(d - 1, ValType::Ref));
      reset_consts();
      break;
    case Op::LEAVE:
      emit(ROp::LEAVE_R, -1, in.a);
      reset_consts();
      break;
    case Op::ENDFINALLY:
      emit(ROp::ENDFINALLY_R);
      reset_consts();
      break;

    case Op::COUNT_:
      throw std::logic_error("bad opcode reached translator");
  }
}

// --------------------------------------------------------------------------
// Copy propagation + dead-move elimination, per basic block.

std::vector<std::int32_t> Compiler::block_leaders() const {
  std::vector<bool> lead(out_.size() + 1, false);
  lead[0] = true;
  for (std::size_t i = 0; i < out_.size(); ++i) {
    if (is_block_end(out_[i].op) && i + 1 < out_.size()) lead[i + 1] = true;
  }
  // IL label positions (branch targets, handler starts, leave targets).
  for (std::size_t il = 0; il < labels_.size(); ++il) {
    if (labels_[il] && il < il_start_.size() && il_start_[il] >= 0 &&
        static_cast<std::size_t>(il_start_[il]) < out_.size()) {
      lead[static_cast<std::size_t>(il_start_[il])] = true;
    }
  }
  std::vector<std::int32_t> leaders;
  for (std::size_t i = 0; i < out_.size(); ++i) {
    if (lead[i]) leaders.push_back(static_cast<std::int32_t>(i));
  }
  leaders.push_back(static_cast<std::int32_t>(out_.size()));
  return leaders;
}

std::vector<std::int32_t> Compiler::live_out_stack_regs(
    std::size_t block_end) const {
  // Registers carrying stack values into successors of the block whose last
  // instruction is at block_end-1.
  std::vector<std::int32_t> live;
  auto add_entry_stack = [&](std::int32_t il) {
    if (il < 0 || static_cast<std::size_t>(il) >= mp_->stack_in.size()) return;
    const auto& st = mp_->stack_in[static_cast<std::size_t>(il)];
    for (std::size_t depth = 0; depth < st.size(); ++depth) {
      const auto key =
          (static_cast<std::int64_t>(depth) << 4) | static_cast<std::int64_t>(st[depth]);
      auto it = stack_regs_.find(key);
      if (it != stack_regs_.end()) live.push_back(it->second);
    }
  };
  if (block_end == 0) return live;
  const RInstr& last = out_[block_end - 1];
  const std::int32_t fall_il = block_end < out_.size()
                                   ? out_[block_end].il_pc
                                   : -1;  // next block's first instruction
  if (is_branch(last.op)) {
    add_entry_stack(last.d);  // branch target (IL pc pre-compaction)
    if (last.op != ROp::JMP && last.op != ROp::JMPB) {
      add_entry_stack(fall_il);
    }
  } else if (last.op == ROp::RET_R || last.op == ROp::THROW_R ||
             last.op == ROp::LEAVE_R || last.op == ROp::ENDFINALLY_R) {
    // No stack values survive these exits.
  } else {
    add_entry_stack(fall_il);
  }
  return live;
}

void Compiler::optimize_blocks() {
  const auto leaders = block_leaders();
  const std::int32_t nregs = static_cast<std::int32_t>(rc_.reg_types.size());

  for (std::size_t bi = 0; bi + 1 < leaders.size(); ++bi) {
    const auto lo = static_cast<std::size_t>(leaders[bi]);
    const auto hi = static_cast<std::size_t>(leaders[bi + 1]);
    if (lo >= hi) continue;

    // ---- forward copy propagation ----
    std::vector<std::int32_t> copy_of(static_cast<std::size_t>(nregs), -1);
    auto root = [&](std::int32_t r) {
      while (r >= 0 && copy_of[static_cast<std::size_t>(r)] >= 0) {
        r = copy_of[static_cast<std::size_t>(r)];
      }
      return r;
    };
    auto invalidate = [&](std::int32_t r) {
      copy_of[static_cast<std::size_t>(r)] = -1;
      for (auto& c : copy_of) {
        if (c == r) c = -1;
      }
    };
    for (std::size_t i = lo; i < hi; ++i) {
      RInstr& in = out_[i];
      if (in.op == ROp::NOP_R) continue;
      // Rewrite uses through the copy map.
      if (!in.pinned()) {
        auto rewrite = [&](std::int32_t& r) {
          if (r >= 0) r = root(r);
        };
        switch (in.op) {
          case ROp::MOV:
          case ROp::MEMLD:
          case ROp::MEMST:
            rewrite(in.a);
            break;
          case ROp::STFLD_R:
            rewrite(in.a);
            rewrite(in.d);
            break;
          case ROp::STSFLD_R:
            rewrite(in.d);
            break;
          case ROp::STELEM_I4: case ROp::STELEM_I8: case ROp::STELEM_R4:
          case ROp::STELEM_R8: case ROp::STELEM_REF:
            rewrite(in.a);
            rewrite(in.b);
            rewrite(in.d);
            break;
          case ROp::LDEL2_I4: case ROp::LDEL2_I8: case ROp::LDEL2_R4:
          case ROp::LDEL2_R8: case ROp::LDEL2_REF: case ROp::LDEL2_SLOW: {
            rewrite(in.a);
            rewrite(in.b);
            std::int32_t c = static_cast<std::int32_t>(in.imm.i64 & kRegFieldMask);
            const std::int64_t rest = in.imm.i64 & ~kRegFieldMask;
            rewrite(c);
            in.imm.i64 = rest | c;
            break;
          }
          case ROp::STEL2_I4: case ROp::STEL2_I8: case ROp::STEL2_R4:
          case ROp::STEL2_R8: case ROp::STEL2_REF: case ROp::STEL2_SLOW: {
            rewrite(in.a);
            rewrite(in.b);
            std::int32_t c = static_cast<std::int32_t>(in.imm.i64 & kRegFieldMask);
            std::int32_t v = static_cast<std::int32_t>((in.imm.i64 >> kRegFieldBits) & kRegFieldMask);
            const std::int64_t rest =
                in.imm.i64 & ~(kRegFieldMask | (kRegFieldMask << kRegFieldBits));
            rewrite(c);
            rewrite(v);
            in.imm.i64 = rest | c | (static_cast<std::int64_t>(v) << kRegFieldBits);
            break;
          }
          case ROp::CALL_R:
          case ROp::CALLINTR_R: {
            const auto argc = static_cast<std::int32_t>(in.imm.i64);
            for (std::int32_t k = 0; k < argc; ++k) {
              std::int32_t& r = rc_.args_pool[static_cast<std::size_t>(in.b + k)];
              r = root(r);
            }
            break;
          }
          case ROp::RET_R:
          case ROp::THROW_R:
          case ROp::CARDMARK:
          case ROp::JZ_I4: case ROp::JNZ_I4: case ROp::JZ_I8:
          case ROp::JNZ_I8: case ROp::JZ_REF: case ROp::JNZ_REF:
            rewrite(in.a);
            break;
          case ROp::JEQI_I4: case ROp::JNEI_I4: case ROp::JLTI_I4:
          case ROp::JLEI_I4: case ROp::JGTI_I4: case ROp::JGEI_I4:
            rewrite(in.a);
            break;
          case ROp::JEQ_I4: case ROp::JNE_I4: case ROp::JLT_I4:
          case ROp::JLE_I4: case ROp::JGT_I4: case ROp::JGE_I4:
          case ROp::JEQ_I8: case ROp::JNE_I8: case ROp::JLT_I8:
          case ROp::JLE_I8: case ROp::JGT_I8: case ROp::JGE_I8:
          case ROp::JEQ_R4: case ROp::JNE_R4: case ROp::JLT_R4:
          case ROp::JLE_R4: case ROp::JGT_R4: case ROp::JGE_R4:
          case ROp::JEQ_R8: case ROp::JNE_R8: case ROp::JLT_R8:
          case ROp::JLE_R8: case ROp::JGT_R8: case ROp::JGE_R8:
          case ROp::JEQ_REF: case ROp::JNE_REF:
            rewrite(in.a);
            rewrite(in.b);
            break;
          case ROp::JMP:
          case ROp::JMPB:
          case ROp::LEAVE_R:
          case ROp::ENDFINALLY_R:
          case ROp::SAFEPOINT:
          case ROp::LDI:
          case ROp::LDSTR_R:
          case ROp::NEWOBJ_R:
          case ROp::LDSFLD_R:
            break;
          default:
            rewrite(in.a);
            if (in.b >= 0 && in.op != ROp::NEWARR_R && in.op != ROp::LDFLD_R &&
                in.op != ROp::BOX_R && in.op != ROp::UNBOX_R) {
              rewrite(in.b);
            }
            break;
        }
      }
      // Update the copy map.
      const Operands ops = operands_of(in, rc_.args_pool);
      if (ops.def >= 0) {
        invalidate(ops.def);
        if (in.op == ROp::MOV && !in.pinned() && in.a != in.d) {
          copy_of[static_cast<std::size_t>(in.d)] = in.a;
        }
      }
    }

    // ---- backward dead-move/dead-value elimination ----
    std::vector<bool> live(static_cast<std::size_t>(nregs), false);
    for (std::int32_t r = 0; r < rc_.slot_regs; ++r) {
      live[static_cast<std::size_t>(r)] = true;  // locals conservatively live
    }
    for (std::int32_t r : live_out_stack_regs(hi)) {
      live[static_cast<std::size_t>(r)] = true;
    }
    for (std::size_t i = hi; i-- > lo;) {
      RInstr& in = out_[i];
      if (in.op == ROp::NOP_R) continue;
      Operands ops = operands_of(in, rc_.args_pool);
      const bool removable = is_pure(in.op) && !in.pinned() && ops.def >= 0 &&
                             !live[static_cast<std::size_t>(ops.def)];
      if (removable) {
        in.op = ROp::NOP_R;
        continue;
      }
      if (ops.def >= 0) live[static_cast<std::size_t>(ops.def)] = false;
      for (int k = 0; k < ops.nuses; ++k) {
        live[static_cast<std::size_t>(ops.uses[k])] = true;
      }
      if (in.op == ROp::CALL_R || in.op == ROp::CALLINTR_R) {
        const auto argc = static_cast<std::int32_t>(in.imm.i64);
        for (std::int32_t k = 0; k < argc; ++k) {
          live[static_cast<std::size_t>(
              rc_.args_pool[static_cast<std::size_t>(in.b + k)])] = true;
        }
      }
    }
    // Drop self-moves exposed by propagation.
    for (std::size_t i = lo; i < hi; ++i) {
      if (out_[i].op == ROp::MOV && out_[i].d == out_[i].a &&
          !out_[i].pinned()) {
        out_[i].op = ROp::NOP_R;
      }
    }
  }
}

// --------------------------------------------------------------------------
// Method inlining (IL level, before translation).
//
// Small, handler-free, non-synchronized callees are spliced into the caller:
// arguments become fresh caller locals (stored in reverse pop order), callee
// locals are renumbered after them, branch targets are rebased, and every RET
// becomes a branch past the splice (the return value composes through the
// operand stack). A directly recursive callee unrolls one level per round —
// the HotSpot MaxRecursiveInlineLevel idea — bounded by inline_depth and the
// total growth budget. The expanded body is re-verified and kept alive via
// RCode::body so handler tables, stack maps and il_pc ranges all
// describe the code that was actually compiled.

bool Compiler::inlinable(const MethodDef& callee) const {
  if (callee.code.empty() ||
      static_cast<int>(callee.code.size()) > flags_.inline_max_il) {
    return false;
  }
  if (!callee.handlers.empty()) return false;
  for (const Instr& in : callee.code) {
    switch (in.op) {
      case Op::LEAVE:
      case Op::ENDFINALLY:
        return false;  // handler machinery needs its own frame
      case Op::CALLINTR:
        // Synchronized bodies keep their frame identity (Monitor semantics).
        if (in.a == I_MON_ENTER || in.a == I_MON_EXIT || in.a == I_MON_WAIT ||
            in.a == I_MON_PULSE || in.a == I_MON_PULSEALL) {
          return false;
        }
        break;
      default:
        break;
    }
  }
  return true;
}

void Compiler::splice(MethodDef& work, std::size_t c, const MethodDef& callee) {
  const auto argc = static_cast<std::int32_t>(callee.sig.params.size());
  const auto len = static_cast<std::int32_t>(callee.code.size());
  const std::int32_t shift = argc + len - 1;
  const auto cpos = static_cast<std::int32_t>(c);
  const auto arg_base = static_cast<std::int32_t>(work.locals.size());

  // Fresh caller locals: callee arguments first, then callee locals.
  for (ValType t : callee.sig.params) work.locals.push_back(t);
  for (ValType t : callee.locals) work.locals.push_back(t);

  // Rebase the surrounding body's branch targets and handler ranges. A
  // target/boundary equal to the call site keeps pointing at the splice
  // start; anything past it moves by the size delta (an exclusive try_end of
  // c+1 therefore stretches over the whole splice).
  auto rebase = [&](std::int32_t& target) {
    if (target > cpos) target += shift;
  };
  for (Instr& in : work.code) {
    switch (in.op) {
      case Op::BR: case Op::BRTRUE: case Op::BRFALSE:
      case Op::BEQ: case Op::BNE: case Op::BLT: case Op::BLE:
      case Op::BGT: case Op::BGE: case Op::LEAVE:
        rebase(in.a);
        break;
      default:
        break;
    }
  }
  for (ExHandler& h : work.handlers) {
    rebase(h.try_begin);
    rebase(h.try_end);
    rebase(h.handler);
  }

  std::vector<Instr> body;
  body.reserve(static_cast<std::size_t>(argc + len));
  for (std::int32_t i = argc; i-- > 0;) {
    body.push_back(Instr::make(Op::STLOC, arg_base + i));
  }
  for (std::int32_t k = 0; k < len; ++k) {
    Instr in = callee.code[k];
    switch (in.op) {
      case Op::LDARG: in.op = Op::LDLOC; in.a += arg_base; break;
      case Op::STARG: in.op = Op::STLOC; in.a += arg_base; break;
      case Op::LDLOC: in.a += arg_base + argc; break;
      case Op::STLOC: in.a += arg_base + argc; break;
      case Op::BR: case Op::BRTRUE: case Op::BRFALSE:
      case Op::BEQ: case Op::BNE: case Op::BLT: case Op::BLE:
      case Op::BGT: case Op::BGE:
        in.a = cpos + argc + in.a;
        break;
      case Op::RET:
        // The return value (if any) is already on the stack; fall past the
        // splice into the caller's continuation.
        in = Instr::make(Op::BR, cpos + argc + len);
        break;
      default:
        break;
    }
    body.push_back(in);
  }
  work.code.erase(work.code.begin() + static_cast<std::ptrdiff_t>(c));
  work.code.insert(work.code.begin() + static_cast<std::ptrdiff_t>(c),
                   body.begin(), body.end());
}

void Compiler::inline_methods() {
  // Quick reject without copying the method.
  bool candidate = false;
  for (const Instr& in : m_.code) {
    if (in.op == Op::CALL && inlinable(mod_.method(in.a))) {
      candidate = true;
      break;
    }
  }
  if (!candidate) return;

  auto work = std::make_shared<MethodDef>(m_);
  const std::size_t growth_cap =
      m_.code.size() + static_cast<std::size_t>(flags_.inline_total_il);
  bool changed_any = false;
  for (int round = 0; round < flags_.inline_depth; ++round) {
    bool changed = false;
    for (std::size_t pc = 0; pc < work->code.size(); ++pc) {
      if (work->code.size() >= growth_cap) break;
      const Instr in = work->code[pc];
      if (in.op != Op::CALL) continue;
      const MethodDef& callee = mod_.method(in.a);
      if (!inlinable(callee)) continue;
      // The callee must itself be valid IL before its body is trusted.
      verify(mod_, in.a);
      splice(*work, pc, callee);
      // Skip over the spliced body this round; calls inside it (including a
      // recursive self-call) are considered in the next round.
      pc += callee.sig.params.size() + callee.code.size() - 1;
      changed = true;
      changed_any = true;
    }
    if (!changed) break;
  }
  if (!changed_any) return;

  work->verified = false;
  work->stack_in.clear();
  work->reachable.clear();
  work->max_stack = 0;
  // Re-verify the expanded body: fills types, stack shapes and reachability.
  // Failure here would be an inliner bug, not a user error — splicing a
  // verified callee into a verified caller preserves well-formedness.
  verify_body(mod_, *work);
  inlined_ = std::move(work);
  mp_ = inlined_.get();
}

// --------------------------------------------------------------------------
// Common-subexpression elimination: block-local value numbering.
//
// Pure computations plus memory loads (ldlen, field loads, unchecked and
// rank-2 element loads) are keyed on (op, a, b, imm); a repeat of an
// available value becomes a MOV from the first result (cleaned up by the
// copy-propagation round that follows). Entries die when any register they
// mention is redefined, and load entries die at the stores/calls that could
// alias them. Duplicate CHK_BOUNDS nodes on the same (array, index) pair are
// dropped outright. Scope is a single basic block on purpose: the DCE in
// optimize_blocks reasons per-block, so a value reused across block
// boundaries could lose its defining instruction.

namespace {

bool cse_value_op(ROp op) {
  // MOV is the pass's own rewrite form and copy-propagation's domain; LDI is
  // value-numbered too (the key is then (LDI, -1, -1, imm)) so repeated
  // constants — array indexes especially — unify, which is what lets the
  // CHK_BOUNDS dedup below see identical (array, index) pairs.
  if (op == ROp::MOV) return false;
  if (is_pure(op)) return true;
  switch (op) {
    case ROp::LDLEN_R:
    case ROp::LDFLD_R:
    case ROp::LDELEMU_I4: case ROp::LDELEMU_I8: case ROp::LDELEMU_R4:
    case ROp::LDELEMU_R8: case ROp::LDELEMU_REF:
    case ROp::LDEL2_I4: case ROp::LDEL2_I8: case ROp::LDEL2_R4:
    case ROp::LDEL2_R8: case ROp::LDEL2_REF: case ROp::LDEL2_SLOW:
    case ROp::MATH1_R8: case ROp::MATH2_R8:
    case ROp::ABS_I4_R: case ROp::ABS_I8_R: case ROp::ABS_R4_R:
    case ROp::ABS_R8_R:
    case ROp::MAX_I4_R: case ROp::MAX_I8_R: case ROp::MAX_R4_R:
    case ROp::MAX_R8_R:
    case ROp::MIN_I4_R: case ROp::MIN_I8_R: case ROp::MIN_R4_R:
    case ROp::MIN_R8_R:
      return true;
    default:
      return false;
  }
}

bool is_field_load(ROp op) { return op == ROp::LDFLD_R; }

bool is_elem_load(ROp op) {
  switch (op) {
    case ROp::LDELEMU_I4: case ROp::LDELEMU_I8: case ROp::LDELEMU_R4:
    case ROp::LDELEMU_R8: case ROp::LDELEMU_REF:
    case ROp::LDEL2_I4: case ROp::LDEL2_I8: case ROp::LDEL2_R4:
    case ROp::LDEL2_R8: case ROp::LDEL2_REF: case ROp::LDEL2_SLOW:
      return true;
    default:
      return false;
  }
}

bool is_elem_store(ROp op) {
  switch (op) {
    case ROp::STELEM_I4: case ROp::STELEM_I8: case ROp::STELEM_R4:
    case ROp::STELEM_R8: case ROp::STELEM_REF:
    case ROp::STELEMU_I4: case ROp::STELEMU_I8: case ROp::STELEMU_R4:
    case ROp::STELEMU_R8: case ROp::STELEMU_REF:
    case ROp::STEL2_I4: case ROp::STEL2_I8: case ROp::STEL2_R4:
    case ROp::STEL2_R8: case ROp::STEL2_REF: case ROp::STEL2_SLOW:
      return true;
    default:
      return false;
  }
}

}  // namespace

void Compiler::cse_blocks() {
  const auto leaders = block_leaders();

  struct Entry {
    std::int32_t reg;     // register holding the value
    std::int32_t u[3];    // operand registers (-1 = unused)
    ROp op;
  };
  using Key = std::tuple<int, std::int32_t, std::int32_t, std::int64_t>;

  // Blocks are processed back to front: preserving a value may grow a block
  // (see shadow registers below), which shifts every later position.
  for (std::size_t bi = leaders.size() - 1; bi-- > 0;) {
    const auto lo = static_cast<std::size_t>(leaders[bi]);
    const auto hi = static_cast<std::size_t>(leaders[bi + 1]);

    std::map<Key, Entry> avail;
    std::set<std::pair<std::int32_t, std::int32_t>> checked;
    // Objects (canonical regs) already card-marked since the last point a GC
    // could have run in this block; a repeat CARDMARK on one is redundant.
    std::set<std::int32_t> carded;
    // Alias map: reg -> another reg currently holding the same value (the
    // shadow of its defining expression). Keys are built over canonicalized
    // operands so second-order duplicates match even after the stack
    // allocator reuses the original registers: in `(x*x+3) ^ ((x*x+3)>>1)`
    // both ADDIs key on the shadow of the (single) multiply. Shadows have
    // exactly one definition per block, so an alias stays truthful until its
    // source register is redefined (erased below).
    std::map<std::int32_t, std::int32_t> canon;
    auto canon_of = [&](std::int32_t r) {
      const auto it = canon.find(r);
      return it == canon.end() ? r : it->second;
    };
    auto erase_aliases_of = [&](std::int32_t r) {
      canon.erase(r);
      for (auto it = canon.begin(); it != canon.end();) {
        it = it->second == r ? canon.erase(it) : std::next(it);
      }
    };
    // Rank-2 accesses keep raw keys: their column register is encoded in
    // imm, which the alias map cannot rewrite consistently.
    auto imm_encodes_reg = [](ROp op) {
      switch (op) {
        case ROp::LDEL2_I4: case ROp::LDEL2_I8: case ROp::LDEL2_R4:
        case ROp::LDEL2_R8: case ROp::LDEL2_REF: case ROp::LDEL2_SLOW:
          return true;
        default:
          return false;
      }
    };
    // Values are preserved in fresh "shadow" registers (a MOV inserted right
    // after the defining instruction) because the stack-register allocator
    // reuses destination registers aggressively — by the time a duplicate
    // shows up, the original register usually holds something else. Shadows
    // that never serve a duplicate are dead moves; the copy-propagation/DCE
    // round that follows this pass deletes them.
    std::vector<std::pair<std::size_t, RInstr>> shadows;  // insert-after pos

    auto kill_reg = [&](std::int32_t r) {
      for (auto it = avail.begin(); it != avail.end();) {
        const Entry& e = it->second;
        if (e.reg == r || e.u[0] == r || e.u[1] == r || e.u[2] == r) {
          it = avail.erase(it);
        } else {
          ++it;
        }
      }
      for (auto it = checked.begin(); it != checked.end();) {
        if (it->first == r || it->second == r) {
          it = checked.erase(it);
        } else {
          ++it;
        }
      }
      carded.erase(r);
    };
    auto kill_loads = [&](bool fields, bool elems) {
      for (auto it = avail.begin(); it != avail.end();) {
        const ROp op = it->second.op;
        if ((fields && is_field_load(op)) || (elems && is_elem_load(op))) {
          it = avail.erase(it);
        } else {
          ++it;
        }
      }
    };

    for (std::size_t i = lo; i < hi; ++i) {
      RInstr& in = out_[i];
      if (in.op == ROp::NOP_R) continue;

      // Canonicalized operand view, taken before this instruction's own
      // definition invalidates anything. `b` is a register for every
      // candidate op except ldfld (field index), which stays raw.
      const bool raw_key = in.pinned() || imm_encodes_reg(in.op);
      const std::int32_t ca = raw_key ? in.a : canon_of(in.a);
      const std::int32_t cb = raw_key || in.op == ROp::LDFLD_R
                                  ? in.b
                                  : canon_of(in.b);
      bool rewritten = false;
      if (!in.pinned() && cse_value_op(in.op)) {
        const Key key{static_cast<int>(in.op), ca, cb, in.imm.i64};
        auto it = avail.find(key);
        if (it != avail.end()) {
          const std::int32_t prev = it->second.reg;
          if (prev == in.d) {
            in.op = ROp::NOP_R;
            continue;
          }
          in.op = ROp::MOV;
          in.a = prev;
          in.b = -1;
          in.imm.i64 = 0;
          rewritten = true;
        }
      } else if (in.op == ROp::CHK_BOUNDS && !in.pinned()) {
        const auto key = std::make_pair(ca, cb);
        if (checked.count(key) != 0) {
          in.op = ROp::NOP_R;
          continue;
        }
        checked.insert(key);
      } else if (in.op == ROp::CARDMARK && !in.pinned()) {
        if (carded.count(ca) != 0) {
          in.op = ROp::NOP_R;
          continue;
        }
        carded.insert(ca);
      }

      // Stores and calls may write memory that load entries describe.
      if (in.op == ROp::CALL_R || in.op == ROp::CALLINTR_R) {
        kill_loads(true, true);
      } else if (in.op == ROp::STFLD_R || in.op == ROp::STSFLD_R) {
        kill_loads(true, false);
      } else if (is_elem_store(in.op)) {
        kill_loads(false, true);
      }

      // Anything that can allocate — and so trigger a minor GC that clears
      // cards — ends card-mark redundancy: the next store to the same object
      // must mark again. SAFEPOINT parks for someone else's collection.
      switch (in.op) {
        case ROp::CALL_R: case ROp::CALLINTR_R:
        case ROp::NEWOBJ_R: case ROp::NEWARR_R: case ROp::NEWMAT_R:
        case ROp::BOX_R: case ROp::LDSTR_R:
        case ROp::SAFEPOINT:
          carded.clear();
          break;
        default:
          break;
      }

      const Operands ops = operands_of(in, rc_.args_pool);
      if (ops.def >= 0) {
        kill_reg(ops.def);
        erase_aliases_of(ops.def);
      }

      if (rewritten) {
        // The rewrite turned this into `MOV d, shadow`: d now aliases the
        // shadow, so downstream keys over d unify with keys over it.
        canon[in.d] = in.a;
      } else if (in.op == ROp::MOV && !in.pinned() && in.d != in.a) {
        canon[in.d] = canon_of(in.a);
      }

      if (!rewritten && !in.pinned() && cse_value_op(in.op) && ops.def >= 0) {
        // Don't record values whose key mentions the register being defined:
        // the key (canonicalized before the definition) would describe the
        // pre-instruction contents.
        const bool def_is_use =
            ca == ops.def || cb == ops.def ||
            (ops.nuses > 2 && ops.uses[2] == ops.def);
        if (!def_is_use) {
          Entry e{-1, {-1, -1, -1}, in.op};
          // Record the canonical operand names: kill_reg then only drops the
          // entry when a register the key actually depends on is redefined.
          if (raw_key) {
            for (int u = 0; u < ops.nuses && u < 3; ++u) e.u[u] = ops.uses[u];
          } else {
            e.u[0] = ca;
            e.u[1] = in.op == ROp::LDFLD_R ? -1 : cb;
          }
          const std::int32_t shadow =
              new_reg(rc_.reg_types[static_cast<std::size_t>(ops.def)]);
          e.reg = shadow;
          RInstr mv;
          mv.op = ROp::MOV;
          mv.d = shadow;
          mv.a = ops.def;
          mv.il_pc = in.il_pc;
          shadows.emplace_back(i, mv);
          avail[Key{static_cast<int>(in.op), ca, cb, in.imm.i64}] = e;
          canon[ops.def] = shadow;
        }
      }
    }

    if (shadows.empty()) continue;
    // Splice the shadow moves into the block and remap il_start_: positions
    // inside the block move to their new offsets (a shadow belongs to the IL
    // group of its defining instruction, so an IL boundary right after it
    // lands past the shadow), later positions shift by the block's growth.
    std::vector<RInstr> blockvec;
    blockvec.reserve(hi - lo + shadows.size());
    std::vector<std::int32_t> npos(hi - lo);
    std::size_t next_shadow = 0;
    for (std::size_t q = lo; q < hi; ++q) {
      npos[q - lo] = static_cast<std::int32_t>(blockvec.size());
      blockvec.push_back(out_[q]);
      while (next_shadow < shadows.size() &&
             shadows[next_shadow].first == q) {
        blockvec.push_back(shadows[next_shadow].second);
        ++next_shadow;
      }
    }
    const auto delta = static_cast<std::int32_t>(blockvec.size() - (hi - lo));
    out_.erase(out_.begin() + static_cast<std::ptrdiff_t>(lo),
               out_.begin() + static_cast<std::ptrdiff_t>(hi));
    out_.insert(out_.begin() + static_cast<std::ptrdiff_t>(lo),
                blockvec.begin(), blockvec.end());
    for (auto& v : il_start_) {
      if (v >= static_cast<std::int32_t>(hi)) {
        v += delta;
      } else if (v > static_cast<std::int32_t>(lo)) {
        v = static_cast<std::int32_t>(lo) +
            npos[static_cast<std::size_t>(v) - lo];
      }
    }
  }
}

// --------------------------------------------------------------------------
// Loop-invariant code motion.
//
// Loops are recognized from back-edges (a branch whose target precedes it);
// the region between target and branch is treated as the loop. A region
// qualifies when control can only enter it one way — by falling into its
// head, or through a single unconditional jump from outside (the rotated
// `br cond; top: ...; cond: guard` shape our loop builders emit) — so the
// chosen insertion point dominates the loop. Hoistable instructions are pure
// computations whose operands have no definition inside the region, whose
// destination is defined exactly once and used only inside the region after
// the definition. ldlen additionally must sit in the guaranteed-executed
// entry block (it can fault on a null array, so it may only be hoisted where
// it would have executed anyway) and must not change exception-handler
// scope. Hoisted instructions are inserted before the region entry;
// il_start_ is shifted so existing branch targets skip over them.

namespace {

bool licm_candidate_op(ROp op) {
  if (op == ROp::MOV) return false;
  if (is_pure(op)) return true;
  switch (op) {
    case ROp::MATH1_R8: case ROp::MATH2_R8:
    case ROp::ABS_I4_R: case ROp::ABS_I8_R: case ROp::ABS_R4_R:
    case ROp::ABS_R8_R:
    case ROp::MAX_I4_R: case ROp::MAX_I8_R: case ROp::MAX_R4_R:
    case ROp::MAX_R8_R:
    case ROp::MIN_I4_R: case ROp::MIN_I8_R: case ROp::MIN_R4_R:
    case ROp::MIN_R8_R:
      return true;
    default:
      return false;
  }
}

}  // namespace

void Compiler::hoist_loop_invariants() {
  // Each successful round rewrites positions; rescan from scratch. The round
  // cap only bounds pathological inputs.
  for (int round = 0; round < 64; ++round) {
    if (!hoist_round()) return;
  }
}

bool Compiler::hoist_round() {
  struct Loop {
    std::int32_t body, branch;
  };
  std::vector<Loop> loops;
  for (std::size_t j = 0; j < out_.size(); ++j) {
    if (!is_branch(out_[j].op)) continue;
    const std::int32_t til = out_[j].d;
    if (til < 0 || static_cast<std::size_t>(til) >= il_start_.size()) continue;
    const std::int32_t body = il_start_[static_cast<std::size_t>(til)];
    if (body < 0 || static_cast<std::size_t>(body) >= j) continue;
    loops.push_back({body, static_cast<std::int32_t>(j)});
  }
  std::sort(loops.begin(), loops.end(), [](const Loop& x, const Loop& y) {
    return (x.branch - x.body) < (y.branch - y.body);
  });
  for (const Loop& l : loops) {
    if (try_hoist(l.body, l.branch)) return true;
  }
  return false;
}

bool Compiler::try_hoist(std::int32_t body, std::int32_t j) {
  // No handler may start inside the region (entry via unwind is invisible to
  // the entry analysis below).
  for (const ExHandler& h : mp_->handlers) {
    const std::int32_t hs = il_start_[static_cast<std::size_t>(h.handler)];
    if (hs >= body && hs <= j) return false;
  }

  // Entry analysis: find every control transfer into [body, j] from outside.
  std::int32_t entries = 0;
  std::int32_t entry_jmp = -1;     // position of the sole outside jump
  std::int32_t entry_target = -1;  // where it lands inside the region
  bool entry_uncond = false;
  for (std::size_t p = 0; p < out_.size(); ++p) {
    const RInstr& in = out_[p];
    std::int32_t til;
    if (is_branch(in.op)) {
      til = in.d;
    } else if (in.op == ROp::LEAVE_R) {
      til = in.a;
    } else {
      continue;
    }
    if (til < 0 || static_cast<std::size_t>(til) >= il_start_.size()) continue;
    const std::int32_t t = il_start_[static_cast<std::size_t>(til)];
    if (t < body || t > j) continue;
    const auto pos = static_cast<std::int32_t>(p);
    if (pos >= body && pos <= j) continue;  // internal edge
    ++entries;
    entry_jmp = pos;
    entry_target = t;
    entry_uncond = in.op == ROp::JMP || in.op == ROp::JMPB;
  }

  bool fall_in = true;
  {
    std::int32_t p = body - 1;
    while (p >= 0 && out_[static_cast<std::size_t>(p)].op == ROp::NOP_R) --p;
    if (p >= 0) {
      const ROp op = out_[static_cast<std::size_t>(p)].op;
      if (op == ROp::JMP || op == ROp::JMPB || op == ROp::RET_R ||
          op == ROp::THROW_R || op == ROp::LEAVE_R ||
          op == ROp::ENDFINALLY_R) {
        fall_in = false;
      }
    }
  }

  std::int32_t insert_at;
  std::int32_t entry_pos;  // first region instruction that always executes
  if (entries == 0 && fall_in) {
    insert_at = body;
    entry_pos = body;
  } else if (entries == 1 && !fall_in && entry_uncond) {
    // Rotated loop: hoist into the preheader, right before the entry jump.
    // A branch targeting the jump's own position would skip the hoisted
    // code after the insertion shift; reject that shape.
    for (std::size_t il = 0; il < labels_.size(); ++il) {
      if (labels_[il] && il < il_start_.size() &&
          il_start_[il] == entry_jmp) {
        return false;
      }
    }
    insert_at = entry_jmp;
    entry_pos = entry_target;
  } else {
    return false;
  }

  // Extent of the guaranteed-executed entry block: from entry_pos to the
  // first block end or labeled position (a label admits paths that bypass
  // the instructions before it).
  std::vector<bool> label_pos(out_.size(), false);
  for (std::size_t il = 0; il < labels_.size(); ++il) {
    if (labels_[il] && il < il_start_.size() && il_start_[il] >= 0 &&
        static_cast<std::size_t>(il_start_[il]) < out_.size()) {
      label_pos[static_cast<std::size_t>(il_start_[il])] = true;
    }
  }
  std::int32_t eb_end = entry_pos;
  for (std::int32_t p = entry_pos; p <= j; ++p) {
    if (p > entry_pos && label_pos[static_cast<std::size_t>(p)]) break;
    eb_end = p;
    if (is_block_end(out_[static_cast<std::size_t>(p)].op)) break;
  }

  const std::int32_t nregs = static_cast<std::int32_t>(rc_.reg_types.size());
  std::vector<std::int32_t> region_defs(static_cast<std::size_t>(nregs), 0);
  for (std::int32_t p = body; p <= j; ++p) {
    const Operands ops = operands_of(out_[static_cast<std::size_t>(p)],
                                     rc_.args_pool);
    if (ops.def >= 0) ++region_defs[static_cast<std::size_t>(ops.def)];
  }

  auto uses_reg = [&](const RInstr& in, std::int32_t r) {
    const Operands ops = operands_of(in, rc_.args_pool);
    for (int k = 0; k < ops.nuses; ++k) {
      if (ops.uses[k] == r) return true;
    }
    if (in.op == ROp::CALL_R || in.op == ROp::CALLINTR_R) {
      const auto argc = static_cast<std::int32_t>(in.imm.i64);
      for (std::int32_t k = 0; k < argc; ++k) {
        if (rc_.args_pool[static_cast<std::size_t>(in.b + k)] == r) {
          return true;
        }
      }
    }
    return false;
  };

  const std::int32_t ins_il = out_[static_cast<std::size_t>(insert_at)].il_pc;
  std::vector<std::int32_t> cands;
  for (std::int32_t k = body; k <= j; ++k) {
    const RInstr& in = out_[static_cast<std::size_t>(k)];
    if (in.op == ROp::NOP_R || in.pinned()) continue;
    const bool ldlen = in.op == ROp::LDLEN_R;
    if (!ldlen && !licm_candidate_op(in.op)) continue;
    const Operands ops = operands_of(in, rc_.args_pool);
    if (ops.def < rc_.slot_regs) continue;  // slots stay where they are
    if (region_defs[static_cast<std::size_t>(ops.def)] != 1) continue;
    bool ok = true;
    for (int u = 0; u < ops.nuses && ok; ++u) {
      if (region_defs[static_cast<std::size_t>(ops.uses[u])] != 0) ok = false;
    }
    // Every use of the destination must be inside the region, after the
    // definition (a use before it would be loop-carried; one outside would
    // observe the speculated value).
    for (std::size_t p = 0; p < out_.size() && ok; ++p) {
      if (out_[p].op == ROp::NOP_R) continue;
      if (!uses_reg(out_[p], ops.def)) continue;
      const auto pos = static_cast<std::int32_t>(p);
      if (pos <= k || pos > j || pos < body) ok = false;
    }
    if (!ok) continue;
    if (ldlen) {
      if (k < entry_pos || k > eb_end) continue;
      // The fault site moves to the insertion point; both must sit in the
      // same try scopes or a throw could reach a different handler.
      bool same_scope = true;
      for (const ExHandler& h : mp_->handlers) {
        const bool at_ins = ins_il >= h.try_begin && ins_il < h.try_end;
        const bool at_k = in.il_pc >= h.try_begin && in.il_pc < h.try_end;
        if (at_ins != at_k) {
          same_scope = false;
          break;
        }
      }
      if (!same_scope) continue;
    }
    cands.push_back(k);
  }
  if (cands.empty()) return false;

  std::vector<RInstr> hoisted;
  hoisted.reserve(cands.size());
  for (std::int32_t k : cands) {
    RInstr h = out_[static_cast<std::size_t>(k)];
    h.il_pc = ins_il;
    hoisted.push_back(h);
    out_[static_cast<std::size_t>(k)].op = ROp::NOP_R;
  }
  out_.insert(out_.begin() + insert_at, hoisted.begin(), hoisted.end());
  const auto nh = static_cast<std::int32_t>(hoisted.size());
  for (auto& v : il_start_) {
    if (v >= insert_at) v += nh;
  }
  return true;
}

// --------------------------------------------------------------------------
// Bounds-check elimination for counted loops whose bound is ldlen.

void Compiler::eliminate_bounds_checks() {
  // Def counts per register across the whole method (spotting single-def
  // array registers; arguments count as zero-def).
  const std::int32_t nregs = static_cast<std::int32_t>(rc_.reg_types.size());
  std::vector<std::int32_t> defs(static_cast<std::size_t>(nregs), 0);
  for (std::size_t i = 0; i < out_.size(); ++i) {
    const Operands ops = operands_of(out_[i], rc_.args_pool);
    if (ops.def >= 0) ++defs[static_cast<std::size_t>(ops.def)];
  }

  // A register's last definition strictly before position `at`.
  auto last_def_before = [&](std::int32_t reg, std::size_t at) -> std::int32_t {
    for (std::size_t k = at; k-- > 0;) {
      if (operands_of(out_[k], rc_.args_pool).def == reg) {
        return static_cast<std::int32_t>(k);
      }
    }
    return -1;
  };
  // True if `reg` is initialized to the constant 0 reaching `at` (directly
  // by LDI 0, or through one MOV from an LDI-0 register).
  auto init_is_zero = [&](std::int32_t reg, std::size_t at) {
    std::int32_t d = last_def_before(reg, at);
    if (d < 0) return false;
    const RInstr& in = out_[static_cast<std::size_t>(d)];
    if (in.op == ROp::LDI) return in.imm.i64 == 0;
    if (in.op == ROp::MOV) {
      const std::int32_t d2 = last_def_before(in.a, static_cast<std::size_t>(d));
      if (d2 < 0) return false;
      const RInstr& in2 = out_[static_cast<std::size_t>(d2)];
      return in2.op == ROp::LDI && in2.imm.i64 == 0;
    }
    return false;
  };

  // Candidate back-edges: JLT_I4 i, len, body with body earlier in the code
  // (the canonical `br cond; body: ...; i++; cond: ldlen; blt body` shape).
  for (std::size_t j = 0; j < out_.size(); ++j) {
    const RInstr& br = out_[j];
    if (br.op != ROp::JLT_I4) continue;
    const std::int32_t til = br.d;  // still an IL pc pre-compaction
    if (til < 0 || static_cast<std::size_t>(til) >= il_start_.size()) continue;
    const std::int32_t body = il_start_[static_cast<std::size_t>(til)];
    if (body < 0 || static_cast<std::size_t>(body) >= j) continue;
    const std::int32_t ireg = br.a;
    const std::int32_t lenreg = br.b;

    // The reaching definition of len at the branch must be LDLEN of a
    // single-def array register, with no other defs of len inside the loop.
    std::int32_t lendef = -1;
    bool bad = false;
    for (std::size_t k = static_cast<std::size_t>(body); k < j; ++k) {
      if (operands_of(out_[k], rc_.args_pool).def == lenreg) {
        if (lendef >= 0) bad = true;
        lendef = static_cast<std::int32_t>(k);
      }
    }
    if (bad) continue;
    if (lendef < 0) {
      lendef = last_def_before(lenreg, static_cast<std::size_t>(body));
    }
    if (lendef < 0 || out_[static_cast<std::size_t>(lendef)].op != ROp::LDLEN_R) {
      continue;
    }
    const std::int32_t arrreg = out_[static_cast<std::size_t>(lendef)].a;
    if (defs[static_cast<std::size_t>(arrreg)] > 1) continue;

    // Induction variable: inside [body, j) the defs of i must be either a
    // single `ADDI i, i, 1` or the pair `ADDI t, i, 1; ...; MOV i, t` where
    // the ADDI is t's only in-loop def. No other defs of arr in the loop.
    std::int32_t incr_at = -1;
    for (std::size_t k = static_cast<std::size_t>(body); k < j && !bad; ++k) {
      const Operands ops = operands_of(out_[k], rc_.args_pool);
      if (ops.def == ireg) {
        if (incr_at >= 0) {
          bad = true;
        } else if (out_[k].op == ROp::ADDI_I4 && out_[k].a == ireg &&
                   out_[k].imm.i64 == 1) {
          incr_at = static_cast<std::int32_t>(k);
        } else if (out_[k].op == ROp::MOV) {
          const std::int32_t t = out_[k].a;
          const std::int32_t td = last_def_before(t, k);
          if (td >= static_cast<std::int32_t>(body) &&
              out_[static_cast<std::size_t>(td)].op == ROp::ADDI_I4 &&
              out_[static_cast<std::size_t>(td)].a == ireg &&
              out_[static_cast<std::size_t>(td)].imm.i64 == 1) {
            // The temp must not be redefined between the ADDI and the MOV.
            bool clean = true;
            for (std::size_t x = static_cast<std::size_t>(td) + 1; x < k; ++x) {
              if (operands_of(out_[x], rc_.args_pool).def == t) clean = false;
            }
            if (clean) {
              incr_at = static_cast<std::int32_t>(td);
            } else {
              bad = true;
            }
          } else {
            bad = true;
          }
        } else {
          bad = true;
        }
      }
      if (ops.def == arrreg) bad = true;
    }
    if (bad || incr_at < 0) continue;
    if (!init_is_zero(ireg, static_cast<std::size_t>(body))) continue;

    // Delete the range-check nodes for a[i] on the bounded array, positioned
    // before the increment (where i < arr.Length is guaranteed by the guard).
    for (std::size_t k = static_cast<std::size_t>(body);
         k < static_cast<std::size_t>(incr_at); ++k) {
      RInstr& in = out_[k];
      if (in.op == ROp::CHK_BOUNDS && in.a == arrreg && in.b == ireg) {
        in.op = ROp::NOP_R;
      }
    }
    // If the in-loop ldlen feeds only the loop guard, fuse the guard into a
    // compare-against-length branch and drop the ldlen (instruction
    // selection: cmp idx, [arr+len]).
    if (lendef >= static_cast<std::int32_t>(body)) {
      bool len_only_guard = true;
      for (std::size_t k = static_cast<std::size_t>(body); k <= j; ++k) {
        if (k == j || static_cast<std::int32_t>(k) == lendef) continue;
        const Operands ops = operands_of(out_[k], rc_.args_pool);
        for (int u = 0; u < ops.nuses; ++u) {
          if (ops.uses[u] == lenreg) len_only_guard = false;
        }
      }
      if (len_only_guard) {
        out_[static_cast<std::size_t>(lendef)].op = ROp::NOP_R;
        out_[j].op = ROp::JLT_LEN;
        out_[j].b = arrreg;
      }
    }
  }
}

// --------------------------------------------------------------------------

void Compiler::compact() {
  std::vector<std::int32_t> newpos(out_.size() + 1, 0);
  std::vector<RInstr> packed;
  packed.reserve(out_.size());
  for (std::size_t i = 0; i < out_.size(); ++i) {
    newpos[i] = static_cast<std::int32_t>(packed.size());
    if (out_[i].op != ROp::NOP_R) packed.push_back(out_[i]);
  }
  newpos[out_.size()] = static_cast<std::int32_t>(packed.size());

  // IL -> rpc map.
  rc_.il2rpc.assign(mp_->code.size() + 1, 0);
  for (std::size_t il = 0; il <= mp_->code.size(); ++il) {
    const std::int32_t orig = il_start_[il];
    rc_.il2rpc[il] = newpos[static_cast<std::size_t>(orig)];
  }
  // Re-target branches (their d fields hold IL pcs). Backward branches are
  // also (a) canonicalized JMP -> JMPB and (b) recorded in the deopt side
  // table: at a taken back edge the register file holds exactly the IL frame
  // state of the loop header — slot registers mirror the locals in place,
  // and the header's entry operand stack lives in the (depth, type) stack
  // registers DCE kept live across the edge — so the table only has to name
  // those stack registers. If any header's entry stack has no register
  // (cannot happen for translated code, but stay conservative) the WHOLE
  // table is dropped: deopt support is all-or-nothing per body, which is
  // what lets the runtime bail at ANY taken back edge without probing.
  bool deopt_ok = true;
  for (std::size_t i = 0; i < packed.size(); ++i) {
    RInstr& in = packed[i];
    if (!is_branch(in.op)) continue;
    const std::int32_t il_target = in.d;
    in.d = rc_.il2rpc[static_cast<std::size_t>(il_target)];
    if (in.d > static_cast<std::int32_t>(i)) continue;  // forward
    if (in.op == ROp::JMP) in.op = ROp::JMPB;
    if (!deopt_ok) continue;
    RCode::DeoptPoint dp;
    dp.rpc = static_cast<std::int32_t>(i);
    dp.il_pc = il_target;
    const auto& entry_stack = mp_->stack_in[static_cast<std::size_t>(il_target)];
    for (std::size_t depth = 0; depth < entry_stack.size(); ++depth) {
      const auto key = (static_cast<std::int64_t>(depth) << 4) |
                       static_cast<std::int64_t>(entry_stack[depth]);
      const auto it = stack_regs_.find(key);
      if (it == stack_regs_.end()) {
        deopt_ok = false;
        break;
      }
      dp.stack_regs.push_back(it->second);
    }
    if (deopt_ok) rc_.deopt_points.push_back(std::move(dp));
  }
  if (!deopt_ok) rc_.deopt_points.clear();
  rc_.code = std::move(packed);
}

std::string Compiler::dump_rcode() const {
  // Pre-compaction listings keep original indices (NOP placeholders are
  // skipped but not renumbered) so per-pass diffs line up.
  const std::vector<RInstr>& code = rc_.code.empty() ? out_ : rc_.code;
  std::string s;
  for (std::size_t i = 0; i < code.size(); ++i) {
    if (code[i].op == ROp::NOP_R) continue;
    s += std::to_string(i);
    s += ": ";
    s += to_string(code[i], rc_);  // side-table-aware: VECLOOP shows kernel
    s += '\n';
  }
  return s;
}

std::string Compiler::dump_il() const {
  std::string s;
  for (std::size_t pc = 0; pc < mp_->code.size(); ++pc) {
    s += std::to_string(pc);
    s += ": ";
    s += vm::to_string(mp_->code[pc]);
    s += '\n';
  }
  return s;
}

void Compiler::finalize() {
  // Position independence: the RCode owns a copy of the body it compiled
  // (the inline pass's expanded copy when inlining fired, otherwise the
  // module method's verified state), so nothing in the published artifact
  // points into the module of the VM that happened to drive this compile.
  // The copy is taken post-verification: stack_in/reachable ride along for
  // the OSR/deopt continuation builder.
  if (inlined_ == nullptr) inlined_ = std::make_shared<MethodDef>(*mp_);
  rc_.body = inlined_;
  rc_.method = rc_.body.get();
  // Catch handlers receive the exception in the stack register for
  // (depth 0, Ref) — the verifier seeds handler entry stacks with [Ref].
  // Resolve these before the ref scan so any register created here is seen.
  for (const ExHandler& h : mp_->handlers) {
    rc_.handler_exc_reg.push_back(
        h.kind == HandlerKind::Catch ? sreg(0, ValType::Ref) : -1);
  }
  rc_.num_regs = static_cast<std::int32_t>(rc_.reg_types.size());
  for (std::int32_t r = 0; r < rc_.num_regs; ++r) {
    if (rc_.reg_types[static_cast<std::size_t>(r)] == ValType::Ref) {
      rc_.ref_regs.push_back(r);
    }
  }
  if (rc_.code.empty()) {
    // Defensive: an empty body cannot be verified, but never execute off the
    // end regardless.
    RInstr ret;
    ret.op = ROp::RET_R;
    ret.a = -1;
    rc_.code.push_back(ret);
  }
}

}  // namespace

RCode compile(Module& module, const MethodDef& m, const EngineFlags& flags) {
  if (!m.verified) {
    throw std::logic_error("compile of unverified method: " + m.name);
  }
  return Compiler(module, m, flags).run();
}

RCode compile_traced(Module& module, const MethodDef& m,
                     const EngineFlags& flags, const PassObserver& observe) {
  if (!m.verified) {
    throw std::logic_error("compile of unverified method: " + m.name);
  }
  return Compiler(module, m, flags, &observe).run();
}

}  // namespace hpcnet::vm::regir
